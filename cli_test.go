package repro

// End-to-end integration tests: build and drive the command-line tools and
// the runnable examples exactly as a user would.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runToolErr is runTool for invocations expected to fail: it returns the
// combined output and whether the tool exited non-zero.
func runToolErr(t *testing.T, stdin string, args ...string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	return string(out), err != nil
}

func TestCLIDlclass(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := "p(X, Y) :- a(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n"
	out := runTool(t, in, "run", "./cmd/dlclass", "-query", "?- p(a, Y).", "-resolution", "2", "-dot")
	for _, want := range []string{
		"class: A5",
		"strongly stable: true",
		"plan: ∪_{k=0}^∞ [ σ(a)^k - E ]",
		"resolution graph G_2:",
		"digraph",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dlclass output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDlclassStableTransformation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).
p(X1, X2, X3) :- e(X1, X2, X3).
`
	out := runTool(t, in, "run", "./cmd/dlclass", "-stable")
	if !strings.Contains(out, "class: A3") || !strings.Contains(out, "equivalent stable system:") {
		t.Errorf("dlclass -stable output:\n%s", out)
	}
}

func TestCLIDlrun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
?- p(a, Y).
`
	for _, strategy := range []string{"naive", "seminaive", "parallel", "magic", "state", "class", "auto"} {
		out := runTool(t, in, "run", "./cmd/dlrun", "-strategy", strategy, "-stats")
		for _, want := range []string{"(3 answers)", "p(a, b).", "p(a, c).", "p(a, d).", "% stats:"} {
			if !strings.Contains(out, want) {
				t.Errorf("dlrun -strategy %s missing %q:\n%s", strategy, want, out)
			}
		}
	}
}

// TestCLIDlrunAutoPlanCache: in one dlrun invocation, the second identical
// query must be served from the plan cache — visible under -trace.
func TestCLIDlrunAutoPlanCache(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c).
?- p(a, Y).
?- p(b, Y).
`
	out := runTool(t, in, "run", "./cmd/dlrun", "-strategy", "auto", "-trace")
	miss := strings.Index(out, "cache=miss")
	hit := strings.Index(out, "cache=hit")
	if miss < 0 || hit < 0 || hit < miss {
		t.Errorf("expected a cache miss then a hit in trace output:\n%s", out)
	}
	if !strings.Contains(out, "strategy=tc-frontier") {
		t.Errorf("auto did not pick the TC frontier kernel:\n%s", out)
	}
}

// TestCLIDlrunRejectsNonLinear: a non-linear rule fed to a compiled strategy
// must produce a diagnostic, never a panic (regression for the rewrite-layer
// panics that used to reach the user).
func TestCLIDlrunRejectsNonLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
e(a, b).
?- p(a, Y).
`
	for _, strategy := range []string{"class", "magic", "state", "auto"} {
		out, failed := runToolErr(t, in, "run", "./cmd/dlrun", "-strategy", strategy)
		if !failed {
			t.Errorf("dlrun -strategy %s accepted a non-linear program:\n%s", strategy, out)
		}
		if strings.Contains(out, "panic:") || strings.Contains(out, "goroutine ") {
			t.Errorf("dlrun -strategy %s panicked instead of erroring:\n%s", strategy, out)
		}
		if !strings.Contains(out, "dlrun:") {
			t.Errorf("dlrun -strategy %s: missing diagnostic prefix:\n%s", strategy, out)
		}
	}
}

// TestCLIDlclassRejectsNonLinear mirrors the guard for dlclass.
func TestCLIDlclassRejectsNonLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := "p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n"
	out, failed := runToolErr(t, in, "run", "./cmd/dlclass")
	if !failed {
		t.Errorf("dlclass accepted a non-linear rule:\n%s", out)
	}
	if strings.Contains(out, "panic:") || strings.Contains(out, "goroutine ") {
		t.Errorf("dlclass panicked instead of erroring:\n%s", out)
	}
}

func TestCLIDlrunFactsFileAndREPL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	facts := filepath.Join(dir, "facts.dl")
	if err := os.WriteFile(facts, []byte("edge(a, b).\nedge(b, c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := "p(X, Y) :- edge(X, Y).\np(X, Y) :- edge(X, Z), p(Z, Y).\n?- p(a, Y).\n"
	out := runTool(t, in, "run", "./cmd/dlrun", "-facts", facts, "-i")
	if !strings.Contains(out, "(2 answers)") || !strings.Contains(out, "p(a, c).") {
		t.Errorf("REPL output:\n%s", out)
	}
}

func TestCLIDlbenchQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	out := runTool(t, "", "run", "./cmd/dlbench", "-quick", "-experiment", "figures")
	if strings.Contains(out, "FAIL") || !strings.Contains(out, "all checks passed") {
		t.Errorf("dlbench figures:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{"naive baseline agrees: true", "ancestor(kim, drew)"}},
		{"./examples/flights", []string{"agree: true", "class A1"}},
		{"./examples/bom", []string{"naive agrees: true", "costlier(frame, carbonTube)"}},
		{"./examples/audit", []string{"staleCred(ml, userdb)", "orphan(quarantine)", "naive and semi-naive agree: true"}},
	}
	for _, tc := range cases {
		out := runTool(t, "", "run", tc.pkg)
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing %q", tc.pkg, want)
			}
		}
	}
}

func TestExampleClassifyTour(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; slow")
	}
	out := runTool(t, "", "run", "./examples/classifytour")
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("classify tour reported a mismatch:\n%s", out)
	}
	if got := strings.Count(out, "MATCHES naive baseline"); got != 13 {
		t.Errorf("tour validated %d statements, want 13", got)
	}
}

// TestCLIDlrunTraceJSON: -trace-json must emit a well-formed span tree
// containing the planner and fixpoint phases for an auto query.
func TestCLIDlrunTraceJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
?- p(a, Y).
`
	runTool(t, in, "run", "./cmd/dlrun", "-strategy", "auto", "-trace-json", tracePath)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		Name     string  `json:"name"`
		StartUS  *int64  `json:"start_us"`
		DurUS    *int64  `json:"dur_us"`
		Children []*span `json:"children"`
	}
	var root span
	if err := json.Unmarshal(data, &root); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	names := map[string]int{}
	var walk func(s *span)
	walk = func(s *span) {
		if s.Name == "" || s.StartUS == nil || s.DurUS == nil {
			t.Errorf("span missing required fields: %+v", s)
		}
		names[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(&root)
	if root.Name != "dlrun" {
		t.Errorf("root span = %q, want dlrun", root.Name)
	}
	for _, want := range []string{"parse", "query", "plan-cache", "classify", "plan-compile", "fixpoint", "round"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (saw %v)", want, names)
		}
	}
	if names["round"] < 2 {
		t.Errorf("trace has %d round spans, want several", names["round"])
	}
}

// TestCLIDlrunServe: -serve must expose working /metrics, /debug/vars and
// /debug/pprof/ endpoints while queries run.
func TestCLIDlrunServe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
?- p(a, Y).
`
	// Build the binary and run it directly (not `go run`): the test must be
	// able to kill the server process itself, not just the go tool.
	bin := filepath.Join(t.TempDir(), "dlrun")
	runTool(t, "", "build", "-o", bin, "./cmd/dlrun")
	cmd := exec.Command(bin, "-serve", "127.0.0.1:0")
	cmd.Dir = "."
	cmd.Stdin = strings.NewReader(in)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// dlrun prints "%% serving http://ADDR/metrics ..." once the listener is
	// up, then answers the queries and blocks.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "serving http://") {
			rest := line[strings.Index(line, "http://")+len("http://"):]
			base = "http://" + rest[:strings.Index(rest, "/")]
		}
		if strings.Contains(line, "answers)") {
			break // queries done: counters are flushed
		}
	}
	if base == "" {
		t.Fatal("dlrun never printed the serving address")
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "dl_rounds_total") ||
		!strings.Contains(body, "dl_tuples_derived_total") {
		t.Errorf("/metrics missing engine counters:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "datalog") {
		t.Errorf("/debug/vars missing datalog var:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index:\n%s", body)
	}
}

// TestCLIDlserveSmoke builds dlserve, serves the TC example and drives the
// query API end to end: cold query, warm (cached) query, a fact write that
// advances the epoch, and a /metrics scrape asserting the result cache
// counted one hit and the serving counters moved. This is the test behind
// `make serve-smoke`.
func TestCLIDlserveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	program := filepath.Join(dir, "tc.dl")
	src := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
`
	if err := os.WriteFile(program, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "dlserve")
	runTool(t, "", "build", "-o", bin, "./cmd/dlserve")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-program", program)
	cmd.Dir = "."
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// dlserve prints "% dlserve serving http://ADDR/query ..." once bound.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "serving http://") {
			rest := line[strings.Index(line, "http://")+len("http://"):]
			base = "http://" + rest[:strings.Index(rest, "/")]
			break
		}
	}
	if base == "" {
		t.Fatal("dlserve never printed the serving address")
	}

	query := func(q string) map[string]any {
		resp, err := http.Get(base + "/query?q=" + strings.ReplaceAll(q, " ", "%20"))
		if err != nil {
			t.Fatalf("GET /query: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET /query %s: status %d: %s", q, resp.StatusCode, body)
		}
		var res map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := query("?- p(a, Y).")
	if cold["count"].(float64) != 3 || cold["cached"].(bool) {
		t.Fatalf("cold query: %v", cold)
	}
	warm := query("?- p(a, Y).")
	if !warm["cached"].(bool) {
		t.Fatalf("second query not served from the result cache: %v", warm)
	}

	// A write advances the epoch; maintenance carries the cached entry
	// forward, so the next query is a hit at the new epoch, flagged
	// maintained, and sees the new edge.
	resp, err := http.Post(base+"/facts", "text/plain", strings.NewReader("e(d, x)."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	after := query("?- p(a, Y).")
	if after["count"].(float64) != 4 || !after["cached"].(bool) || after["maintained"] != true {
		t.Fatalf("post-write query: %v", after)
	}
	if after["epoch"].(float64) <= cold["epoch"].(float64) {
		t.Fatalf("epoch did not advance: %v -> %v", cold["epoch"], after["epoch"])
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"dl_resultcache_hits_total 2",
		"dl_resultcache_misses_total 1",
		"dl_resultcache_maintained_total 1",
		"dl_server_queries_total 3",
		"dl_server_inflight_queries 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Streaming smoke: the NDJSON response is header, limit'ed rows, then a
	// truncated summary, and the streaming counters move.
	sresp, err := http.Get(base + "/query?stream=1&limit=2&q=" +
		strings.ReplaceAll("?- p(a, Y).", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []map[string]any
	ssc := bufio.NewScanner(sresp.Body)
	for ssc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(ssc.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ssc.Text(), err)
		}
		lines = append(lines, obj)
	}
	sresp.Body.Close()
	if len(lines) != 4 { // header + 2 rows + done
		t.Fatalf("stream lines = %d, want 4: %v", len(lines), lines)
	}
	done := lines[len(lines)-1]
	if done["done"] != true || done["count"].(float64) != 2 || done["truncated"] != true {
		t.Fatalf("stream summary: %v, want 2 rows truncated", done)
	}
	mresp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics = string(body)
	for _, want := range []string{
		"dl_query_rows_streamed_total 2",
		"dl_query_early_terminations_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCLIDlserveDebugEndpoints starts dlserve with the observability flags
// cranked to their most visible settings (every query slow, every query
// trace-sampled) and drives the debug surface end to end: the structured
// startup line, request-ID echo, the query journal, the slow-query ring
// with an attached span tree, /statz percentiles and /readyz.
func TestCLIDlserveDebugEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	program := filepath.Join(dir, "tc.dl")
	src := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
`
	if err := os.WriteFile(program, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "dlserve")
	runTool(t, "", "build", "-o", bin, "./cmd/dlserve")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-program", program,
		"-slow-query", "1ns", "-trace-sample", "1", "-journal-size", "32")
	cmd.Dir = "."
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The structured startup line (stderr) precedes the serving line
	// (stdout); both arrive on the combined pipe in order.
	var base, startLine string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"msg":"starting"`) {
			startLine = line
		}
		if strings.Contains(line, "serving http://") {
			rest := line[strings.Index(line, "http://")+len("http://"):]
			base = "http://" + rest[:strings.Index(rest, "/")]
			break
		}
	}
	if base == "" {
		t.Fatal("dlserve never printed the serving address")
	}
	if startLine == "" {
		t.Fatal("dlserve never logged its effective config")
	}
	var start map[string]any
	if err := json.Unmarshal([]byte(startLine), &start); err != nil {
		t.Fatalf("startup line is not JSON: %q: %v", startLine, err)
	}
	for _, key := range []string{"addr", "program", "gomaxprocs", "journal_size", "slow_query_threshold", "trace_sample", "go_version"} {
		if _, ok := start[key]; !ok {
			t.Errorf("startup line missing %q: %v", key, start)
		}
	}

	// One query with a client-supplied correlation ID.
	req, err := http.NewRequest("GET", base+"/query?q="+strings.ReplaceAll("?- p(X, Y).", " ", "%20"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "cli-debug-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "cli-debug-1" {
		t.Errorf("X-Request-Id echoed as %q, want cli-debug-1", got)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	getJSON := func(path string, v any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return resp.StatusCode
	}

	// The 1ns threshold puts the completed query in both rings, and the
	// 1-in-1 sampler attached a span tree the client never asked for.
	var slow struct {
		SlowThresholdUS int64            `json:"slow_threshold_us"`
		Slow            []map[string]any `json:"slow"`
	}
	if code := getJSON("/debug/queries/slow", &slow); code != 200 {
		t.Fatalf("GET /debug/queries/slow = %d", code)
	}
	if len(slow.Slow) != 1 {
		t.Fatalf("slow ring = %d records, want 1: %v", len(slow.Slow), slow.Slow)
	}
	rec := slow.Slow[0]
	if rec["id"] != "cli-debug-1" || rec["class"] == nil || rec["sampled"] != true {
		t.Errorf("slow record = %v, want id=cli-debug-1 with class and sampled", rec)
	}
	if trace, ok := rec["trace"].(map[string]any); !ok || trace["name"] != "query" {
		t.Errorf("slow record trace = %v, want span tree rooted at \"query\"", rec["trace"])
	}

	var journal struct {
		Inflight []map[string]any `json:"inflight"`
		Recent   []map[string]any `json:"recent"`
	}
	if code := getJSON("/debug/queries", &journal); code != 200 {
		t.Fatalf("GET /debug/queries = %d", code)
	}
	if len(journal.Recent) != 1 || journal.Recent[0]["id"] != "cli-debug-1" {
		t.Errorf("journal recent = %v, want the cli-debug-1 record", journal.Recent)
	}

	var statz map[string]any
	if code := getJSON("/statz", &statz); code != 200 {
		t.Fatalf("GET /statz = %d", code)
	}
	bi, ok := statz["dl_build_info"].(map[string]any)
	if !ok || bi["go_version"] == "" {
		t.Errorf("/statz dl_build_info = %v, want build labels", statz["dl_build_info"])
	}
	foundPercentiles := false
	for name, v := range statz {
		if h, ok := v.(map[string]any); ok {
			if _, ok := h["p50"]; ok && h["p90"] != nil && h["p99"] != nil {
				foundPercentiles = true
				_ = name
			}
		}
	}
	if !foundPercentiles {
		t.Errorf("/statz has no histogram percentile summaries: %v", statz)
	}

	var ready map[string]any
	if code := getJSON("/readyz", &ready); code != 200 || ready["ready"] != true {
		t.Errorf("/readyz = %d %v, want 200 ready=true", 200, ready)
	}
}
