package repro

// End-to-end integration tests: build and drive the command-line tools and
// the runnable examples exactly as a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runToolErr is runTool for invocations expected to fail: it returns the
// combined output and whether the tool exited non-zero.
func runToolErr(t *testing.T, stdin string, args ...string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	return string(out), err != nil
}

func TestCLIDlclass(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := "p(X, Y) :- a(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n"
	out := runTool(t, in, "run", "./cmd/dlclass", "-query", "?- p(a, Y).", "-resolution", "2", "-dot")
	for _, want := range []string{
		"class: A5",
		"strongly stable: true",
		"plan: ∪_{k=0}^∞ [ σ(a)^k - E ]",
		"resolution graph G_2:",
		"digraph",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dlclass output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDlclassStableTransformation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).
p(X1, X2, X3) :- e(X1, X2, X3).
`
	out := runTool(t, in, "run", "./cmd/dlclass", "-stable")
	if !strings.Contains(out, "class: A3") || !strings.Contains(out, "equivalent stable system:") {
		t.Errorf("dlclass -stable output:\n%s", out)
	}
}

func TestCLIDlrun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
?- p(a, Y).
`
	for _, strategy := range []string{"naive", "seminaive", "parallel", "magic", "state", "class", "auto"} {
		out := runTool(t, in, "run", "./cmd/dlrun", "-strategy", strategy, "-stats")
		for _, want := range []string{"(3 answers)", "p(a, b).", "p(a, c).", "p(a, d).", "% stats:"} {
			if !strings.Contains(out, want) {
				t.Errorf("dlrun -strategy %s missing %q:\n%s", strategy, want, out)
			}
		}
	}
}

// TestCLIDlrunAutoPlanCache: in one dlrun invocation, the second identical
// query must be served from the plan cache — visible under -trace.
func TestCLIDlrunAutoPlanCache(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c).
?- p(a, Y).
?- p(b, Y).
`
	out := runTool(t, in, "run", "./cmd/dlrun", "-strategy", "auto", "-trace")
	miss := strings.Index(out, "cache=miss")
	hit := strings.Index(out, "cache=hit")
	if miss < 0 || hit < 0 || hit < miss {
		t.Errorf("expected a cache miss then a hit in trace output:\n%s", out)
	}
	if !strings.Contains(out, "strategy=tc-frontier") {
		t.Errorf("auto did not pick the TC frontier kernel:\n%s", out)
	}
}

// TestCLIDlrunRejectsNonLinear: a non-linear rule fed to a compiled strategy
// must produce a diagnostic, never a panic (regression for the rewrite-layer
// panics that used to reach the user).
func TestCLIDlrunRejectsNonLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := `p(X, Y) :- e(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
e(a, b).
?- p(a, Y).
`
	for _, strategy := range []string{"class", "magic", "state", "auto"} {
		out, failed := runToolErr(t, in, "run", "./cmd/dlrun", "-strategy", strategy)
		if !failed {
			t.Errorf("dlrun -strategy %s accepted a non-linear program:\n%s", strategy, out)
		}
		if strings.Contains(out, "panic:") || strings.Contains(out, "goroutine ") {
			t.Errorf("dlrun -strategy %s panicked instead of erroring:\n%s", strategy, out)
		}
		if !strings.Contains(out, "dlrun:") {
			t.Errorf("dlrun -strategy %s: missing diagnostic prefix:\n%s", strategy, out)
		}
	}
}

// TestCLIDlclassRejectsNonLinear mirrors the guard for dlclass.
func TestCLIDlclassRejectsNonLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	in := "p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n"
	out, failed := runToolErr(t, in, "run", "./cmd/dlclass")
	if !failed {
		t.Errorf("dlclass accepted a non-linear rule:\n%s", out)
	}
	if strings.Contains(out, "panic:") || strings.Contains(out, "goroutine ") {
		t.Errorf("dlclass panicked instead of erroring:\n%s", out)
	}
}

func TestCLIDlrunFactsFileAndREPL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	facts := filepath.Join(dir, "facts.dl")
	if err := os.WriteFile(facts, []byte("edge(a, b).\nedge(b, c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := "p(X, Y) :- edge(X, Y).\np(X, Y) :- edge(X, Z), p(Z, Y).\n?- p(a, Y).\n"
	out := runTool(t, in, "run", "./cmd/dlrun", "-facts", facts, "-i")
	if !strings.Contains(out, "(2 answers)") || !strings.Contains(out, "p(a, c).") {
		t.Errorf("REPL output:\n%s", out)
	}
}

func TestCLIDlbenchQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	out := runTool(t, "", "run", "./cmd/dlbench", "-quick", "-experiment", "figures")
	if strings.Contains(out, "FAIL") || !strings.Contains(out, "all checks passed") {
		t.Errorf("dlbench figures:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{"naive baseline agrees: true", "ancestor(kim, drew)"}},
		{"./examples/flights", []string{"agree: true", "class A1"}},
		{"./examples/bom", []string{"naive agrees: true", "costlier(frame, carbonTube)"}},
		{"./examples/audit", []string{"staleCred(ml, userdb)", "orphan(quarantine)", "naive and semi-naive agree: true"}},
	}
	for _, tc := range cases {
		out := runTool(t, "", "run", tc.pkg)
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing %q", tc.pkg, want)
			}
		}
	}
}

func TestExampleClassifyTour(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; slow")
	}
	out := runTool(t, "", "run", "./examples/classifytour")
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("classify tour reported a mismatch:\n%s", out)
	}
	if got := strings.Count(out, "MATCHES naive baseline"); got != 13 {
		t.Errorf("tour validated %d statements, want 13", got)
	}
}
