// Package repro is a from-scratch Go reproduction of
//
//	Cheong Youn, Lawrence J. Henschen, Jiawei Han:
//	"Classification of Recursive Formulas in Deductive Databases",
//	SIGMOD 1988.
//
// The library lives under internal/: the deductive-database substrate
// (ast, parser, storage, ra, eval — including a parallel semi-naive
// worker-pool engine with per-round metrics), the paper's contribution
// (graph, igraph, classify, rewrite, adorn, plan) and the facade (core). Three
// commands (cmd/dlclass, cmd/dlrun, cmd/dlbench) and four runnable
// examples (examples/...) sit on top. bench_test.go in this directory
// holds one benchmark per figure and worked example of the paper plus the
// quantitative experiments; see DESIGN.md and EXPERIMENTS.md.
package repro
