package repro

// One benchmark per experiment of the reproduction (see DESIGN.md §5 and
// EXPERIMENTS.md): BenchmarkFigureN regenerates the paper's figures as
// graph structures, BenchmarkExampleN re-derives each worked example's
// classification/plan/evaluation, BenchmarkTheoremSuite sweeps the theorem
// property checks, and BenchmarkQ1..Q6 measure the quantitative claims
// (compiled vs naive/semi-naive/magic, bounded cutoff, selection pushdown,
// unfolding cost, parallel semi-naive fan-out).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/eval"
	"repro/internal/igraph"
	"repro/internal/paper"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

func statement(b *testing.B, id string) paper.Statement {
	b.Helper()
	s, ok := paper.ByID(id)
	if !ok {
		b.Fatalf("unknown statement %s", id)
	}
	return s
}

func queryPattern(sys *ast.RecursiveSystem, pattern string) ast.Query {
	args := make([]ast.Term, sys.Arity())
	for i := range args {
		if i < len(pattern) && pattern[i] == 'd' {
			args[i] = ast.C("n1")
		} else {
			args[i] = ast.V(fmt.Sprintf("Q%d", i))
		}
	}
	return ast.Query{Atom: ast.NewAtom(sys.Pred(), args...)}
}

// --- Figures -------------------------------------------------------------

// BenchmarkFigure1 regenerates Figure 1: the I-graphs of (s1a) and (s1b).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ga := igraph.MustBuild(paper.S1a.Rule)
		gb := igraph.MustBuild(paper.S1b.Rule)
		if ga.G.NumVertices() != 3 || gb.G.NumVertices() != 5 {
			b.Fatal("figure 1 structure wrong")
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: the 2nd resolution graph of (s2a)
// with the weight-2 directed path from x to z₁.
func BenchmarkFigure2(b *testing.B) {
	ig := igraph.MustBuild(paper.S2a.Rule)
	for i := 0; i < b.N; i++ {
		r := igraph.NewResolution(ig)
		r.Expand(2)
		if w, ok := igraph.DirectedPathWeight(r.G, "X", "Z#2"); !ok || w != 2 {
			b.Fatalf("weight x->z1 = %d (%v)", w, ok)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: the I-graph of (s8) whose max path
// weight 2 is the Ioannidis rank bound.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ig := igraph.MustBuild(paper.S8.Rule)
		if ig.G.MaxPathWeight() != 2 {
			b.Fatal("figure 3 bound wrong")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: resolution graphs of (s9) with the
// unbounded (non-zero weight, multi-directional) cycle.
func BenchmarkFigure4(b *testing.B) {
	ig := igraph.MustBuild(paper.S9.Rule)
	for i := 0; i < b.N; i++ {
		cycles := ig.G.NonTrivialCycles()
		if len(cycles) != 1 || cycles[0].IsOneDirectional() || cycles[0].AbsWeight() != 1 {
			b.Fatal("figure 4 cycle wrong")
		}
		_ = igraph.ResolutionGraph(ig, 2)
	}
}

// BenchmarkFigure5 regenerates Figure 5: resolution graphs of (s11); the
// dependent cycles keep every position determined from the 2nd expansion
// for p(d,v).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pat := adorn.Pattern(paper.S11.Rule, adorn.Adornment{true, false}, 3)
		if pat[1].String() != "dd" || pat[2].String() != "dd" {
			b.Fatalf("s11 pattern = %v", pat)
		}
		_ = igraph.ResolutionGraph(igraph.MustBuild(paper.S11.Rule), 2)
	}
}

// BenchmarkFigure6 regenerates Figure 6: resolution graphs of (s12) and the
// paper's query-form trace dvv -> ddv -> ddv.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pat := adorn.Pattern(paper.S12.Rule, adorn.Adornment{true, false, false}, 3)
		if pat[0].String() != "dvv" || pat[1].String() != "ddv" || pat[2].String() != "ddv" {
			b.Fatalf("s12 pattern = %v", pat)
		}
		if comps := igraph.ResolutionGraph(igraph.MustBuild(paper.S12.Rule), 2).Components(); len(comps) != 2 {
			b.Fatal("s12 G2 components")
		}
	}
}

// --- Worked examples -----------------------------------------------------

// exampleBench classifies the statement, compiles the plan for the query
// pattern and evaluates it with the class engine, checking against naive.
func exampleBench(b *testing.B, id, pattern, wantClass string) {
	s := statement(b, id)
	sys := s.System()
	db, err := dlgen.RandomDB(sys, 5, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := queryPattern(sys, pattern)
	ref, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := classify.MustClassify(sys.Recursive)
		if res.Class.Code() != wantClass {
			b.Fatalf("%s: class %s, want %s", id, res.Class.Code(), wantClass)
		}
		if _, err := plan.Compile(sys, adorn.FromQuery(q), 4); err != nil {
			b.Fatal(err)
		}
		got, _, err := eval.ClassEvalWith(sys, res, q, db)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(ref) {
			b.Fatalf("%s: class engine differs from naive", id)
		}
	}
}

// BenchmarkExample1 covers Example 1: (s1a) is stable (A5 = A1 ⊎ A2),
// (s1b) is an unbounded cycle (C).
func BenchmarkExample1(b *testing.B) {
	b.Run("s1a", func(b *testing.B) { exampleBench(b, "s1a", "dv", "A5") })
	b.Run("s1b", func(b *testing.B) { exampleBench(b, "s1b", "dvv", "C") })
}

// BenchmarkExample3 covers Example 3: the stable 3-D statement (s3) under
// the paper's query p(a,b,Z).
func BenchmarkExample3(b *testing.B) { exampleBench(b, "s3", "ddv", "A1") }

// BenchmarkExample4 covers Example 4: (s4a) unfolds into a stable formula
// with three exits producing the same answers.
func BenchmarkExample4(b *testing.B) {
	s := statement(b, "s4a")
	sys := s.System()
	db, err := dlgen.RandomDB(sys, 5, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := queryPattern(sys, "dvv")
	ref, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stable, err := rewrite.ToStable(sys)
		if err != nil {
			b.Fatal(err)
		}
		if len(stable.Exits) != 3 {
			b.Fatal("exit count")
		}
		got, _, err := eval.Answer(eval.StrategyClass, stable, q, db)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(ref) {
			b.Fatal("transformed answers differ")
		}
	}
}

// BenchmarkExample5 covers Example 5: the permutation (s5), bounded rank 2.
func BenchmarkExample5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := classify.MustClassify(paper.S5.Rule)
		if res.Class.Code() != "A4" || !res.Bounded || res.RankBound != 2 {
			b.Fatal("s5 classification")
		}
	}
}

// BenchmarkExample6 covers Example 6: (s6) with cycles 3,1,2 stabilizes at
// lcm 6 and is bounded with rank 5.
func BenchmarkExample6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := classify.MustClassify(paper.S6.Rule)
		if res.StabilizationPeriod != 6 || !res.Bounded || res.RankBound != 5 {
			b.Fatal("s6 classification")
		}
	}
}

// BenchmarkExample7 covers Example 7: (s7) with cycles 1,2,3,1 stabilizes
// at lcm 6.
func BenchmarkExample7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := classify.MustClassify(paper.S7.Rule)
		if res.StabilizationPeriod != 6 || res.Bounded {
			b.Fatal("s7 classification")
		}
		weights := map[int]int{}
		for _, c := range res.Components {
			weights[c.Weight]++
		}
		if weights[1] != 2 || weights[2] != 1 || weights[3] != 1 {
			b.Fatalf("s7 cycle weights = %v", weights)
		}
	}
}

// BenchmarkExample8 covers Example 8: the bounded statement (s8) equals its
// two non-recursive expansions (s8a'), (s8b') on data.
func BenchmarkExample8(b *testing.B) {
	s := statement(b, "s8")
	sys := s.System()
	db, err := dlgen.RandomDB(sys, 5, 12, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := queryPattern(sys, "vvvv")
	ref, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := eval.BoundedEval(sys, 2, q, db)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(ref) {
			b.Fatal("bounded expansion differs")
		}
	}
}

// BenchmarkExample9 covers Example 9: the unbounded statement (s9) under
// both paper query forms p(d,v,v) and p(v,v,d).
func BenchmarkExample9(b *testing.B) {
	b.Run("dvv", func(b *testing.B) { exampleBench(b, "s9", "dvv", "C") })
	b.Run("vvd", func(b *testing.B) { exampleBench(b, "s9", "vvd", "C") })
}

// BenchmarkExample10 covers Example 10: (s10) has no non-trivial cycle and
// bound 2.
func BenchmarkExample10(b *testing.B) { exampleBench(b, "s10", "vv", "D") }

// BenchmarkExample11 covers Example 11: the dependent statement (s11) under
// p(d,v).
func BenchmarkExample11(b *testing.B) { exampleBench(b, "s11", "dv", "E") }

// BenchmarkExample12 covers Example 14/(s12): the mixed statement under
// p(d,v,v).
func BenchmarkExample12(b *testing.B) { exampleBench(b, "s12", "dvv", "F") }

// BenchmarkTheoremSuite sweeps the theorem property checks over random
// rules: Theorem 1 (stability), Theorem 12 (completeness) and Ioannidis's
// boundedness condition.
func BenchmarkTheoremSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		for trial := 0; trial < 20; trial++ {
			rule := dlgen.RandomRule(rng, dlgen.Config{MaxArity: 3})
			res := classify.MustClassify(rule)
			if adorn.SemanticallyStable(rule) != res.Stable {
				b.Fatalf("Theorem 1 violated by %v", rule)
			}
			if res.Class == classify.ClassTrivial {
				b.Fatalf("Theorem 12 violated by %v", rule)
			}
		}
	}
}

// --- Quantitative experiments -------------------------------------------

// BenchmarkQ1CompiledVsNaive measures the paper's motivation: the compiled
// stable plan against bottom-up evaluation for a bound transitive-closure
// query across workloads and sizes.
func BenchmarkQ1CompiledVsNaive(b *testing.B) {
	sys := statement(b, "s1a").System()
	workloads := []struct {
		name string
		gen  func(db *storage.Database, n int) error
	}{
		{"chain", func(db *storage.Database, n int) error { return storage.GenChain(db, "a", n) }},
		{"tree", func(db *storage.Database, n int) error { return storage.GenTree(db, "a", 2, nlog2(n)) }},
		{"random", func(db *storage.Database, n int) error { return storage.GenRandomGraph(db, "a", n, 2*n, 9) }},
	}
	for _, w := range workloads {
		for _, n := range []int{64, 256} {
			db := storage.NewDatabase()
			if err := w.gen(db, n); err != nil {
				b.Fatal(err)
			}
			db.Set("e", db.Rel("a").Clone())
			q := queryPattern(sys, "dv")
			q.Atom.Args[0] = ast.C("n0")
			for _, s := range []eval.Strategy{eval.StrategyNaive, eval.StrategySemiNaive, eval.StrategyClass} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", w.name, n, s), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := eval.Answer(s, sys, q, db); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func nlog2(n int) int {
	d := 0
	for n > 1 {
		n /= 2
		d++
	}
	return d
}

// BenchmarkQ2Bounded measures the bounded cutoff: evaluation cost of the
// bounded statement (s10) must stay flat as the database grows, while the
// fixpoint baseline keeps growing. Semi-naive is the baseline (plain naive
// at the largest size would run for tens of minutes per iteration — its
// divergence is already evident in the dlbench report).
func BenchmarkQ2Bounded(b *testing.B) {
	sys := statement(b, "s10").System()
	for _, n := range []int{50, 100, 200} {
		db, err := dlgen.RandomDB(sys, n, 2*n, 3)
		if err != nil {
			b.Fatal(err)
		}
		q := queryPattern(sys, "dv")
		q.Atom.Args[0] = ast.C("n0")
		for _, s := range []eval.Strategy{eval.StrategySemiNaive, eval.StrategyClass} {
			b.Run(fmt.Sprintf("n=%d/%s", n, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := eval.Answer(s, sys, q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQ3Pushdown measures the stable plan's per-cycle independence on
// statement (s3): the class engine evaluates σA^k and σB^k separately while
// the generic state engine enumerates their cross product.
func BenchmarkQ3Pushdown(b *testing.B) {
	sys := statement(b, "s3").System()
	// Sizes are deliberately small: the generic state engine enumerates the
	// cross product of the two bound cycles' frontiers (and the exit tuples
	// resolving the free position), which is exactly the blowup the paper's
	// per-cycle plans avoid.
	for _, fanout := range []int{3, 5} {
		db := storage.NewDatabase()
		// Three chains with fan-out: a on position 1, b on position 2,
		// c on position 3.
		if err := storage.GenRandomGraph(db, "a", 20, 20*fanout/2, 1); err != nil {
			b.Fatal(err)
		}
		if err := storage.GenRandomGraph(db, "b", 20, 20*fanout/2, 2); err != nil {
			b.Fatal(err)
		}
		if err := storage.GenRandomGraph(db, "c", 20, 20*fanout/2, 3); err != nil {
			b.Fatal(err)
		}
		if err := storage.GenRandomRelation(db, "e", 3, 20, 40, 4); err != nil {
			b.Fatal(err)
		}
		q := queryPattern(sys, "ddv")
		q.Atom.Args[0] = ast.C("n0")
		q.Atom.Args[1] = ast.C("n1")
		for _, s := range []eval.Strategy{eval.StrategyClass, eval.StrategyState, eval.StrategyNaive} {
			b.Run(fmt.Sprintf("fanout=%d/%s", fanout, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := eval.Answer(s, sys, q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQ4Magic compares the compiled iterate against the magic-sets
// baseline on the bound transitive-closure query.
func BenchmarkQ4Magic(b *testing.B) {
	sys := statement(b, "s1a").System()
	for _, n := range []int{128, 512} {
		db := storage.NewDatabase()
		if err := storage.GenRandomGraph(db, "a", n, 2*n, 5); err != nil {
			b.Fatal(err)
		}
		db.Set("e", db.Rel("a").Clone())
		q := queryPattern(sys, "dv")
		q.Atom.Args[0] = ast.C("n0")
		for _, s := range []eval.Strategy{eval.StrategyMagic, eval.StrategyClass, eval.StrategyState} {
			b.Run(fmt.Sprintf("n=%d/%s", n, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := eval.Answer(s, sys, q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQ5Unfold measures the Theorem-2 transformation for one-
// directional cycles of weight 2..5: unfolding cost and the compiled
// evaluation of the resulting stable system.
func BenchmarkQ5Unfold(b *testing.B) {
	// Weight 5 is omitted: the generic state engine's cost there would
	// dominate the whole suite (that blowup is the experiment's point).
	for _, w := range []int{2, 3, 4} {
		rule := cycleRule(w)
		sys, err := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", w, "e"))
		if err != nil {
			b.Fatal(err)
		}
		db, err := dlgen.RandomDB(sys, 6, 12, 11)
		if err != nil {
			b.Fatal(err)
		}
		q := queryPattern(sys, "d")
		q.Atom.Args[0] = ast.C("n0")
		b.Run(fmt.Sprintf("w=%d/transform", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.ToStable(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("w=%d/class", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Answer(eval.StrategyClass, sys, q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("w=%d/state", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Answer(eval.StrategyState, sys, q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQ6ParallelSemiNaive measures the worker-pool semi-naive engine
// against the sequential baseline on full transitive-closure
// materialization (the Q6 harness experiment). On a single-CPU host the
// pool is expected to tie with the sequential engine; the speedup shows
// with 4+ cores.
func BenchmarkQ6ParallelSemiNaive(b *testing.B) {
	prog, _, err := parser.ParseProgram(`
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	if err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 250, 500, 7); err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.SemiNaive(prog, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.ParallelSemiNaive(prog, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// cycleRule builds the weight-w generalization of statement (s4a): one
// one-directional rotational cycle over w positions.
func cycleRule(w int) ast.Rule {
	head := make([]ast.Term, w)
	rec := make([]ast.Term, w)
	for i := 0; i < w; i++ {
		head[i] = ast.V(fmt.Sprintf("X%d", i+1))
		rec[i] = ast.V(fmt.Sprintf("Y%d", i+1))
	}
	body := []ast.Atom{}
	for i := 0; i < w; i++ {
		// Connect head position i to rec position (i+1) mod w.
		body = append(body, ast.NewAtom(fmt.Sprintf("r%d", i+1),
			ast.V(fmt.Sprintf("X%d", i+1)), ast.V(fmt.Sprintf("Y%d", (i%w)+1))))
	}
	// Shift so the cycle has weight w: head i connects to rec i's
	// predecessor, matching s4a's pattern a(x1,y3), b(x2,y1), c(y2,x3).
	body = body[:0]
	for i := 0; i < w; i++ {
		j := ((i-1)+w)%w + 1
		body = append(body, ast.NewAtom(fmt.Sprintf("r%d", i+1),
			ast.V(fmt.Sprintf("X%d", i+1)), ast.V(fmt.Sprintf("Y%d", j))))
	}
	full := append(body, ast.NewAtom("p", rec...))
	return ast.NewRule(ast.NewAtom("p", head...), full...)
}

// BenchmarkAblationJoinOrder isolates the paper's evaluation principle
// ("selections before joins"): the same conjunctive query evaluated with
// the bound-first dynamic literal ordering versus strict source order,
// where a selective literal sits last.
func BenchmarkAblationJoinOrder(b *testing.B) {
	db := storage.NewDatabase()
	if err := storage.GenRandomRelation(db, "big1", 2, 60, 800, 1); err != nil {
		b.Fatal(err)
	}
	if err := storage.GenRandomRelation(db, "big2", 2, 60, 800, 2); err != nil {
		b.Fatal(err)
	}
	if err := storage.GenRandomRelation(db, "sel", 2, 60, 60, 3); err != nil {
		b.Fatal(err)
	}
	// Body with the selective literal last: sel(X, W) binds X from the
	// constant; dynamic ordering moves it first.
	rule := parser.MustParseRule("q(Y) :- big1(X, Y), big2(Y, Z), sel(W, X).")
	w := db.Rel("sel").Tuples()[0][0] // a constant guaranteed to select
	run := func(b *testing.B, ordered bool) {
		conj := eval.CompileConj(db.Syms, rule.Body)
		xID := conj.VarID("W")
		rels := eval.DBRels(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			binding := conj.NewBinding()
			binding[xID] = w
			count := 0
			if ordered {
				conj.EvalOrdered(rels, binding, func([]storage.Value) bool { count++; return true })
			} else {
				conj.Eval(rels, binding, func([]storage.Value) bool { count++; return true })
			}
		}
	}
	b.Run("bound-first", func(b *testing.B) { run(b, false) })
	b.Run("source-order", func(b *testing.B) { run(b, true) })
}
