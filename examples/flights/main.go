// Flights: a 3-D strongly stable recursion shaped like the paper's
// statement (s3). A reachable-itinerary relation tracks three independent
// attributes at once — the departure city walks the flight network, the
// fare class moves along upgrade chains, and the service tier follows a
// loyalty ladder:
//
//	reach(City, Fare, Tier) :- hop(City, C1), upgrade(Fare, F1),
//	                           reach(C1, F1, T1), promo(T1, Tier).
//	reach(City, Fare, Tier) :- offer(City, Fare, Tier).
//
// Its I-graph has three disjoint unit cycles (class A1), so every query
// form compiles into independent σ-chains per the paper's §4.1 — the
// example prints the plan for several adornments and compares the compiled
// engine with the bottom-up baselines.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

func main() {
	c, err := core.Parse(`
		reach(City, Fare, Tier) :- hop(City, C1), upgrade(Fare, F1), reach(C1, F1, T1), promo(T1, Tier).
		reach(City, Fare, Tier) :- offer(City, Fare, Tier).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Explain())
	fmt.Println()

	db := buildNetwork()

	for _, qs := range []string{
		"?- reach(sea, economy, Tier).",
		"?- reach(sea, Fare, gold).",
		"?- reach(City, economy, gold).",
	} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			log.Fatal(err)
		}
		report, err := c.ExplainQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)

		compiled, compiledStats, err := c.Answer(q, db)
		if err != nil {
			log.Fatal(err)
		}
		naive, naiveStats, err := c.AnswerWith(eval.StrategyNaive, q, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("answers: %d | compiled %v | naive %v | agree: %v\n\n",
			compiled.Len(), compiledStats, naiveStats, naive.Equal(compiled))
	}
}

// buildNetwork populates a small flight network, an upgrade chain and a
// loyalty ladder, plus the base offers (the exit relation).
func buildNetwork() *storage.Database {
	db := storage.NewDatabase()
	must := func(_ bool, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// Flight hops (selection side for the first query).
	for _, e := range [][2]string{
		{"sea", "sfo"}, {"sfo", "lax"}, {"lax", "phx"}, {"phx", "den"},
		{"sea", "den"}, {"den", "ord"}, {"ord", "jfk"}, {"jfk", "bos"},
	} {
		must(db.Insert("hop", e[0], e[1]))
	}
	// Fare upgrade chain.
	for _, e := range [][2]string{
		{"economy", "premium"}, {"premium", "business"}, {"business", "first"},
	} {
		must(db.Insert("upgrade", e[0], e[1]))
	}
	// Loyalty ladder: promo(T1, Tier) chains upward from the exit value.
	for _, e := range [][2]string{
		{"blue", "silver"}, {"silver", "gold"}, {"gold", "platinum"},
	} {
		must(db.Insert("promo", e[0], e[1]))
	}
	// Base offers: the exit relation.
	for _, t := range [][3]string{
		{"lax", "business", "silver"},
		{"den", "premium", "blue"},
		{"ord", "business", "gold"},
		{"jfk", "first", "silver"},
		{"bos", "first", "blue"},
	} {
		must(db.Insert("offer", t[0], t[1], t[2]))
	}
	return db
}
