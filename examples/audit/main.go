// Audit: stratified negation on top of the recursive substrate. An access
// audit derives which services each team can reach through the dependency
// graph (transitive closure — the paper's stable class A recursion), then
// uses negation-as-failure over the completed lower stratum to flag
// policy violations: teams holding credentials for services they cannot
// reach, and services no team reaches at all.
//
// The recursive layer is pure positive (the paper's fragment); the audit
// layer on top uses the substrate's stratified-negation extension, which
// the bottom-up engines evaluate stratum by stratum.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

func main() {
	prog, queries, err := parser.ParseProgram(`
		% Stratum 0: reachability through the dependency graph.
		reach(T, S) :- uses(T, S).
		reach(T, S) :- uses(T, M), dep(M, S).
		dep(X, Y) :- link(X, Y).
		dep(X, Y) :- link(X, Z), dep(Z, Y).

		% Stratum 1: audit findings via negation over the closed stratum.
		staleCred(T, S) :- cred(T, S), not reach(T, S).
		orphan(S) :- service(S), not reached(S).
		reached(S) :- reach(T, S).

		?- staleCred(T, S).
		?- orphan(S).
	`)
	if err != nil {
		log.Fatal(err)
	}

	db := storage.NewDatabase()
	must := func(_ bool, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// Service dependency links.
	for _, e := range [][2]string{
		{"gateway", "auth"}, {"auth", "userdb"},
		{"gateway", "billing"}, {"billing", "ledger"},
		{"reports", "warehouse"},
	} {
		must(db.Insert("link", e[0], e[1]))
	}
	// Direct service usage by teams.
	for _, e := range [][2]string{
		{"web", "gateway"}, {"finance", "billing"}, {"ml", "warehouse"},
	} {
		must(db.Insert("uses", e[0], e[1]))
	}
	// Issued credentials (some stale).
	for _, e := range [][2]string{
		{"web", "userdb"}, {"web", "warehouse"},
		{"finance", "ledger"}, {"ml", "userdb"},
	} {
		must(db.Insert("cred", e[0], e[1]))
	}
	for _, s := range []string{"gateway", "auth", "userdb", "billing", "ledger", "warehouse", "quarantine"} {
		must(db.Insert("service", s))
	}

	// Stratified evaluation: reach/dep saturate first, then the audit
	// rules read the completed relations through negation.
	out, stats, err := eval.SemiNaive(&ast.Program{Rules: prog.Rules}, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stratified evaluation: %v\n\n", stats)
	for _, q := range queries {
		ans, err := eval.AnswerQuery(out, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v  (%d findings)\n", q, ans.Len())
		var lines []string
		ans.Each(func(t storage.Tuple) bool {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = db.Syms.Name(v)
			}
			lines = append(lines, "  "+q.Atom.Pred+"("+strings.Join(parts, ", ")+")")
			return true
		})
		sort.Strings(lines)
		fmt.Println(strings.Join(lines, "\n"))
		fmt.Println()
	}

	// Cross-check the two bottom-up engines.
	ref, _, err := eval.Naive(&ast.Program{Rules: prog.Rules}, db)
	if err != nil {
		log.Fatal(err)
	}
	agree := true
	for _, pred := range []string{"reach", "staleCred", "orphan"} {
		if !ref.Rel(pred).Equal(out.Rel(pred)) {
			agree = false
		}
	}
	fmt.Println("naive and semi-naive agree:", agree)
}
