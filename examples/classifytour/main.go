// Classifytour walks the complete corpus of recursive statements from the
// paper — (s1a) through (s12) — and, for each, prints the I-graph, the
// class, the derived properties and the compiled evaluation plan for a
// representative query form, then validates the plan by evaluating it on a
// small random database against the naive baseline.
//
// Run with: go run ./examples/classifytour
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/paper"
	"repro/internal/storage"
)

func main() {
	for _, s := range paper.All() {
		fmt.Println(strings.Repeat("=", 72))
		fmt.Printf("%s (%s): %s\n", s.ID, s.Section, s.Notes)
		fmt.Println(strings.Repeat("=", 72))

		c, err := core.AnalyzeSystem(s.System())
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		fmt.Print(c.Explain())
		if got := c.Class().Code(); got != s.WantClass {
			log.Fatalf("%s: classified %s, paper says %s", s.ID, got, s.WantClass)
		}

		// Representative query: first position bound, rest free — the
		// paper's p(d, v, …) form.
		q := representativeQuery(c)
		report, err := c.ExplainQuery(q)
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		fmt.Println()
		fmt.Print(report)

		// Validate on a random database.
		db := randomDB(c)
		got, stats, err := c.Answer(q, db)
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		ref, _, err := c.AnswerWith(eval.StrategyNaive, q, db)
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		status := "MATCHES naive baseline"
		if !got.Equal(ref) {
			status = "MISMATCH vs naive baseline"
		}
		fmt.Printf("\nevaluation of %v: %d answers (%v) — %s\n\n", q, got.Len(), stats, status)
	}
}

func representativeQuery(c *core.Compilation) ast.Query {
	n := c.Sys.Arity()
	args := make([]ast.Term, n)
	args[0] = ast.C("n1")
	for i := 1; i < n; i++ {
		args[i] = ast.V(fmt.Sprintf("V%d", i))
	}
	return ast.Query{Atom: ast.NewAtom(c.Sys.Pred(), args...)}
}

func randomDB(c *core.Compilation) *storage.Database {
	db := storage.NewDatabase()
	prog := c.Sys.Program()
	for _, pred := range prog.EDBPreds() {
		arity := 0
		for _, r := range prog.Rules {
			for _, a := range r.Body {
				if a.Pred == pred {
					arity = a.Arity()
				}
			}
		}
		if err := storage.GenRandomRelation(db, pred, arity, 6, 12, 7); err != nil {
			log.Fatal(err)
		}
	}
	return db
}
