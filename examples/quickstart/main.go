// Quickstart: analyze and query the canonical linear recursion — ancestor
// (transitive closure) — with the library's compiled engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

func main() {
	// 1. Define the recursive system: one linear recursive rule + exit rule.
	c, err := core.Parse(`
		ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
		ancestor(X, Y) :- parent(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the classification: ancestor is the paper's strongly
	// stable shape (statement s1a) — disjoint unit cycles.
	fmt.Println(c.Explain())

	// 3. Load an extensional database.
	db := storage.NewDatabase()
	for _, edge := range [][2]string{
		{"kim", "sandy"}, {"kim", "pat"},
		{"sandy", "lee"}, {"pat", "robin"},
		{"lee", "casey"}, {"robin", "drew"},
	} {
		if _, err := db.Insert("parent", edge[0], edge[1]); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Ask for kim's descendants; the compiled plan pushes the selection
	// into the σ(parent)^k chain instead of materializing all of ancestor.
	q, err := parser.ParseQuery("?- ancestor(kim, Y).")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := c.ExplainQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	ans, stats, err := c.Answer(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers (%d, %v):\n", ans.Len(), stats)
	var lines []string
	ans.Each(func(t storage.Tuple) bool {
		lines = append(lines, fmt.Sprintf("  ancestor(%s, %s)", db.Syms.Name(t[0]), db.Syms.Name(t[1])))
		return true
	})
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))

	// 5. Cross-check against the naive bottom-up baseline.
	ref, naiveStats, err := c.AnswerWith(eval.StrategyNaive, q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive baseline agrees: %v (naive did %v vs compiled %v)\n",
		ans.Equal(ref), naiveStats, stats)
}
