// Bill-of-materials: two recursions over the same parts database showing
// opposite ends of the paper's classification.
//
// sameStage pairs assemblies whose components sit at the same depth of the
// part hierarchy — the classic same-generation program. Its I-graph has two
// disjoint unit rotational cycles, so it is strongly stable (class A1) and
// compiles into independent σ-chains.
//
// costlier is a bounded ("pseudo") recursion, shaped like the paper's
// statement (s10): the classifier proves a data-independent rank bound, so
// the engine replaces the fixpoint with finitely many non-recursive
// formulas (§5, §7).
//
// Run with: go run ./examples/bom
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

func main() {
	db := buildParts()

	// Same-generation: stable class A recursion.
	sg, err := core.Parse(`
		sameStage(X, Y) :- contains(X1, X), sameStage(X1, Y1), contains(Y1, Y).
		sameStage(X, X1) :- root(X, X1).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- sameStage: same-generation over the part hierarchy ---")
	fmt.Print(sg.Explain())
	q, err := parser.ParseQuery("?- sameStage(wheel, Y).")
	if err != nil {
		log.Fatal(err)
	}
	report, err := sg.ExplainQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report)
	printAnswers(sg, q, db)

	// Bounded recursion: the recursive attribute chain dead-ends after a
	// fixed number of expansions regardless of the data.
	bounded, err := core.Parse(`
		costlier(X, Y) :- premium(Y), madeBy(X, Y1), costlier(X1, Y1).
		costlier(X, Y) :- listed(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- costlier: a bounded (pseudo) recursion ---")
	fmt.Print(bounded.Explain())
	rules, err := bounded.NonRecursive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent non-recursive formulas:")
	for _, r := range rules {
		fmt.Println("  " + r.String())
	}
	q2, err := parser.ParseQuery("?- costlier(frame, Y).")
	if err != nil {
		log.Fatal(err)
	}
	printAnswers(bounded, q2, db)
}

func printAnswers(c *core.Compilation, q ast.Query, db *storage.Database) {
	ans, stats, err := c.Answer(q, db)
	if err != nil {
		log.Fatal(err)
	}
	ref, _, err := c.AnswerWith(eval.StrategyNaive, q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v -> %d answers (%v), naive agrees: %v\n", q, ans.Len(), stats, ans.Equal(ref))
	var lines []string
	ans.Each(func(t storage.Tuple) bool {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = db.Syms.Name(v)
		}
		lines = append(lines, fmt.Sprintf("  %s(%s)", q.Atom.Pred, strings.Join(parts, ", ")))
		return true
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func buildParts() *storage.Database {
	db := storage.NewDatabase()
	must := func(_ bool, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// Part hierarchy: contains(assembly, component).
	for _, e := range [][2]string{
		{"bike", "frame"}, {"bike", "wheel"},
		{"frame", "tube"}, {"frame", "fork"},
		{"wheel", "rim"}, {"wheel", "hub"},
		{"hub", "axle"}, {"hub", "bearing"},
	} {
		must(db.Insert("contains", e[0], e[1]))
	}
	// Exit relation for sameStage: every top-level assembly is at the same
	// stage as itself and its siblings.
	for _, e := range [][2]string{
		{"bike", "bike"}, {"frame", "wheel"}, {"wheel", "frame"},
	} {
		must(db.Insert("root", e[0], e[1]))
	}
	// Relations for the bounded recursion.
	for _, p := range []string{"carbonTube", "titaniumAxle"} {
		must(db.Insert("premium", p))
	}
	for _, e := range [][2]string{
		{"frame", "acme"}, {"wheel", "spinco"}, {"hub", "spinco"},
	} {
		must(db.Insert("madeBy", e[0], e[1]))
	}
	for _, e := range [][2]string{
		{"frame", "carbonTube"}, {"wheel", "titaniumAxle"},
	} {
		must(db.Insert("listed", e[0], e[1]))
	}
	return db
}
