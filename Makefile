# Reproduction of Youn, Henschen & Han, SIGMOD 1988.
# Everything is stdlib-only Go; the module works fully offline.

GO ?= go

.PHONY: all build vet test test-short race verify cover bench bench-smoke obs-smoke serve-smoke shard-smoke plan-smoke experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test execution order so inter-test state
# dependencies (shared caches, package-level registries) cannot hide.
test:
	$(GO) test -shuffle=on ./...

test-short:
	$(GO) test -short ./...

# The parallel engines (eval.ParallelSemiNaive, the stable evaluator's
# frontier pool), the obs span/metrics layer, the snapshot/result-cache
# serving path and the HTTP server are only trustworthy race-detector
# clean; vet runs first so the race build never masks a static diagnostic.
race:
	$(GO) vet ./internal/obs ./internal/eval ./internal/server
	$(GO) test -race ./...
	$(GO) test -race -run 'Sharded|ChooseShards|ShardOf|PartitionTuplesByHash' -count=1 ./internal/eval ./internal/storage

# Full pre-merge gate: build, vet, shuffled tests, race detector, shard
# and cost-planner smokes.
verify: build vet test race shard-smoke plan-smoke

cover:
	$(GO) test -cover ./...

# One benchmark per paper figure/example/experiment lives in bench_test.go;
# per-package micro-benchmarks live next to their packages.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every storage/eval benchmark: catches benchmarks that
# no longer compile or crash, cheap enough for CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./internal/storage ./internal/eval
	@t=$$(mktemp -d) && cp BENCH_serve.json $$t/ 2>/dev/null; \
	$(GO) build -o $$t/dlbench ./cmd/dlbench && (cd $$t && ./dlbench -experiment q12 -quick); \
	rc=$$?; rm -rf $$t; exit $$rc

# End-to-end observability smoke: dlrun emits a -trace-json span tree that
# the schema-checking CLI test validates, plus the -serve endpoint test and
# the span-tree goldens. The dlserve debug test then drives the request-
# scoped surface against the built binary: /debug/queries, the slow ring
# (a 1ns threshold forces a query into it, sampled span tree attached),
# /statz percentiles, /readyz and the structured startup/request log. The
# journal/sampler unit suite runs under -race with the AllocsPerRun gate
# pinning the unsampled hot path at zero allocations.
obs-smoke:
	$(GO) test -run 'TestCLIDlrunTraceJSON|TestCLIDlrunServe|TestCLIDlserveDebugEndpoints' -count=1 .
	$(GO) test -run 'TestSpanTreeGolden' -count=1 ./internal/eval
	$(GO) test -race -run 'TestJournal|TestSampler|TestMountJournal|TestQuantile|TestPrometheusHistogramExposition|TestBuildInfo|TestStatz' -count=1 ./internal/obs
	$(GO) test -run 'TestSlowQueryJournalEndToEnd|TestInflightStreamedQuery|TestReadyz|TestRequestID|TestStructured' -count=1 ./internal/server

# End-to-end serving smoke: build dlserve, query it over HTTP (cold, warm,
# write, re-query, streamed NDJSON) and assert the result-cache and serving
# metrics moved. The quick Q9 sweep then gates the serving-path latencies:
# warm cached queries must stay within 3x of the committed BENCH_serve.json
# baseline, and maintained post-write queries must stay >=3x cheaper than
# cold-start recompute. The quick Q10 sweep gates the streaming path:
# limit-k and bound-target queries must derive >=5x less than full
# materialization and the first rows must arrive >=2x sooner. Both run in a
# scratch directory (seeded with the committed baseline) so the committed
# full-mode report is never overwritten.
serve-smoke:
	$(GO) test -run 'TestCLIDlserveSmoke' -count=1 .
	$(GO) test -run 'TestServer' -count=1 ./internal/server
	@t=$$(mktemp -d) && cp BENCH_serve.json $$t/ 2>/dev/null; \
	$(GO) build -o $$t/dlbench ./cmd/dlbench && (cd $$t && ./dlbench -experiment q9 -quick && ./dlbench -experiment q10 -quick); \
	rc=$$?; rm -rf $$t; exit $$rc

# Cost-planner smoke: the differential suite (compiled orders tuple-
# identical to greedy across engines, negation strata and the auto
# planner) plus cost-model/stats-epoch units, then the quick Q12 skew
# sweep in a scratch directory — the >=3x fewer-visits gate is counted
# in tuples visited, so it is machine-independent.
plan-smoke:
	$(GO) test -run 'TestCostModelSkew|TestCompiledOrdersMatchGreedy|TestPlanCacheStatsEpoch|TestAutoPlanReportsCost|TestColCardinalityContract|TestColStats|TestStatsEpochAdvances' -count=1 ./internal/eval ./internal/storage
	@t=$$(mktemp -d) && cp BENCH_serve.json $$t/ 2>/dev/null; \
	$(GO) build -o $$t/dlbench ./cmd/dlbench && (cd $$t && ./dlbench -experiment q12 -quick); \
	rc=$$?; rm -rf $$t; exit $$rc

# Sharded-fixpoint smoke: the differential suite under the race detector
# (sharded answers byte-identical to sequential semi-naive, partitioner
# exactness), then the quick Q11 scale-out sweep in a scratch directory.
# Q11's own gates are CPU-aware: the >=2x speedup at 4 shards is enforced
# on hosts with GOMAXPROCS >= 4 and skipped (sweep still recorded) on
# smaller machines, where logical shards cannot beat physical cores.
shard-smoke:
	$(GO) test -race -run 'Sharded|ShardOf|PartitionTuplesByHash' -count=1 ./internal/eval ./internal/storage
	@t=$$(mktemp -d) && cp BENCH_serve.json $$t/ 2>/dev/null; \
	$(GO) build -o $$t/dlbench ./cmd/dlbench && (cd $$t && ./dlbench -experiment q11 -quick); \
	rc=$$?; rm -rf $$t; exit $$rc

# Regenerate the full experiment report (paper claim vs measured).
experiments:
	$(GO) run ./cmd/dlbench | tee dlbench_output.txt

experiments-quick:
	$(GO) run ./cmd/dlbench -quick

fuzz:
	$(GO) test -fuzz FuzzParseProgram -fuzztime 30s ./internal/parser/

clean:
	$(GO) clean ./...
