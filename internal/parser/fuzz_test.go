package parser

import "testing"

// FuzzParseProgram exercises the lexer/parser on arbitrary inputs: it must
// never panic, and accepted programs must round-trip through their printed
// form.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"p(X, Y) :- a(X, Z), p(Z, Y).",
		"e(a, b). e(b, c).\n?- p(a, Y).",
		"% comment\np(X) :- q(X).",
		`likes("quo\"ted", X) :- knows(X).`,
		"p(-12, _G) :- q(_G).",
		"flag.",
		"p(X):-q(X),r(X,Y),s(Y).",
		"?- p(X).",
		"p( :- q.",
		":- .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, queries, err := ParseProgram(src)
		if err != nil {
			return // rejections are fine; panics are not
		}
		// Accepted input: printing and re-parsing must succeed and be stable.
		printed := prog.String()
		for _, q := range queries {
			printed += q.String() + "\n"
		}
		prog2, queries2, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", printed, err)
		}
		if len(prog2.Rules) != len(prog.Rules) || len(prog2.Facts) != len(prog.Facts) || len(queries2) != len(queries) {
			t.Fatalf("round trip changed shape: %q -> %q", src, printed)
		}
	})
}
