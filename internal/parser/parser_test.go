package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParseRuleForms(t *testing.T) {
	cases := []struct{ in, out string }{
		{"p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- a(X, Z), p(Z, Y)."},
		{"p(X,Y):-a(X,Z),p(Z,Y).", "p(X, Y) :- a(X, Z), p(Z, Y)."},
		{"e(a, b).", "e(a, b)."},
		{"e(1, 2).", "e(1, 2)."},
		{"e(-3, x9).", "e(-3, x9)."},
		{"flag.", "flag()."},
		{"q(X) :- r(X).", "q(X) :- r(X)."},
		{"p(_Tmp) :- a(_Tmp).", "p(_Tmp) :- a(_Tmp)."},
		{"likes(\"a b\", X) :- knows(X).", "likes(\"a b\", X) :- knows(X)."},
	}
	for _, tc := range cases {
		r, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got := r.String(); got != tc.out {
			t.Errorf("%q parsed to %q, want %q", tc.in, got, tc.out)
		}
	}
}

func TestVariableVsConstantConvention(t *testing.T) {
	r, err := ParseRule("p(Upper, lower, _under, 42).")
	if err != nil {
		t.Fatal(err)
	}
	wantVar := []bool{true, false, true, false}
	for i, w := range wantVar {
		if r.Head.Args[i].IsVar() != w {
			t.Errorf("arg %d (%s): isVar = %v, want %v", i, r.Head.Args[i].Name, r.Head.Args[i].IsVar(), w)
		}
	}
}

func TestParseProgramWithComments(t *testing.T) {
	prog, queries, err := ParseProgram(`
		% transitive closure
		p(X, Y) :- e(X, Y).   // base
		p(X, Y) :- e(X, Z), p(Z, Y).
		e(a, b).
		e(b, c).
		?- p(a, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 || len(prog.Facts) != 2 || len(queries) != 1 {
		t.Fatalf("rules=%d facts=%d queries=%d", len(prog.Rules), len(prog.Facts), len(queries))
	}
	if queries[0].String() != "?- p(a, Y)." {
		t.Errorf("query = %v", queries[0])
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("?- p(a, Y, 3).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atom.Pred != "p" || q.Atom.Arity() != 3 {
		t.Errorf("query atom = %v", q.Atom)
	}
	if q.Atom.Args[0].IsVar() || !q.Atom.Args[1].IsVar() || q.Atom.Args[2].IsVar() {
		t.Errorf("binding pattern wrong: %v", q.Atom)
	}
	if _, err := ParseQuery("p(a)."); err == nil {
		t.Error("rule accepted as query")
	}
}

func TestParseAtom(t *testing.T) {
	a, err := ParseAtom("edge(X, n7)")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "edge(X, n7)" {
		t.Errorf("atom = %v", a)
	}
	if _, err := ParseAtom("edge(X) extra"); err == nil {
		t.Error("trailing input accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X, Y)",         // missing dot
		"p(X :- a(X).",    // unbalanced paren
		"p(X) :- .",       // empty body
		"p(X) : a(X).",    // broken :-
		"p(X) ?- a(X).",   // misplaced ?-
		"\"unterminated",  // bad string
		"p(X) :- a(X)) .", // stray paren
		"p(X,) :- a(X).",  // trailing comma
		"p(X). q(",        // second clause broken
		"?- p(X), q(X).",  // conjunction query unsupported
	}
	for _, src := range bad {
		if _, _, err := ParseProgram(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, _, err := ParseProgram("p(X) :- a(X).\nq(Y :- b(Y).")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q does not mention line 2", err)
	}
}

func TestMustParseRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseRule did not panic on bad input")
		}
	}()
	MustParseRule("p(")
}

// TestRoundTripRandomRules checks print-then-parse identity on random rules.
func TestRoundTripRandomRules(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	preds := []string{"a", "b", "c", "edge"}
	vars := []string{"X", "Y", "Z", "W"}
	consts := []string{"n1", "n2", "k"}
	randomAtom := func(pred string) ast.Atom {
		arity := 1 + rng.Intn(3)
		args := make([]ast.Term, arity)
		for i := range args {
			if rng.Intn(2) == 0 {
				args[i] = ast.V(vars[rng.Intn(len(vars))])
			} else {
				args[i] = ast.C(consts[rng.Intn(len(consts))])
			}
		}
		return ast.NewAtom(pred, args...)
	}
	for trial := 0; trial < 200; trial++ {
		head := randomAtom(preds[rng.Intn(len(preds))])
		var body []ast.Atom
		for i := 0; i < rng.Intn(4); i++ {
			body = append(body, randomAtom(preds[rng.Intn(len(preds))]))
		}
		rule := ast.NewRule(head, body...)
		parsed, err := ParseRule(rule.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", rule, err)
		}
		if parsed.String() != rule.String() {
			t.Fatalf("round trip changed rule: %q -> %q", rule, parsed)
		}
	}
}

func TestParseNegatedLiterals(t *testing.T) {
	r, err := ParseRule("p(X) :- q(X), not r(X, k).")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 || !r.Body[1].Neg {
		t.Fatalf("negation not parsed: %v", r)
	}
	if r.String() != "p(X) :- q(X), not r(X, k)." {
		t.Errorf("round trip = %q", r.String())
	}
	back, err := ParseRule(r.String())
	if err != nil || !back.Body[1].Neg {
		t.Errorf("re-parse lost negation: %v %v", back, err)
	}
	// "not" directly followed by '(' is the predicate named not.
	r2, err := ParseRule("p(X) :- not(X).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Body[0].Neg || r2.Body[0].Pred != "not" {
		t.Errorf("not-as-predicate broken: %v", r2)
	}
	// Double negation is not part of the language.
	if _, err := ParseRule("p(X) :- q(X), not not r(X)."); err == nil {
		t.Error("double negation accepted")
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tokEOF, tokIdent, tokVar, tokNumber, tokString,
		tokLParen, tokRParen, tokComma, tokDot, tokImplies, tokQuery}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown token" {
			t.Errorf("kind %d renders %q", k, s)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if tokenKind(99).String() != "unknown token" {
		t.Error("unknown kind must say so")
	}
}

func TestParseRuleErrorPaths(t *testing.T) {
	if _, err := ParseRule("?- p(X)."); err == nil {
		t.Error("query accepted as rule")
	}
	if _, err := ParseRule("p(X). q(Y)."); err == nil {
		t.Error("trailing clause accepted by ParseRule")
	}
	if _, err := ParseRule("p("); err == nil {
		t.Error("broken input accepted")
	}
}

func TestParseQueryErrorPaths(t *testing.T) {
	if _, err := ParseQuery("?- p(X). ?- q(Y)."); err == nil {
		t.Error("two queries accepted by ParseQuery")
	}
	if _, err := ParseQuery("?- ."); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := ParseQuery("?-"); err == nil {
		t.Error("truncated query accepted")
	}
}

func TestParseAtomErrorPaths(t *testing.T) {
	if _, err := ParseAtom("(X)"); err == nil {
		t.Error("missing predicate accepted")
	}
	if _, err := ParseAtom("p(?)"); err == nil {
		t.Error("bad term accepted")
	}
	if _, err := ParseAtom("p(X"); err == nil {
		t.Error("unclosed paren accepted")
	}
}

func TestLexerColonWithoutDash(t *testing.T) {
	if _, _, err := ParseProgram("p(X) : - a(X)."); err == nil {
		t.Error("':' without '-' accepted")
	}
	if _, _, err := ParseProgram("p(X) ?x a(X)."); err == nil {
		t.Error("'?' without '-' accepted")
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	r, err := ParseRule("père(X) :- äter(X).")
	if err != nil {
		t.Fatalf("unicode identifiers rejected: %v", err)
	}
	if r.Head.Pred != "père" {
		t.Errorf("pred = %q", r.Head.Pred)
	}
}
