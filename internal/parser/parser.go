package parser

import (
	"fmt"

	"repro/internal/ast"
)

// Parser turns source text into AST clauses. Construct with New and call
// ParseProgram, or use the package-level convenience functions.
type Parser struct {
	lex *lexer
	tok token
}

// New returns a parser over src.
func New(src string) (*Parser, error) {
	p := &Parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("%d:%d: expected %v, found %v %q",
			p.tok.line, p.tok.col, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *Parser) parseTerm() (ast.Term, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.V(name), nil
	case tokIdent, tokNumber, tokString:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(name), nil
	default:
		return ast.Term{}, fmt.Errorf("%d:%d: expected term, found %v %q",
			p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
}

func (p *Parser) parseAtom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tokLParen {
		// Propositional atom (arity 0).
		return ast.NewAtom(name.text), nil
	}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	var args []ast.Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return ast.Atom{}, err
			}
			args = append(args, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return ast.NewAtom(name.text, args...), nil
}

// parseLiteral parses a body literal: an atom optionally preceded by the
// keyword "not" (stratified negation for the bottom-up engines). The word
// "not" still works as a predicate name when directly followed by '('.
func (p *Parser) parseLiteral() (ast.Atom, error) {
	if p.tok.kind == tokIdent && p.tok.text == "not" {
		// Peek: "not foo(..)" is a negation; "not(..)" is the predicate not.
		save := *p.lex
		tok := p.tok
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		if p.tok.kind == tokIdent {
			a, err := p.parseAtom()
			if err != nil {
				return ast.Atom{}, err
			}
			return a.Not(), nil
		}
		*p.lex = save
		p.tok = tok
	}
	return p.parseAtom()
}

// Clause is one parsed statement: either a rule/fact or a query.
type Clause struct {
	Rule    *ast.Rule
	Query   *ast.Query
	IsQuery bool
}

func (p *Parser) parseClause() (Clause, error) {
	if p.tok.kind == tokQuery {
		if err := p.advance(); err != nil {
			return Clause{}, err
		}
		a, err := p.parseAtom()
		if err != nil {
			return Clause{}, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return Clause{}, err
		}
		return Clause{Query: &ast.Query{Atom: a}, IsQuery: true}, nil
	}
	head, err := p.parseAtom()
	if err != nil {
		return Clause{}, err
	}
	var body []ast.Atom
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return Clause{}, err
		}
		for {
			a, err := p.parseLiteral()
			if err != nil {
				return Clause{}, err
			}
			body = append(body, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return Clause{}, err
			}
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return Clause{}, err
	}
	r := ast.NewRule(head, body...)
	return Clause{Rule: &r}, nil
}

// ParseProgram parses the whole input into a program plus any queries, in
// source order.
func (p *Parser) ParseProgram() (*ast.Program, []ast.Query, error) {
	prog := &ast.Program{}
	var queries []ast.Query
	for p.tok.kind != tokEOF {
		c, err := p.parseClause()
		if err != nil {
			return nil, nil, err
		}
		if c.IsQuery {
			queries = append(queries, *c.Query)
		} else {
			prog.AddRule(*c.Rule)
		}
	}
	return prog, queries, nil
}

// ParseProgram parses src into a program and its queries.
func ParseProgram(src string) (*ast.Program, []ast.Query, error) {
	p, err := New(src)
	if err != nil {
		return nil, nil, err
	}
	return p.ParseProgram()
}

// ParseRule parses a single rule or fact terminated by '.'.
func ParseRule(src string) (ast.Rule, error) {
	p, err := New(src)
	if err != nil {
		return ast.Rule{}, err
	}
	c, err := p.parseClause()
	if err != nil {
		return ast.Rule{}, err
	}
	if c.IsQuery {
		return ast.Rule{}, fmt.Errorf("expected rule, found query")
	}
	if p.tok.kind != tokEOF {
		return ast.Rule{}, fmt.Errorf("trailing input after rule")
	}
	return *c.Rule, nil
}

// ParseAtom parses a single atom with no terminator.
func ParseAtom(src string) (ast.Atom, error) {
	p, err := New(src)
	if err != nil {
		return ast.Atom{}, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tokEOF {
		return ast.Atom{}, fmt.Errorf("trailing input after atom")
	}
	return a, nil
}

// ParseQuery parses a single "?- atom." query.
func ParseQuery(src string) (ast.Query, error) {
	p, err := New(src)
	if err != nil {
		return ast.Query{}, err
	}
	c, err := p.parseClause()
	if err != nil {
		return ast.Query{}, err
	}
	if !c.IsQuery {
		return ast.Query{}, fmt.Errorf("expected query, found rule")
	}
	if p.tok.kind != tokEOF {
		return ast.Query{}, fmt.Errorf("trailing input after query")
	}
	return *c.Query, nil
}

// MustParseRule is ParseRule that panics on error; for tests and fixtures.
func MustParseRule(src string) ast.Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}
