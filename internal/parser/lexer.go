// Package parser implements the textual surface syntax for the deductive
// database language: Datalog rules, facts and queries.
//
// Syntax summary:
//
//	p(X, Y) :- a(X, Z), p(Z, Y).   % rule (Prolog convention: Uppercase = variable)
//	a(1, 2).                       % ground fact
//	?- p(1, Y).                    % query
//	% line comment, // line comment
//
// Constants are lowercase identifiers, quoted strings or integers; variables
// begin with an uppercase letter or underscore.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokQuery   // ?-
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer scans the input into tokens with line/column positions for error
// reporting.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// next returns the next token or an error.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case r == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case r == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case r == '.':
		l.advance()
		return token{kind: tokDot, text: ".", line: line, col: col}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(line, col, "expected ':-'")
		}
		l.advance()
		return token{kind: tokImplies, text: ":-", line: line, col: col}, nil
	case r == '?':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(line, col, "expected '?-'")
		}
		l.advance()
		return token{kind: tokQuery, text: "?-", line: line, col: col}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
			}
			b.WriteRune(c)
		}
		return token{kind: tokString, text: b.String(), line: line, col: col}, nil
	case unicode.IsDigit(r) || (r == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
		var b strings.Builder
		b.WriteRune(l.advance())
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
		return token{kind: tokNumber, text: b.String(), line: line, col: col}, nil
	case isIdentStart(r):
		var b strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			b.WriteRune(l.advance())
		}
		text := b.String()
		first, _ := utf8.DecodeRuneInString(text)
		kind := tokIdent
		if unicode.IsUpper(first) || first == '_' {
			kind = tokVar
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", r)
	}
}
