package classify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dlgen"
	"repro/internal/parser"
)

// TestTheorem12Completeness: every admissible random rule receives exactly
// one well-defined class, and the per-component classes are from the
// component taxonomy.
func TestTheorem12Completeness(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		rule := dlgen.RandomRule(rng, dlgen.Config{})
		res, err := Classify(rule)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		switch res.Class {
		case ClassA1, ClassA2, ClassA3, ClassA4, ClassA5, ClassB, ClassC, ClassD, ClassE, ClassF:
		default:
			t.Fatalf("%v: formula class %v outside the taxonomy", rule, res.Class)
		}
		nontrivial := 0
		for _, c := range res.Components {
			switch c.Class {
			case ClassA1, ClassA2, ClassA3, ClassA4, ClassB, ClassC, ClassD, ClassE:
				nontrivial++
			case ClassTrivial:
			default:
				t.Fatalf("%v: component class %v not allowed", rule, c.Class)
			}
		}
		if nontrivial == 0 {
			t.Fatalf("%v: no non-trivial component in a recursive rule", rule)
		}
		// Consistency of derived flags.
		if res.Stable && !res.Transformable {
			t.Fatalf("%v: stable but not transformable", rule)
		}
		if res.Stable && res.StabilizationPeriod != 1 {
			t.Fatalf("%v: stable with period %d", rule, res.StabilizationPeriod)
		}
		if res.Permutational && !res.Bounded {
			t.Fatalf("%v: permutational must be bounded (Theorem 10)", rule)
		}
		if res.Bounded && res.RankBound < 0 {
			t.Fatalf("%v: bounded with negative rank", rule)
		}
	}
}

// TestClassAggregation covers the combination rules of §3 and Theorem 9.
func TestClassAggregation(t *testing.T) {
	cases := []struct {
		rule string
		want string
	}{
		// Two components, both A1 → A1.
		{"p(X, Y) :- a(X, X1), b(Y, Y1), p(X1, Y1).", "A1"},
		// A1 ⊎ A2 → A5.
		{"p(X, Y) :- a(X, X1), p(X1, Y).", "A5"},
		// A2 ⊎ A4 → A5 (permutational, bounded by Theorem 10).
		{"p(X, Y, Z) :- p(X, Z, Y).", "A5"},
		// A1 ⊎ D → F (Theorem 9: mixed cannot be unit-cycle).
		{"p(X, Y) :- a(X, X1), b(Y, W), p(X1, Y1), c(Y1).", "F"},
		// Two unit rotational cycles in opposite chain directions: still A1.
		{"p(X, Y) :- a(X, Y1), p(Y1, X1), b(X1, Y).", "A1"},
		// B alone: single multi-directional cycle of weight 0.
		{"p(X, Y) :- a(X, Y), p(X1, Y1), b(X1, Y1).", "B"},
		// E: directed edge hanging off a unit cycle (dependent).
		{"p(X, Y) :- a(X, X1), b(X, Y1), c(Y), p(X1, Y1).", "E"},
	}
	for _, tc := range cases {
		rule := parser.MustParseRule(tc.rule)
		res, err := Classify(rule)
		if err != nil {
			t.Fatalf("%s: %v", tc.rule, err)
		}
		if res.Class.Code() != tc.want {
			t.Errorf("%s: class %s, want %s\n%s", tc.rule, res.Class.Code(), tc.want, res.Explain())
		}
	}
}

// TestDependentCycleCases covers the three cases of Theorem 8's proof.
func TestDependentCycleCases(t *testing.T) {
	cases := []struct {
		name, rule string
	}{
		// CASE 1: an undirected edge whose both nodes are tails.
		{"tails-shared", "p(X, Y) :- a(X, Y), p(X1, Y1), b(X1, Y1), c(X, X1), d(Y, Y1)."},
		// CASE 3: extra undirected edge across a one-directional cycle of
		// weight 2 making it dependent.
		{"chord", "p(X, Y) :- a(X, Y1), b(Y, X1), c(X, X1), p(X1, Y1)."},
	}
	for _, tc := range cases {
		rule := parser.MustParseRule(tc.rule)
		res, err := Classify(rule)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Transformable {
			t.Errorf("%s (%s): dependent formula marked transformable\n%s", tc.name, tc.rule, res.Explain())
		}
		hasE := false
		for _, c := range res.Components {
			if c.Class == ClassE {
				hasE = true
			}
		}
		if !hasE {
			t.Errorf("%s (%s): no dependent component found\n%s", tc.name, tc.rule, res.Explain())
		}
	}
}

// TestTheorem10TightBound: pure permutations have rank bound LCM−1.
func TestTheorem10TightBound(t *testing.T) {
	cases := []struct {
		rule string
		want int
	}{
		{"p(X, Y) :- p(Y, X).", 1},                         // swap: lcm 2
		{"p(X, Y, Z) :- p(Y, Z, X).", 2},                   // 3-cycle
		{"p(X, Y, Z, U, V, W) :- p(Z, Y, U, X, W, V).", 5}, // s6: lcm(3,1,2)=6
		{"p(X) :- p(X).", 0},                               // identity
	}
	for _, tc := range cases {
		res := MustClassify(parser.MustParseRule(tc.rule))
		if !res.Bounded || !res.RankBoundTight {
			t.Errorf("%s: bounded=%v tight=%v", tc.rule, res.Bounded, res.RankBoundTight)
		}
		if res.RankBound != tc.want {
			t.Errorf("%s: rank = %d, want %d", tc.rule, res.RankBound, tc.want)
		}
	}
}

// TestTheorem11MixedBoundedCombination: {A2, A4, B, D} combinations are
// bounded; the reported (conservative) bound must be at least each part's.
func TestTheorem11MixedBoundedCombination(t *testing.T) {
	// A4 (swap on X,Y) ⊎ D (dangling directed edge Z -> W1).
	rule := parser.MustParseRule("p(X, Y, Z) :- a(Z), p(Y, X, W1), b(W1).")
	res := MustClassify(rule)
	if !res.Bounded {
		t.Fatalf("Theorem 11 combination not bounded:\n%s", res.Explain())
	}
	if res.RankBoundTight {
		t.Error("mixed combination bound must be flagged conservative")
	}
	if res.RankBound < 1 {
		t.Errorf("conservative bound %d too small", res.RankBound)
	}
	if res.Class.Code() != "F" {
		t.Errorf("class = %s, want F", res.Class.Code())
	}
}

// TestIoannidisTheoremOnRandomRules: a random rule with no permutational
// pattern is bounded iff its I-graph has no non-zero-weight cycle.
func TestIoannidisTheoremOnRandomRules(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 400; trial++ {
		rule := dlgen.RandomRule(rng, dlgen.Config{})
		res := MustClassify(rule)
		if res.Permutational {
			continue // Theorem 10 territory
		}
		hasPermComponent := false
		for _, c := range res.Components {
			if c.Class == ClassA2 || c.Class == ClassA4 {
				hasPermComponent = true
			}
		}
		if hasPermComponent {
			continue // mixed Theorem 11 territory
		}
		noNonZero := !res.IG.G.HasNonZeroWeightCycle()
		if noNonZero != res.Bounded {
			t.Fatalf("Ioannidis violated by %v: noNonZeroCycle=%v bounded=%v\n%s",
				rule, noNonZero, res.Bounded, res.Explain())
		}
		if res.Bounded && res.RankBound != res.IG.G.MaxPathWeight() {
			t.Fatalf("%v: rank %d != max path weight %d", rule, res.RankBound, res.IG.G.MaxPathWeight())
		}
	}
}

func TestExplainMentionsEverything(t *testing.T) {
	res := MustClassify(parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y)."))
	out := res.Explain()
	for _, want := range []string{"class:", "component 1", "strongly stable", "bounded", "dimension: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestClassStringAndCode(t *testing.T) {
	all := []Class{ClassA1, ClassA2, ClassA3, ClassA4, ClassA5, ClassB, ClassC, ClassD, ClassE, ClassF, ClassTrivial}
	seen := map[string]bool{}
	for _, c := range all {
		if c.String() == "" || c.Code() == "" || c.Code() == "?" {
			t.Errorf("class %d renders badly: %q %q", c, c.String(), c.Code())
		}
		if seen[c.Code()] {
			t.Errorf("duplicate code %s", c.Code())
		}
		seen[c.Code()] = true
	}
	if Class(99).Code() != "?" {
		t.Error("unknown class code")
	}
}

func TestLCM(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{4, 6}, 12},
		{[]int{1, 2, 3, 1}, 6}, // s7's cycle weights
		{[]int{0, 5}, 0},
	}
	for _, tc := range cases {
		if got := LCM(tc.in...); got != tc.want {
			t.Errorf("LCM(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClassifyRejectsInvalid(t *testing.T) {
	rule := parser.MustParseRule("p(X) :- a(X).")
	if _, err := Classify(rule); err == nil {
		t.Error("non-recursive rule classified")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustClassify did not panic")
		}
	}()
	MustClassify(rule)
}
