package classify_test

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/parser"
)

// ExampleClassify analyzes the paper's statement (s3): three disjoint unit
// cycles, hence strongly stable.
func ExampleClassify() {
	rule := parser.MustParseRule("p(X, Y, Z) :- a(X, U), b(Y, V), p(U, V, W), c(W, Z).")
	res, err := classify.Classify(rule)
	if err != nil {
		panic(err)
	}
	fmt.Println("class:", res.Class.Code())
	fmt.Println("components:", len(res.Components))
	fmt.Println("strongly stable:", res.Stable)
	fmt.Println("bounded:", res.Bounded)
	// Output:
	// class: A1
	// components: 3
	// strongly stable: true
	// bounded: false
}

// ExampleClassify_bounded analyzes the paper's statement (s8): a
// multi-directional cycle of weight 0, bounded with Ioannidis's rank 2.
func ExampleClassify_bounded() {
	rule := parser.MustParseRule("p(X, Y, Z, U) :- a(X, Y), b(Y1, U), c(Z1, U1), p(Z, Y1, Z1, U1).")
	res := classify.MustClassify(rule)
	fmt.Println("class:", res.Class.Code())
	fmt.Printf("bounded: %v (rank %d)\n", res.Bounded, res.RankBound)
	// Output:
	// class: B
	// bounded: true (rank 2)
}
