package classify

import (
	"math/rand"
	"testing"

	"repro/internal/dlgen"
	"repro/internal/paper"
)

// BenchmarkClassifyCorpus measures one classification pass over the whole
// paper corpus — the per-rule compilation cost a deductive DBMS would pay
// at schema-definition time.
func BenchmarkClassifyCorpus(b *testing.B) {
	stmts := paper.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stmts {
			if _, err := Classify(s.Rule); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassifyRandom measures classification over random rules of
// growing arity (the cycle enumeration dominates).
func BenchmarkClassifyRandom(b *testing.B) {
	for _, arity := range []int{2, 4, 6} {
		rng := rand.New(rand.NewSource(7))
		cfg := dlgen.Config{MaxArity: arity, MaxAtoms: arity + 1}
		samples := make([]func() error, 0, 50)
		for i := 0; i < 50; i++ {
			rule := dlgen.RandomRule(rng, cfg)
			samples = append(samples, func() error {
				_, err := Classify(rule)
				return err
			})
		}
		b.Run("arity"+string(rune('0'+arity)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range samples {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
