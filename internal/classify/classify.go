// Package classify implements the paper's classification of linear recursive
// formulas (§3): every formula falls into exactly one of the classes
//
//	(A1) unit rotational cycles        (A2) unit permutational cycles
//	(A3) non-unit rotational cycles    (A4) non-unit permutational cycles
//	(A5) disjoint combinations of different Ai
//	(B)  bounded cycles                (C)  unbounded cycles
//	(D)  no non-trivial cycles         (E)  dependent cycles
//	(F)  mixed: disjoint combinations of different classes
//
// plus the derived semantic properties: strong stability (Theorem 1),
// transformability to a stable formula with the stabilization period
// (Theorems 2 and 4), and boundedness with rank bounds (Ioannidis's theorem
// and Theorems 10 and 11).
package classify

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/igraph"
)

// Class identifies a formula or component class from §3 of the paper.
type Class uint8

// Formula and component classes. ClassTrivial marks a component with no
// directed edge; it never classifies a whole formula.
const (
	ClassA1 Class = iota // unit, rotational cycle
	ClassA2              // unit, permutational cycle (self-loop)
	ClassA3              // non-unit, rotational cycle
	ClassA4              // non-unit, permutational cycle
	ClassA5              // disjoint combination of different Ai
	ClassB               // bounded cycle (independent, multi-directional, weight 0)
	ClassC               // unbounded cycle (independent, multi-directional, weight ≠ 0)
	ClassD               // no non-trivial cycle
	ClassE               // dependent cycles
	ClassF               // mixed classes
	ClassTrivial
)

// String returns the paper's name of the class.
func (c Class) String() string {
	switch c {
	case ClassA1:
		return "A1 (unit, rotational)"
	case ClassA2:
		return "A2 (unit, permutational)"
	case ClassA3:
		return "A3 (non-unit, rotational)"
	case ClassA4:
		return "A4 (non-unit, permutational)"
	case ClassA5:
		return "A5 (disjoint one-directional combination)"
	case ClassB:
		return "B (bounded cycle)"
	case ClassC:
		return "C (unbounded cycle)"
	case ClassD:
		return "D (no non-trivial cycle)"
	case ClassE:
		return "E (dependent cycles)"
	case ClassF:
		return "F (mixed)"
	case ClassTrivial:
		return "trivial (no directed edge)"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Code returns the short class code ("A1" … "F").
func (c Class) Code() string {
	switch c {
	case ClassA1:
		return "A1"
	case ClassA2:
		return "A2"
	case ClassA3:
		return "A3"
	case ClassA4:
		return "A4"
	case ClassA5:
		return "A5"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	case ClassD:
		return "D"
	case ClassE:
		return "E"
	case ClassF:
		return "F"
	case ClassTrivial:
		return "trivial"
	}
	return "?"
}

// IsOneDirectional reports whether the class is one of A1–A4 (a single
// independent one-directional cycle).
func (c Class) IsOneDirectional() bool {
	return c == ClassA1 || c == ClassA2 || c == ClassA3 || c == ClassA4
}

// Component describes one connected component of the I-graph.
type Component struct {
	// G is the component subgraph of the original I-graph (the evaluation
	// engines need the full variable membership).
	G *graph.Graph
	// Reduced is the component after the paper's §3 compression (parallel
	// undirected edges merged, trivial vertices eliminated); the cycle
	// analysis runs on this form.
	Reduced *graph.Graph
	// Class is the component's class: one of A1–A4, B, C, D, E or Trivial.
	Class Class
	// Cycle is the independent non-trivial cycle when Class is A1–A4, B or C.
	Cycle *graph.Cycle
	// Weight is the absolute cycle weight for independent cycles (the number
	// of directed edges for one-directional cycles), 0 otherwise.
	Weight int
	// NonTrivialCycles holds every simple cycle with a directed edge, for
	// reporting.
	NonTrivialCycles []graph.Cycle
	// DirectedEdgeCount is the number of directed edges in the component.
	DirectedEdgeCount int
}

// Result is the complete classification of a linear recursive formula.
type Result struct {
	IG         *igraph.IGraph
	Components []Component
	// Class is the formula's class per §3.
	Class Class
	// Stable reports strong stability: only disjoint unit cycles (Theorem 1).
	Stable bool
	// Transformable reports that the formula can be transformed into an
	// equivalent unit-cycle (stable) formula: every non-trivial component is
	// an independent one-directional cycle (Corollary 3).
	Transformable bool
	// StabilizationPeriod is the LCM of the one-directional cycle weights
	// (Theorems 2 and 4): the formula becomes stable after each such number
	// of expansions. Zero when not transformable.
	StabilizationPeriod int
	// Permutational reports that every non-trivial component is a
	// permutational cycle (Theorem 3).
	Permutational bool
	// Bounded reports that the formula has a data-independent finite rank.
	Bounded bool
	// RankBound is an upper bound on the rank when Bounded. It is tight for
	// the cases the paper states: Ioannidis's max-path-weight bound when no
	// cycle has non-zero weight, and LCM−1 for purely permutational formulas
	// (Theorem 10). For other {A2,A4,B,D} combinations (Theorem 11) a safe
	// but conservative bound is reported and RankBoundTight is false.
	RankBound int
	// RankBoundTight reports whether RankBound is the paper's tight bound.
	RankBoundTight bool
}

// Classify builds the I-graph of the rule and classifies it.
func Classify(rule ast.Rule) (*Result, error) {
	ig, err := igraph.Build(rule)
	if err != nil {
		return nil, err
	}
	return ClassifyIGraph(ig), nil
}

// MustClassify is Classify that panics on error.
func MustClassify(rule ast.Rule) *Result {
	r, err := Classify(rule)
	if err != nil {
		panic(err)
	}
	return r
}

// ClassifyIGraph classifies an already-built I-graph.
func ClassifyIGraph(ig *igraph.IGraph) *Result {
	res := &Result{IG: ig}
	for _, comp := range ig.G.Components() {
		res.Components = append(res.Components, classifyComponent(comp))
	}
	res.Class = combine(res.Components)
	res.deriveProperties()
	return res
}

// classifyComponent decides the class of one component (§3 definitions).
// The cycle analysis runs on the component's reduced form, per the paper's
// compression remark.
func classifyComponent(orig *graph.Graph) Component {
	g := orig.Reduce()
	c := Component{G: orig, Reduced: g, DirectedEdgeCount: len(g.DirectedEdges())}
	c.NonTrivialCycles = g.NonTrivialCycles()
	switch {
	case c.DirectedEdgeCount == 0:
		c.Class = ClassTrivial
	case len(c.NonTrivialCycles) == 0:
		c.Class = ClassD
	case len(c.NonTrivialCycles) == 1 && c.NonTrivialCycles[0].DirectedCount() == c.DirectedEdgeCount:
		// Independent cycle: the unique non-trivial cycle carries every
		// directed edge of the component.
		cyc := c.NonTrivialCycles[0]
		c.Cycle = &cyc
		c.Weight = cyc.AbsWeight()
		switch {
		case !cyc.IsOneDirectional():
			if cyc.Weight() == 0 {
				c.Class = ClassB
			} else {
				c.Class = ClassC
			}
		case cyc.IsUnit():
			if cyc.IsRotational() {
				c.Class = ClassA1
			} else {
				c.Class = ClassA2
			}
		default: // one-directional, weight > 1
			if cyc.IsRotational() {
				c.Class = ClassA3
			} else {
				c.Class = ClassA4
			}
		}
	default:
		// Several non-trivial cycles sharing connectivity, or a directed
		// edge attached off-cycle: dependent.
		c.Class = ClassE
	}
	return c
}

// combine aggregates component classes into the formula class (§3 and
// Theorems 9/12): a uniform non-trivial class is the formula's class;
// different Ai's combine to A5; anything else mixes to F.
func combine(comps []Component) Class {
	kinds := make(map[Class]bool)
	for _, c := range comps {
		if c.Class != ClassTrivial {
			kinds[c.Class] = true
		}
	}
	switch len(kinds) {
	case 0:
		// Cannot happen for a validated recursive rule (directed edges
		// always exist), but be safe.
		return ClassTrivial
	case 1:
		for k := range kinds {
			return k
		}
	}
	allA := true
	for k := range kinds {
		if !k.IsOneDirectional() {
			allA = false
			break
		}
	}
	if allA {
		return ClassA5
	}
	return ClassF
}

func (r *Result) deriveProperties() {
	r.Stable = true
	r.Transformable = true
	r.Permutational = true
	boundedCombo := true // all components in {A2, A4, B, D}
	period := 1
	for _, c := range r.Components {
		switch c.Class {
		case ClassTrivial:
			continue
		case ClassA1, ClassA2:
			// unit cycles keep everything true
		default:
			r.Stable = false
		}
		if c.Class.IsOneDirectional() {
			period = lcm(period, c.Weight)
		} else {
			r.Transformable = false
		}
		if c.Class != ClassA2 && c.Class != ClassA4 {
			r.Permutational = false
		}
		switch c.Class {
		case ClassA2, ClassA4, ClassB, ClassD, ClassTrivial:
		default:
			boundedCombo = false
		}
	}
	if r.Transformable {
		r.StabilizationPeriod = period
	}

	// Boundedness (Ioannidis's theorem, Theorems 10 and 11), analyzed on
	// the reduced components: compression preserves the weight structure
	// while exposing exactly the determined-variable connectivity.
	hasNonZeroCycle := false
	maxPath := 0
	for _, c := range r.Components {
		if c.Reduced == nil {
			continue
		}
		if c.Reduced.HasNonZeroWeightCycle() {
			hasNonZeroCycle = true
		}
		if w := c.Reduced.MaxPathWeight(); w > maxPath {
			maxPath = w
		}
	}
	switch {
	case !hasNonZeroCycle:
		// No permutational patterns either (those cycles have weight ≥ 1),
		// so Ioannidis's theorem applies with its tight max-path bound.
		r.Bounded = true
		r.RankBound = maxPath
		r.RankBoundTight = true
	case r.Permutational:
		// Theorem 10: tight bound LCM − 1.
		r.Bounded = true
		r.RankBound = r.StabilizationPeriod - 1
		r.RankBoundTight = true
	case boundedCombo:
		// Theorem 11: bounded; the paper gives no closed bound for the
		// mixture, so report a safe conservative one: within every window of
		// L expansions the permutational part revisits each alignment while
		// the zero-weight part is contained within its Ioannidis bound.
		r.Bounded = true
		L := 1
		maxPath := 0
		for _, c := range r.Components {
			switch c.Class {
			case ClassA2, ClassA4:
				L = lcm(L, c.Weight)
			case ClassB, ClassD:
				if w := c.Reduced.MaxPathWeight(); w > maxPath {
					maxPath = w
				}
			}
		}
		r.RankBound = (maxPath+1)*L - 1
		r.RankBoundTight = false
	default:
		r.Bounded = false
		r.RankBound = -1
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}

// LCM returns the least common multiple of the arguments (LCM() = 1).
func LCM(ns ...int) int {
	out := 1
	for _, n := range ns {
		out = lcm(out, n)
	}
	return out
}

// Explain renders a human-readable classification report.
func (r *Result) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule: %s\n", r.IG.Rule)
	fmt.Fprintf(&b, "dimension: %d\n", r.IG.Dimension())
	fmt.Fprintf(&b, "class: %s\n", r.Class)
	for i, c := range r.Components {
		fmt.Fprintf(&b, "component %d: %s", i+1, c.Class)
		if c.Cycle != nil {
			fmt.Fprintf(&b, " | cycle %s | weight %d", c.Cycle, c.Weight)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "strongly stable: %v\n", r.Stable)
	fmt.Fprintf(&b, "transformable to stable: %v", r.Transformable)
	if r.Transformable {
		fmt.Fprintf(&b, " (stabilization period %d)", r.StabilizationPeriod)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "permutational: %v\n", r.Permutational)
	if r.Bounded {
		tight := "tight"
		if !r.RankBoundTight {
			tight = "conservative"
		}
		fmt.Fprintf(&b, "bounded: true (rank bound %d, %s)\n", r.RankBound, tight)
	} else {
		fmt.Fprintf(&b, "bounded: false\n")
	}
	return b.String()
}
