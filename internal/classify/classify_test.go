package classify

import (
	"testing"

	"repro/internal/parser"
)

func mustRule(t *testing.T, src string) (r struct{}) { t.Helper(); return }

func TestPaperCorpusClasses(t *testing.T) {
	// Expectations straight from the paper (erratum for s12 noted in the
	// paper package).
	cases := []struct {
		id, rule, wantClass string
		stable              bool
		transformable       bool
		period              int
		bounded             bool
		rank                int // -1 when unbounded or when we don't check
	}{
		{"s1a", "p(X,Y) :- a(X,Z), p(Z,Y).", "A5", true, true, 1, false, -1},
		{"s1b", "p(X,Y,Z) :- a(X,Y), p(U,Z,V), b(U,V).", "C", false, false, 0, false, -1},
		{"s2a", "p(X,Y) :- a(X,Z), p(Z,U), b(U,Y).", "A1", true, true, 1, false, -1},
		{"s3", "p(X,Y,Z) :- a(X,U), b(Y,V), p(U,V,W), c(W,Z).", "A1", true, true, 1, false, -1},
		{"s4a", "p(X1,X2,X3) :- a(X1,Y3), b(X2,Y1), c(Y2,X3), p(Y1,Y2,Y3).", "A3", false, true, 3, false, -1},
		{"s5", "p(X,Y,Z) :- p(Y,Z,X).", "A4", false, true, 3, true, 2},
		{"s6", "p(X,Y,Z,U,V,W) :- p(Z,Y,U,X,W,V).", "A5", false, true, 6, true, 5},
		{"s7", "p(X,Y,Z,U,W,S,V) :- a(X,T), p(T,Z,Y,W,S,R,V), b(U,R).", "A5", false, true, 6, false, -1},
		{"s8", "p(X,Y,Z,U) :- a(X,Y), b(Y1,U), c(Z1,U1), p(Z,Y1,Z1,U1).", "B", false, false, 0, true, 2},
		{"s9", "p(X,Y,Z) :- a(X,Y), b(U,V), p(U,Z,V).", "C", false, false, 0, false, -1},
		{"s10", "p(X,Y) :- b(Y), c(X,Y1), p(X1,Y1).", "D", false, false, 0, true, 2},
		{"s11", "p(X,Y) :- a(X,X1), b(Y,Y1), c(X1,Y1), p(X1,Y1).", "E", false, false, 0, false, -1},
		{"s12", "p(X,Y,Z) :- a(X,U), b(Y,V), c(U,V), d(W,Z), p(U,V,W).", "F", false, false, 0, false, -1},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			rule, err := parser.ParseRule(tc.rule)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := Classify(rule)
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			if got := res.Class.Code(); got != tc.wantClass {
				t.Errorf("class = %s, want %s\n%s", got, tc.wantClass, res.Explain())
			}
			if res.Stable != tc.stable {
				t.Errorf("stable = %v, want %v\n%s", res.Stable, tc.stable, res.Explain())
			}
			if res.Transformable != tc.transformable {
				t.Errorf("transformable = %v, want %v", res.Transformable, tc.transformable)
			}
			if res.Transformable && res.StabilizationPeriod != tc.period {
				t.Errorf("period = %d, want %d", res.StabilizationPeriod, tc.period)
			}
			if res.Bounded != tc.bounded {
				t.Errorf("bounded = %v, want %v\n%s", res.Bounded, tc.bounded, res.Explain())
			}
			if tc.bounded && tc.rank >= 0 && res.RankBound != tc.rank {
				t.Errorf("rank bound = %d, want %d", res.RankBound, tc.rank)
			}
		})
	}
}
