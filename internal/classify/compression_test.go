package classify

import (
	"math/rand"
	"testing"

	"repro/internal/adorn"
	"repro/internal/dlgen"
	"repro/internal/parser"
)

// TestCompressionRemarkExample reproduces the paper's §3 Remark:
// p(X,Y) :- a(X,U), b(X,Z), c(Z,U), p(U,Y) compresses to abc(X,U) and
// "the formula has two independent cycles" — i.e., it is strongly stable.
func TestCompressionRemarkExample(t *testing.T) {
	rule := parser.MustParseRule("p(X, Y) :- a(X, U), b(X, Z), c(Z, U), p(U, Y).")
	res := MustClassify(rule)
	if !res.Stable {
		t.Fatalf("remark example not stable:\n%s", res.Explain())
	}
	if res.Class.Code() != "A5" { // unit rotational on {x,u} ⊎ self-loop on y
		t.Errorf("class = %s", res.Class.Code())
	}
	if !adorn.SemanticallyStable(rule) {
		t.Error("semantic stability disagrees")
	}
}

// TestCompressionRegressionTrivialVertexPath is the random counterexample
// the theorem sweep found before trivial-vertex elimination was
// implemented: a redundant undirected connection through a trivial variable
// (Z1) must compress away, leaving a single unit cycle.
func TestCompressionRegressionTrivialVertexPath(t *testing.T) {
	rule := parser.MustParseRule("p(X1) :- a(Z1), b(X1, Z1), g(Y1, X1), b(Y1, Z1), p(Y1).")
	res := MustClassify(rule)
	if !res.Stable {
		t.Fatalf("not stable after reduction:\n%s", res.Explain())
	}
	if got := adorn.SemanticallyStable(rule); got != res.Stable {
		t.Fatalf("Theorem 1 violated: semantic=%v syntactic=%v", got, res.Stable)
	}
}

// TestTheorem1LargeSweep hammers Theorem 1 with many seeds — the sweep that
// originally exposed the missing compression.
func TestTheorem1LargeSweep(t *testing.T) {
	trials := 3000
	if testing.Short() {
		trials = 300
	}
	for _, seed := range []int64{1, 2, 3, 1988} {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < trials; i++ {
			rule := dlgen.RandomRule(rng, dlgen.Config{MaxArity: 3})
			res := MustClassify(rule)
			if adorn.SemanticallyStable(rule) != res.Stable {
				t.Fatalf("seed %d trial %d: Theorem 1 violated by %v\n%s",
					seed, i, rule, res.Explain())
			}
		}
	}
}
