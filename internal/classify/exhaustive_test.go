package classify

import (
	"testing"

	"repro/internal/adorn"
	"repro/internal/dlgen"
)

// TestExhaustiveTheorem1Arity2 proves Theorem 1 by exhaustion over the
// complete small fragment (arity 2, up to two a/1 / b/2 literals over a
// five-variable pool): on every one of the ~2000 admissible rules, the
// semantic determined-variable simulation and the syntactic disjoint-unit-
// cycle test must agree. Random sampling found the compression corner case
// once; exhaustion guarantees the fragment holds no others.
func TestExhaustiveTheorem1Arity2(t *testing.T) {
	rules := dlgen.EnumerateRules(2, 2, false)
	counts := map[string]int{}
	for _, rule := range rules {
		res, err := Classify(rule)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		counts[res.Class.Code()]++
		if got := adorn.SemanticallyStable(rule); got != res.Stable {
			t.Fatalf("Theorem 1 violated by %v:\nsemantic=%v syntactic=%v\n%s",
				rule, got, res.Stable, res.Explain())
		}
	}
	t.Logf("exhaustive fragment: %d rules, class histogram %v", len(rules), counts)
	// Class C cannot occur at arity 2: a multi-directional cycle there has
	// exactly two arrows traversed in opposite directions, so its weight is
	// always 0 (class B). Every other class must be exercised.
	for _, cls := range []string{"A1", "A2", "A3", "A4", "A5", "B", "D", "E", "F"} {
		if counts[cls] == 0 {
			t.Errorf("fragment exercises no %s rules — enumeration too narrow", cls)
		}
	}
	if counts["C"] != 0 {
		t.Errorf("class C at arity 2 contradicts the weight argument: %d rules", counts["C"])
	}
}

// TestExhaustiveBoundedSoundnessArity1: every bounded rule of the arity-1
// fragment has, per Ioannidis/Theorem 10, a data-independent cutoff; the
// adornment pattern must be eventually periodic within the claimed bound.
func TestExhaustiveBoundedSoundnessArity1(t *testing.T) {
	rules := dlgen.EnumerateRules(1, 2, false)
	for _, rule := range rules {
		res := MustClassify(rule)
		if !res.Bounded {
			continue
		}
		for _, a := range adorn.AllAdornments(1) {
			start, period := adorn.PatternPeriod(rule, a)
			if start+period > res.RankBound+2 {
				t.Errorf("%v: adornment %s pattern (start %d, period %d) exceeds rank view %d",
					rule, a, start, period, res.RankBound)
			}
		}
	}
}
