package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newObsServer builds a test server with an observability-oriented config.
func newObsServer(t *testing.T, src string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// debugQueries fetches and decodes a journal debug endpoint.
func debugQueries(t *testing.T, ts *httptest.Server, path string) struct {
	SlowThresholdUS int64            `json:"slow_threshold_us"`
	Inflight        []map[string]any `json:"inflight"`
	Recent          []map[string]any `json:"recent"`
	Slow            []map[string]any `json:"slow"`
} {
	t.Helper()
	var body struct {
		SlowThresholdUS int64            `json:"slow_threshold_us"`
		Inflight        []map[string]any `json:"inflight"`
		Recent          []map[string]any `json:"recent"`
		Slow            []map[string]any `json:"slow"`
	}
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", path, err)
	}
	return body
}

// TestSlowQueryJournalEndToEnd is the issue's acceptance path: with a tiny
// slow threshold and 1-in-1 trace sampling, a completed query must appear
// in /debug/queries/slow carrying its request ID, plan class, shard count
// and a span tree — even though the client never asked for a trace.
func TestSlowQueryJournalEndToEnd(t *testing.T) {
	_, ts := newObsServer(t, tcProgram, Config{
		SlowQueryThreshold: time.Nanosecond, // every query is slow
		TraceSampleRate:    1,               // every query is sampled
		Shards:             2,               // force a sharded evaluation
	})

	// All-free so the sharded fixpoint engages (the bound tc-frontier
	// kernel runs unsharded on a database this small).
	req, _ := http.NewRequest("GET", ts.URL+"/query?q="+strings.ReplaceAll("?- p(X, Y).", " ", "%20"), nil)
	req.Header.Set("X-Request-Id", "slow-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var res QueryResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Trace != nil {
		t.Error("response carries a trace the client never asked for")
	}
	if res.RequestID != "slow-e2e-1" {
		t.Errorf("response request_id = %q, want slow-e2e-1", res.RequestID)
	}

	body := debugQueries(t, ts, "/debug/queries/slow")
	if len(body.Slow) != 1 {
		t.Fatalf("slow ring = %d records, want 1: %+v", len(body.Slow), body.Slow)
	}
	rec := body.Slow[0]
	if rec["id"] != "slow-e2e-1" {
		t.Errorf("slow record id = %v, want slow-e2e-1", rec["id"])
	}
	if rec["class"] == nil || rec["class"] == "" {
		t.Errorf("slow record missing plan class: %v", rec)
	}
	if rec["shards"] != float64(2) {
		t.Errorf("slow record shards = %v, want 2", rec["shards"])
	}
	if rec["sampled"] != true {
		t.Errorf("slow record sampled = %v, want true", rec["sampled"])
	}
	trace, ok := rec["trace"].(map[string]any)
	if !ok {
		t.Fatalf("slow record trace = %T, want span tree object", rec["trace"])
	}
	if trace["name"] != "query" {
		t.Errorf("trace root span = %v, want \"query\"", trace["name"])
	}
	// The full endpoint shows the same record in recent and slow.
	full := debugQueries(t, ts, "/debug/queries")
	if len(full.Recent) != 1 || len(full.Slow) != 1 {
		t.Errorf("/debug/queries recent=%d slow=%d, want 1/1", len(full.Recent), len(full.Slow))
	}
}

// TestInflightStreamedQuery opens a streaming query over a big closure,
// reads only the NDJSON header, and checks the request shows up in
// /debug/queries' in-flight table with a nonzero age while the body is
// still being delivered (the un-drained response keeps the handler live).
func TestInflightStreamedQuery(t *testing.T) {
	_, ts := newObsServer(t, tcProgram+chainFacts(800), Config{})

	resp, err := http.Get(ts.URL + "/query?stream=1&q=" + strings.ReplaceAll("?- p(X, Y).", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	header, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(header), &hdr); err != nil {
		t.Fatalf("bad NDJSON header %q: %v", header, err)
	}
	reqID, _ := hdr["request_id"].(string)
	if reqID == "" {
		t.Fatalf("NDJSON header missing request_id: %v", hdr)
	}

	// The handler cannot finish while we sit on the unread body (the rows
	// exceed the socket buffers), so the query stays registered in-flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := debugQueries(t, ts, "/debug/queries")
		if len(body.Inflight) == 1 {
			in := body.Inflight[0]
			if in["id"] != reqID {
				t.Fatalf("inflight id = %v, want %q", in["id"], reqID)
			}
			if age, _ := in["age_us"].(float64); age <= 0 {
				t.Fatalf("inflight age_us = %v, want > 0", in["age_us"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never appeared in-flight: %+v", body.Inflight)
		}
		time.Sleep(time.Millisecond)
	}

	// Disconnect mid-stream; the journal must unregister the query and the
	// completed record lands with error class "canceled" (or completes
	// cleanly if the stream finished racing our close — both drain to an
	// empty in-flight table).
	resp.Body.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		body := debugQueries(t, ts, "/debug/queries")
		if len(body.Inflight) == 0 {
			if len(body.Recent) != 1 {
				t.Fatalf("recent = %d records after stream ended, want 1", len(body.Recent))
			}
			rec := body.Recent[0]
			if rec["id"] != reqID || rec["streamed"] != true {
				t.Fatalf("recent record = %v, want streamed record %q", rec, reqID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never left the in-flight table after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadyzLifecycle(t *testing.T) {
	s, ts := newObsServer(t, tcProgram, Config{HoldReady: true})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("held /readyz = %d, want 503", resp.StatusCode)
	}
	if body["ready"] != false || body["reason"] == "" || body["reason"] == nil {
		t.Fatalf("held /readyz body = %v, want ready=false with a reason", body)
	}
	// Liveness is independent of readiness.
	if lr, err := http.Get(ts.URL + "/healthz"); err != nil || lr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while unready: %v %v, want 200", lr.StatusCode, err)
	} else {
		lr.Body.Close()
	}

	s.MarkReady()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body = map[string]any{}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body["ready"] != true {
		t.Fatalf("ready /readyz = %d %v, want 200 ready=true", resp.StatusCode, body)
	}
}

func TestReadyzDefaultReady(t *testing.T) {
	_, ts := newObsServer(t, tcProgram, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default /readyz = %d, want 200 (no HoldReady)", resp.StatusCode)
	}
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	_, ts := newObsServer(t, tcProgram, Config{})
	q := ts.URL + "/query?q=" + strings.ReplaceAll("?- p(a, Y).", " ", "%20")

	// Generated IDs: nonempty, echoed in the header, distinct per request.
	var ids []string
	for i := 0; i < 2; i++ {
		resp, err := http.Get(q)
		if err != nil {
			t.Fatal(err)
		}
		var res QueryResult
		json.NewDecoder(resp.Body).Decode(&res)
		hdr := resp.Header.Get("X-Request-Id")
		resp.Body.Close()
		if hdr == "" || hdr != res.RequestID {
			t.Fatalf("header id %q vs body id %q, want equal and nonempty", hdr, res.RequestID)
		}
		ids = append(ids, hdr)
	}
	if ids[0] == ids[1] {
		t.Errorf("generated request IDs collide: %q", ids[0])
	}

	// Client-provided IDs are accepted but truncated to 128 bytes.
	long := strings.Repeat("x", 200)
	req, _ := http.NewRequest("GET", q, nil)
	req.Header.Set("X-Request-Id", long)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if got != long[:128] {
		t.Errorf("oversized client id echoed as %d bytes, want truncation to 128", len(got))
	}
}

// syncBuffer guards the slog sink: the server logs from request goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(s.b.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

func TestStructuredRequestLog(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	_, ts := newObsServer(t, tcProgram, Config{Logger: logger})

	req, _ := http.NewRequest("GET", ts.URL+"/query?q="+strings.ReplaceAll("?- p(a, Y).", " ", "%20"), nil)
	req.Header.Set("X-Request-Id", "log-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := buf.lines(t)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want exactly 1 per request: %v", len(lines), lines)
	}
	q := lines[0]
	if q["msg"] != "query" || q["level"] != "INFO" {
		t.Fatalf("query line = %v, want msg=query level=INFO", q)
	}
	for _, key := range []string{"request_id", "query", "pred", "adornment", "class", "strategy", "epoch", "rows", "wall_us", "eval_us"} {
		if _, ok := q[key]; !ok {
			t.Errorf("query log line missing %q: %v", key, q)
		}
	}
	if q["request_id"] != "log-1" || q["rows"] != float64(3) || q["error"] != "" {
		t.Errorf("query line = %v, want request_id=log-1 rows=3 error=\"\"", q)
	}

	// A bad query logs at WARN with error class "client".
	resp, err = http.Get(ts.URL + "/query?q=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lines = buf.lines(t)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines after bad query, want 2", len(lines))
	}
	bad := lines[1]
	if bad["level"] != "WARN" || bad["error"] != "client" {
		t.Errorf("bad-query line = %v, want level=WARN error=client", bad)
	}
}

func TestStructuredFactsLog(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	_, ts := newObsServer(t, tcProgram, Config{Logger: logger})

	// Warm the cache so the write has something to maintain.
	getQuery(t, ts, "?- p(a, Y).")
	resp, err := http.Post(ts.URL+"/facts", "text/plain", strings.NewReader("e(d, x)."))
	if err != nil {
		t.Fatal(err)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("POST /facts response missing X-Request-Id header")
	}
	resp.Body.Close()

	var facts map[string]any
	for _, ln := range buf.lines(t) {
		if ln["msg"] == "facts" {
			facts = ln
		}
	}
	if facts == nil {
		t.Fatal("no facts log line emitted")
	}
	for _, key := range []string{"request_id", "bytes", "epoch", "maintained", "recomputed", "maintenance_us", "wall_us"} {
		if _, ok := facts[key]; !ok {
			t.Errorf("facts log line missing %q: %v", key, facts)
		}
	}
	if facts["maintained"] != float64(1) {
		t.Errorf("facts line maintained = %v, want 1 (the warmed p(a, Y) entry)", facts["maintained"])
	}
}

// TestJournalDisabled pins the negative-JournalSize contract: no journal,
// but the debug endpoints still answer (empty) instead of 404ing.
func TestJournalDisabled(t *testing.T) {
	s, ts := newObsServer(t, tcProgram, Config{JournalSize: -1})
	if s.Journal() != nil {
		t.Fatal("JournalSize -1 should disable the journal")
	}
	getQuery(t, ts, "?- p(a, Y).")
	body := debugQueries(t, ts, "/debug/queries")
	if len(body.Recent) != 0 || len(body.Inflight) != 0 || len(body.Slow) != 0 {
		t.Errorf("disabled journal returned records: %+v", body)
	}
	if body.SlowThresholdUS >= 0 {
		t.Errorf("disabled journal slow_threshold_us = %d, want negative", body.SlowThresholdUS)
	}
}
