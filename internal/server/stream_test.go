package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

// chainFacts renders e(n0,n1)...e(n{n-2},n{n-1}) fact lines.
func chainFacts(n int) string {
	var b strings.Builder
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d, n%d).\n", i, i+1)
	}
	return b.String()
}

// ndjsonLines issues a streaming GET and returns the decoded NDJSON lines.
func ndjsonLines(t *testing.T, ts *httptest.Server, query string) []map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?stream=1&" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d", query, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestServerStreamNDJSON: the streaming response is header, one row line
// per answer, then a done summary — and the row set equals the
// materializing endpoint's answers, cold and from the cache.
func TestServerStreamNDJSON(t *testing.T) {
	s, ts := newTestServer(t, tcProgram)

	lines := ndjsonLines(t, ts, "q="+strings.ReplaceAll("?- p(a, Y).", " ", "%20"))
	if len(lines) != 5 { // header + 3 rows + done
		t.Fatalf("stream lines = %d, want 5: %v", len(lines), lines)
	}
	head, done := lines[0], lines[len(lines)-1]
	if head["query"] != "?- p(a, Y)." || head["cached"] != false {
		t.Errorf("header = %v, want query echo and cached=false", head)
	}
	rows := map[string]bool{}
	for _, l := range lines[1 : len(lines)-1] {
		row, ok := l["row"].([]any)
		if !ok || len(row) != 2 {
			t.Fatalf("bad row line %v", l)
		}
		rows[fmt.Sprint(row)] = true
	}
	for _, want := range []string{"[a b]", "[a c]", "[a d]"} {
		if !rows[want] {
			t.Errorf("stream missing row %s (got %v)", want, rows)
		}
	}
	if done["done"] != true || done["count"] != float64(3) || done["truncated"] != false {
		t.Errorf("done = %v, want done/3/untruncated", done)
	}
	if done["class"] == "" || done["strategy"] == "" {
		t.Errorf("done missing plan info: %v", done)
	}
	if _, hasErr := done["error"]; hasErr {
		t.Errorf("clean stream reported error: %v", done)
	}

	// Populate the cache through the materializing path; the stream must now
	// serve the frozen cached relation (header says cached) with equal rows.
	if res := getQuery(t, ts, "?- p(a, Y)."); res.Cached {
		t.Fatal("materializing query cached already: streamed miss populated the cache")
	}
	lines = ndjsonLines(t, ts, "q="+strings.ReplaceAll("?- p(a, Y).", " ", "%20"))
	if lines[0]["cached"] != true {
		t.Errorf("post-materialize stream header = %v, want cached=true", lines[0])
	}
	if got := len(lines) - 2; got != 3 {
		t.Errorf("cached stream rows = %d, want 3", got)
	}
	if got := s.Registry().Counter(mRowsStreamed).Value(); got != 6 {
		t.Errorf("%s = %d, want 6 (two streams of 3 rows)", mRowsStreamed, got)
	}
}

// TestServerStreamLimit: limit over the streaming response truncates at k
// rows, flags it in the summary, and moves the early-termination counter.
func TestServerStreamLimit(t *testing.T) {
	s, err := New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFacts(chainFacts(40)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	lines := ndjsonLines(t, ts, "limit=4&q="+strings.ReplaceAll("?- p(n0, Y).", " ", "%20"))
	if got := len(lines) - 2; got != 4 {
		t.Fatalf("limited stream rows = %d, want 4", got)
	}
	done := lines[len(lines)-1]
	if done["truncated"] != true {
		t.Errorf("limited stream done = %v, want truncated=true", done)
	}
	if derived := done["derived"].(float64); derived >= 39 {
		t.Errorf("limited stream derived %v tuples, full answer is 39: no early stop", derived)
	}
	if got := s.Registry().Counter(mEarlyTerm).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", mEarlyTerm, got)
	}
	if got := s.Registry().Counter(mRowsStreamed).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", mRowsStreamed, got)
	}
}

// TestServerQueryLimitJSON: limit on the plain JSON endpoint answers with at
// most k rows and the truncation flag, still stopping the evaluation early.
func TestServerQueryLimitJSON(t *testing.T) {
	s, err := New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFacts(chainFacts(40)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	res := getQuery(t, ts, "?- p(n0, Y).&limit=5")
	if len(res.Answers) != 5 || res.Count != 5 || !res.Truncated || res.Limit != 5 {
		t.Fatalf("limited JSON: %d answers count=%d truncated=%v limit=%d, want 5/5/true/5",
			len(res.Answers), res.Count, res.Truncated, res.Limit)
	}
	if res.Derived >= 39 {
		t.Errorf("limited JSON derived %d, full answer is 39: no early stop", res.Derived)
	}
	// A limit past the answer set changes nothing but the echoed field.
	res = getQuery(t, ts, "?- p(n0, Y).&limit=500")
	if len(res.Answers) != 39 || res.Truncated {
		t.Fatalf("over-limit JSON: %d answers truncated=%v, want 39/false", len(res.Answers), res.Truncated)
	}
	// Limit with zero matching answers still answers [] (not null).
	resp, err := http.Get(ts.URL + "/query?limit=3&q=" + strings.ReplaceAll("?- p(n39, Y).", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	raw := json.NewDecoder(resp.Body)
	var empty QueryResult
	if err := raw.Decode(&empty); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if empty.Answers == nil || len(empty.Answers) != 0 {
		t.Errorf("empty limited answer = %#v, want []", empty.Answers)
	}

	// Malformed limits are client errors.
	for _, u := range []string{"/query?limit=-1&q=x", "/query?limit=abc&q=x"} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
	body, _ := json.Marshal(map[string]any{"query": "?- p(n0, Y).", "limit": -3})
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative POST limit: status %d, want 400", resp.StatusCode)
	}
}

// TestServerQueryBodyLimit: POST /query beyond MaxQueryBytes is refused with
// 413 and counted as a client error — the resource-cap bugfix.
func TestServerQueryBodyLimit(t *testing.T) {
	s, err := New(tcProgram, Config{MaxQueryBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(queryRequest{Query: "?- p(" + strings.Repeat("a", 1024) + ", Y)."})
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query body: status %d, want 413", resp.StatusCode)
	}
	if got := s.Registry().Counter("dl_server_client_errors_total").Value(); got != 1 {
		t.Errorf("client errors = %d, want 1", got)
	}
	if got := s.Registry().Counter("dl_server_errors_total").Value(); got != 0 {
		t.Errorf("engine errors = %d, want 0", got)
	}
	// A normal-sized query still answers.
	body, _ = json.Marshal(queryRequest{Query: "?- p(a, Y)."})
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small query after limit: status %d", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerStreamDisconnect: a client abandoning a streaming response
// mid-answer must stop the evaluation (canceled counter), leak no
// goroutines, and release its pin on the snapshot so the old epoch's view
// becomes collectible after the next write.
func TestServerStreamDisconnect(t *testing.T) {
	s, err := New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
		Config{DisableMaintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFacts(chainFacts(400)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	released := make(chan struct{})
	old := s.Snapshot()
	runtime.SetFinalizer(old.DB(), func(*storage.Database) { close(released) })
	old = nil

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/query?stream=1&q="+strings.ReplaceAll("?- p(X, Y).", " ", "%20"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	cancel() // abandon the stream mid-answer (the 400-chain closure has ~80k rows)
	resp.Body.Close()

	waitFor(t, "canceled counter", func() bool {
		return s.Registry().Counter(mCanceled).Value() >= 1
	})
	waitFor(t, "goroutines to settle", func() bool {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= base
	})

	// The disconnected stream held the only non-server reference to the
	// snapshot; after a write publishes a fresh one, the abandoned epoch's
	// view must be garbage — a leaked iterator would keep it alive.
	if _, err := s.LoadFacts("e(x, y)."); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "old snapshot release", func() bool {
		runtime.GC()
		select {
		case <-released:
			return true
		default:
			return false
		}
	})
}

// TestServerStreamQueryCancel covers StreamQuery's in-process contract: a
// canceled context surfaces eval.ErrCanceled instead of a silently partial
// answer set, and the each callback can stop the stream cleanly.
func TestServerStreamQueryCancel(t *testing.T) {
	s, err := New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFacts(chainFacts(400)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	_, err = s.StreamQuery(ctx, "?- p(X, Y).", 0, nil, func([]string) bool {
		rows++
		if rows == 3 {
			cancel()
		}
		return true
	})
	if err == nil {
		t.Fatal("canceled StreamQuery returned nil error")
	}
	if rows >= 400*399/2 {
		t.Errorf("canceled stream delivered all %d rows", rows)
	}

	// each returning false is the consumer's own stop: clean result, no error.
	rows = 0
	res, err := s.StreamQuery(context.Background(), "?- p(X, Y).", 0, nil, func([]string) bool {
		rows++
		return rows < 5
	})
	if err != nil {
		t.Fatalf("consumer-stopped stream: %v", err)
	}
	if res.Count != 5 || rows != 5 {
		t.Errorf("consumer-stopped stream count = %d (%d rows), want 5", res.Count, rows)
	}
}
