// Package server implements the dlserve HTTP query server: snapshot-isolated
// concurrent query serving over one Datalog program with a materialized-
// result cache.
//
// The server holds one storage.Database behind a single writer lock. Every
// write (POST /facts) loads the new facts and publishes a fresh snapshot;
// every query pins the latest published snapshot with one atomic load and
// evaluates against it without ever blocking the writer or other readers.
// Answers are served through eval.ResultCache, keyed by (program, query,
// epoch): repeated queries of a quiet database cost one cache probe, iden-
// tical concurrent cold queries collapse into one fixpoint (singleflight),
// and a write automatically invalidates by advancing the epoch.
//
// Endpoints (on top of the obs mux's /metrics, /debug/vars, /debug/pprof/):
//
//	GET  /query?q=?- p(a, Y).   answer one query (POST {"query": ...} too)
//	POST /facts                 load "pred(a, b)." lines, advance the epoch
//	GET  /healthz               liveness plus epoch and cache footprint
//
// Add &trace=1 to /query to receive the evaluation's span tree in the
// response (per-query tracing, the HTTP form of dlrun -trace-json).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// Server metric names, alongside the engine metrics in the same registry.
const (
	mQueries  = "dl_server_queries_total"
	mErrors   = "dl_server_errors_total"
	mInflight = "dl_server_inflight_queries"
	mQueryDur = "dl_server_query_duration_seconds"
	mEvalDur  = "dl_server_eval_duration_seconds"
)

// durBuckets covers query latencies from 10µs to 10s.
var durBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2.5, 5, 10}

// Config tunes a Server. The zero value works: default cache budget,
// GOMAXPROCS workers, a fresh registry.
type Config struct {
	// Registry receives the server and engine metrics; nil means a new
	// isolated registry (obs.Default() shares process-wide counters).
	Registry *obs.Registry
	// CacheBytes is the result-cache budget; 0 means
	// eval.DefaultResultCacheBytes.
	CacheBytes int64
	// Workers is handed to eval.Opts.Workers for the parallel engine.
	Workers int
}

// Server serves one Datalog program over HTTP. Safe for any number of
// concurrent requests: queries share pinned snapshots, writes serialize on
// an internal writer lock.
type Server struct {
	wmu  sync.Mutex // guards db writes and snapshot publication
	db   *storage.Database
	snap atomic.Pointer[storage.Snapshot]

	sys     *ast.RecursiveSystem // non-nil when the program is one linear system
	prog    *ast.Program         // rules only, for the generic fallback path
	progKey string

	planner *eval.Planner
	cache   *eval.ResultCache
	reg     *obs.Registry
	workers int

	queries, errors *obs.Counter
	inflight        *obs.Gauge
	queryDur        *obs.Histogram
	evalDur         *obs.Histogram
}

// New builds a Server from Datalog source: rules define the program (facts
// in the source seed the database). Programs forming a single linear
// recursive system get the classification-driven planner; anything else is
// answered by the parallel semi-naive engine. Queries in the source are
// rejected — they arrive over HTTP.
func New(src string, cfg Config) (*Server, error) {
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(queries) > 0 {
		return nil, fmt.Errorf("server: program source contains a query (%v); send queries to /query instead", queries[0])
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("server: program has no rules")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		db:      storage.NewDatabase(),
		prog:    &ast.Program{Rules: prog.Rules},
		planner: eval.NewPlannerWith(reg),
		cache:   eval.NewResultCacheWith(reg, cfg.CacheBytes),
		reg:     reg,
		workers: cfg.Workers,

		queries:  reg.Counter(mQueries),
		errors:   reg.Counter(mErrors),
		inflight: reg.Gauge(mInflight),
		queryDur: reg.Histogram(mQueryDur, durBuckets),
		evalDur:  reg.Histogram(mEvalDur, durBuckets),
	}
	if sys, err := systemOf(s.prog); err == nil {
		s.sys = sys
	}
	var b strings.Builder
	for i, r := range prog.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	s.progKey = b.String()
	for _, f := range prog.Facts {
		names := make([]string, len(f.Args))
		for i, t := range f.Args {
			names[i] = t.Name
		}
		if _, err := s.db.Insert(f.Pred, names...); err != nil {
			return nil, err
		}
	}
	s.snap.Store(s.db.Snapshot())
	return s, nil
}

// systemOf extracts the single linear recursive system from the program
// (one recursive rule, rest exit rules for the same head).
func systemOf(prog *ast.Program) (*ast.RecursiveSystem, error) {
	var rec *ast.Rule
	var exits []ast.Rule
	for i := range prog.Rules {
		r := prog.Rules[i]
		if len(r.RecursiveAtoms()) > 0 {
			if rec != nil {
				return nil, fmt.Errorf("multiple recursive rules")
			}
			rec = &prog.Rules[i]
		} else {
			exits = append(exits, r)
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("no recursive rule")
	}
	for _, e := range exits {
		if e.Head.Pred != rec.Head.Pred {
			return nil, fmt.Errorf("rule %v is not an exit rule for %s", e, rec.Head.Pred)
		}
	}
	return ast.NewRecursiveSystem(*rec, exits...)
}

// LoadFacts inserts "pred(a, b)." lines and publishes a fresh snapshot.
func (s *Server) LoadFacts(src string) (uint64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.db.LoadFacts(src); err != nil {
		return s.db.Epoch(), err
	}
	snap := s.db.Snapshot()
	s.snap.Store(snap)
	return snap.Epoch(), nil
}

// Snapshot returns the latest published snapshot.
func (s *Server) Snapshot() *storage.Snapshot { return s.snap.Load() }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache returns the server's result cache.
func (s *Server) Cache() *eval.ResultCache { return s.cache }

// QueryResult is the /query response body.
type QueryResult struct {
	Query      string     `json:"query"`
	Answers    [][]string `json:"answers"`
	Count      int        `json:"count"`
	Epoch      uint64     `json:"epoch"`
	Cached     bool       `json:"cached"`
	Class      string     `json:"class,omitempty"`
	Strategy   string     `json:"strategy,omitempty"`
	Rounds     int        `json:"rounds"`
	Derived    int        `json:"derived"`
	DurationUS int64      `json:"duration_us"`
	Trace      any        `json:"trace,omitempty"`
}

// Query answers one query string against the latest snapshot, through the
// result cache. The tracer, when non-nil, receives the evaluation's spans.
func (s *Server) Query(qs string, tracer *obs.Tracer) (*QueryResult, error) {
	q, err := parser.ParseQuery(qs)
	if err != nil {
		return nil, err
	}
	snap := s.snap.Load()
	opts := eval.Opts{Workers: s.workers, Metrics: s.reg, Tracer: tracer}

	t0 := time.Now()
	var (
		rel    *storage.Relation
		st     eval.Stats
		cached bool
	)
	if s.sys != nil {
		rel, st, cached, err = s.cache.Answer(s.planner, s.sys, q, snap, opts)
	} else {
		// Generic program: parallel semi-naive over the snapshot, memoized
		// under the same (program, query, epoch) key.
		rel, st, cached, err = s.cache.Do(s.progKey, q.String(), snap.Epoch(), func() (*storage.Relation, eval.Stats, error) {
			out, st, err := eval.ParallelSemiNaiveOpts(s.prog, snap.DB(), opts)
			if err != nil {
				return nil, st, err
			}
			ans, err := eval.AnswerQuery(out, q)
			return ans, st, err
		})
	}
	s.evalDur.Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, err
	}

	syms := snap.Syms()
	res := &QueryResult{
		Query:      q.String(),
		Answers:    make([][]string, 0, rel.Len()),
		Count:      rel.Len(),
		Epoch:      snap.Epoch(),
		Cached:     cached,
		Rounds:     st.Rounds,
		Derived:    st.Derived,
		DurationUS: time.Since(t0).Microseconds(),
	}
	if st.Plan != nil {
		res.Class = st.Plan.Class
		res.Strategy = st.Plan.Strategy
	} else if s.sys == nil {
		res.Strategy = "parallel"
	}
	rel.Each(func(t storage.Tuple) bool {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = syms.Name(v)
		}
		res.Answers = append(res.Answers, row)
		return true
	})
	return res, nil
}

// Handler returns the server's HTTP handler: the obs mux (metrics, expvar,
// pprof) plus the query, facts and health endpoints.
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux(s.reg)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/facts", s.handleFacts)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
	Trace bool   `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qs string
	var wantTrace bool
	switch r.Method {
	case http.MethodGet:
		qs = r.URL.Query().Get("q")
		wantTrace = r.URL.Query().Get("trace") == "1"
	case http.MethodPost:
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		qs, wantTrace = req.Query, req.Trace
	default:
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET ?q= or POST"))
		return
	}
	if strings.TrimSpace(qs) == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty query (GET /query?q=?- p(a, Y). or POST {\"query\": ...})"))
		return
	}

	s.queries.Inc()
	s.inflight.Add(1)
	t0 := time.Now()
	defer func() {
		s.inflight.Add(-1)
		s.queryDur.Observe(time.Since(t0).Seconds())
	}()

	var tracer *obs.Tracer
	if wantTrace {
		tracer = obs.New("query")
	}
	res, err := s.Query(qs, tracer)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if tracer != nil {
		tracer.Finish()
		res.Trace = json.RawMessage(traceJSON(tracer))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// traceJSON renders a finished tracer's span tree as JSON bytes.
func traceJSON(t *obs.Tracer) []byte {
	var b strings.Builder
	if err := t.WriteJSON(&b); err != nil || b.Len() == 0 {
		return []byte("null")
	}
	return []byte(b.String())
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST fact lines (\"pred(a, b).\") to /facts"))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	epoch, err := s.LoadFacts(string(body))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"epoch": epoch})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok":            true,
		"epoch":         snap.Epoch(),
		"cache_entries": s.cache.Len(),
		"cache_bytes":   s.cache.Bytes(),
	})
}

// fail writes a JSON error and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
