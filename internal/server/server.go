// Package server implements the dlserve HTTP query server: snapshot-isolated
// concurrent query serving over one Datalog program with a materialized-
// result cache.
//
// The server holds one storage.Database behind a single writer lock. Every
// write (POST /facts) loads the new facts and publishes a fresh snapshot;
// every query pins the latest published snapshot with one atomic load and
// evaluates against it without ever blocking the writer or other readers.
// Answers are served through eval.ResultCache, keyed by (program, query,
// epoch): repeated queries of a quiet database cost one cache probe, iden-
// tical concurrent cold queries collapse into one fixpoint (singleflight),
// and a write automatically invalidates by advancing the epoch.
//
// Endpoints (on top of the obs mux's /metrics, /statz, /debug/vars,
// /debug/pprof/):
//
//	GET  /query?q=?- p(a, Y).   answer one query (POST {"query": ...} too)
//	POST /facts                 load "pred(a, b)." lines, advance the epoch
//	GET  /healthz               liveness plus epoch and cache footprint
//	GET  /readyz                readiness: 503 + reason until the startup
//	                            snapshot is published and the plan warms
//	GET  /debug/queries         query journal: in-flight, recent, slow
//	GET  /debug/queries/slow    the slow ring alone
//
// Add &trace=1 to /query to receive the evaluation's span tree in the
// response (per-query tracing, the HTTP form of dlrun -trace-json).
//
// Every request carries a correlation ID — accepted from the client's
// X-Request-Id header or generated — echoed in the response header, the
// JSON body (request_id), the NDJSON header/done lines, the query journal
// and the structured request log (Config.Logger, one log/slog JSON line
// per request).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// Server metric names, alongside the engine metrics in the same registry.
// dl_server_errors_total counts engine-side (5xx) failures only; malformed
// requests count into dl_server_client_errors_total, so an alert on the
// error counter never pages for a client typo.
const (
	mQueries      = "dl_server_queries_total"
	mErrors       = "dl_server_errors_total"
	mClientErrors = "dl_server_client_errors_total"
	mInflight     = "dl_server_inflight_queries"
	mQueryDur     = "dl_server_query_duration_seconds"
	mEvalDur      = "dl_server_eval_duration_seconds"
	// mRowsStreamed counts answer rows delivered through the streaming path
	// (NDJSON responses and limit'ed JSON responses).
	mRowsStreamed = "dl_query_rows_streamed_total"
	// mEarlyTerm counts streamed queries that stopped before exhausting
	// their answer set — a limit was satisfied mid-evaluation.
	mEarlyTerm = "dl_query_early_terminations_total"
	// mCanceled counts queries abandoned by their client (request context
	// canceled before the evaluation finished).
	mCanceled = "dl_server_canceled_queries_total"
)

// durBuckets covers query latencies from 10µs to 10s.
var durBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2.5, 5, 10}

// DefaultMaxFactsBytes caps a POST /facts body when Config.MaxFactsBytes is
// zero: large enough for bulk loads, small enough that a runaway client
// cannot exhaust memory through io.ReadAll.
const DefaultMaxFactsBytes = 8 << 20

// DefaultMaxQueryBytes caps a POST /query body when Config.MaxQueryBytes is
// zero. Queries are single lines; a megabyte is already generous.
const DefaultMaxQueryBytes = 1 << 20

// DefaultSlowQueryThreshold gates the journal's slow ring when
// Config.SlowQueryThreshold is zero: long enough that cache hits and small
// fixpoints never land there, short enough that anything a human would
// call slow does.
const DefaultSlowQueryThreshold = 250 * time.Millisecond

// Config tunes a Server. The zero value works: default cache budget,
// GOMAXPROCS workers, a fresh registry, incremental maintenance on.
type Config struct {
	// Registry receives the server and engine metrics; nil means a new
	// isolated registry (obs.Default() shares process-wide counters).
	Registry *obs.Registry
	// CacheBytes is the result-cache budget; 0 means
	// eval.DefaultResultCacheBytes.
	CacheBytes int64
	// Workers is handed to eval.Opts.Workers for the parallel engine.
	Workers int
	// Shards is handed to eval.Opts.Shards: 0 lets the engine pick its
	// shard count per query (sharded fixpoint for large inputs), 1 disables
	// sharding, >= 2 forces that many hash shards.
	Shards int
	// MaxFactsBytes caps the POST /facts request body; 0 means
	// DefaultMaxFactsBytes, negative means no limit.
	MaxFactsBytes int64
	// MaxQueryBytes caps the POST /query request body; 0 means
	// DefaultMaxQueryBytes, negative means no limit.
	MaxQueryBytes int64
	// DisableMaintenance turns off the result cache's incremental
	// maintenance pass on writes (every write then cold-starts the cache).
	// Used by benchmarks to measure the maintained/cold gap.
	DisableMaintenance bool
	// JournalSize caps the query journal's recent and slow rings; 0 means
	// obs.DefaultJournalSize, negative disables the journal entirely (the
	// /debug/queries endpoints then serve empty lists).
	JournalSize int
	// SlowQueryThreshold is the wall-clock latency at which a completed
	// query also enters the journal's always-retained slow ring; 0 means
	// DefaultSlowQueryThreshold, negative disables the slow ring.
	SlowQueryThreshold time.Duration
	// TraceSampleRate attaches a full span tree to 1 in every N requests'
	// journal records (the first of each window); 0 disables sampling.
	// Unsampled requests keep the nil-tracer zero-allocation path.
	TraceSampleRate int
	// Logger, when non-nil, receives one structured line per request
	// (queries and fact writes). The handler's level decides what is kept;
	// nil disables request logging.
	Logger *slog.Logger
	// HoldReady starts the server unready: /readyz answers 503 until
	// MarkReady is called. dlserve uses it to gate readiness on the startup
	// bulk fact load; the zero value is ready as soon as New returns (the
	// seed snapshot is published synchronously).
	HoldReady bool
}

// Server serves one Datalog program over HTTP. Safe for any number of
// concurrent requests: queries share pinned snapshots, writes serialize on
// an internal writer lock.
type Server struct {
	wmu  sync.Mutex // guards db writes and snapshot publication
	db   *storage.Database
	snap atomic.Pointer[storage.Snapshot]

	sys     *ast.RecursiveSystem // non-nil when the program is one linear system
	prog    *ast.Program         // rules only, for the generic fallback path
	progKey string

	planner  *eval.Planner
	cache    *eval.ResultCache
	reg      *obs.Registry
	workers  int
	shards   int
	maxFacts int64
	maxQuery int64
	maintain bool

	journal *obs.Journal
	sampler *obs.Sampler
	log     *slog.Logger
	// idBase prefixes generated request IDs (a per-process hex stamp), so
	// IDs from different server lifetimes never collide in aggregated logs.
	idBase string
	idSeq  atomic.Uint64

	// ready gates /readyz; warmOnce/warmErr memoize the one-shot plan
	// compile check (readiness means the serving plan is warm-able, not
	// just that the process is up).
	ready    atomic.Bool
	warmOnce sync.Once
	warmErr  error

	queries, errors, clientErrors *obs.Counter
	rowsStreamed, earlyTerm       *obs.Counter
	canceled                      *obs.Counter
	inflight                      *obs.Gauge
	queryDur                      *obs.Histogram
	evalDur                       *obs.Histogram
}

// clientError marks a failure caused by the request itself (malformed
// facts, bad query, oversized body): reported as 4xx and counted into
// dl_server_client_errors_total instead of dl_server_errors_total.
type clientError struct{ err error }

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }

func clientErrf(format string, args ...any) error {
	return &clientError{err: fmt.Errorf(format, args...)}
}

// New builds a Server from Datalog source: rules define the program (facts
// in the source seed the database). Programs forming a single linear
// recursive system get the classification-driven planner; anything else is
// answered by the parallel semi-naive engine. Queries in the source are
// rejected — they arrive over HTTP.
func New(src string, cfg Config) (*Server, error) {
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(queries) > 0 {
		return nil, fmt.Errorf("server: program source contains a query (%v); send queries to /query instead", queries[0])
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("server: program has no rules")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxFacts := cfg.MaxFactsBytes
	if maxFacts == 0 {
		maxFacts = DefaultMaxFactsBytes
	}
	maxQuery := cfg.MaxQueryBytes
	if maxQuery == 0 {
		maxQuery = DefaultMaxQueryBytes
	}
	var journal *obs.Journal
	if cfg.JournalSize >= 0 {
		thresh := cfg.SlowQueryThreshold
		if thresh == 0 {
			thresh = DefaultSlowQueryThreshold
		}
		journal = obs.NewJournal(cfg.JournalSize, thresh)
	}
	s := &Server{
		db:       storage.NewDatabase(),
		prog:     &ast.Program{Rules: prog.Rules},
		planner:  eval.NewPlannerWith(reg),
		cache:    eval.NewResultCacheWith(reg, cfg.CacheBytes),
		reg:      reg,
		workers:  cfg.Workers,
		shards:   cfg.Shards,
		maxFacts: maxFacts,
		maxQuery: maxQuery,
		maintain: !cfg.DisableMaintenance,

		journal: journal,
		sampler: obs.NewSampler(cfg.TraceSampleRate),
		log:     cfg.Logger,
		idBase:  fmt.Sprintf("%08x", uint32(time.Now().UnixNano())),

		queries:      reg.Counter(mQueries),
		errors:       reg.Counter(mErrors),
		clientErrors: reg.Counter(mClientErrors),
		rowsStreamed: reg.Counter(mRowsStreamed),
		earlyTerm:    reg.Counter(mEarlyTerm),
		canceled:     reg.Counter(mCanceled),
		inflight:     reg.Gauge(mInflight),
		queryDur:     reg.Histogram(mQueryDur, durBuckets),
		evalDur:      reg.Histogram(mEvalDur, durBuckets),
	}
	if sys, err := systemOf(s.prog); err == nil {
		s.sys = sys
	}
	var b strings.Builder
	for i, r := range prog.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	s.progKey = b.String()
	for _, f := range prog.Facts {
		names := make([]string, len(f.Args))
		for i, t := range f.Args {
			names[i] = t.Name
		}
		if _, err := s.db.Insert(f.Pred, names...); err != nil {
			return nil, err
		}
	}
	s.snap.Store(s.db.Snapshot())
	s.ready.Store(!cfg.HoldReady)
	return s, nil
}

// MarkReady flips /readyz to 200. Servers built without Config.HoldReady
// are ready as soon as New returns; dlserve calls this after its startup
// bulk fact load so load balancers never route to a half-loaded database.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Journal returns the server's query journal (nil when disabled).
func (s *Server) Journal() *obs.Journal { return s.journal }

// systemOf extracts the single linear recursive system from the program
// (one recursive rule, rest exit rules for the same head).
func systemOf(prog *ast.Program) (*ast.RecursiveSystem, error) {
	var rec *ast.Rule
	var exits []ast.Rule
	for i := range prog.Rules {
		r := prog.Rules[i]
		if len(r.RecursiveAtoms()) > 0 {
			if rec != nil {
				return nil, fmt.Errorf("multiple recursive rules")
			}
			rec = &prog.Rules[i]
		} else {
			exits = append(exits, r)
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("no recursive rule")
	}
	for _, e := range exits {
		if e.Head.Pred != rec.Head.Pred {
			return nil, fmt.Errorf("rule %v is not an exit rule for %s", e, rec.Head.Pred)
		}
	}
	return ast.NewRecursiveSystem(*rec, exits...)
}

// LoadFacts inserts "pred(a, b)." lines and publishes a fresh snapshot.
// The batch is atomic: it is parsed and arity-checked in full — against
// itself and against the live database — before the first insert, so a bad
// line midway through leaves the database, the epoch and the cache exactly
// as they were. After the inserts the result cache's maintenance pass
// carries the previous epoch's entries forward (unless disabled), and only
// then is the new snapshot published, so readers never cold-start.
func (s *Server) LoadFacts(src string) (uint64, error) {
	epoch, _, _, err := s.loadFacts(src)
	return epoch, err
}

// loadFacts is LoadFacts plus the write-path observability payload: the
// maintenance pass's outcome and duration, which the /facts handler logs
// (maintained vs recomputed entries is the one number that says whether a
// write was cheap or cold-started the cache).
func (s *Server) loadFacts(src string) (uint64, eval.MaintResult, time.Duration, error) {
	var mres eval.MaintResult
	facts, err := storage.ScanFacts(src)
	if err != nil {
		return s.snap.Load().Epoch(), mres, 0, &clientError{err: err}
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	arities := make(map[string]int)
	for _, f := range facts {
		want, seen := arities[f.Pred]
		if !seen {
			if r := s.db.Rel(f.Pred); r != nil {
				want, seen = r.Arity(), true
			}
		}
		if seen && want != len(f.Args) {
			return s.db.Epoch(), mres, 0, clientErrf(
				"fact %s/%d conflicts with arity %d; no facts from this batch were loaded",
				f.Pred, len(f.Args), want)
		}
		arities[f.Pred] = len(f.Args)
	}
	old := s.snap.Load()
	for _, f := range facts {
		if _, err := s.db.Insert(f.Pred, f.Args...); err != nil {
			// Unreachable after validation; surface it rather than hide it.
			return s.db.Epoch(), mres, 0, err
		}
	}
	snap := s.db.Snapshot()
	var maintDur time.Duration
	if s.maintain && snap != old {
		t0 := time.Now()
		mres = s.cache.Maintain(old, snap, eval.MaintSpec{
			Planner: s.planner,
			Sys:     s.sys,
			Prog:    s.prog,
			ProgKey: s.progKey,
			Opts:    eval.Opts{Workers: s.workers, Shards: s.shards, Metrics: s.reg},
		})
		maintDur = time.Since(t0)
	}
	s.snap.Store(snap)
	return snap.Epoch(), mres, maintDur, nil
}

// Snapshot returns the latest published snapshot.
func (s *Server) Snapshot() *storage.Snapshot { return s.snap.Load() }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache returns the server's result cache.
func (s *Server) Cache() *eval.ResultCache { return s.cache }

// QueryResult is the /query response body.
type QueryResult struct {
	Query string `json:"query"`
	// RequestID is the request's correlation ID: echoed from the client's
	// X-Request-Id header or generated, and repeated in the response header,
	// the journal record and the request log line.
	RequestID string `json:"request_id,omitempty"`
	// Pred/Arity/Adornment identify the query shape: the queried predicate
	// and its binding pattern in the paper's d/v notation ("dv" = first
	// argument bound, second free).
	Pred      string     `json:"pred,omitempty"`
	Arity     int        `json:"arity,omitempty"`
	Adornment string     `json:"adornment,omitempty"`
	Answers   [][]string `json:"answers"`
	Count     int        `json:"count"`
	Epoch     uint64     `json:"epoch"`
	Cached    bool       `json:"cached"`
	// Maintained reports that the answer was carried across a write by the
	// result cache's incremental maintenance pass rather than recomputed.
	Maintained bool   `json:"maintained,omitempty"`
	Class      string `json:"class,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	Rounds     int    `json:"rounds"`
	Derived    int    `json:"derived"`
	// Cost is the compiled plan's estimated enumeration cost (tuples
	// visited) under its statistics-driven join orders; omitted when the
	// plan carries no order book (e.g. the TC kernel).
	Cost int64 `json:"cost,omitempty"`
	// Limit echoes the request's answer cap (0 = none); Truncated reports
	// that the evaluation stopped early because the cap was reached before
	// the answer set was exhausted.
	Limit     int  `json:"limit,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
	// Shards is the hash-shard count the evaluation ran with (omitted when
	// unsharded); GoMaxProcs records runtime.GOMAXPROCS(0) at answer time,
	// so every perf number in a response is attributable to a core count.
	Shards     int   `json:"shards,omitempty"`
	GoMaxProcs int   `json:"gomaxprocs"`
	DurationUS int64 `json:"duration_us"`
	Trace      any   `json:"trace,omitempty"`

	// stats keeps the raw evaluation counters for the journal handoff
	// (eval.Stats.FillJournal); not part of the JSON body.
	stats eval.Stats
}

// Query answers one query string against the latest snapshot, through the
// result cache. The tracer, when non-nil, receives the evaluation's spans.
// ctx cancellation aborts the evaluation (eval.ErrCanceled): a disconnected
// client stops burning CPU at the next fixpoint round, while a singleflight
// compute with other live waiters keeps running for them.
func (s *Server) Query(ctx context.Context, qs string, tracer *obs.Tracer) (*QueryResult, error) {
	q, err := parser.ParseQuery(qs)
	if err != nil {
		return nil, &clientError{err: err}
	}
	snap := s.snap.Load()
	if err := s.validateQuery(q, snap); err != nil {
		return nil, err
	}
	opts := eval.Opts{Workers: s.workers, Shards: s.shards, Metrics: s.reg, Tracer: tracer, Abort: ctx.Done()}

	t0 := time.Now()
	var (
		rel    *storage.Relation
		st     eval.Stats
		cached bool
	)
	if s.sys != nil {
		rel, st, cached, err = s.cache.Answer(s.planner, s.sys, q, snap, opts)
	} else {
		// Generic program: parallel semi-naive over the snapshot, memoized
		// under (program, query, epoch) with the materialized fixpoint kept
		// as the entry's maintenance state.
		rel, st, cached, err = s.cache.AnswerProgram(s.prog, s.progKey, q, snap, opts)
	}
	s.evalDur.Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, err
	}

	syms := snap.Syms()
	res := s.newResult(q, snap, st, cached, t0)
	res.Answers = make([][]string, 0, rel.Len())
	res.Count = rel.Len()
	rel.Each(func(t storage.Tuple) bool {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = syms.Name(v)
		}
		res.Answers = append(res.Answers, row)
		return true
	})
	return res, nil
}

// newResult fills the answer-independent QueryResult fields.
func (s *Server) newResult(q ast.Query, snap *storage.Snapshot, st eval.Stats, cached bool, t0 time.Time) *QueryResult {
	res := &QueryResult{
		Query:      q.String(),
		Pred:       q.Atom.Pred,
		Arity:      q.Atom.Arity(),
		Adornment:  adorn.FromQuery(q).String(),
		stats:      st,
		Epoch:      snap.Epoch(),
		Cached:     cached,
		Maintained: st.Maintained,
		Rounds:     st.Rounds,
		Derived:    st.Derived,
		Truncated:  st.Truncated,
		Shards:     st.Shards,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationUS: time.Since(t0).Microseconds(),
	}
	if st.Plan != nil {
		res.Class = st.Plan.Class
		res.Strategy = st.Plan.Strategy
		res.Cost = st.Plan.Cost
	} else if s.sys == nil {
		res.Strategy = "parallel"
	}
	return res
}

// queryStream is one open streaming evaluation: the iterator plus the
// request-scoped state the response needs before and after the rows.
type queryStream struct {
	it     eval.Iterator
	q      ast.Query
	snap   *storage.Snapshot
	cached bool
	t0     time.Time
}

// openStream parses and validates the query, then opens its answer stream
// against the latest snapshot: a zero-copy iterator over the cached relation
// on a cache hit, otherwise a streaming evaluation along the compiled plan
// (which a limit or a ctx cancellation stops mid-fixpoint). Streamed misses
// do not populate the result cache — a truncated answer set must never be
// served as the full one.
func (s *Server) openStream(ctx context.Context, qs string, limit int, tracer *obs.Tracer) (*queryStream, error) {
	q, err := parser.ParseQuery(qs)
	if err != nil {
		return nil, &clientError{err: err}
	}
	snap := s.snap.Load()
	if err := s.validateQuery(q, snap); err != nil {
		return nil, err
	}
	opts := eval.Opts{Workers: s.workers, Shards: s.shards, Metrics: s.reg, Tracer: tracer, Abort: ctx.Done()}
	qst := &queryStream{q: q, snap: snap, t0: time.Now()}

	progKey := s.progKey
	if s.sys != nil {
		progKey = eval.SystemKey(s.sys)
	}
	if rel, cst, ok := s.cache.Lookup(progKey, q.String(), snap.Epoch()); ok {
		qst.cached = true
		qst.it = eval.NewRelationIterator(rel, limit, cst)
		return qst, nil
	}
	if s.sys != nil {
		plan, _, err := s.planner.PlanForEpoch(s.sys, q, snap.Epoch(), snap.DB(), opts)
		if err != nil {
			return nil, err
		}
		qst.it = plan.Stream(q, snap.DB(), opts, limit)
		return qst, nil
	}
	qst.it = eval.StreamProgram(s.prog, q, snap.DB(), opts, limit)
	return qst, nil
}

// StreamQuery answers one query, delivering each answer row to the callback
// as it is derived instead of materializing the full set. each returning
// false stops the evaluation (remaining fixpoint rounds are abandoned); so
// do reaching the limit (limit > 0) and ctx cancellation. The returned
// QueryResult summarizes the stream — Count is the number of rows delivered,
// Answers stays nil. On ctx cancellation the summary is returned alongside
// an error wrapping eval.ErrCanceled.
func (s *Server) StreamQuery(ctx context.Context, qs string, limit int, tracer *obs.Tracer, each func(row []string) bool) (*QueryResult, error) {
	qst, err := s.openStream(ctx, qs, limit, tracer)
	if err != nil {
		return nil, err
	}
	defer qst.it.Close()
	syms := qst.snap.Syms()
	rows := 0
	for qst.it.Next() {
		t := qst.it.Tuple()
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = syms.Name(v)
		}
		rows++
		if !each(row) {
			break
		}
	}
	// Close before reading Stats/Err: after an early break the producer may
	// still be running, and both are defined only once it has exited.
	qst.it.Close()
	st := qst.it.Stats()
	s.evalDur.Observe(time.Since(qst.t0).Seconds())
	s.rowsStreamed.Add(int64(rows))
	if st.Truncated {
		s.earlyTerm.Inc()
	}
	res := s.newResult(qst.q, qst.snap, st, qst.cached, qst.t0)
	res.Count = rows
	res.Limit = limit
	if err := qst.it.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// validateQuery rejects queries that can never be answered by the served
// program — wrong predicate for a single-system server, wrong arity for a
// known predicate — as client errors, so they don't count as engine
// failures.
func (s *Server) validateQuery(q ast.Query, snap *storage.Snapshot) error {
	if s.sys != nil {
		if q.Atom.Pred != s.sys.Pred() || q.Atom.Arity() != s.sys.Arity() {
			return clientErrf("query %v does not match served predicate %s/%d",
				q, s.sys.Pred(), s.sys.Arity())
		}
		return nil
	}
	want := -1
	for _, r := range s.prog.Rules {
		if r.Head.Pred == q.Atom.Pred {
			want = r.Head.Arity()
			break
		}
	}
	if want < 0 {
		if rel := snap.Rel(q.Atom.Pred); rel != nil {
			want = rel.Arity()
		}
	}
	if want >= 0 && want != q.Atom.Arity() {
		return clientErrf("query %v has arity %d, predicate %s has arity %d",
			q, q.Atom.Arity(), q.Atom.Pred, want)
	}
	return nil
}

// Handler returns the server's HTTP handler: the obs mux (metrics, statz,
// expvar, pprof, the query journal's /debug/queries endpoints) plus the
// query, facts, liveness and readiness endpoints.
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux(s.reg)
	obs.MountJournal(mux, s.journal)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/facts", s.handleFacts)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
	Trace bool   `json:"trace,omitempty"`
	// Limit caps the number of answers (0 = all); the evaluation stops as
	// soon as the cap is reached.
	Limit int `json:"limit,omitempty"`
	// Stream switches the response to chunked NDJSON: a header object, one
	// {"row": [...]} object per answer as it is derived, then a summary.
	Stream bool `json:"stream,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qs string
	var wantTrace, stream bool
	var limit int
	switch r.Method {
	case http.MethodGet:
		qv := r.URL.Query()
		qs = qv.Get("q")
		wantTrace = qv.Get("trace") == "1"
		stream = qv.Get("stream") == "1"
		if lv := qv.Get("limit"); lv != "" {
			n, err := strconv.Atoi(lv)
			if err != nil || n < 0 {
				s.fail(w, http.StatusBadRequest, fmt.Errorf("limit must be a non-negative integer, got %q", lv))
				return
			}
			limit = n
		}
	case http.MethodPost:
		body := io.Reader(r.Body)
		if s.maxQuery > 0 {
			body = http.MaxBytesReader(w, r.Body, s.maxQuery)
		}
		var req queryRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.fail(w, http.StatusRequestEntityTooLarge,
					clientErrf("query body exceeds %d bytes", mbe.Limit))
				return
			}
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if req.Limit < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("limit must be non-negative, got %d", req.Limit))
			return
		}
		qs, wantTrace, limit, stream = req.Query, req.Trace, req.Limit, req.Stream
	default:
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET ?q= or POST"))
		return
	}
	if strings.TrimSpace(qs) == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty query (GET /query?q=?- p(a, Y). or POST {\"query\": ...})"))
		return
	}

	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)

	s.queries.Inc()
	s.inflight.Add(1)
	t0 := time.Now()

	// Sampled requests get a full span tree attached to their journal
	// record even when the client did not ask for one; unsampled requests
	// without &trace=1 keep the nil tracer — the zero-allocation hot path.
	sampled := s.sampler.Sample()
	var tracer *obs.Tracer
	if wantTrace || sampled {
		tracer = obs.New("query")
	}
	tok := s.journal.Begin(reqID, qs)
	rec := obs.QueryRecord{ID: reqID, Query: qs, Start: t0, Sampled: sampled, Streamed: stream}

	var res *QueryResult
	var qerr error
	defer func() {
		s.inflight.Add(-1)
		s.queryDur.Observe(time.Since(t0).Seconds())
		s.journal.End(tok)
		s.completeRequest(&rec, res, qerr, tracer, t0)
	}()

	ctx := r.Context()
	if stream {
		res, qerr = s.streamResponse(ctx, w, qs, limit, tracer, wantTrace, reqID)
		return
	}

	if limit > 0 {
		// Limited non-streaming query: evaluate through the streaming path
		// (the fixpoint stops at the cap) but answer with one JSON body.
		var answers [][]string
		res, qerr = s.StreamQuery(ctx, qs, limit, tracer, func(row []string) bool {
			answers = append(answers, row)
			return true
		})
		if res != nil {
			res.Answers = answers
			if res.Answers == nil {
				res.Answers = [][]string{}
			}
		}
	} else {
		res, qerr = s.Query(ctx, qs, tracer)
	}
	if qerr != nil {
		if s.countCanceled(ctx, qerr) {
			// The client is gone; there is nobody to answer.
			return
		}
		s.fail(w, errStatus(qerr), qerr)
		return
	}
	res.RequestID = reqID
	if tracer != nil && wantTrace {
		tracer.Finish()
		res.Trace = json.RawMessage(traceJSON(tracer))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// requestID returns the request's correlation ID: the client's
// X-Request-Id header when present (truncated to 128 bytes), otherwise a
// generated per-process-unique ID.
func (s *Server) requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return s.idBase + "-" + strconv.FormatUint(s.idSeq.Add(1), 10)
}

// errClass buckets a request outcome for the journal and the request log:
// "" success, "client" (the request was wrong), "canceled" (the client
// left), "engine" (the evaluation failed).
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, eval.ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	}
	var ce *clientError
	if errors.As(err, &ce) {
		return "client"
	}
	return "engine"
}

// completeRequest closes out one /query request's observability: fills the
// journal record from the result (evaluation counters via
// eval.Stats.FillJournal), attaches the span tree when one was collected,
// records it, and emits the structured request log line.
func (s *Server) completeRequest(rec *obs.QueryRecord, res *QueryResult, err error, tracer *obs.Tracer, t0 time.Time) {
	rec.WallUS = time.Since(t0).Microseconds()
	if res != nil {
		rec.Pred, rec.Arity, rec.Adornment = res.Pred, res.Arity, res.Adornment
		rec.Epoch = res.Epoch
		rec.Cached = res.Cached
		rec.Rows = res.Count
		rec.EvalUS = res.DurationUS
		res.stats.FillJournal(rec)
	}
	rec.Error = errClass(err)
	if tracer != nil {
		tracer.Finish()
		rec.Trace = traceJSON(tracer)
	}
	slow := s.journal.SlowThreshold() >= 0 && rec.WallUS >= s.journal.SlowThreshold().Microseconds()
	s.journal.Record(*rec)
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	switch rec.Error {
	case "engine":
		level = slog.LevelError
	case "client", "canceled":
		level = slog.LevelWarn
	}
	s.log.LogAttrs(context.Background(), level, "query",
		slog.String("request_id", rec.ID),
		slog.String("query", rec.Query),
		slog.String("pred", rec.Pred),
		slog.String("adornment", rec.Adornment),
		slog.String("class", rec.Class),
		slog.String("strategy", rec.Strategy),
		slog.Bool("cached", rec.Cached),
		slog.Bool("maintained", rec.Maintained),
		slog.Bool("streamed", rec.Streamed),
		slog.Uint64("epoch", rec.Epoch),
		slog.Int("shards", rec.Shards),
		slog.Int("rounds", rec.Rounds),
		slog.Int("rows", rec.Rows),
		slog.Bool("truncated", rec.Truncated),
		slog.Bool("slow", slow),
		slog.Bool("sampled", rec.Sampled),
		slog.Int64("wall_us", rec.WallUS),
		slog.Int64("eval_us", rec.EvalUS),
		slog.String("error", rec.Error),
	)
}

// countCanceled reports whether err (or the request context) means the
// client abandoned the query, counting it once into
// dl_server_canceled_queries_total. Cancellations are neither server errors
// nor client errors — nothing was wrong with the request.
func (s *Server) countCanceled(ctx context.Context, err error) bool {
	if errors.Is(err, eval.ErrCanceled) || (ctx.Err() != nil && err != nil) {
		s.canceled.Inc()
		return true
	}
	return false
}

// streamResponse answers one query as chunked NDJSON: a header object
// (request_id, query, epoch, cached, limit), one {"row": [...]} line per
// answer flushed as it is derived, and a final {"done": true, ...} summary.
// A client disconnect cancels the evaluation via the request context; rows
// already buffered are simply dropped. The returned summary and error feed
// the caller's journal record; the HTTP response is fully written here.
func (s *Server) streamResponse(ctx context.Context, w http.ResponseWriter, qs string, limit int, tracer *obs.Tracer, wantTrace bool, reqID string) (*QueryResult, error) {
	qst, err := s.openStream(ctx, qs, limit, tracer)
	if err != nil {
		if s.countCanceled(ctx, err) {
			return nil, err
		}
		s.fail(w, errStatus(err), err)
		return nil, err
	}
	defer qst.it.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{
		"request_id": reqID,
		"query":      qst.q.String(),
		"epoch":      qst.snap.Epoch(),
		"cached":     qst.cached,
		"limit":      limit,
	})
	if flusher != nil {
		flusher.Flush()
	}

	syms := qst.snap.Syms()
	rows := 0
	writeOK := true
	for qst.it.Next() {
		t := qst.it.Tuple()
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = syms.Name(v)
		}
		rows++
		if err := enc.Encode(map[string]any{"row": row}); err != nil {
			// The write path is dead (client gone); stop pulling. The
			// context cancellation tears down the producer.
			writeOK = false
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Close before reading Stats/Err: after a write-error break the producer
	// may still be running, and both are defined only once it has exited.
	qst.it.Close()
	st := qst.it.Stats()
	s.evalDur.Observe(time.Since(qst.t0).Seconds())
	s.rowsStreamed.Add(int64(rows))
	if st.Truncated {
		s.earlyTerm.Inc()
	}
	res := s.newResult(qst.q, qst.snap, st, qst.cached, qst.t0)
	res.RequestID = reqID
	res.Count = rows
	res.Limit = limit
	serr := qst.it.Err()
	if s.countCanceled(ctx, serr) || s.countCanceled(ctx, ctx.Err()) {
		if serr == nil {
			serr = context.Canceled
		}
		return res, serr
	}
	if !writeOK {
		// The response write path died mid-stream: the client is gone.
		s.canceled.Inc()
		return res, fmt.Errorf("client disconnected mid-stream: %w", eval.ErrCanceled)
	}
	done := map[string]any{
		"done":        true,
		"request_id":  reqID,
		"count":       rows,
		"truncated":   res.Truncated,
		"cached":      res.Cached,
		"class":       res.Class,
		"strategy":    res.Strategy,
		"rounds":      res.Rounds,
		"derived":     res.Derived,
		"shards":      res.Shards,
		"gomaxprocs":  res.GoMaxProcs,
		"duration_us": res.DurationUS,
	}
	if serr != nil {
		s.errors.Inc()
		done["error"] = serr.Error()
	}
	if tracer != nil && wantTrace {
		tracer.Finish()
		done["trace"] = json.RawMessage(traceJSON(tracer))
	}
	enc.Encode(done)
	if flusher != nil {
		flusher.Flush()
	}
	return res, serr
}

// traceJSON renders a finished tracer's span tree as JSON bytes.
func traceJSON(t *obs.Tracer) []byte {
	var b strings.Builder
	if err := t.WriteJSON(&b); err != nil || b.Len() == 0 {
		return []byte("null")
	}
	return []byte(b.String())
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST fact lines (\"pred(a, b).\") to /facts"))
		return
	}
	reqID := s.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	body := r.Body
	if s.maxFacts > 0 {
		body = http.MaxBytesReader(w, body, s.maxFacts)
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				clientErrf("facts body exceeds %d bytes", mbe.Limit))
			return
		}
		s.fail(w, http.StatusBadRequest, &clientError{err: err})
		return
	}
	t0 := time.Now()
	epoch, mres, maintDur, err := s.loadFacts(string(raw))
	s.logFacts(reqID, len(raw), epoch, mres, maintDur, time.Since(t0), err)
	if err != nil {
		s.fail(w, errStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"epoch": epoch,
		// Maintenance outcome: entries carried forward vs rebuilt from
		// scratch by this write's cache-maintenance pass.
		"maintained": mres.Maintained,
		"recomputed": mres.Recomputed,
	})
}

// logFacts emits the write-path structured log line: batch size, resulting
// epoch, and the maintenance outcome (entries carried forward vs
// recomputed, and how long the pass took).
func (s *Server) logFacts(reqID string, bytes int, epoch uint64, mres eval.MaintResult, maintDur, wall time.Duration, err error) {
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	switch errClass(err) {
	case "engine":
		level = slog.LevelError
	case "client", "canceled":
		level = slog.LevelWarn
	}
	s.log.LogAttrs(context.Background(), level, "facts",
		slog.String("request_id", reqID),
		slog.Int("bytes", bytes),
		slog.Uint64("epoch", epoch),
		slog.Int("maintained", mres.Maintained),
		slog.Int("recomputed", mres.Recomputed),
		slog.Int("skipped", mres.Skipped),
		slog.Int64("maintenance_us", maintDur.Microseconds()),
		slog.Int64("wall_us", wall.Microseconds()),
		slog.String("error", errClass(err)),
	)
}

// errStatus maps an error to its HTTP status: 400 for request-caused
// failures, 500 for engine-side ones.
func errStatus(err error) int {
	var ce *clientError
	if errors.As(err, &ce) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// handleHealth is pure liveness: the process is up and can answer HTTP.
// Routing decisions belong to /readyz — a live server may still be loading
// its initial facts.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok":            true,
		"epoch":         snap.Epoch(),
		"cache_entries": s.cache.Len(),
		"cache_bytes":   s.cache.Bytes(),
	})
}

// handleReady is readiness: 200 only once the startup snapshot is fully
// published (MarkReady after any HoldReady bulk load) and the served
// system's plan compiles. Before that it answers 503 with a JSON reason,
// so load balancers and orchestration probes keep traffic away.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	notReady := func(reason string) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": reason})
	}
	if !s.ready.Load() {
		notReady("startup fact load in progress; latest snapshot not yet published")
		return
	}
	s.warmOnce.Do(s.warmPlan)
	if s.warmErr != nil {
		notReady("plan compilation failed: " + s.warmErr.Error())
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ready": true,
		"epoch": s.snap.Load().Epoch(),
	})
}

// warmPlan compiles (and caches) the served system's all-free plan once:
// readiness promises not just a published snapshot but a plan the first
// real query can reuse from the plan cache.
func (s *Server) warmPlan() {
	if s.sys == nil {
		return // generic programs are answered without a compiled plan
	}
	args := make([]ast.Term, s.sys.Arity())
	for i := range args {
		args[i] = ast.V(fmt.Sprintf("Warm%d", i))
	}
	q := ast.Query{Atom: ast.NewAtom(s.sys.Pred(), args...)}
	snap := s.snap.Load()
	_, _, err := s.planner.PlanForEpoch(s.sys, q, snap.Epoch(), snap.DB(), eval.Opts{Workers: s.workers, Metrics: s.reg})
	s.warmErr = err
}

// fail writes a JSON error and counts it: 5xx into dl_server_errors_total,
// everything else (client mistakes) into dl_server_client_errors_total.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if code >= http.StatusInternalServerError {
		s.errors.Inc()
	} else {
		s.clientErrors.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
