package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/parser"
)

const tcProgram = `
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
e(a, b). e(b, c). e(c, d).
`

func newTestServer(t *testing.T, src string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getQuery(t *testing.T, ts *httptest.Server, q string) QueryResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(q, " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET /query %s: status %d (%s)", q, resp.StatusCode, e["error"])
	}
	var res QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerQueryEndToEnd: answers, cache behavior and write invalidation
// through the HTTP surface.
func TestServerQueryEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, tcProgram)

	cold := getQuery(t, ts, "?- p(a, Y).")
	if cold.Count != 3 || cold.Cached {
		t.Fatalf("cold query: count=%d cached=%v, want 3/false", cold.Count, cold.Cached)
	}
	if cold.Class == "" || cold.Strategy == "" {
		t.Errorf("cold query missing plan info: %+v", cold)
	}
	warm := getQuery(t, ts, "?- p(a, Y).")
	if !warm.Cached || warm.Count != 3 || warm.Epoch != cold.Epoch {
		t.Fatalf("warm query: cached=%v count=%d epoch=%d, want true/3/%d",
			warm.Cached, warm.Count, warm.Epoch, cold.Epoch)
	}

	// A write advances the epoch and the next query sees the new edge.
	resp, err := http.Post(ts.URL+"/facts", "text/plain", strings.NewReader("e(d, x)."))
	if err != nil {
		t.Fatal(err)
	}
	var fr map[string]uint64
	json.NewDecoder(resp.Body).Decode(&fr)
	resp.Body.Close()
	if fr["epoch"] <= cold.Epoch {
		t.Fatalf("POST /facts epoch = %d, want > %d", fr["epoch"], cold.Epoch)
	}
	// The maintenance pass carried the entry across the write: the post-write
	// query is a cache hit at the new epoch, flagged maintained, and sees the
	// new edge.
	after := getQuery(t, ts, "?- p(a, Y).")
	if !after.Cached || !after.Maintained || after.Count != 4 || after.Epoch != fr["epoch"] {
		t.Fatalf("post-write query: cached=%v maintained=%v count=%d epoch=%d, want true/true/4/%d",
			after.Cached, after.Maintained, after.Count, after.Epoch, fr["epoch"])
	}

	// POST /query with trace returns a span tree.
	body, _ := json.Marshal(queryRequest{Query: "?- p(X, Y).", Trace: true})
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var traced QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traced.Trace == nil {
		t.Error("trace=1 returned no span tree")
	}
	if traced.Count != 10 { // TC of the 5-node chain a..d,x: 4+3+2+1
		t.Errorf("full query count = %d, want 10", traced.Count)
	}
}

// TestServerMetricsExposed scrapes /metrics and checks the serving counters
// (queries, result-cache hits/misses) moved.
func TestServerMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, tcProgram)
	getQuery(t, ts, "?- p(a, Y).")
	getQuery(t, ts, "?- p(a, Y).")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"dl_server_queries_total 2",
		"dl_resultcache_hits_total 1",
		"dl_resultcache_misses_total 1",
		"dl_server_query_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "dl_server_inflight_queries 0") {
		t.Errorf("/metrics inflight gauge not back to 0")
	}
}

// TestServerGenericFallback: a program that is not a single linear system
// still serves (parallel semi-naive path) with caching.
func TestServerGenericFallback(t *testing.T) {
	src := `
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, Z), t(Z, Y).
e(a, b). e(b, c).
`
	s, ts := newTestServer(t, src)
	if s.sys != nil {
		t.Fatal("nonlinear program extracted a linear system")
	}
	cold := getQuery(t, ts, "?- t(a, Y).")
	if cold.Count != 2 || cold.Cached || cold.Strategy != "parallel" {
		t.Fatalf("fallback cold: %+v, want 2 answers via parallel", cold)
	}
	warm := getQuery(t, ts, "?- t(a, Y).")
	if !warm.Cached || warm.Count != 2 {
		t.Fatalf("fallback warm: cached=%v count=%d", warm.Cached, warm.Count)
	}
}

// TestServerErrors: bad inputs fail with JSON errors and count into
// dl_server_errors_total; programs with embedded queries are rejected.
func TestServerErrors(t *testing.T) {
	s, ts := newTestServer(t, tcProgram)
	for _, url := range []string{
		ts.URL + "/query",              // empty q
		ts.URL + "/query?q=nonsense((", // parse error
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	if got := s.Registry().Counter("dl_server_client_errors_total").Value(); got != 2 {
		t.Errorf("dl_server_client_errors_total = %d, want 2", got)
	}
	if got := s.Registry().Counter("dl_server_errors_total").Value(); got != 0 {
		t.Errorf("dl_server_errors_total = %d, want 0 (client mistakes are not engine errors)", got)
	}
	if _, err := New("p(X) :- e(X).\n?- p(X).", Config{}); err == nil {
		t.Error("program with an embedded query must be rejected")
	}
	if _, err := New("e(a, b).", Config{}); err == nil {
		t.Error("rule-less program must be rejected")
	}
}

// TestServerConcurrentReadWrite hammers the server with concurrent queries
// and fact writes (run under -race by `make race`); every answer must be
// internally consistent: the TC answer count for the pinned epoch must be
// non-decreasing in the epoch, since this workload only ever adds edges.
func TestServerConcurrentReadWrite(t *testing.T) {
	s, err := New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).\ne(n0, n1).", Config{})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 2
	const readers = 4
	const rounds = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				fact := fmt.Sprintf("e(n%d, n%d).", w*rounds+i, w*rounds+i+1)
				if _, err := s.LoadFacts(fact); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	type seen struct {
		epoch uint64
		count int
	}
	results := make([][]seen, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := s.Query(context.Background(), "?- p(X, Y).", nil)
				if err != nil {
					t.Error(err)
					return
				}
				results[r] = append(results[r], seen{res.Epoch, res.Count})
			}
		}(r)
	}
	wg.Wait()
	// Monotonic consistency: higher epoch ⇒ no fewer answers, and equal
	// epochs ⇒ equal counts (snapshot isolation).
	byEpoch := map[uint64]int{}
	for r := range results {
		for _, sn := range results[r] {
			if prev, ok := byEpoch[sn.epoch]; ok && prev != sn.count {
				t.Fatalf("epoch %d answered both %d and %d tuples", sn.epoch, prev, sn.count)
			}
			byEpoch[sn.epoch] = sn.count
		}
	}
	var epochs []uint64
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	for _, e1 := range epochs {
		for _, e2 := range epochs {
			if e1 < e2 && byEpoch[e1] > byEpoch[e2] {
				t.Fatalf("answers shrank across epochs: %d@%d > %d@%d",
					byEpoch[e1], e1, byEpoch[e2], e2)
			}
		}
	}
	// Final state: every inserted edge is visible — the chain segments give
	// a known TC size, cross-checked against a serial evaluation.
	snap := s.Snapshot()
	final, err := s.Query(context.Background(), "?- p(X, Y).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != snap.Epoch() {
		t.Errorf("final query epoch %d != snapshot epoch %d", final.Epoch, snap.Epoch())
	}
	sys, err := systemOf(s.prog)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := parser.ParseQuery("?- p(X, Y).")
	ref, _, err := eval.Answer(eval.StrategySemiNaive, sys, q, snap.DB())
	if err != nil {
		t.Fatal(err)
	}
	if final.Count != ref.Len() {
		t.Errorf("final answer %d tuples, serial replay %d", final.Count, ref.Len())
	}
}

// TestServerLoadFactsAtomic: a bad line in the middle of a batch must
// reject the whole batch — no partial inserts, no epoch advance, no cache
// invalidation.
func TestServerLoadFactsAtomic(t *testing.T) {
	s, ts := newTestServer(t, tcProgram)
	before := getQuery(t, ts, "?- p(a, Y).")

	// Middle line has the wrong arity for e/2.
	resp, err := http.Post(ts.URL+"/facts", "text/plain",
		strings.NewReader("e(d, x).\ne(oops).\ne(x, y)."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d, want 400", resp.StatusCode)
	}
	// A syntactically broken line is rejected the same way.
	resp, err = http.Post(ts.URL+"/facts", "text/plain",
		strings.NewReader("e(q, r).\nbroken((\ne(r, s)."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken batch: status %d, want 400", resp.StatusCode)
	}

	after := getQuery(t, ts, "?- p(a, Y).")
	if after.Epoch != before.Epoch {
		t.Errorf("failed batches advanced the epoch %d → %d", before.Epoch, after.Epoch)
	}
	if after.Count != before.Count {
		t.Errorf("failed batches changed answers %d → %d (partial insert)", before.Count, after.Count)
	}
	if !after.Cached {
		t.Error("failed batch invalidated the cache")
	}
	if s.Snapshot().Rel("e").Len() != 3 {
		t.Errorf("e has %d tuples, want the 3 seed edges only", s.Snapshot().Rel("e").Len())
	}
	// A batch that conflicts only with the live database (not itself) is
	// also rejected up front.
	if _, err := s.LoadFacts("e(a, b, c)."); err == nil {
		t.Error("arity conflict with a live relation accepted")
	}
}

// TestServerFactsBodyLimit: POST /facts beyond MaxFactsBytes is refused
// with 413 and counted as a client error, not an engine error.
func TestServerFactsBodyLimit(t *testing.T) {
	s, err := New(tcProgram, Config{MaxFactsBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	big := strings.Repeat("e(aaaaaaaa, bbbbbbbb).\n", 20)
	resp, err := http.Post(ts.URL+"/facts", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if got := s.Registry().Counter("dl_server_client_errors_total").Value(); got != 1 {
		t.Errorf("client errors = %d, want 1", got)
	}
	if got := s.Registry().Counter("dl_server_errors_total").Value(); got != 0 {
		t.Errorf("engine errors = %d, want 0", got)
	}
	// A small batch still loads.
	resp, err = http.Post(ts.URL+"/facts", "text/plain", strings.NewReader("e(d, x)."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch after limit: status %d", resp.StatusCode)
	}
}

// TestServerMaintenanceAcrossWrites: repeated writes keep the cached entry
// warm (maintained hits with correct counts), the maintenance counters
// move, and DisableMaintenance restores the cold-start behavior.
func TestServerMaintenanceAcrossWrites(t *testing.T) {
	s, ts := newTestServer(t, tcProgram)
	first := getQuery(t, ts, "?- p(a, Y).")
	if first.Count != 3 {
		t.Fatalf("seed count = %d, want 3", first.Count)
	}
	chain := []string{"d", "x", "y", "z"}
	for i := 0; i+1 < len(chain); i++ {
		if _, err := s.LoadFacts(fmt.Sprintf("e(%s, %s).", chain[i], chain[i+1])); err != nil {
			t.Fatal(err)
		}
		res := getQuery(t, ts, "?- p(a, Y).")
		if !res.Cached || !res.Maintained {
			t.Fatalf("write %d: cached=%v maintained=%v, want true/true", i, res.Cached, res.Maintained)
		}
		if res.Count != 3+i+1 {
			t.Fatalf("write %d: count = %d, want %d", i, res.Count, 3+i+1)
		}
	}
	if got := s.Registry().Counter("dl_resultcache_maintained_total").Value(); got < 3 {
		t.Errorf("maintained counter = %d, want >= 3", got)
	}

	// With maintenance disabled, a write cold-starts the entry again.
	s2, ts2 := func() (*Server, *httptest.Server) {
		srv, err := New(tcProgram, Config{DisableMaintenance: true})
		if err != nil {
			t.Fatal(err)
		}
		h := httptest.NewServer(srv.Handler())
		t.Cleanup(h.Close)
		return srv, h
	}()
	getQuery(t, ts2, "?- p(a, Y).")
	if _, err := s2.LoadFacts("e(d, x)."); err != nil {
		t.Fatal(err)
	}
	cold := getQuery(t, ts2, "?- p(a, Y).")
	if cold.Cached || cold.Maintained {
		t.Errorf("disabled maintenance: cached=%v maintained=%v, want false/false", cold.Cached, cold.Maintained)
	}
	if cold.Count != 4 {
		t.Errorf("disabled maintenance: count = %d, want 4", cold.Count)
	}
}

// TestServerMaintenanceGeneric: the generic-program path is maintained too
// (shared fixpoint carried across the write).
func TestServerMaintenanceGeneric(t *testing.T) {
	src := `
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, Z), t(Z, Y).
e(a, b). e(b, c).
`
	s, ts := newTestServer(t, src)
	if s.sys != nil {
		t.Fatal("nonlinear program extracted a linear system")
	}
	if got := getQuery(t, ts, "?- t(a, Y)."); got.Count != 2 {
		t.Fatalf("seed count = %d, want 2", got.Count)
	}
	if _, err := s.LoadFacts("e(c, d)."); err != nil {
		t.Fatal(err)
	}
	res := getQuery(t, ts, "?- t(a, Y).")
	if !res.Cached || !res.Maintained || res.Count != 3 {
		t.Fatalf("generic maintained: cached=%v maintained=%v count=%d, want true/true/3",
			res.Cached, res.Maintained, res.Count)
	}
}

// TestServerQueryValidation: impossible queries are client errors (400),
// not engine errors.
func TestServerQueryValidation(t *testing.T) {
	s, ts := newTestServer(t, tcProgram)
	for _, q := range []string{
		"?- q(a, Y).",    // wrong predicate for the single served system
		"?- p(a, Y, Z).", // wrong arity
	} {
		resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(q, " ", "%20"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if got := s.Registry().Counter("dl_server_client_errors_total").Value(); got != 2 {
		t.Errorf("client errors = %d, want 2", got)
	}
	if got := s.Registry().Counter("dl_server_errors_total").Value(); got != 0 {
		t.Errorf("engine errors = %d, want 0", got)
	}
}

// TestServerShardsInResult: a forced shard count must flow through the
// serving path into the evaluation and come back out in the /query JSON,
// alongside the host parallelism the answer was computed with.
func TestServerShardsInResult(t *testing.T) {
	s, err := New(tcProgram, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll("?- p(X, Y).", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res QueryResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Errorf("result shards = %d, want the configured 4", res.Shards)
	}
	if res.GoMaxProcs < 1 {
		t.Errorf("result gomaxprocs = %d, want >= 1", res.GoMaxProcs)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shards", "gomaxprocs"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("/query JSON missing %q: %s", key, raw)
		}
	}
	// The sharded kernels must still serve the exact closure.
	if res.Count != 6 {
		t.Errorf("sharded closure count = %d, want 6", res.Count)
	}
}
