package dlgen

import (
	"repro/internal/ast"
)

// EnumerateRules generates every admissible linear recursive rule (§2
// restrictions) of the small fragment: recursive predicate p of the given
// arity, recursive-literal arguments drawn from head variables (injectively)
// or fresh variables, and up to maxAtoms non-recursive literals over the
// predicate pool a/1 and b/2 with variables from the rule's pool. Rules
// violating range restriction are completed or skipped depending on
// `complete`: when true, missing head variables are covered with extra b/2
// literals; when false such rules are dropped.
//
// The enumeration is exhaustive over the fragment (up to the naming of
// fresh variables), which makes it suitable for exhaustive theorem checks
// where random sampling could miss corner cases.
func EnumerateRules(arity, maxAtoms int, complete bool) []ast.Rule {
	headVars := make([]string, arity)
	for i := range headVars {
		headVars[i] = []string{"X1", "X2", "X3"}[i]
	}
	freshVars := make([]string, arity)
	for i := range freshVars {
		freshVars[i] = []string{"Y1", "Y2", "Y3"}[i]
	}

	// Recursive-literal argument assignments: position i gets either a head
	// variable (each used at most once across positions) or its fresh
	// variable Y_{i+1}.
	var recChoices [][]string
	var buildRec func(pos int, used map[string]bool, cur []string)
	buildRec = func(pos int, used map[string]bool, cur []string) {
		if pos == arity {
			recChoices = append(recChoices, append([]string(nil), cur...))
			return
		}
		for _, h := range headVars {
			if used[h] {
				continue
			}
			used[h] = true
			buildRec(pos+1, used, append(cur, h))
			delete(used, h)
		}
		buildRec(pos+1, used, append(cur, freshVars[pos]))
	}
	buildRec(0, map[string]bool{}, nil)

	// Variable pool for non-recursive literals: head vars, fresh rec vars
	// and one extra join variable.
	pool := append(append([]string{}, headVars...), freshVars...)
	pool = append(pool, "Z1")

	// Literal pool: a/1 and b/2 over the pool.
	var lits []ast.Atom
	for _, v := range pool {
		lits = append(lits, ast.NewAtom("a", ast.V(v)))
	}
	for _, u := range pool {
		for _, v := range pool {
			lits = append(lits, ast.NewAtom("b", ast.V(u), ast.V(v)))
		}
	}

	// Bodies: all multisets of size 0..maxAtoms (combinations with
	// repetition, order canonical).
	var bodies [][]ast.Atom
	var buildBody func(start, remaining int, cur []ast.Atom)
	buildBody = func(start, remaining int, cur []ast.Atom) {
		bodies = append(bodies, append([]ast.Atom(nil), cur...))
		if remaining == 0 {
			return
		}
		for i := start; i < len(lits); i++ {
			buildBody(i, remaining-1, append(cur, lits[i]))
		}
	}
	buildBody(0, maxAtoms, nil)

	var out []ast.Rule
	headArgs := make([]ast.Term, arity)
	for i, v := range headVars {
		headArgs[i] = ast.V(v)
	}
	for _, rec := range recChoices {
		recArgs := make([]ast.Term, arity)
		inRec := map[string]bool{}
		for i, v := range rec {
			recArgs[i] = ast.V(v)
			inRec[v] = true
		}
		for _, body := range bodies {
			full := make([]ast.Atom, 0, len(body)+1+arity)
			covered := map[string]bool{}
			for v := range inRec {
				covered[v] = true
			}
			for _, a := range body {
				full = append(full, a.Clone())
				for _, tm := range a.Args {
					covered[tm.Name] = true
				}
			}
			missing := false
			for _, h := range headVars {
				if covered[h] {
					continue
				}
				if !complete {
					missing = true
					break
				}
				full = append(full, ast.NewAtom("b", ast.V(h), ast.V("Z1")))
			}
			if missing {
				continue
			}
			full = append(full, ast.NewAtom("p", recArgs...))
			rule := ast.NewRule(ast.NewAtom("p", headArgs...), full...)
			if ast.ValidateRecursive(rule) == nil {
				out = append(out, rule)
			}
		}
	}
	return out
}
