package dlgen

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func TestRandomRuleAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		rule := RandomRule(rng, Config{})
		if err := ast.ValidateRecursive(rule); err != nil {
			t.Fatalf("trial %d: %v: %v", i, rule, err)
		}
	}
}

func TestRandomRuleArityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		rule := RandomRule(rng, Config{})
		arities := map[string]int{}
		for _, a := range rule.NonRecursiveAtoms() {
			if prev, ok := arities[a.Pred]; ok && prev != a.Arity() {
				t.Fatalf("trial %d: predicate %s used at arities %d and %d in %v",
					i, a.Pred, prev, a.Arity(), rule)
			}
			arities[a.Pred] = a.Arity()
		}
	}
}

func TestRandomRuleRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		rule := RandomRule(rng, Config{MaxArity: 2, MaxAtoms: 1, MaxExtraVars: -1})
		if rule.Head.Arity() > 2 {
			t.Fatalf("arity %d > 2", rule.Head.Arity())
		}
	}
}

func TestRandomRuleDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := map[string]bool{}
	for i := 0; i < 300; i++ {
		shapes[RandomRule(rng, Config{}).String()] = true
	}
	if len(shapes) < 150 {
		t.Errorf("only %d distinct rules out of 300", len(shapes))
	}
}

func TestRandomSystemAndDB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := RandomSystem(rng, Config{})
	db, err := RandomDB(sys, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range sys.Program().EDBPreds() {
		if db.Rel(pred) == nil {
			t.Errorf("EDB predicate %s missing from database", pred)
		}
	}
	// Determinism.
	db2, err := RandomDB(sys, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range sys.Program().EDBPreds() {
		if !db.Rel(pred).Equal(db2.Rel(pred)) {
			t.Errorf("%s: same seed, different relation", pred)
		}
	}
}

func TestRandomQueryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sys := RandomSystem(rng, Config{})
	sawBound, sawFree := false, false
	for i := 0; i < 50; i++ {
		q := RandomQuery(rng, sys, 5)
		if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != sys.Arity() {
			t.Fatalf("query %v does not match system", q)
		}
		for _, a := range q.Atom.Args {
			if a.IsVar() {
				sawFree = true
			} else {
				sawBound = true
			}
		}
	}
	if !sawBound || !sawFree {
		t.Error("queries not diverse")
	}
}
