package dlgen

import (
	"testing"

	"repro/internal/ast"
)

func TestEnumerateRulesValidAndDistinct(t *testing.T) {
	rules := EnumerateRules(2, 2, false)
	if len(rules) == 0 {
		t.Fatal("empty enumeration")
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if err := ast.ValidateRecursive(r); err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if seen[r.String()] {
			t.Fatalf("duplicate rule %v", r)
		}
		seen[r.String()] = true
	}
	t.Logf("enumerated %d rules (arity 2, ≤2 atoms, strict)", len(rules))
}

func TestEnumerateCompleteCoversMore(t *testing.T) {
	strict := len(EnumerateRules(2, 1, false))
	completed := len(EnumerateRules(2, 1, true))
	if completed <= strict {
		t.Errorf("completion should add rules: strict=%d completed=%d", strict, completed)
	}
}

func TestEnumerateContainsCanonicalShapes(t *testing.T) {
	rules := EnumerateRules(2, 1, false)
	want := map[string]bool{
		// Transitive closure (s1a shape).
		"p(X1, X2) :- b(X1, Y1), p(Y1, X2).": true,
		// Pure swap permutation (A4).
		"p(X1, X2) :- p(X2, X1).": true,
	}
	for _, r := range rules {
		delete(want, r.String())
	}
	for w := range want {
		t.Errorf("enumeration missing %s", w)
	}
}
