// Package dlgen generates random linear recursive systems satisfying the
// paper's §2 restrictions, plus matching random databases. It powers the
// property-based tests (theorem checks over random formulas) and the
// robustness benchmarks.
package dlgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Config bounds the shape of generated rules.
type Config struct {
	// MaxArity bounds the recursive predicate's arity (≥ 1). Default 4.
	MaxArity int
	// MaxExtraVars bounds the fresh variables used only by non-recursive
	// literals. Default 2.
	MaxExtraVars int
	// MaxAtoms bounds the number of non-recursive body literals. Default 4.
	MaxAtoms int
	// EDBPreds is the pool of non-recursive predicate names. Default a..f.
	EDBPreds []string
}

func (c Config) withDefaults() Config {
	if c.MaxArity <= 0 {
		c.MaxArity = 4
	}
	if c.MaxExtraVars < 0 {
		c.MaxExtraVars = 0
	} else if c.MaxExtraVars == 0 {
		c.MaxExtraVars = 2
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 4
	}
	if len(c.EDBPreds) == 0 {
		c.EDBPreds = []string{"a", "b", "c", "d", "f", "g"}
	}
	return c
}

// RandomRule generates a random rule satisfying every restriction of §2:
// linear recursion, no constants, no repeated variable under either
// occurrence of the recursive predicate, and range restriction. The result
// always passes ast.ValidateRecursive.
func RandomRule(rng *rand.Rand, cfg Config) ast.Rule {
	cfg = cfg.withDefaults()
	n := 1 + rng.Intn(cfg.MaxArity)
	headVars := make([]string, n)
	for i := range headVars {
		headVars[i] = fmt.Sprintf("X%d", i+1)
	}

	// The recursive literal's arguments: an injective assignment where each
	// position holds either a head variable (used at most once) or a fresh
	// variable.
	recVars := make([]string, n)
	headPerm := rng.Perm(n)
	used := 0
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 && used < n {
			recVars[i] = headVars[headPerm[used]]
			used++
		} else {
			recVars[i] = fmt.Sprintf("Y%d", i+1)
		}
	}

	// Variable pool for the non-recursive literals.
	pool := append([]string{}, headVars...)
	pool = append(pool, recVars...)
	extra := rng.Intn(cfg.MaxExtraVars + 1)
	for i := 0; i < extra; i++ {
		pool = append(pool, fmt.Sprintf("Z%d", i+1))
	}

	// Assign every EDB predicate a fixed arity so the same predicate is
	// never used inconsistently within (or across) rules.
	arities := make(map[string]int, len(cfg.EDBPreds))
	for i, p := range cfg.EDBPreds {
		arities[p] = 1 + i%2 // alternate unary / binary, like the paper's examples
	}
	var body []ast.Atom
	nAtoms := rng.Intn(cfg.MaxAtoms + 1)
	for i := 0; i < nAtoms; i++ {
		pred := cfg.EDBPreds[rng.Intn(len(cfg.EDBPreds))]
		args := make([]ast.Term, arities[pred])
		for j := range args {
			args[j] = ast.V(pool[rng.Intn(len(pool))])
		}
		body = append(body, ast.NewAtom(pred, args...))
	}

	// Range restriction: every head variable must appear in the body. Head
	// variables used in the recursive literal already do; cover the rest
	// with extra unary or binary literals.
	inBody := make(map[string]bool)
	for _, v := range recVars {
		inBody[v] = true
	}
	for _, a := range body {
		for _, t := range a.Args {
			inBody[t.Name] = true
		}
	}
	for _, h := range headVars {
		if inBody[h] {
			continue
		}
		pred := cfg.EDBPreds[rng.Intn(len(cfg.EDBPreds))]
		args := make([]ast.Term, arities[pred])
		args[0] = ast.V(h)
		for j := 1; j < len(args); j++ {
			args[j] = ast.V(pool[rng.Intn(len(pool))])
		}
		body = append(body, ast.NewAtom(pred, args...))
		inBody[h] = true
	}

	recArgs := make([]ast.Term, n)
	for i, v := range recVars {
		recArgs[i] = ast.V(v)
	}
	headArgs := make([]ast.Term, n)
	for i, v := range headVars {
		headArgs[i] = ast.V(v)
	}
	// Insert the recursive literal at a random body position.
	rec := ast.NewAtom("p", recArgs...)
	pos := 0
	if len(body) > 0 {
		pos = rng.Intn(len(body) + 1)
	}
	full := make([]ast.Atom, 0, len(body)+1)
	full = append(full, body[:pos]...)
	full = append(full, rec)
	full = append(full, body[pos:]...)
	return ast.NewRule(ast.NewAtom("p", headArgs...), full...)
}

// RandomSystem wraps RandomRule with the generic exit rule p(..) :- e(..).
func RandomSystem(rng *rand.Rand, cfg Config) *ast.RecursiveSystem {
	rule := RandomRule(rng, cfg)
	sys, err := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", rule.Head.Arity(), "e"))
	if err != nil {
		// RandomRule guarantees validity; a failure here is a generator bug.
		panic(fmt.Sprintf("dlgen: generated invalid rule %v: %v", rule, err))
	}
	return sys
}

// RandomDB builds a database covering every EDB predicate of the system
// with random relations over the given domain.
func RandomDB(sys *ast.RecursiveSystem, domain, perRelation int, seed int64) (*storage.Database, error) {
	db := storage.NewDatabase()
	prog := sys.Program()
	for _, pred := range prog.EDBPreds() {
		arity := 0
		for _, r := range prog.Rules {
			for _, a := range r.Body {
				if a.Pred == pred {
					arity = a.Arity()
				}
			}
		}
		if err := storage.GenRandomRelation(db, pred, arity, domain, perRelation, seed+int64(len(pred))+int64(pred[0])); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// RandomQuery builds a query over the system's predicate with each position
// independently bound (to a domain constant) or free.
func RandomQuery(rng *rand.Rand, sys *ast.RecursiveSystem, domain int) ast.Query {
	n := sys.Arity()
	args := make([]ast.Term, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			args[i] = ast.C(fmt.Sprintf("n%d", rng.Intn(domain)))
		} else {
			args[i] = ast.V(fmt.Sprintf("Q%d", i))
		}
	}
	return ast.Query{Atom: ast.NewAtom(sys.Pred(), args...)}
}
