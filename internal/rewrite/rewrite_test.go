package rewrite_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/eval"
	"repro/internal/paper"
	"repro/internal/parser"
	"repro/internal/rewrite"
)

func TestExpandIdentityAtOne(t *testing.T) {
	sys := paper.S2a.System()
	e1, err := rewrite.Expand(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.String() != sys.Recursive.String() {
		t.Errorf("rewrite.Expand(1) = %v, want original", e1)
	}
}

// TestExpandS2Matches reproduces the paper's statement (s2c): the 2nd
// expansion of (s2a) p(x,y) :- a(x,z) ∧ p(z,u) ∧ b(u,y) is
// p(x,y) :- a(x,z) ∧ a(z,z₁) ∧ p(z₁,u₁) ∧ b(u₁,u) ∧ b(u,y).
func TestExpandS2Matches(t *testing.T) {
	sys := paper.S2a.System()
	e2, err := rewrite.Expand(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Count literal multiset by predicate.
	counts := map[string]int{}
	for _, a := range e2.Body {
		counts[a.Pred]++
	}
	if counts["a"] != 2 || counts["b"] != 2 || counts["p"] != 1 {
		t.Fatalf("literals = %v", counts)
	}
	// The recursive literal carries the renamed variables z#2, u#2.
	rec, _ := e2.RecursiveAtom()
	if rec.String() != "p(Z#2, U#2)" {
		t.Errorf("recursive literal = %v, want p(Z#2, U#2)", rec)
	}
	// a-chain: a(X,Z) and a(Z,Z#2); b-chain: b(U#2,U) and b(U,Y).
	want := map[string]bool{"a(X, Z)": true, "a(Z, Z#2)": true, "b(U#2, U)": true, "b(U, Y)": true}
	for _, at := range e2.NonRecursiveAtoms() {
		if !want[at.String()] {
			t.Errorf("unexpected literal %v", at)
		}
		delete(want, at.String())
	}
	for k := range want {
		t.Errorf("missing literal %s", k)
	}
}

func TestExpandGrowth(t *testing.T) {
	sys := paper.S3.System()
	for k := 1; k <= 5; k++ {
		e, err := rewrite.Expand(sys, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(e.NonRecursiveAtoms()); got != 3*k {
			t.Errorf("expansion %d: %d non-recursive literals, want %d", k, got, 3*k)
		}
		if err := ast.ValidateRecursive(e); err != nil {
			t.Errorf("expansion %d invalid: %v", k, err)
		}
	}
}

// TestExpandRejectsBadInput: malformed expansion requests surface as errors,
// not panics (k < 1, non-linear rules).
func TestExpandRejectsBadInput(t *testing.T) {
	if _, err := rewrite.Expand(paper.S3.System(), 0); err == nil {
		t.Error("rewrite.Expand(0) did not return an error")
	}
	if _, err := rewrite.Expand(paper.S3.System(), -3); err == nil {
		t.Error("rewrite.Expand(-3) did not return an error")
	}
	nonLinear := &ast.RecursiveSystem{
		Recursive: parser.MustParseRule("p(X, Y) :- p(X, Z), p(Z, Y)."),
		Exits:     []ast.Rule{parser.MustParseRule("p(X, Y) :- e(X, Y).")},
	}
	if _, err := rewrite.Expand(nonLinear, 2); err == nil {
		t.Error("rewrite.Expand on non-linear rule did not return an error")
	}
	if _, err := rewrite.NonRecursiveExpansions(nonLinear, 2); err == nil {
		t.Error("rewrite.NonRecursiveExpansions on non-linear rule did not return an error")
	}
	if _, err := rewrite.NonRecursiveExpansions(paper.S8.System(), -1); err == nil {
		t.Error("rewrite.NonRecursiveExpansions(-1) did not return an error")
	}
}

func TestSubstituteExit(t *testing.T) {
	sys := paper.S1a.System()
	nr := rewrite.SubstituteExit(sys.Recursive, sys.Exits[0], "@t")
	if len(nr.RecursiveAtoms()) != 0 {
		t.Fatalf("recursive literal survived: %v", nr)
	}
	if nr.String() != "p(X, Y) :- a(X, Z), e(Z, Y)." {
		t.Errorf("substituted = %v", nr)
	}
}

func TestSubstituteExitWithExtraVars(t *testing.T) {
	rec := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	exit := parser.MustParseRule("p(X, Y) :- base(X, W), base(W, Y).")
	nr := rewrite.SubstituteExit(rec, exit, "@k")
	if nr.String() != "p(X, Y) :- a(X, Z), base(Z, W@k), base(W@k, Y)." {
		t.Errorf("substituted = %v", nr)
	}
}

// TestNonRecursiveExpansionsS8 reproduces the paper's (s8a') and (s8b'):
// the bounded statement (s8) with rank 2 is equivalent to its exit rule
// plus two expansions with p replaced by e.
func TestNonRecursiveExpansionsS8(t *testing.T) {
	sys := paper.S8.System()
	res := classify.MustClassify(sys.Recursive)
	if !res.Bounded || res.RankBound != 2 {
		t.Fatalf("s8 classification wrong: %+v", res)
	}
	rules, err := rewrite.NonRecursiveExpansions(sys, res.RankBound)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3 (exit + 2 expansions)", len(rules))
	}
	for _, r := range rules {
		if len(r.RecursiveAtoms()) != 0 {
			t.Errorf("rule still recursive: %v", r)
		}
	}
	// (s8b'): second expansion has literal counts a:2 b:2 c:2 e:1.
	counts := map[string]int{}
	for _, a := range rules[2].Body {
		counts[a.Pred]++
	}
	if counts["a"] != 2 || counts["b"] != 2 || counts["c"] != 2 || counts["e"] != 1 {
		t.Errorf("s8b' literal counts = %v", counts)
	}
}

// TestToStableS4 reproduces Example 4: unfolding (s4a) three times yields a
// stable formula with the original exit plus two substituted expansions
// ((s4a') and (s4c')).
func TestToStableS4(t *testing.T) {
	sys := paper.S4a.System()
	stable, err := rewrite.ToStable(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(stable.Exits) != 3 {
		t.Fatalf("exits = %d, want 3", len(stable.Exits))
	}
	res := classify.MustClassify(stable.Recursive)
	if !res.Stable {
		t.Fatalf("transformed system not stable:\n%s", res.Explain())
	}
	// The new recursive rule is the 3rd expansion: 9 non-recursive literals.
	if got := len(stable.Recursive.NonRecursiveAtoms()); got != 9 {
		t.Errorf("literals = %d, want 9", got)
	}
}

func TestToStableRejectsNonTransformable(t *testing.T) {
	for _, id := range []string{"s8", "s9", "s10", "s11", "s12"} {
		s, _ := paper.ByID(id)
		if _, err := rewrite.ToStable(s.System()); err == nil {
			t.Errorf("%s: non-transformable system transformed", id)
		}
	}
}

func TestToStableIdempotentOnStable(t *testing.T) {
	sys := paper.S3.System()
	stable, err := rewrite.ToStable(sys)
	if err != nil {
		t.Fatal(err)
	}
	if stable.Recursive.String() != sys.Recursive.String() {
		t.Errorf("stable system changed: %v", stable.Recursive)
	}
	if len(stable.Exits) != len(sys.Exits) {
		t.Errorf("exit count changed: %d", len(stable.Exits))
	}
}

// TestTheorem2EquivalenceOnData is the semantic half of Theorem 2: the
// transformed stable system computes exactly the same relation as the
// original on random databases.
func TestTheorem2EquivalenceOnData(t *testing.T) {
	for _, id := range []string{"s4a", "s5", "s6", "s7", "s1a", "s2a"} {
		s, _ := paper.ByID(id)
		sys := s.System()
		stable, err := rewrite.ToStable(sys)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		domain, size := 5, 10
		if sys.Arity() > 4 {
			domain, size = 3, 5
		}
		for seed := int64(1); seed <= 3; seed++ {
			db, err := dlgen.RandomDB(sys, domain, size, seed)
			if err != nil {
				t.Fatal(err)
			}
			q := ast.Query{Atom: allFreeQuery(sys)}
			orig, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			trans, _, err := eval.Answer(eval.StrategyNaive, stable, q, db)
			if err != nil {
				t.Fatalf("%s transformed: %v", id, err)
			}
			if !orig.Equal(trans) {
				t.Errorf("%s seed %d: transformed system differs (%d vs %d tuples)",
					id, seed, trans.Len(), orig.Len())
			}
		}
	}
}

// TestTheorem2OnRandomRules: every transformable random rule with a small
// stabilization period transforms into a stable, data-equivalent system.
func TestTheorem2OnRandomRules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 300 && checked < 40; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		res := classify.MustClassify(sys.Recursive)
		if !res.Transformable || res.StabilizationPeriod > 4 || res.StabilizationPeriod < 2 {
			continue
		}
		checked++
		stable, err := rewrite.ToStable(sys)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		if !classify.MustClassify(stable.Recursive).Stable {
			t.Fatalf("%v: transformation not stable", sys.Recursive)
		}
		db, err := dlgen.RandomDB(sys, 4, 8, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		q := ast.Query{Atom: allFreeQuery(sys)}
		orig, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
		if err != nil {
			t.Fatal(err)
		}
		trans, _, err := eval.Answer(eval.StrategyNaive, stable, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !orig.Equal(trans) {
			t.Fatalf("Theorem 2 violated by %v: %d vs %d tuples",
				sys.Recursive, orig.Len(), trans.Len())
		}
	}
	if checked < 10 {
		t.Fatalf("only %d transformable rules generated; generator too narrow", checked)
	}
}

// TestBoundedEquivalenceOnData: for bounded statements, the finite
// non-recursive set computes the full relation (Ioannidis's theorem and
// Theorems 10/11 used by the engine).
func TestBoundedEquivalenceOnData(t *testing.T) {
	for _, id := range []string{"s5", "s6", "s8", "s10"} {
		s, _ := paper.ByID(id)
		sys := s.System()
		res := classify.MustClassify(sys.Recursive)
		if !res.Bounded {
			t.Fatalf("%s not bounded", id)
		}
		rules, err := rewrite.NonRecursiveExpansions(sys, res.RankBound)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			db, err := dlgen.RandomDB(sys, 5, 12, seed)
			if err != nil {
				t.Fatal(err)
			}
			q := ast.Query{Atom: allFreeQuery(sys)}
			ref, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			prog := &ast.Program{Rules: rules}
			out, _, err := eval.Naive(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eval.AnswerQuery(out, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Errorf("%s seed %d: bounded set differs (%d vs %d tuples)", id, seed, got.Len(), ref.Len())
			}
		}
	}
}

func allFreeQuery(sys *ast.RecursiveSystem) ast.Atom {
	args := make([]ast.Term, sys.Arity())
	for i := range args {
		args[i] = ast.V(strings.Repeat("Q", 1) + string(rune('0'+i)))
	}
	return ast.NewAtom(sys.Pred(), args...)
}

// TestTheorem11ConservativeBoundOnData: for random rules whose components
// mix permutational cycles with bounded/no-cycle components ({A2,A4,B,D},
// Theorem 11), the conservative rank bound must suffice: cutting the
// recursion off at the bound reproduces the full fixpoint.
func TestTheorem11ConservativeBoundOnData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 4000 && checked < 25; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 4, MaxAtoms: 3})
		res := classify.MustClassify(sys.Recursive)
		if !res.Bounded || res.RankBoundTight || res.RankBound > 8 {
			continue // only the Theorem-11 mixed case, kept small
		}
		checked++
		for seed := int64(0); seed < 2; seed++ {
			db, err := dlgen.RandomDB(sys, 4, 8, seed+int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			q := ast.Query{Atom: allFreeQuery(sys)}
			ref, _, err := eval.Answer(eval.StrategyNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eval.BoundedEval(sys, res.RankBound, q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("Theorem 11 conservative bound %d insufficient for %v: %d vs %d tuples",
					res.RankBound, sys.Recursive, got.Len(), ref.Len())
			}
		}
	}
	if checked < 5 {
		t.Skipf("only %d mixed bounded rules generated", checked)
	}
}
