package rewrite_test

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/rewrite"
)

// ExampleExpand shows the paper's statement (s2c): the second expansion of
// (s2a) p(x,y) :- a(x,z) ∧ p(z,u) ∧ b(u,y).
func ExampleExpand() {
	rule := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, U), b(U, Y).")
	sys, _ := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", 2, "e"))
	e2, _ := rewrite.Expand(sys, 2)
	fmt.Println(e2)
	// Output:
	// p(X, Y) :- a(X, Z), b(U, Y), a(Z, Z#2), p(Z#2, U#2), b(U#2, U).
}

// ExampleToStable unfolds the paper's statement (s4a) — a one-directional
// cycle of weight 3 — into an equivalent stable system with three exits
// (Theorem 2).
func ExampleToStable() {
	rule := parser.MustParseRule("p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).")
	sys, _ := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", 3, "e"))
	stable, err := rewrite.ToStable(sys)
	if err != nil {
		panic(err)
	}
	fmt.Println("exit rules:", len(stable.Exits))
	fmt.Println("body literals of the stable rule:", len(stable.Recursive.NonRecursiveAtoms()))
	// Output:
	// exit rules: 3
	// body literals of the stable rule: 9
}

// ExampleNonRecursiveExpansions eliminates the bounded statement (s10).
func ExampleNonRecursiveExpansions() {
	rule := parser.MustParseRule("p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).")
	sys, _ := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", 2, "e"))
	rules, _ := rewrite.NonRecursiveExpansions(sys, 2)
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// p(x1, x2) :- e(x1, x2).
	// p(X, Y) :- b(Y), c(X, Y1), e(X1, Y1).
	// p(X, Y) :- b(Y), c(X, Y1), b(Y1), c(X1, Y1#2), e(X1#2, Y1#2).
}
