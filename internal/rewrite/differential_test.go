package rewrite_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// The differential suite: NonRecursiveExpansions and ToStable outputs are
// evaluated against the direct semi-naive fixpoint of the original system
// on generated EDBs. The exit variants below exercise SubstituteExit on
// exactly the head forms ValidateExit admits but the §2 recursive-rule
// restrictions forbid — repeated head variables (an equality constraint on
// the recursive arguments) and constant head arguments (a pinned recursive
// argument) — both of which the unification used to drop or panic on.

// exitVariants returns exit rules for an arity-2 system, from the plain
// e-exit to the adversarial head forms.
func exitVariants() []ast.Rule {
	return []ast.Rule{
		parser.MustParseRule("p(X, Y) :- e(X, Y)."),
		parser.MustParseRule("p(X, X) :- f(X)."),    // repeated head variable
		parser.MustParseRule("p(X, n0) :- f(X)."),   // constant head argument
		parser.MustParseRule("p(n1, n0) :- c(n1)."), // fully ground head
		parser.MustParseRule("p(X, Y) :- d(Y, X)."), // swapped positions
	}
}

// arity2Systems generates random arity-2 recursive rules and pairs each
// with every exit variant.
func arity2Systems(t *testing.T, rng *rand.Rand, want int) []*ast.RecursiveSystem {
	t.Helper()
	var out []*ast.RecursiveSystem
	for trial := 0; trial < 4000 && len(out) < want; trial++ {
		rule := dlgen.RandomRule(rng, dlgen.Config{MaxArity: 2, MaxAtoms: 3})
		if rule.Head.Arity() != 2 {
			continue
		}
		for _, exit := range exitVariants() {
			sys, err := ast.NewRecursiveSystem(rule.Clone(), exit.Clone())
			if err != nil {
				t.Fatalf("%v with exit %v: %v", rule, exit, err)
			}
			out = append(out, sys)
		}
	}
	if len(out) < want {
		t.Fatalf("only %d systems generated", len(out))
	}
	return out
}

// evalDB covers every EDB predicate of the system (exit bodies included)
// and guarantees the constants n0, n1 used by the ground exits exist.
func evalDB(t *testing.T, sys *ast.RecursiveSystem, seed int64) *storage.Database {
	t.Helper()
	db, err := dlgen.RandomDB(sys, 4, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDifferentialBoundedExpansions: for every bounded (rule, exit) pair,
// the finite expansion union — evaluated both as a plain program and
// through eval.BoundedEval's selection pushdown — matches the semi-naive
// fixpoint of the original system.
func TestDifferentialBoundedExpansions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for _, sys := range arity2Systems(t, rng, 300) {
		res := classify.MustClassify(sys.Recursive)
		if !res.Bounded || res.RankBound > 6 {
			continue
		}
		checked++
		rules, err := rewrite.NonRecursiveExpansions(sys, res.RankBound)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		for _, r := range rules {
			if len(r.RecursiveAtoms()) != 0 {
				t.Fatalf("%v: expansion still recursive: %v", sys.Recursive, r)
			}
		}
		db := evalDB(t, sys, int64(checked))
		queries := []ast.Query{
			{Atom: ast.NewAtom("p", ast.V("QA"), ast.V("QB"))},
			dlgen.RandomQuery(rng, sys, 4),
			{Atom: ast.NewAtom("p", ast.C("n0"), ast.V("QB"))},
		}
		for _, q := range queries {
			ref, _, err := eval.Answer(eval.StrategySemiNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			// The expansion union as a plain program through the fixpoint
			// engine (no pushdown): pure rewrite check.
			out, _, err := eval.SemiNaive(&ast.Program{Rules: rules}, db)
			if err != nil {
				t.Fatalf("%v: %v", sys.Recursive, err)
			}
			got, err := eval.AnswerQuery(out, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%v exit %v query %v: expansions differ (%d vs %d tuples)",
					sys.Recursive, sys.Exits[0], q, got.Len(), ref.Len())
			}
			// The same union through BoundedEval's compiled path.
			fast, _, err := eval.BoundedEval(sys, res.RankBound, q, db)
			if err != nil {
				t.Fatalf("%v: %v", sys.Recursive, err)
			}
			if !fast.Equal(ref) {
				t.Fatalf("%v exit %v query %v: BoundedEval differs (%d vs %d tuples)",
					sys.Recursive, sys.Exits[0], q, fast.Len(), ref.Len())
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d bounded systems checked", checked)
	}
	t.Logf("checked %d bounded (rule, exit) pairs", checked)
}

// TestDifferentialToStable: for every transformable (rule, exit) pair, the
// stabilized system computes the same relation as the original.
func TestDifferentialToStable(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	checked := 0
	for _, sys := range arity2Systems(t, rng, 400) {
		res := classify.MustClassify(sys.Recursive)
		if !res.Transformable || res.StabilizationPeriod < 2 || res.StabilizationPeriod > 4 {
			continue
		}
		checked++
		stable, err := rewrite.ToStableClassified(sys, res)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		if !classify.MustClassify(stable.Recursive).Stable {
			t.Fatalf("%v: transformation did not stabilize", sys.Recursive)
		}
		db := evalDB(t, sys, int64(checked))
		for _, q := range []ast.Query{
			{Atom: ast.NewAtom("p", ast.V("QA"), ast.V("QB"))},
			dlgen.RandomQuery(rng, sys, 4),
		} {
			ref, _, err := eval.Answer(eval.StrategySemiNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eval.Answer(eval.StrategySemiNaive, stable, q, db)
			if err != nil {
				t.Fatalf("%v stabilized: %v", sys.Recursive, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%v exit %v query %v: stabilized system differs (%d vs %d tuples)",
					sys.Recursive, sys.Exits[0], q, got.Len(), ref.Len())
			}
		}
	}
	if checked < 10 {
		t.Skipf("only %d transformable systems checked", checked)
	}
	t.Logf("checked %d transformable (rule, exit) pairs", checked)
}

// TestSubstituteExitAdversarialHeads pins the unification semantics on the
// two head forms that used to be mishandled: a repeated head variable must
// equate the recursive arguments, and a constant head argument must pin
// the recursive argument throughout the surrounding rule.
func TestSubstituteExitAdversarialHeads(t *testing.T) {
	rule := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	// Repeated head variable: p(W, W) :- f(W) forces Z = Y.
	nr := rewrite.SubstituteExit(rule, parser.MustParseRule("p(W, W) :- f(W)."), "@t")
	if got, want := nr.String(), "p(X, Z) :- a(X, Z), f(Z)."; got != want {
		t.Errorf("repeated head variable: %s, want %s", got, want)
	}
	// Constant head argument: p(W, n0) :- f(W) forces Y = n0.
	nr = rewrite.SubstituteExit(rule, parser.MustParseRule("p(W, n0) :- f(W)."), "@t")
	if got, want := nr.String(), "p(X, n0) :- a(X, Z), f(Z)."; got != want {
		t.Errorf("constant head argument: %s, want %s", got, want)
	}
	// Fully ground head: both recursive arguments pinned.
	nr = rewrite.SubstituteExit(rule, parser.MustParseRule("p(n1, n0) :- c(n1)."), "@t")
	if got, want := nr.String(), "p(X, n0) :- a(X, n1), c(n1)."; got != want {
		t.Errorf("ground head: %s, want %s", got, want)
	}
}
