// Package rewrite implements the formula transformations of the paper:
// k-th expansions (unfolding the linear recursive rule against itself),
// substitution of exit rules into expansions, the Theorem-2/Theorem-4
// transformation of one-directional-cycle formulas into equivalent stable
// formulas with multiple exits, and the expansion of bounded formulas into
// an equivalent finite set of non-recursive formulas.
package rewrite

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/igraph"
)

// Expand returns the k-th expansion of the system's recursive rule (k ≥ 1):
// the rule whose body carries k copies of the non-recursive literals and a
// single recursive literal. Expand(sys, 1) is the original rule. Fresh
// variables introduced at expansion i are named with igraph.RenameVar, so
// expansions line up with resolution graphs. It returns an error when k < 1
// or when the system's rule is not linear recursive, so malformed input
// surfaces as a diagnostic instead of a panic.
func Expand(sys *ast.RecursiveSystem, k int) (ast.Rule, error) {
	if k < 1 {
		return ast.Rule{}, fmt.Errorf("rewrite: expansion index %d < 1", k)
	}
	rule := sys.Recursive
	if !rule.IsLinearRecursive() {
		return ast.Rule{}, fmt.Errorf("rewrite: rule %v is not linear recursive", rule)
	}
	out := rule.Clone()
	for i := 2; i <= k; i++ {
		out = expandOnce(out, rule, i)
	}
	return out, nil
}

// expandOnce unfolds cur's recursive literal against base, renaming base's
// fresh variables for expansion index k.
func expandOnce(cur, base ast.Rule, k int) ast.Rule {
	recAtom, recIdx := cur.RecursiveAtom()
	// Unify base's head with cur's recursive atom: both are vectors of
	// distinct variables, so the unifier maps base head vars to cur's
	// recursive-atom args; every other base variable is renamed fresh.
	sub := make(map[string]ast.Term, len(base.Head.Args))
	for i, t := range base.Head.Args {
		sub[t.Name] = recAtom.Args[i]
	}
	for _, v := range base.Vars() {
		if _, ok := sub[v]; !ok {
			sub[v] = ast.V(igraph.RenameVar(v, k))
		}
	}
	renamed := base.Rename(sub)
	body := make([]ast.Atom, 0, len(cur.Body)+len(renamed.Body)-1)
	body = append(body, cur.Body[:recIdx]...)
	body = append(body, cur.Body[recIdx+1:]...)
	body = append(body, renamed.Body...)
	return ast.NewRule(cur.Head, body...)
}

// SubstituteExit replaces the recursive literal of rule with the body of the
// exit rule, unifying the exit head with the recursive literal's arguments.
// The recursive literal's arguments are distinct variables (§2), so the
// unification never fails: each exit head variable maps to the recursive
// argument at its first occurrence, while a repeated exit head variable or a
// constant binds the recursive argument itself — that equality is propagated
// through the surrounding rule (head included). Exit-rule variables not
// bound by the unification are renamed with the given suffix to stay fresh.
func SubstituteExit(rule ast.Rule, exit ast.Rule, freshSuffix string) ast.Rule {
	recAtom, recIdx := rule.RecursiveAtom()
	exitSub := make(map[string]ast.Term, len(exit.Head.Args))
	outerSub := make(map[string]ast.Term)
	for i, t := range exit.Head.Args {
		recArg := recAtom.Args[i]
		if !t.IsVar() {
			// Constant head argument: the recursive argument is forced to
			// the constant everywhere in the surrounding rule.
			outerSub[recArg.Name] = t
			continue
		}
		if prev, ok := exitSub[t.Name]; ok {
			// Repeated head variable: the recursive arguments at both
			// occurrences must be equal; rename this one to the first.
			outerSub[recArg.Name] = prev
			continue
		}
		exitSub[t.Name] = recArg
	}
	for _, v := range exit.Vars() {
		if _, ok := exitSub[v]; !ok {
			exitSub[v] = ast.V(v + freshSuffix)
		}
	}
	renamed := exit.Rename(exitSub)
	body := make([]ast.Atom, 0, len(rule.Body)-1+len(renamed.Body))
	body = append(body, rule.Body[:recIdx]...)
	body = append(body, renamed.Body...)
	body = append(body, rule.Body[recIdx+1:]...)
	out := ast.NewRule(rule.Head, body...)
	if len(outerSub) > 0 {
		out = out.Rename(outerSub)
	}
	return out
}

// NonRecursiveExpansions returns, for each i in 0..rank, the non-recursive
// rules obtained from the i-th expansion by replacing the recursive literal
// with each exit rule (i = 0 yields the exit rules themselves). For a
// bounded formula with the given rank this finite set is equivalent to the
// original recursion — the paper's "pseudo recursion" elimination (§5,
// statements s8a', s8b').
func NonRecursiveExpansions(sys *ast.RecursiveSystem, rank int) ([]ast.Rule, error) {
	if rank < 0 {
		return nil, fmt.Errorf("rewrite: negative rank %d", rank)
	}
	var out []ast.Rule
	out = append(out, cloneRules(sys.Exits)...)
	for i := 1; i <= rank; i++ {
		exp, err := Expand(sys, i)
		if err != nil {
			return nil, err
		}
		for j, exit := range sys.Exits {
			out = append(out, SubstituteExit(exp, exit, fmt.Sprintf("@x%d_%d", i, j)))
		}
	}
	return out, nil
}

func cloneRules(rs []ast.Rule) []ast.Rule {
	out := make([]ast.Rule, len(rs))
	for i, r := range rs {
		out[i] = r.Clone()
	}
	return out
}

// ToStable applies Theorem 2 / Theorem 4: for a formula whose I-graph is a
// disjoint combination of independent one-directional cycles with weights
// c1..ck, unfold L = lcm(c1..ck) times, keep the L-th expansion as the new
// recursive rule, and add the first L−1 expansions with the recursive
// literal replaced by the exit relation(s) as extra exit rules. The result
// is an equivalent strongly stable system.
//
// It returns an error when the formula is not transformable (Corollary 3).
func ToStable(sys *ast.RecursiveSystem) (*ast.RecursiveSystem, error) {
	res, err := classify.Classify(sys.Recursive)
	if err != nil {
		return nil, err
	}
	return toStable(sys, res)
}

// ToStableClassified is ToStable for an already-classified system.
func ToStableClassified(sys *ast.RecursiveSystem, res *classify.Result) (*ast.RecursiveSystem, error) {
	return toStable(sys, res)
}

func toStable(sys *ast.RecursiveSystem, res *classify.Result) (*ast.RecursiveSystem, error) {
	if !res.Transformable {
		return nil, fmt.Errorf("rewrite: class %s is not transformable to a stable formula (Corollary 3)", res.Class.Code())
	}
	L := res.StabilizationPeriod
	if L == 1 {
		// Already stable.
		return ast.NewRecursiveSystem(sys.Recursive.Clone(), cloneRules(sys.Exits)...)
	}
	newRec, err := Expand(sys, L)
	if err != nil {
		return nil, err
	}
	var exits []ast.Rule
	exits = append(exits, cloneRules(sys.Exits)...)
	for i := 1; i < L; i++ {
		exp, err := Expand(sys, i)
		if err != nil {
			return nil, err
		}
		for j, exit := range sys.Exits {
			exits = append(exits, SubstituteExit(exp, exit, fmt.Sprintf("@x%d_%d", i, j)))
		}
	}
	return ast.NewRecursiveSystem(newRec, exits...)
}
