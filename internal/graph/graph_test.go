package graph

import (
	"strings"
	"testing"
)

func TestAddAndQueryEdges(t *testing.T) {
	g := New()
	id1 := g.AddDirected("x", "y", "p")
	id2 := g.AddUndirected("x", "z", "a")
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("vertices=%d edges=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasVertex("x") || g.HasVertex("w") {
		t.Error("HasVertex wrong")
	}
	e1, e2 := g.Edge(id1), g.Edge(id2)
	if e1.Kind != Directed || e1.Weight() != 1 || e1.String() != "x -> y [p]" {
		t.Errorf("directed edge = %v", e1)
	}
	if e2.Kind != Undirected || e2.Weight() != 0 || e2.String() != "x -- z [a]" {
		t.Errorf("undirected edge = %v", e2)
	}
	if len(g.DirectedEdges()) != 1 || len(g.UndirectedEdges()) != 1 {
		t.Error("edge kind filters wrong")
	}
}

func TestStringDeterministic(t *testing.T) {
	g := New()
	g.AddDirected("b", "a", "p")
	g.AddUndirected("c", "a", "q")
	s1 := g.String()
	s2 := g.String()
	if s1 != s2 {
		t.Error("String not deterministic")
	}
	if !strings.Contains(s1, "vertices: a b c") {
		t.Errorf("vertices line missing or unsorted:\n%s", s1)
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddUndirected("y", "z", "a")
	g.AddDirected("u", "v", "p")
	g.AddVertex("lonely")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[c.NumVertices()]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes = %v", sizes)
	}
	// Directed edges connect their endpoints for component purposes.
	for _, c := range comps {
		if c.HasVertex("x") && !c.HasVertex("z") {
			t.Error("x and z must share a component via y")
		}
	}
}

func TestCompressParallelUndirected(t *testing.T) {
	g := New()
	g.AddUndirected("x", "u", "a")
	g.AddUndirected("x", "u", "b")
	g.AddUndirected("u", "x", "c") // opposite order still parallel
	g.AddDirected("u", "x", "p")   // directed edge is kept
	c := g.CompressParallelUndirected()
	if got := len(c.UndirectedEdges()); got != 1 {
		t.Fatalf("undirected after compression = %d, want 1", got)
	}
	if got := c.UndirectedEdges()[0].Label; got != "abc" {
		t.Errorf("merged label = %q, want abc", got)
	}
	if len(c.DirectedEdges()) != 1 {
		t.Error("directed edge lost")
	}
	// The original graph is untouched.
	if g.NumEdges() != 4 {
		t.Error("compression mutated the source graph")
	}
}

func TestSelfLoopCycle(t *testing.T) {
	g := New()
	g.AddDirected("y", "y", "p")
	cycles := g.SimpleCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.Weight() != 1 || !c.IsNonTrivial() || !c.IsPermutational() || !c.IsUnit() {
		t.Errorf("self-loop cycle properties wrong: %v (w=%d)", c, c.Weight())
	}
}

func TestUnitRotationalCycle(t *testing.T) {
	// x -> z with A(x, z) back: the transitive-closure shape.
	g := New()
	g.AddDirected("x", "z", "p")
	g.AddUndirected("x", "z", "a")
	cycles := g.NonTrivialCycles()
	if len(cycles) != 1 {
		t.Fatalf("non-trivial cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.AbsWeight() != 1 || !c.IsOneDirectional() || !c.IsRotational() || !c.IsUnit() {
		t.Errorf("cycle properties wrong: %v", c)
	}
	if c.DirectedCount() != 1 || c.UndirectedCount() != 1 {
		t.Errorf("edge counts: %d directed, %d undirected", c.DirectedCount(), c.UndirectedCount())
	}
}

func TestPermutationalSwapCycle(t *testing.T) {
	// p(X, Y) :- p(Y, X): x -> y and y -> x, a weight-2 permutation.
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddDirected("y", "x", "p")
	cycles := g.NonTrivialCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1 (each cycle reported once)", len(cycles))
	}
	c := cycles[0]
	if c.AbsWeight() != 2 || !c.IsOneDirectional() || !c.IsPermutational() {
		t.Errorf("swap cycle properties wrong: %v (w=%d)", c, c.Weight())
	}
}

func TestMultiDirectionalCycle(t *testing.T) {
	// Statement (s8) shape: a weight-0 multi-directional cycle.
	g := New()
	g.AddDirected("x", "z", "p")
	g.AddDirected("y", "y1", "p")
	g.AddDirected("z", "z1", "p")
	g.AddDirected("u", "u1", "p")
	g.AddUndirected("x", "y", "a")
	g.AddUndirected("y1", "u", "b")
	g.AddUndirected("z1", "u1", "c")
	cycles := g.NonTrivialCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.IsOneDirectional() {
		t.Error("multi-directional cycle reported one-directional")
	}
	if c.Weight() != 0 {
		t.Errorf("weight = %d, want 0", c.Weight())
	}
	if c.DirectedCount() != 4 {
		t.Errorf("directed edges on cycle = %d, want 4", c.DirectedCount())
	}
}

func TestWeightThreeCycle(t *testing.T) {
	// Statement (s4a): one-directional cycle of weight 3.
	g := New()
	g.AddDirected("x1", "y1", "p")
	g.AddDirected("x2", "y2", "p")
	g.AddDirected("x3", "y3", "p")
	g.AddUndirected("x1", "y3", "a")
	g.AddUndirected("x2", "y1", "b")
	g.AddUndirected("y2", "x3", "c")
	cycles := g.NonTrivialCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.AbsWeight() != 3 || !c.IsOneDirectional() || !c.IsRotational() {
		t.Errorf("cycle = %v, |w| = %d", c, c.AbsWeight())
	}
}

func TestTrivialCycleIgnoredByNonTrivial(t *testing.T) {
	g := New()
	g.AddUndirected("a", "b", "r")
	g.AddUndirected("b", "c", "s")
	g.AddUndirected("c", "a", "t")
	if got := len(g.SimpleCycles()); got != 1 {
		t.Fatalf("simple cycles = %d, want 1", got)
	}
	if got := len(g.NonTrivialCycles()); got != 0 {
		t.Errorf("non-trivial cycles = %d, want 0", got)
	}
}

func TestTwoCyclesSharingVertex(t *testing.T) {
	// Figure-eight: two unit cycles sharing x. Both must be found.
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddUndirected("y", "x", "a")
	g.AddDirected("x", "z", "p")
	g.AddUndirected("z", "x", "b")
	cycles := g.NonTrivialCycles()
	if len(cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(cycles))
	}
}

func TestMaxPathWeight(t *testing.T) {
	// Chain of two directed edges: max path weight 2.
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddDirected("y", "z", "p")
	if got := g.MaxPathWeight(); got != 2 {
		t.Errorf("max path weight = %d, want 2", got)
	}
	// Traversing backwards subtracts: adding a reverse edge changes nothing.
	g2 := New()
	g2.AddDirected("x", "y", "p")
	g2.AddDirected("z", "y", "p") // converging arrows: best single edge = 1
	if got := g2.MaxPathWeight(); got != 1 {
		t.Errorf("max path weight = %d, want 1", got)
	}
	// Undirected bridges contribute 0.
	g3 := New()
	g3.AddDirected("a", "b", "p")
	g3.AddUndirected("b", "c", "r")
	g3.AddDirected("c", "d", "p")
	if got := g3.MaxPathWeight(); got != 2 {
		t.Errorf("max path weight = %d, want 2", got)
	}
	if got := New().MaxPathWeight(); got != 0 {
		t.Errorf("empty graph max path weight = %d", got)
	}
}

func TestHasNonZeroWeightCycle(t *testing.T) {
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddUndirected("x", "y", "a")
	if !g.HasNonZeroWeightCycle() {
		t.Error("unit cycle not detected as non-zero")
	}
	// s8-style zero-weight cycle only.
	g2 := New()
	g2.AddDirected("x", "y", "p")
	g2.AddDirected("u", "v", "p")
	g2.AddUndirected("x", "u", "a")
	g2.AddUndirected("y", "v", "b")
	if g2.HasNonZeroWeightCycle() {
		t.Error("zero-weight cycle reported non-zero")
	}
	if New().HasNonZeroWeightCycle() {
		t.Error("empty graph has a cycle?")
	}
}

func TestCycleStringRendering(t *testing.T) {
	g := New()
	g.AddDirected("x", "z", "p")
	g.AddUndirected("x", "z", "a")
	c := g.NonTrivialCycles()[0]
	s := c.String()
	if !strings.Contains(s, "(p)") || !strings.Contains(s, "(a)") {
		t.Errorf("cycle rendering missing labels: %q", s)
	}
}

func TestCycleEdgeIDsSorted(t *testing.T) {
	g := New()
	g.AddUndirected("x", "z", "a")
	g.AddDirected("x", "z", "p")
	c := g.NonTrivialCycles()[0]
	ids := c.EdgeIDs()
	if len(ids) != 2 || ids[0] > ids[1] {
		t.Errorf("EdgeIDs = %v", ids)
	}
}

func TestComponentsPreserveEdges(t *testing.T) {
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddUndirected("x", "y", "a")
	g.AddDirected("u", "u", "p")
	comps := g.Components()
	total := 0
	for _, c := range comps {
		total += c.NumEdges()
		// Each component must be analyzable on its own.
		_ = c.SimpleCycles()
		_ = c.MaxPathWeight()
	}
	if total != g.NumEdges() {
		t.Errorf("edges across components = %d, want %d", total, g.NumEdges())
	}
}
