// Package graph implements the labeled, weighted hybrid graphs (directed and
// undirected edges coexisting) that underlie the paper's I-graph model:
// construction, connected components, simple-cycle enumeration with
// traversal-direction weights, and path-weight analysis.
//
// Weights follow §2 of the paper: a directed edge has weight +1 traversed
// with the arrow and −1 against it (the "implicit reverse edge"); an
// undirected edge has weight 0 either way.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeKind distinguishes directed from undirected edges.
type EdgeKind uint8

const (
	// Directed is an arc with weight +1 forward and −1 backward.
	Directed EdgeKind = iota
	// Undirected is a weight-0 edge.
	Undirected
)

// Edge is one edge of a hybrid graph. For undirected edges the From/To
// order carries no meaning. Label records the predicate that induced the
// edge (the paper's L component).
type Edge struct {
	ID    int
	Kind  EdgeKind
	From  string
	To    string
	Label string
}

// IsSelfLoop reports whether both endpoints coincide.
func (e Edge) IsSelfLoop() bool { return e.From == e.To }

// Weight returns the forward weight: +1 for directed edges, 0 for undirected.
func (e Edge) Weight() int {
	if e.Kind == Directed {
		return 1
	}
	return 0
}

// String renders the edge, e.g. "x -> y [P]" or "u -- v [A]".
func (e Edge) String() string {
	arrow := " -- "
	if e.Kind == Directed {
		arrow = " -> "
	}
	if e.Label == "" {
		return e.From + arrow + e.To
	}
	return e.From + arrow + e.To + " [" + e.Label + "]"
}

// Graph is a hybrid graph over string-named vertices. The zero value is not
// usable; construct with New.
type Graph struct {
	vertices []string
	vindex   map[string]int
	edges    []Edge
	adj      map[string][]halfEdge
}

// halfEdge is an edge as seen from one endpoint: neighbor plus the weight
// contributed by traversing the edge in that direction.
type halfEdge struct {
	edge   int // index into edges
	to     string
	weight int // +1 forward directed, -1 reverse directed, 0 undirected
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{vindex: make(map[string]int), adj: make(map[string][]halfEdge)}
}

// AddVertex ensures v exists; adding twice is a no-op.
func (g *Graph) AddVertex(v string) {
	if _, ok := g.vindex[v]; ok {
		return
	}
	g.vindex[v] = len(g.vertices)
	g.vertices = append(g.vertices, v)
}

// HasVertex reports whether v is in the graph.
func (g *Graph) HasVertex(v string) bool { _, ok := g.vindex[v]; return ok }

// AddDirected adds a directed edge from -> to with the given label and
// returns its ID. Endpoints are added as needed.
func (g *Graph) AddDirected(from, to, label string) int {
	return g.addEdge(Edge{Kind: Directed, From: from, To: to, Label: label})
}

// AddUndirected adds an undirected edge and returns its ID. Endpoints are
// added as needed.
func (g *Graph) AddUndirected(a, b, label string) int {
	return g.addEdge(Edge{Kind: Undirected, From: a, To: b, Label: label})
}

func (g *Graph) addEdge(e Edge) int {
	g.AddVertex(e.From)
	g.AddVertex(e.To)
	e.ID = len(g.edges)
	g.edges = append(g.edges, e)
	if e.Kind == Directed {
		if e.IsSelfLoop() {
			g.adj[e.From] = append(g.adj[e.From], halfEdge{edge: e.ID, to: e.To, weight: 1})
		} else {
			g.adj[e.From] = append(g.adj[e.From], halfEdge{edge: e.ID, to: e.To, weight: 1})
			g.adj[e.To] = append(g.adj[e.To], halfEdge{edge: e.ID, to: e.From, weight: -1})
		}
	} else {
		g.adj[e.From] = append(g.adj[e.From], halfEdge{edge: e.ID, to: e.To, weight: 0})
		if !e.IsSelfLoop() {
			g.adj[e.To] = append(g.adj[e.To], halfEdge{edge: e.ID, to: e.From, weight: 0})
		}
	}
	return e.ID
}

// Vertices returns the vertices in insertion order (copy).
func (g *Graph) Vertices() []string {
	out := make([]string, len(g.vertices))
	copy(out, g.vertices)
	return out
}

// Edges returns all edges (copy).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// DirectedEdges returns the directed edges only.
func (g *Graph) DirectedEdges() []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.Kind == Directed {
			out = append(out, e)
		}
	}
	return out
}

// UndirectedEdges returns the undirected edges only.
func (g *Graph) UndirectedEdges() []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.Kind == Undirected {
			out = append(out, e)
		}
	}
	return out
}

// String renders vertices and edges deterministically, one edge per line.
func (g *Graph) String() string {
	var b strings.Builder
	vs := g.Vertices()
	sort.Strings(vs)
	fmt.Fprintf(&b, "vertices: %s\n", strings.Join(vs, " "))
	lines := make([]string, 0, len(g.edges))
	for _, e := range g.edges {
		lines = append(lines, e.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Components partitions the graph into connected components, treating every
// edge (directed or not) as connecting its endpoints. Each component is
// returned as a sub-Graph preserving edge kinds, labels and IDs of the
// parent graph; component order follows the smallest contained vertex in the
// parent's insertion order.
func (g *Graph) Components() []*Graph {
	comp := make([]int, len(g.vertices))
	for i := range comp {
		comp[i] = -1
	}
	var order []int
	n := 0
	for i := range g.vertices {
		if comp[i] != -1 {
			continue
		}
		// BFS.
		queue := []int{i}
		comp[i] = n
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.adj[g.vertices[v]] {
				j := g.vindex[h.to]
				if comp[j] == -1 {
					comp[j] = n
					queue = append(queue, j)
				}
			}
		}
		order = append(order, n)
		n++
	}
	subs := make([]*Graph, n)
	for _, c := range order {
		subs[c] = New()
	}
	for i, v := range g.vertices {
		subs[comp[i]].AddVertex(v)
	}
	for _, e := range g.edges {
		sub := subs[comp[g.vindex[e.From]]]
		// Preserve the parent's edge ID.
		ecopy := e
		sub.AddVertex(e.From)
		sub.AddVertex(e.To)
		ecopy.ID = len(sub.edges)
		sub.edges = append(sub.edges, ecopy)
		if e.Kind == Directed {
			sub.adj[e.From] = append(sub.adj[e.From], halfEdge{edge: ecopy.ID, to: e.To, weight: 1})
			if !e.IsSelfLoop() {
				sub.adj[e.To] = append(sub.adj[e.To], halfEdge{edge: ecopy.ID, to: e.From, weight: -1})
			}
		} else {
			sub.adj[e.From] = append(sub.adj[e.From], halfEdge{edge: ecopy.ID, to: e.To, weight: 0})
			if !e.IsSelfLoop() {
				sub.adj[e.To] = append(sub.adj[e.To], halfEdge{edge: ecopy.ID, to: e.From, weight: 0})
			}
		}
	}
	return subs
}

// Reduce returns the paper's fully compressed form of the graph (§3
// Remark): undirected self-loops are dropped, parallel undirected edges
// between the same pair of vertices merge into one, and every trivial
// vertex — one with no incident directed edge — is eliminated by directly
// connecting its undirected neighbours (the paper's
// P(x,y) :- A(x,u) ∧ B(x,z) ∧ C(z,u) ∧ P(u,y)  ⇒  ABC(x,u) example).
// The reduction runs to fixpoint. Semantically the compressed edges record
// exactly the determined-variable connectivity between the variables of the
// recursive predicate, so cycle classification is performed on this form.
func (g *Graph) Reduce() *Graph {
	cur := g.CompressParallelUndirected()
	for {
		// Find a trivial vertex: no incident directed edge.
		hasDirected := make(map[string]bool)
		for _, e := range cur.edges {
			if e.Kind == Directed {
				hasDirected[e.From] = true
				hasDirected[e.To] = true
			}
		}
		victim := ""
		for _, v := range cur.vertices {
			if !hasDirected[v] {
				victim = v
				break
			}
		}
		if victim == "" {
			return cur
		}
		// Rebuild without the victim, cliquing its undirected neighbours.
		next := New()
		for _, v := range cur.vertices {
			if v != victim {
				next.AddVertex(v)
			}
		}
		var neighbours []string
		var labels []string
		seenN := make(map[string]bool)
		for _, e := range cur.edges {
			switch {
			case e.From != victim && e.To != victim:
				if e.Kind == Directed {
					next.AddDirected(e.From, e.To, e.Label)
				} else {
					next.AddUndirected(e.From, e.To, e.Label)
				}
			case e.Kind == Undirected:
				other := e.From
				if other == victim {
					other = e.To
				}
				if other != victim && !seenN[other] {
					seenN[other] = true
					neighbours = append(neighbours, other)
				}
				labels = append(labels, e.Label)
			}
		}
		label := strings.Join(labels, "")
		for i := 0; i < len(neighbours); i++ {
			for j := i + 1; j < len(neighbours); j++ {
				next.AddUndirected(neighbours[i], neighbours[j], label)
			}
		}
		cur = next.CompressParallelUndirected()
	}
}

// CompressParallelUndirected returns a copy of the graph in which multiple
// undirected edges between the same pair of vertices are merged into a
// single undirected edge whose label concatenates the originals, and
// undirected self-loops (trivial cycles on one variable) are dropped.
// Directed edges are kept as is. Reduce applies this together with
// trivial-vertex elimination; most callers want Reduce.
func (g *Graph) CompressParallelUndirected() *Graph {
	out := New()
	for _, v := range g.vertices {
		out.AddVertex(v)
	}
	type pair struct{ a, b string }
	merged := make(map[pair][]string) // labels in order
	var orderKeys []pair
	for _, e := range g.edges {
		if e.Kind == Directed || e.IsSelfLoop() {
			continue
		}
		a, b := e.From, e.To
		if b < a {
			a, b = b, a
		}
		k := pair{a, b}
		if _, ok := merged[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		merged[k] = append(merged[k], e.Label)
	}
	for _, e := range g.edges {
		if e.Kind == Directed {
			out.AddDirected(e.From, e.To, e.Label)
		}
		// Undirected self-loops are trivial cycles: dropped.
	}
	for _, k := range orderKeys {
		out.AddUndirected(k.a, k.b, strings.Join(merged[k], ""))
	}
	return out
}
