package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReducePaperRemark(t *testing.T) {
	// P(x,y) :- A(x,u) ∧ B(x,z) ∧ C(z,u) ∧ P(u,y): z is trivial; the result
	// must be a single undirected x–u edge plus the two arrows.
	g := New()
	g.AddDirected("x", "u", "p")
	g.AddDirected("y", "y", "p")
	g.AddUndirected("x", "u", "a")
	g.AddUndirected("x", "z", "b")
	g.AddUndirected("z", "u", "c")
	r := g.Reduce()
	if r.HasVertex("z") {
		t.Error("trivial vertex z not eliminated")
	}
	if got := len(r.UndirectedEdges()); got != 1 {
		t.Fatalf("undirected edges = %d, want 1 (merged abc)", got)
	}
	if got := len(r.NonTrivialCycles()); got != 2 {
		t.Errorf("non-trivial cycles = %d, want 2 (unit cycle + self-loop)", got)
	}
	for _, c := range r.NonTrivialCycles() {
		if !c.IsUnit() {
			t.Errorf("cycle %v not unit", c)
		}
	}
}

func TestReduceChainOfTrivialVertices(t *testing.T) {
	// x -A- t1 -B- t2 -C- u with directed x->u: reduces to one edge.
	g := New()
	g.AddDirected("x", "u", "p")
	g.AddUndirected("x", "t1", "a")
	g.AddUndirected("t1", "t2", "b")
	g.AddUndirected("t2", "u", "c")
	r := g.Reduce()
	if r.NumVertices() != 2 {
		t.Fatalf("vertices = %d, want 2", r.NumVertices())
	}
	if len(r.UndirectedEdges()) != 1 {
		t.Fatalf("undirected = %d, want 1", len(r.UndirectedEdges()))
	}
	cycles := r.NonTrivialCycles()
	if len(cycles) != 1 || !cycles[0].IsUnit() || !cycles[0].IsRotational() {
		t.Errorf("cycles = %v", cycles)
	}
}

func TestReduceDanglingTrivialVertex(t *testing.T) {
	// A pendant trivial vertex just disappears.
	g := New()
	g.AddDirected("x", "y", "p")
	g.AddUndirected("x", "y", "a")
	g.AddUndirected("y", "w", "b") // w pendant, trivial
	r := g.Reduce()
	if r.HasVertex("w") {
		t.Error("pendant trivial vertex kept")
	}
	if len(r.NonTrivialCycles()) != 1 {
		t.Errorf("cycles = %d", len(r.NonTrivialCycles()))
	}
}

func TestReduceStarTrivialVertex(t *testing.T) {
	// A trivial hub connecting three anchors cliquifies them.
	g := New()
	g.AddDirected("a", "b", "p")
	g.AddDirected("c", "d", "p")
	g.AddUndirected("a", "z", "r")
	g.AddUndirected("b", "z", "s")
	g.AddUndirected("c", "z", "t")
	r := g.Reduce()
	if r.HasVertex("z") {
		t.Error("hub kept")
	}
	// a, b, c pairwise connected.
	und := 0
	for _, e := range r.UndirectedEdges() {
		und++
		_ = e
	}
	if und != 3 {
		t.Errorf("clique edges = %d, want 3", und)
	}
}

func TestReduceKeepsAnchors(t *testing.T) {
	// Vertices with directed edges are never eliminated even with no
	// undirected edges at all.
	g := New()
	g.AddDirected("x", "y", "p")
	r := g.Reduce()
	if !r.HasVertex("x") || !r.HasVertex("y") {
		t.Error("anchors eliminated")
	}
}

func TestReduceFullyTrivialGraph(t *testing.T) {
	g := New()
	g.AddUndirected("a", "b", "r")
	g.AddUndirected("b", "c", "s")
	r := g.Reduce()
	if r.NumVertices() != 0 || r.NumEdges() != 0 {
		t.Errorf("fully trivial graph must vanish: %d vertices, %d edges",
			r.NumVertices(), r.NumEdges())
	}
}

// TestQuickReduceInvariants: reduction never changes the directed edges,
// never keeps trivial vertices, and preserves anchor connectivity.
func TestQuickReduceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		r := g.Reduce()
		// Directed edges unchanged (as a multiset of endpoint pairs).
		countDir := func(gr *Graph) map[[2]string]int {
			m := map[[2]string]int{}
			for _, e := range gr.DirectedEdges() {
				m[[2]string{e.From, e.To}]++
			}
			return m
		}
		a, b := countDir(g), countDir(r)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		// No trivial vertices survive.
		anchors := map[string]bool{}
		for _, e := range r.DirectedEdges() {
			anchors[e.From] = true
			anchors[e.To] = true
		}
		for _, v := range r.Vertices() {
			if !anchors[v] {
				t.Logf("trivial vertex %s survived", v)
				return false
			}
		}
		// Anchor-pair connectivity preserved: two anchors in the same
		// component before iff after.
		compOf := func(gr *Graph) map[string]int {
			m := map[string]int{}
			for ci, c := range gr.Components() {
				for _, v := range c.Vertices() {
					m[v] = ci
				}
			}
			return m
		}
		ca, cb := compOf(g), compOf(r)
		var anchorList []string
		for v := range anchors {
			anchorList = append(anchorList, v)
		}
		for i := 0; i < len(anchorList); i++ {
			for j := i + 1; j < len(anchorList); j++ {
				u, v := anchorList[i], anchorList[j]
				if (ca[u] == ca[v]) != (cb[u] == cb[v]) {
					t.Logf("connectivity of %s,%s changed", u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
