package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a small random hybrid graph from the seed.
func randomGraph(rng *rand.Rand) *Graph {
	g := New()
	n := 2 + rng.Intn(5)
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
		g.AddVertex(names[i])
	}
	edges := rng.Intn(8)
	for i := 0; i < edges; i++ {
		u := names[rng.Intn(n)]
		v := names[rng.Intn(n)]
		if rng.Intn(2) == 0 {
			g.AddDirected(u, v, "p")
		} else if u != v {
			g.AddUndirected(u, v, "q")
		}
	}
	return g
}

// TestQuickCycleInvariants checks structural invariants of SimpleCycles on
// random graphs: closed simple walks, consistent weights, no duplicate edge
// sets, and non-trivial classification consistency.
func TestQuickCycleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		cycles := g.SimpleCycles()
		seen := make(map[string]bool)
		for _, c := range cycles {
			if len(c.Steps) == 0 {
				t.Logf("empty cycle reported")
				return false
			}
			// Closed walk: consecutive steps connect, last returns to first.
			for i, s := range c.Steps {
				next := c.Steps[(i+1)%len(c.Steps)]
				if s.To != next.From {
					t.Logf("cycle not closed at step %d: %v", i, c)
					return false
				}
			}
			// Simple: vertices distinct (except the closure).
			verts := make(map[string]bool)
			for _, v := range c.Vertices() {
				if verts[v] {
					t.Logf("repeated vertex in cycle %v", c)
					return false
				}
				verts[v] = true
			}
			// Edge set must be unique across reported cycles.
			key := cycleKey(c.EdgeIDs())
			if seen[key] {
				t.Logf("duplicate cycle %v", c)
				return false
			}
			seen[key] = true
			// Weight equals recomputed sum; AbsWeight is its magnitude.
			w := 0
			for _, s := range c.Steps {
				w += s.Weight
			}
			if w != c.Weight() {
				return false
			}
			if c.AbsWeight() != max(w, -w) {
				return false
			}
			// Non-trivial iff a directed edge occurs.
			hasDir := false
			for _, s := range c.Steps {
				if s.Edge.Kind == Directed {
					hasDir = true
				}
			}
			if hasDir != c.IsNonTrivial() {
				return false
			}
			// A one-directional non-trivial cycle's |weight| equals its
			// directed edge count.
			if c.IsNonTrivial() && c.IsOneDirectional() && c.AbsWeight() != c.DirectedCount() {
				t.Logf("one-directional weight mismatch: %v", c)
				return false
			}
			// Steps may only use edges of the graph.
			for _, s := range c.Steps {
				if s.Edge.ID < 0 || s.Edge.ID >= g.NumEdges() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComponentsPartition checks that Components is a partition
// preserving all vertices and edges.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		comps := g.Components()
		verts, edges := 0, 0
		seenV := make(map[string]bool)
		for _, c := range comps {
			verts += c.NumVertices()
			edges += c.NumEdges()
			for _, v := range c.Vertices() {
				if seenV[v] {
					t.Logf("vertex %s in two components", v)
					return false
				}
				seenV[v] = true
			}
			// Every edge's endpoints belong to this component.
			for _, e := range c.Edges() {
				if !c.HasVertex(e.From) || !c.HasVertex(e.To) {
					return false
				}
			}
		}
		return verts == g.NumVertices() && edges == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompressionPreservesCycleClassification: merging parallel
// undirected edges must not change the non-trivial cycle count beyond
// collapsing trivial multi-edges, nor any weight reachable by non-trivial
// cycles.
func TestQuickCompressionPreservesCycleClassification(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		c := g.CompressParallelUndirected()
		// Non-zero-cycle existence is invariant: undirected edges carry
		// weight 0, so merging them cannot create or destroy weight.
		if g.HasNonZeroWeightCycle() != c.HasNonZeroWeightCycle() {
			return false
		}
		if g.MaxPathWeight() != c.MaxPathWeight() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
