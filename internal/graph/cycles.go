package graph

import (
	"sort"
	"strings"
)

// Step is one traversal step of a walk: the edge taken and the weight it
// contributed in the traversal direction (+1 directed forward, −1 directed
// backward, 0 undirected).
type Step struct {
	Edge   Edge
	From   string
	To     string
	Weight int
}

// Cycle is a simple cycle of a hybrid graph: a closed walk with no repeated
// vertex (and no repeated edge). The traversal orientation is the one found
// first; Weight and direction classification account for it.
type Cycle struct {
	Steps []Step
}

// Vertices returns the cycle's vertices in traversal order.
func (c Cycle) Vertices() []string {
	out := make([]string, len(c.Steps))
	for i, s := range c.Steps {
		out[i] = s.From
	}
	return out
}

// Weight is the sum of the step weights (§2 of the paper). Note the weight
// of the reverse traversal is the negation; AbsWeight is orientation-free.
func (c Cycle) Weight() int {
	w := 0
	for _, s := range c.Steps {
		w += s.Weight
	}
	return w
}

// AbsWeight is |Weight|, the orientation-independent cycle weight used for
// classification.
func (c Cycle) AbsWeight() int {
	w := c.Weight()
	if w < 0 {
		return -w
	}
	return w
}

// DirectedCount returns the number of directed edges on the cycle.
func (c Cycle) DirectedCount() int {
	n := 0
	for _, s := range c.Steps {
		if s.Edge.Kind == Directed {
			n++
		}
	}
	return n
}

// UndirectedCount returns the number of undirected edges on the cycle.
func (c Cycle) UndirectedCount() int { return len(c.Steps) - c.DirectedCount() }

// IsNonTrivial reports whether the cycle contains at least one directed edge
// (§3: a non-trivial cycle).
func (c Cycle) IsNonTrivial() bool { return c.DirectedCount() > 0 }

// IsOneDirectional reports whether every directed edge on the cycle is
// traversed in the same direction (§3). Trivial cycles are vacuously
// one-directional; callers should test IsNonTrivial separately.
func (c Cycle) IsOneDirectional() bool {
	sign := 0
	for _, s := range c.Steps {
		if s.Edge.Kind != Directed {
			continue
		}
		if sign == 0 {
			sign = s.Weight
		} else if s.Weight != sign {
			return false
		}
	}
	return true
}

// IsPermutational reports whether the cycle consists solely of directed
// edges (§3: a one-directional cycle with no undirected edge part). A unit
// permutational cycle is a self-loop.
func (c Cycle) IsPermutational() bool { return c.UndirectedCount() == 0 }

// IsRotational reports whether the cycle contains at least one undirected
// edge (§3) — meaningful for one-directional cycles.
func (c Cycle) IsRotational() bool { return c.UndirectedCount() > 0 }

// IsUnit reports whether the cycle is one-directional with absolute weight 1
// (§3: a unit cycle).
func (c Cycle) IsUnit() bool { return c.IsOneDirectional() && c.AbsWeight() == 1 }

// EdgeIDs returns the sorted IDs of the cycle's edges; two simple cycles are
// equal iff their edge sets are equal.
func (c Cycle) EdgeIDs() []int {
	ids := make([]int, len(c.Steps))
	for i, s := range c.Steps {
		ids[i] = s.Edge.ID
	}
	sort.Ints(ids)
	return ids
}

// String renders the cycle as a walk, e.g. "x ->(P) z --(A) x".
func (c Cycle) String() string {
	if len(c.Steps) == 0 {
		return "(empty cycle)"
	}
	var b strings.Builder
	for _, s := range c.Steps {
		b.WriteString(s.From)
		switch {
		case s.Edge.Kind == Undirected:
			b.WriteString(" --")
		case s.Weight >= 0:
			b.WriteString(" ->")
		default:
			b.WriteString(" <-")
		}
		if s.Edge.Label != "" {
			b.WriteString("(" + s.Edge.Label + ")")
		}
		b.WriteString(" ")
	}
	b.WriteString(c.Steps[0].From)
	return b.String()
}

func cycleKey(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		b.WriteByte('e')
		b.WriteString(itoa(id))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SimpleCycles enumerates every simple cycle of the graph, where directed
// edges may be traversed in either direction (contributing +1 or −1 to the
// weight) and undirected edges contribute 0. Each cycle is reported once,
// regardless of starting vertex or orientation. Self-loops are length-1
// cycles. The graphs arising from recursive formulas are small, so a
// straightforward DFS enumeration is used.
func (g *Graph) SimpleCycles() []Cycle {
	var cycles []Cycle
	seen := make(map[string]bool)

	// Self-loops first.
	for _, e := range g.edges {
		if e.IsSelfLoop() {
			w := 0
			if e.Kind == Directed {
				w = 1
			}
			c := Cycle{Steps: []Step{{Edge: e, From: e.From, To: e.To, Weight: w}}}
			k := cycleKey(c.EdgeIDs())
			if !seen[k] {
				seen[k] = true
				cycles = append(cycles, c)
			}
		}
	}

	// DFS from each start vertex; only visit vertices with index >= start to
	// canonicalize, and record cycles closing back at start.
	var (
		path    []Step
		onPath  = make(map[string]bool)
		usedEdg = make(map[int]bool)
	)
	var dfs func(start, cur string, startIdx int)
	dfs = func(start, cur string, startIdx int) {
		for _, h := range g.adj[cur] {
			e := g.edges[h.edge]
			if e.IsSelfLoop() || usedEdg[h.edge] {
				continue
			}
			next := h.to
			if g.vindex[next] < startIdx {
				continue
			}
			if next == start {
				if len(path) >= 1 { // closing edge makes length >= 2
					steps := make([]Step, len(path)+1)
					copy(steps, path)
					steps[len(path)] = Step{Edge: e, From: cur, To: next, Weight: h.weight}
					c := Cycle{Steps: steps}
					k := cycleKey(c.EdgeIDs())
					if !seen[k] {
						seen[k] = true
						cycles = append(cycles, c)
					}
				}
				continue
			}
			if onPath[next] {
				continue
			}
			onPath[next] = true
			usedEdg[h.edge] = true
			path = append(path, Step{Edge: e, From: cur, To: next, Weight: h.weight})
			dfs(start, next, startIdx)
			path = path[:len(path)-1]
			usedEdg[h.edge] = false
			onPath[next] = false
		}
	}
	for i, v := range g.vertices {
		onPath[v] = true
		dfs(v, v, i)
		onPath[v] = false
	}
	return cycles
}

// NonTrivialCycles returns the simple cycles containing at least one
// directed edge.
func (g *Graph) NonTrivialCycles() []Cycle {
	var out []Cycle
	for _, c := range g.SimpleCycles() {
		if c.IsNonTrivial() {
			out = append(out, c)
		}
	}
	return out
}

// MaxPathWeight returns the maximum weight over all simple paths of the
// graph (Ioannidis's tight rank bound for formulas whose I-graph has no
// cycle of non-zero weight). The empty path has weight 0, so the result is
// never negative.
func (g *Graph) MaxPathWeight() int {
	best := 0
	onPath := make(map[string]bool)
	var dfs func(cur string, w int)
	dfs = func(cur string, w int) {
		if w > best {
			best = w
		}
		for _, h := range g.adj[cur] {
			if g.edges[h.edge].IsSelfLoop() || onPath[h.to] {
				continue
			}
			onPath[h.to] = true
			dfs(h.to, w+h.weight)
			onPath[h.to] = false
		}
	}
	for _, v := range g.vertices {
		onPath[v] = true
		dfs(v, 0)
		onPath[v] = false
	}
	return best
}

// HasNonZeroWeightCycle reports whether some simple cycle has non-zero
// weight — the condition in Ioannidis's theorem separating bounded from
// potentially unbounded recursion.
func (g *Graph) HasNonZeroWeightCycle() bool {
	for _, c := range g.SimpleCycles() {
		if c.Weight() != 0 {
			return true
		}
	}
	return false
}
