// Package storage implements the extensional layer of the deductive
// database: interned constants, tuples, relations with per-column hash
// indexes, and whole databases, plus deterministic synthetic EDB generators
// for the experiments.
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Value is an interned constant. Values are only meaningful together with
// the Symbols table that produced them.
type Value int32

// Symbols interns constant names to dense Values.
type Symbols struct {
	names []string
	index map[string]Value
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{index: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one if needed.
func (s *Symbols) Intern(name string) Value {
	if v, ok := s.index[name]; ok {
		return v
	}
	v := Value(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = v
	return v
}

// Lookup returns the Value for name without interning.
func (s *Symbols) Lookup(name string) (Value, bool) {
	v, ok := s.index[name]
	return v, ok
}

// Name returns the name of v.
func (s *Symbols) Name(v Value) string {
	if int(v) < 0 || int(v) >= len(s.names) {
		return fmt.Sprintf("?%d", int32(v))
	}
	return s.names[v]
}

// Len returns the number of interned symbols.
func (s *Symbols) Len() int { return len(s.names) }

// Tuple is a fixed-arity row of values.
type Tuple []Value

// Key serializes the tuple into a map key.
func (t Tuple) Key() string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Relation is a set of tuples of fixed arity with optional per-column hash
// indexes built lazily and maintained incrementally thereafter.
//
// Concurrency contract: a Relation is not safe for concurrent use while its
// indexes build lazily — EachMatch and LookupCol materialize missing column
// indexes on first use, which mutates the relation even on a logically
// read-only path. Call BuildIndexes first (or Database.BuildIndexes for a
// whole database); after that, any number of goroutines may call the read
// methods (Len, Contains, Tuples, Each, EachMatch, LookupCol, Partition)
// concurrently as long as no writer runs. Insert and InsertAll always
// require exclusive access; they keep already-built indexes current, so a
// single-threaded write phase may be followed by another concurrent read
// phase without rebuilding.
type Relation struct {
	arity  int
	tuples []Tuple
	set    map[string]struct{}
	colIdx []map[Value][]int // nil per column until first use
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		arity:  arity,
		set:    make(map[string]struct{}),
		colIdx: make([]map[Value][]int, arity),
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds t (copied) and reports whether it was new. Inserting a tuple
// of the wrong arity panics: that is always a programming error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: insert arity %d into relation of arity %d", len(t), r.arity))
	}
	k := t.Key()
	if _, ok := r.set[k]; ok {
		return false
	}
	r.set[k] = struct{}{}
	c := t.Clone()
	pos := len(r.tuples)
	r.tuples = append(r.tuples, c)
	for col, idx := range r.colIdx {
		if idx != nil {
			idx[c[col]] = append(idx[c[col]], pos)
		}
	}
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.set[t.Key()]
	return ok
}

// Tuples returns the underlying tuple slice. Callers must not mutate it or
// its elements.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Each calls f for every tuple until f returns false.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

func (r *Relation) ensureIndex(col int) map[Value][]int {
	if r.colIdx[col] == nil {
		idx := make(map[Value][]int)
		for i, t := range r.tuples {
			idx[t[col]] = append(idx[t[col]], i)
		}
		r.colIdx[col] = idx
	}
	return r.colIdx[col]
}

// LookupCol returns the positions of tuples whose column col equals v,
// building the column index on first use.
func (r *Relation) LookupCol(col int, v Value) []int {
	return r.ensureIndex(col)[v]
}

// EachCol calls f for every tuple whose column col equals v until f returns
// false, building the column index on first use. It is the single-column
// fast path of EachMatch, used by the frontier kernels for edge traversal.
func (r *Relation) EachCol(col int, v Value, f func(Tuple) bool) {
	for _, pos := range r.ensureIndex(col)[v] {
		if !f(r.tuples[pos]) {
			return
		}
	}
}

// BuildIndexes materializes every column index now. Relations are not safe
// for concurrent use while indexes build lazily; after BuildIndexes, any
// number of goroutines may read the relation concurrently (as long as no
// writer runs).
func (r *Relation) BuildIndexes() {
	for col := 0; col < r.arity; col++ {
		r.ensureIndex(col)
	}
}

// Indexed reports whether every column index is materialized, i.e. whether
// the relation's read path is free of lazy index construction and therefore
// safe for concurrent readers.
func (r *Relation) Indexed() bool {
	for _, idx := range r.colIdx {
		if idx == nil {
			return false
		}
	}
	return true
}

// Partition splits the relation's tuples into at most parts contiguous,
// near-equal chunks (fewer when the relation is smaller than parts). The
// chunks are read-only views of the underlying tuple slice: callers must
// not mutate them, and must not grow the relation while holding them.
func (r *Relation) Partition(parts int) [][]Tuple {
	return PartitionTuples(r.tuples, parts)
}

// PartitionTuples splits a tuple slice into at most parts contiguous,
// near-equal chunks (fewer when the slice is shorter than parts). The
// chunks are views of the input slice: callers must not mutate them.
func PartitionTuples(tuples []Tuple, parts int) [][]Tuple {
	n := len(tuples)
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if n == 0 {
		return nil
	}
	out := make([][]Tuple, 0, parts)
	per := (n + parts - 1) / parts
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, tuples[lo:hi])
	}
	return out
}

// EachMatch calls f for each tuple matching the partial binding: bound[i]
// true means the tuple's column i must equal vals[i]. It picks the most
// selective bound column's index when one exists and scans otherwise.
func (r *Relation) EachMatch(bound []bool, vals Tuple, f func(Tuple) bool) {
	best := -1
	bestLen := -1
	for col, b := range bound {
		if !b {
			continue
		}
		n := len(r.ensureIndex(col)[vals[col]])
		if best == -1 || n < bestLen {
			best, bestLen = col, n
		}
	}
	match := func(t Tuple) bool {
		for col, b := range bound {
			if b && t[col] != vals[col] {
				return false
			}
		}
		return true
	}
	if best == -1 {
		for _, t := range r.tuples {
			if !f(t) {
				return
			}
		}
		return
	}
	for _, pos := range r.colIdx[best][vals[best]] {
		t := r.tuples[pos]
		if match(t) && !f(t) {
			return
		}
	}
}

// Clone returns a deep copy (indexes are not copied).
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.arity)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	return out
}

// InsertAll inserts every tuple of o and returns the number of new tuples.
func (r *Relation) InsertAll(o *Relation) int {
	n := 0
	for _, t := range o.tuples {
		if r.Insert(t) {
			n++
		}
	}
	return n
}

// Equal reports set equality of two relations.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.set {
		if _, ok := o.set[k]; !ok {
			return false
		}
	}
	return true
}

// Database maps predicate names to relations and shares one symbol table.
type Database struct {
	Syms *Symbols
	rels map[string]*Relation
}

// NewDatabase returns an empty database with a fresh symbol table.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbols(), rels: make(map[string]*Relation)}
}

// NewDatabaseWithSymbols returns an empty database sharing an existing
// symbol table — used for overlay databases that reference another
// database's relations.
func NewDatabaseWithSymbols(syms *Symbols) *Database {
	return &Database{Syms: syms, rels: make(map[string]*Relation)}
}

// Ensure returns the relation for pred, creating it with the given arity if
// absent. It returns an error if the existing arity differs.
func (db *Database) Ensure(pred string, arity int) (*Relation, error) {
	if r, ok := db.rels[pred]; ok {
		if r.Arity() != arity {
			return nil, fmt.Errorf("storage: relation %s has arity %d, requested %d", pred, r.Arity(), arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.rels[pred] = r
	return r, nil
}

// Rel returns the relation for pred, or nil when absent.
func (db *Database) Rel(pred string) *Relation { return db.rels[pred] }

// Set replaces the relation stored under pred.
func (db *Database) Set(pred string, r *Relation) { db.rels[pred] = r }

// Preds returns the sorted predicate names present.
func (db *Database) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for k := range db.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Insert interns the names and inserts the tuple into pred, creating the
// relation as needed. It reports whether the tuple was new.
func (db *Database) Insert(pred string, names ...string) (bool, error) {
	r, err := db.Ensure(pred, len(names))
	if err != nil {
		return false, err
	}
	t := make(Tuple, len(names))
	for i, n := range names {
		t[i] = db.Syms.Intern(n)
	}
	return r.Insert(t), nil
}

// InsertValues inserts already-interned values into pred.
func (db *Database) InsertValues(pred string, vals ...Value) (bool, error) {
	r, err := db.Ensure(pred, len(vals))
	if err != nil {
		return false, err
	}
	return r.Insert(Tuple(vals)), nil
}

// BuildIndexes materializes all column indexes of every relation, making
// the database safe for concurrent readers.
func (db *Database) BuildIndexes() {
	for _, r := range db.rels {
		r.BuildIndexes()
	}
}

// Clone deep-copies the database. The symbol table is shared (symbols are
// append-only, so sharing is safe for concurrent readers of existing names).
func (db *Database) Clone() *Database {
	out := &Database{Syms: db.Syms, rels: make(map[string]*Relation, len(db.rels))}
	for k, r := range db.rels {
		out.rels[k] = r.Clone()
	}
	return out
}

// Dump renders a relation's tuples deterministically for tests and tools.
func (db *Database) Dump(pred string) string {
	r := db.rels[pred]
	if r == nil {
		return pred + ": <absent>\n"
	}
	lines := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = db.Syms.Name(v)
		}
		lines = append(lines, pred+"("+strings.Join(parts, ", ")+")")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
