// Package storage implements the extensional layer of the deductive
// database: interned constants, tuples, relations, and whole databases,
// plus deterministic synthetic EDB generators for the experiments.
//
// The tuple store is built for the fixpoint engines' hot path. Tuple values
// live in one chunked arena of flat []Value blocks (no per-tuple clone
// allocation); membership is an open-addressing table keyed by a 64-bit
// word hash of the values (no string keys — Insert of a duplicate and
// Contains are allocation-free); and column indexes are CSR-style
// (offsets, positions) arrays built in one counting pass (see csr.go).
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is an interned constant. Values are only meaningful together with
// the Symbols table that produced them.
type Value int32

// Symbols interns constant names to dense Values. The table is safe for
// concurrent use: the serving path interns new constants on the writer side
// while any number of snapshot readers compile conjunctions (which intern
// rule constants) and render answers. Values are append-only, so a Value
// handed out once names the same constant forever.
type Symbols struct {
	mu    sync.RWMutex
	names []string
	index map[string]Value
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{index: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one if needed.
func (s *Symbols) Intern(name string) Value {
	s.mu.RLock()
	v, ok := s.index[name]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.index[name]; ok {
		return v
	}
	v = Value(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = v
	return v
}

// Lookup returns the Value for name without interning.
func (s *Symbols) Lookup(name string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.index[name]
	return v, ok
}

// Name returns the name of v.
func (s *Symbols) Name(v Value) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(v) < 0 || int(v) >= len(s.names) {
		return fmt.Sprintf("?%d", int32(v))
	}
	return s.names[v]
}

// Len returns the number of interned symbols.
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Tuple is a fixed-arity row of values.
type Tuple []Value

// Key serializes the tuple into a map key. The relation's own dedup no
// longer uses string keys (see hashWords); Key remains the reference
// semantics that the word-hash set is differentially tested against, and a
// convenient map key for callers outside the hot path.
func (t Tuple) Key() string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Arena block sizing: blocks double from minBlockTuples tuples up to
// maxBlockValues values, so small relations stay small and big ones
// amortize to one allocation per ~16k values.
const (
	minBlockTuples = 64
	maxBlockValues = 1 << 14
	// valueBytes sizes arena accounting (Value is an int32).
	valueBytes = 4
)

// Relation is a set of tuples of fixed arity. Tuple storage is a chunked
// value arena (tuple headers alias arena blocks and stay valid forever —
// blocks never move or shrink), dedup is a word-hashed open-addressing
// position table, and per-column CSR indexes are built lazily on first
// probe and maintained incrementally thereafter.
//
// Concurrency contract: a Relation is not safe for concurrent use while its
// indexes build lazily — EachMatch, EachCol and LookupCol materialize
// missing column indexes on first use, which mutates the relation even on a
// logically read-only path. Call BuildIndexes first (or
// Database.BuildIndexes for a whole database); after that the read path
// never mutates — a probe for a column that somehow lacks an index returns
// an empty result instead of building one — and any number of goroutines
// may call the read methods (Len, Contains, Tuples, At, Each, EachCol,
// EachMatch, LookupCol, Partition) concurrently as long as no writer runs.
// Insert, InsertAll and Reset always require exclusive access; Insert keeps
// already-built indexes current, so a single-threaded write phase may be
// followed by another concurrent read phase without rebuilding.
type Relation struct {
	arity  int
	blocks [][]Value // value arena; the last block is the open one
	tuples []Tuple   // insertion-ordered headers aliasing the arena
	table  []uint32  // open addressing; 0 empty, else position+1
	colIdx []*colIndex
	// published flips at BuildIndexes: it freezes the read path (no lazy
	// index construction) until the next Insert-free Reset.
	published bool
	// frozen marks the relation as pinned by a live Snapshot (or a result
	// cache): Insert and Reset panic, because snapshot readers alias the
	// arena blocks and probe the dedup table concurrently. Writers reach a
	// frozen relation only through Database methods, which copy-on-write
	// the header first (see cowClone).
	frozen bool
	// lineage identifies the append-only tuple history this header belongs
	// to. Copy-on-write clones share it (their tuple slices are prefixes of
	// one another), while Clone and Reset start a fresh one. DiffSnapshots
	// relies on it: two headers with equal lineage differ exactly by the
	// tuples past the shorter header's length.
	lineage uint64
	// statsVer is the relation's statistics version: a globally unique stamp
	// taken whenever the column statistics materially change (BuildIndexes
	// publishing, CompactIndexes or staleness rebuilds folding overflow back
	// into the CSR body). Plan caches fold it into their keys so compiled
	// join orders computed against stale statistics are never served after
	// an index rebuild. Copy-on-write clones inherit it (their stats are the
	// same until their own rebuild). Zero means "never stamped".
	statsVer uint64
	// hashFn overrides hashWords in tests (collision handling coverage).
	hashFn func(Tuple) uint64
	// stats counts write-path work (see RelStats). Only writer-exclusive
	// operations touch it — plain increments, no atomics — so the
	// concurrent read phase stays untouched and allocation-free.
	stats RelStats
}

// RelStats counts the write-path work a relation has done since creation.
// All fields are updated only under the writer-exclusive operations of the
// concurrency contract (Insert, InsertAll, BuildIndexes, Reset); the
// concurrent read path (Contains, EachCol, ...) is never counted, so
// counting costs plain integer adds and no synchronization. Cumulative
// across Reset — the parallel engine's pooled buffers keep accumulating.
type RelStats struct {
	// Probes is the number of write-path membership probes (one per Insert).
	Probes int64
	// Duplicates is the number of Inserts that found the tuple present.
	Duplicates int64
	// Collisions is the number of occupied, non-matching hash slots walked
	// by write-path probes — the open-addressing clustering measure.
	Collisions int64
	// ArenaBytes is the number of bytes of value-arena capacity allocated.
	ArenaBytes int64
	// TableGrows is the number of membership-table rehashes.
	TableGrows int64
	// IndexBuilds is the number of CSR column-index (re)builds: lazy first
	// probes, BuildIndexes materializations, and staleness rebuilds after
	// overflow growth.
	IndexBuilds int64
}

// Add returns the field-wise sum, for aggregating over many relations.
func (s RelStats) Add(o RelStats) RelStats {
	return RelStats{
		Probes:      s.Probes + o.Probes,
		Duplicates:  s.Duplicates + o.Duplicates,
		Collisions:  s.Collisions + o.Collisions,
		ArenaBytes:  s.ArenaBytes + o.ArenaBytes,
		TableGrows:  s.TableGrows + o.TableGrows,
		IndexBuilds: s.IndexBuilds + o.IndexBuilds,
	}
}

// Stats returns the relation's write-path counters. Requires the same
// access as any read method (no concurrent writer).
func (r *Relation) Stats() RelStats { return r.stats }

// relLineage hands out lineage identifiers. A plain counter (not pointer
// identity) because zero-size sentinel allocations may share an address.
var relLineage atomic.Uint64

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, colIdx: make([]*colIndex, arity), lineage: relLineage.Add(1)}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

func (r *Relation) hash(t Tuple) uint64 {
	if r.hashFn != nil {
		return r.hashFn(t)
	}
	return hashWords(t)
}

// find returns the position of t, or −1. Allocation-free.
func (r *Relation) find(t Tuple, h uint64) int {
	if len(r.table) == 0 {
		return -1
	}
	mask := h & uint64(len(r.table)-1)
	i := mask
	mask = uint64(len(r.table) - 1)
	for {
		e := r.table[i]
		if e == 0 {
			return -1
		}
		pos := int(e - 1)
		if r.tuples[pos].Equal(t) {
			return pos
		}
		i = (i + 1) & mask
	}
}

// findInsert is find for the write path: identical probe loop, plus
// collision accounting. Contains may run concurrently with other readers
// and must stay mutation-free, so the read path keeps the plain find.
func (r *Relation) findInsert(t Tuple, h uint64) int {
	if len(r.table) == 0 {
		return -1
	}
	mask := uint64(len(r.table) - 1)
	i := h & mask
	for {
		e := r.table[i]
		if e == 0 {
			return -1
		}
		pos := int(e - 1)
		if r.tuples[pos].Equal(t) {
			return pos
		}
		r.stats.Collisions++
		i = (i + 1) & mask
	}
}

// growTable rehashes every stored tuple into a doubled table.
func (r *Relation) growTable() {
	r.stats.TableGrows++
	size := len(r.table) * 2
	if size < 16 {
		size = 16
	}
	r.table = make([]uint32, size)
	mask := uint64(size - 1)
	for pos, t := range r.tuples {
		i := r.hash(t) & mask
		for r.table[i] != 0 {
			i = (i + 1) & mask
		}
		r.table[i] = uint32(pos + 1)
	}
}

// alloc copies t into the arena and returns the arena-backed header.
func (r *Relation) alloc(t Tuple) Tuple {
	k := r.arity
	if k == 0 {
		return Tuple{}
	}
	var b []Value
	if n := len(r.blocks); n > 0 {
		b = r.blocks[n-1]
	}
	if cap(b)-len(b) < k {
		size := minBlockTuples * k
		if n := len(r.blocks); n > 0 && 2*cap(r.blocks[n-1]) > size {
			size = 2 * cap(r.blocks[n-1])
		}
		if size > maxBlockValues && size > 2*k {
			size = maxBlockValues
			if size < k {
				size = k
			}
		}
		b = make([]Value, 0, size)
		r.blocks = append(r.blocks, b)
		r.stats.ArenaBytes += int64(size) * int64(valueBytes)
	}
	off := len(b)
	b = append(b, t...)
	r.blocks[len(r.blocks)-1] = b
	return b[off : off+k : off+k]
}

// Insert adds t (copied into the arena) and reports whether it was new.
// A duplicate insert performs no allocation: the arena copy happens only
// after the membership probe misses. Inserting a tuple of the wrong arity
// panics: that is always a programming error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: insert arity %d into relation of arity %d", len(t), r.arity))
	}
	if r.frozen {
		panic("storage: Insert on a frozen relation (snapshot readers may alias it; write through the Database, which clones on write)")
	}
	h := r.hash(t)
	r.stats.Probes++
	if r.findInsert(t, h) >= 0 {
		r.stats.Duplicates++
		return false
	}
	if (len(r.tuples)+1)*4 >= len(r.table)*3 {
		r.growTable()
	}
	c := r.alloc(t)
	pos := len(r.tuples)
	r.tuples = append(r.tuples, c)
	mask := uint64(len(r.table) - 1)
	i := h & mask
	for r.table[i] != 0 {
		i = (i + 1) & mask
	}
	r.table[i] = uint32(pos + 1)
	for col, ci := range r.colIdx {
		if ci == nil {
			continue
		}
		ci.add(c[col], int32(pos))
		if ci.stale() {
			r.stats.IndexBuilds++
			r.colIdx[col] = buildColIndex(r.tuples, col)
			r.statsVer = statsVersion.Add(1)
		}
	}
	return true
}

// Contains reports membership. Allocation-free.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.find(t, r.hash(t)) >= 0
}

// Tuples returns the tuple headers in insertion order. Callers must not
// mutate the slice or its elements. The returned snapshot stays valid while
// the relation grows: appends never move stored values.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// At returns the i-th tuple in insertion order. The header aliases the
// arena, so holding it does not pin a private copy — the frontier kernels
// use it to build delta slices without cloning.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Each calls f for every tuple until f returns false.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// probeIndex returns the column's index, building it when the relation is
// still in its single-threaded lazy phase. After BuildIndexes the read path
// must not mutate under concurrent readers, so a missing index (which
// BuildIndexes makes impossible short of a reset) yields nil and the caller
// returns an empty result.
func (r *Relation) probeIndex(col int) *colIndex {
	ci := r.colIdx[col]
	if ci == nil && !r.published {
		r.stats.IndexBuilds++
		ci = buildColIndex(r.tuples, col)
		r.colIdx[col] = ci
	}
	return ci
}

// LookupCol returns the positions of tuples whose column col equals v,
// building the column index on first use (pre-BuildIndexes only). When v
// gained no tuples since the last index build the result is a view of the
// CSR positions array and no allocation happens.
func (r *Relation) LookupCol(col int, v Value) []int32 {
	ci := r.probeIndex(col)
	if ci == nil {
		return nil
	}
	return ci.lookup(v)
}

// EachCol calls f for every tuple whose column col equals v until f returns
// false, building the column index on first use (pre-BuildIndexes only). It
// is the single-column fast path of EachMatch, used by the frontier kernels
// for edge traversal; it never allocates.
func (r *Relation) EachCol(col int, v Value, f func(Tuple) bool) {
	ci := r.probeIndex(col)
	if ci == nil {
		return
	}
	// Iterate postings inline rather than through colIndex.each: wrapping f
	// in an adapter closure would force a heap allocation on every call.
	for _, pos := range ci.csrRange(v) {
		if !f(r.tuples[pos]) {
			return
		}
	}
	if ci.nextra == 0 {
		return
	}
	for _, pos := range ci.extra[v] {
		if !f(r.tuples[pos]) {
			return
		}
	}
}

// BuildIndexes materializes every column index now and freezes the read
// path: from here on, reads never build indexes lazily, so any number of
// goroutines may read the relation concurrently (as long as no writer
// runs). On an already-published relation it returns immediately without
// writing anything, so concurrent evaluations sharing a snapshot may all
// call it (the engines do, defensively) without racing.
func (r *Relation) BuildIndexes() {
	if r.published {
		return
	}
	for col := 0; col < r.arity; col++ {
		if r.colIdx[col] == nil {
			r.stats.IndexBuilds++
			r.colIdx[col] = buildColIndex(r.tuples, col)
		}
	}
	r.published = true
	r.statsVer = statsVersion.Add(1)
}

// CompactIndexes rebuilds every column index carrying overflow postings so
// the CSR body covers all tuples again. Cow-clones copy the overflow map
// entry by entry, so a relation that is frozen, cloned and extended once
// per write — the incremental-maintenance loop — must compact before
// publishing or the per-write clone cost grows with the write count.
// Requires exclusive access (the maintenance kernels call it on relations
// they built this round, before any reader can hold them).
func (r *Relation) CompactIndexes() {
	rebuilt := false
	for col, ci := range r.colIdx {
		if ci != nil && ci.nextra > 0 {
			r.stats.IndexBuilds++
			r.colIdx[col] = buildColIndex(r.tuples, col)
			rebuilt = true
		}
	}
	if rebuilt {
		r.statsVer = statsVersion.Add(1)
	}
}

// Indexed reports whether every column index is materialized, i.e. whether
// the relation's read path is free of lazy index construction and therefore
// safe for concurrent readers.
func (r *Relation) Indexed() bool {
	for _, idx := range r.colIdx {
		if idx == nil {
			return false
		}
	}
	return true
}

// Partition splits the relation's tuples into at most parts contiguous,
// near-equal chunks (fewer when the relation is smaller than parts). The
// chunks are read-only views of the underlying tuple slice: callers must
// not mutate them, and must not grow the relation while holding them.
func (r *Relation) Partition(parts int) [][]Tuple {
	return PartitionTuples(r.tuples, parts)
}

// PartitionTuples splits a tuple slice into at most parts contiguous,
// near-equal chunks (fewer when the slice is shorter than parts). The
// chunks are views of the input slice: callers must not mutate them.
func PartitionTuples(tuples []Tuple, parts int) [][]Tuple {
	n := len(tuples)
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if n == 0 {
		return nil
	}
	out := make([][]Tuple, 0, parts)
	per := (n + parts - 1) / parts
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, tuples[lo:hi])
	}
	return out
}

// EachMatch calls f for each tuple matching the partial binding: bound[i]
// true means the tuple's column i must equal vals[i]. It picks the most
// selective bound column's index when one exists and scans otherwise.
func (r *Relation) EachMatch(bound []bool, vals Tuple, f func(Tuple) bool) {
	var bestIdx *colIndex
	best := -1
	bestLen := -1
	for col, b := range bound {
		if !b {
			continue
		}
		ci := r.probeIndex(col)
		if ci == nil {
			// Read-phase probe of an unbuilt column: defensively empty
			// rather than lazily mutating (see probeIndex).
			return
		}
		n := ci.count(vals[col])
		if best == -1 || n < bestLen {
			best, bestLen, bestIdx = col, n, ci
		}
	}
	if best == -1 {
		for _, t := range r.tuples {
			if !f(t) {
				return
			}
		}
		return
	}
	// Inline iteration keeps f and the binding check off the heap (see
	// EachCol).
	for _, pos := range bestIdx.csrRange(vals[best]) {
		t := r.tuples[pos]
		if matchBinding(bound, vals, t) && !f(t) {
			return
		}
	}
	if bestIdx.nextra == 0 {
		return
	}
	for _, pos := range bestIdx.extra[vals[best]] {
		t := r.tuples[pos]
		if matchBinding(bound, vals, t) && !f(t) {
			return
		}
	}
}

// matchBinding reports whether t satisfies the partial binding.
func matchBinding(bound []bool, vals, t Tuple) bool {
	for col, b := range bound {
		if b && t[col] != vals[col] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (indexes are not copied).
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.arity)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	return out
}

// Freeze marks the relation immutable: Insert and Reset panic from here on.
// Database.Snapshot freezes every relation it pins so that concurrent
// snapshot readers can never be corrupted by an in-place write, and the
// result cache freezes cached answer relations for the same reason. There
// is no Unfreeze: a header that was ever published to readers stays
// read-only forever, and writers get a fresh copy-on-write header instead.
func (r *Relation) Freeze() {
	r.BuildIndexes()
	r.frozen = true
}

// Frozen reports whether the relation has been pinned by a snapshot (or
// otherwise frozen) and therefore refuses in-place writes.
func (r *Relation) Frozen() bool { return r.frozen }

// cowClone returns a writable header over the same stored tuples: the
// value-arena blocks and the tuple-header slice are shared (appends write
// only past the frozen length, which no reader of the frozen header can
// see), while the dedup table and the column indexes — which Insert mutates
// in place — are copied. This is the Database's copy-on-write step for
// writing "after" a snapshot: cost is O(table + arity) plus the index
// overflow maps, never the arena.
func (r *Relation) cowClone() *Relation {
	out := &Relation{
		arity:     r.arity,
		blocks:    append([][]Value(nil), r.blocks...),
		tuples:    r.tuples,
		table:     append([]uint32(nil), r.table...),
		colIdx:    make([]*colIndex, r.arity),
		published: r.published,
		statsVer:  r.statsVer,
		hashFn:    r.hashFn,
		stats:     r.stats,
		lineage:   r.lineage,
	}
	for i, ci := range r.colIdx {
		if ci != nil {
			out.colIdx[i] = ci.clone()
		}
	}
	return out
}

// CowClone returns a writable copy-on-write header over a frozen relation:
// the stored tuples are shared, inserts append past the frozen length. The
// incremental maintenance kernels use it to extend a cached answer relation
// without copying it. Only frozen relations may be cow-cloned — a mutable
// source could later append tuples the clone's shared slices would expose
// inconsistently.
func (r *Relation) CowClone() *Relation {
	if !r.frozen {
		panic("storage: CowClone of an unfrozen relation")
	}
	return r.cowClone()
}

// SizeBytes estimates the relation's resident memory: arena capacity, the
// membership table and the tuple headers, plus a fixed struct overhead.
// The result cache charges cached answers against its byte budget with it.
func (r *Relation) SizeBytes() int64 {
	n := int64(64)
	for _, b := range r.blocks {
		n += int64(cap(b)) * valueBytes
	}
	n += int64(len(r.table)) * 4
	n += int64(len(r.tuples)) * 24
	return n
}

// Reset empties the relation in place, re-arities it, and keeps the arena
// blocks and membership table capacity for reuse — the parallel engine
// pools task output buffers through it. Resetting requires exclusive
// access and unfreezes the read path (indexes build lazily again).
// Resetting a frozen relation panics: its arena blocks may be aliased by
// snapshot readers, and recycling them would overwrite tuples those readers
// still hold (refusal is the epoch-aware guard — writers needing a fresh
// relation after a snapshot allocate a new one instead).
func (r *Relation) Reset(arity int) {
	if r.frozen {
		panic("storage: Reset on a frozen relation (snapshot readers may alias its arena blocks)")
	}
	if arity != r.arity {
		r.arity = arity
		r.colIdx = make([]*colIndex, arity)
	} else {
		for i := range r.colIdx {
			r.colIdx[i] = nil
		}
	}
	r.tuples = r.tuples[:0]
	if n := len(r.blocks); n > 1 {
		// Keep only the largest (most recent) block.
		r.blocks[0] = r.blocks[n-1][:0]
		r.blocks = r.blocks[:1]
	} else if n == 1 {
		r.blocks[0] = r.blocks[0][:0]
	}
	for i := range r.table {
		r.table[i] = 0
	}
	r.published = false
	r.lineage = relLineage.Add(1)
}

// InsertAll inserts every tuple of o and returns the number of new tuples.
func (r *Relation) InsertAll(o *Relation) int {
	n := 0
	for _, t := range o.tuples {
		if r.Insert(t) {
			n++
		}
	}
	return n
}

// Equal reports set equality of two relations.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// Database maps predicate names to relations and shares one symbol table.
//
// Snapshot support: Snapshot() pins the current contents as an immutable,
// concurrently readable epoch (see snapshot.go). After a snapshot, the
// database remains writable — the first write to a pinned relation clones
// its header copy-on-write (sharing the arena blocks), so snapshot readers
// and the writer never touch the same mutable state. Snapshot and all
// mutating methods require the same exclusive access as Relation writes;
// the returned Snapshot itself needs no locking.
type Database struct {
	Syms *Symbols
	rels map[string]*Relation
	// epoch counts snapshots taken; 0 means never snapshotted. dirty marks
	// mutations since the last snapshot, so an unchanged database returns
	// the same Snapshot (same epoch — result caches key on it).
	epoch uint64
	dirty bool
	snap  *Snapshot
}

// NewDatabase returns an empty database with a fresh symbol table.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbols(), rels: make(map[string]*Relation)}
}

// NewDatabaseWithSymbols returns an empty database sharing an existing
// symbol table — used for overlay databases that reference another
// database's relations.
func NewDatabaseWithSymbols(syms *Symbols) *Database {
	return &Database{Syms: syms, rels: make(map[string]*Relation)}
}

// Ensure returns the relation for pred, creating it with the given arity if
// absent, and ready for writes: a relation frozen by a live snapshot is
// replaced by its copy-on-write clone first. It returns an error if the
// existing arity differs. Ensure marks the database dirty (the next
// Snapshot call advances the epoch), since callers hold the result to
// insert into it.
func (db *Database) Ensure(pred string, arity int) (*Relation, error) {
	db.dirty = true
	if r, ok := db.rels[pred]; ok {
		if r.Arity() != arity {
			return nil, fmt.Errorf("storage: relation %s has arity %d, requested %d", pred, r.Arity(), arity)
		}
		if r.frozen {
			r = r.cowClone()
			db.rels[pred] = r
		}
		return r, nil
	}
	r := NewRelation(arity)
	db.rels[pred] = r
	return r, nil
}

// Rel returns the relation for pred, or nil when absent.
func (db *Database) Rel(pred string) *Relation { return db.rels[pred] }

// Set replaces the relation stored under pred.
func (db *Database) Set(pred string, r *Relation) {
	db.dirty = true
	db.rels[pred] = r
}

// Preds returns the sorted predicate names present.
func (db *Database) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for k := range db.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Insert interns the names and inserts the tuple into pred, creating the
// relation as needed. It reports whether the tuple was new.
func (db *Database) Insert(pred string, names ...string) (bool, error) {
	r, err := db.Ensure(pred, len(names))
	if err != nil {
		return false, err
	}
	t := make(Tuple, len(names))
	for i, n := range names {
		t[i] = db.Syms.Intern(n)
	}
	return r.Insert(t), nil
}

// InsertValues inserts already-interned values into pred.
func (db *Database) InsertValues(pred string, vals ...Value) (bool, error) {
	r, err := db.Ensure(pred, len(vals))
	if err != nil {
		return false, err
	}
	return r.Insert(Tuple(vals)), nil
}

// BuildIndexes materializes all column indexes of every relation, making
// the database safe for concurrent readers.
func (db *Database) BuildIndexes() {
	for _, r := range db.rels {
		r.BuildIndexes()
	}
}

// StatsSnapshot sums the write-path counters of every relation in the
// database. Requires no concurrent writer (same contract as Relation.Stats).
func (db *Database) StatsSnapshot() RelStats {
	var out RelStats
	for _, r := range db.rels {
		out = out.Add(r.stats)
	}
	return out
}

// Clone deep-copies the database. The symbol table is shared (symbols are
// append-only, so sharing is safe for concurrent readers of existing names).
func (db *Database) Clone() *Database {
	out := &Database{Syms: db.Syms, rels: make(map[string]*Relation, len(db.rels))}
	for k, r := range db.rels {
		out.rels[k] = r.Clone()
	}
	return out
}

// Dump renders a relation's tuples deterministically for tests and tools.
func (db *Database) Dump(pred string) string {
	r := db.rels[pred]
	if r == nil {
		return pred + ": <absent>\n"
	}
	lines := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = db.Syms.Name(v)
		}
		lines = append(lines, pred+"("+strings.Join(parts, ", ")+")")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
