package storage

import (
	"fmt"
	"testing"
)

// skewedRelation builds a two-column relation where column 0 has one hot
// key ("h") carrying hot tuples and cold distinct filler keys, while
// column 1 is key-like (all distinct).
func skewedRelation(t *testing.T, db *Database, pred string, hot, cold int) *Relation {
	t.Helper()
	for i := 0; i < hot; i++ {
		db.Insert(pred, "h", fmt.Sprintf("hv%d", i))
	}
	for i := 0; i < cold; i++ {
		db.Insert(pred, fmt.Sprintf("c%d", i), fmt.Sprintf("cv%d", i))
	}
	return db.Rel(pred)
}

// TestColCardinalityContract pins the contract ColCardinality documents:
// 0 only for an empty relation, otherwise within [1, Len()], on the
// indexed path, the unindexed sampled path, and after overflow inserts.
func TestColCardinalityContract(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		r := NewRelation(2)
		for col := 0; col < 2; col++ {
			if got := r.ColCardinality(col); got != 0 {
				t.Errorf("empty relation col %d: cardinality = %d, want 0", col, got)
			}
		}
	})
	t.Run("out_of_range", func(t *testing.T) {
		db := NewDatabase()
		db.Insert("e", "a", "b")
		if got := db.Rel("e").ColCardinality(5); got != 0 {
			t.Errorf("out-of-range column: cardinality = %d, want 0", got)
		}
	})

	check := func(t *testing.T, r *Relation, col, want int) {
		t.Helper()
		got := r.ColCardinality(col)
		if got < 1 || got > r.Len() {
			t.Fatalf("col %d: cardinality = %d outside [1, %d]", col, got, r.Len())
		}
		if want > 0 && got != want {
			t.Errorf("col %d: cardinality = %d, want %d", col, got, want)
		}
	}

	t.Run("indexed_exact", func(t *testing.T) {
		db := NewDatabase()
		r := skewedRelation(t, db, "s", 40, 10)
		db.BuildIndexes()
		check(t, r, 0, 11) // h + c0..c9
		check(t, r, 1, 50) // all distinct
	})
	t.Run("unindexed_sampled", func(t *testing.T) {
		// A fresh unpublished relation built with raw Inserts has no index
		// and probeIndex builds lazily; go through a relation large enough
		// that the sample path (sampleCol) is what a published, index-less
		// column would use. Exercise sampleCol directly via an unbuilt
		// column of a cloned published relation.
		db := NewDatabase()
		r := skewedRelation(t, db, "s", 600, 100)
		// No BuildIndexes: probeIndex on an unpublished relation builds the
		// index, which is also a legal path — the contract must hold there.
		check(t, r, 0, 101)
		check(t, r, 1, 0) // bounds only; sampled estimates may be inexact
	})
	t.Run("overflow_inserts", func(t *testing.T) {
		db := NewDatabase()
		r := skewedRelation(t, db, "s", 20, 5)
		db.BuildIndexes()
		// Post-publish inserts land in the overflow map.
		db.Insert("s", "new1", "x1")
		db.Insert("s", "new2", "x2")
		got := r.ColCardinality(0)
		if got < 1 || got > r.Len() {
			t.Fatalf("overflow: cardinality = %d outside [1, %d]", got, r.Len())
		}
		if got != 8 { // h, c0..c4, new1, new2
			t.Errorf("overflow: cardinality = %d, want 8", got)
		}
	})
}

// TestColStatsExactWhenIndexed checks Distinct/MaxBucket/AvgBucket against
// a hand-built skewed distribution, including exact overflow folding.
func TestColStatsExactWhenIndexed(t *testing.T) {
	db := NewDatabase()
	r := skewedRelation(t, db, "s", 40, 10)
	db.BuildIndexes()

	cs := r.ColStats(0)
	if cs.Distinct != 11 || cs.MaxBucket != 40 {
		t.Errorf("col 0: got %+v, want Distinct=11 MaxBucket=40", cs)
	}
	if cs.AvgBucket < 4.5 || cs.AvgBucket > 4.6 { // 50/11
		t.Errorf("col 0: AvgBucket = %v, want ~4.55", cs.AvgBucket)
	}
	cs = r.ColStats(1)
	if cs.Distinct != 50 || cs.MaxBucket != 1 {
		t.Errorf("col 1: got %+v, want Distinct=50 MaxBucket=1", cs)
	}

	// Overflow growing the hot bucket and adding a new value must fold in
	// exactly: MaxBucket 40+2, Distinct 11+1.
	db.Insert("s", "h", "ov1")
	db.Insert("s", "h", "ov2")
	db.Insert("s", "brandnew", "ov3")
	cs = r.ColStats(0)
	if cs.Distinct != 12 || cs.MaxBucket != 42 {
		t.Errorf("after overflow: got %+v, want Distinct=12 MaxBucket=42", cs)
	}
}

// TestColStatsSampledBounds checks the no-index sampled path stays within
// the planner's required bounds and points the right way on skew.
func TestColStatsSampledBounds(t *testing.T) {
	db := NewDatabase()
	skewedRelation(t, db, "s", 2000, 500)
	r := db.Rel("s")
	// Read the sample directly (ColStats on an unpublished relation without
	// a built index takes this path since it never builds one).
	for col := 0; col < 2; col++ {
		cs := r.ColStats(col)
		if cs.Distinct < 1 || cs.Distinct > r.Len() {
			t.Errorf("col %d: Distinct = %d outside [1, %d]", col, cs.Distinct, r.Len())
		}
		if cs.MaxBucket < 1 || cs.MaxBucket > r.Len() {
			t.Errorf("col %d: MaxBucket = %d outside [1, %d]", col, cs.MaxBucket, r.Len())
		}
	}
	// The hot column must look much heavier than the key-like column.
	if h, k := r.ColStats(0).MaxBucket, r.ColStats(1).MaxBucket; h <= k {
		t.Errorf("skew not visible to sample: hot MaxBucket %d <= key MaxBucket %d", h, k)
	}
}

// TestMatchCountBuckets checks MatchCount returns the most selective bound
// column's bucket size, the relation size when nothing is bound, and 0 for
// values never seen.
func TestMatchCountBuckets(t *testing.T) {
	db := NewDatabase()
	r := skewedRelation(t, db, "s", 30, 5)
	db.BuildIndexes()
	h, _ := db.Syms.Lookup("h")
	hv3, _ := db.Syms.Lookup("hv3")

	if got := r.MatchCount([]bool{false, false}, Tuple{0, 0}); got != r.Len() {
		t.Errorf("unbound: %d, want %d", got, r.Len())
	}
	if got := r.MatchCount([]bool{true, false}, Tuple{h, 0}); got != 30 {
		t.Errorf("hot key: %d, want 30", got)
	}
	// Both bound: min(bucket(h)=30, bucket(hv3)=1) = 1.
	if got := r.MatchCount([]bool{true, true}, Tuple{h, hv3}); got != 1 {
		t.Errorf("both bound: %d, want 1", got)
	}
	if got := r.MatchCount([]bool{false, true}, Tuple{0, Value(1 << 30)}); got != 0 {
		t.Errorf("unseen value: %d, want 0", got)
	}
}

// TestStatsEpochAdvances pins the plan-cache invalidation hook: building,
// compacting after overflow, and COW snapshots all interact with the
// statistics stamp as documented.
func TestStatsEpochAdvances(t *testing.T) {
	db := NewDatabase()
	db.Insert("e", "a", "b")
	db.Insert("e", "b", "c")
	if got := db.StatsEpoch(); got != 0 {
		t.Fatalf("pre-build epoch = %d, want 0", got)
	}
	db.BuildIndexes()
	e1 := db.StatsEpoch()
	if e1 == 0 {
		t.Fatal("post-build epoch still 0")
	}
	// No overflow: CompactIndexes has nothing to rebuild, epoch unchanged.
	db.Rel("e").CompactIndexes()
	if got := db.StatsEpoch(); got != e1 {
		t.Fatalf("no-op compact moved epoch %d -> %d", e1, got)
	}
	// Overflow + compact rebuilds the index and must advance the epoch so
	// cached plans compiled against the old statistics stop being served.
	db.Insert("e", "c", "d")
	db.Rel("e").CompactIndexes()
	e2 := db.StatsEpoch()
	if e2 <= e1 {
		t.Fatalf("compact after overflow: epoch %d, want > %d", e2, e1)
	}
	if got := db.Rel("e").StatsVersion(); got != e2 {
		t.Fatalf("relation stamp %d != db epoch %d", got, e2)
	}
}
