package storage

import (
	"testing"
)

// FuzzRelationDiff differentially tests the word-hashed relation against
// the reference semantics of the original representation: a set of
// Tuple.Key() strings. The fuzzer drives random insert/contains/probe
// sequences over a small value domain (so duplicates are frequent), with
// an optional degenerate hash function so open-addressing collision chains
// are exercised deliberately, not just by luck.
func FuzzRelationDiff(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 1, 4, 9, 9, 4, 9, 9, 6, 1, 2, 7, 3, 4})
	f.Add([]byte{0, 2, 0, 1, 2, 0, 1, 2, 6, 7, 7, 7, 5, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		arity := int(data[0])%3 + 1
		r := NewRelation(arity)
		if data[1]%4 == 0 {
			// Degenerate hash: every tuple collides, so correctness rests
			// entirely on the probe chain's value comparisons.
			r.hashFn = func(Tuple) uint64 { return 42 }
		}
		model := make(map[string]struct{})
		var modelTuples []Tuple
		buf := make(Tuple, arity)
		i := 2
		for i+arity < len(data) {
			op := data[i]
			i++
			for j := 0; j < arity; j++ {
				buf[j] = Value(data[i+j] % 16)
			}
			i += arity
			key := buf.Key()
			switch {
			case op%8 < 4: // insert
				_, dup := model[key]
				if got := r.Insert(buf); got == dup {
					t.Fatalf("Insert(%v) = %v, model dup = %v", buf, got, dup)
				}
				if _, ok := model[key]; !ok {
					model[key] = struct{}{}
					modelTuples = append(modelTuples, buf.Clone())
				}
			case op%8 < 6: // contains
				_, want := model[key]
				if got := r.Contains(buf); got != want {
					t.Fatalf("Contains(%v) = %v, model = %v", buf, got, want)
				}
			case op%8 == 6: // freeze the read path mid-sequence
				r.BuildIndexes()
			default: // column probe vs model scan
				col := int(op) / 8 % arity
				v := buf[col]
				got := 0
				r.EachCol(col, v, func(Tuple) bool { got++; return true })
				if lk := len(r.LookupCol(col, v)); lk != got {
					t.Fatalf("EachCol saw %d, LookupCol %d", got, lk)
				}
				want := 0
				for _, mt := range modelTuples {
					if mt[col] == v {
						want++
					}
				}
				if got != want {
					t.Fatalf("column %d=%d probe = %d, model scan = %d", col, v, got, want)
				}
			}
		}
		if r.Len() != len(model) {
			t.Fatalf("Len = %d, model = %d", r.Len(), len(model))
		}
		for _, mt := range modelTuples {
			if !r.Contains(mt) {
				t.Fatalf("model tuple %v missing", mt)
			}
		}
	})
}

// TestHashCollisionHandling pins the degenerate-hash path down
// deterministically: with every tuple hashing to the same bucket the
// relation must still dedup, answer membership, maintain indexes across
// the post-build overflow rebuild, and survive table growth rehashing.
func TestHashCollisionHandling(t *testing.T) {
	r := NewRelation(2)
	r.hashFn = func(Tuple) uint64 { return 7 }
	const n = 300 // well past several table growths and the overflow rebuild threshold
	for i := 0; i < n; i++ {
		if !r.Insert(Tuple{Value(i), Value(i % 10)}) {
			t.Fatalf("fresh tuple %d reported duplicate", i)
		}
	}
	r.BuildIndexes()
	for i := 0; i < n; i++ {
		if r.Insert(Tuple{Value(i), Value(i % 10)}) {
			t.Fatalf("duplicate tuple %d reported fresh", i)
		}
		if !r.Contains(Tuple{Value(i), Value(i % 10)}) {
			t.Fatalf("tuple %d missing", i)
		}
	}
	// Post-build inserts go through the overflow and trigger a CSR rebuild.
	for i := n; i < 2*n; i++ {
		r.Insert(Tuple{Value(i), Value(i % 10)})
	}
	if r.Len() != 2*n {
		t.Fatalf("Len = %d, want %d", r.Len(), 2*n)
	}
	for v := Value(0); v < 10; v++ {
		if got := len(r.LookupCol(1, v)); got != 2*n/10 {
			t.Fatalf("LookupCol(1, %d) = %d, want %d", v, got, 2*n/10)
		}
	}
}
