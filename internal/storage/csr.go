package storage

// CSR-style column indexes. A built index groups the positions of every
// tuple by the value in one column into two flat arrays — offsets and
// positions — built in one counting pass, instead of the map[Value][]int
// posting lists of the original representation (one slice header plus
// repeated append growth per distinct value). When the value domain of the
// column is compact the offsets array is addressed by value directly
// ("dense"); otherwise a value→key map picks the posting range ("sparse").
//
// Inserts after a build do not disturb the CSR arrays (readers may hold
// posting slices): new positions go to a small per-value overflow, and the
// whole index is rebuilt — under the writer's exclusive access — once the
// overflow exceeds half the built prefix.

type colIndex struct {
	// CSR body covering tuple positions [0, built).
	offsets   []int32
	positions []int32
	built     int32
	// Dense addressing: postings of value v live at offsets[v-lo : v-lo+2).
	dense  bool
	lo, hi Value
	// Sparse addressing: key = sparse[v] indexes offsets.
	sparse map[Value]int32
	// Overflow for positions >= built, merged back on rebuild.
	extra  map[Value][]int32
	nextra int
	// Column statistics over the built prefix, computed during the build's
	// counting pass so they are free to read afterwards: distinct is the
	// number of non-empty buckets, maxBucket the largest bucket (the
	// worst-case fan-out of a bound probe on this column). Overflow inserts
	// are accounted for by the readers (ColStats), not here.
	distinct  int32
	maxBucket int32
}

// buildColIndex builds the CSR index of column col over the tuples.
func buildColIndex(tuples []Tuple, col int) *colIndex {
	ci := &colIndex{built: int32(len(tuples))}
	n := len(tuples)
	if n == 0 {
		// Empty dense range: lo > hi makes every probe miss.
		ci.dense, ci.lo, ci.hi = true, 0, -1
		ci.offsets = []int32{0}
		return ci
	}
	lo, hi := tuples[0][col], tuples[0][col]
	for _, t := range tuples {
		if v := t[col]; v < lo {
			lo = v
		} else if v > hi {
			hi = v
		}
	}
	span := int64(hi) - int64(lo) + 1
	ci.positions = make([]int32, n)
	if span <= int64(4*n+64) {
		// Dense: one counting pass addressed by value.
		ci.dense, ci.lo, ci.hi = true, lo, hi
		ci.offsets = make([]int32, span+1)
		for _, t := range tuples {
			ci.offsets[t[col]-lo+1]++
		}
		for i := int64(1); i <= span; i++ {
			ci.offsets[i] += ci.offsets[i-1]
		}
		cur := make([]int32, span)
		copy(cur, ci.offsets[:span])
		for pos, t := range tuples {
			k := t[col] - lo
			ci.positions[cur[k]] = int32(pos)
			cur[k]++
		}
		for i := int64(0); i < span; i++ {
			if sz := ci.offsets[i+1] - ci.offsets[i]; sz > 0 {
				ci.distinct++
				if sz > ci.maxBucket {
					ci.maxBucket = sz
				}
			}
		}
		return ci
	}
	// Sparse: assign dense key ids in first-seen order, then the same
	// counting pass over key ids.
	ci.sparse = make(map[Value]int32)
	counts := make([]int32, 0, 16)
	for _, t := range tuples {
		v := t[col]
		k, ok := ci.sparse[v]
		if !ok {
			k = int32(len(counts))
			ci.sparse[v] = k
			counts = append(counts, 0)
		}
		counts[k]++
	}
	ci.offsets = make([]int32, len(counts)+1)
	ci.distinct = int32(len(counts))
	for i, c := range counts {
		ci.offsets[i+1] = ci.offsets[i] + c
		if c > ci.maxBucket {
			ci.maxBucket = c
		}
	}
	cur := make([]int32, len(counts))
	copy(cur, ci.offsets[:len(counts)])
	for pos, t := range tuples {
		k := ci.sparse[t[col]]
		ci.positions[cur[k]] = int32(pos)
		cur[k]++
	}
	return ci
}

// csrRange returns the built posting range for v (excluding overflow).
func (ci *colIndex) csrRange(v Value) []int32 {
	if ci.dense {
		if v < ci.lo || v > ci.hi {
			return nil
		}
		k := int64(v) - int64(ci.lo)
		return ci.positions[ci.offsets[k]:ci.offsets[k+1]]
	}
	k, ok := ci.sparse[v]
	if !ok {
		return nil
	}
	return ci.positions[ci.offsets[k]:ci.offsets[k+1]]
}

// clone returns a copy safe for an independent writer. The CSR body
// (offsets, positions) and the sparse key map are immutable after build —
// inserts only touch the overflow, and a rebuild replaces the whole index —
// so they are shared; only the overflow map is copied (its slices are
// shared too: append grows past the frozen length, which no reader of the
// original can see).
func (ci *colIndex) clone() *colIndex {
	out := *ci
	if ci.extra != nil {
		out.extra = make(map[Value][]int32, len(ci.extra))
		for v, ps := range ci.extra {
			out.extra[v] = ps
		}
	}
	return &out
}

// add records a newly inserted tuple position in the overflow.
func (ci *colIndex) add(v Value, pos int32) {
	if ci.extra == nil {
		ci.extra = make(map[Value][]int32)
	}
	ci.extra[v] = append(ci.extra[v], pos)
	ci.nextra++
}

// stale reports whether the overflow has outgrown the built prefix enough
// that the writer should fold it back into a fresh CSR build.
func (ci *colIndex) stale() bool {
	return ci.nextra > int(ci.built)/2+64
}

// count returns the number of positions whose column value is v.
func (ci *colIndex) count(v Value) int {
	n := len(ci.csrRange(v))
	if ci.nextra > 0 {
		n += len(ci.extra[v])
	}
	return n
}

// lookup returns every position whose column value is v. When v has no
// overflow the returned slice is a view of the CSR positions array (no
// allocation); otherwise a merged copy is returned.
func (ci *colIndex) lookup(v Value) []int32 {
	base := ci.csrRange(v)
	if ci.nextra == 0 {
		return base
	}
	ext := ci.extra[v]
	if len(ext) == 0 {
		return base
	}
	out := make([]int32, 0, len(base)+len(ext))
	out = append(out, base...)
	return append(out, ext...)
}
