package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestShardOfRangeAndStability pins the routing invariant: every value maps
// into [0, shards), the same value always maps to the same shard for a given
// shard count, and shard counts <= 1 collapse to shard 0.
func TestShardOfRangeAndStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := Value(rng.Intn(1 << 20))
		for _, shards := range []int{-1, 0, 1, 2, 3, 7, 16} {
			s := ShardOf(v, shards)
			if shards <= 1 {
				if s != 0 {
					t.Fatalf("ShardOf(%d, %d) = %d, want 0", v, shards, s)
				}
				continue
			}
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", v, shards, s)
			}
			if again := ShardOf(v, shards); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", v, shards, s, again)
			}
		}
	}
}

// TestShardOfSpreadsDenseValues: interned values are dense small integers;
// the hash must not send consecutive values to consecutive shards in
// lockstep (raw modulo would), and no shard may starve on a dense range.
func TestShardOfSpreadsDenseValues(t *testing.T) {
	const shards, n = 8, 4096
	counts := make([]int, shards)
	lockstep := 0
	for v := 0; v < n; v++ {
		s := ShardOf(Value(v), shards)
		counts[s]++
		if ShardOf(Value(v+1), shards) == (s+1)%shards {
			lockstep++
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received none of %d dense values", s, n)
		}
		// A uniform spread gives n/shards = 512 per shard; allow wide slack.
		if c < n/shards/4 || c > n/shards*4 {
			t.Errorf("shard %d holds %d of %d values — badly skewed", s, c, n)
		}
	}
	if lockstep > n/4 {
		t.Errorf("%d of %d consecutive values land in consecutive shards — hash correlates with insertion order", lockstep, n)
	}
}

// tupleKey renders a tuple for multiset comparison.
func tupleKey(tp Tuple) string { return fmt.Sprint([]Value(tp)) }

// TestPartitionTuplesByHashExhaustiveDisjoint: the partition is exactly the
// input — every tuple appears in exactly one group (nothing dropped, nothing
// duplicated), in the group ShardOf picks, and the result always has
// len == shards even when groups are empty.
func TestPartitionTuplesByHashExhaustiveDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ tuples, domain, col, shards int }{
		{0, 1, 0, 4},    // empty input: all groups empty, still len == shards
		{3, 100, 0, 16}, // more shards than tuples
		{500, 40, 1, 4}, // routine case, col 1
		{500, 2, 0, 8},  // 2-value domain: at most 2 non-empty groups
		{200, 1, 0, 5},  // single hot key: exactly 1 non-empty group
	} {
		in := make([]Tuple, tc.tuples)
		for i := range in {
			in[i] = Tuple{Value(rng.Intn(tc.domain)), Value(rng.Intn(tc.domain))}
		}
		groups := PartitionTuplesByHash(in, tc.col, tc.shards)
		if len(groups) != tc.shards {
			t.Fatalf("%+v: %d groups, want %d", tc, len(groups), tc.shards)
		}
		want := map[string]int{}
		for _, tp := range in {
			want[tupleKey(tp)]++
		}
		got := map[string]int{}
		total := 0
		for s, g := range groups {
			for _, tp := range g {
				if owner := ShardOf(tp[tc.col], tc.shards); owner != s {
					t.Fatalf("%+v: tuple %v in group %d, owner is %d", tc, tp, s, owner)
				}
				got[tupleKey(tp)]++
				total++
			}
		}
		if total != len(in) {
			t.Fatalf("%+v: partition holds %d tuples, input had %d", tc, total, len(in))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%+v: tuple %s appears %d times in partition, %d in input", tc, k, got[k], n)
			}
		}
	}
}

// TestPartitionTuplesByHashSkewedHotKey: a pathological distribution — one
// key holding most tuples — must still be exact: the hot key's group has
// all its tuples, the rest spread over the remaining groups.
func TestPartitionTuplesByHashSkewedHotKey(t *testing.T) {
	const shards = 4
	var in []Tuple
	for i := 0; i < 900; i++ { // hot key 0
		in = append(in, Tuple{0, Value(i)})
	}
	for i := 0; i < 100; i++ { // long tail
		in = append(in, Tuple{Value(1 + i), Value(i)})
	}
	groups := PartitionTuplesByHash(in, 0, shards)
	hot := ShardOf(0, shards)
	hotCount := 0
	for _, tp := range groups[hot] {
		if tp[0] == 0 {
			hotCount++
		}
	}
	if hotCount != 900 {
		t.Errorf("hot shard %d holds %d of 900 hot-key tuples", hot, hotCount)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(in) {
		t.Errorf("partition holds %d tuples, want %d", total, len(in))
	}
}

// TestRelationPartitionByHash: the relation-level partitioner agrees with
// ShardOf tuple by tuple and its groups alias the arena (same backing
// headers as At).
func TestRelationPartitionByHash(t *testing.T) {
	db := NewDatabase()
	if err := GenRandomGraph(db, "e", 50, 300, 3); err != nil {
		t.Fatal(err)
	}
	r := db.Rel("e")
	for _, shards := range []int{1, 2, 5} {
		groups := r.PartitionByHash(1, shards)
		if len(groups) != shards {
			t.Fatalf("shards=%d: %d groups", shards, len(groups))
		}
		total := 0
		for s, g := range groups {
			for _, tp := range g {
				if owner := ShardOf(tp[1], shards); owner != s {
					t.Fatalf("shards=%d: tuple %v in group %d, owner %d", shards, tp, s, owner)
				}
			}
			total += len(g)
		}
		if total != r.Len() {
			t.Fatalf("shards=%d: partition holds %d, relation holds %d", shards, total, r.Len())
		}
	}
}

// TestColCardinality: the estimate must never undercount so badly that
// capShards zeroes out a usable shard count — it is an upper-bounded
// estimate in [distinct values .. Len], exact on the degenerate cases the
// shard planner cares about (single hot key → 1).
func TestColCardinality(t *testing.T) {
	db := NewDatabase()
	// 10 distinct sources × 5 sinks each.
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			if _, err := db.Insert("e", fmt.Sprintf("s%d", i), fmt.Sprintf("t%d", j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := db.Rel("e")
	r.BuildIndexes()
	if c := r.ColCardinality(0); c < 10 || c > r.Len() {
		t.Errorf("col 0 cardinality %d, want in [10, %d]", c, r.Len())
	}
	if c := r.ColCardinality(1); c < 5 || c > r.Len() {
		t.Errorf("col 1 cardinality %d, want in [5, %d]", c, r.Len())
	}

	hot := NewDatabase()
	for i := 0; i < 64; i++ {
		if _, err := hot.Insert("h", "k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hr := hot.Rel("h")
	hr.BuildIndexes()
	if c := hr.ColCardinality(0); c != 1 {
		t.Errorf("single-key column cardinality %d, want 1", c)
	}
}
