package storage

// Hash partitioning for the sharded fixpoint engine. A shard owns the tuples
// whose value in one designated column (the frontier join column) hashes to
// it; the eval layer routes every freshly derived tuple to its owner shard's
// next-round frontier, so per-shard fixpoints stay disjoint between round
// barriers. The partitioner only groups tuple headers — tuples keep aliasing
// their relation's arena, and the same value always lands in the same shard
// for a given shard count (the routing invariant the exchange tests pin).

// HashValue spreads one interned value into a 64-bit hash. Interned values
// are small dense integers, so the raw word would put consecutive symbols in
// consecutive shards (perfectly correlated with insertion order, the worst
// case for a skewed workload); the multiply + fmix64 avalanche decorrelates
// them while staying allocation-free.
func HashValue(v Value) uint64 {
	return fmix64(hashSeed ^ uint64(uint32(v))*hashM1)
}

// ShardOf returns the shard in [0, shards) owning value v. Every shard count
// <= 1 collapses to shard 0 (the unsharded path).
func ShardOf(v Value, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(HashValue(v) % uint64(shards))
}

// PartitionTuplesByHash splits the tuples into exactly `shards` groups by
// ShardOf over column col. Unlike PartitionTuples (contiguous near-equal
// chunks for bulk fan-out), the assignment here is value-determined: two
// tuples sharing a join-column value always land in the same group, and the
// result always has len == shards even when some groups come back empty
// (shard indexes are identities across rounds, not packing slots). The
// returned slices hold the input's tuple headers; nothing is copied.
func PartitionTuplesByHash(tuples []Tuple, col, shards int) [][]Tuple {
	if shards <= 1 {
		return [][]Tuple{tuples}
	}
	out := make([][]Tuple, shards)
	if len(tuples) == 0 {
		return out
	}
	// Counting pass first so each group is allocated exactly once.
	counts := make([]int, shards)
	for _, t := range tuples {
		counts[ShardOf(t[col], shards)]++
	}
	for s, n := range counts {
		if n > 0 {
			out[s] = make([]Tuple, 0, n)
		}
	}
	for _, t := range tuples {
		s := ShardOf(t[col], shards)
		out[s] = append(out[s], t)
	}
	return out
}

// PartitionByHash hash-partitions the relation's tuples by column col into
// `shards` groups (see PartitionTuplesByHash). The groups alias the
// relation's arena: valid as long as the relation lives, safe to read
// concurrently with appends (the tuple prefix is immutable).
func (r *Relation) PartitionByHash(col, shards int) [][]Tuple {
	return PartitionTuplesByHash(r.tuples, col, shards)
}

// ColCardinality estimates the number of distinct values in the column —
// the fan-out statistic the sharded planner uses to bound its shard count
// (more shards than distinct join keys only guarantees empty shards). The
// estimate reads the column's CSR index when one exists (exact over the
// built prefix, plus one per overflow value); a published relation
// missing the index falls back to a strided read-only sample of at most
// sampleCap tuples (see sampleCol) rather than the raw tuple count, so a
// low-cardinality unindexed column cannot masquerade as key-like. Contract
// (pinned by TestColCardinalityContract): never 0 for a non-empty relation,
// never exceeds Len(). The indexed path never allocates and never builds an
// index on a published relation.
func (r *Relation) ColCardinality(col int) int {
	if col < 0 || col >= r.arity {
		return 0
	}
	n := len(r.tuples)
	if n == 0 {
		return 0
	}
	ci := r.probeIndex(col)
	if ci == nil {
		distinct, _ := sampleCol(r.tuples, col)
		return distinct
	}
	// Exact over the built prefix (counted during the CSR build's bucket
	// scan); overflow inserts may carry values the prefix never saw, so
	// each overflow value bounds the count from above by one.
	distinct := int(ci.distinct) + ci.nextra
	if distinct > n {
		distinct = n
	}
	return distinct
}
