package storage

// Allocation-free hashing for the tuple store. Tuples are hashed word by
// word (each Value is one 32-bit word) into a 64-bit code; membership is an
// open-addressing table of tuple positions, so neither Insert nor Contains
// allocates or materializes a string key. Collisions are resolved by linear
// probing plus a full value comparison against the arena, so a weak (or, in
// tests, deliberately constant) hash function only costs probes, never
// correctness.

const (
	hashSeed uint64 = 0x9e3779b97f4a7c15
	hashM1   uint64 = 0xff51afd7ed558ccd
	hashM2   uint64 = 0xc4ceb9fe1a85ec53
)

// hashWords folds the tuple's value words into a 64-bit hash. The final
// fmix64 avalanche matters: the membership table and the value set index
// with the low bits only.
func hashWords(t []Value) uint64 {
	h := hashSeed ^ uint64(len(t))*hashM1
	for _, v := range t {
		h ^= uint64(uint32(v))
		h *= hashM1
	}
	return fmix64(h)
}

// fmix64 is the 64-bit finalizer of MurmurHash3.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= hashM1
	h ^= h >> 29
	h *= hashM2
	h ^= h >> 32
	return h
}

// fmix32 is the 32-bit finalizer of MurmurHash3, used by ValueSet.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// ValueSet is an open-addressing set of interned values (which are always
// non-negative; negative values are reserved as the empty slot marker). The
// frontier kernels use it for BFS visited sets: Add and Contains never
// allocate once the table has room.
type ValueSet struct {
	table []Value // -1 marks an empty slot
	n     int
}

// NewValueSet returns a set pre-sized for about hint values.
func NewValueSet(hint int) *ValueSet {
	size := 16
	for size*3 < hint*4 {
		size *= 2
	}
	s := &ValueSet{table: make([]Value, size)}
	for i := range s.table {
		s.table[i] = -1
	}
	return s
}

// Len returns the number of values in the set.
func (s *ValueSet) Len() int { return s.n }

// Contains reports membership. Negative values are never members.
func (s *ValueSet) Contains(v Value) bool {
	if v < 0 || len(s.table) == 0 {
		return false
	}
	mask := uint32(len(s.table) - 1)
	i := fmix32(uint32(v)) & mask
	for {
		e := s.table[i]
		if e == v {
			return true
		}
		if e < 0 {
			return false
		}
		i = (i + 1) & mask
	}
}

// Add inserts v and reports whether it was new. v must be non-negative (an
// interned value).
func (s *ValueSet) Add(v Value) bool {
	if v < 0 {
		panic("storage: ValueSet.Add of negative value")
	}
	if len(s.table) == 0 || (s.n+1)*4 >= len(s.table)*3 {
		s.grow()
	}
	mask := uint32(len(s.table) - 1)
	i := fmix32(uint32(v)) & mask
	for {
		e := s.table[i]
		if e == v {
			return false
		}
		if e < 0 {
			s.table[i] = v
			s.n++
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *ValueSet) grow() {
	size := len(s.table) * 2
	if size < 16 {
		size = 16
	}
	old := s.table
	s.table = make([]Value, size)
	for i := range s.table {
		s.table[i] = -1
	}
	mask := uint32(size - 1)
	for _, v := range old {
		if v < 0 {
			continue
		}
		i := fmix32(uint32(v)) & mask
		for s.table[i] >= 0 {
			i = (i + 1) & mask
		}
		s.table[i] = v
	}
}

// Clone returns an independent copy of the set.
func (s *ValueSet) Clone() *ValueSet {
	return &ValueSet{table: append([]Value(nil), s.table...), n: s.n}
}

// Each calls f for every value in the set (in table order) until f returns
// false.
func (s *ValueSet) Each(f func(Value) bool) {
	for _, v := range s.table {
		if v >= 0 && !f(v) {
			return
		}
	}
}
