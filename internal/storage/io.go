package storage

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// WriteFacts serializes the database as Datalog facts, one per line,
// relations and tuples in deterministic order. The output parses back with
// ReadFacts (or the full parser).
func (db *Database) WriteFacts(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, pred := range db.Preds() {
		rel := db.rels[pred]
		lines := make([]string, 0, rel.Len())
		for _, t := range rel.Tuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = quoteIfNeeded(db.Syms.Name(v))
			}
			lines = append(lines, pred+"("+strings.Join(parts, ", ")+").")
		}
		sort.Strings(lines)
		for _, l := range lines {
			if _, err := bw.WriteString(l + "\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// quoteIfNeeded renders a constant name so that it parses back as a
// constant: lowercase identifiers and numbers stay bare, everything else is
// quoted.
func quoteIfNeeded(name string) string {
	if name == "" {
		return strconv.Quote(name)
	}
	runes := []rune(name)
	bare := unicode.IsLower(runes[0]) || unicode.IsDigit(runes[0]) || runes[0] == '-'
	if bare {
		for _, r := range runes[1:] {
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '\'' {
				bare = false
				break
			}
		}
	}
	if bare {
		return name
	}
	return strconv.Quote(name)
}

// ReadFacts parses a stream of ground facts (the WriteFacts format,
// comments allowed) into the database. Rules and queries are rejected.
func (db *Database) ReadFacts(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return db.LoadFacts(string(data))
}

// LoadFacts parses ground facts from source text into the database. The
// scanner reuses one name buffer and one value buffer across facts — the
// relation's Insert copies values into its arena, so bulk loads allocate
// per new tuple only, not per parsed line. Facts are inserted as they
// parse; a mid-stream syntax error leaves the earlier facts in place. Use
// ScanFacts first when a batch must be all-or-nothing.
func (db *Database) LoadFacts(src string) error {
	var (
		vals     Tuple
		lastPred string
		lastRel  *Relation
	)
	return scanFactSrc(src, func(pred string, names []string) error {
		if lastRel == nil || pred != lastPred || lastRel.Arity() != len(names) {
			rel, err := db.Ensure(pred, len(names))
			if err != nil {
				return err
			}
			lastPred, lastRel = pred, rel
		}
		if cap(vals) < len(names) {
			vals = make(Tuple, len(names))
		}
		vals = vals[:len(names)]
		for j, name := range names {
			vals[j] = db.Syms.Intern(name)
		}
		lastRel.Insert(vals)
		return nil
	})
}

// Fact is one scanned ground fact: a predicate name and its constant
// arguments, still as names (not interned).
type Fact struct {
	Pred string
	Args []string
}

// ScanFacts parses a stream of ground facts without touching any database.
// Callers that need all-or-nothing ingest (the serving layer's /facts
// endpoint) scan and validate the whole batch first, then insert.
func ScanFacts(src string) ([]Fact, error) {
	var out []Fact
	err := scanFactSrc(src, func(pred string, names []string) error {
		out = append(out, Fact{Pred: pred, Args: append([]string(nil), names...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanFactSrc drives the fact scanner, calling emit for every parsed fact.
// The names slice is reused between calls — emit must copy it to retain it.
func scanFactSrc(src string, emit func(pred string, names []string) error) error {
	// The storage package cannot depend on the parser (the parser has no
	// dependencies on storage, but keeping the layering acyclic and the
	// format trivial, a small scanner suffices).
	i := 0
	n := len(src)
	skipSpace := func() {
		for i < n {
			switch {
			case src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r':
				i++
			case src[i] == '%':
				for i < n && src[i] != '\n' {
					i++
				}
			case src[i] == '/' && i+1 < n && src[i+1] == '/':
				for i < n && src[i] != '\n' {
					i++
				}
			default:
				return
			}
		}
	}
	ident := func() (string, error) {
		start := i
		for i < n && (isIdentByte(src[i]) || (i == start && src[i] == '-')) {
			i++
		}
		if i == start {
			return "", fmt.Errorf("storage: expected identifier at byte %d", i)
		}
		return src[start:i], nil
	}
	var names []string
	for {
		skipSpace()
		if i >= n {
			return nil
		}
		pred, err := ident()
		if err != nil {
			return err
		}
		skipSpace()
		if i >= n || src[i] != '(' {
			return fmt.Errorf("storage: expected '(' after %s", pred)
		}
		i++
		names = names[:0]
		for {
			skipSpace()
			if i < n && src[i] == '"' {
				// Quoted constant.
				j := i + 1
				var sb strings.Builder
				for j < n && src[j] != '"' {
					if src[j] == '\\' && j+1 < n {
						j++
					}
					sb.WriteByte(src[j])
					j++
				}
				if j >= n {
					return fmt.Errorf("storage: unterminated string at byte %d", i)
				}
				names = append(names, sb.String())
				i = j + 1
			} else {
				name, err := ident()
				if err != nil {
					return err
				}
				names = append(names, name)
			}
			skipSpace()
			if i < n && src[i] == ',' {
				i++
				continue
			}
			break
		}
		if i >= n || src[i] != ')' {
			return fmt.Errorf("storage: expected ')' in %s fact", pred)
		}
		i++
		skipSpace()
		if i >= n || src[i] != '.' {
			return fmt.Errorf("storage: expected '.' after %s fact", pred)
		}
		i++
		if err := emit(pred, names); err != nil {
			return err
		}
	}
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '\'' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
