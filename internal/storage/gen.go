package storage

import (
	"fmt"
	"math/rand"
)

// Generators for synthetic extensional databases. The 1988 paper reports no
// datasets; every experiment here runs on these deterministic workloads
// (seeded PRNG), as recorded in DESIGN.md.

// node interns the canonical name of node i.
func node(db *Database, i int) Value {
	return db.Syms.Intern(fmt.Sprintf("n%d", i))
}

// GenChain fills pred with a simple chain n0 -> n1 -> … -> n(n-1): n-1
// binary tuples. The classic linear workload for transitive closure.
func GenChain(db *Database, pred string, n int) error {
	for i := 0; i+1 < n; i++ {
		if _, err := db.InsertValues(pred, node(db, i), node(db, i+1)); err != nil {
			return err
		}
	}
	return nil
}

// GenCycle fills pred with a directed cycle over n nodes.
func GenCycle(db *Database, pred string, n int) error {
	for i := 0; i < n; i++ {
		if _, err := db.InsertValues(pred, node(db, i), node(db, (i+1)%n)); err != nil {
			return err
		}
	}
	return nil
}

// GenTree fills pred with a complete tree of the given branching factor and
// depth, edges pointing from parent to child. Node 0 is the root.
func GenTree(db *Database, pred string, branching, depth int) error {
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var nf []int
		for _, p := range frontier {
			for b := 0; b < branching; b++ {
				c := next
				next++
				if _, err := db.InsertValues(pred, node(db, p), node(db, c)); err != nil {
					return err
				}
				nf = append(nf, c)
			}
		}
		frontier = nf
	}
	return nil
}

// GenRandomGraph fills pred with m distinct random directed edges over n
// nodes, deterministically from seed.
func GenRandomGraph(db *Database, pred string, n, m int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	r, err := db.Ensure(pred, 2)
	if err != nil {
		return err
	}
	buf := make(Tuple, 2)
	for r.Len() < m {
		buf[0], buf[1] = node(db, rng.Intn(n)), node(db, rng.Intn(n))
		r.Insert(buf)
	}
	return nil
}

// GenRandomRelation fills pred with m distinct random tuples of the given
// arity over a domain of n constants, deterministically from seed.
func GenRandomRelation(db *Database, pred string, arity, n, m int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	r, err := db.Ensure(pred, arity)
	if err != nil {
		return err
	}
	if m > pow(n, arity) {
		m = pow(n, arity)
	}
	t := make(Tuple, arity)
	for r.Len() < m {
		for i := range t {
			t[i] = node(db, rng.Intn(n))
		}
		r.Insert(t)
	}
	return nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		if out > 1<<30 {
			return 1 << 30
		}
		out *= b
	}
	return out
}

// GenGrid fills pred with the edges of a w×h grid (right and down),
// producing many alternative paths of equal length — a worst case for
// duplicate derivations.
func GenGrid(db *Database, pred string, w, h int) error {
	id := func(x, y int) Value { return db.Syms.Intern(fmt.Sprintf("g%d_%d", x, y)) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if _, err := db.InsertValues(pred, id(x, y), id(x+1, y)); err != nil {
					return err
				}
			}
			if y+1 < h {
				if _, err := db.InsertValues(pred, id(x, y), id(x, y+1)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
