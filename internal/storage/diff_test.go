package storage

import "testing"

// TestDiffSnapshotsBasic: the diff between two epochs is exactly the
// inserted suffix, per predicate; untouched predicates are absent.
func TestDiffSnapshotsBasic(t *testing.T) {
	db := NewDatabase()
	for _, f := range [][]string{{"e", "a", "b"}, {"e", "b", "c"}, {"r", "x"}} {
		if _, err := db.Insert(f[0], f[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	old := db.Snapshot()
	for _, f := range [][]string{{"e", "c", "d"}, {"e", "d", "e"}} {
		if _, err := db.Insert(f[0], f[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	cur := db.Snapshot()

	diff, ok := DiffSnapshots(old, cur)
	if !ok {
		t.Fatal("append-only growth reported as not diffable")
	}
	if diff.Empty() || diff.Size() != 2 {
		t.Fatalf("diff size = %d, want 2", diff.Size())
	}
	if len(diff.Inserted["e"]) != 2 {
		t.Fatalf("e delta = %d tuples, want 2", len(diff.Inserted["e"]))
	}
	if _, ok := diff.Inserted["r"]; ok {
		t.Error("untouched predicate r appears in the diff")
	}
	// The delta is the suffix, in insertion order.
	syms := db.Syms
	c, _ := syms.Lookup("c")
	d, _ := syms.Lookup("d")
	if got := diff.Inserted["e"][0]; got[0] != c || got[1] != d {
		t.Errorf("first delta tuple = %v, want (c, d)", got)
	}
}

// TestDiffSnapshotsNewPred: a predicate born after the old snapshot
// contributes all of its tuples.
func TestDiffSnapshotsNewPred(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	old := db.Snapshot()
	if _, err := db.Insert("fresh", "x", "y"); err != nil {
		t.Fatal(err)
	}
	cur := db.Snapshot()
	diff, ok := DiffSnapshots(old, cur)
	if !ok || len(diff.Inserted["fresh"]) != 1 {
		t.Fatalf("ok=%v fresh delta=%d, want 1 tuple", ok, len(diff.Inserted["fresh"]))
	}
}

// TestDiffSnapshotsEmpty: duplicate-only writes advance the epoch but the
// diff is empty (and same-snapshot diffs are trivially empty).
func TestDiffSnapshotsEmpty(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	old := db.Snapshot()
	if same, ok := DiffSnapshots(old, old); !ok || !same.Empty() {
		t.Errorf("same-snapshot diff: ok=%v empty=%v", ok, same.Empty())
	}
	if _, err := db.Insert("e", "a", "b"); err != nil { // duplicate
		t.Fatal(err)
	}
	cur := db.Snapshot()
	if cur.Epoch() == old.Epoch() {
		t.Fatal("duplicate insert did not advance the epoch")
	}
	diff, ok := DiffSnapshots(old, cur)
	if !ok || !diff.Empty() {
		t.Errorf("duplicate-only diff: ok=%v empty=%v, want true/true", ok, diff.Empty())
	}
}

// TestDiffSnapshotsReplaced: replacing a relation wholesale (Set with a
// fresh header — different lineage) is not an insert-only delta.
func TestDiffSnapshotsReplaced(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	old := db.Snapshot()
	repl := NewRelation(2)
	v := db.Syms.Intern("a")
	w := db.Syms.Intern("b")
	repl.Insert(Tuple{v, w})
	db.Set("e", repl)
	cur := db.Snapshot()
	if _, ok := DiffSnapshots(old, cur); ok {
		t.Error("replaced relation reported as insert-only diffable")
	}
}

// TestDiffSnapshotsDropped: a predicate present in the old snapshot but
// gone from the new one cannot be expressed as inserts.
func TestDiffSnapshotsDropped(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	old := db.Snapshot()
	db2 := NewDatabaseWithSymbols(db.Syms)
	if _, err := db2.Insert("other", "x"); err != nil {
		t.Fatal(err)
	}
	db2.Snapshot()
	if _, err := db2.Insert("other", "y"); err != nil {
		t.Fatal(err)
	}
	cur := db2.Snapshot() // epoch 2: past the equal-epoch fast path
	if _, ok := DiffSnapshots(old, cur); ok {
		t.Error("dropped predicate reported as diffable")
	}
}

// TestDiffSnapshotsLineageAcrossCow: growth through the snapshot machinery
// (Ensure cow-clones the frozen relation) preserves lineage, so diffs keep
// working across many epochs.
func TestDiffSnapshotsLineageAcrossCow(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "n0", "n1"); err != nil {
		t.Fatal(err)
	}
	snaps := []*Snapshot{db.Snapshot()}
	for i := 1; i < 5; i++ {
		if _, err := db.Insert("e", "n0", "m"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, db.Snapshot())
	}
	// Every (older, newer) pair diffs cleanly with the right size.
	for i := 0; i < len(snaps); i++ {
		for j := i; j < len(snaps); j++ {
			diff, ok := DiffSnapshots(snaps[i], snaps[j])
			if !ok {
				t.Fatalf("snap %d → %d not diffable", i, j)
			}
			if diff.Size() != j-i {
				t.Fatalf("snap %d → %d: size %d, want %d", i, j, diff.Size(), j-i)
			}
		}
	}
}
