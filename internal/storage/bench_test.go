package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchRelation(n int) *Relation {
	rng := rand.New(rand.NewSource(1))
	r := NewRelation(2)
	for r.Len() < n {
		r.Insert(Tuple{Value(rng.Intn(n)), Value(rng.Intn(n))})
	}
	return r
}

func BenchmarkRelationInsert(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			tuples := make([]Tuple, n)
			for i := range tuples {
				tuples[i] = Tuple{Value(rng.Intn(n)), Value(rng.Intn(n))}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := NewRelation(2)
				for _, t := range tuples {
					r.Insert(t)
				}
			}
		})
	}
}

func BenchmarkRelationIndexedLookup(b *testing.B) {
	r := benchRelation(10000)
	r.LookupCol(0, 1) // build the index outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.LookupCol(0, Value(i%100)); len(got) == 0 {
			_ = got
		}
	}
}

func BenchmarkEachMatchIndexedVsScan(b *testing.B) {
	r := benchRelation(10000)
	b.Run("indexed", func(b *testing.B) {
		bound := []bool{true, false}
		vals := Tuple{0, 0}
		for i := 0; i < b.N; i++ {
			vals[0] = Value(i % 100)
			r.EachMatch(bound, vals, func(Tuple) bool { return true })
		}
	})
	b.Run("scan", func(b *testing.B) {
		bound := []bool{false, false}
		vals := Tuple{0, 0}
		for i := 0; i < b.N; i++ {
			r.EachMatch(bound, vals, func(Tuple) bool { return true })
		}
	})
}

func BenchmarkTupleKey(b *testing.B) {
	t := Tuple{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}

func BenchmarkGenerators(b *testing.B) {
	b.Run("chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := NewDatabase()
			GenChain(db, "e", 1000)
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := NewDatabase()
			GenRandomGraph(db, "e", 500, 1000, 1)
		}
	})
}
