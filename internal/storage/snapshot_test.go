package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotImmutability: writes after Snapshot never change what the
// snapshot sees, and the writer's view keeps advancing.
func TestSnapshotImmutability(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("a", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	if snap.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", snap.Epoch())
	}
	before := snap.Rel("a").Len()

	// Post-snapshot writes COW the relation: the snapshot view must not move.
	for i := 5; i < 50; i++ {
		if _, err := db.Insert("a", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("fresh", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if got := snap.Rel("a").Len(); got != before {
		t.Errorf("snapshot relation grew from %d to %d after writes", before, got)
	}
	if snap.Rel("fresh") != nil {
		t.Error("snapshot sees a relation created after it was taken")
	}
	if got := db.Rel("a").Len(); got != 50 {
		t.Errorf("writer view has %d tuples, want 50", got)
	}

	// The snapshot's tuples are still probeable through its indexes.
	r := snap.Rel("a")
	v0, ok := snap.Syms().Lookup("n0")
	if !ok {
		t.Fatal("n0 missing from the shared symbol table")
	}
	if n := len(r.LookupCol(0, v0)); n != 1 {
		t.Errorf("snapshot index lookup found %d postings, want 1", n)
	}
}

// TestSnapshotEpochStability: snapshots of a quiet database share the epoch
// (and the object); any write dirties it and the next snapshot advances.
func TestSnapshotEpochStability(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("a", "x", "y"); err != nil {
		t.Fatal(err)
	}
	s1 := db.Snapshot()
	s2 := db.Snapshot()
	if s1 != s2 || s1.Epoch() != s2.Epoch() {
		t.Errorf("quiet database yielded distinct snapshots (%d vs %d)", s1.Epoch(), s2.Epoch())
	}
	if _, err := db.Insert("a", "y", "z"); err != nil {
		t.Fatal(err)
	}
	s3 := db.Snapshot()
	if s3.Epoch() != s1.Epoch()+1 {
		t.Errorf("post-write epoch = %d, want %d", s3.Epoch(), s1.Epoch()+1)
	}
	if db.Epoch() != s3.Epoch() {
		t.Errorf("db.Epoch() = %d, want %d", db.Epoch(), s3.Epoch())
	}
}

// TestSnapshotCOWSharesArena: the copy-on-write clone must share the frozen
// arena blocks (no tuple copying) — the clone's first block is the same
// backing array as the original's.
func TestSnapshotCOWSharesArena(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 100; i++ {
		if _, err := db.Insert("a", fmt.Sprintf("n%d", i), "z"); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	frozen := snap.Rel("a")
	if _, err := db.Insert("a", "new", "z"); err != nil {
		t.Fatal(err)
	}
	writer := db.Rel("a")
	if writer == frozen {
		t.Fatal("write did not clone the frozen relation header")
	}
	if frozen.Len() != 100 || writer.Len() != 101 {
		t.Fatalf("len split = %d/%d, want 100/101", frozen.Len(), writer.Len())
	}
	// Same backing tuple storage: tuple 0 of both views aliases one array.
	ft, wt := frozen.At(0), writer.At(0)
	if &ft[0] != &wt[0] {
		t.Error("COW clone copied the arena (tuple 0 has distinct backing)")
	}
}

// TestFrozenRelationWritePanics is the Reset regression test: recycling a
// frozen relation's arena blocks while snapshot readers alias them would
// corrupt those readers, so Reset (and Insert) on a frozen header must
// refuse loudly.
func TestFrozenRelationWritePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a frozen relation did not panic", name)
			}
		}()
		f()
	}
	db := NewDatabase()
	if _, err := db.Insert("a", "x", "y"); err != nil {
		t.Fatal(err)
	}
	db.Snapshot()
	r := db.Rel("a") // frozen by the snapshot
	if !r.Frozen() {
		t.Fatal("snapshot did not freeze the relation")
	}
	mustPanic("Reset", func() { r.Reset(2) })
	mustPanic("Insert", func() { r.Insert(Tuple{0, 0}) })

	// Writing through the database is the sanctioned path: it clones first.
	if _, err := db.Insert("a", "y", "z"); err != nil {
		t.Fatal(err)
	}
	if db.Rel("a").Frozen() {
		t.Error("COW clone is frozen; writer would be stuck")
	}
	// And the writer's fresh header may Reset freely again.
	db.Rel("a").Reset(2)
}

// TestSnapshotConcurrentReaders races one writer (inserting and snapshotting)
// against many readers probing pinned snapshots. Run under -race by
// `make race`; correctness assertion: every reader sees exactly the tuple
// count its snapshot pinned.
func TestSnapshotConcurrentReaders(t *testing.T) {
	db := NewDatabase()
	var mu sync.Mutex // writer lock: Snapshot/Insert need exclusive access
	for i := 0; i < 10; i++ {
		if _, err := db.Insert("a", fmt.Sprintf("n%d", i), "z"); err != nil {
			t.Fatal(err)
		}
	}
	take := func() (*Snapshot, int) {
		mu.Lock()
		defer mu.Unlock()
		s := db.Snapshot()
		return s, s.Rel("a").Len()
	}

	const readers = 8
	const rounds = 200
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	// Writer: keep inserting and re-snapshotting until the readers finish.
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			if _, err := db.Insert("a", fmt.Sprintf("w%d", i), "z"); err != nil {
				t.Error(err)
				mu.Unlock()
				return
			}
			db.Snapshot()
			mu.Unlock()
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap, want := take()
				rel := snap.Rel("a")
				if got := rel.Len(); got != want {
					t.Errorf("reader %d: pinned len moved %d -> %d", r, want, got)
					return
				}
				// Interning through the shared symbol table while the writer
				// interns too must be safe.
				v := snap.Syms().Intern(fmt.Sprintf("n%d", i%10))
				if n := len(rel.LookupCol(0, v)); n > 1 {
					t.Errorf("reader %d: %d postings for one key", r, n)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
}
