package storage

// Column statistics for the cost-based join planner. The CSR build already
// makes one counting pass over every bucket, so distinct counts and the
// worst-case bucket size (fan-out) come for free at build time; this file
// exposes them — adjusted for post-build overflow inserts — together with a
// sampled-scan fallback for columns that have no index, and the statistics
// version stamp the plan cache keys on.

import "sync/atomic"

// statsVersion hands out globally unique statistics stamps. A plain global
// counter (not per-relation) so that comparing two stamps never needs to
// know which relation produced them: newer stamp == newer statistics.
var statsVersion atomic.Uint64

// ColStats summarizes the value distribution of one column:
//
//   - Distinct: estimated number of distinct values (exact when a CSR index
//     covers all tuples, an upper-bounded estimate otherwise).
//   - MaxBucket: the largest number of tuples sharing one value — the
//     worst-case fan-out of a bound probe on this column, and the skew
//     measure the cost model and the shard-column picker both want (a hot
//     key makes the average misleading).
//   - AvgBucket: Len()/Distinct, the mean fan-out.
//
// The zero value describes an empty column.
type ColStats struct {
	Distinct  int
	MaxBucket int
	AvgBucket float64
}

// sampleCap bounds the sampled-scan fallback used when a column has no CSR
// index: at most this many tuples are inspected, taken at a fixed stride so
// runs of equal values (sorted inserts) still land in the sample.
const sampleCap = 512

// sampleCol estimates the distinct count and max bucket of a column by a
// strided read-only scan of at most sampleCap tuples. Returns extrapolated
// estimates clamped to [1, n] for a non-empty input. It allocates a small
// counting map but never touches the relation's indexes, so it is safe on a
// published relation shared by concurrent readers.
func sampleCol(tuples []Tuple, col int) (distinct, maxBucket int) {
	n := len(tuples)
	if n == 0 {
		return 0, 0
	}
	k := n
	if k > sampleCap {
		k = sampleCap
	}
	stride := n / k
	if stride < 1 {
		stride = 1
	}
	counts := make(map[Value]int, k)
	seen := 0
	maxFreq := 0
	for i := 0; i < n && seen < k; i += stride {
		v := tuples[i][col]
		counts[v]++
		if counts[v] > maxFreq {
			maxFreq = counts[v]
		}
		seen++
	}
	d := len(counts)
	if d == seen {
		// Every sampled value was distinct: the column looks key-like;
		// extrapolate to the full relation.
		distinct = n
	} else {
		// Scale the sampled distinct count by the sampling fraction. This
		// over-estimates for heavy-tailed distributions, but the clamp below
		// keeps it inside the only bounds that matter to the planner.
		distinct = d * n / seen
	}
	if distinct < d {
		distinct = d
	}
	if distinct > n {
		distinct = n
	}
	if distinct < 1 {
		distinct = 1
	}
	maxBucket = maxFreq * n / seen
	if maxBucket < maxFreq {
		maxBucket = maxFreq
	}
	if maxBucket > n {
		maxBucket = n
	}
	if maxBucket < 1 {
		maxBucket = 1
	}
	return distinct, maxBucket
}

// ColStats returns the column's distribution statistics. When a CSR index
// exists the numbers come from its build-time bucket scan (exact over the
// built prefix, adjusted for overflow inserts by walking the overflow map);
// otherwise a strided sample of at most sampleCap tuples estimates them.
// ColStats never builds an index — unlike EachMatch's lazy pre-publish path
// it may be called concurrently by planners racing over a shared database —
// and never returns Distinct or MaxBucket outside [1, Len()] for a
// non-empty column.
func (r *Relation) ColStats(col int) ColStats {
	if col < 0 || col >= r.arity || len(r.tuples) == 0 {
		return ColStats{}
	}
	n := len(r.tuples)
	ci := r.colIdx[col]
	var distinct, maxBucket int
	if ci == nil {
		distinct, maxBucket = sampleCol(r.tuples, col)
	} else {
		distinct, maxBucket = int(ci.distinct), int(ci.maxBucket)
		if ci.nextra > 0 {
			// Fold the overflow in exactly: each overflow value either grows
			// an existing bucket or opens a new one.
			for v, ps := range ci.extra {
				b := len(ci.csrRange(v))
				if b == 0 {
					distinct++
				}
				if b+len(ps) > maxBucket {
					maxBucket = b + len(ps)
				}
			}
		}
	}
	if distinct > n {
		distinct = n
	}
	if distinct < 1 {
		distinct = 1
	}
	if maxBucket > n {
		maxBucket = n
	}
	if maxBucket < 1 {
		maxBucket = 1
	}
	return ColStats{
		Distinct:  distinct,
		MaxBucket: maxBucket,
		AvgBucket: float64(n) / float64(distinct),
	}
}

// MatchCount returns the number of postings EachMatch would walk for the
// partial binding: the most selective bound column's bucket size, or Len()
// when no column is bound. It is an upper bound on the number of matching
// tuples (EachMatch re-checks the other bound columns per posting) and the
// exact enumeration cost. Same index contract as EachMatch: builds lazily
// pre-publish, returns 0 for a published relation missing the index.
func (r *Relation) MatchCount(bound []bool, vals Tuple) int {
	best := -1
	for col, b := range bound {
		if !b {
			continue
		}
		ci := r.probeIndex(col)
		if ci == nil {
			return 0
		}
		n := ci.count(vals[col])
		if best == -1 || n < best {
			best = n
		}
	}
	if best == -1 {
		return len(r.tuples)
	}
	return best
}

// StatsVersion returns the relation's statistics stamp: 0 before any index
// publish, otherwise the globally unique version of the last rebuild that
// changed its column statistics (BuildIndexes, CompactIndexes, or an
// overflow-triggered staleness rebuild during Insert).
func (r *Relation) StatsVersion() uint64 { return r.statsVer }

// StatsEpoch folds every relation's statistics stamp into one number: the
// maximum StatsVersion present. Any rebuild anywhere in the database changes
// it, so plan caches can use it as the coarse "statistics generation" part
// of their keys. Requires no concurrent writer (same contract as reads).
func (db *Database) StatsEpoch() uint64 {
	var max uint64
	for _, r := range db.rels {
		if v := r.statsVer; v > max {
			max = v
		}
	}
	return max
}
