package storage

// Epoch-based snapshots. A Snapshot pins one consistent state of a Database
// so that any number of goroutines can evaluate queries against it while
// the owning database keeps accepting writes. Pinning is cheap: every
// relation's indexes are materialized (freezing its read path), the header
// is marked frozen, and the predicate map is copied — no tuple, arena block
// or index is duplicated. The first post-snapshot write to a pinned
// relation goes through the Database's copy-on-write step (Relation.cowClone),
// which clones only the header, the dedup table and the index overflow;
// the frozen arena blocks are shared forever and never recycled (Reset on
// a frozen relation panics), so a reader holding an old epoch can never
// observe a torn or reused tuple.
//
// Concurrency contract: Database.Snapshot and all Database/Relation writes
// require the same single-writer exclusive access as before; everything
// reachable from a returned *Snapshot is immutable and safe for unlimited
// concurrent readers (the shared Symbols table is internally locked, so
// the writer may keep interning new constants while readers resolve names).

// Snapshot is an immutable view of a Database at one epoch.
type Snapshot struct {
	epoch uint64
	db    *Database
}

// Epoch returns the snapshot's epoch: 1 for the first snapshot of a
// database, advancing by one for each snapshot that observed new writes.
// Result and plan caches key cached artifacts by it.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// DB returns the snapshot's database view: it shares the owning database's
// symbol table and the frozen relation headers. The view is read-only by
// contract — every evaluation engine treats its input database as
// read-only (they build private working databases for derived relations) —
// and every relation in it is published and frozen, so any number of
// evaluations may run against it concurrently.
func (s *Snapshot) DB() *Database { return s.db }

// Rel returns the frozen relation for pred, or nil when absent at the
// snapshot's epoch.
func (s *Snapshot) Rel(pred string) *Relation { return s.db.Rel(pred) }

// Preds returns the sorted predicate names present at the snapshot's epoch.
func (s *Snapshot) Preds() []string { return s.db.Preds() }

// Syms returns the shared symbol table.
func (s *Snapshot) Syms() *Symbols { return s.db.Syms }

// Epoch returns the database's current epoch: the epoch of the last
// snapshot taken (0 when none has been).
func (db *Database) Epoch() uint64 { return db.epoch }

// Snapshot pins the database's current contents as an immutable epoch.
// When nothing changed since the last snapshot the same Snapshot (same
// epoch) is returned, so repeated snapshots of a quiet database keep
// result-cache keys stable. Requires the writer's exclusive access, like
// every mutating method; the returned snapshot is free of that constraint.
func (db *Database) Snapshot() *Snapshot {
	if db.snap != nil && !db.dirty {
		return db.snap
	}
	db.epoch++
	view := &Database{Syms: db.Syms, rels: make(map[string]*Relation, len(db.rels))}
	for pred, r := range db.rels {
		r.Freeze()
		view.rels[pred] = r
	}
	db.snap = &Snapshot{epoch: db.epoch, db: view}
	db.dirty = false
	return db.snap
}
