package storage

// Snapshot diffs. The arena is append-only and copy-on-write headers share
// the tuple history of the relation they cloned (same lineage), so the
// tuples inserted between two snapshots of the same database are exactly
// the suffix past the older header's length — no per-tuple comparison, no
// allocation beyond the per-predicate slice headers. When a relation's
// history was replaced between the epochs (Set with a fresh relation,
// Clone, Reset), the lineages differ and the diff is not expressible as an
// insert-only suffix; DiffSnapshots then reports !ok and callers must fall
// back to a full recompute.

// SnapshotDiff is the set of tuples inserted between two snapshots,
// per predicate. The tuple slices alias the newer snapshot's frozen arena
// and must be treated as read-only.
type SnapshotDiff struct {
	// Inserted maps predicate name to the tuples added since the older
	// snapshot, in insertion order. Predicates with no new tuples are
	// absent.
	Inserted map[string][]Tuple
}

// Empty reports whether no tuples were inserted.
func (d *SnapshotDiff) Empty() bool { return d == nil || len(d.Inserted) == 0 }

// Size returns the total number of inserted tuples.
func (d *SnapshotDiff) Size() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, ts := range d.Inserted {
		n += len(ts)
	}
	return n
}

// DiffSnapshots computes the tuples inserted between two snapshots of the
// same database (old taken no later than cur). It reports ok=false when the
// difference is not a pure insert-only delta: a predicate shrank, changed
// arity, disappeared, or had its tuple history replaced wholesale (distinct
// lineage) — anything an incremental maintenance pass cannot absorb.
func DiffSnapshots(old, cur *Snapshot) (*SnapshotDiff, bool) {
	if old == nil || cur == nil {
		return nil, false
	}
	diff := &SnapshotDiff{Inserted: make(map[string][]Tuple)}
	if old == cur || old.Epoch() == cur.Epoch() {
		return diff, true
	}
	for pred, or := range old.db.rels {
		nr := cur.db.rels[pred]
		if nr == nil || nr.arity != or.arity || nr.lineage != or.lineage || len(nr.tuples) < len(or.tuples) {
			return nil, false
		}
		if tail := nr.tuples[len(or.tuples):]; len(tail) > 0 {
			diff.Inserted[pred] = tail
		}
	}
	for pred, nr := range cur.db.rels {
		if old.db.rels[pred] != nil {
			continue
		}
		if len(nr.tuples) > 0 {
			diff.Inserted[pred] = nr.tuples
		}
	}
	return diff, true
}
