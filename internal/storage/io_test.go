package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadFactsRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Insert("edge", "a", "b")
	db.Insert("edge", "b", "c")
	db.Insert("label", "a", "Weird Name")
	db.Insert("tag", "x'1")
	db.Insert("num", "42", "-7")

	var buf bytes.Buffer
	if err := db.WriteFacts(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `label(a, "Weird Name").`) {
		t.Errorf("quoting missing:\n%s", out)
	}

	db2 := NewDatabase()
	if err := db2.ReadFacts(strings.NewReader(out)); err != nil {
		t.Fatalf("read back: %v\ninput:\n%s", err, out)
	}
	for _, pred := range db.Preds() {
		r1, r2 := db.Rel(pred), db2.Rel(pred)
		if r2 == nil || r1.Len() != r2.Len() {
			t.Fatalf("%s: round trip changed size", pred)
		}
	}
	// Deterministic output: writing db2 reproduces the bytes.
	var buf2 bytes.Buffer
	if err := db2.WriteFacts(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Errorf("round trip not byte-stable:\n%s\nvs\n%s", out, buf2.String())
	}
}

func TestLoadFactsWithComments(t *testing.T) {
	db := NewDatabase()
	err := db.LoadFacts(`
		% graph
		edge(a, b).  // first
		edge(b, c).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Rel("edge").Len() != 2 {
		t.Errorf("edges = %d", db.Rel("edge").Len())
	}
}

func TestLoadFactsErrors(t *testing.T) {
	bad := []string{
		"edge(a, b)",     // missing dot
		"edge a, b).",    // missing paren
		"edge(a, b",      // truncated
		"edge(a,).",      // empty arg
		`edge("a, b).`,   // unterminated string
		"edge(a) extra.", // trailing junk before dot
	}
	for _, src := range bad {
		db := NewDatabase()
		if err := db.LoadFacts(src); err == nil {
			t.Errorf("%q: accepted", src)
		}
	}
}

func TestLoadFactsArityConflict(t *testing.T) {
	db := NewDatabase()
	if err := db.LoadFacts("e(a, b). e(c)."); err == nil {
		t.Error("arity conflict accepted")
	}
}

// TestScanFacts: ScanFacts parses without touching any database, returns
// facts in input order with copied argument slices, and surfaces syntax
// errors with line numbers.
func TestScanFacts(t *testing.T) {
	facts, err := ScanFacts("edge(a, b).\n% comment\nedge(b, c).\nlabel(a, \"Weird Name\").\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 3 {
		t.Fatalf("got %d facts, want 3", len(facts))
	}
	if facts[0].Pred != "edge" || facts[0].Args[0] != "a" || facts[0].Args[1] != "b" {
		t.Errorf("facts[0] = %+v, want edge(a, b)", facts[0])
	}
	if facts[2].Args[1] != "Weird Name" {
		t.Errorf("quoted arg = %q, want %q", facts[2].Args[1], "Weird Name")
	}
	// The scanner reuses its name buffer; returned facts must not alias it.
	if &facts[0].Args[0] == &facts[1].Args[0] {
		t.Error("facts share an argument backing array")
	}
	if _, err := ScanFacts("edge(a, b).\nbroken(\nedge(b, c).\n"); err == nil {
		t.Error("malformed input scanned without error")
	}
}
