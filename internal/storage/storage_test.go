package storage

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSymbolsIntern(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("alice")
	b := s.Intern("bob")
	if a == b {
		t.Error("distinct names interned equal")
	}
	if s.Intern("alice") != a {
		t.Error("re-interning changed value")
	}
	if s.Name(a) != "alice" || s.Name(b) != "bob" {
		t.Error("Name lookup wrong")
	}
	if _, ok := s.Lookup("carol"); ok {
		t.Error("Lookup invented a symbol")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Name(Value(99)) == "" {
		t.Error("out-of-range Name must return a placeholder")
	}
}

func TestTupleKeyAndEqual(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := Tuple{1, 2, 3}
	c := Tuple{1, 2, 4}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key collisions or mismatches")
	}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Tuple{1, 2}) {
		t.Error("Equal wrong")
	}
	cl := a.Clone()
	cl[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation(2)
	if !r.Insert(Tuple{1, 2}) {
		t.Error("first insert not new")
	}
	if r.Insert(Tuple{1, 2}) {
		t.Error("duplicate insert reported new")
	}
	if r.Len() != 1 || !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Error("contents wrong")
	}
}

func TestRelationInsertWrongArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong-arity insert did not panic")
		}
	}()
	NewRelation(2).Insert(Tuple{1})
}

func TestRelationIndexMaintainedAcrossInserts(t *testing.T) {
	r := NewRelation(2)
	r.Insert(Tuple{1, 10})
	// Force index construction, then insert more.
	if got := len(r.LookupCol(0, 1)); got != 1 {
		t.Fatalf("lookup = %d", got)
	}
	r.Insert(Tuple{1, 20})
	r.Insert(Tuple{2, 30})
	if got := len(r.LookupCol(0, 1)); got != 2 {
		t.Errorf("index not maintained incrementally: %d", got)
	}
	if got := len(r.LookupCol(1, 30)); got != 1 {
		t.Errorf("second column index: %d", got)
	}
}

func TestEachMatchAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewRelation(3)
	for i := 0; i < 300; i++ {
		r.Insert(Tuple{Value(rng.Intn(5)), Value(rng.Intn(5)), Value(rng.Intn(5))})
	}
	f := func(v0, v1 uint8, useB0, useB1 bool) bool {
		bound := []bool{useB0, useB1, false}
		vals := Tuple{Value(v0 % 5), Value(v1 % 5), 0}
		got := 0
		r.EachMatch(bound, vals, func(Tuple) bool { got++; return true })
		want := 0
		r.Each(func(t Tuple) bool {
			ok := true
			for c := range bound {
				if bound[c] && t[c] != vals[c] {
					ok = false
				}
			}
			if ok {
				want++
			}
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEachMatchEarlyStop(t *testing.T) {
	r := NewRelation(1)
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{Value(i)})
	}
	n := 0
	r.EachMatch([]bool{false}, Tuple{0}, func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRelationCloneIsolation(t *testing.T) {
	r := NewRelation(1)
	r.Insert(Tuple{1})
	c := r.Clone()
	c.Insert(Tuple{2})
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("clone not isolated")
	}
}

func TestRelationEqualAndInsertAll(t *testing.T) {
	a := NewRelation(2)
	b := NewRelation(2)
	a.Insert(Tuple{1, 2})
	a.Insert(Tuple{3, 4})
	if a.Equal(b) {
		t.Error("different relations equal")
	}
	if n := b.InsertAll(a); n != 2 {
		t.Errorf("InsertAll added %d", n)
	}
	if !a.Equal(b) {
		t.Error("copies not equal")
	}
	if n := b.InsertAll(a); n != 0 {
		t.Errorf("second InsertAll added %d", n)
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("e", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if db.Rel("e").Len() != 1 {
		t.Error("duplicate fact stored")
	}
	if _, err := db.Insert("e", "a"); err == nil {
		t.Error("arity change accepted")
	}
	if _, err := db.Ensure("e", 3); err == nil {
		t.Error("Ensure with conflicting arity accepted")
	}
	preds := db.Preds()
	if len(preds) != 1 || preds[0] != "e" {
		t.Errorf("preds = %v", preds)
	}
}

func TestDatabaseCloneIsolation(t *testing.T) {
	db := NewDatabase()
	db.Insert("e", "a", "b")
	c := db.Clone()
	c.Insert("e", "x", "y")
	if db.Rel("e").Len() != 1 || c.Rel("e").Len() != 2 {
		t.Error("clone not isolated")
	}
	if db.Syms != c.Syms {
		t.Error("clone must share the symbol table")
	}
}

func TestDumpDeterministic(t *testing.T) {
	db := NewDatabase()
	db.Insert("e", "b", "c")
	db.Insert("e", "a", "b")
	d1, d2 := db.Dump("e"), db.Dump("e")
	if d1 != d2 {
		t.Error("dump not deterministic")
	}
	if d1 != "e(a, b)\ne(b, c)\n" {
		t.Errorf("dump = %q", d1)
	}
	if db.Dump("missing") != "missing: <absent>\n" {
		t.Errorf("missing dump = %q", db.Dump("missing"))
	}
}

func TestGenerators(t *testing.T) {
	db := NewDatabase()
	if err := GenChain(db, "chain", 10); err != nil {
		t.Fatal(err)
	}
	if db.Rel("chain").Len() != 9 {
		t.Errorf("chain edges = %d", db.Rel("chain").Len())
	}
	if err := GenCycle(db, "cyc", 5); err != nil {
		t.Fatal(err)
	}
	if db.Rel("cyc").Len() != 5 {
		t.Errorf("cycle edges = %d", db.Rel("cyc").Len())
	}
	if err := GenTree(db, "tree", 2, 3); err != nil {
		t.Fatal(err)
	}
	if db.Rel("tree").Len() != 2+4+8 {
		t.Errorf("tree edges = %d", db.Rel("tree").Len())
	}
	if err := GenGrid(db, "grid", 3, 3); err != nil {
		t.Fatal(err)
	}
	if db.Rel("grid").Len() != 12 {
		t.Errorf("grid edges = %d", db.Rel("grid").Len())
	}
	if err := GenRandomGraph(db, "rnd", 10, 25, 1); err != nil {
		t.Fatal(err)
	}
	if db.Rel("rnd").Len() != 25 {
		t.Errorf("random edges = %d", db.Rel("rnd").Len())
	}
}

func TestGenRandomRelationDeterministicAndCapped(t *testing.T) {
	db1 := NewDatabase()
	db2 := NewDatabase()
	GenRandomRelation(db1, "r", 2, 6, 20, 99)
	GenRandomRelation(db2, "r", 2, 6, 20, 99)
	if db1.Dump("r") != db2.Dump("r") {
		t.Error("same seed produced different relations")
	}
	db3 := NewDatabase()
	// Request more tuples than the domain can hold: must cap, not loop.
	if err := GenRandomRelation(db3, "small", 1, 3, 100, 1); err != nil {
		t.Fatal(err)
	}
	if db3.Rel("small").Len() != 3 {
		t.Errorf("capped relation = %d, want 3", db3.Rel("small").Len())
	}
}

func TestIndexedAndBuildIndexes(t *testing.T) {
	r := NewRelation(2)
	r.Insert(Tuple{1, 2})
	if r.Indexed() {
		t.Error("fresh relation reports indexes built")
	}
	r.LookupCol(0, 1)
	if r.Indexed() {
		t.Error("one lazy column index must not count as fully indexed")
	}
	r.BuildIndexes()
	if !r.Indexed() {
		t.Error("BuildIndexes did not materialize every column")
	}
	// Inserts after the build must keep the indexes current.
	r.Insert(Tuple{3, 4})
	if got := r.LookupCol(1, 4); len(got) != 1 {
		t.Errorf("index not maintained after insert: %v", got)
	}
	if !r.Indexed() {
		t.Error("insert invalidated the indexed state")
	}
}

func TestPartition(t *testing.T) {
	r := NewRelation(1)
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{Value(i)})
	}
	for _, parts := range []int{1, 2, 3, 10, 25, 0} {
		chunks := r.Partition(parts)
		total := 0
		for _, c := range chunks {
			if len(c) == 0 {
				t.Errorf("parts=%d: empty chunk", parts)
			}
			total += len(c)
		}
		if total != 10 {
			t.Errorf("parts=%d: chunks cover %d tuples, want 10", parts, total)
		}
		want := parts
		if want < 1 {
			want = 1
		}
		if want > 10 {
			want = 10
		}
		if len(chunks) > want {
			t.Errorf("parts=%d: got %d chunks", parts, len(chunks))
		}
	}
	if got := NewRelation(1).Partition(4); got != nil {
		t.Errorf("empty relation partitioned into %d chunks", len(got))
	}
}

// TestInsertDuplicateZeroAllocs pins the tentpole regression: inserting a
// duplicate must not allocate (the old representation built the arena copy
// — previously a Clone — and a string key before the membership check).
// Contains shares the same probe and must be allocation-free too.
func TestInsertDuplicateZeroAllocs(t *testing.T) {
	r := NewRelation(3)
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{Value(i), Value(i % 7), Value(i % 3)})
	}
	r.BuildIndexes() // duplicates must stay free with live indexes too
	probe := Tuple{5, 5, 2}
	if !r.Contains(probe) {
		t.Fatal("probe tuple missing")
	}
	if n := testing.AllocsPerRun(100, func() {
		if r.Insert(probe) {
			t.Error("duplicate insert reported new")
		}
	}); n != 0 {
		t.Errorf("duplicate Insert allocates %v times", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !r.Contains(probe) {
			t.Error("Contains lost the tuple")
		}
	}); n != 0 {
		t.Errorf("Contains allocates %v times", n)
	}
}

// TestReadPhaseNeverBuildsLazily checks the post-BuildIndexes contract: a
// probe of a column whose index is somehow missing returns an error-free
// empty result and must not build the index (which would mutate the
// relation under concurrent readers).
func TestReadPhaseNeverBuildsLazily(t *testing.T) {
	r := NewRelation(2)
	r.Insert(Tuple{1, 2})
	r.Insert(Tuple{3, 2})
	r.BuildIndexes()
	r.colIdx[1] = nil // simulate a missing index in the frozen phase
	if got := r.LookupCol(1, 2); got != nil {
		t.Errorf("frozen LookupCol = %v, want empty", got)
	}
	n := 0
	r.EachCol(1, 2, func(Tuple) bool { n++; return true })
	if n != 0 {
		t.Errorf("frozen EachCol visited %d tuples", n)
	}
	r.EachMatch([]bool{false, true}, Tuple{0, 2}, func(Tuple) bool { n++; return true })
	if n != 0 {
		t.Errorf("frozen EachMatch visited %d tuples", n)
	}
	if r.colIdx[1] != nil {
		t.Error("frozen read path rebuilt the index")
	}
	// Column 0's index is intact and must still answer.
	if got := len(r.LookupCol(0, 1)); got != 1 {
		t.Errorf("intact column lookup = %d, want 1", got)
	}
	// Reset unfreezes: lazy building is legal again.
	r.Reset(2)
	r.Insert(Tuple{7, 8})
	if got := len(r.LookupCol(1, 8)); got != 1 {
		t.Errorf("post-Reset lazy lookup = %d, want 1", got)
	}
}

// TestPartitionTuplesEdgeCases covers the slice-level partitioner directly:
// empty input, more workers than tuples, and arity-1 relations.
func TestPartitionTuplesEdgeCases(t *testing.T) {
	if got := PartitionTuples(nil, 4); got != nil {
		t.Errorf("nil slice partitioned into %d chunks", len(got))
	}
	if got := PartitionTuples([]Tuple{}, 0); got != nil {
		t.Errorf("empty slice partitioned into %d chunks", len(got))
	}
	one := []Tuple{{1}}
	for _, parts := range []int{-3, 0, 1, 2, 100} {
		chunks := PartitionTuples(one, parts)
		if len(chunks) != 1 || len(chunks[0]) != 1 || chunks[0][0][0] != 1 {
			t.Errorf("parts=%d: chunks = %v", parts, chunks)
		}
	}
	// workers > len: every tuple in its own chunk, none empty.
	five := []Tuple{{0}, {1}, {2}, {3}, {4}}
	chunks := PartitionTuples(five, 99)
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	for i, c := range chunks {
		if len(c) != 1 || c[0][0] != Value(i) {
			t.Errorf("chunk %d = %v", i, c)
		}
	}
	// Arity-1 relation through the method, non-divisible split.
	r := NewRelation(1)
	for i := 0; i < 7; i++ {
		r.Insert(Tuple{Value(i)})
	}
	total := 0
	for _, c := range r.Partition(3) {
		total += len(c)
	}
	if total != 7 {
		t.Errorf("partitioned arity-1 chunks cover %d tuples, want 7", total)
	}
}

// TestConcurrentReadsWithOverflowIndexes is the overflow variant of the
// concurrent-read contract: inserts after BuildIndexes land in per-value
// overflow lists, and a subsequent read phase must serve merged results to
// many goroutines without mutation. Meaningful under -race.
func TestConcurrentReadsWithOverflowIndexes(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 50; i++ {
		r.Insert(Tuple{Value(i % 10), Value(i)})
	}
	r.BuildIndexes()
	// Exclusive write phase: these go through the overflow path.
	for i := 50; i < 80; i++ {
		r.Insert(Tuple{Value(i % 10), Value(i)})
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := Value(0); v < 10; v++ {
				if got := len(r.LookupCol(0, v)); got != 8 {
					errs <- "overflow LookupCol wrong"
					return
				}
				n := 0
				r.EachCol(0, v, func(Tuple) bool { n++; return true })
				if n != 8 {
					errs <- "overflow EachCol wrong"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentReadsAfterBuildIndexes exercises the relation's documented
// concurrency contract: once the indexes are prebuilt, any number of
// readers may run at once. Meaningful under -race (the Makefile race
// target); it still checks results without it.
func TestConcurrentReadsAfterBuildIndexes(t *testing.T) {
	db := NewDatabase()
	if err := GenRandomRelation(db, "r", 2, 30, 300, 7); err != nil {
		t.Fatal(err)
	}
	r := db.Rel("r")
	r.BuildIndexes()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := Value(0); v < 30; v++ {
				n := 0
				r.EachMatch([]bool{true, false}, Tuple{v, 0}, func(t Tuple) bool {
					n++
					return true
				})
				if n != len(r.LookupCol(0, v)) {
					errs <- "EachMatch and LookupCol disagree"
					return
				}
				m := 0
				r.EachCol(0, v, func(Tuple) bool { m++; return true })
				if m != n {
					errs <- "EachCol and EachMatch disagree"
					return
				}
			}
			for _, chunk := range r.Partition(4) {
				for _, tup := range chunk {
					if !r.Contains(tup) {
						errs <- "partitioned tuple not contained"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRelStatsCounters exercises every write-path counter directly: probes
// and duplicates from Insert, arena/table growth from volume, index builds
// from a lazy column probe.
func TestRelStatsCounters(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{Value(i), Value(i + 1)})
	}
	r.Insert(Tuple{0, 1}) // duplicate
	st := r.Stats()
	if st.Probes != 101 {
		t.Errorf("Probes = %d, want 101", st.Probes)
	}
	if st.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", st.Duplicates)
	}
	if st.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d, want > 0", st.ArenaBytes)
	}
	if st.TableGrows == 0 {
		t.Error("TableGrows = 0 after 100 inserts, want at least one rehash")
	}
	if st.IndexBuilds != 0 {
		t.Errorf("IndexBuilds = %d before any column probe, want 0", st.IndexBuilds)
	}
	r.LookupCol(0, 0)
	if got := r.Stats().IndexBuilds; got != 1 {
		t.Errorf("IndexBuilds after lazy probe = %d, want 1", got)
	}

	sum := st.Add(r.Stats())
	if sum.Probes != 2*st.Probes || sum.IndexBuilds != 1 {
		t.Errorf("Add: %+v", sum)
	}
}
