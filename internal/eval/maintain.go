package eval

import (
	"time"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Incremental maintenance of cached materialized answers. A write batch
// advances the snapshot epoch, which used to cold-start every cached entry.
// Maintain instead carries the previous epoch's entries forward: it reads
// the insert-only diff between the two snapshots (storage.DiffSnapshots —
// cheap, the arena is append-only) and re-runs only the delta through the
// class-appropriate kernel:
//
//   - TC frontier plans restart the BFS from the new edges' endpoints
//     against the frozen closure (bound queries), or semi-naive-compose the
//     new edges against the frozen closure (all-free queries). The cached
//     exit relation and visited set captured at compute time (tcAux) make
//     the restart O(new reachable region), never O(graph).
//   - Bounded plans re-run only the expansion terms that mention a changed
//     predicate, inserting into a copy-on-write clone of the old answers.
//   - Stable/generic parallel plans run a sequential semi-naive delta pass
//     seeded with the inserted tuples over the frozen old fixpoint (fixAux),
//     shared by every cached query of the same program.
//
// Insert-only monotone semantics make this sound: for a positive program,
// restarting semi-naive iteration from any pre-fixpoint (here: the old
// least fixpoint plus the delta) converges to the new least fixpoint. The
// pass falls back to a full recompute whenever that argument does not hold
// (negation over a changed predicate, a replaced or shrunk relation, the
// delta closure exceeding the budget). Differential tests assert
// maintained ≡ recomputed across randomized insert batches for all four
// plan classes.

// MaintSpec tells ResultCache.Maintain which cached programs it may
// maintain and how to recompute the ones it cannot.
type MaintSpec struct {
	// Planner compiles (or looks up) the plan for entries of Sys.
	Planner *Planner
	// Sys is the single recursive system the serving layer answers; nil
	// when the server runs a general program instead.
	Sys *ast.RecursiveSystem
	// Prog and ProgKey describe the general program whose entries were
	// cached through AnswerProgram.
	Prog    *ast.Program
	ProgKey string
	// Opts carries workers, metrics and tracing into the delta passes and
	// fallback recomputes.
	Opts Opts
	// Budget caps the number of derivation attempts a delta pass may make
	// before falling back to a full recompute; 0 means an adaptive default
	// proportional to the entry size plus the diff size.
	Budget int
}

// MaintResult reports what happened to the maintainable entries.
type MaintResult struct {
	// Maintained entries were carried forward by a delta pass.
	Maintained int
	// Recomputed entries were rebuilt from scratch (fallback).
	Recomputed int
	// Skipped entries were left behind at the old epoch (foreign program,
	// failed recompute); they age out of the LRU.
	Skipped int
}

// tcAux is the maintenance state of a TC-frontier entry: the materialized
// exit relation and, for bound queries, the BFS visited set. Both are
// immutable once the entry is published.
type tcAux struct {
	exit    *storage.Relation
	visited *storage.ValueSet // nil for the all-free query (answers = closure)
}

// fixAux is the maintenance state of a fixpoint-plan entry: the
// materialized IDB relations of the program at the entry's epoch. Shared by
// every cached query of the same program; immutable once published.
type fixAux struct {
	idb map[string]*storage.Relation
}

// newFixAux collects the head (and program-fact) relations of the program
// out of the engine's working database.
func newFixAux(prog *ast.Program, work *storage.Database) *fixAux {
	m := make(map[string]*storage.Relation)
	for _, r := range prog.Rules {
		if _, ok := m[r.Head.Pred]; !ok {
			if rel := work.Rel(r.Head.Pred); rel != nil {
				m[r.Head.Pred] = rel
			}
		}
	}
	for _, f := range prog.Facts {
		if _, ok := m[f.Pred]; !ok {
			if rel := work.Rel(f.Pred); rel != nil {
				m[f.Pred] = rel
			}
		}
	}
	return &fixAux{idb: m}
}

// freezeAux freezes the relations a maintenance state holds, making the
// entry safe for concurrent readers (and for CowClone at the next write).
func freezeAux(aux any) {
	switch a := aux.(type) {
	case *tcAux:
		if a.exit != nil {
			a.exit.Freeze()
		}
	case *fixAux:
		for _, r := range a.idb {
			r.Freeze()
		}
	}
}

// Maintain carries the cached entries of the old epoch forward to the new
// one. It runs on the writer's goroutine between taking the new snapshot
// and publishing it, so readers keep hitting the old epoch's entries until
// the maintained ones are in place. Entries belonging to programs the spec
// does not describe are skipped and age out of the LRU.
func (c *ResultCache) Maintain(old, cur *storage.Snapshot, spec MaintSpec) MaintResult {
	var res MaintResult
	if old == nil || cur == nil || old.Epoch() == cur.Epoch() {
		return res
	}
	start := time.Now()
	defer func() { c.maintDur.Observe(time.Since(start).Seconds()) }()

	diff, diffOK := storage.DiffSnapshots(old, cur)

	c.mu.Lock()
	var todo []*resultEntry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*resultEntry)
		if e.key.epoch == old.Epoch() && e.hasQuery {
			todo = append(todo, e)
		}
	}
	c.mu.Unlock()
	if len(todo) == 0 {
		return res
	}

	m := &maintainer{
		cache: c, cur: cur, spec: spec,
		diff: diff, diffOK: diffOK, diffSize: diff.Size(),
		fix: make(map[string]*fixState),
	}
	sysKey := ""
	if spec.Sys != nil && spec.Planner != nil {
		sysKey = programKey(spec.Sys)
	}
	for _, e := range todo {
		switch {
		case sysKey != "" && e.key.program == sysKey:
			m.entrySys(e, &res)
		case spec.Prog != nil && spec.ProgKey != "" && e.key.program == spec.ProgKey:
			m.entryProg(e, &res)
		default:
			res.Skipped++
		}
	}
	return res
}

// maintainer is the per-Maintain working state: the diff, and a memo so all
// cached queries of one program share a single maintained (or recomputed)
// fixpoint.
type maintainer struct {
	cache    *ResultCache
	cur      *storage.Snapshot
	spec     MaintSpec
	diff     *storage.SnapshotDiff
	diffOK   bool
	diffSize int
	fix      map[string]*fixState // program key → shared fixpoint outcome
}

// fixState is the memoized outcome of maintaining one program's fixpoint;
// nil in the memo records a failed attempt (don't retry per entry).
type fixState struct {
	aux        *fixAux
	maintained bool
}

// budget returns the derivation-attempt cap for a delta pass over an entry
// of the given size.
func (m *maintainer) budget(oldSize int) int {
	if m.spec.Budget > 0 {
		return m.spec.Budget
	}
	return 1<<14 + 32*(oldSize+m.diffSize)
}

// entrySys maintains one entry of the single-system serving path.
func (m *maintainer) entrySys(e *resultEntry, res *MaintResult) {
	p, _, err := m.spec.Planner.planFor(m.spec.Sys, e.q, m.cur.Epoch(), m.cur.DB(), m.spec.Opts)
	if err != nil {
		res.Skipped++
		return
	}
	if m.diffOK && m.diff.Empty() {
		// A write that inserted nothing new: the answers carry over as-is.
		m.publish(e, e.rel, e.aux, e.st, true, res)
		return
	}
	switch p.Kind {
	case PlanTC:
		if m.diffOK {
			aux, _ := e.aux.(*tcAux)
			if rel, na, ok := maintainTC(m.spec.Sys, p.tc, e.q, e.rel, aux, m.cur.DB(), m.diff, m.budget(e.rel.Len())); ok {
				m.publish(e, rel, na, e.st, true, res)
				return
			}
		}
	case PlanBounded:
		if m.diffOK {
			if rel, ok := maintainBounded(p.rules, e.q, e.rel, m.cur.DB(), m.diff); ok {
				m.publish(e, rel, nil, e.st, true, res)
				return
			}
		}
	default: // PlanStable, PlanGeneric: shared fixpoint maintenance.
		prog := m.spec.Sys.Program()
		if p.Kind == PlanStable {
			prog = p.stable.Program()
		}
		m.entryFix(prog, e, res)
		return
	}
	// Fallback: recompute the entry from scratch at the new epoch.
	rel, aux, st, err := p.answerAux(e.q, m.cur.DB(), m.spec.Opts)
	if err != nil {
		res.Skipped++
		return
	}
	m.publish(e, rel, aux, st, false, res)
}

// entryProg maintains one entry of the general-program serving path.
func (m *maintainer) entryProg(e *resultEntry, res *MaintResult) {
	if m.diffOK && m.diff.Empty() {
		m.publish(e, e.rel, e.aux, e.st, true, res)
		return
	}
	m.entryFix(m.spec.Prog, e, res)
}

// entryFix answers the entry's query from the program's shared maintained
// (or recomputed) fixpoint.
func (m *maintainer) entryFix(prog *ast.Program, e *resultEntry, res *MaintResult) {
	st := m.fixStateFor(prog, e)
	if st == nil {
		res.Skipped++
		return
	}
	ans, err := answerFromFix(st.aux, m.cur, e.q)
	if err != nil {
		res.Skipped++
		return
	}
	m.publish(e, ans, st.aux, e.st, st.maintained, res)
}

// fixStateFor returns the program's maintained fixpoint, computing it on
// first use: the incremental delta pass when the diff and the program allow
// it, a full recompute otherwise.
func (m *maintainer) fixStateFor(prog *ast.Program, e *resultEntry) *fixState {
	key := e.key.program
	if st, ok := m.fix[key]; ok {
		return st
	}
	var st *fixState
	if m.diffOK && !ast.HasNegation(prog) {
		if old, _ := e.aux.(*fixAux); old != nil {
			size := 0
			for _, r := range old.idb {
				size += r.Len()
			}
			if na, ok := incrementalFixpoint(prog, old, m.cur.DB(), m.diff, m.budget(size)); ok {
				st = &fixState{aux: na, maintained: true}
			}
		}
	}
	if st == nil {
		if out, _, err := ParallelSemiNaiveOpts(prog, m.cur.DB(), m.spec.Opts); err == nil {
			st = &fixState{aux: newFixAux(prog, out)}
		}
	}
	m.fix[key] = st
	return st
}

// publish freezes and inserts the carried-forward entry under the new
// epoch, counting it as maintained or recomputed.
func (m *maintainer) publish(e *resultEntry, rel *storage.Relation, aux any, st Stats, maintained bool, res *MaintResult) {
	rel.Freeze()
	if aux != nil {
		freezeAux(aux)
	}
	st.Maintained = maintained
	ne := &resultEntry{
		key:      resultKey{program: e.key.program, query: e.key.query, epoch: m.cur.Epoch()},
		rel:      rel,
		st:       st,
		q:        e.q,
		hasQuery: true,
		aux:      aux,
	}
	c := m.cache
	c.mu.Lock()
	// The carried entry supersedes the old-epoch one; dropping it keeps the
	// cache (and the per-write Maintain scan) from growing by one stale
	// entry per write. A reader still pinned to the old snapshot simply
	// recomputes on its next probe.
	if el, ok := c.entries[e.key]; ok && el.Value.(*resultEntry) == e {
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.size
	}
	c.insertLocked(ne)
	c.mu.Unlock()
	if maintained {
		c.maintained.Inc()
		res.Maintained++
	} else {
		c.recomputed.Inc()
		res.Recomputed++
	}
}

// answerFromFix selects the query's answers out of the maintained fixpoint
// (falling back to the snapshot's base relation for a non-derived
// predicate).
func answerFromFix(aux *fixAux, cur *storage.Snapshot, q ast.Query) (*storage.Relation, error) {
	overlay := storage.NewDatabaseWithSymbols(cur.Syms())
	for pred, r := range aux.idb {
		overlay.Set(pred, r)
	}
	if overlay.Rel(q.Atom.Pred) == nil {
		if r := cur.Rel(q.Atom.Pred); r != nil {
			overlay.Set(q.Atom.Pred, r)
		}
	}
	return AnswerQuery(overlay, q)
}

// maintainTC carries one TC-frontier entry across an insert-only diff. The
// bound cases restart the BFS from the frontier the new edges open up
// (sources already visited, targets not yet) against the cloned visited
// set, then emit answers only for the newly visited values (plus the new
// exit tuples joined against the whole visited set for the closure-join
// cases). The all-free case semi-naive-composes the new edges and exit
// tuples against a copy-on-write clone of the frozen closure. Reports
// ok=false — recompute instead — when negation is involved, the shapes
// don't line up, or the budget is exceeded.
func maintainTC(sys *ast.RecursiveSystem, shape *tcShape, q ast.Query, oldRel *storage.Relation, aux *tcAux, db *storage.Database, diff *storage.SnapshotDiff, budget int) (*storage.Relation, *tcAux, bool) {
	if aux == nil || aux.exit == nil {
		return nil, nil, false
	}
	// Exit rules reading a changed predicate force an exit rematerialize;
	// negation over a changed predicate breaks insert-only monotonicity.
	exitChanged := false
	for _, er := range sys.Exits {
		for _, a := range er.Body {
			if len(diff.Inserted[a.Pred]) == 0 {
				continue
			}
			if a.Neg {
				return nil, nil, false
			}
			exitChanged = true
		}
	}
	exit := aux.exit
	var exitDelta []storage.Tuple
	if exitChanged {
		// Delta-evaluate only the affected exit rules: each positive
		// occurrence of a changed predicate runs once restricted to the new
		// tuples, the other occurrences reading the full (new) database —
		// the semi-naive seeded join, here over the nonrecursive exit rules.
		// Rematerializing the whole exit relation would make every write
		// O(database), swamping the delta pass it feeds.
		rules, err := compileRules(db.Syms, sys.Exits, nil)
		if err != nil {
			return nil, nil, false
		}
		ne := aux.exit.CowClone()
		rels := DBRels(db)
		for ri := range rules {
			cr := &rules[ri]
			buf := make(storage.Tuple, len(cr.slots))
			s := newSeeder(cr.conj, rels, cr.conj.NewBinding(), func(b []storage.Value) bool {
				for i, sl := range cr.slots {
					if sl >= 0 {
						buf[i] = b[sl]
					} else {
						buf[i] = cr.fixed[i]
					}
				}
				if ne.Insert(buf) {
					exitDelta = append(exitDelta, ne.At(ne.Len()-1))
				}
				return true
			})
			for bi, a := range cr.rule.Body {
				ts := diff.Inserted[a.Pred]
				if a.Neg || len(ts) == 0 {
					continue
				}
				arity := a.Arity()
				for _, t := range ts {
					if len(t) == arity {
						s.seed(bi, t)
					}
				}
			}
		}
		ne.CompactIndexes()
		exit = ne
	}
	edges := db.Rel(shape.edgePred)
	if edges != nil && edges.Arity() != 2 {
		return nil, nil, false
	}
	edgeDelta := diff.Inserted[shape.edgePred]
	if len(edgeDelta) == 0 && len(exitDelta) == 0 {
		// Nothing this entry reads grew: answers and state carry over.
		return oldRel, &tcAux{exit: exit, visited: aux.visited}, true
	}

	b0, b1 := !q.Atom.Args[0].IsVar(), !q.Atom.Args[1].IsVar()
	var c0, c1 storage.Value
	if b0 {
		v, ok := db.Syms.Lookup(q.Atom.Args[0].Name)
		if !ok {
			return nil, nil, false
		}
		c0 = v
	}
	if b1 {
		v, ok := db.Syms.Lookup(q.Atom.Args[1].Name)
		if !ok {
			return nil, nil, false
		}
		c1 = v
	}

	out := oldRel.CowClone()
	attempts, exceeded := 0, false
	rl := shape.rightLinear

	if !b0 && !b1 {
		// All-free: the answers are the closure. Seed the delta with the new
		// exit tuples and the new edges composed against the frozen old
		// closure, then compose rounds against the full new edge relation.
		var delta []storage.Tuple
		insert := func(t storage.Tuple) bool {
			attempts++
			if attempts > budget {
				exceeded = true
				return false
			}
			if out.Insert(t) {
				delta = append(delta, out.At(out.Len()-1))
			}
			return true
		}
		for _, t := range exitDelta {
			if !insert(t) {
				break
			}
		}
		nt := make(storage.Tuple, 2)
		for _, e := range edgeDelta {
			if exceeded {
				break
			}
			if rl {
				// Δq(u, v) ∘ p_old(v, y) → p(u, y).
				oldRel.EachCol(0, e[1], func(p storage.Tuple) bool {
					nt[0], nt[1] = e[0], p[1]
					return insert(nt)
				})
			} else {
				// p_old(x, z) ∘ Δq(z, y) → p(x, y).
				oldRel.EachCol(1, e[0], func(p storage.Tuple) bool {
					nt[0], nt[1] = p[0], e[1]
					return insert(nt)
				})
			}
		}
		for !exceeded && len(delta) > 0 && edges != nil {
			round := delta
			delta = nil
			for _, d := range round {
				if exceeded {
					break
				}
				if rl {
					edges.EachCol(1, d[0], func(e storage.Tuple) bool {
						nt[0], nt[1] = e[0], d[1]
						return insert(nt)
					})
				} else {
					edges.EachCol(0, d[1], func(e storage.Tuple) bool {
						nt[0], nt[1] = d[0], e[1]
						return insert(nt)
					})
				}
			}
		}
		if exceeded {
			return nil, nil, false
		}
		out.CompactIndexes()
		return out, &tcAux{exit: exit}, true
	}

	// Bound query: restart the BFS. The traversal direction and the roles
	// of the exit relation mirror tcEvalAux's four cases.
	if aux.visited == nil {
		return nil, nil, false
	}
	visited := aux.visited.Clone()
	var newVals []storage.Value
	addSeed := func(v storage.Value) {
		if visited.Add(v) {
			newVals = append(newVals, v)
		}
	}
	from, to := 1, 0
	if b0 {
		from, to = 0, 1
	}
	// eJoin: the answers come from joining the visited set with the exit
	// relation (seeds were the query constant); otherwise the exit relation
	// provided the seeds and new exit tuples open new BFS sources. Mirrors
	// tcEvalAux's dispatch, where b0 takes precedence over b1: a both-bound
	// query uses the b0 strategy of its orientation.
	eJoin := (rl && b0) || (!rl && !b0)
	if !eJoin {
		for _, t := range exitDelta {
			if rl { // seeds {z : E(z, c1)}
				if t[1] == c1 {
					addSeed(t[0])
				}
			} else { // seeds {z : E(c0, z)}
				if t[0] == c0 {
					addSeed(t[1])
				}
			}
		}
	}
	// New edges whose source is already reachable open their targets.
	for _, e := range edgeDelta {
		if visited.Contains(e[from]) {
			addSeed(e[to])
		}
	}
	// BFS from the new values over the full (new) edge relation.
	for qi := 0; qi < len(newVals) && !exceeded && edges != nil; qi++ {
		edges.EachCol(from, newVals[qi], func(t storage.Tuple) bool {
			attempts++
			if attempts > budget {
				exceeded = true
				return false
			}
			addSeed(t[to])
			return true
		})
	}
	if exceeded {
		return nil, nil, false
	}
	// Emit the answers the new values (and new exit tuples) contribute.
	nt := make(storage.Tuple, 2)
	insert := func() bool {
		attempts++
		if attempts > budget {
			exceeded = true
			return false
		}
		out.Insert(nt)
		return true
	}
	for _, v := range newVals {
		if exceeded {
			break
		}
		switch {
		case rl && b0: // (c0, y) for E(v, y)
			exit.EachCol(0, v, func(t storage.Tuple) bool {
				if b1 && t[1] != c1 {
					return true
				}
				nt[0], nt[1] = c0, t[1]
				return insert()
			})
		case rl: // b1 only: every visited x answers (x, c1)
			nt[0], nt[1] = v, c1
			insert()
		case b0: // !rl: every visited y answers (c0, y)
			if !b1 || v == c1 {
				nt[0], nt[1] = c0, v
				insert()
			}
		default: // !rl, b1 only: (x, c1) for E(x, v)
			exit.EachCol(1, v, func(t storage.Tuple) bool {
				nt[0], nt[1] = t[0], c1
				return insert()
			})
		}
	}
	if eJoin {
		// New exit tuples answer for every visited value, old or new.
		for _, t := range exitDelta {
			if exceeded {
				break
			}
			if rl { // E(z, y), z visited → (c0, y)
				if visited.Contains(t[0]) && (!b1 || t[1] == c1) {
					nt[0], nt[1] = c0, t[1]
					insert()
				}
			} else { // E(x, z), z visited → (x, c1)
				if visited.Contains(t[1]) {
					nt[0], nt[1] = t[0], c1
					insert()
				}
			}
		}
	}
	if exceeded {
		return nil, nil, false
	}
	out.CompactIndexes()
	return out, &tcAux{exit: exit, visited: visited}, true
}

// maintainBounded carries one bounded-union entry across an insert-only
// diff by re-running only the expansion rules that mention a changed
// predicate, inserting into a copy-on-write clone of the old answers.
// Sound because the expansion union is monotone in its positive literals;
// a changed predicate under negation (in any rule — an unchanged rule's old
// derivations could be invalidated too) forces a recompute.
func maintainBounded(rules []ast.Rule, q ast.Query, oldRel *storage.Relation, db *storage.Database, diff *storage.SnapshotDiff) (*storage.Relation, bool) {
	var affected []ast.Rule
	for _, r := range rules {
		hit := false
		for _, a := range r.Body {
			if len(diff.Inserted[a.Pred]) == 0 {
				continue
			}
			if a.Neg {
				return nil, false
			}
			hit = true
		}
		if hit {
			affected = append(affected, r)
		}
	}
	if len(affected) == 0 {
		return oldRel, true
	}
	out := oldRel.CowClone()
	var st Stats
	if err := EvalNonRecursive(affected, q, db, out, &st); err != nil {
		return nil, false
	}
	out.CompactIndexes()
	return out, true
}

// incrementalFixpoint carries a program's materialized least fixpoint
// across an insert-only EDB delta: the old IDB relations are extended
// copy-on-write, the inserted tuples seed one occurrence-restricted pass
// per rule (the standard semi-naive seed, but over the diff instead of the
// whole database), and delta rounds run to quiescence. Sound for positive
// programs only — restarting semi-naive iteration from the old fixpoint
// plus the delta converges to the new least fixpoint because evaluation is
// monotone and the old fixpoint is a subset of the new one.
func incrementalFixpoint(prog *ast.Program, aux *fixAux, db *storage.Database, diff *storage.SnapshotDiff, budget int) (*fixAux, bool) {
	if ast.HasNegation(prog) {
		return nil, false
	}
	idb := make(map[string]bool, len(aux.idb))
	for pred := range aux.idb {
		idb[pred] = true
	}
	for _, r := range prog.Rules {
		if !idb[r.Head.Pred] {
			return nil, false // fixpoint state predates this rule's head
		}
	}
	// Working database: the new EDB shared read-only, the old IDB extended
	// copy-on-write (Ensure cow-clones the frozen relations).
	work := storage.NewDatabaseWithSymbols(db.Syms)
	for _, pred := range db.Preds() {
		if !idb[pred] {
			work.Set(pred, db.Rel(pred))
		}
	}
	heads := make(map[string]*storage.Relation, len(aux.idb))
	for pred, r := range aux.idb {
		work.Set(pred, r)
		wr, err := work.Ensure(pred, r.Arity())
		if err != nil {
			return nil, false
		}
		heads[pred] = wr
	}
	rules, err := compileRules(db.Syms, prog.Rules, nil)
	if err != nil {
		return nil, false
	}
	full := DBRels(work)

	attempts, exceeded := 0, false
	delta := make(map[string][]storage.Tuple)
	// New EDB tuples of derived predicates (facts loaded for an IDB-named
	// predicate) enter the fixpoint and the delta directly.
	for pred, ts := range diff.Inserted {
		wr := heads[pred]
		if wr == nil {
			continue
		}
		for _, t := range ts {
			if len(t) != wr.Arity() {
				return nil, false
			}
			if wr.Insert(t) {
				delta[pred] = append(delta[pred], wr.At(wr.Len()-1))
			}
		}
	}
	// runOccurrence evaluates one rule with one positive body occurrence
	// restricted to the given tuples, the other occurrences reading the
	// full working database — the seeded join of the semi-naive engine.
	runOccurrence := func(cr *compiledRule, bi int, tuples []storage.Tuple) {
		head := heads[cr.rule.Head.Pred]
		buf := make(storage.Tuple, len(cr.slots))
		s := newSeeder(cr.conj, full, cr.conj.NewBinding(), func(b []storage.Value) bool {
			for i, sl := range cr.slots {
				if sl >= 0 {
					buf[i] = b[sl]
				} else {
					buf[i] = cr.fixed[i]
				}
			}
			attempts++
			if attempts > budget {
				exceeded = true
				return false
			}
			if head.Insert(buf) {
				delta[cr.rule.Head.Pred] = append(delta[cr.rule.Head.Pred], head.At(head.Len()-1))
			}
			return true
		})
		arity := cr.rule.Body[bi].Arity()
		for _, t := range tuples {
			if exceeded {
				return
			}
			if len(t) != arity {
				continue // the occurrence can never match this relation
			}
			s.seed(bi, t)
		}
	}
	// Seed pass: every rule occurrence over a changed base predicate runs
	// once with that occurrence restricted to the new tuples. Two changed
	// occurrences in one rule are covered pairwise: each seeding reads the
	// other occurrence's full (new) relation.
	for ri := range rules {
		cr := &rules[ri]
		for bi, a := range cr.rule.Body {
			if a.Neg || idb[a.Pred] {
				continue
			}
			if ts := diff.Inserted[a.Pred]; len(ts) > 0 {
				runOccurrence(cr, bi, ts)
			}
			if exceeded {
				return nil, false
			}
		}
	}
	// Delta rounds over the derived predicates to quiescence.
	for len(delta) > 0 {
		round := delta
		delta = make(map[string][]storage.Tuple)
		for ri := range rules {
			cr := &rules[ri]
			for bi, a := range cr.rule.Body {
				if a.Neg || !idb[a.Pred] {
					continue
				}
				if ts := round[a.Pred]; len(ts) > 0 {
					runOccurrence(cr, bi, ts)
				}
				if exceeded {
					return nil, false
				}
			}
		}
	}
	for _, r := range heads {
		r.CompactIndexes()
	}
	return &fixAux{idb: heads}, true
}
