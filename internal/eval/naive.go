package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/storage"
)

// compiledRule pairs a rule with its compiled body, head projection and —
// when an order book is in force — its cost-chosen join orders.
type compiledRule struct {
	rule  ast.Rule
	conj  *Conj
	slots []int
	fixed storage.Tuple
	// ord is the rule's compiled ordering decision, nil when evaluation
	// uses the dynamic greedy ordering (no book, or the body was too large
	// for the search).
	ord *ruleOrder
}

// fullOrder returns the compiled order for a full evaluation (nil = dynamic).
func (cr *compiledRule) fullOrder() []int {
	if cr.ord == nil {
		return nil
	}
	return cr.ord.full
}

// seededOrder returns the compiled order with atom bi leading (the delta
// occurrence), and its per-input-tuple cost estimate.
func (cr *compiledRule) seededOrder(bi int) ([]int, float64) {
	if cr.ord == nil || bi >= len(cr.ord.seeded) {
		return nil, 0
	}
	return cr.ord.seeded[bi], cr.ord.seedCost[bi]
}

func compileRules(syms *storage.Symbols, rules []ast.Rule, book *orderBook) ([]compiledRule, error) {
	out := make([]compiledRule, 0, len(rules))
	for _, r := range rules {
		c := CompileConj(syms, r.Body)
		slots, fixed, err := HeadSlots(c, syms, r.Head)
		if err != nil {
			return nil, fmt.Errorf("rule %v: %w", r, err)
		}
		out = append(out, compiledRule{rule: r, conj: c, slots: slots, fixed: fixed, ord: book.orderFor(r)})
	}
	return out, nil
}

// prepare returns a working database that shares EDB relations with db but
// owns fresh (or cloned) relations for every IDB predicate, plus the list
// of IDB predicates. Program facts are inserted into the working database.
func prepare(prog *ast.Program, db *storage.Database) (*storage.Database, map[string]bool, error) {
	work := storage.NewDatabaseWithSymbols(db.Syms)
	idb := make(map[string]bool)
	for _, r := range prog.Rules {
		idb[r.Head.Pred] = true
	}
	// Share EDB relations; clone or create IDB relations.
	for _, pred := range db.Preds() {
		if idb[pred] {
			work.Set(pred, db.Rel(pred).Clone())
		} else {
			work.Set(pred, db.Rel(pred))
		}
	}
	for _, r := range prog.Rules {
		if _, err := work.Ensure(r.Head.Pred, r.Head.Arity()); err != nil {
			return nil, nil, err
		}
	}
	for _, f := range prog.Facts {
		names := make([]string, len(f.Args))
		for i, t := range f.Args {
			names[i] = t.Name
		}
		if idb[f.Pred] {
			if _, err := work.Insert(f.Pred, names...); err != nil {
				return nil, nil, err
			}
		} else {
			// EDB facts belong to the caller's database; inserting here
			// would mutate a shared relation, so clone first.
			r := work.Rel(f.Pred)
			if r == nil {
				if _, err := work.Ensure(f.Pred, len(f.Args)); err != nil {
					return nil, nil, err
				}
			} else if db.Rel(f.Pred) == r {
				work.Set(f.Pred, r.Clone())
			}
			if _, err := work.Insert(f.Pred, names...); err != nil {
				return nil, nil, err
			}
		}
	}
	return work, idb, nil
}

// strataOf returns the evaluation groups of the program: a single group
// holding every rule for pure positive programs, or the stratification for
// programs with negated literals (ast.Stratify errors on recursion through
// negation or unsafe rules).
func strataOf(prog *ast.Program) ([][]ast.Rule, error) {
	if !ast.HasNegation(prog) {
		if len(prog.Rules) == 0 {
			return nil, nil
		}
		return [][]ast.Rule{prog.Rules}, nil
	}
	return ast.Stratify(prog)
}

// Naive computes the bottom-up fixpoint of the program over db by full
// re-evaluation each round — the textbook baseline. Programs with negated
// body literals are evaluated stratum by stratum (stratified semantics).
// The returned database shares EDB relations with db and holds the
// materialized IDB relations.
func Naive(prog *ast.Program, db *storage.Database) (*storage.Database, Stats, error) {
	return NaiveOpts(prog, db, Opts{})
}

// NaiveOpts is Naive with instrumentation: per-round records in Stats.Trace
// and through opts.Observer, spans (fixpoint → round → per-rule join) on
// opts.Tracer, and counters on the metrics registry.
func NaiveOpts(prog *ast.Program, db *storage.Database, opts Opts) (*storage.Database, Stats, error) {
	work, idb, err := prepare(prog, db)
	if err != nil {
		return nil, Stats{}, err
	}
	strata, err := strataOf(prog)
	if err != nil {
		return nil, Stats{}, err
	}
	opts = opts.withAutoBook(db.Syms, prog.Rules, db)
	fix := opts.parent().Child("fixpoint").SetStr("engine", "naive")
	defer fix.End()
	var st Stats
	sink := newRoundSink(&st, opts, fix)
	round := 0
	for si, group := range strata {
		rules, err := compileRules(db.Syms, group, opts.book)
		if err != nil {
			return nil, st, err
		}
		r0 := round
		if err := naiveFixpoint(work, rules, si, &round, &st, &sink); err != nil {
			return nil, st, err
		}
		sink.stratumDone(round - r0)
	}
	fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
	flushDB(opts, &st, work, idb)
	return work, st, nil
}

// naiveFixpoint runs full re-evaluation rounds of the rule group to
// saturation within work.
func naiveFixpoint(work *storage.Database, rules []compiledRule, stratum int, round *int, st *Stats, sink *roundSink) error {
	rels := DBRels(work)
	// One full re-evaluation of the group costs the same estimate every
	// round under the compiled orders.
	var roundEst int64
	for i := range rules {
		if rules[i].ord != nil && rules[i].ord.full != nil {
			roundEst += int64(rules[i].ord.fullCost)
		}
	}
	for {
		*round++
		st.Rounds++
		sink.begin()
		added := 0
		facts0, visited0 := st.Facts, st.Visited
		for i := range rules {
			cr := &rules[i]
			var rsp *obs.Span
			if sink.traced() {
				rsp = sink.rule(cr.rule.String())
			}
			ruleAdded, ruleFacts, ruleVisited := added, st.Facts, st.Visited
			head := work.Rel(cr.rule.Head.Pred)
			buf := make(storage.Tuple, len(cr.slots))
			cr.conj.EvalWith(rels, cr.conj.NewBinding(), cr.fullOrder(), &st.Visited, func(b []storage.Value) bool {
				for i, s := range cr.slots {
					if s >= 0 {
						buf[i] = b[s]
					} else {
						buf[i] = cr.fixed[i]
					}
				}
				st.Facts++
				if head.Insert(buf) {
					added++
				}
				return true
			})
			rsp.SetInt("derived", int64(added-ruleAdded)).SetInt("attempted", int64(st.Facts-ruleFacts)).SetInt("visited", st.Visited-ruleVisited).End()
		}
		st.Derived += added
		sink.end(RoundStats{Round: *round, Stratum: stratum, Derived: added, Attempted: st.Facts - facts0,
			Estimated: roundEst, Visited: st.Visited - visited0})
		if added == 0 {
			return nil
		}
	}
}

// SemiNaive computes the same fixpoint with delta relations: each round,
// every rule is evaluated once per recursive body literal with that literal
// restricted to the previous round's delta. For the paper's linear rules
// this is the classic one-delta evaluation. Programs with negated body
// literals are evaluated stratum by stratum; within a stratum, negated
// literals and lower-strata predicates read fully materialized relations.
func SemiNaive(prog *ast.Program, db *storage.Database) (*storage.Database, Stats, error) {
	return SemiNaiveOpts(prog, db, Opts{})
}

// SemiNaiveOpts is SemiNaive with instrumentation: per-round records in
// Stats.Trace and through opts.Observer (which earlier releases silently
// ignored for this engine), spans on opts.Tracer, and counters on the
// metrics registry.
func SemiNaiveOpts(prog *ast.Program, db *storage.Database, opts Opts) (*storage.Database, Stats, error) {
	work, idb, err := prepare(prog, db)
	if err != nil {
		return nil, Stats{}, err
	}
	strata, err := strataOf(prog)
	if err != nil {
		return nil, Stats{}, err
	}
	opts = opts.withAutoBook(db.Syms, prog.Rules, db)
	fix := opts.parent().Child("fixpoint").SetStr("engine", "seminaive")
	defer fix.End()
	var st Stats
	sink := newRoundSink(&st, opts, fix)
	round := 0
	for si, group := range strata {
		rules, err := compileRules(db.Syms, group, opts.book)
		if err != nil {
			return nil, st, err
		}
		// Delta bookkeeping is scoped to the predicates this stratum
		// defines; everything below is already saturated and acts as EDB.
		local := make(map[string]bool)
		for _, r := range group {
			local[r.Head.Pred] = true
		}
		r0 := round
		if err := semiNaiveFixpoint(work, rules, local, si, &round, &st, &sink); err != nil {
			return nil, st, err
		}
		sink.stratumDone(round - r0)
	}
	fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
	flushDB(opts, &st, work, idb)
	return work, st, nil
}

// semiNaiveFixpoint saturates one rule group with delta evaluation over the
// group's own head predicates.
func semiNaiveFixpoint(work *storage.Database, rules []compiledRule, local map[string]bool, stratum int, round *int, st *Stats, sink *roundSink) error {
	delta := make(map[string]*storage.Relation)
	for pred := range local {
		delta[pred] = storage.NewRelation(work.Rel(pred).Arity())
		// Seed with anything already present (program facts).
		delta[pred].InsertAll(work.Rel(pred))
	}
	full := DBRels(work)

	// Round 0: rules with no positive local literal run once in full. The
	// whole pass is a single fixpoint round no matter how many such rules
	// the group has, and its insertions are accumulated through the same
	// per-round counter as the delta rounds below.
	hasLocalLit := func(cr *compiledRule) bool {
		for _, a := range cr.rule.Body {
			if !a.Neg && local[a.Pred] {
				return true
			}
		}
		return false
	}
	seeded := false
	for i := range rules {
		if !hasLocalLit(&rules[i]) {
			seeded = true
			break
		}
	}
	if seeded {
		st.Rounds++
		*round++
		sink.begin()
		facts0, visited0 := st.Facts, st.Visited
		added0 := 0
		var est int64
		for i := range rules {
			cr := &rules[i]
			if hasLocalLit(cr) {
				continue
			}
			var rsp *obs.Span
			if sink.traced() {
				rsp = sink.rule(cr.rule.String())
			}
			ruleAdded, ruleFacts, ruleVisited := added0, st.Facts, st.Visited
			if cr.ord != nil && cr.ord.full != nil {
				est += int64(cr.ord.fullCost)
			}
			head := work.Rel(cr.rule.Head.Pred)
			buf := make(storage.Tuple, len(cr.slots))
			cr.conj.EvalWith(full, cr.conj.NewBinding(), cr.fullOrder(), &st.Visited, func(b []storage.Value) bool {
				for i, s := range cr.slots {
					if s >= 0 {
						buf[i] = b[s]
					} else {
						buf[i] = cr.fixed[i]
					}
				}
				st.Facts++
				if head.Insert(buf) {
					added0++
					delta[cr.rule.Head.Pred].Insert(buf)
				}
				return true
			})
			rsp.SetInt("derived", int64(added0-ruleAdded)).SetInt("attempted", int64(st.Facts-ruleFacts)).SetInt("visited", st.Visited-ruleVisited).End()
		}
		st.Derived += added0
		sink.end(RoundStats{Round: *round, Stratum: stratum, Derived: added0, Attempted: st.Facts - facts0,
			Estimated: est, Visited: st.Visited - visited0})
	}

	for {
		st.Rounds++
		*round++
		sink.begin()
		facts0, visited0 := st.Facts, st.Visited
		deltaSize := 0
		for _, d := range delta {
			deltaSize += d.Len()
		}
		next := make(map[string]*storage.Relation)
		for pred := range local {
			next[pred] = storage.NewRelation(work.Rel(pred).Arity())
		}
		added := 0
		var est int64
		for ri := range rules {
			cr := &rules[ri]
			for bi, a := range cr.rule.Body {
				if a.Neg || !local[a.Pred] {
					continue
				}
				deltaIdx := bi
				deltaPred := a.Pred
				if delta[deltaPred].Len() == 0 {
					continue
				}
				var rsp *obs.Span
				if sink.traced() {
					rsp = sink.rule(cr.rule.String())
				}
				ruleAdded, ruleFacts, ruleVisited := added, st.Facts, st.Visited
				rels := func(pred string, atomIdx int) *storage.Relation {
					if atomIdx == deltaIdx {
						return delta[deltaPred]
					}
					return work.Rel(pred)
				}
				// The compiled order for a delta round leads with the delta
				// occurrence (the frontier is the selective input); the
				// round estimate is the per-tuple continuation cost times
				// the frontier size.
				ord, perTuple := cr.seededOrder(bi)
				if ord != nil {
					// +1 per frontier tuple: enumerating the delta itself.
					est += int64((perTuple + 1) * float64(delta[deltaPred].Len()))
				}
				head := work.Rel(cr.rule.Head.Pred)
				buf := make(storage.Tuple, len(cr.slots))
				cr.conj.EvalWith(rels, cr.conj.NewBinding(), ord, &st.Visited, func(b []storage.Value) bool {
					for i, s := range cr.slots {
						if s >= 0 {
							buf[i] = b[s]
						} else {
							buf[i] = cr.fixed[i]
						}
					}
					st.Facts++
					if head.Insert(buf) {
						added++
						next[cr.rule.Head.Pred].Insert(buf)
					}
					return true
				})
				rsp.SetInt("derived", int64(added-ruleAdded)).SetInt("attempted", int64(st.Facts-ruleFacts)).SetInt("visited", st.Visited-ruleVisited).End()
			}
		}
		st.Derived += added
		sink.end(RoundStats{Round: *round, Stratum: stratum, Delta: deltaSize, Derived: added, Attempted: st.Facts - facts0,
			Estimated: est, Visited: st.Visited - visited0})
		if added == 0 {
			return nil
		}
		delta = next
	}
}

// AnswerQuery selects from the materialized database the tuples matching the
// query atom's constants and returns them as a relation of the query's
// arity.
func AnswerQuery(db *storage.Database, q ast.Query) (*storage.Relation, error) {
	rel := db.Rel(q.Atom.Pred)
	out := storage.NewRelation(q.Atom.Arity())
	if rel == nil {
		return out, nil
	}
	if rel.Arity() != q.Atom.Arity() {
		return nil, fmt.Errorf("eval: query arity %d vs relation %d", q.Atom.Arity(), rel.Arity())
	}
	bound := make([]bool, q.Atom.Arity())
	vals := make(storage.Tuple, q.Atom.Arity())
	for i, t := range q.Atom.Args {
		if !t.IsVar() {
			bound[i] = true
			v, ok := db.Syms.Lookup(t.Name)
			if !ok {
				return out, nil // constant not in the database: no answers
			}
			vals[i] = v
		}
	}
	rel.EachMatch(bound, vals, func(t storage.Tuple) bool {
		out.Insert(t)
		return true
	})
	return out, nil
}
