package eval

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/paper"
	"repro/internal/parser"
	"repro/internal/storage"
)

func mustStatement(t testing.TB, id string) paper.Statement {
	t.Helper()
	s, ok := paper.ByID(id)
	if !ok {
		t.Fatalf("unknown statement %s", id)
	}
	return s
}

func chainDB(t testing.TB, n int) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	if err := storage.GenChain(db, "a", n); err != nil {
		t.Fatal(err)
	}
	// Exit relation: e(x, y) iff a(x, y) — TC of the chain.
	db.Set("e", db.Rel("a").Clone())
	return db
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		StrategyNaive:     "naive",
		StrategySemiNaive: "seminaive",
		StrategyMagic:     "magic",
		StrategyState:     "state",
		StrategyClass:     "class",
		StrategyParallel:  "parallel",
		StrategyAuto:      "auto",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %s != %s", s, s, want)
		}
	}
	if len(Strategies()) != 7 {
		t.Errorf("Strategies() = %d", len(Strategies()))
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy must still render")
	}
}

func TestAnswerUnknownStrategy(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 4)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	if _, _, err := Answer(Strategy(99), sys, q, db); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTCBoundQueryAllStrategies(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 8)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	for _, s := range Strategies() {
		ans, _, err := Answer(s, sys, q, db)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if ans.Len() != 7 {
			t.Errorf("%v: answers = %d, want 7", s, ans.Len())
		}
	}
}

func TestQueryConstantAbsentFromDB(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 4)
	q, _ := parser.ParseQuery("?- p(ghost, Y).")
	for _, s := range Strategies() {
		ans, _, err := Answer(s, sys, q, db)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if ans.Len() != 0 {
			t.Errorf("%v: answers for unknown constant = %d", s, ans.Len())
		}
	}
}

func TestQueryMismatchErrors(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 4)
	badArity, _ := parser.ParseQuery("?- p(n0, Y, Z).")
	badPred, _ := parser.ParseQuery("?- q(n0, Y).")
	for _, q := range []ast.Query{badArity, badPred} {
		for _, s := range []Strategy{StrategyMagic, StrategyState, StrategyClass} {
			if _, _, err := Answer(s, sys, q, db); err == nil {
				t.Errorf("%v accepted bad query %v", s, q)
			}
		}
	}
}

func TestMaterializeExit(t *testing.T) {
	// Two exit rules union into one exit relation; one has a join body.
	rec := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	e1 := parser.MustParseRule("p(X, Y) :- base(X, Y).")
	e2 := parser.MustParseRule("p(X, Y) :- left(X, W), right(W, Y).")
	sys, err := ast.NewRecursiveSystem(rec, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	db.Insert("base", "x", "y")
	db.Insert("left", "l", "m")
	db.Insert("right", "m", "r")
	db.Insert("right", "q", "r")
	rel, err := MaterializeExit(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("exit relation = %d tuples, want 2", rel.Len())
	}
	x, _ := db.Syms.Lookup("l")
	y, _ := db.Syms.Lookup("r")
	if !rel.Contains(storage.Tuple{x, y}) {
		t.Error("joined exit tuple missing")
	}
}

func TestMultiExitSystemsAgree(t *testing.T) {
	rec := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	e1 := parser.MustParseRule("p(X, Y) :- e(X, Y).")
	e2 := parser.MustParseRule("p(X, Y) :- f(Y, X).")
	sys, err := ast.NewRecursiveSystem(rec, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 6)
	storage.GenRandomRelation(db, "e", 2, 6, 6, 3)
	storage.GenRandomRelation(db, "f", 2, 6, 6, 4)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	ref, _, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategySemiNaive, StrategyMagic, StrategyState, StrategyClass} {
		got, _, err := Answer(s, sys, q, db)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Equal(ref) {
			t.Errorf("%v differs with multiple exits: %d vs %d", s, got.Len(), ref.Len())
		}
	}
}

func TestStableEvalRequiresStable(t *testing.T) {
	s := mustStatement(t, "s9")
	sys := s.System()
	res := classify.MustClassify(sys.Recursive)
	db := storage.NewDatabase()
	if _, err := NewStableEval(sys, res, db); err == nil {
		t.Error("StableEval accepted an unstable system")
	}
}

func TestBoundedEvalNegativeRank(t *testing.T) {
	sys := mustStatement(t, "s10").System()
	db := storage.NewDatabase()
	q, _ := parser.ParseQuery("?- p(X, Y).")
	if _, _, err := BoundedEval(sys, -1, q, db); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestStatsReporting(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 12)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	_, naive, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	_, class, err := Answer(StrategyClass, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Facts <= class.Facts {
		t.Errorf("naive attempted %d inserts, compiled %d: selection pushdown should do less work",
			naive.Facts, class.Facts)
	}
	if class.Derived != 11 {
		t.Errorf("compiled derived %d answers, want 11", class.Derived)
	}
	if naive.String() == "" {
		t.Error("stats must render")
	}
}

func TestSemiNaiveMatchesNaiveOnNonLinear(t *testing.T) {
	// The bottom-up engines accept arbitrary Datalog, e.g. the non-linear
	// doubling formulation of TC — outside the paper's fragment but a good
	// substrate check.
	prog, _, err := parser.ParseProgram(`
		p(X, Y) :- e(X, Y).
		p(X, Y) :- p(X, Z), p(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	storage.GenChain(db, "e", 10)
	a, _, err := Naive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel("p").Equal(b.Rel("p")) {
		t.Error("naive and semi-naive differ on non-linear rules")
	}
	if a.Rel("p").Len() != 45 {
		t.Errorf("TC of 10-chain = %d pairs, want 45", a.Rel("p").Len())
	}
}

func TestNaiveDoesNotMutateInputDB(t *testing.T) {
	prog, _, _ := parser.ParseProgram(`
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
		e(zz, ww).
	`)
	db := storage.NewDatabase()
	storage.GenChain(db, "e", 4)
	before := db.Rel("e").Len()
	if _, _, err := Naive(prog, db); err != nil {
		t.Fatal(err)
	}
	if db.Rel("e").Len() != before {
		t.Error("program facts leaked into the caller's EDB relation")
	}
	if db.Rel("p") != nil {
		t.Error("IDB relation leaked into the caller's database")
	}
}

func TestAnswerQueryFilters(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("p", "a", "b")
	db.Insert("p", "a", "c")
	db.Insert("p", "d", "b")
	q, _ := parser.ParseQuery("?- p(a, Y).")
	ans, err := AnswerQuery(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Errorf("answers = %d", ans.Len())
	}
	qm, _ := parser.ParseQuery("?- missing(X).")
	if ans, err := AnswerQuery(db, qm); err != nil || ans.Len() != 0 {
		t.Errorf("missing relation: %v/%v", ans.Len(), err)
	}
	qa, _ := parser.ParseQuery("?- p(a, Y, Z).")
	if _, err := AnswerQuery(db, qa); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestMagicSetsAllFreeDegenerates(t *testing.T) {
	// With no bound position, magic sets degenerate gracefully to full
	// evaluation via a 0-ary magic seed.
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 6)
	q, _ := parser.ParseQuery("?- p(X, Y).")
	got, _, err := MagicSets(sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Errorf("magic all-free differs: %d vs %d", got.Len(), ref.Len())
	}
}
