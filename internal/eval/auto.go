package eval

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// The classification-driven compiler layer. CompilePlan classifies a
// recursive system once and fixes the evaluation strategy the paper's
// analysis licenses, materializing the database-independent rewriting
// artifacts (the bounded expansion union, the stabilized system) so that
// Plan.Answer only does per-database work. Plans are immutable after
// compilation and safe for concurrent Answer calls on distinct databases;
// the Planner in plancache.go caches them per (program, adornment).

// PlanKind names the compiled fast path chosen for a system.
type PlanKind uint8

const (
	// PlanTC runs the frontier-BFS transitive-closure kernel (tc.go).
	PlanTC PlanKind = iota
	// PlanBounded evaluates the finite non-recursive expansion union in a
	// single stratified pass (§5; no fixpoint).
	PlanBounded
	// PlanStable runs the parallel semi-naive engine on the Theorem-2/4
	// stabilized system.
	PlanStable
	// PlanGeneric runs the parallel semi-naive engine on the original
	// system (classes C, E, F: the paper gives no closed plan).
	PlanGeneric
)

// String names the fast path for traces and the class→strategy table.
func (k PlanKind) String() string {
	switch k {
	case PlanTC:
		return "tc-frontier"
	case PlanBounded:
		return "bounded-union"
	case PlanStable:
		return "stable-parallel"
	case PlanGeneric:
		return "generic-parallel"
	}
	return fmt.Sprintf("PlanKind(%d)", uint8(k))
}

// Plan is a compiled evaluation plan for one recursive system: the
// classification outcome plus the database-independent artifacts of the
// chosen fast path.
type Plan struct {
	// Class is the paper's classification code (A1–A5, B, C, D, E, F).
	Class string
	// Kind is the chosen fast path.
	Kind PlanKind

	sys    *ast.RecursiveSystem // original system (PlanTC, PlanGeneric)
	tc     *tcShape             // PlanTC
	rank   int                  // PlanBounded
	rules  []ast.Rule           // PlanBounded: exit + substituted expansions
	stable *ast.RecursiveSystem // PlanStable: the stabilized system

	// book holds the cost-based join orders compiled from the plan
	// database's column statistics (cost.go); nil when the plan was
	// compiled without a database (CompilePlan/CompilePlanOpts) or for the
	// TC kernel, which never enumerates conjunctions. The planner's cache
	// key includes the database's statistics epoch, so a book can never
	// outlive the statistics it was computed from.
	book *orderBook
}

// CompilePlan classifies the system and compiles the class-appropriate
// plan. Selection order: the transitive-closure shape (its kernel beats
// every generic engine on its workload), then boundedness (recursion
// elimination), then transformability (stabilize, then parallel
// semi-naive), then the generic parallel engine.
func CompilePlan(sys *ast.RecursiveSystem) (*Plan, error) {
	return CompilePlanOpts(sys, Opts{})
}

// CompilePlanOpts is CompilePlan with instrumentation: the classification is
// recorded under a "classify" span (class code, rank when bounded) and the
// strategy selection plus rewriting under a "plan-compile" span (kind).
func CompilePlanOpts(sys *ast.RecursiveSystem, opts Opts) (*Plan, error) {
	return CompilePlanDB(sys, nil, nil, opts)
}

// CompilePlanDB is CompilePlanOpts additionally compiling the plan's
// cost-based join orders from db's column statistics (a nil db yields a
// bookless plan — every engine then keeps the runtime greedy ordering).
// bound flags the query's adorned head argument positions (true = the query
// supplies a constant there); the bounded path pre-binds those variables
// when costing its expansion rules, which is why the plan cache keys plans
// by adornment. The chosen orders and the summed cost estimate land on the
// "plan-compile" span and in PlanInfo.
func CompilePlanDB(sys *ast.RecursiveSystem, db *storage.Database, bound []bool, opts Opts) (*Plan, error) {
	cls := opts.parent().Child("classify")
	res, err := classify.Classify(sys.Recursive)
	if err != nil {
		cls.End()
		return nil, err
	}
	cls.SetStr("class", res.Class.Code())
	if res.Bounded {
		cls.SetInt("rank", int64(res.RankBound))
	}
	cls.End()
	pc := opts.parent().Child("plan-compile")
	defer pc.End()
	p, err := compilePlan(sys, res)
	if err != nil {
		return nil, err
	}
	if db != nil {
		p.compileBook(db, bound)
		if p.book != nil {
			pc.SetInt("cost", int64(p.book.cost))
			if len(p.book.desc) > 0 {
				pc.SetStr("orders", strings.Join(p.book.desc, "; "))
			}
		}
	}
	pc.SetStr("kind", p.Kind.String())
	return p, nil
}

// compileBook attaches the kind-appropriate order book: the rules the
// chosen engine will actually enumerate (the stabilized system's for
// PlanStable, the expansion union's for PlanBounded), costed against db's
// current statistics. The TC kernel gets none — its frontier BFS never
// runs a conjunction.
func (p *Plan) compileBook(db *storage.Database, bound []bool) {
	switch p.Kind {
	case PlanTC:
	case PlanBounded:
		boundOf := func(r ast.Rule) map[string]bool {
			m := make(map[string]bool, len(bound))
			for i, t := range r.Head.Args {
				if i < len(bound) && bound[i] && t.IsVar() {
					m[t.Name] = true
				}
			}
			return m
		}
		p.book = compileOrderBook(db.Syms, p.rules, db, boundOf)
	case PlanStable:
		p.book = compileOrderBook(db.Syms, p.stable.Program().Rules, db, nil)
	default:
		p.book = compileOrderBook(db.Syms, p.sys.Program().Rules, db, nil)
	}
}

// planInfo builds the Stats.Plan record for one answered query.
func (p *Plan) planInfo(st *Stats) *PlanInfo {
	pi := &PlanInfo{Class: p.Class, Strategy: p.Kind.String(), Shards: st.Shards}
	if p.book != nil {
		pi.Cost = int64(p.book.cost)
		pi.Orders = p.book.desc
	}
	return pi
}

// compilePlan builds the plan for a precomputed classification.
func compilePlan(sys *ast.RecursiveSystem, res *classify.Result) (*Plan, error) {
	p := &Plan{Class: res.Class.Code(), sys: sys}
	if shape, ok := detectTC(sys); ok {
		p.Kind = PlanTC
		p.tc = shape
		return p, nil
	}
	if res.Bounded {
		rules, err := rewrite.NonRecursiveExpansions(sys, res.RankBound)
		if err != nil {
			return nil, err
		}
		p.Kind = PlanBounded
		p.rank = res.RankBound
		p.rules = rules
		return p, nil
	}
	if res.Transformable && !res.Stable {
		stable, err := rewrite.ToStableClassified(sys, res)
		if err != nil {
			return nil, err
		}
		p.Kind = PlanStable
		p.stable = stable
		return p, nil
	}
	p.Kind = PlanGeneric
	return p, nil
}

// Answer evaluates the query over the database along the compiled path.
// Stats.Plan carries the plan's class and strategy; the planner overwrites
// its CacheHit field when the plan came from the cache.
func (p *Plan) Answer(q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return p.AnswerOpts(q, db, Opts{})
}

// AnswerOpts is Answer with instrumentation threaded into the compiled
// path's engine.
func (p *Plan) AnswerOpts(q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	rel, st, err := p.answer(q, db, opts)
	if err != nil {
		return nil, st, err
	}
	st.Plan = p.planInfo(&st)
	return rel, st, nil
}

func (p *Plan) answer(q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	if opts.book == nil {
		opts.book = p.book
	}
	switch p.Kind {
	case PlanTC:
		return TCEvalOpts(p.sys, p.tc, q, db, opts)
	case PlanBounded:
		return boundedAnswer(p.sys, p.rules, q, db, opts)
	case PlanStable:
		return parallelAnswer(p.stable, q, db, opts)
	default:
		return parallelAnswer(p.sys, q, db, opts)
	}
}

// answerAux is the serving-path variant of AnswerOpts: alongside the answer
// it returns the plan-class-specific state the result cache needs to
// maintain the entry incrementally across writes (maintain.go) — the exit
// relation and BFS closure for TC plans, the materialized IDB fixpoint for
// the parallel plans, nil for bounded plans (their answers alone suffice).
func (p *Plan) answerAux(q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, any, Stats, error) {
	var (
		rel *storage.Relation
		aux any
		st  Stats
		err error
	)
	if opts.book == nil {
		opts.book = p.book
	}
	switch p.Kind {
	case PlanTC:
		var ta *tcAux
		rel, ta, st, err = tcEvalAux(p.sys, p.tc, q, db, opts)
		if ta != nil {
			aux = ta
		}
	case PlanBounded:
		rel, st, err = boundedAnswer(p.sys, p.rules, q, db, opts)
	case PlanStable:
		rel, aux, st, err = fixpointAnswerAux(p.stable, q, db, opts)
	default:
		rel, aux, st, err = fixpointAnswerAux(p.sys, q, db, opts)
	}
	if err != nil {
		return nil, nil, st, err
	}
	st.Plan = p.planInfo(&st)
	return rel, aux, st, nil
}

// parallelAnswer runs the fixpoint engine over the system's program and
// selects the query's answers. The engine is chosen per database: the
// sharded kernel for large inputs (chooseShards), the plain parallel engine
// otherwise — plans are database-independent, so the decision cannot be
// made at compile time.
func parallelAnswer(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	out, st, err := shardedSemiNaive(sys.Program(), db, opts, "", nil)
	if err != nil {
		return nil, st, err
	}
	ans, err := AnswerQuery(out, q)
	return ans, st, err
}

// fixpointAnswerAux is parallelAnswer keeping the materialized IDB fixpoint
// as the entry's maintenance state.
func fixpointAnswerAux(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, any, Stats, error) {
	prog := sys.Program()
	out, st, err := shardedSemiNaive(prog, db, opts, "", nil)
	if err != nil {
		return nil, nil, st, err
	}
	ans, err := AnswerQuery(out, q)
	if err != nil {
		return nil, nil, st, err
	}
	return ans, newFixAux(prog, out), st, nil
}
