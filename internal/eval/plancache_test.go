package eval

import (
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

func TestPlannerHitMissAccounting(t *testing.T) {
	pl := NewPlanner()
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 6)
	q, _ := parser.ParseQuery("?- p(n0, Y).")

	_, st, err := pl.Answer(sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil || st.Plan.CacheHit {
		t.Fatalf("first query: plan info %+v, want cache miss", st.Plan)
	}
	_, st, err = pl.Answer(sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil || !st.Plan.CacheHit {
		t.Fatalf("repeated query: plan info %+v, want cache hit", st.Plan)
	}
	if hits, misses := pl.Metrics(); hits != 1 || misses != 1 {
		t.Errorf("metrics = %d hits / %d misses, want 1/1", hits, misses)
	}
	if pl.Len() != 1 {
		t.Errorf("cache size = %d, want 1", pl.Len())
	}

	// A different adornment of the same program keys separately.
	q2, _ := parser.ParseQuery("?- p(X, Y).")
	if _, st, err = pl.Answer(sys, q2, db); err != nil || st.Plan.CacheHit {
		t.Fatalf("new adornment: hit=%v err=%v, want miss", st.Plan.CacheHit, err)
	}
	// Same adornment, different constant: the plan is per query *form*.
	q3, _ := parser.ParseQuery("?- p(n3, Y).")
	if _, st, err = pl.Answer(sys, q3, db); err != nil || !st.Plan.CacheHit {
		t.Fatalf("same adornment, new constant: hit=%v err=%v, want hit", st.Plan.CacheHit, err)
	}
	if hits, misses := pl.Metrics(); hits != 2 || misses != 2 {
		t.Errorf("metrics = %d/%d, want 2/2", hits, misses)
	}
	if pl.Len() != 2 {
		t.Errorf("cache size = %d, want 2", pl.Len())
	}
}

func TestPlannerInvalidation(t *testing.T) {
	pl := NewPlanner()
	db := chainDB(t, 6)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	qf, _ := parser.ParseQuery("?- p(X, Y).")

	sysA := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	if _, _, err := pl.Answer(sysA, q, db); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl.Answer(sysA, qf, db); err != nil {
		t.Fatal(err)
	}

	// A changed rule set never sees the old plan: the key covers the full
	// canonical rule text.
	sysB := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).",
		"p(X, Y) :- e(X, Y).", "p(X, Y) :- g(Y, X).")
	ansA, stB, err := pl.Answer(sysB, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Plan.CacheHit {
		t.Error("changed rule set served a cached plan")
	}
	// The extra exit must actually contribute (g is absent here, so compare
	// against a fresh evaluation to prove the right system ran).
	ref, _, err := Answer(StrategyNaive, sysB, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ansA.Equal(ref) {
		t.Errorf("plan for changed system answered %d tuples, want %d", ansA.Len(), ref.Len())
	}

	// Invalidate is a deprecated no-op: keys cover the full canonical rule
	// text, so there is nothing stale to drop by hand.
	if n := pl.Invalidate(sysA); n != 0 {
		t.Errorf("Invalidate(sysA) removed %d entries, want 0 (no-op shim)", n)
	}
	if pl.Len() != 3 {
		t.Errorf("cache size after Invalidate = %d, want 3 (untouched)", pl.Len())
	}
	if _, st, err := pl.Answer(sysA, q, db); err != nil || !st.Plan.CacheHit {
		t.Errorf("Invalidate must not evict content-keyed plans: hit=%v err=%v", st.Plan.CacheHit, err)
	}

	pl.Reset()
	if h, m := pl.Metrics(); pl.Len() != 0 || h != 0 || m != 0 {
		t.Errorf("Reset left size=%d hits=%d misses=%d", pl.Len(), h, m)
	}
}

// TestPlannerEpochKeying covers the serving path: the same program and query
// form at different snapshot epochs key separate entries, and entries whose
// epoch falls behind the newest seen epoch by more than the pruning window
// are dropped automatically. Epoch-0 (epochless) entries are never pruned.
func TestPlannerEpochKeying(t *testing.T) {
	pl := NewPlanner()
	db := chainDB(t, 6)
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, _ := parser.ParseQuery("?- p(n0, Y).")

	// Epochless entry (PlanForOpts path).
	if _, hit, err := pl.PlanForOpts(sys, q, Opts{}); err != nil || hit {
		t.Fatalf("epochless first lookup: hit=%v err=%v, want miss", hit, err)
	}
	// Epoch 1 keys separately from epochless.
	if _, hit, err := pl.PlanForEpoch(sys, q, 1, nil, Opts{}); err != nil || hit {
		t.Fatalf("epoch 1 first lookup: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := pl.PlanForEpoch(sys, q, 1, nil, Opts{}); err != nil || !hit {
		t.Fatalf("epoch 1 repeat: hit=%v err=%v, want hit", hit, err)
	}
	if pl.Len() != 2 {
		t.Fatalf("cache size = %d, want 2 (epochless + epoch 1)", pl.Len())
	}

	// Advancing far past the window prunes epoch 1 but keeps epoch 0.
	far := uint64(1 + planEpochWindow)
	if _, hit, err := pl.PlanForEpoch(sys, q, far, nil, Opts{}); err != nil || hit {
		t.Fatalf("epoch %d lookup: hit=%v err=%v, want miss", far, hit, err)
	}
	if pl.Len() != 2 {
		t.Errorf("cache size after prune = %d, want 2 (epochless + epoch %d)", pl.Len(), far)
	}
	if _, hit, err := pl.PlanForEpoch(sys, q, 1, nil, Opts{}); err != nil || hit {
		t.Errorf("pruned epoch 1 must recompile: hit=%v err=%v", hit, err)
	}
	if got := pl.Invalidations(); got != 1 {
		t.Errorf("Invalidations() = %d, want 1 (one pruned entry)", got)
	}
	if _, hit, err := pl.PlanForOpts(sys, q, Opts{}); err != nil || !hit {
		t.Errorf("epochless entry must survive pruning: hit=%v err=%v", hit, err)
	}

	// AnswerSnap keys by the snapshot's epoch and answers correctly.
	snap := db.Snapshot()
	got, st, err := pl.AnswerSnap(sys, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Answer(StrategySemiNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Errorf("AnswerSnap answered %d tuples, want %d", got.Len(), ref.Len())
	}
	if st.Plan == nil {
		t.Error("AnswerSnap stats missing plan info")
	}
}

// TestPlannerConcurrent hammers one Planner from many goroutines (run under
// -race by `make verify`): every goroutine uses its own database, so the
// only shared state is the cache itself.
func TestPlannerConcurrent(t *testing.T) {
	pl := NewPlanner()
	// The systems and queries are shared across workers: concurrent PlanFor
	// calls race on the same keys, exercising the first-entry-wins path.
	systems := []*ast.RecursiveSystem{
		mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y)."),          // TC plan
		mustSystem(t, "p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).", "p(X, Y) :- e(X, Y)."), // bounded plan (s10 shape)
	}
	var queries []ast.Query
	for _, qs := range []string{"?- p(n0, Y).", "?- p(X, Y)."} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sys := systems[(w+i)%len(systems)]
				// Per-goroutine database: the cache is the only shared state.
				db := storage.NewDatabase()
				if err := storage.GenChain(db, "a", 6); err != nil {
					errs <- err
					return
				}
				storage.GenRandomRelation(db, "b", 1, 6, 4, int64(w))
				storage.GenRandomRelation(db, "c", 2, 6, 6, int64(i))
				db.Set("e", db.Rel("a").Clone())
				q := queries[i%len(queries)]
				got, _, err := pl.Answer(sys, q, db)
				if err != nil {
					errs <- err
					return
				}
				ref, _, err := Answer(StrategySemiNaive, sys, q, db)
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(ref) {
					t.Errorf("worker %d round %d: cached plan differs (%d vs %d)",
						w, i, got.Len(), ref.Len())
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := pl.Metrics()
	if hits+misses != workers*rounds {
		t.Errorf("accounting: %d hits + %d misses != %d lookups", hits, misses, workers*rounds)
	}
	if pl.Len() != len(systems)*len(queries) {
		t.Errorf("cache size = %d, want %d", pl.Len(), len(systems)*len(queries))
	}
	if misses < uint64(pl.Len()) || misses > uint64(workers*len(systems)*len(queries)) {
		t.Errorf("misses = %d outside [%d, %d]", misses, pl.Len(), workers*len(systems)*len(queries))
	}
}

// TestPlannerRegistryCounters checks the planner's cache accounting lands in
// the obs registry as monotonic counters, including across Reset (which only
// re-bases the per-planner Metrics view).
func TestPlannerRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	pl := NewPlannerWith(reg)
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 6)
	q, _ := parser.ParseQuery("?- p(n0, Y).")

	for i := 0; i < 3; i++ {
		if _, _, err := pl.Answer(sys, q, db); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("dl_plancache_misses_total").Value(); got != 1 {
		t.Errorf("registry misses = %d, want 1", got)
	}
	if got := reg.Counter("dl_plancache_hits_total").Value(); got != 2 {
		t.Errorf("registry hits = %d, want 2", got)
	}
	// Epoch pruning feeds the invalidations counter: fill an epoch, then
	// advance past the window.
	if _, _, err := pl.PlanForEpoch(sys, q, 1, nil, Opts{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl.PlanForEpoch(sys, q, 2+planEpochWindow, nil, Opts{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dl_plancache_invalidations_total").Value(); got != 1 {
		t.Errorf("registry invalidations = %d, want 1 (epoch prune)", got)
	}
	if got := pl.Invalidations(); got != 1 {
		t.Errorf("Invalidations() = %d, want 1", got)
	}

	// Reset zeroes the planner's view but never decrements the registry.
	pl.Reset()
	if h, m := pl.Metrics(); h != 0 || m != 0 {
		t.Fatalf("post-Reset Metrics = %d/%d, want 0/0", h, m)
	}
	if got := reg.Counter("dl_plancache_hits_total").Value(); got != 2 {
		t.Errorf("Reset changed registry hits to %d, want 2 (monotonic)", got)
	}
	if _, _, err := pl.Answer(sys, q, db); err != nil {
		t.Fatal(err)
	}
	if h, m := pl.Metrics(); h != 0 || m != 1 {
		t.Errorf("post-Reset lookup Metrics = %d/%d, want 0/1", h, m)
	}
	if got := reg.Counter("dl_plancache_misses_total").Value(); got != 4 {
		t.Errorf("registry misses = %d, want 4 (cumulative: 1 + 2 epoch + 1 post-Reset)", got)
	}
}
