package eval

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite the span-tree golden files")

// renderSpans renders a span tree as indented "name k=v ..." lines with the
// attributes sorted by key. Durations and start offsets are deliberately
// omitted — everything rendered is deterministic for a fixed program,
// database and worker count.
func renderSpans(s *obs.Span) string {
	var b strings.Builder
	var walk func(s *obs.Span, depth int)
	walk = func(s *obs.Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name())
		attrs := append([]obs.Attr(nil), s.Attrs()...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		for _, a := range attrs {
			if a.IsInt {
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			} else {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
			}
		}
		b.WriteByte('\n')
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return b.String()
}

// TestSpanTreeGolden pins the exact span tree (names and attributes, not
// timings) each engine emits for one fixed query. Run with -update to
// rewrite the goldens after an intentional instrumentation change.
func TestSpanTreeGolden(t *testing.T) {
	tcSys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	boundedSys := mustSystem(t, "p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).", "p(X, Y) :- e(X, Y).")
	q, err := parser.ParseQuery("?- p(n0, Y).")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func(t *testing.T, opts Opts)
	}{
		{"naive", func(t *testing.T, opts Opts) {
			if _, _, err := AnswerOpts(StrategyNaive, tcSys, q, chainDB(t, 4), opts); err != nil {
				t.Fatal(err)
			}
		}},
		{"seminaive", func(t *testing.T, opts Opts) {
			if _, _, err := AnswerOpts(StrategySemiNaive, tcSys, q, chainDB(t, 4), opts); err != nil {
				t.Fatal(err)
			}
		}},
		{"parallel", func(t *testing.T, opts Opts) {
			// One worker keeps task execution (and span attachment) in feed
			// order, so the tree is byte-for-byte reproducible.
			opts.Workers = 1
			if _, _, err := AnswerOpts(StrategyParallel, tcSys, q, chainDB(t, 4), opts); err != nil {
				t.Fatal(err)
			}
		}},
		{"auto_tc", func(t *testing.T, opts Opts) {
			if _, _, err := NewPlanner().AnswerOpts(tcSys, q, chainDB(t, 4), opts); err != nil {
				t.Fatal(err)
			}
		}},
		{"auto_bounded", func(t *testing.T, opts Opts) {
			db := chainDB(t, 4)
			if err := storage.GenRandomRelation(db, "b", 1, 4, 3, 1); err != nil {
				t.Fatal(err)
			}
			if err := storage.GenRandomRelation(db, "c", 2, 4, 5, 2); err != nil {
				t.Fatal(err)
			}
			if _, _, err := NewPlanner().AnswerOpts(boundedSys, q, db, opts); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.New("test")
			tc.run(t, Opts{Tracer: tr})
			tr.Finish()
			got := renderSpans(tr.Root())
			path := filepath.Join("testdata", "trace_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/eval -run TestSpanTreeGolden -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("span tree mismatch (-want +got):\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestParallelSpanEmissionRace drives the parallel engine with many workers
// and a live tracer: workers attach join spans to the shared round span
// concurrently, which the race detector checks when the suite runs under
// -race (make race).
func TestParallelSpanEmissionRace(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, err := parser.ParseQuery("?- p(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := obs.New("race")
			db := chainDB(t, 40)
			if _, _, err := AnswerOpts(StrategyParallel, sys, q, db, Opts{Tracer: tr, Workers: 8}); err != nil {
				t.Error(err)
				return
			}
			tr.Finish()
			fix := tr.Root().Find("fixpoint")
			if fix == nil || len(fix.Children()) == 0 {
				t.Error("parallel run emitted no round spans")
			}
		}()
	}
	wg.Wait()
}

// TestUntracedRoundSinkZeroAlloc pins the no-op-tracer cost of the per-rule
// span hooks that sit inside every fixpoint round.
func TestUntracedRoundSinkZeroAlloc(t *testing.T) {
	var st Stats
	sink := newRoundSink(&st, Opts{}, nil)
	if n := testing.AllocsPerRun(1000, func() {
		if sink.traced() {
			t.Fatal("nil fixpoint span reports traced")
		}
		rsp := sink.rule("never")
		rsp.SetInt("derived", 1).End()
	}); n != 0 {
		t.Errorf("untraced rule hook allocates %v per op, want 0", n)
	}
}

// TestObserverFiresForSequentialEngines locks in the satellite fix: the
// Observer shim now receives rounds from the sequential engines too (it was
// silently ignored by them before).
func TestObserverFiresForSequentialEngines(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, err := parser.ParseQuery("?- p(n0, Y).")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyNaive, StrategySemiNaive, StrategyParallel, StrategyState} {
		rounds := 0
		opts := Opts{Observer: ObserverFunc(func(r RoundStats) { rounds++ })}
		_, st, err := AnswerOpts(s, sys, q, chainDB(t, 5), opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rounds == 0 {
			t.Errorf("%v: observer never fired", s)
		}
		if rounds != len(st.Trace) {
			t.Errorf("%v: observer saw %d rounds, Stats.Trace has %d", s, rounds, len(st.Trace))
		}
	}
}

// TestMetricsRegistryPerEvaluation checks that one evaluation flushes the
// logical and storage counters into the Opts registry exactly once.
func TestMetricsRegistryPerEvaluation(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, err := parser.ParseQuery("?- p(n0, Y).")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, st, err := AnswerOpts(StrategySemiNaive, sys, q, chainDB(t, 5), Opts{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dl_evaluations_total").Value(); got != 1 {
		t.Errorf("evaluations = %d, want 1", got)
	}
	if got := reg.Counter("dl_rounds_total").Value(); got != int64(st.Rounds) {
		t.Errorf("rounds counter = %d, want %d", got, st.Rounds)
	}
	if got := reg.Counter("dl_tuples_derived_total").Value(); got != int64(st.Derived) {
		t.Errorf("derived counter = %d, want %d", got, st.Derived)
	}
	if got := reg.Counter("dl_dedup_probes_total").Value(); got <= 0 {
		t.Errorf("dedup probes = %d, want > 0", got)
	}
	if got := reg.Counter("dl_arena_bytes_total").Value(); got <= 0 {
		t.Errorf("arena bytes = %d, want > 0", got)
	}
	if got := reg.Histogram("dl_round_duration_seconds", nil).Count(); got != int64(st.Rounds) {
		t.Errorf("round duration observations = %d, want %d", got, st.Rounds)
	}
}
