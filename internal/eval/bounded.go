package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// BoundedEval evaluates a query over a bounded system (§5, §7: classes B, D
// and the bounded combinations of Theorems 10 and 11) by materializing the
// equivalent finite set of non-recursive formulas — the expansions 0..rank
// with the recursive literal replaced by the exit relation — and evaluating
// each as a conjunctive query with the query's selections pushed in. No
// fixpoint is ever computed: the work is independent of how much deeper the
// naive evaluation would iterate.
func BoundedEval(sys *ast.RecursiveSystem, rank int, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	if rank < 0 {
		return nil, Stats{}, fmt.Errorf("eval: negative rank %d", rank)
	}
	n := sys.Arity()
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != n {
		return nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, sys.Pred(), n)
	}
	rules := rewrite.NonRecursiveExpansions(sys, rank)
	answers := storage.NewRelation(n)
	var st Stats
	rels := DBRels(db)
	for _, r := range rules {
		st.Rounds++
		c := CompileConj(db.Syms, r.Body)
		binding := c.NewBinding()
		slots := make([]int, n)
		fixed := make(storage.Tuple, n)
		ok := true
		for i, t := range r.Head.Args {
			if !t.IsVar() {
				return nil, Stats{}, fmt.Errorf("eval: constant in expansion head %v", r.Head)
			}
			qa := q.Atom.Args[i]
			slot := c.VarID(t.Name)
			if !qa.IsVar() {
				// Push the query constant into the body binding.
				v, found := db.Syms.Lookup(qa.Name)
				if !found {
					ok = false
					break
				}
				if slot >= 0 {
					if binding[slot] != Unbound && binding[slot] != v {
						ok = false
						break
					}
					binding[slot] = v
				}
				slots[i] = -1
				fixed[i] = v
			} else {
				if slot < 0 {
					return nil, Stats{}, fmt.Errorf("eval: head variable %s unbound in expansion %v", t.Name, r)
				}
				slots[i] = slot
			}
		}
		if !ok {
			continue
		}
		st.Derived += c.EvalProject(rels, binding, slots, fixed, answers)
	}
	return answers, st, nil
}
