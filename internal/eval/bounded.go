package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// BoundedEval evaluates a query over a bounded system (§5, §7: classes B, D
// and the bounded combinations of Theorems 10 and 11) by materializing the
// equivalent finite set of non-recursive formulas — the expansions 0..rank
// with the recursive literal replaced by the exit relation — and evaluating
// each as a conjunctive query with the query's selections pushed in. No
// fixpoint is ever computed: the work is independent of how much deeper the
// naive evaluation would iterate.
func BoundedEval(sys *ast.RecursiveSystem, rank int, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return BoundedEvalOpts(sys, rank, q, db, Opts{})
}

// BoundedEvalOpts is BoundedEval with instrumentation: each expansion rule
// becomes one round under a "fixpoint" span tagged engine=bounded.
func BoundedEvalOpts(sys *ast.RecursiveSystem, rank int, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	if rank < 0 {
		return nil, Stats{}, fmt.Errorf("eval: negative rank %d", rank)
	}
	rules, err := rewrite.NonRecursiveExpansions(sys, rank)
	if err != nil {
		return nil, Stats{}, err
	}
	return boundedAnswer(sys, rules, q, db, opts)
}

// boundedAnswer evaluates a pre-expanded bounded union (from BoundedEval or a
// compiled PlanBounded) under the engine's span and metric plumbing.
func boundedAnswer(sys *ast.RecursiveSystem, rules []ast.Rule, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	n := sys.Arity()
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != n {
		return nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, sys.Pred(), n)
	}
	fix := opts.parent().Child("fixpoint").SetStr("engine", "bounded")
	defer fix.End()
	answers := storage.NewRelation(n)
	var st Stats
	sink := newRoundSink(&st, opts, fix)
	if err := evalNonRecursive(rules, q, db, answers, &st, &sink, opts); err != nil {
		return nil, st, err
	}
	fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
	sink.stratumDone(st.Rounds)
	flushRels(opts, &st, answers)
	return answers, st, nil
}

// EvalNonRecursive evaluates each non-recursive rule as a conjunctive query
// with the query's constants pushed into the body binding, accumulating the
// projected heads into answers. Head arguments may be constants (exit rules
// with constant heads, and expansions whose exit unification pinned a
// position): such a rule contributes only when the query agrees with the
// constant, which then appears verbatim in every answer tuple. Shared by
// BoundedEval and the auto planner's compiled bounded path.
func EvalNonRecursive(rules []ast.Rule, q ast.Query, db *storage.Database, answers *storage.Relation, st *Stats) error {
	sink := newRoundSink(st, Opts{}, nil)
	return evalNonRecursive(rules, q, db, answers, st, &sink, Opts{})
}

// evalNonRecursive is EvalNonRecursive feeding the caller's round sink: one
// round (and one join span) per expansion rule, with an abort check between
// rules.
func evalNonRecursive(rules []ast.Rule, q ast.Query, db *storage.Database, answers *storage.Relation, st *Stats, sink *roundSink, opts Opts) error {
	n := q.Atom.Arity()
	rels := DBRels(db)
	// The projection buffers are written from scratch for every rule and
	// consumed within its EvalProject call, so one pair serves all rules.
	slots := make([]int, n)
	fixed := make(storage.Tuple, n)
	for _, r := range rules {
		if opts.canceled() {
			return fmt.Errorf("bounded union: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		var rsp *obs.Span
		if sink.traced() {
			rsp = sink.rule(r.String())
		}
		c, binding, ok, err := bindHead(r, q, db, slots, fixed)
		if err != nil {
			return err
		}
		if !ok {
			rsp.End()
			sink.end(RoundStats{Round: st.Rounds})
			continue
		}
		// The plan's order book (compiled per adornment, so the pre-bound
		// head constants the search assumed are exactly the ones bindHead
		// just pushed into the binding) replaces the greedy ordering when
		// present.
		var order []int
		var est int64
		if ord := opts.book.orderFor(r); ord != nil && ord.full != nil {
			order = ord.full
			est = int64(ord.fullCost)
		}
		visited0 := st.Visited
		d := c.EvalProjectWith(rels, binding, slots, fixed, answers, order, &st.Visited)
		st.Derived += d
		rsp.SetInt("derived", int64(d)).End()
		sink.end(RoundStats{Round: st.Rounds, Derived: d, Estimated: est, Visited: st.Visited - visited0})
	}
	return nil
}

// bindHead compiles one expansion rule's body and unifies its head with the
// query: query constants are pushed into the body binding (or checked against
// constant head arguments), and the projection buffers are filled so slot i
// reads body variable slots[i], or the pinned value fixed[i] when slots[i] is
// -1. ok is false when the head cannot unify with the query — the rule
// contributes no answers. Shared by the materializing and streaming bounded
// paths.
func bindHead(r ast.Rule, q ast.Query, db *storage.Database, slots []int, fixed storage.Tuple) (*Conj, []storage.Value, bool, error) {
	c := CompileConj(db.Syms, r.Body)
	binding := c.NewBinding()
	for i, t := range r.Head.Args {
		qa := q.Atom.Args[i]
		if !t.IsVar() {
			v := db.Syms.Intern(t.Name)
			if !qa.IsVar() {
				qv, found := db.Syms.Lookup(qa.Name)
				if !found || qv != v {
					return c, binding, false, nil
				}
			}
			slots[i] = -1
			fixed[i] = v
			continue
		}
		slot := c.VarID(t.Name)
		if !qa.IsVar() {
			// Push the query constant into the body binding.
			v, found := db.Syms.Lookup(qa.Name)
			if !found {
				return c, binding, false, nil
			}
			if slot >= 0 {
				if binding[slot] != Unbound && binding[slot] != v {
					return c, binding, false, nil
				}
				binding[slot] = v
			}
			slots[i] = -1
			fixed[i] = v
		} else {
			if slot < 0 {
				return c, binding, false, fmt.Errorf("eval: head variable %s unbound in expansion %v", t.Name, r)
			}
			slots[i] = slot
		}
	}
	return c, binding, true, nil
}
