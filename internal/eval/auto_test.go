package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// TestCompilePlanSelection pins the class→strategy table of the auto
// planner on the paper's statements.
func TestCompilePlanSelection(t *testing.T) {
	cases := []struct {
		id   string
		kind PlanKind
	}{
		{"s1a", PlanTC},      // p(X,Y) :- a(X,Z), p(Z,Y): the TC shape
		{"s8", PlanBounded},  // bounded, rank 2
		{"s10", PlanBounded}, // bounded, rank 2
		{"s4a", PlanStable},  // one-directional cycle of weight 3
		{"s9", PlanGeneric},  // no licensed fast path
		{"s12", PlanGeneric}, // mixed cycles
	}
	for _, c := range cases {
		sys := mustStatement(t, c.id).System()
		p, err := CompilePlan(sys)
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if p.Kind != c.kind {
			t.Errorf("%s: plan %v (%v), want %v", c.id, p.Kind, p.Class, c.kind)
		}
		if p.Class == "" {
			t.Errorf("%s: empty class code", c.id)
		}
	}
}

func mustSystem(t testing.TB, recursive string, exits ...string) *ast.RecursiveSystem {
	t.Helper()
	rec := parser.MustParseRule(recursive)
	es := make([]ast.Rule, len(exits))
	for i, e := range exits {
		es[i] = parser.MustParseRule(e)
	}
	sys, err := ast.NewRecursiveSystem(rec, es...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDetectTCShapes enumerates shapes around the two TC orientations.
func TestDetectTCShapes(t *testing.T) {
	cases := []struct {
		rule  string
		right bool
		ok    bool
	}{
		{"p(X, Y) :- a(X, Z), p(Z, Y).", true, true},
		{"p(X, Y) :- p(X, Z), a(Z, Y).", false, true},
		// Recursive literal first, edge second — still right-linear.
		{"p(X, Y) :- p(Z, Y), a(X, Z).", true, true},
		// Head variables swapped through the recursion: not a TC chain.
		{"p(X, Y) :- a(Y, Z), p(Z, X).", false, false},
		// Extra literal: not the two-atom shape.
		{"p(X, Y) :- a(X, Z), p(Z, U), b(U, Y).", false, false},
		// Both positions flow through unchanged: no chain variable.
		{"p(X, Y) :- c(X), p(X, Y).", false, false},
	}
	for _, c := range cases {
		sys := mustSystem(t, c.rule, "p(X, Y) :- e(X, Y).")
		shape, ok := detectTC(sys)
		if ok != c.ok {
			t.Errorf("%s: detected=%v, want %v", c.rule, ok, c.ok)
			continue
		}
		if ok && shape.rightLinear != c.right {
			t.Errorf("%s: rightLinear=%v, want %v", c.rule, shape.rightLinear, c.right)
		}
	}
}

// tcTestDB builds a graph with random edges plus a random exit relation.
func tcTestDB(t testing.TB, edgePred string, domain, edges, exitTuples int, seed int64) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	if err := storage.GenRandomRelation(db, edgePred, 2, domain, edges, seed); err != nil {
		t.Fatal(err)
	}
	if err := storage.GenRandomRelation(db, "e", 2, domain, exitTuples, seed+1); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTCEvalMatchesNaive runs the frontier kernel through every adornment
// on both orientations and compares against the naive fixpoint.
func TestTCEvalMatchesNaive(t *testing.T) {
	rules := []string{
		"p(X, Y) :- a(X, Z), p(Z, Y).",
		"p(X, Y) :- p(X, Z), a(Z, Y).",
	}
	queries := []string{
		"?- p(X, Y).",
		"?- p(n1, Y).",
		"?- p(X, n2).",
		"?- p(n1, n2).",
		"?- p(n0, n0).",
	}
	for _, rule := range rules {
		sys := mustSystem(t, rule, "p(X, Y) :- e(X, Y).")
		if p, err := CompilePlan(sys); err != nil || p.Kind != PlanTC {
			t.Fatalf("%s: plan %v err %v, want PlanTC", rule, p, err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			db := tcTestDB(t, "a", 8, 14, 6, seed)
			for _, qs := range queries {
				q, err := parser.ParseQuery(qs)
				if err != nil {
					t.Fatal(err)
				}
				ref, _, err := Answer(StrategyNaive, sys, q, db)
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := Answer(StrategyAuto, sys, q, db)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(ref) {
					t.Errorf("%s seed %d %s: TC kernel %d tuples, naive %d",
						rule, seed, qs, got.Len(), ref.Len())
				}
				if st.Plan == nil || st.Plan.Strategy != PlanTC.String() {
					t.Errorf("%s %s: stats plan = %+v, want tc-frontier", rule, qs, st.Plan)
				}
			}
		}
	}
}

// TestTCEvalEdgeCases: absent edge relation (only the k = 0 stratum),
// constants missing from the database, and multi-exit systems.
func TestTCEvalEdgeCases(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).",
		"p(X, Y) :- e(X, Y).", "p(X, Y) :- g(Y, X).")
	db := storage.NewDatabase()
	storage.GenRandomRelation(db, "e", 2, 6, 5, 3)
	storage.GenRandomRelation(db, "g", 2, 6, 5, 4)
	// No "a" relation in the database at all.
	for _, qs := range []string{"?- p(X, Y).", "?- p(n1, Y).", "?- p(X, n2)."} {
		q, _ := parser.ParseQuery(qs)
		ref, _, err := Answer(StrategyNaive, sys, q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Answer(StrategyAuto, sys, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Errorf("%s: %d tuples, naive %d", qs, got.Len(), ref.Len())
		}
	}
	q, _ := parser.ParseQuery("?- p(ghost, Y).")
	if got, _, err := Answer(StrategyAuto, sys, q, db); err != nil || got.Len() != 0 {
		t.Errorf("unknown constant: %v answers, err %v", got.Len(), err)
	}
}

// TestTCKernelBeatsGenericWork: on a long chain with a bound-first query,
// the frontier kernel must touch only the reachable suffix — strictly less
// attempted work than the semi-naive fixpoint, which materializes the full
// closure before selecting.
func TestTCKernelBeatsGenericWork(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 200)
	db.Set("e", db.Rel("a").Clone())
	q, _ := parser.ParseQuery("?- p(n190, Y).")
	ref, sn, err := Answer(StrategySemiNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Answer(StrategyAuto, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatalf("answers differ: %d vs %d", got.Len(), ref.Len())
	}
	if st.Facts*10 > sn.Facts {
		t.Errorf("TC kernel attempted %d facts, semi-naive %d: expected ≥10× less work",
			st.Facts, sn.Facts)
	}
}

// TestAutoDifferentialRandomSystems is the auto-strategy half of the
// differential suite: whatever plan the compiler picks for a random system
// must agree with the semi-naive fixpoint on random databases and queries.
func TestAutoDifferentialRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	kinds := make(map[PlanKind]int)
	for trial := 0; trial < 60; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		p, err := CompilePlan(sys)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		kinds[p.Kind]++
		db, err := dlgen.RandomDB(sys, 4, 8, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			q := dlgen.RandomQuery(rng, sys, 4)
			ref, _, err := Answer(StrategySemiNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := Answer(StrategyAuto, sys, q, db)
			if err != nil {
				t.Fatalf("%v %v: %v", sys.Recursive, q, err)
			}
			if !got.Equal(ref) {
				t.Errorf("%v %v (plan %v): auto %d tuples, semi-naive %d",
					sys.Recursive, q, p.Kind, got.Len(), ref.Len())
			}
			if st.Plan == nil || st.Plan.Strategy != p.Kind.String() {
				t.Errorf("%v: stats plan %+v, want %v", sys.Recursive, st.Plan, p.Kind)
			}
		}
	}
	for _, k := range []PlanKind{PlanBounded, PlanGeneric} {
		if kinds[k] == 0 {
			t.Errorf("no random system compiled to %v: %v", k, kinds)
		}
	}
	t.Logf("plan mix over random systems: %v", kinds)
}

// TestPlanKindStrings keeps the trace vocabulary stable.
func TestPlanKindStrings(t *testing.T) {
	want := map[PlanKind]string{
		PlanTC:      "tc-frontier",
		PlanBounded: "bounded-union",
		PlanStable:  "stable-parallel",
		PlanGeneric: "generic-parallel",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: %s != %s", k, k, s)
		}
	}
	if PlanKind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
	info := PlanInfo{Class: "A5", Strategy: "tc-frontier"}
	if info.String() != "class=A5 strategy=tc-frontier cache=miss" {
		t.Errorf("PlanInfo rendering: %s", info)
	}
	info.CacheHit = true
	if info.String() != "class=A5 strategy=tc-frontier cache=hit" {
		t.Errorf("PlanInfo rendering: %s", info)
	}
	var st Stats
	st.Plan = &info
	if fmt.Sprint(st) != "rounds=0 derived=0 attempted=0 class=A5 strategy=tc-frontier cache=hit" {
		t.Errorf("Stats rendering: %v", st)
	}
}
