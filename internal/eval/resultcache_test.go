package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// TestResultCacheDifferential proves a cached answer is byte-for-byte the
// answer every engine computes fresh: for each strategy, the fresh result
// over the same data must Equal both the cold (computed) and warm (cached)
// result served through the cache.
func TestResultCacheDifferential(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	for _, qs := range []string{"?- p(n0, Y).", "?- p(X, Y)."} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		db := chainDB(t, 8)
		snap := db.Snapshot()
		pl := NewPlanner()
		rc := NewResultCache(0)

		cold, _, cached, err := rc.Answer(pl, sys, q, snap, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("%s: first answer reported cached", qs)
		}
		warm, _, cached, err := rc.Answer(pl, sys, q, snap, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("%s: second answer not cached", qs)
		}
		if warm != cold {
			t.Errorf("%s: warm hit returned a different relation object", qs)
		}
		for _, strat := range Strategies() {
			fresh, _, err := Answer(strat, sys, q, db)
			if err != nil {
				t.Fatalf("%s/%s: %v", qs, strat, err)
			}
			if !fresh.Equal(cold) {
				t.Errorf("%s: cached answer (%d tuples) != fresh %s (%d tuples)",
					qs, cold.Len(), strat, fresh.Len())
			}
		}
		if h, m, _ := rc.Metrics(); h != 1 || m != 1 {
			t.Errorf("%s: metrics = %d hits / %d misses, want 1/1", qs, h, m)
		}
	}
}

// TestResultCacheSingleflight launches N identical cold queries concurrently
// and asserts exactly one fixpoint ran: the obs registry's
// dl_evaluations_total counter (incremented once per engine evaluation)
// must read 1, the cache must record 1 miss and N-1 hits, and every caller
// must receive the same frozen relation.
func TestResultCacheSingleflight(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	db := chainDB(t, 64)
	snap := db.Snapshot()
	pl := NewPlanner()
	reg := obs.NewRegistry()
	rc := NewResultCacheWith(reg, 0)
	opts := Opts{Metrics: reg}

	const n = 16
	rels := make([]*storage.Relation, n)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			rel, _, _, err := rc.Answer(pl, sys, q, snap, opts)
			if err != nil {
				errs <- err
				return
			}
			rels[i] = rel
		}(i)
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if rels[i] != rels[0] {
			t.Fatalf("caller %d got a different relation object", i)
		}
	}
	if !rels[0].Frozen() {
		t.Error("published relation not frozen")
	}
	if got := reg.Counter("dl_evaluations_total").Value(); got != 1 {
		t.Errorf("dl_evaluations_total = %d, want 1 (singleflight)", got)
	}
	hits, misses, _ := rc.Metrics()
	if misses != 1 || hits != n-1 {
		t.Errorf("metrics = %d hits / %d misses, want %d/1", hits, misses, n-1)
	}
}

// TestResultCacheEpochInvalidation: a write advances the epoch, so the next
// snapshot misses the cache and sees the new fact; the old epoch's entry
// still serves readers pinned to the old snapshot.
func TestResultCacheEpochInvalidation(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, _ := parser.ParseQuery("?- p(X, Y).")
	db := chainDB(t, 6)
	pl := NewPlanner()
	rc := NewResultCache(0)

	snap1 := db.Snapshot()
	old, _, _, err := rc.Answer(pl, sys, q, snap1, Opts{})
	if err != nil {
		t.Fatal(err)
	}

	// Extend the chain: a(n5, n6) and the matching exit edge.
	for _, pred := range []string{"a", "e"} {
		if _, err := db.Insert(pred, "n5", "n6"); err != nil {
			t.Fatal(err)
		}
	}
	snap2 := db.Snapshot()
	if snap2.Epoch() == snap1.Epoch() {
		t.Fatal("write did not advance the epoch")
	}
	fresh, _, cached, err := rc.Answer(pl, sys, q, snap2, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("new epoch served a stale cached answer")
	}
	if fresh.Len() <= old.Len() {
		t.Errorf("new epoch answer has %d tuples, want > %d", fresh.Len(), old.Len())
	}
	// The old epoch's entry is still live for pinned readers.
	again, _, cached, err := rc.Answer(pl, sys, q, snap1, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != old {
		t.Errorf("old epoch lookup: cached=%v same=%v, want true/true", cached, again == old)
	}
	if rc.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2 (one per epoch)", rc.Len())
	}
}

// TestResultCacheEviction fills a tiny byte budget with distinct queries and
// checks LRU entries are evicted (never the newest) while the gauges track
// the live footprint.
func TestResultCacheEviction(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 32)
	snap := db.Snapshot()
	pl := NewPlanner()
	reg := obs.NewRegistry()
	rc := NewResultCacheWith(reg, 8<<10) // 8 KiB: a handful of answers at most

	const queries = 8
	for i := 0; i < queries; i++ {
		q, err := parser.ParseQuery(fmt.Sprintf("?- p(n%d, Y).", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := rc.Answer(pl, sys, q, snap, Opts{}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, evictions := rc.Metrics()
	if evictions == 0 {
		t.Fatalf("no evictions after %d answers into an 8 KiB budget", queries)
	}
	if rc.Len() == 0 || rc.Len() >= queries {
		t.Errorf("cache holds %d entries, want in (0, %d)", rc.Len(), queries)
	}
	if int(reg.Gauge("dl_resultcache_entries").Value()) != rc.Len() {
		t.Errorf("entries gauge %d != Len %d", reg.Gauge("dl_resultcache_entries").Value(), rc.Len())
	}
	if reg.Gauge("dl_resultcache_bytes").Value() != rc.Bytes() {
		t.Errorf("bytes gauge %d != Bytes %d", reg.Gauge("dl_resultcache_bytes").Value(), rc.Bytes())
	}
	// The most recent query must have survived (newest is never evicted).
	q, _ := parser.ParseQuery(fmt.Sprintf("?- p(n%d, Y).", queries-1))
	if _, _, cached, err := rc.Answer(pl, sys, q, snap, Opts{}); err != nil || !cached {
		t.Errorf("newest entry evicted: cached=%v err=%v", cached, err)
	}
}

// TestResultCacheErrorNotCached: a failed compute is returned to its waiters
// but never inserted, so the next caller retries.
func TestResultCacheErrorNotCached(t *testing.T) {
	rc := NewResultCache(0)
	boom := errors.New("boom")
	calls := 0
	fail := func(<-chan struct{}) (*storage.Relation, Stats, error) {
		calls++
		return nil, Stats{}, boom
	}
	if _, _, _, err := rc.Do(nil, "prog", "q", 1, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if rc.Len() != 0 {
		t.Fatalf("error was cached (%d entries)", rc.Len())
	}
	ok := func(<-chan struct{}) (*storage.Relation, Stats, error) {
		calls++
		return storage.NewRelation(1), Stats{}, nil
	}
	if _, _, cached, err := rc.Do(nil, "prog", "q", 1, ok); err != nil || cached {
		t.Fatalf("retry: cached=%v err=%v, want fresh compute", cached, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if rc.Len() != 1 {
		t.Fatalf("successful retry not cached (%d entries)", rc.Len())
	}
}

// TestResultCacheDoPanic: a panicking compute used to leave its flight
// registered forever, wedging the key (every later caller blocked on a
// done channel nobody would close). The panic must propagate to the
// computing caller, concurrent waiters must unblock with an error, and the
// key must stay usable.
func TestResultCacheDoPanic(t *testing.T) {
	rc := NewResultCache(0)
	entered := make(chan struct{})
	release := make(chan struct{})

	waiterErr := make(chan error, 1)
	go func() {
		<-entered
		// Let the compute proceed to its panic only once this goroutine is
		// about to join the flight.
		close(release)
		_, _, _, err := rc.Do(nil, "prog", "q", 1, func(<-chan struct{}) (*storage.Relation, Stats, error) {
			return storage.NewRelation(1), Stats{}, nil
		})
		waiterErr <- err
	}()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		rc.Do(nil, "prog", "q", 1, func(<-chan struct{}) (*storage.Relation, Stats, error) {
			close(entered)
			<-release
			panic("compute exploded")
		})
	}()

	// The waiter either rode the panicked flight (error) or started its own
	// compute after the flight was unregistered (success) — it must not hang.
	if err := <-waiterErr; err != nil && !strings.Contains(err.Error(), "panicked") {
		t.Errorf("waiter error = %v, want a panicked-compute error or nil", err)
	}
	if rc.Len() != 0 {
		t.Fatalf("panicked compute left %d cached entries", rc.Len())
	}
	// The key is not wedged: a fresh compute succeeds and caches.
	rel, _, cached, err := rc.Do(nil, "prog", "q", 1, func(<-chan struct{}) (*storage.Relation, Stats, error) {
		return storage.NewRelation(1), Stats{}, nil
	})
	if err != nil || cached || rel == nil {
		t.Fatalf("post-panic compute: rel=%v cached=%v err=%v", rel, cached, err)
	}
	if rc.Len() != 1 {
		t.Fatalf("post-panic compute not cached (%d entries)", rc.Len())
	}
}

// flightState polls the cache's flight table for the key's live flight and
// returns its current waiter count (0 when no flight is registered).
func flightWaiters(rc *ResultCache, program, query string, epoch uint64) int {
	key := resultKey{program: program, query: query, epoch: epoch}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f, ok := rc.flight[key]
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.waiters
}

// TestResultCacheWaiterCancel: a waiter abandoning an in-flight compute
// unblocks with ErrCanceled while the compute keeps running for its leader,
// and the finished result is cached normally.
func TestResultCacheWaiterCancel(t *testing.T) {
	rc := NewResultCache(0)
	started := make(chan struct{})
	release := make(chan struct{})
	computeAborted := make(chan struct{}, 1)

	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.Do(nil, "prog", "q", 1, func(abort <-chan struct{}) (*storage.Relation, Stats, error) {
			close(started)
			select {
			case <-abort:
				computeAborted <- struct{}{}
				return nil, Stats{}, fmt.Errorf("compute: %w", ErrCanceled)
			case <-release:
			}
			return storage.NewRelation(1), Stats{}, nil
		})
		leaderDone <- err
	}()
	<-started

	waiterAbort := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.Do(waiterAbort, "prog", "q", 1, func(<-chan struct{}) (*storage.Relation, Stats, error) {
			t.Error("waiter ran its own compute instead of joining the flight")
			return nil, Stats{}, nil
		})
		waiterDone <- err
	}()
	// The waiter has joined once the flight counts two interested callers.
	deadline := time.Now().Add(5 * time.Second)
	for flightWaiters(rc, "prog", "q", 1) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	close(waiterAbort)
	if err := <-waiterDone; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled waiter err = %v, want ErrCanceled", err)
	}
	select {
	case <-computeAborted:
		t.Fatal("waiter's cancel aborted the compute despite the leader's interest")
	default:
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v after a waiter canceled", err)
	}
	if rc.Len() != 1 {
		t.Fatalf("finished compute not cached (%d entries)", rc.Len())
	}
}

// TestResultCacheAllCallersCancel: when every interested caller gives up,
// the flight's abort channel closes and the compute's cancellation error
// reaches the (already departed) leader; nothing is cached and the key is
// immediately reusable.
func TestResultCacheAllCallersCancel(t *testing.T) {
	rc := NewResultCache(0)
	started := make(chan struct{})
	leaderAbort := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.Do(leaderAbort, "prog", "q", 1, func(abort <-chan struct{}) (*storage.Relation, Stats, error) {
			close(started)
			<-abort // the flight's merged abort, not the caller's channel
			return nil, Stats{}, fmt.Errorf("compute: %w", ErrCanceled)
		})
		leaderDone <- err
	}()
	<-started
	close(leaderAbort)
	if err := <-leaderDone; !errors.Is(err, ErrCanceled) {
		t.Fatalf("abandoned leader err = %v, want ErrCanceled", err)
	}
	if rc.Len() != 0 {
		t.Fatalf("canceled compute was cached (%d entries)", rc.Len())
	}
	// The key computes fresh for the next caller.
	rel, _, cached, err := rc.Do(nil, "prog", "q", 1, func(<-chan struct{}) (*storage.Relation, Stats, error) {
		return storage.NewRelation(1), Stats{}, nil
	})
	if err != nil || cached || rel == nil {
		t.Fatalf("retry after cancel: rel=%v cached=%v err=%v, want fresh compute", rel, cached, err)
	}
}
