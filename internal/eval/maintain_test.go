package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// The maintenance differential suite: after every randomized insert batch,
// an entry carried forward by ResultCache.Maintain must be tuple-for-tuple
// the answer a from-scratch evaluation computes at the new epoch — for
// every plan class, over several chained rounds (a maintained entry must
// itself stay maintainable).

// maintWorkload drives one plan class through the differential loop.
type maintWorkload struct {
	name    string
	sys     *ast.RecursiveSystem
	kind    PlanKind
	queries []string
	// batch inserts one randomized write round.
	batch func(r *rand.Rand, db *storage.Database) error
}

func insertAll(db *storage.Database, facts [][]string) error {
	for _, f := range facts {
		if _, err := db.Insert(f[0], f[1:]...); err != nil {
			return err
		}
	}
	return nil
}

func maintWorkloads(t *testing.T) []maintWorkload {
	t.Helper()
	node := func(r *rand.Rand) string { return fmt.Sprintf("n%d", r.Intn(24)) }
	edgeBatch := func(r *rand.Rand, db *storage.Database) error {
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			pred := "a"
			if r.Intn(3) == 0 {
				pred = "e" // grow the exit relation too
			}
			if _, err := db.Insert(pred, node(r), node(r)); err != nil {
				return err
			}
		}
		return nil
	}
	return []maintWorkload{
		{
			name: "tc-right-linear",
			sys:  mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y)."),
			kind: PlanTC,
			queries: []string{
				"?- p(n0, Y).", "?- p(X, n3).", "?- p(X, Y).", "?- p(n0, n3).",
			},
			batch: edgeBatch,
		},
		{
			name: "tc-left-linear",
			sys:  mustSystem(t, "p(X, Y) :- p(X, Z), a(Z, Y).", "p(X, Y) :- e(X, Y)."),
			kind: PlanTC,
			queries: []string{
				"?- p(n0, Y).", "?- p(X, n3).", "?- p(X, Y).", "?- p(n0, n3).",
			},
			batch: edgeBatch,
		},
		{
			name:    "bounded-union",
			sys:     mustSystem(t, "p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).", "p(X, Y) :- e(X, Y)."),
			kind:    PlanBounded,
			queries: []string{"?- p(X, Y).", "?- p(n0, Y)."},
			batch: func(r *rand.Rand, db *storage.Database) error {
				u := func() string { return fmt.Sprintf("u%d", r.Intn(7)) }
				return insertAll(db, [][]string{
					{"b", u()},
					{"c", node(r), u()},
					{"e", node(r), u()},
				})
			},
		},
		{
			name: "stable-parallel",
			sys: mustSystem(t, "p(X1, X2, X3) :- sa(X1, Y3), sb(X2, Y1), sc(Y2, X3), p(Y1, Y2, Y3).",
				"p(X, Y, Z) :- e3(X, Y, Z)."),
			kind:    PlanStable,
			queries: []string{"?- p(X, Y, Z).", "?- p(s0, Y, Z)."},
			batch: func(r *rand.Rand, db *storage.Database) error {
				s := func() string { return fmt.Sprintf("s%d", r.Intn(6)) }
				return insertAll(db, [][]string{
					{"sa", s(), s()}, {"sb", s(), s()}, {"sc", s(), s()},
					{"e3", s(), s(), s()},
				})
			},
		},
		{
			// s9 shape, class C: no licensed fast path, generic parallel engine.
			name:    "generic-parallel",
			sys:     mustSystem(t, "p(X, Y, Z) :- a(X, Y), b(U, V), p(U, Z, V).", "p(X, Y, Z) :- e3(X, Y, Z)."),
			kind:    PlanGeneric,
			queries: []string{"?- p(X, Y, Z).", "?- p(n0, Y, Z)."},
			batch: func(r *rand.Rand, db *storage.Database) error {
				g := func() string { return fmt.Sprintf("n%d", r.Intn(5)) }
				return insertAll(db, [][]string{
					{"a", g(), g()},
					{"b", g(), g()},
					{"e3", g(), g(), g()},
				})
			},
		},
	}
}

// seedWorkload gives every workload its initial EDB (all query constants
// interned up front, so bound queries are never trivially empty).
func seedWorkload(t *testing.T, w maintWorkload, r *rand.Rand, db *storage.Database) {
	t.Helper()
	for i := 0; i < 6; i++ {
		if err := w.batch(r, db); err != nil {
			t.Fatal(err)
		}
	}
	if err := insertAll(db, [][]string{{"e", "n0", "n3"}, {"a", "n3", "n0"}}); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainDifferential: for each plan class, cache every query at epoch
// k, apply a random insert batch, Maintain, and require (a) every entry was
// carried forward (maintained, not recomputed, for these negation-free
// systems), (b) the carried entry is served as a cache hit flagged
// Maintained, and (c) it equals a from-scratch semi-naive evaluation of the
// new database. Four chained rounds per workload prove maintained entries
// stay maintainable.
func TestMaintainDifferential(t *testing.T) {
	for _, w := range maintWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			p, err := CompilePlan(w.sys)
			if err != nil {
				t.Fatal(err)
			}
			if p.Kind != w.kind {
				t.Fatalf("compiles to %v, want %v", p.Kind, w.kind)
			}
			r := rand.New(rand.NewSource(7))
			db := storage.NewDatabase()
			seedWorkload(t, w, r, db)
			pl := NewPlanner()
			rc := NewResultCache(0)
			queries := make([]ast.Query, len(w.queries))
			for i, qs := range w.queries {
				q, err := parser.ParseQuery(qs)
				if err != nil {
					t.Fatal(err)
				}
				queries[i] = q
			}

			snap := db.Snapshot()
			for _, q := range queries {
				if _, _, _, err := rc.Answer(pl, w.sys, q, snap, Opts{}); err != nil {
					t.Fatal(err)
				}
			}
			for round := 0; round < 4; round++ {
				old := snap
				if err := w.batch(r, db); err != nil {
					t.Fatal(err)
				}
				snap = db.Snapshot()
				res := rc.Maintain(old, snap, MaintSpec{Planner: pl, Sys: w.sys, Opts: Opts{}})
				if res.Maintained != len(queries) || res.Recomputed != 0 || res.Skipped != 0 {
					t.Fatalf("round %d: Maintain = %+v, want %d maintained", round, res, len(queries))
				}
				for i, q := range queries {
					got, st, cached, err := rc.Answer(pl, w.sys, q, snap, Opts{})
					if err != nil {
						t.Fatal(err)
					}
					if !cached || !st.Maintained {
						t.Fatalf("round %d %s: cached=%v maintained=%v, want true/true",
							round, w.queries[i], cached, st.Maintained)
					}
					want, _, err := Answer(StrategySemiNaive, w.sys, q, db)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Errorf("round %d %s: maintained %d tuples, from-scratch %d",
							round, w.queries[i], got.Len(), want.Len())
					}
				}
			}
		})
	}
}

// TestMaintainProgramEntries covers the general-program serving path
// (AnswerProgram + MaintSpec.Prog): the shared fixpoint is maintained once
// and every cached query of the program is re-answered from it.
func TestMaintainProgramEntries(t *testing.T) {
	prog, _, err := parser.ParseProgram(
		"t(X, Y) :- e(X, Y).\n" +
			"t(X, Y) :- t(X, Z), t(Z, Y).\n" +
			"pair(X) :- t(X, X).\n")
	if err != nil {
		t.Fatal(err)
	}
	const key = "prog:t"
	r := rand.New(rand.NewSource(11))
	db := storage.NewDatabase()
	for i := 0; i < 8; i++ {
		if _, err := db.Insert("e", fmt.Sprintf("n%d", r.Intn(10)), fmt.Sprintf("n%d", r.Intn(10))); err != nil {
			t.Fatal(err)
		}
	}
	rc := NewResultCache(0)
	var queries []ast.Query
	for _, qs := range []string{"?- t(X, Y).", "?- t(n0, Y).", "?- pair(X)."} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	snap := db.Snapshot()
	for _, q := range queries {
		if _, _, _, err := rc.AnswerProgram(prog, key, q, snap, Opts{}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		old := snap
		for i := 0; i < 3; i++ {
			if _, err := db.Insert("e", fmt.Sprintf("n%d", r.Intn(10)), fmt.Sprintf("n%d", r.Intn(10))); err != nil {
				t.Fatal(err)
			}
		}
		snap = db.Snapshot()
		res := rc.Maintain(old, snap, MaintSpec{Prog: prog, ProgKey: key, Opts: Opts{}})
		if res.Maintained != len(queries) || res.Recomputed != 0 {
			t.Fatalf("round %d: Maintain = %+v, want %d maintained", round, res, len(queries))
		}
		out, _, err := ParallelSemiNaiveOpts(prog, snap.DB(), Opts{})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			got, st, cached, err := rc.AnswerProgram(prog, key, q, snap, Opts{})
			if err != nil {
				t.Fatal(err)
			}
			if !cached || !st.Maintained {
				t.Fatalf("round %d query %d: cached=%v maintained=%v", round, i, cached, st.Maintained)
			}
			want, err := AnswerQuery(out, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("round %d query %d: maintained %d tuples, fresh %d", round, i, got.Len(), want.Len())
			}
		}
	}
}

// TestMaintainNegationFallback: negation breaks insert-only monotonicity
// (new tuples can retract old answers), so maintenance must fall back to a
// full recompute — and the recomputed entry must reflect the retraction.
func TestMaintainNegationFallback(t *testing.T) {
	prog, _, err := parser.ParseProgram(
		"t(X) :- e(X), not blk(X).\n" +
			"t(Y) :- t(X), link(X, Y), not blk(Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	const key = "prog:neg"
	db := storage.NewDatabase()
	if err := insertAll(db, [][]string{
		{"e", "n0"}, {"link", "n0", "n1"}, {"link", "n1", "n2"},
	}); err != nil {
		t.Fatal(err)
	}
	rc := NewResultCache(0)
	q, _ := parser.ParseQuery("?- t(X).")
	snap := db.Snapshot()
	before, _, _, err := rc.AnswerProgram(prog, key, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Len() != 3 {
		t.Fatalf("seed answer has %d tuples, want 3", before.Len())
	}
	old := snap
	if _, err := db.Insert("blk", "n1"); err != nil {
		t.Fatal(err)
	}
	snap = db.Snapshot()
	res := rc.Maintain(old, snap, MaintSpec{Prog: prog, ProgKey: key, Opts: Opts{}})
	if res.Recomputed != 1 || res.Maintained != 0 {
		t.Fatalf("Maintain = %+v, want 1 recomputed", res)
	}
	after, st, cached, err := rc.AnswerProgram(prog, key, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || st.Maintained {
		t.Fatalf("cached=%v maintained=%v, want cached, not maintained", cached, st.Maintained)
	}
	// blk(n1) retracts t(n1) and with it t(n2): only t(n0) survives.
	if after.Len() != 1 {
		t.Errorf("recomputed answer has %d tuples, want 1 (negation retracted two)", after.Len())
	}
}

// TestMaintainBudgetFallback: an absurdly small budget forces the delta
// pass to give up; the entry must be recomputed, and still be correct.
func TestMaintainBudgetFallback(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 8)
	pl := NewPlanner()
	rc := NewResultCache(0)
	q, _ := parser.ParseQuery("?- p(X, Y).")
	snap := db.Snapshot()
	if _, _, _, err := rc.Answer(pl, sys, q, snap, Opts{}); err != nil {
		t.Fatal(err)
	}
	old := snap
	for _, pred := range []string{"a", "e"} {
		if _, err := db.Insert(pred, "n7", "n8"); err != nil {
			t.Fatal(err)
		}
	}
	snap = db.Snapshot()
	res := rc.Maintain(old, snap, MaintSpec{Planner: pl, Sys: sys, Budget: 1, Opts: Opts{}})
	if res.Recomputed != 1 || res.Maintained != 0 {
		t.Fatalf("Maintain = %+v, want 1 recomputed under Budget=1", res)
	}
	got, st, cached, err := rc.Answer(pl, sys, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || st.Maintained {
		t.Fatalf("cached=%v maintained=%v, want cached recompute", cached, st.Maintained)
	}
	want, _, err := Answer(StrategySemiNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("recomputed fallback: %d tuples, want %d", got.Len(), want.Len())
	}
}

// TestMaintainEmptyDiff: a write that inserts only duplicates still
// advances the epoch; the entry must be re-keyed to the new epoch reusing
// the very same relation (no recompute, no copy).
func TestMaintainEmptyDiff(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 6)
	pl := NewPlanner()
	rc := NewResultCache(0)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	snap := db.Snapshot()
	before, _, _, err := rc.Answer(pl, sys, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	old := snap
	if _, err := db.Insert("a", "n0", "n1"); err != nil { // duplicate of chainDB's edge
		t.Fatal(err)
	}
	snap = db.Snapshot()
	if snap.Epoch() == old.Epoch() {
		t.Fatal("duplicate insert did not advance the epoch")
	}
	res := rc.Maintain(old, snap, MaintSpec{Planner: pl, Sys: sys, Opts: Opts{}})
	if res.Maintained != 1 {
		t.Fatalf("Maintain = %+v, want 1 maintained", res)
	}
	after, st, cached, err := rc.Answer(pl, sys, q, snap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || !st.Maintained || after != before {
		t.Errorf("empty-diff carry: cached=%v maintained=%v same-object=%v, want all true",
			cached, st.Maintained, after == before)
	}
}

// TestMaintainSkipsForeignEntries: entries of a program the spec does not
// describe are left behind (Skipped), never guessed at.
func TestMaintainSkipsForeignEntries(t *testing.T) {
	sysA := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	sysB := mustSystem(t, "r(X, Y) :- a(X, Z), r(Z, Y).", "r(X, Y) :- e(X, Y).")
	db := chainDB(t, 6)
	pl := NewPlanner()
	rc := NewResultCache(0)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	snap := db.Snapshot()
	if _, _, _, err := rc.Answer(pl, sysA, q, snap, Opts{}); err != nil {
		t.Fatal(err)
	}
	old := snap
	if _, err := db.Insert("a", "n5", "n0"); err != nil {
		t.Fatal(err)
	}
	snap = db.Snapshot()
	res := rc.Maintain(old, snap, MaintSpec{Planner: pl, Sys: sysB, Opts: Opts{}})
	if res.Skipped != 1 || res.Maintained != 0 || res.Recomputed != 0 {
		t.Fatalf("Maintain = %+v, want 1 skipped", res)
	}
}

// TestMaintainMetrics: the maintained/recomputed counters and the duration
// histogram in the cache's registry move with the pass.
func TestMaintainMetrics(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 6)
	pl := NewPlanner()
	reg := obs.NewRegistry()
	rc := NewResultCacheWith(reg, 0)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	snap := db.Snapshot()
	if _, _, _, err := rc.Answer(pl, sys, q, snap, Opts{}); err != nil {
		t.Fatal(err)
	}
	old := snap
	for _, pred := range []string{"a", "e"} {
		if _, err := db.Insert(pred, "n5", "n6"); err != nil {
			t.Fatal(err)
		}
	}
	snap = db.Snapshot()
	rc.Maintain(old, snap, MaintSpec{Planner: pl, Sys: sys, Opts: Opts{}})
	if got := reg.Counter("dl_resultcache_maintained_total").Value(); got != 1 {
		t.Errorf("maintained counter = %d, want 1", got)
	}
	if got := reg.Counter("dl_resultcache_recomputed_total").Value(); got != 0 {
		t.Errorf("recomputed counter = %d, want 0", got)
	}
	if n := reg.Histogram("dl_resultcache_maintenance_seconds", nil).Count(); n != 1 {
		t.Errorf("maintenance histogram count = %d, want 1", n)
	}
}

// TestMaintainConcurrentReaders races Maintain against readers answering
// through the cache on both the old and the new snapshot (run under -race
// by `make race`). Readers pinned to the old epoch must keep getting the
// old answer; readers on the new epoch must get the maintained answer equal
// to a from-scratch evaluation.
func TestMaintainConcurrentReaders(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 32)
	pl := NewPlanner()
	rc := NewResultCache(0)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	oldSnap := db.Snapshot()
	oldRel, _, _, err := rc.Answer(pl, sys, q, oldSnap, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"a", "e"} {
		if _, err := db.Insert(pred, "n31", "n32"); err != nil {
			t.Fatal(err)
		}
	}
	newSnap := db.Snapshot()
	want, _, err := Answer(StrategySemiNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if r%2 == 0 {
					got, _, _, err := rc.Answer(pl, sys, q, oldSnap, Opts{})
					if err != nil {
						t.Error(err)
						return
					}
					if !got.Equal(oldRel) {
						t.Errorf("old-epoch reader saw %d tuples, want %d", got.Len(), oldRel.Len())
						return
					}
				} else {
					got, _, _, err := rc.Answer(pl, sys, q, newSnap, Opts{})
					if err != nil {
						t.Error(err)
						return
					}
					if !got.Equal(want) {
						t.Errorf("new-epoch reader saw %d tuples, want %d", got.Len(), want.Len())
						return
					}
				}
			}
		}(r)
	}
	close(start)
	rc.Maintain(oldSnap, newSnap, MaintSpec{Planner: pl, Sys: sys, Opts: Opts{}})
	wg.Wait()
}
