package eval

import (
	"math/rand"
	"testing"

	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// TestEvalOrderedMatchesDynamic: the ablation evaluation mode (source
// order) must produce exactly the same satisfying bindings as the
// bound-first dynamic ordering.
func TestEvalOrderedMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 4})
		db, err := dlgen.RandomDB(sys, 4, 8, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		conj := CompileConj(db.Syms, sys.Recursive.NonRecursiveAtoms())
		rels := DBRels(db)
		collect := func(ordered bool) map[string]int {
			out := map[string]int{}
			binding := conj.NewBinding()
			f := func(b []storage.Value) bool {
				out[storage.Tuple(b).Key()]++
				return true
			}
			if ordered {
				conj.EvalOrdered(rels, binding, f)
			} else {
				conj.Eval(rels, binding, f)
			}
			return out
		}
		a, b := collect(false), collect(true)
		if len(a) != len(b) {
			t.Fatalf("%v: dynamic %d bindings, ordered %d", sys.Recursive, len(a), len(b))
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				t.Fatalf("%v: binding missing under source order", sys.Recursive)
			}
		}
	}
}

// TestNegationFirstOrdering is the regression test for negation deferral:
// a safe rule whose negated literals precede (in source order) the positive
// atoms that bind their variables must evaluate without panicking and with
// identical results in both orderings — the anti-join waits for the
// positives instead of being taken in source position.
func TestNegationFirstOrdering(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("q", "a")
	db.Insert("q", "b")
	db.Insert("q", "c")
	db.Insert("r", "a")
	db.Insert("s", "b", "x")
	db.Insert("s", "c", "y")
	db.Insert("blocked", "c", "y")
	for _, tc := range []struct {
		rule string
		want int
	}{
		// Negation before its binder.
		{"h(X) :- not r(X), q(X).", 2},
		// Two negations up front, bound by different later positives.
		{"h(X, Y) :- not r(X), not blocked(X, Y), q(X), s(X, Y).", 1},
		// Negation bound only by the final positive atom.
		{"h(X, Y) :- not blocked(X, Y), q(X), s(X, Y).", 1},
	} {
		rule := parser.MustParseRule(tc.rule)
		conj := CompileConj(db.Syms, rule.Body)
		for _, ordered := range []bool{false, true} {
			n := 0
			f := func([]storage.Value) bool { n++; return true }
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s (ordered=%v): panic: %v", tc.rule, ordered, r)
					}
				}()
				if ordered {
					conj.EvalOrdered(DBRels(db), conj.NewBinding(), f)
				} else {
					conj.Eval(DBRels(db), conj.NewBinding(), f)
				}
			}()
			if n != tc.want {
				t.Errorf("%s (ordered=%v): %d bindings, want %d", tc.rule, ordered, n, tc.want)
			}
		}
	}
}

// TestEvalSeeded: seeding one atom with a tuple must behave exactly like
// restricting that atom's relation to the tuple, including constant and
// repeated-variable consistency checks and binding restoration.
func TestEvalSeeded(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("e", "a", "b")
	db.Insert("e", "b", "c")
	db.Insert("p", "b", "c")
	db.Insert("p", "c", "d")
	rule := parser.MustParseRule("q(X, Y) :- e(X, Z), p(Z, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	binding := conj.NewBinding()
	va, _ := db.Syms.Lookup("a")
	vb, _ := db.Syms.Lookup("b")
	n := 0
	conj.EvalSeeded(DBRels(db), binding, 0, storage.Tuple{va, vb}, func(b []storage.Value) bool {
		n++
		return true
	})
	if n != 1 {
		t.Errorf("seeded e(a, b): %d bindings, want 1 (through p(b, c))", n)
	}
	for i, v := range binding {
		if v != Unbound {
			t.Errorf("binding slot %d not restored: %v", i, v)
		}
	}
	// A seed that contradicts the atom's constant must yield nothing.
	rule2 := parser.MustParseRule("q(Y) :- e(a, Y).")
	conj2 := CompileConj(db.Syms, rule2.Body)
	n = 0
	conj2.EvalSeeded(DBRels(db), conj2.NewBinding(), 0, storage.Tuple{vb, vb}, func([]storage.Value) bool {
		n++
		return true
	})
	if n != 0 {
		t.Errorf("constant-mismatched seed yielded %d bindings", n)
	}
	// A repeated-variable atom rejects a non-diagonal seed.
	rule3 := parser.MustParseRule("q(X) :- e(X, X).")
	conj3 := CompileConj(db.Syms, rule3.Body)
	n = 0
	conj3.EvalSeeded(DBRels(db), conj3.NewBinding(), 0, storage.Tuple{va, vb}, func([]storage.Value) bool {
		n++
		return true
	})
	if n != 0 {
		t.Errorf("non-diagonal seed for e(X, X) yielded %d bindings", n)
	}
}

// TestEvalEarlyStop: yield returning false must abort enumeration and Eval
// must report the interruption.
func TestEvalEarlyStop(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 10; i++ {
		db.Insert("r", "a", "b")
		db.Insert("r", "x"+string(rune('0'+i)), "y")
	}
	rule := parser.MustParseRule("q(X) :- r(X, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	complete := conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool {
		n++
		return n < 3
	})
	if complete {
		t.Error("Eval reported completion despite early stop")
	}
	if n != 3 {
		t.Errorf("visited %d bindings, want 3", n)
	}
}

// TestEvalRepeatedVariableInAtom: an atom using the same variable twice
// must only match tuples with equal columns.
func TestEvalRepeatedVariableInAtom(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a", "a")
	db.Insert("r", "a", "b")
	db.Insert("r", "c", "c")
	rule := parser.MustParseRule("q(X) :- r(X, X).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { n++; return true })
	if n != 2 {
		t.Errorf("diagonal matches = %d, want 2", n)
	}
}

// TestEvalConstantArgs: interned constants in atoms act as selections.
func TestEvalConstantArgs(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a", "b")
	db.Insert("r", "a", "c")
	db.Insert("r", "d", "e")
	rule := parser.MustParseRule("q(Y) :- r(a, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { n++; return true })
	if n != 2 {
		t.Errorf("matches = %d, want 2", n)
	}
}

// TestEvalArityMismatchPanics: reading a literal against a relation of the
// wrong arity is a programming error and must fail loudly.
func TestEvalArityMismatchPanics(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a")
	rule := parser.MustParseRule("q(X, Y) :- r(X, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { return true })
}
