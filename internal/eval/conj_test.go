package eval

import (
	"math/rand"
	"testing"

	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// TestEvalOrderedMatchesDynamic: the ablation evaluation mode (source
// order) must produce exactly the same satisfying bindings as the
// bound-first dynamic ordering.
func TestEvalOrderedMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 4})
		db, err := dlgen.RandomDB(sys, 4, 8, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		conj := CompileConj(db.Syms, sys.Recursive.NonRecursiveAtoms())
		rels := DBRels(db)
		collect := func(ordered bool) map[string]int {
			out := map[string]int{}
			binding := conj.NewBinding()
			f := func(b []storage.Value) bool {
				out[storage.Tuple(b).Key()]++
				return true
			}
			if ordered {
				conj.EvalOrdered(rels, binding, f)
			} else {
				conj.Eval(rels, binding, f)
			}
			return out
		}
		a, b := collect(false), collect(true)
		if len(a) != len(b) {
			t.Fatalf("%v: dynamic %d bindings, ordered %d", sys.Recursive, len(a), len(b))
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				t.Fatalf("%v: binding missing under source order", sys.Recursive)
			}
		}
	}
}

// TestEvalEarlyStop: yield returning false must abort enumeration and Eval
// must report the interruption.
func TestEvalEarlyStop(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 10; i++ {
		db.Insert("r", "a", "b")
		db.Insert("r", "x"+string(rune('0'+i)), "y")
	}
	rule := parser.MustParseRule("q(X) :- r(X, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	complete := conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool {
		n++
		return n < 3
	})
	if complete {
		t.Error("Eval reported completion despite early stop")
	}
	if n != 3 {
		t.Errorf("visited %d bindings, want 3", n)
	}
}

// TestEvalRepeatedVariableInAtom: an atom using the same variable twice
// must only match tuples with equal columns.
func TestEvalRepeatedVariableInAtom(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a", "a")
	db.Insert("r", "a", "b")
	db.Insert("r", "c", "c")
	rule := parser.MustParseRule("q(X) :- r(X, X).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { n++; return true })
	if n != 2 {
		t.Errorf("diagonal matches = %d, want 2", n)
	}
}

// TestEvalConstantArgs: interned constants in atoms act as selections.
func TestEvalConstantArgs(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a", "b")
	db.Insert("r", "a", "c")
	db.Insert("r", "d", "e")
	rule := parser.MustParseRule("q(Y) :- r(a, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	n := 0
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { n++; return true })
	if n != 2 {
		t.Errorf("matches = %d, want 2", n)
	}
}

// TestEvalArityMismatchPanics: reading a literal against a relation of the
// wrong arity is a programming error and must fail loudly.
func TestEvalArityMismatchPanics(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", "a")
	rule := parser.MustParseRule("q(X, Y) :- r(X, Y).")
	conj := CompileConj(db.Syms, rule.Body)
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	conj.Eval(DBRels(db), conj.NewBinding(), func([]storage.Value) bool { return true })
}
