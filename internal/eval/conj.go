// Package eval implements the query-evaluation engines of the reproduction:
//
//   - bottom-up naive and semi-naive fixpoint evaluation (the baselines),
//   - a parallel semi-naive engine fanning each round's delta across a
//     worker pool, with per-round metrics (Stats.Trace, Observer),
//   - a magic-sets baseline specialized to the paper's linear systems,
//   - the generic compiled expansion evaluator driven by resolution-graph
//     state (the uniform strategy of the paper's §6–§9 examples),
//   - the class-specific stable-cycle evaluator (§4.1), the bounded
//     evaluator (§5, §7) and the transformation-based evaluator (§4.2–§4.4).
//
// All engines answer the same (system, query, database) triple and are
// cross-checked against each other in the tests.
//
// The hot path is allocation-lean by construction: conjunction enumeration
// keeps per-atom scratch buffers in the enumeration state (no per-step
// allocations), derived tuples land in the storage layer's columnar arena
// through word-hashed dedup (no string keys), and index probes hit
// CSR-style posting arrays.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Unbound marks an unassigned variable in a binding vector. Interned values
// are non-negative, so −1 is free.
const Unbound storage.Value = -1

// argSpec is a compiled atom argument: either a variable slot or a constant.
type argSpec struct {
	isVar bool
	varID int
	val   storage.Value
}

// compiledAtom is an atom whose variables are resolved to slots and whose
// constants are interned.
type compiledAtom struct {
	pred string
	args []argSpec
	// idx is the atom's position in the source body, used by delta overrides.
	idx int
	// neg marks a negated literal, evaluated as an anti-join once all its
	// variables are bound (stratified-negation substrate extension).
	neg bool
}

// Conj is a compiled conjunctive body sharing one variable slot space.
type Conj struct {
	atoms    []compiledAtom
	varNames []string
	varIdx   map[string]int
}

// CompileConj compiles the atoms against the symbol table (constants are
// interned so they compare by Value).
func CompileConj(syms *storage.Symbols, atoms []ast.Atom) *Conj {
	c := &Conj{varIdx: make(map[string]int)}
	for i, a := range atoms {
		ca := compiledAtom{pred: a.Pred, idx: i, neg: a.Neg, args: make([]argSpec, len(a.Args))}
		for j, t := range a.Args {
			if t.IsVar() {
				id, ok := c.varIdx[t.Name]
				if !ok {
					id = len(c.varNames)
					c.varIdx[t.Name] = id
					c.varNames = append(c.varNames, t.Name)
				}
				ca.args[j] = argSpec{isVar: true, varID: id}
			} else {
				ca.args[j] = argSpec{val: syms.Intern(t.Name)}
			}
		}
		c.atoms = append(c.atoms, ca)
	}
	return c
}

// NumVars returns the number of variable slots.
func (c *Conj) NumVars() int { return len(c.varNames) }

// VarID returns the slot of the named variable, or −1.
func (c *Conj) VarID(name string) int {
	if id, ok := c.varIdx[name]; ok {
		return id
	}
	return -1
}

// NewBinding returns an all-Unbound binding vector for the conjunction.
func (c *Conj) NewBinding() []storage.Value {
	b := make([]storage.Value, len(c.varNames))
	for i := range b {
		b[i] = Unbound
	}
	return b
}

// RelFunc resolves the relation an atom reads from; returning nil means the
// relation is empty. The atom's body index is passed so that semi-naive
// evaluation can substitute a delta relation for one occurrence.
type RelFunc func(pred string, atomIdx int) *storage.Relation

// DBRels adapts a database to a RelFunc.
func DBRels(db *storage.Database) RelFunc {
	return func(pred string, _ int) *storage.Relation { return db.Rel(pred) }
}

// Eval enumerates all satisfying bindings of the conjunction, starting from
// the initial binding (which is mutated during the search and restored).
// Atoms are ordered dynamically: at each step the engine picks the remaining
// atom with the most bound arguments, breaking ties toward the smaller
// relation — the paper's "selections before joins" principle. yield may
// return false to stop early. Eval reports whether enumeration ran to
// completion (true) or was stopped by yield (false).
func (c *Conj) Eval(rels RelFunc, binding []storage.Value, yield func([]storage.Value) bool) bool {
	return c.eval(rels, binding, yield, true, nil, nil)
}

// EvalOrdered is Eval without the dynamic bound-first ordering: atoms are
// processed strictly in source order. It exists as the ablation baseline
// for the paper's evaluation principle (selections before joins); see
// BenchmarkAblationJoinOrder.
func (c *Conj) EvalOrdered(rels RelFunc, binding []storage.Value, yield func([]storage.Value) bool) bool {
	return c.eval(rels, binding, yield, false, nil, nil)
}

// EvalWith is Eval with an optional compiled join order and an optional
// visit counter. A non-nil order must be a permutation of the atom indexes
// that keeps every negated literal after the positive atoms binding its
// variables (the cost planner guarantees this); atoms are then taken in
// that order with no per-step selection scan. A nil order falls back to the
// dynamic greedy ordering. When visits is non-nil it is incremented once
// per tuple the enumeration pulls from an index posting or scan — the
// intermediate-result work the cost model estimates.
func (c *Conj) EvalWith(rels RelFunc, binding []storage.Value, order []int, visits *int64, yield func([]storage.Value) bool) bool {
	return c.eval(rels, binding, yield, true, order, visits)
}

// boundArgs counts the atom's arguments that are constants or bound
// variables under the current binding.
func boundArgs(binding []storage.Value, a compiledAtom) int {
	bound := 0
	for _, s := range a.args {
		if !s.isVar || binding[s.varID] != Unbound {
			bound++
		}
	}
	return bound
}

// selectStatic picks the next un-done atom in source order, or −1 when none
// is eligible. Negated literals are deferred until every one of their
// variables is bound (for a safe rule the positive atoms guarantee this
// happens, regardless of where the negation sits in source order).
func (e *enumState) selectStatic() int {
	for i, a := range e.c.atoms {
		if e.done[i] {
			continue
		}
		if a.neg && boundArgs(e.binding, a) < len(a.args) {
			continue // defer until positives bind it
		}
		return i
	}
	return -1
}

// selectDynamic picks the next un-done atom greedily: the most-bound atom,
// breaking ties toward the smallest expected enumeration. The tie-break uses
// MatchCount — the bound value's actual index bucket size — rather than the
// full Relation.Len(), so a large relation probed on a selective bound
// column correctly beats a small relation that must be scanned (on skewed
// data Len() alone mis-orders exactly the joins where order matters most).
// Negated literals wait until fully bound; once bound they are constant-time
// filters and are applied immediately.
func (e *enumState) selectDynamic() int {
	c, binding := e.c, e.binding
	best, bestBound, bestSize := -1, -1, -1
	for i := range c.atoms {
		if e.done[i] {
			continue
		}
		a := &c.atoms[i]
		bound := boundArgs(binding, *a)
		if a.neg {
			if bound < len(a.args) {
				continue // anti-joins wait until fully bound
			}
			return i
		}
		rel := e.rels(a.pred, a.idx)
		size := 0
		if rel != nil {
			if bound > 0 {
				sc := e.atomScratch(i, len(a.args))
				for j, s := range a.args {
					switch {
					case !s.isVar:
						sc.bound[j] = true
						sc.vals[j] = s.val
					case binding[s.varID] != Unbound:
						sc.bound[j] = true
						sc.vals[j] = binding[s.varID]
					default:
						sc.bound[j] = false
					}
				}
				size = rel.MatchCount(sc.bound, sc.vals)
			} else {
				size = rel.Len()
			}
		}
		if best == -1 || bound > bestBound || (bound == bestBound && size < bestSize) {
			best, bestBound, bestSize = i, bound, size
		}
	}
	return best
}

func (c *Conj) eval(rels RelFunc, binding []storage.Value, yield func([]storage.Value) bool, dynamic bool, order []int, visits *int64) bool {
	e := enumState{
		c: c, rels: rels, binding: binding, yield: yield,
		dynamic: dynamic, done: make([]bool, len(c.atoms)),
		scratch: make([]atomScratch, len(c.atoms)),
		order:   order, visits: visits,
	}
	return e.step(len(c.atoms))
}

// atomScratch holds one atom's per-enumeration buffers. Each atom is done
// at most once along any search path, so its scratch is never live at two
// recursion depths at the same time — the buffers are allocated once per
// enumState instead of once per step invocation, which used to dominate
// the fixpoint engines' allocation profile.
type atomScratch struct {
	bound    []bool
	vals     storage.Tuple
	assigned []int
}

// enumState is the backtracking search over the atoms not yet marked done.
// It is a plain struct (rather than a recursive closure) so that callers
// driving many enumerations over the same conjunction — the parallel
// engine's per-delta-tuple seeding — pay its setup once per task, not once
// per tuple.
type enumState struct {
	c       *Conj
	rels    RelFunc
	binding []storage.Value
	yield   func([]storage.Value) bool
	dynamic bool
	done    []bool
	scratch []atomScratch
	// order, when non-nil, is the compiled join order: atom order[k] runs at
	// depth k and no per-step selection scan happens. len(order) must equal
	// len(c.atoms); seeded enumerations use orders whose first entry is the
	// seed atom.
	order []int
	// visits, when non-nil, counts tuples pulled from index postings or
	// scans across the enumeration — the planner's cost unit.
	visits *int64
}

// atomScratch returns the (lazily sized) scratch buffers of atom i.
func (e *enumState) atomScratch(i, nargs int) *atomScratch {
	s := &e.scratch[i]
	if cap(s.vals) < nargs {
		s.bound = make([]bool, nargs)
		s.vals = make(storage.Tuple, nargs)
	}
	s.bound = s.bound[:nargs]
	s.vals = s.vals[:nargs]
	return s
}

func (e *enumState) step(remaining int) bool {
	if remaining == 0 {
		return e.yield(e.binding)
	}
	c, binding := e.c, e.binding
	var best int
	switch {
	case e.order != nil:
		best = e.order[len(e.order)-remaining]
	case e.dynamic:
		best = e.selectDynamic()
	default:
		best = e.selectStatic()
	}
	if best == -1 {
		// Only negated literals with unbound variables remain: the rule
		// failed the safety check upstream.
		panic("eval: unsafe negation reached the evaluator")
	}
	a := c.atoms[best]
	sc := e.atomScratch(best, len(a.args))
	if a.neg {
		rel := e.rels(a.pred, a.idx)
		if rel != nil && rel.Arity() != len(a.args) {
			panic(fmt.Sprintf("eval: negated literal %s/%d read against relation of arity %d",
				a.pred, len(a.args), rel.Arity()))
		}
		vals := sc.vals
		for j, s := range a.args {
			if s.isVar {
				vals[j] = binding[s.varID]
				if vals[j] == Unbound {
					// Only a compiled order can route here early; the
					// planner's placement constraint makes it a bug.
					panic(fmt.Sprintf("eval: negated literal %s/%d reached with unbound variable", a.pred, len(a.args)))
				}
			} else {
				vals[j] = s.val
			}
		}
		if rel != nil && rel.Contains(vals) {
			return true // literal falsified: this branch yields nothing
		}
		e.done[best] = true
		cont := e.step(remaining - 1)
		e.done[best] = false
		return cont
	}
	rel := e.rels(a.pred, a.idx)
	if rel == nil || rel.Len() == 0 {
		return true // empty relation: no matches, enumeration complete
	}
	if rel.Arity() != len(a.args) {
		panic(fmt.Sprintf("eval: literal %s/%d read against relation of arity %d",
			a.pred, len(a.args), rel.Arity()))
	}
	e.done[best] = true
	defer func() { e.done[best] = false }()

	boundCols, vals := sc.bound, sc.vals
	for j, s := range a.args {
		switch {
		case !s.isVar:
			boundCols[j] = true
			vals[j] = s.val
		case binding[s.varID] != Unbound:
			boundCols[j] = true
			vals[j] = binding[s.varID]
		default:
			boundCols[j] = false
		}
	}
	cont := true
	rel.EachMatch(boundCols, vals, func(t storage.Tuple) bool {
		// Bind free columns; handle repeated free variables in the atom.
		// The assigned buffer is safe to reuse: EachMatch invokes this
		// callback sequentially and recursion only touches other atoms'
		// scratch.
		if e.visits != nil {
			*e.visits++
		}
		sc.assigned = sc.assigned[:0]
		okTuple := true
		for j, s := range a.args {
			if boundCols[j] || !s.isVar {
				continue
			}
			if binding[s.varID] == Unbound {
				binding[s.varID] = t[j]
				sc.assigned = append(sc.assigned, s.varID)
			} else if binding[s.varID] != t[j] {
				okTuple = false
				break
			}
		}
		if okTuple {
			cont = e.step(remaining - 1)
		}
		for _, id := range sc.assigned {
			binding[id] = Unbound
		}
		return cont
	})
	return cont
}

// EvalSeeded enumerates the satisfying bindings of the conjunction with the
// positive atom at seedIdx pre-resolved to the single tuple seed: the atom's
// variables are bound from the tuple (constants and repeated variables are
// checked for consistency) and the search runs over the remaining atoms with
// dynamic ordering. The parallel semi-naive engine uses this to drive one
// delta tuple at a time without materializing single-tuple relations. The
// binding is mutated during the search and restored before returning.
func (c *Conj) EvalSeeded(rels RelFunc, binding []storage.Value, seedIdx int, seed storage.Tuple, yield func([]storage.Value) bool) bool {
	s := newSeeder(c, rels, binding, yield)
	return s.seed(seedIdx, seed)
}

// seeder drives repeated seeded enumerations over one conjunction, reusing
// the search scratch (done flags, assigned-slot buffer) across calls. The
// parallel engine creates one per task and feeds it every delta tuple of the
// task's chunk; EvalSeeded wraps it for one-shot use.
type seeder struct {
	e        enumState
	assigned []int
}

func newSeeder(c *Conj, rels RelFunc, binding []storage.Value, yield func([]storage.Value) bool) *seeder {
	return newSeederWith(c, rels, binding, nil, nil, yield)
}

// newSeederWith is newSeeder with a compiled join order and a visit counter
// (both optional, see EvalWith). A non-nil order must start with the seed
// atom passed to every subsequent seed call — the planner compiles one
// order per seedable atom.
func newSeederWith(c *Conj, rels RelFunc, binding []storage.Value, order []int, visits *int64, yield func([]storage.Value) bool) *seeder {
	return &seeder{e: enumState{
		c: c, rels: rels, binding: binding, yield: yield,
		dynamic: true, done: make([]bool, len(c.atoms)),
		scratch: make([]atomScratch, len(c.atoms)),
		order:   order, visits: visits,
	}}
}

// seed binds the positive atom at seedIdx to the tuple and enumerates the
// rest of the conjunction; see EvalSeeded for the contract.
func (s *seeder) seed(seedIdx int, seed storage.Tuple) bool {
	c, binding := s.e.c, s.e.binding
	if s.e.order != nil && s.e.order[0] != seedIdx {
		panic(fmt.Sprintf("eval: compiled order starts at atom %d, seeded at %d", s.e.order[0], seedIdx))
	}
	a := c.atoms[seedIdx]
	if a.neg {
		panic("eval: seeded atom must be positive")
	}
	if len(seed) != len(a.args) {
		panic(fmt.Sprintf("eval: seed arity %d for literal %s/%d", len(seed), a.pred, len(a.args)))
	}
	s.assigned = s.assigned[:0]
	ok := true
	for j, sp := range a.args {
		if !sp.isVar {
			if sp.val != seed[j] {
				ok = false
				break
			}
			continue
		}
		if binding[sp.varID] == Unbound {
			binding[sp.varID] = seed[j]
			s.assigned = append(s.assigned, sp.varID)
		} else if binding[sp.varID] != seed[j] {
			ok = false
			break
		}
	}
	cont := true
	if ok {
		s.e.done[seedIdx] = true
		cont = s.e.step(len(c.atoms) - 1)
		s.e.done[seedIdx] = false
	}
	for _, id := range s.assigned {
		binding[id] = Unbound
	}
	return cont
}

// EvalProject evaluates the conjunction and inserts, for each satisfying
// binding, the projection onto the given variable slots into out. Slots may
// be −1 to emit a fixed constant from fixed. Returns the number of new
// tuples inserted.
func (c *Conj) EvalProject(rels RelFunc, binding []storage.Value, slots []int, fixed storage.Tuple, out *storage.Relation) int {
	return c.EvalProjectWith(rels, binding, slots, fixed, out, nil, nil)
}

// EvalProjectWith is EvalProject with a compiled join order and a visit
// counter (both optional, see EvalWith).
func (c *Conj) EvalProjectWith(rels RelFunc, binding []storage.Value, slots []int, fixed storage.Tuple, out *storage.Relation, order []int, visits *int64) int {
	added := 0
	buf := make(storage.Tuple, len(slots))
	c.EvalWith(rels, binding, order, visits, func(b []storage.Value) bool {
		for i, s := range slots {
			if s >= 0 {
				buf[i] = b[s]
			} else {
				buf[i] = fixed[i]
			}
		}
		if out.Insert(buf) {
			added++
		}
		return true
	})
	return added
}

// HeadSlots maps the head atom's arguments to conjunction slots: for a
// variable argument its slot id, for a constant −1 with the constant placed
// in the fixed tuple.
func HeadSlots(c *Conj, syms *storage.Symbols, head ast.Atom) (slots []int, fixed storage.Tuple, err error) {
	slots = make([]int, len(head.Args))
	fixed = make(storage.Tuple, len(head.Args))
	for i, t := range head.Args {
		if t.IsVar() {
			id := c.VarID(t.Name)
			if id < 0 {
				return nil, nil, fmt.Errorf("eval: head variable %s not bound by body", t.Name)
			}
			slots[i] = id
		} else {
			slots[i] = -1
			fixed[i] = syms.Intern(t.Name)
		}
	}
	return slots, fixed, nil
}

// SortedVarNames returns the conjunction's variables sorted, for diagnostics.
func (c *Conj) SortedVarNames() []string {
	out := append([]string(nil), c.varNames...)
	sort.Strings(out)
	return out
}
