package eval

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ResultCache memoizes materialized query answers keyed by (program, query,
// snapshot epoch). Bounded and stable formulas compile to fixed-depth plans
// whose answers depend only on the database state, which the snapshot epoch
// names exactly — so a cached answer can never be stale: a write advances
// the epoch and the old entries simply stop being asked for, aging out of
// the LRU. Entries are charged against a byte budget (Relation.SizeBytes
// plus key overhead) and evicted least-recently-used.
//
// Writes no longer cold-start the cache: Maintain (maintain.go) carries the
// previous epoch's entries forward to the new epoch by running a delta pass
// over only the inserted tuples, falling back to a full recompute when the
// delta is not expressible (negation, replaced relations, blown budget).
//
// Concurrent identical queries are deduplicated singleflight-style: the
// first caller computes while the rest block on its result, so N identical
// cold queries trigger exactly one fixpoint. A panicking compute fails its
// flight (waiters get an error, the key stays usable) and re-panics in the
// computing goroutine. Cached relations are frozen
// (storage.Relation.Freeze) before publication, so any number of readers
// may probe and iterate them concurrently; callers must not mutate them
// (a mutation attempt panics).
//
// Hit, miss and eviction counts live in an obs.Registry under the
// dl_resultcache_{hits,misses,evictions}_total names; the current byte and
// entry footprints are the dl_resultcache_{bytes,entries} gauges; the
// maintenance pass counts entries into
// dl_resultcache_{maintained,recomputed}_total and its wall-clock into the
// dl_resultcache_maintenance_seconds histogram.
type ResultCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[resultKey]*list.Element
	lru     *list.List // front = most recently used
	flight  map[resultKey]*flight

	hits, misses, evictions *obs.Counter
	maintained, recomputed  *obs.Counter
	maintDur                *obs.Histogram
	bytesG, entriesG        *obs.Gauge
}

type resultKey struct {
	program string
	query   string
	epoch   uint64
}

type resultEntry struct {
	key  resultKey
	rel  *storage.Relation
	st   Stats
	size int64
	// q is the parsed query (valid when hasQuery), kept so Maintain can
	// re-plan and re-answer the entry at a later epoch. Do-keyed entries
	// have no parsed query and are never maintained.
	q        ast.Query
	hasQuery bool
	// aux is the plan-class-specific maintenance state captured at compute
	// time (maintain.go): *tcAux for TC plans, *fixAux for fixpoint plans,
	// nil when the plan keeps none (bounded plans need only the answers).
	aux any
}

// flight is one in-progress computation other callers of the same key wait
// on. rel/st/err are written once before done closes.
//
// Each flight refcounts its interested callers: the leader joins at
// creation, every waiter joins before blocking and leaves when its own
// caller gives up. When the count hits zero the flight's abort channel
// closes — the leader's compute (which runs with Opts.Abort = f.abort)
// stops at its next round boundary. As long as ANY waiter remains the
// compute keeps running even if the leader's caller disconnected: the
// result still has an audience and gets cached.
type flight struct {
	done chan struct{}
	rel  *storage.Relation
	st   Stats
	err  error

	mu      sync.Mutex
	waiters int
	abort   chan struct{}
	aborted bool
}

// tryJoin registers interest in the flight's result; it fails when the
// flight was already abandoned by every caller (its compute is dying), in
// which case the caller must start a fresh flight.
func (f *flight) tryJoin() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.aborted {
		return false
	}
	f.waiters++
	return true
}

// leave drops one caller's interest; the last one out aborts the compute.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	if f.waiters == 0 && !f.aborted {
		f.aborted = true
		close(f.abort)
	}
	f.mu.Unlock()
}

// DefaultResultCacheBytes is the byte budget NewResultCache callers usually
// want: large enough for thousands of typical answer relations, small
// enough to never matter next to the EDB itself.
const DefaultResultCacheBytes = 64 << 20

// NewResultCache returns an empty cache with the given byte budget
// (DefaultResultCacheBytes when maxBytes <= 0), counting into its own
// isolated registry.
func NewResultCache(maxBytes int64) *ResultCache {
	return NewResultCacheWith(obs.NewRegistry(), maxBytes)
}

// NewResultCacheWith is NewResultCache with the counters and gauges living
// in reg under the dl_resultcache_* names.
func NewResultCacheWith(reg *obs.Registry, maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultCacheBytes
	}
	return &ResultCache{
		max:        maxBytes,
		entries:    make(map[resultKey]*list.Element),
		lru:        list.New(),
		flight:     make(map[resultKey]*flight),
		hits:       reg.Counter(mResultHits),
		misses:     reg.Counter(mResultMisses),
		evictions:  reg.Counter(mResultEvict),
		maintained: reg.Counter(mResultMaint),
		recomputed: reg.Counter(mResultRecomp),
		maintDur:   reg.Histogram(mResultMaintNs, nil),
		bytesG:     reg.Gauge(mResultBytes),
		entriesG:   reg.Gauge(mResultEntries),
	}
}

// Answer evaluates the query against the snapshot through the planner,
// serving a memoized answer when one exists for the snapshot's epoch. The
// bool result reports whether the answer came from the cache (including
// riding along on another caller's in-flight computation).
func (c *ResultCache) Answer(pl *Planner, sys *ast.RecursiveSystem, q ast.Query, snap *storage.Snapshot, opts Opts) (*storage.Relation, Stats, bool, error) {
	key := resultKey{program: programKey(sys), query: q.String(), epoch: snap.Epoch()}
	return c.do(key, q, true, opts.Abort, func(abort <-chan struct{}) (*storage.Relation, any, Stats, error) {
		o := opts
		o.Abort = abort
		return pl.answerSnapAux(sys, q, snap, o)
	})
}

// AnswerProgram evaluates the query over a general program (no single
// recursive system — dlserve's generic fallback path): the parallel
// semi-naive fixpoint followed by answer selection, memoized under the
// caller's program key. Unlike raw Do, the entry keeps the materialized
// fixpoint, so Maintain can carry it across writes.
func (c *ResultCache) AnswerProgram(prog *ast.Program, progKey string, q ast.Query, snap *storage.Snapshot, opts Opts) (*storage.Relation, Stats, bool, error) {
	key := resultKey{program: progKey, query: q.String(), epoch: snap.Epoch()}
	return c.do(key, q, true, opts.Abort, func(abort <-chan struct{}) (*storage.Relation, any, Stats, error) {
		o := opts
		o.Abort = abort
		out, st, err := ParallelSemiNaiveOpts(prog, snap.DB(), o)
		if err != nil {
			return nil, nil, st, err
		}
		ans, err := AnswerQuery(out, q)
		if err != nil {
			return nil, nil, st, err
		}
		return ans, newFixAux(prog, out), st, nil
	})
}

// Do returns the cached answer for (program, query, epoch), computing and
// inserting it on a miss. Concurrent Do calls with the same key share one
// compute invocation: exactly one runs, the rest block until it finishes
// and return its result. Errors are returned to every waiter but never
// cached, so a transient failure is retried by the next caller.
//
// abort, when non-nil, is THIS caller's cancellation: a blocked waiter
// unblocks with ErrCanceled, and the computing leader's evaluation is
// stopped only once every interested caller has given up — compute receives
// the flight's merged abort channel and must honor it (thread it into
// Opts.Abort).
func (c *ResultCache) Do(abort <-chan struct{}, program, query string, epoch uint64, compute func(abort <-chan struct{}) (*storage.Relation, Stats, error)) (*storage.Relation, Stats, bool, error) {
	key := resultKey{program: program, query: query, epoch: epoch}
	return c.do(key, ast.Query{}, false, abort, func(fa <-chan struct{}) (*storage.Relation, any, Stats, error) {
		rel, st, err := compute(fa)
		return rel, nil, st, err
	})
}

// Lookup peeks at the cache for (program, query, epoch) without computing
// anything — the streaming path's hit check. A hit refreshes the entry's
// LRU position and counts as a cache hit; a miss counts nothing (the
// streaming caller evaluates without populating the cache, so it is not a
// "miss" the hit-rate should be charged for).
func (c *ResultCache) Lookup(program, query string, epoch uint64) (*storage.Relation, Stats, bool) {
	key := resultKey{program: program, query: query, epoch: epoch}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, Stats{}, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*resultEntry)
	c.mu.Unlock()
	c.hits.Inc()
	return e.rel, e.st, true
}

// do is the shared hit/flight/compute path. compute additionally returns
// the plan-specific maintenance state stored alongside the entry.
func (c *ResultCache) do(key resultKey, q ast.Query, hasQuery bool, callerAbort <-chan struct{}, compute func(abort <-chan struct{}) (*storage.Relation, any, Stats, error)) (*storage.Relation, Stats, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*resultEntry)
		c.mu.Unlock()
		c.hits.Inc()
		return e.rel, e.st, true, nil
	}
	if f, ok := c.flight[key]; ok && f.tryJoin() {
		c.mu.Unlock()
		c.hits.Inc()
		select {
		case <-f.done:
			return f.rel, f.st, true, f.err
		case <-callerAbort:
			// Losing the race against a just-finished compute must not
			// discard a perfectly good answer.
			select {
			case <-f.done:
				return f.rel, f.st, true, f.err
			default:
			}
			f.leave()
			return nil, Stats{}, false, fmt.Errorf("eval: wait for in-flight result of %q: %w", key.query, ErrCanceled)
		}
	}
	f := &flight{done: make(chan struct{}), abort: make(chan struct{}), waiters: 1}
	c.flight[key] = f
	c.mu.Unlock()
	c.misses.Inc()

	// The leader's own caller disconnecting releases only the leader's
	// share of the flight: the watcher leaves, and the compute dies only if
	// no waiter joined meanwhile.
	if callerAbort != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-callerAbort:
				f.leave()
			case <-stop:
			}
		}()
	}

	var aux any
	// A panicking compute must not wedge the key: fail the flight so waiters
	// unblock with an error, unregister it, then let the panic continue.
	defer func() {
		if r := recover(); r != nil {
			f.rel, f.err = nil, fmt.Errorf("eval: result compute for %q panicked: %v", key.query, r)
			close(f.done)
			c.unregisterFlight(key, f)
			panic(r)
		}
	}()
	f.rel, aux, f.st, f.err = compute(f.abort)
	if f.err == nil && f.rel != nil {
		// Freeze before publication: waiters and future hits may read the
		// relation (and the maintenance state) from any number of goroutines.
		f.rel.Freeze()
		freezeAux(aux)
	}
	close(f.done)

	c.mu.Lock()
	if cur, ok := c.flight[key]; ok && cur == f {
		delete(c.flight, key)
	}
	if f.err == nil && f.rel != nil {
		c.insertLocked(&resultEntry{key: key, rel: f.rel, st: f.st, q: q, hasQuery: hasQuery, aux: aux})
	}
	c.mu.Unlock()
	return f.rel, f.st, false, f.err
}

// unregisterFlight removes f from the flight table unless a successor
// flight already replaced it (an aborted flight's key is reusable before
// its dying compute returns).
func (c *ResultCache) unregisterFlight(key resultKey, f *flight) {
	c.mu.Lock()
	if cur, ok := c.flight[key]; ok && cur == f {
		delete(c.flight, key)
	}
	c.mu.Unlock()
}

// insertLocked adds the entry and evicts from the LRU tail until the byte
// budget holds again (the newest entry itself is never evicted, so one
// oversized answer is still served and cached). Caller holds c.mu.
func (c *ResultCache) insertLocked(e *resultEntry) {
	if _, ok := c.entries[e.key]; ok {
		return // a racing compute of the same key beat us; keep the first
	}
	e.size = e.rel.SizeBytes() + int64(len(e.key.program)+len(e.key.query)) + 96
	c.entries[e.key] = c.lru.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.max && c.lru.Len() > 1 {
		back := c.lru.Back()
		be := back.Value.(*resultEntry)
		c.lru.Remove(back)
		delete(c.entries, be.key)
		c.bytes -= be.size
		c.evictions.Inc()
	}
	c.bytesG.Set(c.bytes)
	c.entriesG.Set(int64(c.lru.Len()))
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the summed size charge of the cached entries.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Metrics returns the cumulative hit, miss and eviction counts.
func (c *ResultCache) Metrics() (hits, misses, evictions uint64) {
	return uint64(c.hits.Value()), uint64(c.misses.Value()), uint64(c.evictions.Value())
}
