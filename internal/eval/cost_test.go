package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// skewDB builds the workload the greedy per-step ordering mishandles:
//
//	r(Z, X): a small relation whose every tuple carries the hot key.
//	s(Z, W): hot-key tuples fanning into many distinct W values.
//	t(W, Y): a large key-like relation.
//
// Greedy starts at the smallest relation (r), binds Z to the hot key, and
// then every s probe returns the whole hot bucket; the cost model's
// max-bucket fan-out sees the explosion upfront and orders the key-like
// joins first.
func skewDB(t testing.TB, rHot, sHot, sCold, tRows int) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	for i := 0; i < rHot; i++ {
		db.Insert("r", "hot", fmt.Sprintf("x%d", i%50))
	}
	for i := 0; i < sHot; i++ {
		db.Insert("s", "hot", fmt.Sprintf("w%d", i))
	}
	for i := 0; i < sCold; i++ {
		db.Insert("s", fmt.Sprintf("z%d", i), fmt.Sprintf("w%d", sHot+i))
	}
	for i := 0; i < tRows; i++ {
		db.Insert("t", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
	}
	db.BuildIndexes()
	return db
}

// TestCostModelSkew pins the cost model's load-bearing choice: the per-probe
// fan-out of a bound column is its MAX bucket size, not the average. On the
// skewed workload the averages are tiny (most keys are singletons) while the
// hot bucket dominates actual work; an average-based model would cost the
// greedy order as cheap and keep its mistake.
func TestCostModelSkew(t *testing.T) {
	db := skewDB(t, 200, 300, 50, 5000)
	rule, err := parser.ParseRule("q(X, Y) :- r(Z, X), s(Z, W), t(W, Y).")
	if err != nil {
		t.Fatal(err)
	}

	m := newCostModel([]ast.Rule{rule}, db)
	c := CompileConj(db.Syms, rule.Body)

	// Fan-out of s with Z bound must be the hot bucket, not |s|/distinct(Z).
	var sAtom *compiledAtom
	for i := range c.atoms {
		if c.atoms[i].pred == "s" {
			sAtom = &c.atoms[i]
		}
	}
	bound := make([]bool, c.NumVars())
	bound[c.VarID("Z")] = true
	if fan := m.fanout(sAtom, bound); fan != 300 {
		t.Errorf("fanout(s | Z bound) = %v, want 300 (the hot bucket)", fan)
	}

	// The search must not start at r (smallest relation, greedy's pick):
	// binding Z to the hot key explodes the s probe. Any order placing s
	// before its Z is hot-bound is fine; the canonical winner starts at t.
	order, cost := searchOrder(c, m, make([]bool, c.NumVars()), -1)
	if order == nil {
		t.Fatal("searchOrder declined a 3-atom body")
	}
	if c.atoms[order[0]].pred == "r" {
		t.Errorf("search chose greedy's order (starts at r), cost %v: the hot key was not priced in", cost)
	}

	// And the compiled order must actually do less work: A/B the same
	// engine with only CostOrders toggled, on the same counter.
	prog := &ast.Program{Rules: []ast.Rule{rule}}
	_, greedy, err := SemiNaiveOpts(prog, db, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	_, costed, err := SemiNaiveOpts(prog, db, Opts{CostOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	if costed.Visited >= greedy.Visited {
		t.Errorf("compiled order visited %d tuples, greedy %d: no win on the skew workload",
			costed.Visited, greedy.Visited)
	}
}

// TestCompiledOrdersMatchGreedyRandom is the differential gate for the
// tentpole: with CostOrders on, every engine must derive tuple-identical
// results to its greedy self across randomized systems, databases and
// adornments — a compiled order may only change the work, never the answer.
func TestCompiledOrdersMatchGreedyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		res := classify.MustClassify(sys.Recursive)
		if res.Transformable && res.StabilizationPeriod > 4 {
			continue
		}
		if res.Bounded && res.RankBound > 8 {
			continue
		}
		db, err := dlgen.RandomDB(sys, 5, 10, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		db.BuildIndexes()
		q := dlgen.RandomQuery(rng, sys, 5)

		ref, _, err := Answer(StrategySemiNaive, sys, q, db)
		if err != nil {
			t.Fatalf("%v %v greedy: %v", sys.Recursive, q, err)
		}
		for _, engine := range []struct {
			name string
			run  func() (*storage.Relation, error)
		}{
			{"seminaive+cost", func() (*storage.Relation, error) {
				out, _, err := SemiNaiveOpts(sys.Program(), db, Opts{CostOrders: true})
				if err != nil {
					return nil, err
				}
				return AnswerQuery(out, q)
			}},
			{"naive+cost", func() (*storage.Relation, error) {
				out, _, err := NaiveOpts(sys.Program(), db, Opts{CostOrders: true})
				if err != nil {
					return nil, err
				}
				return AnswerQuery(out, q)
			}},
			{"parallel+cost", func() (*storage.Relation, error) {
				out, _, err := ParallelSemiNaiveOpts(sys.Program(), db, Opts{CostOrders: true})
				if err != nil {
					return nil, err
				}
				return AnswerQuery(out, q)
			}},
			{"sharded+cost", func() (*storage.Relation, error) {
				out, _, err := ShardedSemiNaiveOpts(sys.Program(), db, Opts{CostOrders: true, Shards: 2})
				if err != nil {
					return nil, err
				}
				return AnswerQuery(out, q)
			}},
			{"auto-with-book", func() (*storage.Relation, error) {
				// The planner path compiles the plan's own book (the db is
				// non-nil), exercising whichever of the four plan classes
				// this system lands in.
				rel, _, err := NewPlanner().Answer(sys, q, db)
				return rel, err
			}},
		} {
			got, err := engine.run()
			if err != nil {
				t.Fatalf("%v %v %s: %v", sys.Recursive, q, engine.name, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%s differs on\n  rule: %v\n  query: %v\n  class: %s\n  got %d tuples, want %d",
					engine.name, sys.Recursive, q, res.Class.Code(), got.Len(), ref.Len())
			}
		}
	}
}

// TestCompiledOrdersMatchGreedyNegation covers what the random generator
// does not: stratified negation. The compiled order must keep a negated
// literal behind the atoms that bind it, in every stratum.
func TestCompiledOrdersMatchGreedyNegation(t *testing.T) {
	progs := []string{
		`
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- reach(X, Z), edge(Z, Y).
		unreach(X, Y) :- node(X), node(Y), not reach(X, Y).
		`,
		`
		a(X) :- base(X).
		b(X) :- univ(X), not a(X).
		c(X) :- univ(X), not b(X).
		`,
		`
		p(X, Y) :- e(X, Y), not blocked(X).
		p(X, Y) :- p(X, Z), e(Z, Y), not blocked(Z).
		`,
	}
	for pi, src := range progs {
		prog, _ := parseProg(t, src)
		for seed := int64(0); seed < 4; seed++ {
			db := storage.NewDatabase()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				x := fmt.Sprintf("n%d", rng.Intn(10))
				y := fmt.Sprintf("n%d", rng.Intn(10))
				db.Insert("edge", x, y)
				db.Insert("e", x, y)
			}
			for i := 0; i < 10; i++ {
				n := fmt.Sprintf("n%d", i)
				db.Insert("node", n)
				db.Insert("univ", n)
				if i%3 == 0 {
					db.Insert("base", n)
					db.Insert("blocked", n)
				}
			}
			db.BuildIndexes()
			ref, _, err := SemiNaive(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := SemiNaiveOpts(prog, db, Opts{CostOrders: true})
			if err != nil {
				t.Fatalf("prog %d seed %d: %v", pi, seed, err)
			}
			for _, r := range prog.Rules {
				p := r.Head.Pred
				if !got.Rel(p).Equal(ref.Rel(p)) {
					t.Fatalf("prog %d seed %d: %s differs (%d vs %d tuples)",
						pi, seed, p, got.Rel(p).Len(), ref.Rel(p).Len())
				}
			}
		}
	}
}

// TestPlanCacheStatsEpoch pins the acceptance rule that a compiled order can
// never outlive its statistics: the cache key folds in Database.StatsEpoch,
// so an index rebuild makes the next lookup a miss, and the stale entry is
// pruned rather than left to leak.
func TestPlanCacheStatsEpoch(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y).")
	q, err := parser.ParseQuery("?- p(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(t, 8)
	db.BuildIndexes()

	pl := NewPlanner()
	if _, hit, err := pl.PlanForEpoch(sys, q, 1, db, Opts{}); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want compile miss", hit, err)
	}
	if _, hit, err := pl.PlanForEpoch(sys, q, 1, db, Opts{}); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}

	// Rebuild statistics: overflow insert + compact bumps the stats epoch.
	db.Insert("e", "fresh1", "fresh2")
	db.Rel("e").CompactIndexes()

	if _, hit, err := pl.PlanForEpoch(sys, q, 1, db, Opts{}); err != nil || hit {
		t.Fatalf("post-rebuild lookup: hit=%v err=%v, want miss (stale stats)", hit, err)
	}
	if n := pl.Len(); n != 1 {
		t.Errorf("cache holds %d plans, want 1 (stale-stats entry pruned on insert)", n)
	}
	if inv := pl.Invalidations(); inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
}

// TestAutoPlanReportsCost checks the planner surfaces its decision: a
// generic/stable plan compiled with a database carries a positive cost and
// the per-rule order lines in PlanInfo, and actual visits land in Stats.
func TestAutoPlanReportsCost(t *testing.T) {
	sys := mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y), b(Y).", "p(X, Y) :- e(X, Y).")
	db := chainDB(t, 6)
	for i := 0; i < 6; i++ {
		db.Insert("b", fmt.Sprintf("n%d", i))
	}
	db.BuildIndexes()
	q, err := parser.ParseQuery("?- p(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	rel, st, err := NewPlanner().Answer(sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("no answers")
	}
	if st.Plan == nil {
		t.Fatal("no PlanInfo")
	}
	if st.Plan.Cost <= 0 {
		t.Errorf("PlanInfo.Cost = %d, want > 0", st.Plan.Cost)
	}
	if len(st.Plan.Orders) == 0 {
		t.Error("PlanInfo.Orders empty, want one line per ordered rule")
	}
	if st.Visited <= 0 {
		t.Errorf("Stats.Visited = %d, want > 0", st.Visited)
	}
}
