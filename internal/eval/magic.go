package eval

import (
	"fmt"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/storage"
)

// MagicSets rewrites the linear recursive system for the query's adornment
// using the magic-sets transformation (the standard post-1988 baseline the
// reproduction compares the paper's compiled plans against) and evaluates
// the rewritten program semi-naively.
//
// Adorned predicates p_a and magic predicates m_a are generated on demand:
// the adornment of the recursive literal follows the paper's determined-
// variable closure (adorn.Step), so one recursive rule can fan out into a
// small family of adorned rules, one per reachable adornment.
func MagicSets(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return MagicSetsOpts(sys, q, db, Opts{})
}

// MagicSetsOpts is MagicSets with instrumentation: the rewriting itself is
// recorded under a "magic-rewrite" span (adornment count, generated rules)
// and the semi-naive evaluation of the rewritten program attaches its own
// fixpoint span as a sibling.
func MagicSetsOpts(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	n := sys.Arity()
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != n {
		return nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, sys.Pred(), n)
	}
	mr := opts.parent().Child("magic-rewrite")
	a0 := adorn.FromQuery(q)
	prog := &ast.Program{}
	rule := sys.Recursive
	recAtom, recIdx := rule.RecursiveAtom()

	boundArgs := func(atom ast.Atom, a adorn.Adornment) []ast.Term {
		var out []ast.Term
		for i, t := range atom.Args {
			if a[i] {
				out = append(out, t)
			}
		}
		return out
	}
	pName := func(a adorn.Adornment) string { return sys.Pred() + "@" + a.String() }
	mName := func(a adorn.Adornment) string { return "magic@" + a.String() }

	// Generate rules per reachable adornment.
	seen := map[string]bool{}
	work := []adorn.Adornment{a0}
	for len(work) > 0 {
		a := work[0]
		work = work[1:]
		if seen[a.String()] {
			continue
		}
		seen[a.String()] = true
		b := adorn.Step(rule, a)
		if !seen[b.String()] {
			work = append(work, b)
		}

		// Magic propagation: m_b(bound rec args) :- m_a(bound head args), NR.
		mHead := ast.NewAtom(mName(b), boundArgs(recAtom, b)...)
		mBody := []ast.Atom{ast.NewAtom(mName(a), boundArgs(rule.Head, a)...)}
		mBody = append(mBody, rule.NonRecursiveAtoms()...)
		prog.AddRule(ast.NewRule(mHead, mBody...))

		// Adorned recursive rule:
		// p_a(head) :- m_a(bound head), NR, p_b(rec args).
		rBody := []ast.Atom{ast.NewAtom(mName(a), boundArgs(rule.Head, a)...)}
		rBody = append(rBody, rule.Body[:recIdx]...)
		rBody = append(rBody, rule.Body[recIdx+1:]...)
		rBody = append(rBody, ast.NewAtom(pName(b), recAtom.Args...))
		prog.AddRule(ast.NewRule(ast.NewAtom(pName(a), rule.Head.Args...), rBody...))

		// Adorned exit rules: p_a(head) :- m_a(bound head), exit body.
		for _, exit := range sys.Exits {
			eBody := []ast.Atom{ast.NewAtom(mName(a), boundArgs(exit.Head, a)...)}
			eBody = append(eBody, exit.Body...)
			prog.AddRule(ast.NewRule(ast.NewAtom(pName(a), exit.Head.Args...), eBody...))
		}
	}

	// Seed magic fact from the query constants.
	seed := ast.NewAtom(mName(a0), boundArgs(q.Atom, a0)...)
	if len(seed.Args) == 0 || seed.IsGround() {
		prog.Facts = append(prog.Facts, seed)
	} else {
		mr.End()
		return nil, Stats{}, fmt.Errorf("eval: non-ground magic seed %v", seed)
	}
	mr.SetInt("adornments", int64(len(seen))).SetInt("rules", int64(len(prog.Rules))).End()

	out, st, err := SemiNaiveOpts(prog, db, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	adornedQ := ast.Query{Atom: ast.NewAtom(pName(a0), q.Atom.Args...)}
	answers, err := AnswerQuery(out, adornedQ)
	return answers, st, err
}
