package eval

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
)

func TestSmokeTransitiveClosure(t *testing.T) {
	prog, queries, err := parser.ParseProgram(`
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
?- p(n0, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	if err := storage.GenChain(db, "e", 6); err != nil {
		t.Fatal(err)
	}
	out, st, err := Naive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Rel("p").Len(); got != 15 { // C(6,2) pairs on a 6-chain
		t.Fatalf("naive p size = %d, want 15 (stats %v)", got, st)
	}
	ans, err := AnswerQuery(out, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 5 {
		t.Fatalf("answers = %d, want 5", ans.Len())
	}
	out2, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rel("p").Equal(out2.Rel("p")) {
		t.Fatal("semi-naive differs from naive")
	}
}
