package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// drainStream pulls the iterator dry and returns its rows sorted, failing
// the test if the stream ended with an error.
func drainStream(t testing.TB, it Iterator) []string {
	t.Helper()
	defer it.Close()
	var rows []string
	for it.Next() {
		rows = append(rows, fmt.Sprint(it.Tuple()))
	}
	if err := it.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	sort.Strings(rows)
	return rows
}

// relRows renders a relation as sorted row strings for set comparison.
func relRows(rel *storage.Relation) []string {
	var rows []string
	if rel != nil {
		rel.Each(func(tp storage.Tuple) bool {
			rows = append(rows, fmt.Sprint(tp))
			return true
		})
	}
	sort.Strings(rows)
	return rows
}

func rowsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamDifferentialPaperPlans: for one fixture per plan class, the
// streamed answer set must equal the materialized one on random databases
// and queries — the core "streaming changes delivery, not semantics" claim.
func TestStreamDifferentialPaperPlans(t *testing.T) {
	fixtures := []struct {
		id   string
		kind PlanKind
	}{
		{"s1a", PlanTC},
		{"s8", PlanBounded},
		{"s4a", PlanStable},
		{"s9", PlanGeneric},
	}
	rng := rand.New(rand.NewSource(7))
	for _, f := range fixtures {
		sys := mustStatement(t, f.id).System()
		p, err := CompilePlan(sys)
		if err != nil {
			t.Fatalf("%s: %v", f.id, err)
		}
		if p.Kind != f.kind {
			t.Fatalf("%s: plan %v, want %v", f.id, p.Kind, f.kind)
		}
		for seed := int64(1); seed <= 3; seed++ {
			db, err := dlgen.RandomDB(sys, 5, 12, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				q := dlgen.RandomQuery(rng, sys, 5)
				ref, _, err := p.AnswerOpts(q, db, Opts{})
				if err != nil {
					t.Fatalf("%s %v: %v", f.id, q, err)
				}
				it := p.Stream(q, db, Opts{}, 0)
				got := drainStream(t, it)
				if !rowsEqual(got, relRows(ref)) {
					t.Errorf("%s %v (plan %v): streamed %d rows, materialized %d",
						f.id, q, p.Kind, len(got), ref.Len())
				}
				if st := it.Stats(); st.Plan == nil || st.Plan.Strategy != p.Kind.String() {
					t.Errorf("%s %v: stream stats plan %+v, want %v", f.id, q, st.Plan, p.Kind)
				}
			}
		}
	}
}

// TestStreamTCAllAdornments runs the streaming TC kernel through every
// adornment on both orientations against the materializing kernel.
func TestStreamTCAllAdornments(t *testing.T) {
	rules := []string{
		"p(X, Y) :- a(X, Z), p(Z, Y).",
		"p(X, Y) :- p(X, Z), a(Z, Y).",
	}
	queries := []string{
		"?- p(X, Y).",
		"?- p(n1, Y).",
		"?- p(X, n2).",
		"?- p(n1, n2).",
		"?- p(n0, n0).",
		"?- p(ghost, Y).",
	}
	for _, rule := range rules {
		sys := mustSystem(t, rule, "p(X, Y) :- e(X, Y).")
		p, err := CompilePlan(sys)
		if err != nil || p.Kind != PlanTC {
			t.Fatalf("%s: plan %v err %v, want PlanTC", rule, p, err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			db := tcTestDB(t, "a", 8, 14, 6, seed)
			for _, qs := range queries {
				q, err := parser.ParseQuery(qs)
				if err != nil {
					t.Fatal(err)
				}
				ref, _, err := p.AnswerOpts(q, db, Opts{})
				if err != nil {
					t.Fatal(err)
				}
				got := drainStream(t, p.Stream(q, db, Opts{}, 0))
				if !rowsEqual(got, relRows(ref)) {
					t.Errorf("%s seed %d %s: streamed %d rows, materialized %d",
						rule, seed, qs, len(got), ref.Len())
				}
			}
		}
	}
}

// TestStreamDifferentialRandomSystems: whatever the compiler picks for a
// random system, streaming must agree with the semi-naive fixpoint.
func TestStreamDifferentialRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		p, err := CompilePlan(sys)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		db, err := dlgen.RandomDB(sys, 4, 8, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			q := dlgen.RandomQuery(rng, sys, 4)
			ref, _, err := Answer(StrategySemiNaive, sys, q, db)
			if err != nil {
				t.Fatal(err)
			}
			got := drainStream(t, p.Stream(q, db, Opts{}, 0))
			if !rowsEqual(got, relRows(ref)) {
				t.Errorf("%v %v (plan %v): streamed %d rows, semi-naive %d",
					sys.Recursive, q, p.Kind, len(got), ref.Len())
			}
		}
	}
}

// TestStreamProgramMatchesParallel: the generic stratified serving path
// (multi-predicate program, no single recursive system) streams the same
// rows the parallel engine materializes.
func TestStreamProgramMatchesParallel(t *testing.T) {
	prog, _, err := parser.ParseProgram(`
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, Z), t(Z, Y).
s(X) :- t(n0, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	if err := storage.GenChain(db, "e", 12); err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{"?- t(X, Y).", "?- t(n3, Y).", "?- s(X).", "?- s(n5)."} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := ParallelSemiNaiveOpts(prog, db, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AnswerQuery(out, q)
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, StreamProgram(prog, q, db, Opts{}, 0))
		if !rowsEqual(got, relRows(ref)) {
			t.Errorf("%s: streamed %d rows, parallel %d", qs, len(got), ref.Len())
		}
	}
}

// TestStreamLimit: a limit cuts the stream at exactly k rows with Truncated
// set; a limit past the answer set delivers everything without it.
func TestStreamLimit(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	p, err := CompilePlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(t, 50)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	full, _, err := p.AnswerOpts(q, db, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	fullRows := relRows(full)

	it := p.Stream(q, db, Opts{}, 10)
	var got []string
	for it.Next() {
		got = append(got, fmt.Sprint(it.Tuple()))
	}
	if err := it.Err(); err != nil {
		t.Fatalf("limited stream error: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("limited stream delivered %d rows, want 10", len(got))
	}
	st := it.Stats()
	if !st.Truncated {
		t.Error("limited stream did not set Stats.Truncated")
	}
	if st.Derived >= full.Len() {
		t.Errorf("limited stream derived %d tuples, full evaluation %d: no early stop",
			st.Derived, full.Len())
	}
	it.Close()
	sort.Strings(got)
	all := make(map[string]bool, len(fullRows))
	for _, r := range fullRows {
		all[r] = true
	}
	for _, r := range got {
		if !all[r] {
			t.Errorf("limited stream emitted %s, not in the full answer set", r)
		}
	}

	if got := drainStream(t, p.Stream(q, db, Opts{}, full.Len()+5)); !rowsEqual(got, fullRows) {
		t.Errorf("over-limit stream delivered %d rows, want %d", len(got), len(fullRows))
	}
}

// TestStreamBoundTargetEarlyExit: a fully bound tc(a, b)? must stop the BFS
// at the level proving the answer instead of sweeping the whole chain.
func TestStreamBoundTargetEarlyExit(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	p, err := CompilePlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(t, 200)
	q, _ := parser.ParseQuery("?- p(n0, n5).")
	ref, mst, err := p.AnswerOpts(q, db, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() != 1 {
		t.Fatalf("bound-target answer set = %d, want 1", ref.Len())
	}
	it := p.Stream(q, db, Opts{}, 0)
	got := drainStream(t, it)
	if !rowsEqual(got, relRows(ref)) {
		t.Fatalf("streamed %v, want %v", got, relRows(ref))
	}
	st := it.Stats()
	if st.Truncated {
		t.Error("goal-directed exit marked Truncated: the answer set is complete")
	}
	if st.Facts*10 > mst.Facts {
		t.Errorf("goal-directed stream attempted %d facts, materializing kernel %d: expected >=10x less work",
			st.Facts, mst.Facts)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base, tolerating runtime bookkeeping goroutines that exit lazily.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCloseMidStream: abandoning an iterator mid-stream stops the
// producing fixpoint and leaks no goroutines; Err stays nil (the stop was
// the consumer's own doing).
func TestStreamCloseMidStream(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	p, err := CompilePlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(t, 300)
	q, _ := parser.ParseQuery("?- p(X, Y).")

	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		it := p.Stream(q, db, Opts{Abort: make(chan struct{})}, 0)
		for j := 0; j < 3; j++ {
			if !it.Next() {
				t.Fatal("stream ended before 3 rows on a 300-chain closure")
			}
		}
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatalf("closed stream reports error: %v", err)
		}
	}
	waitGoroutines(t, base)

	// Same through the generic parallel path, whose producer fans out
	// worker goroutines per round.
	prog := sys.Program()
	base = runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		it := StreamProgram(prog, q, db, Opts{Workers: 4}, 0)
		if !it.Next() {
			t.Fatal("parallel stream ended immediately")
		}
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatalf("closed parallel stream reports error: %v", err)
		}
	}
	waitGoroutines(t, base)
}

// TestStreamExternalAbort: closing Opts.Abort mid-stream ends the stream
// with ErrCanceled — a disconnected client's partial answer set is never
// mistaken for a complete one.
func TestStreamExternalAbort(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	p, err := CompilePlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(t, 300)
	q, _ := parser.ParseQuery("?- p(X, Y).")

	base := runtime.NumGoroutine()
	abort := make(chan struct{})
	it := p.Stream(q, db, Opts{Abort: abort}, 0)
	for j := 0; j < 2; j++ {
		if !it.Next() {
			t.Fatal("stream ended before 2 rows")
		}
	}
	close(abort)
	rows := 2
	for it.Next() {
		rows++ // rows already buffered may still drain
	}
	if err := it.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("aborted stream Err = %v, want ErrCanceled", err)
	}
	full, _, err := p.AnswerOpts(q, db, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rows >= full.Len() {
		t.Errorf("aborted stream delivered all %d rows; abort did not stop the fixpoint", rows)
	}
	it.Close()
	if err := it.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err after Close = %v, want ErrCanceled (the cancel was external)", err)
	}
	waitGoroutines(t, base)
}

// TestRelationIterator covers the zero-copy cached path: full drain,
// limited drain with Truncated, nil relation.
func TestRelationIterator(t *testing.T) {
	rel := storage.NewRelation(2)
	for i := 0; i < 5; i++ {
		rel.Insert(storage.Tuple{storage.Value(i), storage.Value(i + 1)})
	}
	if got := drainStream(t, NewRelationIterator(rel, 0, Stats{})); len(got) != 5 {
		t.Fatalf("full drain = %d rows, want 5", len(got))
	}
	it := NewRelationIterator(rel, 2, Stats{Rounds: 7})
	n := 0
	for it.Next() {
		n++
	}
	if n != 2 || !it.Stats().Truncated || it.Stats().Rounds != 7 {
		t.Fatalf("limited drain: n=%d stats=%+v, want 2 rows, Truncated, Rounds=7", n, it.Stats())
	}
	it = NewRelationIterator(rel, 5, Stats{})
	for it.Next() {
	}
	if it.Stats().Truncated {
		t.Error("exact-limit drain marked Truncated: nothing was cut off")
	}
	if got := drainStream(t, NewRelationIterator(nil, 0, Stats{})); len(got) != 0 {
		t.Fatalf("nil relation iterator delivered %d rows", len(got))
	}
}
