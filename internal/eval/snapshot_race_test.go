package eval

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/storage"
)

// raceRound applies write round i to db: a deterministic fact sequence, so a
// fresh database replaying rounds 0..k-1 reproduces — including symbol
// interning order, hence raw Values — exactly the state a snapshot taken
// after k rounds pinned.
func raceRound(db *storage.Database, i int) error {
	type fact struct {
		pred  string
		names []string
	}
	facts := []fact{
		// Chain extension for the TC system (a) and the shared exit (e).
		{"a", []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)}},
		{"e", []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)}},
		// Small-domain churn for the bounded (s10-shape) system.
		{"b", []string{fmt.Sprintf("u%d", i%7)}},
		{"c", []string{fmt.Sprintf("n%d", i%8), fmt.Sprintf("u%d", i%7)}},
		// Rotational-cycle EDB for the stable (s4a-shape) system.
		{"sa", []string{fmt.Sprintf("s%d", i%6), fmt.Sprintf("s%d", (i+1)%6)}},
		{"sb", []string{fmt.Sprintf("s%d", (i+2)%6), fmt.Sprintf("s%d", i%6)}},
		{"sc", []string{fmt.Sprintf("s%d", (i+1)%6), fmt.Sprintf("s%d", (i+3)%6)}},
		{"e3", []string{fmt.Sprintf("s%d", i%6), fmt.Sprintf("s%d", (i+1)%6), fmt.Sprintf("s%d", (i+2)%6)}},
	}
	for _, f := range facts {
		if _, err := db.Insert(f.pred, f.names...); err != nil {
			return err
		}
	}
	return nil
}

// TestSnapshotRaceSerialReplay is the isolation correctness test (run under
// -race by `make race`): one writer keeps applying deterministic write
// rounds and advancing the epoch while concurrent readers evaluate TC,
// bounded and stable queries against pinned snapshots — through the shared
// planner and result cache, exactly the serving path. Every answer must
// equal a serial semi-naive replay of the first k rounds, where k is the
// round count the reader's snapshot pinned.
func TestSnapshotRaceSerialReplay(t *testing.T) {
	type workload struct {
		sys *ast.RecursiveSystem
		qs  string
	}
	workloads := []workload{
		{mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y)."), "?- p(n0, Y)."},
		{mustSystem(t, "p(X, Y) :- a(X, Z), p(Z, Y).", "p(X, Y) :- e(X, Y)."), "?- p(X, Y)."},
		{mustSystem(t, "p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).", "p(X, Y) :- e(X, Y)."), "?- p(X, Y)."},
		{mustSystem(t, "p(X1, X2, X3) :- sa(X1, Y3), sb(X2, Y1), sc(Y2, X3), p(Y1, Y2, Y3).",
			"p(X, Y, Z) :- e3(X, Y, Z)."), "?- p(X, Y, Z)."},
	}
	// Pin the class each workload exercises, so the test keeps covering the
	// TC kernel, the bounded unroller and the stabilized plan even if the
	// shapes drift.
	wantKinds := []PlanKind{PlanTC, PlanTC, PlanBounded, PlanStable}
	for i, w := range workloads {
		p, err := CompilePlan(w.sys)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != wantKinds[i] {
			t.Fatalf("workload %d compiles to %v, want %v", i, p.Kind, wantKinds[i])
		}
	}
	queries := make([]ast.Query, len(workloads))
	for i, w := range workloads {
		q, err := parser.ParseQuery(w.qs)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}

	db := storage.NewDatabase()
	var mu sync.Mutex // the database's single-writer lock
	written := 0
	for ; written < 4; written++ {
		if err := raceRound(db, written); err != nil {
			t.Fatal(err)
		}
	}
	// pin takes a snapshot plus the round count it covers, atomically.
	pin := func() (*storage.Snapshot, int) {
		mu.Lock()
		defer mu.Unlock()
		return db.Snapshot(), written
	}

	pl := NewPlanner()
	rc := NewResultCache(0)

	const readers = 6
	const rounds = 12
	const maxWrites = 200
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			if written < maxWrites {
				if err := raceRound(db, written); err != nil {
					t.Error(err)
					mu.Unlock()
					return
				}
				written++
				db.Snapshot() // advance the epoch under the writer lock
			}
			mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap, k := pin()
				wi := (r + i) % len(workloads)
				got, _, _, err := rc.Answer(pl, workloads[wi].sys, queries[wi], snap, Opts{})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				// Serial replay of the same k rounds in a private database.
				ref := storage.NewDatabase()
				for j := 0; j < k; j++ {
					if err := raceRound(ref, j); err != nil {
						t.Error(err)
						return
					}
				}
				want, _, err := Answer(StrategySemiNaive, workloads[wi].sys, queries[wi], ref)
				if err != nil {
					t.Errorf("reader %d replay: %v", r, err)
					return
				}
				if !got.Equal(want) {
					t.Errorf("reader %d round %d (workload %d, epoch %d, k=%d): snapshot answer %d tuples, serial replay %d",
						r, i, wi, snap.Epoch(), k, got.Len(), want.Len())
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
}
