package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// The sharded engine's contract is byte-for-byte identity with sequential
// semi-naive: hash partitioning only moves ownership of frontier tuples
// between workers, never changes what is derivable, and the barrier merge
// is single-threaded in task order so even the insertion order of the
// output relations is deterministic. Every test here forces Opts.Shards
// past the auto planner's small-input cutoff — the point is the exchange
// machinery, not the policy.

// TestShardedMatchesSemiNaiveOnRandomSystems: randomly generated recursive
// systems across all classes, forced shard counts 2..5 with varying worker
// counts.
func TestShardedMatchesSemiNaiveOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		db, err := dlgen.RandomDB(sys, 5, 12, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		prog := sys.Program()
		seq, seqStats, err := SemiNaive(prog, db)
		if err != nil {
			t.Fatalf("trial %d seminaive: %v", trial, err)
		}
		shards := 2 + trial%4
		sh, shStats, err := ShardedSemiNaiveOpts(prog, db, Opts{Shards: shards, Workers: 1 + trial%4})
		if err != nil {
			t.Fatalf("trial %d sharded: %v", trial, err)
		}
		if a, b := dumpIDB(prog, seq), dumpIDB(prog, sh); a != b {
			t.Fatalf("trial %d (%v, %d shards): sharded IDB differs from sequential\nseq:\n%s\nsharded:\n%s",
				trial, sys.Recursive, shards, a, b)
		}
		if seqStats.Derived != shStats.Derived {
			t.Errorf("trial %d: derived %d (seq) vs %d (sharded)", trial, seqStats.Derived, shStats.Derived)
		}
		if shStats.Shards != shards {
			t.Errorf("trial %d: stats report %d shards, forced %d", trial, shStats.Shards, shards)
		}
	}
}

// TestShardedMatchesSemiNaiveWithNegation: multi-strata programs with
// negation — the exchange must respect stratum boundaries exactly like the
// unsharded pool does.
func TestShardedMatchesSemiNaiveWithNegation(t *testing.T) {
	prog, _ := parseProg(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		src(X) :- e(X, Y).
		sink(Y) :- e(X, Y).
		boundary(X) :- src(X), not sink(X).
		boundary(X) :- sink(X), not src(X).
		far(X, Y) :- tc(X, Y), not e(X, Y).
		island(X) :- src(X), not far(X, X).
	`)
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		db := storage.NewDatabase()
		if err := storage.GenRandomGraph(db, "e", 10+trial, 18+2*trial, int64(trial)); err != nil {
			t.Fatal(err)
		}
		seq, _, err := SemiNaive(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		sh, _, err := ShardedSemiNaiveOpts(prog, db, Opts{Shards: 2 + trial%3, Workers: 1 + trial%3})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := dumpIDB(prog, seq), dumpIDB(prog, sh); a != b {
			t.Fatalf("trial %d: negation program differs\nseq:\n%s\nsharded:\n%s", trial, a, b)
		}
	}
}

// TestShardedDeterministicAcrossShardCounts: the output must not depend on
// the shard count, the worker count, or the auto policy's pick — including
// byte-identical insertion order from the deterministic barrier merge.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 40, 90, 3); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, shards := range []int{0, 1, 2, 3, 4, 8} {
		out, _, err := ShardedSemiNaiveOpts(prog, db, Opts{Shards: shards, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		got := dumpIDB(prog, out)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("shards=%d: result differs from shards=0", shards)
		}
	}
}

// TestShardedExchangeOnChain: a Hamiltonian chain forces long derivation
// paths whose frontier tuples keep crossing shard boundaries. The exchange
// counter must see traffic, the per-round trace must carry the shard count,
// and the result must still be the exact closure (nothing dropped or
// duplicated at any barrier: the closure of an n-chain has exactly
// n(n-1)/2 tuples).
func TestShardedExchangeOnChain(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	const n = 48
	db := storage.NewDatabase()
	if err := storage.GenChain(db, "e", n); err != nil {
		t.Fatal(err)
	}
	out, st, err := ShardedSemiNaiveOpts(prog, db, Opts{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; out.Rel("p").Len() != want {
		t.Errorf("closure has %d tuples, want %d", out.Rel("p").Len(), want)
	}
	if st.Exchanged == 0 {
		t.Error("chain closure across 4 shards exchanged no tuples")
	}
	if st.Shards != 4 {
		t.Errorf("stats report %d shards, want 4", st.Shards)
	}
	sawShards := false
	for _, r := range st.Trace {
		if r.Shards == 4 {
			sawShards = true
		}
	}
	if !sawShards {
		t.Error("no round record carries the shard count")
	}
}

// dumpRel renders an answer relation deterministically for comparison.
func dumpRel(r *storage.Relation) string {
	lines := make([]string, 0, r.Len())
	r.Each(func(tp storage.Tuple) bool {
		lines = append(lines, fmt.Sprint([]storage.Value(tp)))
		return true
	})
	sort.Strings(lines)
	s := ""
	for _, l := range lines {
		s += l + "\n"
	}
	return s
}

// TestShardedAllPlanClasses drives the auto planner's four compiled plan
// kinds (TC frontier, bounded union, stable parallel, generic parallel)
// with forced sharding and checks the answers against the unsharded run —
// the classifier's choice must be shard-transparent for free and bound
// queries alike.
func TestShardedAllPlanClasses(t *testing.T) {
	ids := []string{"s1a", "s8", "s4a", "s9"} // PlanTC, PlanBounded, PlanStable, PlanGeneric
	for _, id := range ids {
		sys := mustStatement(t, id).System()
		db, err := dlgen.RandomDB(sys, 6, 16, 99)
		if err != nil {
			t.Fatal(err)
		}
		queries := []ast.Query{allFreeQuery(sys)}
		if sys.Arity() > 0 {
			queries = append(queries, boundQueryTest(sys, db))
		}
		for qi, q := range queries {
			base, _, err := AnswerOpts(StrategyAuto, sys, q, db, Opts{Shards: 1})
			if err != nil {
				t.Fatalf("%s q%d unsharded: %v", id, qi, err)
			}
			for _, shards := range []int{2, 4} {
				sh, st, err := AnswerOpts(StrategyAuto, sys, q, db, Opts{Shards: shards})
				if err != nil {
					t.Fatalf("%s q%d shards=%d: %v", id, qi, shards, err)
				}
				if a, b := dumpRel(base), dumpRel(sh); a != b {
					t.Errorf("%s q%d shards=%d: answers differ\nbase:\n%s\nsharded:\n%s",
						id, qi, shards, a, b)
				}
				if st.Plan == nil || st.Plan.Class == "" {
					t.Errorf("%s q%d shards=%d: missing plan info", id, qi, shards)
				}
			}
		}
	}
}

// TestShardedTCComposeReportsShards: the transitive-closure frontier kernel
// has its own sharded compose path; with forced shards an all-free query
// must run it, report the shard count in the plan, and count exchanges.
func TestShardedTCComposeReportsShards(t *testing.T) {
	sys := mustStatement(t, "s1a").System()
	db := chainDB(t, 60)
	q := allFreeQuery(sys)
	base, _, err := AnswerOpts(StrategyAuto, sys, q, db, Opts{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh, st, err := AnswerOpts(StrategyAuto, sys, q, db, Opts{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := dumpRel(base), dumpRel(sh); a != b {
		t.Fatalf("sharded TC compose differs\nbase:\n%s\nsharded:\n%s", a, b)
	}
	if st.Shards != 4 {
		t.Errorf("stats report %d shards, want 4", st.Shards)
	}
	if st.Plan == nil || st.Plan.Shards != 4 {
		t.Errorf("plan info = %v, want shards=4", st.Plan)
	}
	if st.Exchanged == 0 {
		t.Error("60-node chain closure across 4 shards exchanged no tuples")
	}
}

// TestShardedStreamMatchesMaterialized: the streaming path runs the sharded
// core; the emitted tuple set must equal the materialized answers, and an
// early-termination limit must stop the fixpoint.
func TestShardedStreamMatchesMaterialized(t *testing.T) {
	prog, queries := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
		?- p(X, Y).
	`)
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 30, 70, 5); err != nil {
		t.Fatal(err)
	}
	q := queries[0]

	out, _, err := ShardedSemiNaiveOpts(prog, db, Opts{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnswerQuery(out, q)
	if err != nil {
		t.Fatal(err)
	}

	it := StreamProgram(prog, q, db, Opts{Shards: 3, Workers: 2}, 0)
	defer it.Close()
	got := map[string]bool{}
	for it.Next() {
		tp := it.Tuple()
		got[fmt.Sprint([]storage.Value(tp))] = true
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != want.Len() {
		t.Fatalf("stream yielded %d distinct tuples, materialized has %d", len(got), want.Len())
	}
	missing := 0
	want.Each(func(tp storage.Tuple) bool {
		if !got[fmt.Sprint([]storage.Value(tp))] {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("stream is missing %d materialized tuples", missing)
	}

	const limit = 5
	lim := StreamProgram(prog, q, db, Opts{Shards: 3}, limit)
	defer lim.Close()
	rows := 0
	for lim.Next() {
		rows++
	}
	if err := lim.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != limit {
		t.Fatalf("limit %d stream yielded %d rows", limit, rows)
	}
}

// TestChooseShards pins the auto policy: explicit settings win outright,
// single-worker hosts never shard, small inputs fall back, and the count is
// capped by the largest body relation's column cardinality.
func TestChooseShards(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	small := storage.NewDatabase()
	if err := storage.GenRandomGraph(small, "e", 20, 40, 1); err != nil {
		t.Fatal(err)
	}
	big := storage.NewDatabase()
	if err := storage.GenRandomGraph(big, "e", 400, 2*shardMinTuples, 2); err != nil {
		t.Fatal(err)
	}
	hot := storage.NewDatabase()
	for i := 0; i < shardMinTuples+64; i++ {
		if _, err := hot.Insert("e", "k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hot.Rel("e").BuildIndexes()

	cases := []struct {
		name string
		opts Opts
		db   *storage.Database
		want int
	}{
		{"explicit wins over tiny input", Opts{Shards: 7}, small, 7},
		{"explicit 1 disables", Opts{Shards: 1, Workers: 8}, big, 1},
		{"single worker never shards", Opts{Workers: 1}, big, 1},
		{"small input falls back", Opts{Workers: 8}, small, 1},
		{"large input shards to workers", Opts{Workers: 8}, big, 8},
		// The cardinality bound is the max over columns: a hot join key in
		// one column does not cap the count while another column is wide.
		{"hot key in one column does not cap", Opts{Workers: 8}, hot, 8},
	}
	for _, c := range cases {
		if got := chooseShards(c.opts, c.db, prog); got != c.want {
			t.Errorf("%s: chooseShards = %d, want %d", c.name, got, c.want)
		}
	}
	if got := capShards(8, 3); got != 3 {
		t.Errorf("capShards(8, 3) = %d, want 3", got)
	}
	if got := capShards(8, 1); got != 1 {
		t.Errorf("capShards(8, 1) = %d, want 1", got)
	}
}

// allFreeQuery builds ?- p(Q0, ..., Qn). for the system's head predicate.
func allFreeQuery(sys interface {
	Arity() int
	Pred() string
}) ast.Query {
	args := make([]string, sys.Arity())
	for i := range args {
		args[i] = fmt.Sprintf("Q%d", i)
	}
	q, err := parser.ParseQuery(fmt.Sprintf("?- %s(%s).", sys.Pred(), join(args)))
	if err != nil {
		panic(err)
	}
	return q
}

// boundQueryTest binds the first argument to some constant present in the
// database so the bound-query path has work to do.
func boundQueryTest(sys interface {
	Arity() int
	Pred() string
}, db *storage.Database) ast.Query {
	c := "n0"
	for _, pred := range db.Preds() {
		r := db.Rel(pred)
		if r != nil && r.Len() > 0 && r.Arity() > 0 {
			c = db.Syms.Name(r.At(0)[0])
			break
		}
	}
	args := make([]string, sys.Arity())
	args[0] = c
	for i := 1; i < len(args); i++ {
		args[i] = fmt.Sprintf("Q%d", i)
	}
	q, err := parser.ParseQuery(fmt.Sprintf("?- %s(%s).", sys.Pred(), join(args)))
	if err != nil {
		panic(err)
	}
	return q
}

func join(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ", "
		}
		s += p
	}
	return s
}
