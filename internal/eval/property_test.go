package eval

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/parser"
)

// TestStrategiesAgreeOnRandomSystems is the broad-spectrum engine check:
// random admissible systems, random databases, random query adornments —
// every strategy must compute the same answers as naive evaluation.
func TestStrategiesAgreeOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		res := classify.MustClassify(sys.Recursive)
		if res.Transformable && res.StabilizationPeriod > 4 {
			continue // unfolding cost explodes; covered by targeted tests
		}
		if res.Bounded && res.RankBound > 8 {
			continue
		}
		db, err := dlgen.RandomDB(sys, 5, 10, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		q := dlgen.RandomQuery(rng, sys, 5)
		ref, _, err := Answer(StrategyNaive, sys, q, db)
		if err != nil {
			t.Fatalf("%v %v naive: %v", sys.Recursive, q, err)
		}
		for _, st := range []Strategy{StrategySemiNaive, StrategyMagic, StrategyState, StrategyClass, StrategyParallel} {
			got, _, err := Answer(st, sys, q, db)
			if err != nil {
				t.Fatalf("%v %v %v: %v", sys.Recursive, q, st, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("strategy %v differs on\n  rule: %v\n  query: %v\n  class: %s\n  got %d tuples, want %d",
					st, sys.Recursive, q, res.Class.Code(), got.Len(), ref.Len())
			}
		}
	}
}

// TestClassStrategyUsesBoundedCutoff checks that for bounded formulas the
// class engine does work proportional to the rank, not to the data depth:
// its round count must stay at rank+1 as the database grows.
func TestClassStrategyUsesBoundedCutoff(t *testing.T) {
	s := mustStatement(t, "s10")
	sys := s.System()
	res := classify.MustClassify(sys.Recursive)
	for _, size := range []int{10, 40, 160} {
		db, err := dlgen.RandomDB(sys, size, size*2, 7)
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.ParseQuery("?- p(n0, Y).")
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := ClassEvalWith(sys, res, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rounds != res.RankBound+1 {
			t.Errorf("size %d: rounds = %d, want %d (rank bound + 1)", size, st.Rounds, res.RankBound+1)
		}
	}
}
