package eval

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/paper"
	"repro/internal/storage"
)

// corpusDB builds a random database covering every EDB predicate of the
// statement plus its exit relation, deterministically from seed.
func corpusDB(t testing.TB, sys *ast.RecursiveSystem, domain, size int, seed int64) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	prog := sys.Program()
	for _, pred := range prog.EDBPreds() {
		arity := 0
		for _, r := range prog.Rules {
			for _, a := range r.Body {
				if a.Pred == pred {
					arity = a.Arity()
				}
			}
		}
		if err := storage.GenRandomRelation(db, pred, arity, domain, size, seed+int64(len(pred))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// queryFor builds a query for the adornment mask: bound positions get the
// constant, free positions fresh variables.
func queryFor(sys *ast.RecursiveSystem, mask int, constant string) ast.Query {
	n := sys.Arity()
	args := make([]ast.Term, n)
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			args[i] = ast.C(constant)
		} else {
			args[i] = ast.V(fmt.Sprintf("Q%d", i))
		}
	}
	return ast.Query{Atom: ast.NewAtom(sys.Pred(), args...)}
}

// TestStrategiesAgreeOnPaperCorpus is the engine cross-check: for every
// statement of the paper, every query adornment, and a random database, all
// five strategies must produce identical answer sets.
func TestStrategiesAgreeOnPaperCorpus(t *testing.T) {
	for _, s := range paper.All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			sys := s.System()
			n := sys.Arity()
			domain, size := 6, 14
			if n > 4 {
				domain, size = 5, 10
			}
			db := corpusDB(t, sys, domain, size, 42)
			maxMask := 1 << uint(n)
			if n > 4 {
				// High-arity statements: spot-check all-free, all-bound and
				// two mixed adornments to keep runtime sane.
				for _, mask := range []int{0, 1, maxMask - 1, 5} {
					crossCheck(t, sys, db, queryFor(sys, mask, "n1"))
				}
				return
			}
			for mask := 0; mask < maxMask; mask++ {
				crossCheck(t, sys, db, queryFor(sys, mask, "n1"))
			}
		})
	}
}

func crossCheck(t *testing.T, sys *ast.RecursiveSystem, db *storage.Database, q ast.Query) {
	t.Helper()
	ref, _, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatalf("%v naive: %v", q, err)
	}
	for _, st := range []Strategy{StrategySemiNaive, StrategyMagic, StrategyState, StrategyClass, StrategyParallel, StrategyAuto} {
		got, _, err := Answer(st, sys, q, db)
		if err != nil {
			t.Fatalf("%v %v: %v", q, st, err)
		}
		if !got.Equal(ref) {
			t.Errorf("%v: %v answers differ from naive: got %d tuples, want %d",
				q, st, got.Len(), ref.Len())
		}
	}
}
