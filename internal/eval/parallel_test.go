package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/dlgen"
	"repro/internal/storage"
)

// dumpIDB renders every IDB relation of the program deterministically, so
// two evaluations can be compared byte for byte.
func dumpIDB(prog *ast.Program, out *storage.Database) string {
	s := ""
	for _, pred := range prog.IDBPreds() {
		s += out.Dump(pred)
	}
	return s
}

// TestParallelMatchesSemiNaiveOnRandomSystems: the parallel engine must
// produce byte-for-byte the same IDB as sequential SemiNaive on randomly
// generated recursive systems across all classes.
func TestParallelMatchesSemiNaiveOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		db, err := dlgen.RandomDB(sys, 5, 12, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		prog := sys.Program()
		seq, seqStats, err := SemiNaive(prog, db)
		if err != nil {
			t.Fatalf("trial %d seminaive: %v", trial, err)
		}
		par, parStats, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{Workers: 1 + trial%4})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if a, b := dumpIDB(prog, seq), dumpIDB(prog, par); a != b {
			t.Fatalf("trial %d (%v): parallel IDB differs from sequential\nseq:\n%s\npar:\n%s",
				trial, sys.Recursive, a, b)
		}
		if seqStats.Derived != parStats.Derived {
			t.Errorf("trial %d: derived %d (seq) vs %d (par)", trial, seqStats.Derived, parStats.Derived)
		}
	}
}

// TestParallelMatchesSemiNaiveWithNegation: multi-strata programs with
// negation over random graphs — same byte-for-byte agreement.
func TestParallelMatchesSemiNaiveWithNegation(t *testing.T) {
	prog, _ := parseProg(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		src(X) :- e(X, Y).
		sink(Y) :- e(X, Y).
		boundary(X) :- src(X), not sink(X).
		boundary(X) :- sink(X), not src(X).
		far(X, Y) :- tc(X, Y), not e(X, Y).
		island(X) :- src(X), not far(X, X).
	`)
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		db := storage.NewDatabase()
		if err := storage.GenRandomGraph(db, "e", 10+trial, 18+2*trial, int64(trial)); err != nil {
			t.Fatal(err)
		}
		seq, _, err := SemiNaive(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{Workers: 1 + trial%3})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := dumpIDB(prog, seq), dumpIDB(prog, par); a != b {
			t.Fatalf("trial %d: negation program differs\nseq:\n%s\npar:\n%s", trial, a, b)
		}
	}
}

// TestParallelDeterministicAcrossWorkerCounts: the merge order is fixed by
// task order, so the result must not depend on the pool size or scheduling.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 40, 90, 3); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 2, 3, 8} {
		out, _, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := dumpIDB(prog, out)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: result differs from workers=1", workers)
		}
	}
}

// TestSemiNaiveRoundCounts is the regression test for the round-0 counter:
// a stratum's seed pass is one fixpoint round no matter how many
// non-recursive rules it has, and the parallel engine reports the same
// round structure as the sequential one on single-rule recursion.
func TestSemiNaiveRoundCounts(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- f(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	db := storage.NewDatabase()
	// e: n0 -> n1 -> n2 -> n3; f: one disconnected edge.
	if err := storage.GenChain(db, "e", 4); err != nil {
		t.Fatal(err)
	}
	db.Insert("f", "m0", "m1")
	// Round 1 seeds both exit rules (4 tuples); rounds 2 and 3 derive the
	// length-2 and length-3 paths; round 4 derives nothing and stops.
	const wantRounds, wantDerived = 4, 7
	_, seqStats, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Rounds != wantRounds {
		t.Errorf("seminaive rounds = %d, want %d (seed pass must count once, not per rule)",
			seqStats.Rounds, wantRounds)
	}
	if seqStats.Derived != wantDerived {
		t.Errorf("seminaive derived = %d, want %d", seqStats.Derived, wantDerived)
	}
	_, parStats, err := ParallelSemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if parStats.Rounds != wantRounds || parStats.Derived != wantDerived {
		t.Errorf("parallel rounds=%d derived=%d, want %d and %d",
			parStats.Rounds, parStats.Derived, wantRounds, wantDerived)
	}
}

// TestSemiNaiveDerivedMatchesIDBGrowth is the regression test for the
// Derived counter: across seed and delta rounds and across strata, Derived
// must equal the growth of the IDB over the seeded program facts.
func TestSemiNaiveDerivedMatchesIDBGrowth(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(a0, a1).
		q(X) :- p(X, Y), not e(X, Y).
	`)
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 15, 30, 9); err != nil {
		t.Fatal(err)
	}
	idbFacts := len(prog.Facts) // p(a0, a1) is seeded, not derived
	run := func(name string, engine func(*ast.Program, *storage.Database) (*storage.Database, Stats, error)) {
		out, st, err := engine(prog, db)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, pred := range prog.IDBPreds() {
			total += out.Rel(pred).Len()
		}
		if st.Derived != total-idbFacts {
			t.Errorf("%s: Derived = %d, want %d (final IDB %d − %d seeded facts)",
				name, st.Derived, total-idbFacts, total, idbFacts)
		}
	}
	run("seminaive", SemiNaive)
	run("parallel", ParallelSemiNaive)
}

// TestParallelRoundTrace: the per-round records must be internally
// consistent and must reconcile with the aggregate Stats.
func TestParallelRoundTrace(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	db := storage.NewDatabase()
	if err := storage.GenChain(db, "e", 16); err != nil {
		t.Fatal(err)
	}
	var observed []RoundStats
	_, st, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{
		Workers:  2,
		Observer: ObserverFunc(func(r RoundStats) { observed = append(observed, r) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) != st.Rounds {
		t.Fatalf("trace has %d records, want one per round (%d)", len(st.Trace), st.Rounds)
	}
	if len(observed) != len(st.Trace) {
		t.Fatalf("observer saw %d rounds, trace holds %d", len(observed), len(st.Trace))
	}
	sumDerived, sumAttempted := 0, 0
	for i, r := range st.Trace {
		if r.Round != i+1 {
			t.Errorf("record %d has round number %d", i, r.Round)
		}
		if r != observed[i] {
			t.Errorf("record %d differs between trace and observer", i)
		}
		if r.Workers != 2 {
			t.Errorf("record %d reports %d workers, want 2", i, r.Workers)
		}
		if r.Duration < 0 || r.Busy < 0 || r.Utilization() < 0 || r.Utilization() > 1 {
			t.Errorf("record %d has inconsistent timing: %+v", i, r)
		}
		sumDerived += r.Derived
		sumAttempted += r.Attempted
	}
	if sumDerived != st.Derived {
		t.Errorf("trace derived sums to %d, stats say %d", sumDerived, st.Derived)
	}
	if sumAttempted != st.Facts {
		t.Errorf("trace attempted sums to %d, stats say %d", sumAttempted, st.Facts)
	}
	// The chain TC has one seed round, one empty final round, and one
	// delta round per path length in between.
	if got := st.Trace[len(st.Trace)-1]; got.Derived != 0 {
		t.Errorf("final round derived %d, want 0", got.Derived)
	}
}

// TestParallelRejectsUnstratifiable: error paths must match the sequential
// engine (and not hang the worker pool).
func TestParallelRejectsUnstratifiable(t *testing.T) {
	prog, _ := parseProg(t, `
		win(X) :- move(X, Y), not win(Y).
	`)
	db := storage.NewDatabase()
	db.Insert("move", "a", "b")
	if _, _, err := ParallelSemiNaive(prog, db); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}

// TestParallelEmptyAndFactOnlyPrograms: degenerate shapes must not deadlock
// or miscount.
func TestParallelEmptyAndFactOnlyPrograms(t *testing.T) {
	db := storage.NewDatabase()
	out, st, err := ParallelSemiNaive(&ast.Program{}, db)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || st.Derived != 0 {
		t.Fatalf("empty program: %+v", st)
	}
	prog, _ := parseProg(t, `
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	db2 := storage.NewDatabase()
	db2.Insert("e", "a", "b")
	out2, st2, err := ParallelSemiNaive(prog, db2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rel("p").Len() != 0 {
		t.Errorf("recursion with no exit derived %d tuples", out2.Rel("p").Len())
	}
	if st2.Derived != 0 {
		t.Errorf("derived = %d, want 0", st2.Derived)
	}
}

// TestParallelManyStrataStress drives a deeper stratification pyramid so
// the race target exercises repeated pool startup/teardown across strata.
func TestParallelManyStrataStress(t *testing.T) {
	src := `
		t0(X, Y) :- e(X, Y).
		t0(X, Y) :- e(X, Z), t0(Z, Y).
	`
	for i := 1; i < 5; i++ {
		src += fmt.Sprintf("t%d(X, Y) :- t%d(X, Y), not skip%d(X).\n", i, i-1, i)
	}
	prog, _ := parseProg(t, src)
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", 12, 24, 5); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		db.Insert(fmt.Sprintf("skip%d", i), fmt.Sprintf("n%d", i))
	}
	seq, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := dumpIDB(prog, seq), dumpIDB(prog, par); a != b {
		t.Fatalf("stratified pyramid differs\nseq:\n%s\npar:\n%s", a, b)
	}
}
