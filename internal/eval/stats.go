package eval

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Stats accumulates work counters so the benchmarks can report logical cost
// alongside wall-clock time.
type Stats struct {
	// Rounds is the number of fixpoint iterations (or expansion depths).
	Rounds int
	// Derived is the number of new tuples inserted by rule evaluation.
	// For the bottom-up engines this equals the growth of the IDB over the
	// prepared database: program facts are seeded, not derived.
	Derived int
	// Facts is the number of tuple insertions attempted (including
	// duplicates) — the naive evaluator's wasted-rederivation measure.
	Facts int
	// Trace holds one record per fixpoint round when the engine collects
	// per-round metrics (currently the parallel semi-naive engine); nil
	// otherwise.
	Trace []RoundStats
	// Plan reports the auto planner's decision when the query went through
	// StrategyAuto (or a Planner directly); nil for the explicit engines.
	Plan *PlanInfo
	// Maintained reports that the answer was carried forward across a write
	// by the result cache's incremental maintenance pass (a delta fixpoint
	// over the inserted tuples) instead of being recomputed from scratch.
	Maintained bool
	// Truncated reports that a streaming evaluation stopped early — the
	// consumer's limit was satisfied before the answer set was exhausted, so
	// Rounds/Derived/Facts measure only the work actually done, not the full
	// evaluation's cost.
	Truncated bool
	// Shards is the hash-shard count of the sharded fixpoint engine
	// (shard.go); 0 when the evaluation ran unsharded.
	Shards int
	// Exchanged counts the tuples routed across shards at round barriers:
	// derived in one shard, owned (by join-column hash) by another. Always 0
	// for unsharded evaluations.
	Exchanged int
	// Visited counts the intermediate tuples the conjunction enumerations
	// pulled from index postings or scans — the join-order work measure the
	// cost planner estimates (Facts counts only completed derivations; a bad
	// join order does its damage before the head is ever reached).
	Visited int64
}

func (s Stats) String() string {
	base := fmt.Sprintf("rounds=%d derived=%d attempted=%d", s.Rounds, s.Derived, s.Facts)
	if s.Visited > 0 {
		base += fmt.Sprintf(" visited=%d", s.Visited)
	}
	if s.Shards > 1 {
		// The plan line repeats the shard count (PlanInfo.Shards); only the
		// exchange volume is unique to the stats.
		if s.Plan == nil {
			base += fmt.Sprintf(" shards=%d", s.Shards)
		}
		base += fmt.Sprintf(" exchanged=%d", s.Exchanged)
	}
	if s.Plan != nil {
		base += " " + s.Plan.String()
	}
	return base
}

// FillJournal copies the evaluation-side facts of one answered query into
// a journal record: fixpoint counters, shard/exchange volume, maintenance
// and truncation flags, and the auto planner's class/strategy decision.
// The serving layer owns the request-side fields (ID, query text, epoch,
// timings, rows, error class) — this split keeps the journal schema in one
// place while letting eval stay the source of truth for what an
// evaluation did.
func (s Stats) FillJournal(rec *obs.QueryRecord) {
	rec.Rounds = s.Rounds
	rec.Derived = s.Derived
	rec.Shards = s.Shards
	rec.Exchanged = s.Exchanged
	rec.Visited = s.Visited
	rec.Maintained = s.Maintained
	rec.Truncated = s.Truncated
	if s.Plan != nil {
		rec.Class = s.Plan.Class
		rec.Strategy = s.Plan.Strategy
		rec.Cost = s.Plan.Cost
	}
}

// PlanInfo describes the outcome of classification-driven planning for one
// evaluated query.
type PlanInfo struct {
	// Class is the paper's classification code (A1–A5, B, C, D, E, F).
	Class string
	// Strategy is the compiled fast path ("tc-frontier", "bounded-union",
	// "stable-parallel" or "generic-parallel").
	Strategy string
	// CacheHit reports that the plan was served from the planner's cache,
	// skipping classification and rewriting.
	CacheHit bool
	// Shards is the hash-shard count the evaluation ran with (0 or 1 means
	// the unsharded engine). The shard decision is per-database — plans are
	// database-independent — so it is recorded here at answer time, not
	// compile time.
	Shards int
	// Cost is the plan's estimated full-evaluation cost in tuples visited,
	// summed over the compiled rule orders (0 when the plan carries no order
	// book — the TC frontier kernel never enumerates conjunctions).
	Cost int64
	// Orders lists the compiled join orders, one human-readable line per
	// rule ("head[i]: pred,pred,... cost=…"), sorted; nil when no order book
	// was compiled.
	Orders []string
}

func (p PlanInfo) String() string {
	cache := "miss"
	if p.CacheHit {
		cache = "hit"
	}
	s := fmt.Sprintf("class=%s strategy=%s cache=%s", p.Class, p.Strategy, cache)
	if p.Shards > 1 {
		s += fmt.Sprintf(" shards=%d", p.Shards)
	}
	if p.Cost > 0 {
		s += fmt.Sprintf(" cost=%d", p.Cost)
	}
	return s
}

// RoundStats records one fixpoint round: how much delta was consumed, what
// the round produced, and — for the parallel engine — how the round was
// split into tasks and how well the worker pool was used. Every engine
// (naive, semi-naive, parallel, the compiled kernels) emits one RoundStats
// per round into Stats.Trace; the task/worker fields stay zero for the
// sequential engines.
type RoundStats struct {
	// Round is the 1-based global round number across all strata.
	Round int
	// Stratum is the 0-based stratum the round belongs to.
	Stratum int
	// Tasks is the number of (rule, delta-occurrence, partition) work units
	// the round was split into.
	Tasks int
	// Delta is the number of input delta tuples across the stratum's
	// predicates at the start of the round (0 for the seed round).
	Delta int
	// Derived is the number of new tuples the round inserted.
	Derived int
	// Attempted is the number of head-tuple derivations the round produced
	// before deduplication (the per-round analogue of Stats.Facts).
	Attempted int
	// Workers is the size of the worker pool.
	Workers int
	// Shards is the hash-shard count of the round (0 for unsharded rounds);
	// Exchanged counts the round's freshly derived tuples routed into a
	// different shard's next frontier than the one deriving them.
	Shards    int
	Exchanged int
	// Duration is the wall-clock time of the round (fan-out through merge).
	Duration time.Duration
	// Busy is the summed execution time of the round's tasks across all
	// workers; Busy/(Workers·Duration) is the pool utilization.
	Busy time.Duration
	// Estimated is the cost model's prediction of the round's enumeration
	// work (tuples visited) under the compiled join orders; it stays 0 when
	// the round ran on the dynamic greedy ordering. Visited is what the
	// enumerations actually walked, counted under either ordering —
	// comparing the two per round is how a misestimate is debugged from
	// dlrun -trace or the query journal.
	Estimated int64
	Visited   int64
}

// Utilization returns the fraction of the round's worker capacity that was
// executing tasks, in [0, 1].
func (r RoundStats) Utilization() float64 {
	if r.Workers <= 0 || r.Duration <= 0 {
		return 0
	}
	u := float64(r.Busy) / (float64(r.Workers) * float64(r.Duration))
	if u > 1 {
		u = 1
	}
	return u
}

func (r RoundStats) String() string {
	s := fmt.Sprintf("round=%d stratum=%d delta=%d derived=%d attempted=%d",
		r.Round, r.Stratum, r.Delta, r.Derived, r.Attempted)
	if r.Workers > 0 {
		// Only the parallel engine fills the pool fields; sequential rounds
		// would otherwise print meaningless tasks=0 workers=0 util=0%.
		s += fmt.Sprintf(" tasks=%d workers=%d util=%.0f%%", r.Tasks, r.Workers, 100*r.Utilization())
	}
	if r.Shards > 0 {
		s += fmt.Sprintf(" shards=%d exchanged=%d", r.Shards, r.Exchanged)
	}
	if r.Estimated > 0 || r.Visited > 0 {
		s += fmt.Sprintf(" est=%d visited=%d", r.Estimated, r.Visited)
	}
	return s + fmt.Sprintf(" wall=%v", r.Duration)
}

// Observer receives one callback per fixpoint round. Calls are made from
// the coordinating goroutine only, in round order, so implementations need
// no locking. Every engine feeds it through the same round sink that emits
// round spans, so it now fires for the sequential engines too (it was
// silently ignored by them before).
//
// Deprecated: Observer predates the obs.Tracer span plumbing. New callers
// should read Stats.Trace after evaluation or attach an Opts.Tracer for
// live, hierarchical data.
type Observer interface {
	Round(RoundStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(RoundStats)

// Round implements Observer.
func (f ObserverFunc) Round(r RoundStats) { f(r) }
