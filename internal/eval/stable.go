package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/storage"
)

// StableEval evaluates a query over a strongly stable system (§4.1: the
// I-graph consists of disjoint unit cycles) with the paper's compiled plan:
// every cycle is evaluated independently — bound positions push the query
// constant down their cycle's σ-chain, unbound positions chain exit values
// back up — and the per-depth results are combined with the exit relation.
// Keeping cycles independent avoids the cross-product of frontier states
// that the generic evaluator would enumerate.
type StableEval struct {
	sys   *ast.RecursiveSystem
	res   *classify.Result
	db    *storage.Database
	n     int
	exit  *storage.Relation
	comps []posComponent
	// trivialConj is the conjunction of atoms in components with no
	// directed edge: a pure existence check, identical at every expansion.
	trivialConj *Conj
	// Parallel advances the independent cycle frontiers concurrently — the
	// literal reading of the paper's brace notation ("{σA^k, σB^k} are
	// evaluated independently"). All column indexes are materialized up
	// front so concurrent readers never race on lazy index builds. Worth it
	// only when the per-depth frontiers are large.
	Parallel bool
}

// posComponent is the per-position cycle machinery.
type posComponent struct {
	headVar, bodyVar   string
	conj               *Conj // atoms of this component; nil when none (pure self-loop)
	headSlot, bodySlot int
	selfLoop           bool
}

// NewStableEval prepares the per-cycle machinery. It fails unless the
// classification is strongly stable.
func NewStableEval(sys *ast.RecursiveSystem, res *classify.Result, db *storage.Database) (*StableEval, error) {
	if !res.Stable {
		return nil, fmt.Errorf("eval: StableEval requires a strongly stable formula, got class %s", res.Class.Code())
	}
	n := sys.Arity()
	exitRel, err := MaterializeExit(sys, db)
	if err != nil {
		return nil, err
	}
	rule := sys.Recursive
	recAtom, _ := rule.RecursiveAtom()

	// Partition the non-recursive atoms by component.
	vertexComp := make(map[string]int)
	for ci, c := range res.Components {
		for _, v := range c.G.Vertices() {
			vertexComp[v] = ci
		}
	}
	atomsByComp := make(map[int][]ast.Atom)
	var trivialAtoms []ast.Atom
	for _, a := range rule.NonRecursiveAtoms() {
		vars := a.Vars()
		ci := -1
		if len(vars) > 0 {
			ci = vertexComp[vars[0]]
		}
		if ci >= 0 && res.Components[ci].Class != classify.ClassTrivial {
			atomsByComp[ci] = append(atomsByComp[ci], a)
		} else {
			trivialAtoms = append(trivialAtoms, a)
		}
	}

	se := &StableEval{sys: sys, res: res, db: db, n: n, exit: exitRel}
	if len(trivialAtoms) > 0 {
		se.trivialConj = CompileConj(db.Syms, trivialAtoms)
	}
	for i := 0; i < n; i++ {
		pc := posComponent{
			headVar: rule.Head.Args[i].Name,
			bodyVar: recAtom.Args[i].Name,
		}
		pc.selfLoop = pc.headVar == pc.bodyVar
		ci, ok := vertexComp[pc.headVar]
		if !ok {
			return nil, fmt.Errorf("eval: head variable %s missing from I-graph", pc.headVar)
		}
		if atoms := atomsByComp[ci]; len(atoms) > 0 {
			pc.conj = CompileConj(db.Syms, atoms)
			pc.headSlot = pc.conj.VarID(pc.headVar)
			pc.bodySlot = pc.conj.VarID(pc.bodyVar)
		}
		se.comps = append(se.comps, pc)
	}
	return se, nil
}

// valueSet is a deduplicated set of single values.
type valueSet map[storage.Value]struct{}

func (s valueSet) sortedKey() string {
	vals := make([]int, 0, len(s))
	for v := range s {
		vals = append(vals, int(v))
	}
	sort.Ints(vals)
	var b strings.Builder
	b.Grow(8 * len(vals))
	for _, v := range vals {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// down applies one σ-chain step from head-side values to body-side values.
func (pc *posComponent) down(rels RelFunc, in valueSet) valueSet {
	out := make(valueSet)
	if pc.conj == nil {
		// Pure self-loop: identity.
		for v := range in {
			out[v] = struct{}{}
		}
		return out
	}
	for v := range in {
		binding := pc.conj.NewBinding()
		if pc.headSlot >= 0 {
			binding[pc.headSlot] = v
		}
		pc.conj.Eval(rels, binding, func(b []storage.Value) bool {
			if pc.bodySlot >= 0 {
				out[b[pc.bodySlot]] = struct{}{}
			} else {
				out[v] = struct{}{}
			}
			return true
		})
	}
	return out
}

// up applies one chain step from body-side values to head-side values,
// returning the mapping as pairs.
func (pc *posComponent) up(rels RelFunc, in valueSet) map[storage.Value]valueSet {
	out := make(map[storage.Value]valueSet)
	add := func(from, to storage.Value) {
		s, ok := out[from]
		if !ok {
			s = make(valueSet)
			out[from] = s
		}
		s[to] = struct{}{}
	}
	if pc.conj == nil {
		for v := range in {
			add(v, v)
		}
		return out
	}
	for v := range in {
		binding := pc.conj.NewBinding()
		if pc.bodySlot >= 0 {
			binding[pc.bodySlot] = v
		}
		pc.conj.Eval(rels, binding, func(b []storage.Value) bool {
			if pc.headSlot >= 0 {
				add(v, b[pc.headSlot])
			} else {
				add(v, v)
			}
			return true
		})
	}
	return out
}

// pairRel maps an exit-side value to the head-side values reachable by k up
// steps: the paper's upward chain from the exit relation (e.g. C^k applied
// to E's third column in the plan for statement s3).
type pairRel map[storage.Value]valueSet

func (p pairRel) sortedKey() string {
	froms := make([]int, 0, len(p))
	for v := range p {
		froms = append(froms, int(v))
	}
	sort.Ints(froms)
	var b strings.Builder
	for _, f := range froms {
		b.WriteString(strconv.Itoa(f))
		b.WriteByte(':')
		b.WriteString(p[storage.Value(f)].sortedKey())
		b.WriteByte(';')
	}
	return b.String()
}

// Answer runs the stable compiled plan for the query.
func (se *StableEval) Answer(q ast.Query) (*storage.Relation, Stats, error) {
	return se.AnswerOpts(q, Opts{})
}

// AnswerOpts is Answer with instrumentation: each chain depth becomes one
// round under a "fixpoint" span tagged engine=stable.
func (se *StableEval) AnswerOpts(q ast.Query, opts Opts) (*storage.Relation, Stats, error) {
	n := se.n
	if q.Atom.Pred != se.sys.Pred() || q.Atom.Arity() != n {
		return nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, se.sys.Pred(), n)
	}
	var st Stats
	answers := storage.NewRelation(n)
	rels := DBRels(se.db)
	fix := opts.parent().Child("fixpoint").SetStr("engine", "stable")
	defer fix.End()
	sink := newRoundSink(&st, opts, fix)
	defer func() {
		fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
		sink.stratumDone(st.Rounds)
		// The exit relation is shared across Answer calls on the same
		// StableEval, so only the per-call answers relation is flushed.
		flushRels(opts, &st, answers)
	}()

	var boundPos, freePos []int
	consts := make(storage.Tuple, n)
	for i, t := range q.Atom.Args {
		if t.IsVar() {
			freePos = append(freePos, i)
			continue
		}
		v, ok := se.db.Syms.Lookup(t.Name)
		if !ok {
			return answers, st, nil
		}
		consts[i] = v
		boundPos = append(boundPos, i)
	}

	// Depth 0: σ_query(E).
	st.Rounds++
	sink.begin()
	bound := make([]bool, n)
	for _, p := range boundPos {
		bound[p] = true
	}
	se.exit.EachMatch(bound, consts, func(t storage.Tuple) bool {
		st.Facts++
		if answers.Insert(t) {
			st.Derived++
		}
		return true
	})
	sink.end(RoundStats{Round: st.Rounds, Derived: st.Derived, Attempted: st.Facts})

	// The trivial-component existence check is the same at every depth.
	if se.trivialConj != nil {
		satisfiable := false
		se.trivialConj.Eval(rels, se.trivialConj.NewBinding(), func([]storage.Value) bool {
			satisfiable = true
			return false
		})
		if !satisfiable {
			return answers, st, nil
		}
	}

	// Per-position frontiers. Positions whose cycle is a pure self-loop
	// (the identity chain) never change: their frontier is the constant
	// (bound) or the exit value itself (free), so they are excluded from
	// the advancing state.
	D := make(map[int]valueSet) // bound positions: σ-chain frontier
	W := make(map[int]pairRel)  // free positions: up-chains seeded at E
	var movingBound, movingFree []int
	for _, p := range boundPos {
		D[p] = valueSet{consts[p]: {}}
		if se.comps[p].conj != nil {
			movingBound = append(movingBound, p)
		}
	}
	for _, p := range freePos {
		if se.comps[p].conj == nil {
			continue // identity: exit value flows through unchanged
		}
		movingFree = append(movingFree, p)
		seed := make(valueSet)
		se.exit.Each(func(t storage.Tuple) bool {
			seed[t[p]] = struct{}{}
			return true
		})
		// W at depth 0 is the identity; it is advanced before first use.
		id := make(pairRel, len(seed))
		for v := range seed {
			id[v] = valueSet{v: {}}
		}
		W[p] = id
	}

	// With a single moving cycle the union over depths depends only on
	// membership, not on depth alignment (the paper's ∪_k σA^k is plain
	// reachability), so the iterate can advance a delta frontier and stop
	// when it dries up. With several moving cycles the per-depth alignment
	// matters and termination falls back to state repetition.
	singleMoving := len(movingBound)+len(movingFree) == 1
	var seenVals valueSet
	var seenPairs map[storage.Value]valueSet
	if singleMoving {
		if len(movingBound) == 1 {
			seenVals = valueSet{consts[movingBound[0]]: {}}
		} else {
			p := movingFree[0]
			seenPairs = make(map[storage.Value]valueSet, len(W[p]))
			for e, hs := range W[p] {
				cp := make(valueSet, len(hs))
				for h := range hs {
					cp[h] = struct{}{}
				}
				seenPairs[e] = cp
			}
		}
	}

	seenStates := make(map[string]bool)
	stateKey := func() string {
		var b strings.Builder
		for _, p := range movingBound {
			fmt.Fprintf(&b, "D%d=", p)
			b.WriteString(D[p].sortedKey())
			b.WriteByte('|')
		}
		for _, p := range movingFree {
			fmt.Fprintf(&b, "W%d=", p)
			b.WriteString(W[p].sortedKey())
			b.WriteByte('|')
		}
		return b.String()
	}
	if !singleMoving {
		seenStates[stateKey()] = true
	}

	parallel := se.Parallel
	if parallel {
		// Lazy index building is the only mutation concurrent readers could
		// race on; materialize everything first.
		se.db.BuildIndexes()
		se.exit.BuildIndexes()
	}

	nextBound := func(p int) valueSet {
		return se.comps[p].down(rels, D[p])
	}
	advanceKeys := func(p int, old pairRel, keys []storage.Value, out pairRel) {
		for _, e := range keys {
			mids := old[e]
			step := se.comps[p].up(rels, mids)
			acc := make(valueSet)
			for mid := range mids {
				for h := range step[mid] {
					acc[h] = struct{}{}
				}
			}
			if len(acc) > 0 {
				out[e] = acc
			}
		}
	}
	nextFree := func(p int) pairRel {
		old := W[p]
		keys := make([]storage.Value, 0, len(old))
		for e := range old {
			keys = append(keys, e)
		}
		// The up-chains of distinct exit values are independent; with many
		// of them, chunk the key space across the CPUs (the inner level of
		// the paper's "evaluated independently").
		chunks := runtime.NumCPU()
		if !parallel || len(keys) < 4*chunks {
			nw := make(pairRel, len(old))
			advanceKeys(p, old, keys, nw)
			return nw
		}
		partial := make([]pairRel, chunks)
		var wg sync.WaitGroup
		per := (len(keys) + chunks - 1) / chunks
		for c := 0; c < chunks; c++ {
			lo := c * per
			if lo >= len(keys) {
				break
			}
			hi := lo + per
			if hi > len(keys) {
				hi = len(keys)
			}
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				out := make(pairRel, hi-lo)
				advanceKeys(p, old, keys[lo:hi], out)
				partial[c] = out
			}(c, lo, hi)
		}
		wg.Wait()
		nw := make(pairRel, len(old))
		for _, part := range partial {
			for e, hs := range part {
				nw[e] = hs
			}
		}
		return nw
	}

	facts0, derived0 := 0, 0
	endRound := func() {
		sink.end(RoundStats{Round: st.Rounds, Derived: st.Derived - derived0, Attempted: st.Facts - facts0})
	}
	for {
		st.Rounds++
		sink.begin()
		facts0, derived0 = st.Facts, st.Derived
		// Advance every cycle one step, independently — concurrently when
		// Parallel is set. Each goroutine computes its own frontier; the
		// shared maps are committed serially afterwards.
		newD := make([]valueSet, len(movingBound))
		newW := make([]pairRel, len(movingFree))
		if parallel {
			var wg sync.WaitGroup
			for i, p := range movingBound {
				wg.Add(1)
				go func(i, p int) { defer wg.Done(); newD[i] = nextBound(p) }(i, p)
			}
			for i, p := range movingFree {
				wg.Add(1)
				go func(i, p int) { defer wg.Done(); newW[i] = nextFree(p) }(i, p)
			}
			wg.Wait()
		} else {
			for i, p := range movingBound {
				newD[i] = nextBound(p)
			}
			for i, p := range movingFree {
				newW[i] = nextFree(p)
			}
		}
		for i, p := range movingBound {
			D[p] = newD[i]
		}
		for i, p := range movingFree {
			W[p] = newW[i]
		}
		for _, p := range movingBound {
			if len(D[p]) == 0 {
				endRound()
				return answers, st, nil
			}
		}

		if singleMoving {
			// Restrict to the genuinely new frontier; stop when it dries up.
			if len(movingBound) == 1 {
				p := movingBound[0]
				delta := make(valueSet)
				for v := range D[p] {
					if _, ok := seenVals[v]; !ok {
						delta[v] = struct{}{}
						seenVals[v] = struct{}{}
					}
				}
				if len(delta) == 0 {
					endRound()
					return answers, st, nil
				}
				D[p] = delta
			} else {
				p := movingFree[0]
				delta := make(pairRel)
				for e, hs := range W[p] {
					for h := range hs {
						if _, ok := seenPairs[e][h]; ok {
							continue
						}
						if seenPairs[e] == nil {
							seenPairs[e] = make(valueSet)
						}
						seenPairs[e][h] = struct{}{}
						if delta[e] == nil {
							delta[e] = make(valueSet)
						}
						delta[e][h] = struct{}{}
					}
				}
				if len(delta) == 0 {
					endRound()
					return answers, st, nil
				}
				W[p] = delta
			}
		}

		// Combine with E at this depth.
		se.emitDepth(answers, &st, boundPos, freePos, consts, D, W)

		if !singleMoving {
			k := stateKey()
			if seenStates[k] {
				endRound()
				return answers, st, nil
			}
			seenStates[k] = true
		}
		endRound()
	}
}

// emitDepth joins the exit relation with the current per-cycle frontiers.
func (se *StableEval) emitDepth(answers *storage.Relation, st *Stats, boundPos, freePos []int, consts storage.Tuple, D map[int]valueSet, W map[int]pairRel) {
	// Drive the scan from the most selective bound frontier when possible.
	var candidates []int
	if len(boundPos) > 0 {
		best := boundPos[0]
		for _, p := range boundPos[1:] {
			if len(D[p]) < len(D[best]) {
				best = p
			}
		}
		for v := range D[best] {
			candidates = append(candidates, int(v))
		}
		sort.Ints(candidates)
		for _, vi := range candidates {
			for _, pos := range se.exit.LookupCol(best, storage.Value(vi)) {
				se.emitTuple(answers, st, se.exit.Tuples()[pos], boundPos, freePos, consts, D, W)
			}
		}
		return
	}
	se.exit.Each(func(t storage.Tuple) bool {
		se.emitTuple(answers, st, t, boundPos, freePos, consts, D, W)
		return true
	})
}

func (se *StableEval) emitTuple(answers *storage.Relation, st *Stats, t storage.Tuple, boundPos, freePos []int, consts storage.Tuple, D map[int]valueSet, W map[int]pairRel) {
	for _, p := range boundPos {
		if _, ok := D[p][t[p]]; !ok {
			return
		}
	}
	// Cross product of the up-chain images of the free positions.
	out := make(storage.Tuple, se.n)
	for _, p := range boundPos {
		out[p] = consts[p]
	}
	var rec func(fi int)
	rec = func(fi int) {
		if fi == len(freePos) {
			st.Facts++
			if answers.Insert(out) {
				st.Derived++
			}
			return
		}
		p := freePos[fi]
		if se.comps[p].conj == nil {
			// Identity chain: the exit value is the answer value.
			out[p] = t[p]
			rec(fi + 1)
			return
		}
		heads, ok := W[p][t[p]]
		if !ok {
			return
		}
		for h := range heads {
			out[p] = h
			rec(fi + 1)
		}
	}
	rec(0)
}
