package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ParallelOpts is the former name of the engine-wide Opts; kept as an alias
// so existing callers (and their composite literals) keep compiling.
//
// Deprecated: use Opts.
type ParallelOpts = Opts

// ParallelSemiNaive is SemiNaive with each round's delta fanned out across a
// worker pool: the round's work is split into (rule, delta-occurrence,
// partition) tasks, every task joins its slice of the delta against
// read-only snapshots of the full relations into a private buffer, and the
// buffers are merged into the head relations single-threaded before the
// deltas swap. Answers are identical to SemiNaive (the fixpoint is
// confluent and the merge order is deterministic); per-round metrics are
// recorded in Stats.Trace.
func ParallelSemiNaive(prog *ast.Program, db *storage.Database) (*storage.Database, Stats, error) {
	return ParallelSemiNaiveOpts(prog, db, ParallelOpts{})
}

// ParallelSemiNaiveOpts is ParallelSemiNaive with an explicit worker count
// and an optional per-round observer. An explicit Opts.Shards >= 2 switches
// to the sharded engine (shard.go) with exactly that many hash shards; the
// default keeps the contiguous-chunk fan-out of this engine.
func ParallelSemiNaiveOpts(prog *ast.Program, db *storage.Database, opts Opts) (*storage.Database, Stats, error) {
	if opts.Shards > 1 {
		return shardedSemiNaive(prog, db, opts, "", nil)
	}
	return parallelSemiNaive(prog, db, opts, "", nil)
}

// parallelSemiNaive is the engine core shared by the materializing and
// streaming entry points. When emit is non-nil, every tuple of streamPred is
// fed to it as soon as it exists — the pre-fixpoint contents right after the
// working database is prepared, then each fresh merge insert — in
// deterministic merge order. emit returning false stops the evaluation with
// errStreamStop (the consumer has all the answers it wants); the partially
// saturated database is returned so the caller can account for it, but it is
// NOT a fixpoint. Emitted tuples alias the head relation's arena and stay
// valid for the life of the returned database.
func parallelSemiNaive(prog *ast.Program, db *storage.Database, opts Opts, streamPred string, emit func(storage.Tuple) bool) (*storage.Database, Stats, error) {
	work, idb, err := prepare(prog, db)
	if err != nil {
		return nil, Stats{}, err
	}
	strata, err := strataOf(prog)
	if err != nil {
		return nil, Stats{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Materialize every column index up front: index construction is the
	// only mutation on the relations' read path, so after this the workers
	// may share the database freely (storage.Relation's concurrency
	// contract). Inserts during the single-threaded merges keep the
	// indexes current.
	work.BuildIndexes()
	fix := opts.parent().Child("fixpoint").SetStr("engine", "parallel")
	defer fix.End()
	var st Stats
	if emit != nil {
		// Facts present before any rule fires (EDB tuples under the query
		// predicate, or IDB facts loaded directly) stream first; the merge
		// hook below only sees fresh derivations.
		stopped := false
		if rel := work.Rel(streamPred); rel != nil {
			rel.Each(func(t storage.Tuple) bool {
				if !emit(t) {
					stopped = true
					return false
				}
				return true
			})
		}
		if stopped {
			flushDB(opts, &st, work, idb)
			return work, st, errStreamStop
		}
	}
	sink := newRoundSink(&st, opts, fix)
	round := 0
	opts = opts.withAutoBook(db.Syms, prog.Rules, db)
	for si, group := range strata {
		rules, err := compileRules(db.Syms, group, opts.book)
		if err != nil {
			return nil, st, err
		}
		local := make(map[string]bool)
		for _, r := range group {
			local[r.Head.Pred] = true
		}
		r0 := round
		if err := parallelFixpoint(work, rules, local, workers, si, &round, &sink, &st, opts, streamPred, emit); err != nil {
			if err == errStreamStop {
				flushDB(opts, &st, work, idb)
				return work, st, err
			}
			return nil, st, err
		}
		sink.stratumDone(round - r0)
	}
	fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
	flushDB(opts, &st, work, idb)
	return work, st, nil
}

// parTask is one unit of parallel work: evaluate one rule with one positive
// local body occurrence restricted to one partition of that predicate's
// delta (or, for the seed round, evaluate the whole rule once: seedIdx −1).
// head is the rule's head relation as frozen at round start; workers only
// call Contains on it (an allocation-free word-hash probe), to prefilter
// derivations that are already known so the single-threaded merge touches
// near-new tuples only.
type parTask struct {
	cr      *compiledRule
	seedIdx int
	chunk   []storage.Tuple
	head    *storage.Relation
	// span is the round span the task's join span attaches under; nil when
	// untraced. Workers emit concurrently — obs.Span serializes internally.
	span *obs.Span
	// shard is 1 + the hash shard the task's delta chunk belongs to when the
	// sharded engine built the task; 0 for unsharded tasks (the parallel
	// engine's contiguous chunks and both engines' seed rounds).
	shard int
}

// parResult is a task's private output buffer, merged single-threaded. The
// buffer relation comes from the fixpoint's pool and is returned to it
// right after the merge, so steady-state rounds reuse the same arenas and
// hash tables instead of reallocating them per task.
type parResult struct {
	out       *storage.Relation
	attempted int
	// visits counts the tuples the task's enumerations walked (see
	// Stats.Visited); accumulated task-locally, summed at the merge.
	visits int64
	busy   time.Duration
}

// relPool recycles task output relations across rounds. A pooled relation
// is Reset (arena blocks and membership table kept, contents dropped)
// before reuse, so after the first round task buffers allocate only when a
// task derives more than any previous task did.
type relPool struct{ p sync.Pool }

func (rp *relPool) get(arity int) *storage.Relation {
	if v := rp.p.Get(); v != nil {
		r := v.(*storage.Relation)
		r.Reset(arity)
		return r
	}
	return storage.NewRelation(arity)
}

func (rp *relPool) put(r *storage.Relation) {
	if r != nil {
		rp.p.Put(r)
	}
}

// workerScratch holds one worker goroutine's reusable binding and head
// projection buffers, sized up lazily to the widest rule it has run.
type workerScratch struct {
	binding []storage.Value
	buf     storage.Tuple
}

func (ws *workerScratch) bindingFor(n int) []storage.Value {
	if cap(ws.binding) < n {
		ws.binding = make([]storage.Value, n)
	}
	b := ws.binding[:n]
	for i := range b {
		b[i] = Unbound
	}
	return b
}

func (ws *workerScratch) bufFor(n int) storage.Tuple {
	if cap(ws.buf) < n {
		ws.buf = make(storage.Tuple, n)
	}
	return ws.buf[:n]
}

// parallelFixpoint saturates one rule group with delta evaluation, fanning
// each round's tasks across the worker pool and merging serially. The abort
// channel is polled once per round; a close surfaces as ErrCanceled. When
// emit is non-nil, fresh streamPred inserts are handed to it during the
// merge; emit returning false stops the fixpoint with errStreamStop.
func parallelFixpoint(work *storage.Database, rules []compiledRule, local map[string]bool, workers, stratum int, round *int, sink *roundSink, st *Stats, opts Opts, streamPred string, emit func(storage.Tuple) bool) error {
	full := DBRels(work)

	// Deltas are plain tuple slices, not relations: the head relations
	// already deduplicate (so a new tuple is appended exactly once, in
	// deterministic merge order), and the next round only partitions the
	// slice into seed chunks. The appended tuples alias the head
	// relation's arena (Insert copied them there; At returns the
	// arena-backed header), so the merge allocates nothing per tuple and
	// the task buffers are free to return to the pool immediately.
	pool := &relPool{}
	stopped := false
	merge := func(tasks []parTask, results []parResult, next map[string][]storage.Tuple) (added, attempted int) {
		for i, res := range results {
			attempted += res.attempted
			st.Visited += res.visits
			pred := tasks[i].cr.rule.Head.Pred
			head := work.Rel(pred)
			if !stopped {
				res.out.Each(func(t storage.Tuple) bool {
					if head.Insert(t) {
						added++
						if next != nil {
							next[pred] = append(next[pred], head.At(head.Len()-1))
						}
						if emit != nil && pred == streamPred && !emit(head.At(head.Len()-1)) {
							stopped = true
							return false
						}
					}
					return true
				})
			}
			// Buffers after a stop are dropped unmerged — the consumer is
			// gone, only the pooled capacity is worth keeping.
			pool.put(res.out)
			results[i].out = nil
		}
		return added, attempted
	}

	// Seed round: rules with no positive local literal run once in full,
	// one task per rule.
	hasSeed := false
	for i := range rules {
		cr := &rules[i]
		hasLocal := false
		for _, a := range cr.rule.Body {
			if !a.Neg && local[a.Pred] {
				hasLocal = true
				break
			}
		}
		if !hasLocal {
			hasSeed = true
			break
		}
	}
	if hasSeed {
		if opts.canceled() {
			return fmt.Errorf("parallel fixpoint: %w", ErrCanceled)
		}
		*round++
		st.Rounds++
		start := time.Now()
		sink.begin()
		var seedTasks []parTask
		var est int64
		for i := range rules {
			cr := &rules[i]
			hasLocal := false
			for _, a := range cr.rule.Body {
				if !a.Neg && local[a.Pred] {
					hasLocal = true
					break
				}
			}
			if !hasLocal {
				seedTasks = append(seedTasks, parTask{cr: cr, seedIdx: -1, head: work.Rel(cr.rule.Head.Pred), span: sink.span})
				if cr.ord != nil && cr.ord.full != nil {
					est += int64(cr.ord.fullCost)
				}
			}
		}
		results, busy, err := runTasks(seedTasks, workers, full, pool)
		if err != nil {
			return err
		}
		visited0 := st.Visited
		added, attempted := merge(seedTasks, results, nil)
		st.Facts += attempted
		st.Derived += added
		sink.end(RoundStats{
			Round: *round, Stratum: stratum, Tasks: len(seedTasks),
			Derived: added, Attempted: attempted, Workers: workers,
			Duration: time.Since(start), Busy: busy,
			Estimated: est, Visited: st.Visited - visited0,
		})
		if stopped {
			return errStreamStop
		}
	}

	// Initial delta: everything in the head relations after the seed round —
	// pre-existing facts plus the seed derivations just merged. The snapshot
	// stays valid while the heads grow (appends never touch the prefix).
	delta := make(map[string][]storage.Tuple)
	for pred := range local {
		delta[pred] = work.Rel(pred).Tuples()
	}

	for {
		if opts.canceled() {
			return fmt.Errorf("parallel fixpoint: %w", ErrCanceled)
		}
		*round++
		st.Rounds++
		start := time.Now()
		sink.begin()
		deltaSize := 0
		var tasks []parTask
		var est int64
		for i := range rules {
			cr := &rules[i]
			for bi, a := range cr.rule.Body {
				if a.Neg || !local[a.Pred] {
					continue
				}
				d := delta[a.Pred]
				if len(d) == 0 {
					continue
				}
				if _, perTuple := cr.seededOrder(bi); perTuple > 0 {
					est += int64(perTuple * float64(len(d)))
				}
				for _, chunk := range storage.PartitionTuples(d, workers*3) {
					tasks = append(tasks, parTask{cr: cr, seedIdx: bi, chunk: chunk, head: work.Rel(cr.rule.Head.Pred), span: sink.span})
				}
			}
		}
		for _, d := range delta {
			deltaSize += len(d)
		}
		next := make(map[string][]storage.Tuple)
		added, attempted := 0, 0
		var busy time.Duration
		visited0 := st.Visited
		if len(tasks) > 0 {
			results, b, err := runTasks(tasks, workers, full, pool)
			if err != nil {
				return err
			}
			busy = b
			added, attempted = merge(tasks, results, next)
		}
		st.Facts += attempted
		st.Derived += added
		sink.end(RoundStats{
			Round: *round, Stratum: stratum, Tasks: len(tasks), Delta: deltaSize,
			Derived: added, Attempted: attempted, Workers: workers,
			Duration: time.Since(start), Busy: busy,
			Estimated: est, Visited: st.Visited - visited0,
		})
		if stopped {
			return errStreamStop
		}
		if added == 0 {
			return nil
		}
		delta = next
	}
}

// runTasks fans the tasks out across the worker pool and collects one
// private result buffer per task (indexed by task, so no locking is needed
// beyond the WaitGroup). The first task error aborts the remaining work;
// panics inside workers are converted to errors so a misbehaving rule
// cannot kill unrelated goroutines. All workers are joined before return.
func runTasks(tasks []parTask, workers int, rels RelFunc, pool *relPool) ([]parResult, time.Duration, error) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]parResult, len(tasks))
	taskCh := make(chan int)
	errCh := make(chan error, 1)
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
		abortOnce.Do(func() { close(abort) })
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch workerScratch
			for {
				select {
				case <-abort:
					return
				case id, ok := <-taskCh:
					if !ok {
						return
					}
					if err := runTask(&results[id], tasks[id], rels, pool, &scratch); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
feed:
	for id := range tasks {
		select {
		case taskCh <- id:
		case <-abort:
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, 0, err
	default:
	}
	var busy time.Duration
	for i := range results {
		busy += results[i].busy
	}
	return results, busy, nil
}

// runTask evaluates one task into a pooled private buffer, reusing the
// worker's binding and projection scratch.
func runTask(res *parResult, task parTask, rels RelFunc, pool *relPool, scratch *workerScratch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("eval: parallel task for rule %v: %v", task.cr.rule, r)
		}
	}()
	start := time.Now()
	cr := task.cr
	// Workers attach join spans concurrently; obs.Span serializes through
	// the tracer. Guard the rule.String() so untraced runs stay
	// allocation-free.
	var js *obs.Span
	if task.span != nil {
		js = task.span.Child("join").SetStr("rule", cr.rule.String())
		if task.seedIdx >= 0 {
			js.SetInt("chunk", int64(len(task.chunk)))
		}
		if task.shard > 0 {
			js.SetInt("shard", int64(task.shard-1))
		}
	}
	out := pool.get(len(cr.slots))
	buf := scratch.bufFor(len(cr.slots))
	attempted := 0
	yield := func(b []storage.Value) bool {
		for i, s := range cr.slots {
			if s >= 0 {
				buf[i] = b[s]
			} else {
				buf[i] = cr.fixed[i]
			}
		}
		attempted++
		// Derivations already in the head (frozen this round; reads are
		// safe) cost one hash probe here instead of a buffer insert plus
		// a merge insert on the coordinator.
		if !task.head.Contains(buf) {
			out.Insert(buf)
		}
		return true
	}
	binding := scratch.bindingFor(cr.conj.NumVars())
	if task.seedIdx < 0 {
		cr.conj.EvalWith(rels, binding, cr.fullOrder(), &res.visits, yield)
	} else {
		ord, _ := cr.seededOrder(task.seedIdx)
		s := newSeederWith(cr.conj, rels, binding, ord, &res.visits, yield)
		for _, t := range task.chunk {
			s.seed(task.seedIdx, t)
		}
	}
	res.out = out
	res.attempted = attempted
	res.busy = time.Since(start)
	js.SetInt("attempted", int64(attempted)).SetInt("buffered", int64(out.Len())).SetInt("visited", res.visits).End()
	return nil
}
