package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// The frontier-BFS kernel for unit-rotational (transitive-closure-shaped)
// rules. A rule of the form
//
//	p(X, Y) :- q(X, Z), p(Z, Y).   (right-linear)
//	p(X, Y) :- p(X, Z), q(Z, Y).   (left-linear)
//
// computes p = ∪_k q^k ∘ E (respectively ∪_k E ∘ q^k) over the exit
// relation E. Instead of running generic conjunction joins round after
// round, the kernel walks the q edge index directly: queries with a bound
// argument become a breadth-first reachability sweep over a value frontier
// (never touching the unreachable part of the graph), and the all-free
// query becomes a semi-naive relational compose that joins only the
// previous round's delta tuples against the edge index.

// tcShape records the detected orientation of a transitive-closure rule.
type tcShape struct {
	edgePred string
	// rightLinear: the edge literal precedes the recursive literal
	// (p = ∪ q^k ∘ E); otherwise left-linear (p = ∪ E ∘ q^k).
	rightLinear bool
}

// detectTC matches the recursive rule against the two transitive-closure
// orientations: binary head, a body of exactly one positive binary edge
// literal over a different predicate, and the chain variable linking the
// edge to the recursive literal. Head and recursive arguments are distinct
// variables by ValidateRecursive; the chain variable must be fresh.
func detectTC(sys *ast.RecursiveSystem) (*tcShape, bool) {
	rule := sys.Recursive
	if sys.Arity() != 2 || len(rule.Body) != 2 || !rule.IsLinearRecursive() {
		return nil, false
	}
	recAtom, recIdx := rule.RecursiveAtom()
	if recAtom.Neg {
		return nil, false
	}
	edge := rule.Body[1-recIdx]
	if edge.Neg || edge.Pred == rule.Head.Pred || edge.Arity() != 2 {
		return nil, false
	}
	for _, t := range edge.Args {
		if !t.IsVar() {
			return nil, false
		}
	}
	hx, hy := rule.Head.Args[0].Name, rule.Head.Args[1].Name
	// Right-linear: q(hx, Z), p(Z, hy) with Z fresh.
	if z := edge.Args[1].Name; edge.Args[0].Name == hx &&
		recAtom.Args[0].Name == z && recAtom.Args[1].Name == hy &&
		z != hx && z != hy {
		return &tcShape{edgePred: edge.Pred, rightLinear: true}, true
	}
	// Left-linear: p(hx, Z), q(Z, hy) with Z fresh.
	if z := recAtom.Args[1].Name; recAtom.Args[0].Name == hx &&
		edge.Args[0].Name == z && edge.Args[1].Name == hy &&
		z != hx && z != hy {
		return &tcShape{edgePred: edge.Pred, rightLinear: false}, true
	}
	return nil, false
}

// TCEval answers the query with the frontier kernel. The exit relation is
// materialized from the system's exit rules; the edge relation is read from
// the database (an absent edge relation leaves only the k = 0 stratum).
func TCEval(sys *ast.RecursiveSystem, shape *tcShape, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return TCEvalOpts(sys, shape, q, db, Opts{})
}

// TCEvalOpts is TCEval with instrumentation: each BFS level (or compose
// round) becomes one round under a "fixpoint" span tagged engine=tc-frontier.
func TCEvalOpts(sys *ast.RecursiveSystem, shape *tcShape, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	rel, _, st, err := tcEvalAux(sys, shape, q, db, opts)
	return rel, st, err
}

// tcEvalAux is TCEvalOpts additionally returning the kernel's maintenance
// state: the materialized exit relation plus, for bound queries, the BFS
// visited set. A nil aux (the early-return paths for constants the symbol
// table has never seen) tells the maintenance pass to recompute instead.
func tcEvalAux(sys *ast.RecursiveSystem, shape *tcShape, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, *tcAux, Stats, error) {
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != 2 {
		return nil, nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/2", q, sys.Pred())
	}
	exitRel, err := MaterializeExit(sys, db)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	edges := db.Rel(shape.edgePred)
	if edges != nil && edges.Arity() != 2 {
		return nil, nil, Stats{}, fmt.Errorf("eval: edge relation %s has arity %d, want 2", shape.edgePred, edges.Arity())
	}
	answers := storage.NewRelation(2)
	aux := &tcAux{exit: exitRel}
	var st Stats
	fix := opts.parent().Child("fixpoint").SetStr("engine", "tc-frontier")
	defer fix.End()
	sink := newRoundSink(&st, opts, fix)
	defer func() {
		fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
		sink.stratumDone(st.Rounds)
		flushRels(opts, &st, answers, exitRel)
	}()

	var c0, c1 storage.Value
	b0, b1 := !q.Atom.Args[0].IsVar(), !q.Atom.Args[1].IsVar()
	if b0 {
		v, ok := db.Syms.Lookup(q.Atom.Args[0].Name)
		if !ok {
			return answers, nil, st, nil
		}
		c0 = v
	}
	if b1 {
		v, ok := db.Syms.Lookup(q.Atom.Args[1].Name)
		if !ok {
			return answers, nil, st, nil
		}
		c1 = v
	}

	buf := make(storage.Tuple, 2)
	if shape.rightLinear {
		// p(x, y) ⟺ ∃z: x →q* z ∧ E(z, y).
		switch {
		case b0:
			// Forward BFS from c0 over q, then join the closure with E.
			closure, err := bfsClosure(edges, 0, 1, []storage.Value{c0}, &st, &sink, opts)
			if err != nil {
				return nil, nil, st, err
			}
			aux.visited = closure
			closure.Each(func(z storage.Value) bool {
				exitRel.EachCol(0, z, func(t storage.Tuple) bool {
					st.Facts++
					buf[0], buf[1] = c0, t[1]
					if (!b1 || t[1] == c1) && answers.Insert(buf) {
						st.Derived++
					}
					return true
				})
				return true
			})
		case b1:
			// Seeds {z : E(z, c1)}, then reverse BFS over q: every x that
			// reaches a seed is an answer.
			var seeds []storage.Value
			exitRel.EachCol(1, c1, func(t storage.Tuple) bool {
				seeds = append(seeds, t[0])
				return true
			})
			visited, err := bfsClosure(edges, 1, 0, seeds, &st, &sink, opts)
			if err != nil {
				return nil, nil, st, err
			}
			aux.visited = visited
			aux.visited.Each(func(x storage.Value) bool {
				st.Facts++
				buf[0], buf[1] = x, c1
				if answers.Insert(buf) {
					st.Derived++
				}
				return true
			})
		default:
			// All free: semi-naive compose P ← P ∪ q ∘ ΔP seeded with E,
			// hash-sharded by the join endpoint when the edge relation is
			// large enough (chooseShardsTC).
			if shards := chooseShardsTC(opts, edges); shards > 1 {
				st.Shards = shards
				if err := shardedCompose(edges, exitRel, true, answers, shards, &st, &sink, opts); err != nil {
					return nil, nil, st, err
				}
			} else if err := composeClosure(edges, exitRel, true, answers, &st, &sink, opts); err != nil {
				return nil, nil, st, err
			}
		}
	} else {
		// p(x, y) ⟺ ∃z: E(x, z) ∧ z →q* y.
		switch {
		case b0:
			var seeds []storage.Value
			exitRel.EachCol(0, c0, func(t storage.Tuple) bool {
				seeds = append(seeds, t[1])
				return true
			})
			visited, err := bfsClosure(edges, 0, 1, seeds, &st, &sink, opts)
			if err != nil {
				return nil, nil, st, err
			}
			aux.visited = visited
			aux.visited.Each(func(y storage.Value) bool {
				st.Facts++
				buf[0], buf[1] = c0, y
				if (!b1 || y == c1) && answers.Insert(buf) {
					st.Derived++
				}
				return true
			})
		case b1:
			// Reverse BFS from c1 over q, then join the closure with E.
			closure, err := bfsClosure(edges, 1, 0, []storage.Value{c1}, &st, &sink, opts)
			if err != nil {
				return nil, nil, st, err
			}
			aux.visited = closure
			closure.Each(func(z storage.Value) bool {
				exitRel.EachCol(1, z, func(t storage.Tuple) bool {
					st.Facts++
					buf[0], buf[1] = t[0], c1
					if answers.Insert(buf) {
						st.Derived++
					}
					return true
				})
				return true
			})
		default:
			// All free: semi-naive compose P ← P ∪ ΔP ∘ q seeded with E,
			// hash-sharded by the join endpoint when the edge relation is
			// large enough (chooseShardsTC).
			if shards := chooseShardsTC(opts, edges); shards > 1 {
				st.Shards = shards
				if err := shardedCompose(edges, exitRel, false, answers, shards, &st, &sink, opts); err != nil {
					return nil, nil, st, err
				}
			} else if err := composeClosure(edges, exitRel, false, answers, &st, &sink, opts); err != nil {
				return nil, nil, st, err
			}
		}
	}
	return answers, aux, st, nil
}

// bfsClosure returns the set of values reachable from the seeds (seeds
// included) by repeatedly following edge tuples from column `from` to
// column `to`. Each BFS level counts as one round; each edge traversal
// counts as one attempted fact. The visited set is a word-hashed
// storage.ValueSet, so the sweep allocates only for set growth and the
// frontier slices.
func bfsClosure(edges *storage.Relation, from, to int, seeds []storage.Value, st *Stats, sink *roundSink, opts Opts) (*storage.ValueSet, error) {
	visited := storage.NewValueSet(len(seeds))
	frontier := make([]storage.Value, 0, len(seeds))
	for _, v := range seeds {
		if visited.Add(v) {
			frontier = append(frontier, v)
		}
	}
	if edges == nil {
		if len(frontier) > 0 {
			st.Rounds++
			sink.begin()
			sink.end(RoundStats{Round: st.Rounds, Delta: len(frontier)})
		}
		return visited, nil
	}
	for len(frontier) > 0 {
		if opts.canceled() {
			return nil, fmt.Errorf("tc-frontier bfs: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		facts0 := st.Facts
		var next []storage.Value
		for _, v := range frontier {
			edges.EachCol(from, v, func(t storage.Tuple) bool {
				st.Facts++
				if w := t[to]; visited.Add(w) {
					next = append(next, w)
				}
				return true
			})
		}
		sink.end(RoundStats{Round: st.Rounds, Delta: len(frontier), Derived: len(next), Attempted: st.Facts - facts0})
		frontier = next
	}
	return visited, nil
}

// composeClosure computes the full closure relation for the all-free query:
// answers start as the exit relation and each round composes the previous
// delta with the edge relation — q ∘ Δ for the right-linear orientation
// (new (x, y) from q(x, z), Δ(z, y)), Δ ∘ q for the left-linear one. Delta
// entries alias the answers relation's arena (At after a successful
// Insert), so no tuple is ever cloned.
func composeClosure(edges, exitRel *storage.Relation, rightLinear bool, answers *storage.Relation, st *Stats, sink *roundSink, opts Opts) error {
	sink.begin()
	delta := make([]storage.Tuple, 0, exitRel.Len())
	exitRel.Each(func(t storage.Tuple) bool {
		st.Facts++
		if answers.Insert(t) {
			st.Derived++
			delta = append(delta, answers.At(answers.Len()-1))
		}
		return true
	})
	if len(delta) > 0 {
		st.Rounds++
	}
	sink.end(RoundStats{Round: st.Rounds, Derived: len(delta), Attempted: exitRel.Len()})
	if edges == nil {
		return nil
	}
	nt := make(storage.Tuple, 2)
	for len(delta) > 0 {
		if opts.canceled() {
			return fmt.Errorf("tc-frontier compose: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		facts0, derived0 := st.Facts, st.Derived
		var next []storage.Tuple
		for _, d := range delta {
			if rightLinear {
				edges.EachCol(1, d[0], func(e storage.Tuple) bool {
					st.Facts++
					nt[0], nt[1] = e[0], d[1]
					if answers.Insert(nt) {
						st.Derived++
						next = append(next, answers.At(answers.Len()-1))
					}
					return true
				})
			} else {
				edges.EachCol(0, d[1], func(e storage.Tuple) bool {
					st.Facts++
					nt[0], nt[1] = d[0], e[1]
					if answers.Insert(nt) {
						st.Derived++
						next = append(next, answers.At(answers.Len()-1))
					}
					return true
				})
			}
		}
		sink.end(RoundStats{Round: st.Rounds, Delta: len(delta), Derived: st.Derived - derived0, Attempted: st.Facts - facts0})
		delta = next
	}
	return nil
}
