package eval

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// The generic compiled expansion evaluator. It is the uniform realization of
// the paper's query-evaluation principle (§1): push the query's selections
// into each expansion, join where possible, and fall back to retrieving the
// exit relation and combining by Cartesian product or existence checking.
// Operationally it enumerates "resolution states": at expansion depth k a
// state records which answer positions are already resolved and how the
// antecedent occurrence of the recursive predicate is instantiated. States
// are deduplicated, which both terminates the iteration (the state space is
// finite) and realizes the paper's observation that evaluation plans repeat
// with a fixed period.

// slotKind describes one frontier position of a state.
type slotKind uint8

const (
	// slotBound: the position carries a concrete value.
	slotBound slotKind = iota
	// slotLinked: the position is the (still open) answer position Link;
	// a value met here (by the next expansion or the exit join) resolves
	// that answer position.
	slotLinked
	// slotFree: the position is existential — its value does not influence
	// the answer tuple.
	slotFree
)

// frontierSlot is one position of the recursive literal in a state.
type frontierSlot struct {
	kind slotKind
	val  storage.Value // for slotBound
	link int           // for slotLinked
}

// expState is a resolution state: the partially resolved answer tuple
// (Unbound = open) plus the instantiation of the recursive literal.
type expState struct {
	ans      storage.Tuple
	frontier []frontierSlot
}

func (s expState) key() string {
	b := make([]byte, 0, 4*len(s.ans)+6*len(s.frontier))
	var tmp [4]byte
	for _, v := range s.ans {
		binary.BigEndian.PutUint32(tmp[:], uint32(v))
		b = append(b, tmp[:]...)
	}
	for _, f := range s.frontier {
		b = append(b, byte(f.kind))
		switch f.kind {
		case slotBound:
			binary.BigEndian.PutUint32(tmp[:], uint32(f.val))
			b = append(b, tmp[:]...)
		case slotLinked:
			b = append(b, byte(f.link))
		}
	}
	return string(b)
}

// MaterializeExit evaluates the system's exit rules over the database into a
// single relation of the recursive predicate's arity — the paper's exit
// relation E.
func MaterializeExit(sys *ast.RecursiveSystem, db *storage.Database) (*storage.Relation, error) {
	out := storage.NewRelation(sys.Arity())
	rels := DBRels(db)
	for _, exit := range sys.Exits {
		c := CompileConj(db.Syms, exit.Body)
		slots, fixed, err := HeadSlots(c, db.Syms, exit.Head)
		if err != nil {
			return nil, fmt.Errorf("exit rule %v: %w", exit, err)
		}
		c.EvalProject(rels, c.NewBinding(), slots, fixed, out)
	}
	return out, nil
}

// StateEval answers the query over the database with the generic compiled
// expansion strategy. It works for every class of the paper's taxonomy and
// terminates on all inputs (finite state space); class-specific evaluators
// beat it where the paper's analysis applies.
func StateEval(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return StateEvalOpts(sys, q, db, Opts{})
}

// StateEvalOpts is StateEval with instrumentation: each worklist sweep (one
// expansion depth) becomes one round under a "fixpoint" span tagged
// engine=state.
func StateEvalOpts(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	n := sys.Arity()
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != n {
		return nil, Stats{}, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, sys.Pred(), n)
	}
	exitRel, err := MaterializeExit(sys, db)
	if err != nil {
		return nil, Stats{}, err
	}
	rule := sys.Recursive
	recAtom, _ := rule.RecursiveAtom()
	conj := CompileConj(db.Syms, rule.NonRecursiveAtoms())

	// Head variable slots in the conjunction (−1 when the head variable
	// does not occur in any non-recursive literal).
	headSlot := make([]int, n)
	for i, t := range rule.Head.Args {
		headSlot[i] = conj.VarID(t.Name)
	}
	// Recursive literal variable slots (−1 likewise). The paper's
	// restrictions make these variables pairwise distinct.
	recSlot := make([]int, n)
	recIsHead := make([]int, n) // rec arg == head arg at position -> head pos, else -1
	for i, t := range recAtom.Args {
		recSlot[i] = conj.VarID(t.Name)
		recIsHead[i] = -1
		for j, h := range rule.Head.Args {
			if h.Name == t.Name {
				recIsHead[i] = j
				break
			}
		}
	}

	answers := storage.NewRelation(n)
	var st Stats
	fix := opts.parent().Child("fixpoint").SetStr("engine", "state")
	defer fix.End()
	sink := newRoundSink(&st, opts, fix)
	defer func() {
		fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
		sink.stratumDone(st.Rounds)
		flushRels(opts, &st, answers, exitRel)
	}()

	// Initial state from the query.
	init := expState{ans: make(storage.Tuple, n), frontier: make([]frontierSlot, n)}
	for i, t := range q.Atom.Args {
		if t.IsVar() {
			init.ans[i] = Unbound
			init.frontier[i] = frontierSlot{kind: slotLinked, link: i}
		} else {
			v, ok := db.Syms.Lookup(t.Name)
			if !ok {
				// Constant absent from the database: it can never be
				// produced, so the answer set is empty.
				return answers, st, nil
			}
			init.ans[i] = v
			init.frontier[i] = frontierSlot{kind: slotBound, val: v}
		}
	}

	seen := map[string]bool{init.key(): true}
	worklist := []expState{init}
	emit := func(s expState) {
		// Join the state's frontier with the exit relation.
		bound := make([]bool, n)
		vals := make(storage.Tuple, n)
		for i, f := range s.frontier {
			if f.kind == slotBound {
				bound[i] = true
				vals[i] = f.val
			}
		}
		buf := make(storage.Tuple, n)
		exitRel.EachMatch(bound, vals, func(t storage.Tuple) bool {
			copy(buf, s.ans)
			ok := true
			for i, f := range s.frontier {
				if f.kind == slotLinked {
					if buf[f.link] == Unbound {
						buf[f.link] = t[i]
					} else if buf[f.link] != t[i] {
						ok = false
						break
					}
				}
			}
			if ok {
				complete := true
				for _, v := range buf {
					if v == Unbound {
						complete = false
						break
					}
				}
				st.Facts++
				if complete && answers.Insert(buf) {
					st.Derived++
				}
			}
			return true
		})
	}
	emit(init)

	rels := DBRels(db)
	for len(worklist) > 0 {
		st.Rounds++
		sink.begin()
		facts0, derived0 := st.Facts, st.Derived
		var next []expState
		for _, s := range worklist {
			// Instantiate the rule copy: head variable i takes the state's
			// frontier slot i.
			binding := conj.NewBinding()
			symOf := make([]int, conj.NumVars()) // conj slot -> answer pos (or -1)
			for i := range symOf {
				symOf[i] = -1
			}
			feasible := true
			for i := 0; i < n; i++ {
				f := s.frontier[i]
				hs := headSlot[i]
				switch f.kind {
				case slotBound:
					if hs >= 0 {
						if binding[hs] != Unbound && binding[hs] != f.val {
							feasible = false
						}
						binding[hs] = f.val
					}
				case slotLinked:
					if hs >= 0 {
						symOf[hs] = f.link
					}
				}
			}
			if !feasible {
				continue
			}
			conj.Eval(rels, binding, func(b []storage.Value) bool {
				ns := expState{ans: s.ans.Clone(), frontier: make([]frontierSlot, n)}
				ok := true
				// Resolve answer positions whose symbolic variables got bound.
				for slot, link := range symOf {
					if link < 0 {
						continue
					}
					v := b[slot]
					if v == Unbound {
						continue
					}
					if ns.ans[link] == Unbound {
						ns.ans[link] = v
					} else if ns.ans[link] != v {
						ok = false
						break
					}
				}
				if !ok {
					return true
				}
				// Build the new frontier from the recursive literal.
				for i := 0; i < n; i++ {
					rs := recSlot[i]
					var v storage.Value = Unbound
					if rs >= 0 {
						v = b[rs]
					}
					switch {
					case v != Unbound:
						ns.frontier[i] = frontierSlot{kind: slotBound, val: v}
					case recIsHead[i] >= 0 && s.frontier[recIsHead[i]].kind == slotLinked:
						// The head variable flows through unchanged and is
						// still symbolic: the link survives.
						ns.frontier[i] = frontierSlot{kind: slotLinked, link: s.frontier[recIsHead[i]].link}
					case recIsHead[i] >= 0 && s.frontier[recIsHead[i]].kind == slotBound:
						ns.frontier[i] = frontierSlot{kind: slotBound, val: s.frontier[recIsHead[i]].val}
					default:
						ns.frontier[i] = frontierSlot{kind: slotFree}
					}
				}
				k := ns.key()
				if !seen[k] {
					seen[k] = true
					emit(ns)
					next = append(next, ns)
				}
				return true
			})
		}
		sink.end(RoundStats{
			Round: st.Rounds, Delta: len(worklist),
			Derived: st.Derived - derived0, Attempted: st.Facts - facts0,
		})
		worklist = next
	}
	return answers, st, nil
}
