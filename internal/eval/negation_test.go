package eval

import (
	"errors"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/storage"
)

func parseProg(t *testing.T, src string) (*ast.Program, []ast.Query) {
	t.Helper()
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog, queries
}

// TestStratifiedUnreachable: the classic two-strata program — node pairs
// not connected by the transitive closure.
func TestStratifiedUnreachable(t *testing.T) {
	prog, _ := parseProg(t, `
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
		unreach(X, Y) :- node(X), node(Y), not reach(X, Y).
	`)
	db := storage.NewDatabase()
	storage.GenChain(db, "edge", 4) // n0 -> n1 -> n2 -> n3
	for i := 0; i < 4; i++ {
		db.Insert("node", []string{"n0", "n1", "n2", "n3"}[i])
	}
	for _, engine := range []func(*ast.Program, *storage.Database) (*storage.Database, Stats, error){Naive, SemiNaive} {
		out, _, err := engine(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Rel("reach").Len(); got != 6 {
			t.Errorf("reach = %d, want 6", got)
		}
		// 16 pairs total, 6 reachable -> 10 unreachable.
		if got := out.Rel("unreach").Len(); got != 10 {
			t.Errorf("unreach = %d, want 10", got)
		}
	}
}

// TestStratifiedThreeLevels: negation stacked over negation.
func TestStratifiedThreeLevels(t *testing.T) {
	prog, _ := parseProg(t, `
		a(X) :- base(X).
		b(X) :- univ(X), not a(X).
		c(X) :- univ(X), not b(X).
	`)
	db := storage.NewDatabase()
	db.Insert("base", "x")
	db.Insert("univ", "x")
	db.Insert("univ", "y")
	out, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	// a = {x}; b = {y}; c = {x}.
	if out.Rel("a").Len() != 1 || out.Rel("b").Len() != 1 || out.Rel("c").Len() != 1 {
		t.Errorf("a=%d b=%d c=%d, want 1,1,1",
			out.Rel("a").Len(), out.Rel("b").Len(), out.Rel("c").Len())
	}
	vx, _ := db.Syms.Lookup("x")
	if !out.Rel("c").Contains(storage.Tuple{vx}) {
		t.Error("c(x) missing")
	}
}

// TestNonStratifiableRejected: the win-move game recurses through negation.
func TestNonStratifiableRejected(t *testing.T) {
	prog, _ := parseProg(t, `
		win(X) :- move(X, Y), not win(Y).
	`)
	db := storage.NewDatabase()
	db.Insert("move", "a", "b")
	for _, engine := range []func(*ast.Program, *storage.Database) (*storage.Database, Stats, error){Naive, SemiNaive} {
		_, _, err := engine(prog, db)
		if !errors.Is(err, ast.ErrNotStratifiable) {
			t.Errorf("got %v, want ErrNotStratifiable", err)
		}
	}
}

// TestUnsafeNegationRejected: a negated variable with no positive binding.
func TestUnsafeNegationRejected(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X) :- q(X), not r(X, Y).
	`)
	db := storage.NewDatabase()
	db.Insert("q", "a")
	db.Ensure("r", 2)
	_, _, err := Naive(prog, db)
	if !errors.Is(err, ast.ErrUnsafeNegation) {
		t.Errorf("got %v, want ErrUnsafeNegation", err)
	}
}

// TestNegationAgainstEmptyRelation: a negated literal over an absent
// relation is vacuously true.
func TestNegationAgainstEmptyRelation(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X) :- q(X), not missing(X).
	`)
	db := storage.NewDatabase()
	db.Insert("q", "a")
	out, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel("p").Len() != 1 {
		t.Errorf("p = %d, want 1", out.Rel("p").Len())
	}
}

// TestNegationWithConstants: constants inside negated literals.
func TestNegationWithConstants(t *testing.T) {
	prog, _ := parseProg(t, `
		p(X) :- q(X), not r(X, blocked).
	`)
	db := storage.NewDatabase()
	db.Insert("q", "a")
	db.Insert("q", "b")
	db.Insert("r", "a", "blocked")
	db.Insert("r", "b", "fine")
	out, _, err := Naive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	vb, _ := db.Syms.Lookup("b")
	if out.Rel("p").Len() != 1 || !out.Rel("p").Contains(storage.Tuple{vb}) {
		t.Errorf("p = %v, want {b}", out.Rel("p").Len())
	}
}

// TestNaiveSemiNaiveAgreeWithNegation: both engines agree on a mixed
// program with recursion below the negation.
func TestNaiveSemiNaiveAgreeWithNegation(t *testing.T) {
	prog, _ := parseProg(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		src(X) :- e(X, Y).
		sink(Y) :- e(X, Y).
		inner(X) :- src(X), sink(X).
		boundary(X) :- src(X), not sink(X).
		boundary(X) :- sink(X), not src(X).
		far(X, Y) :- tc(X, Y), not e(X, Y).
	`)
	db := storage.NewDatabase()
	storage.GenRandomGraph(db, "e", 12, 20, 4)
	a, _, err := Naive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SemiNaive(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"tc", "src", "sink", "inner", "boundary", "far"} {
		if !a.Rel(pred).Equal(b.Rel(pred)) {
			t.Errorf("%s differs between naive and semi-naive", pred)
		}
	}
	// far ⊂ tc and disjoint from e.
	a.Rel("far").Each(func(tp storage.Tuple) bool {
		if !a.Rel("tc").Contains(tp) || a.Rel("e").Contains(tp) {
			t.Errorf("far tuple %v violates definition", tp)
		}
		return true
	})
}

// TestRecursiveSystemsRejectNegation: the paper's fragment stays pure
// positive — negated literals cannot enter a recursive system.
func TestRecursiveSystemsRejectNegation(t *testing.T) {
	rec, err := parser.ParseRule("p(X, Y) :- a(X, Z), not b(Z), p(Z, Y).")
	if err != nil {
		t.Fatal(err)
	}
	if err := ast.ValidateRecursive(rec); !errors.Is(err, ast.ErrNegationInFragment) {
		t.Errorf("got %v, want ErrNegationInFragment", err)
	}
	exit, err := parser.ParseRule("p(X, Y) :- e(X, Y), not blocked(X).")
	if err != nil {
		t.Fatal(err)
	}
	if err := ast.ValidateExit(exit, "p", 2); !errors.Is(err, ast.ErrNegationInFragment) {
		t.Errorf("exit: got %v, want ErrNegationInFragment", err)
	}
}
