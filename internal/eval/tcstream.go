package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Streaming variant of the TC-frontier kernel. The materializing kernel
// (tc.go) always computes the query's whole answer set; this one emits each
// answer the moment its BFS level derives it and — the goal-directed win —
// stops the sweep as soon as the answer set is provably complete:
//
//   - tc(a, b)? (both bound) walks outward from a and returns at the FIRST
//     frontier value whose exit tuple reaches b, never finishing the
//     closure;
//   - tc(a, X)? under a limit stops after the limit's worth of exit joins;
//   - the all-free query streams the semi-naive compose rounds as they
//     complete.
//
// Emitted tuples are freshly allocated pairs (bound cases) or headers
// aliasing the answers arena (free case), so they outlive the kernel's
// scratch state.

// tcStream pushes the query's answers into emit. It returns errStreamStop
// when emit declined a tuple or a bound-bound goal was answered early;
// callers treat that as a clean early end.
func tcStream(sys *ast.RecursiveSystem, shape *tcShape, q ast.Query, db *storage.Database, opts Opts, emit func(storage.Tuple) bool) (Stats, error) {
	var st Stats
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != 2 {
		return st, fmt.Errorf("eval: query %v does not match predicate %s/2", q, sys.Pred())
	}
	exitRel, err := MaterializeExit(sys, db)
	if err != nil {
		return st, err
	}
	edges := db.Rel(shape.edgePred)
	if edges != nil && edges.Arity() != 2 {
		return st, fmt.Errorf("eval: edge relation %s has arity %d, want 2", shape.edgePred, edges.Arity())
	}
	fix := opts.parent().Child("fixpoint").SetStr("engine", "tc-frontier").SetStr("mode", "stream")
	defer fix.End()
	sink := newRoundSink(&st, opts, fix)
	// The all-free cases materialize a dedup relation; its write-path stats
	// flush with the exit relation's in the single deferred flush.
	var answers *storage.Relation
	defer func() {
		fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
		sink.stratumDone(st.Rounds)
		flushRels(opts, &st, exitRel, answers)
	}()

	var c0, c1 storage.Value
	b0, b1 := !q.Atom.Args[0].IsVar(), !q.Atom.Args[1].IsVar()
	if b0 {
		v, ok := db.Syms.Lookup(q.Atom.Args[0].Name)
		if !ok {
			return st, nil
		}
		c0 = v
	}
	if b1 {
		v, ok := db.Syms.Lookup(q.Atom.Args[1].Name)
		if !ok {
			return st, nil
		}
		c1 = v
	}

	if shape.rightLinear {
		// p(x, y) ⟺ ∃z: x →q* z ∧ E(z, y).
		switch {
		case b0 && b1:
			// Goal-directed point query: walk forward from c0, probing each
			// newly reached z for the single exit tuple E(z, c1). The first
			// hit IS the complete answer set — stop the BFS right there.
			probe := storage.Tuple{0, c1}
			found := false
			err := streamBFS(edges, 0, 1, []storage.Value{c0}, &st, &sink, opts, func(z storage.Value) bool {
				st.Facts++
				probe[0] = z
				if exitRel.Contains(probe) {
					found = true
					return false
				}
				return true
			})
			if err != nil && err != errStreamStop {
				return st, err
			}
			if found {
				st.Derived++
				if !emit(storage.Tuple{c0, c1}) {
					return st, errStreamStop
				}
			}
			return st, errStreamStop
		case b0:
			// Forward BFS from c0; each new z joins with E(z, y) and every
			// fresh y streams out immediately.
			ys := storage.NewValueSet(0)
			return st, streamBFS(edges, 0, 1, []storage.Value{c0}, &st, &sink, opts, func(z storage.Value) bool {
				ok := true
				exitRel.EachCol(0, z, func(t storage.Tuple) bool {
					st.Facts++
					if ys.Add(t[1]) {
						st.Derived++
						if !emit(storage.Tuple{c0, t[1]}) {
							ok = false
							return false
						}
					}
					return true
				})
				return ok
			})
		case b1:
			// Seeds {z : E(z, c1)}; every x reaching a seed is an answer and
			// streams out the moment the reverse BFS visits it.
			var seeds []storage.Value
			exitRel.EachCol(1, c1, func(t storage.Tuple) bool {
				seeds = append(seeds, t[0])
				return true
			})
			return st, streamBFS(edges, 1, 0, seeds, &st, &sink, opts, func(x storage.Value) bool {
				st.Facts++
				st.Derived++
				return emit(storage.Tuple{x, c1})
			})
		default:
			answers = storage.NewRelation(2)
			return st, composeStream(edges, exitRel, true, answers, &st, &sink, opts, emit)
		}
	}
	// p(x, y) ⟺ ∃z: E(x, z) ∧ z →q* y.
	switch {
	case b0 && b1:
		// Walk forward from the exit successors of c0 until c1 is reached.
		var seeds []storage.Value
		exitRel.EachCol(0, c0, func(t storage.Tuple) bool {
			seeds = append(seeds, t[1])
			return true
		})
		found := false
		err := streamBFS(edges, 0, 1, seeds, &st, &sink, opts, func(y storage.Value) bool {
			st.Facts++
			if y == c1 {
				found = true
				return false
			}
			return true
		})
		if err != nil && err != errStreamStop {
			return st, err
		}
		if found {
			st.Derived++
			if !emit(storage.Tuple{c0, c1}) {
				return st, errStreamStop
			}
		}
		return st, errStreamStop
	case b0:
		var seeds []storage.Value
		exitRel.EachCol(0, c0, func(t storage.Tuple) bool {
			seeds = append(seeds, t[1])
			return true
		})
		return st, streamBFS(edges, 0, 1, seeds, &st, &sink, opts, func(y storage.Value) bool {
			st.Facts++
			st.Derived++
			return emit(storage.Tuple{c0, y})
		})
	case b1:
		// Reverse BFS from c1; each new z joins with E(x, z) and every fresh
		// x streams out.
		xs := storage.NewValueSet(0)
		return st, streamBFS(edges, 1, 0, []storage.Value{c1}, &st, &sink, opts, func(z storage.Value) bool {
			ok := true
			exitRel.EachCol(1, z, func(t storage.Tuple) bool {
				st.Facts++
				if xs.Add(t[0]) {
					st.Derived++
					if !emit(storage.Tuple{t[0], c1}) {
						ok = false
						return false
					}
				}
				return true
			})
			return ok
		})
	default:
		answers = storage.NewRelation(2)
		return st, composeStream(edges, exitRel, false, answers, &st, &sink, opts, emit)
	}
}

// streamBFS is bfsClosure with a visit callback: every value entering the
// visited set (seeds included) is handed to visit before its edges are
// expanded. visit returning false ends the sweep with errStreamStop — the
// goal-directed early exit. The abort channel is polled per level.
func streamBFS(edges *storage.Relation, from, to int, seeds []storage.Value, st *Stats, sink *roundSink, opts Opts, visit func(storage.Value) bool) error {
	visited := storage.NewValueSet(len(seeds))
	frontier := make([]storage.Value, 0, len(seeds))
	for _, v := range seeds {
		if visited.Add(v) {
			if !visit(v) {
				return errStreamStop
			}
			frontier = append(frontier, v)
		}
	}
	if edges == nil {
		if len(frontier) > 0 {
			st.Rounds++
			sink.begin()
			sink.end(RoundStats{Round: st.Rounds, Delta: len(frontier)})
		}
		return nil
	}
	for len(frontier) > 0 {
		if opts.canceled() {
			return fmt.Errorf("tc-frontier stream: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		facts0 := st.Facts
		stopped := false
		var next []storage.Value
		for _, v := range frontier {
			edges.EachCol(from, v, func(t storage.Tuple) bool {
				st.Facts++
				if w := t[to]; visited.Add(w) {
					if !visit(w) {
						stopped = true
						return false
					}
					next = append(next, w)
				}
				return true
			})
			if stopped {
				break
			}
		}
		sink.end(RoundStats{Round: st.Rounds, Delta: len(frontier), Derived: len(next), Attempted: st.Facts - facts0})
		if stopped {
			return errStreamStop
		}
		frontier = next
	}
	return nil
}

// composeStream is composeClosure emitting each fresh tuple (an arena-backed
// header) as it is inserted; a declined emit abandons the remaining rounds.
func composeStream(edges, exitRel *storage.Relation, rightLinear bool, answers *storage.Relation, st *Stats, sink *roundSink, opts Opts, emit func(storage.Tuple) bool) error {
	sink.begin()
	delta := make([]storage.Tuple, 0, exitRel.Len())
	stopped := false
	exitRel.Each(func(t storage.Tuple) bool {
		st.Facts++
		if answers.Insert(t) {
			st.Derived++
			fresh := answers.At(answers.Len() - 1)
			delta = append(delta, fresh)
			if !emit(fresh) {
				stopped = true
				return false
			}
		}
		return true
	})
	if len(delta) > 0 {
		st.Rounds++
	}
	sink.end(RoundStats{Round: st.Rounds, Derived: len(delta), Attempted: exitRel.Len()})
	if stopped {
		return errStreamStop
	}
	if edges == nil {
		return nil
	}
	nt := make(storage.Tuple, 2)
	for len(delta) > 0 {
		if opts.canceled() {
			return fmt.Errorf("tc-frontier stream: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		facts0, derived0 := st.Facts, st.Derived
		var next []storage.Tuple
		insert := func() bool {
			if answers.Insert(nt) {
				st.Derived++
				fresh := answers.At(answers.Len() - 1)
				next = append(next, fresh)
				if !emit(fresh) {
					stopped = true
					return false
				}
			}
			return true
		}
		for _, d := range delta {
			if rightLinear {
				edges.EachCol(1, d[0], func(e storage.Tuple) bool {
					st.Facts++
					nt[0], nt[1] = e[0], d[1]
					return insert()
				})
			} else {
				edges.EachCol(0, d[1], func(e storage.Tuple) bool {
					st.Facts++
					nt[0], nt[1] = d[0], e[1]
					return insert()
				})
			}
			if stopped {
				break
			}
		}
		sink.end(RoundStats{Round: st.Rounds, Delta: len(delta), Derived: st.Derived - derived0, Attempted: st.Facts - facts0})
		if stopped {
			return errStreamStop
		}
		delta = next
	}
	return nil
}
