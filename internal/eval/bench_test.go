package eval

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/parser"
	"repro/internal/storage"
)

// BenchmarkConjEval measures the conjunctive-body evaluator on a three-way
// join with a pushed selection.
func BenchmarkConjEval(b *testing.B) {
	db := storage.NewDatabase()
	storage.GenRandomRelation(db, "r1", 2, 100, 2000, 1)
	storage.GenRandomRelation(db, "r2", 2, 100, 2000, 2)
	storage.GenRandomRelation(db, "r3", 2, 100, 2000, 3)
	rule := parser.MustParseRule("q(W) :- r1(X, Y), r2(Y, Z), r3(Z, W).")
	conj := CompileConj(db.Syms, rule.Body)
	x := conj.VarID("X")
	v, _ := db.Syms.Lookup("n1")
	rels := DBRels(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binding := conj.NewBinding()
		binding[x] = v
		conj.Eval(rels, binding, func([]storage.Value) bool { return true })
	}
}

// BenchmarkEngines measures the five strategies on one mid-size bound TC
// query (per-op numbers for cross-strategy comparison).
func BenchmarkEngines(b *testing.B) {
	sys := mustStatement(b, "s1a").System()
	db := storage.NewDatabase()
	storage.GenRandomGraph(db, "a", 256, 512, 5)
	db.Set("e", db.Rel("a").Clone())
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	for _, s := range Strategies() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Answer(s, sys, q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSemiNaive compares the sequential semi-naive engine with
// the worker-pool engine on full transitive-closure materialization — the
// delta fan-out's target workload. On a single-CPU host the pool is
// expected to tie with (or slightly trail) the sequential engine; the
// speedup shows with 4+ cores.
func BenchmarkParallelSemiNaive(b *testing.B) {
	prog, _, err := parser.ParseProgram(`
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`)
	if err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase()
	storage.GenRandomGraph(db, "e", 300, 600, 7)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := SemiNaive(prog, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ParallelSemiNaiveOpts(prog, db, ParallelOpts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaterializeExit measures exit-relation materialization with a
// join body.
func BenchmarkMaterializeExit(b *testing.B) {
	rec := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	exit := parser.MustParseRule("p(X, Y) :- l(X, W), r(W, Y).")
	sys, err := ast.NewRecursiveSystem(rec, exit)
	if err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase()
	storage.GenRandomRelation(db, "l", 2, 200, 2000, 1)
	storage.GenRandomRelation(db, "r", 2, 200, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaterializeExit(sys, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStableDepth measures the per-depth cost of the stable σ-chain
// iterate as the chain length grows.
func BenchmarkStableDepth(b *testing.B) {
	sys := mustStatement(b, "s1a").System()
	for _, n := range []int{100, 1000} {
		db := storage.NewDatabase()
		storage.GenChain(db, "a", n)
		db.Set("e", db.Rel("a").Clone())
		q, _ := parser.ParseQuery("?- p(n0, Y).")
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ClassEval(sys, q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStableParallel compares serial and parallel per-cycle frontier
// advancement (the paper's brace notation) on a 3-cycle stable system with
// large frontiers. On a single-CPU host the two are expected to tie; the
// parallel path's value shows on multi-core hardware (it is race-detector
// verified either way).
func BenchmarkStableParallel(b *testing.B) {
	sys := mustStatement(b, "s3").System()
	res := classify.MustClassify(sys.Recursive)
	db := storage.NewDatabase()
	storage.GenRandomGraph(db, "a", 150, 600, 1)
	storage.GenRandomGraph(db, "b", 150, 600, 2)
	storage.GenRandomGraph(db, "c", 150, 600, 3)
	storage.GenRandomRelation(db, "e", 3, 150, 250, 4)
	db.BuildIndexes()
	q, _ := parser.ParseQuery("?- p(n0, n1, Z).")
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				se, err := NewStableEval(sys, res, db)
				if err != nil {
					b.Fatal(err)
				}
				se.Parallel = parallel
				if _, _, err := se.Answer(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
