package eval

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/parser"
	"repro/internal/storage"
)

func stableSystem(t *testing.T, src ...string) *ast.RecursiveSystem {
	t.Helper()
	rec := parser.MustParseRule(src[0])
	exits := make([]ast.Rule, 0, len(src)-1)
	for _, s := range src[1:] {
		exits = append(exits, parser.MustParseRule(s))
	}
	sys, err := ast.NewRecursiveSystem(rec, exits...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func stableAnswers(t *testing.T, sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats) {
	t.Helper()
	res := classify.MustClassify(sys.Recursive)
	se, err := NewStableEval(sys, res, db)
	if err != nil {
		t.Fatal(err)
	}
	ans, st, err := se.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(ref) {
		t.Fatalf("stable eval differs from naive: %d vs %d tuples", ans.Len(), ref.Len())
	}
	return ans, st
}

// TestStableTrivialComponentGatesRecursion: an atom disconnected from every
// cycle is a pure existence check — when its relation is empty only depth-0
// answers survive; when non-empty it adds no constraint.
func TestStableTrivialComponentGatesRecursion(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, X1), g(Z1, Z2), p(X1, Y).",
		"p(X, Y) :- e(X, Y).")
	res := classify.MustClassify(sys.Recursive)
	if !res.Stable {
		t.Fatalf("fixture not stable:\n%s", res.Explain())
	}
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 5)
	db.Insert("e", "n4", "target")
	q, _ := parser.ParseQuery("?- p(n0, Y).")

	// Empty g: the recursion contributes nothing; only the (empty at n0)
	// depth-0 exit answers remain.
	db.Ensure("g", 2)
	ans, _ := stableAnswers(t, sys, q, db)
	if ans.Len() != 0 {
		t.Errorf("with empty gate: %d answers, want 0", ans.Len())
	}

	// Non-empty g: the chain reaches n4 and the exit fires.
	db.Insert("g", "anything", "atall")
	ans2, _ := stableAnswers(t, sys, q, db)
	if ans2.Len() != 1 {
		t.Errorf("with gate satisfied: %d answers, want 1", ans2.Len())
	}
}

// TestStableSelfLoopWithFilter: an A2 self-loop whose variable also occurs
// in a pendant literal filters the value at every expansion.
func TestStableSelfLoopWithFilter(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, X1), g(Y), p(X1, Y).",
		"p(X, Y) :- e(X, Y).")
	res := classify.MustClassify(sys.Recursive)
	if !res.Stable {
		t.Fatalf("fixture not stable:\n%s", res.Explain())
	}
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 4)
	db.Insert("e", "n2", "ok")
	db.Insert("e", "n2", "blocked")
	db.Insert("g", "ok")

	// Bound Y = ok passes the filter; Y = blocked dies at depth >= 1.
	qOK, _ := parser.ParseQuery("?- p(n0, ok).")
	ans, _ := stableAnswers(t, sys, qOK, db)
	if ans.Len() != 1 {
		t.Errorf("ok answers = %d, want 1", ans.Len())
	}
	qBlocked, _ := parser.ParseQuery("?- p(n0, blocked).")
	ans2, _ := stableAnswers(t, sys, qBlocked, db)
	if ans2.Len() != 0 {
		t.Errorf("blocked answers = %d, want 0", ans2.Len())
	}
	// Free Y: only the filtered value flows up.
	qFree, _ := parser.ParseQuery("?- p(n0, Y).")
	ans3, _ := stableAnswers(t, sys, qFree, db)
	if ans3.Len() != 1 {
		t.Errorf("free answers = %d, want 1", ans3.Len())
	}
}

// TestStableChainCycleWithIntermediate: a unit rotational cycle whose
// undirected return path passes through an intermediate variable (two
// hops), exercising multi-atom step conjunctions.
func TestStableChainCycleWithIntermediate(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, M), b(M, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).")
	res := classify.MustClassify(sys.Recursive)
	if !res.Stable || res.Class.Code() != "A5" {
		t.Fatalf("fixture classification:\n%s", res.Explain())
	}
	db := storage.NewDatabase()
	// a: n_i -> m_i, b: m_i -> n_{i+1} — a two-hop chain.
	for i := 0; i < 5; i++ {
		db.Insert("a", n(i), m(i))
		db.Insert("b", m(i), n(i+1))
	}
	db.Insert("e", "n3", "hit")
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	ans, st := stableAnswers(t, sys, q, db)
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	if st.Rounds < 3 {
		t.Errorf("rounds = %d, expected the chain to advance at least 3 depths", st.Rounds)
	}
}

func n(i int) string { return "n" + string(rune('0'+i)) }
func m(i int) string { return "m" + string(rune('0'+i)) }

// TestStableUpwardChainFreePosition: a free position whose cycle is
// rotational must recover head values by walking the chain upward from the
// exit values (the paper's E - (c)^k part of the s3 plan).
func TestStableUpwardChainFreePosition(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, X1), c(Y1, Y), p(X1, Y1).",
		"p(X, Y) :- e(X, Y).")
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 4)
	// c chains t0 <- t1 ... : c(Y1, Y) maps exit value upward.
	db.Insert("c", "t0", "t1")
	db.Insert("c", "t1", "t2")
	db.Insert("c", "t2", "t3")
	db.Insert("e", "n2", "t0")
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	ans, _ := stableAnswers(t, sys, q, db)
	// Depth 2 reaches e(n2, t0); Y recovered two c-steps up: t2.
	want := storage.Tuple{mustSym(t, db, "n0"), mustSym(t, db, "t2")}
	if ans.Len() != 1 || !ans.Contains(want) {
		t.Errorf("answers = %v, want exactly {(n0, t2)}", dump(db, ans))
	}
}

func mustSym(t *testing.T, db *storage.Database, name string) storage.Value {
	t.Helper()
	v, ok := db.Syms.Lookup(name)
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	return v
}

func dump(db *storage.Database, r *storage.Relation) []string {
	var out []string
	r.Each(func(tp storage.Tuple) bool {
		s := ""
		for i, v := range tp {
			if i > 0 {
				s += ","
			}
			s += db.Syms.Name(v)
		}
		out = append(out, s)
		return true
	})
	return out
}

// TestStableAllFreeQuery: with no bound position the stable evaluator must
// still terminate and match naive (the W chains drive everything).
func TestStableAllFreeQuery(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, X1), b(Y, Y1), p(X1, Y1).",
		"p(X, Y) :- e(X, Y).")
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 5)
	storage.GenCycle(db, "b", 4)
	storage.GenRandomRelation(db, "e", 2, 6, 8, 3)
	q, _ := parser.ParseQuery("?- p(X, Y).")
	stableAnswers(t, sys, q, db)
}

// TestStableCyclicDataTerminates: cyclic chains repeat frontiers forever;
// the state-repetition cutoff must stop the iteration.
func TestStableCyclicDataTerminates(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y) :- a(X, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).")
	db := storage.NewDatabase()
	storage.GenCycle(db, "a", 6)
	db.Insert("e", "n3", "v")
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	ans, st := stableAnswers(t, sys, q, db)
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	if st.Rounds > 10 {
		t.Errorf("rounds = %d: cycle detection failed to stop at the period", st.Rounds)
	}
}

// TestStableParallelMatchesSerial: the parallel per-cycle advance (the
// paper's brace notation taken literally) must produce identical answers.
func TestStableParallelMatchesSerial(t *testing.T) {
	sys := stableSystem(t,
		"p(X, Y, Z) :- a(X, U), b(Y, V), p(U, V, W), c(W, Z).",
		"p(X, Y, Z) :- e(X, Y, Z).")
	res := classify.MustClassify(sys.Recursive)
	db := storage.NewDatabase()
	storage.GenRandomGraph(db, "a", 30, 60, 1)
	storage.GenRandomGraph(db, "b", 30, 60, 2)
	storage.GenRandomGraph(db, "c", 30, 60, 3)
	storage.GenRandomRelation(db, "e", 3, 30, 40, 4)
	for _, qs := range []string{"?- p(n0, n1, Z).", "?- p(n0, Y, Z).", "?- p(X, Y, Z)."} {
		q, err := parser.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewStableEval(sys, res, db)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := serial.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewStableEval(sys, res, db)
		if err != nil {
			t.Fatal(err)
		}
		par.Parallel = true
		b, _, err := par.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: parallel %d tuples vs serial %d", qs, b.Len(), a.Len())
		}
	}
}
