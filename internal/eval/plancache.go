package eval

import (
	"strings"
	"sync"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/storage"
)

// Planner caches compiled plans per (program, adornment) so that repeated
// queries skip classification and rewriting entirely. The key is the
// canonical rule text of the system plus the query's d/v adornment string:
// any change to the rule set yields a different key, so stale plans can
// never be served for a modified program (invalidation by construction);
// Invalidate drops a replaced program's entries eagerly. Cached plans are
// immutable, so any number of goroutines may call Answer concurrently.
type Planner struct {
	mu     sync.RWMutex
	plans  map[planKey]*Plan
	hits   uint64
	misses uint64
}

type planKey struct {
	program string
	adorn   string
}

// NewPlanner returns an empty plan cache.
func NewPlanner() *Planner {
	return &Planner{plans: make(map[planKey]*Plan)}
}

// DefaultPlanner backs StrategyAuto. Tools that want isolated hit/miss
// accounting (or eager invalidation) create their own Planner.
var DefaultPlanner = NewPlanner()

// programKey renders the system's canonical rule text: the recursive rule
// followed by the exit rules in order.
func programKey(sys *ast.RecursiveSystem) string {
	var b strings.Builder
	b.WriteString(sys.Recursive.String())
	for _, e := range sys.Exits {
		b.WriteByte('\n')
		b.WriteString(e.String())
	}
	return b.String()
}

// PlanFor returns the cached plan for the system and query form, compiling
// and inserting it on a miss. The second result reports a cache hit.
func (pl *Planner) PlanFor(sys *ast.RecursiveSystem, q ast.Query) (*Plan, bool, error) {
	key := planKey{program: programKey(sys), adorn: adorn.FromQuery(q).String()}
	pl.mu.RLock()
	p, ok := pl.plans[key]
	pl.mu.RUnlock()
	if ok {
		pl.mu.Lock()
		pl.hits++
		pl.mu.Unlock()
		return p, true, nil
	}
	p, err := CompilePlan(sys)
	pl.mu.Lock()
	pl.misses++
	if err == nil {
		// A concurrent compiler may have raced us here; keep the first
		// entry so callers holding it stay coherent with the cache.
		if prev, ok := pl.plans[key]; ok {
			p = prev
		} else {
			pl.plans[key] = p
		}
	}
	pl.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return p, false, nil
}

// Answer evaluates the query through the cached plan (compiling it on the
// first use of this program and query form). Stats.Plan reports the class,
// the chosen strategy and whether the plan came from the cache.
func (pl *Planner) Answer(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	p, hit, err := pl.PlanFor(sys, q)
	if err != nil {
		return nil, Stats{}, err
	}
	rel, st, err := p.Answer(q, db)
	if err != nil {
		return nil, st, err
	}
	if st.Plan != nil {
		st.Plan.CacheHit = hit
	}
	return rel, st, err
}

// Invalidate drops every cached plan (all adornments) of the given system,
// returning how many entries were removed. Callers replacing a program's
// rule set use it to bound the cache; correctness never requires it, since
// a changed rule set keys differently.
func (pl *Planner) Invalidate(sys *ast.RecursiveSystem) int {
	prog := programKey(sys)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	n := 0
	for k := range pl.plans {
		if k.program == prog {
			delete(pl.plans, k)
			n++
		}
	}
	return n
}

// Metrics returns the hit and miss counters.
func (pl *Planner) Metrics() (hits, misses uint64) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.hits, pl.misses
}

// Len returns the number of cached plans.
func (pl *Planner) Len() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return len(pl.plans)
}

// Reset empties the cache and zeroes the counters.
func (pl *Planner) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.plans = make(map[planKey]*Plan)
	pl.hits, pl.misses = 0, 0
}
