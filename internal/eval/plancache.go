package eval

import (
	"strings"
	"sync"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Planner caches compiled plans per (program, adornment, snapshot epoch) so
// that repeated queries skip classification and rewriting entirely. The key
// is the canonical rule text of the system plus the query's d/v adornment
// string: any change to the rule set yields a different key, so stale plans
// can never be served for a modified program (invalidation by construction).
// The serving path (Planner.AnswerSnap, used by the result cache and
// dlserve) additionally keys by the snapshot epoch the query pins: entries
// of epochs that have aged out of a small window behind the newest seen
// epoch are pruned automatically on insert, so a long-lived server's cache
// stays bounded without anyone ever having to remember to invalidate.
// Epoch 0 — the epochless key every non-snapshot caller uses — is never
// pruned, preserving the PR-2 behavior for tools that evaluate one
// database forever. Cached plans are immutable, so any number of
// goroutines may call Answer concurrently.
//
// Hit, miss and invalidation counts live in an obs.Registry (the
// dl_plancache_*_total counters), so a planner wired to the default registry
// surfaces its cache behavior on /metrics (invalidations now counts
// automatic epoch prunes). Metrics and Reset work against per-planner
// baselines: Reset re-bases the planner's view while the registry counters
// stay monotonic, as Prometheus-style counters must.
type Planner struct {
	mu       sync.RWMutex
	plans    map[planKey]*Plan
	maxEpoch uint64

	hits, misses, invalidations       *obs.Counter
	baseHits, baseMisses, baseInvalid int64
}

type planKey struct {
	program string
	adorn   string
	epoch   uint64
	// stats is the database's statistics epoch (Database.StatsEpoch) at
	// compile time. Plans now carry a cost-based order book computed from
	// column statistics, so the key must change when the statistics do —
	// otherwise a CompactIndexes (or any index rebuild) could leave a
	// cached plan serving join orders chosen for data that no longer
	// exists. Entries with an older stats value under the same
	// (program, adornment, epoch) are pruned on insert. 0 for bookless
	// callers (no database at plan time).
	stats uint64
}

// planEpochWindow is how many epochs behind the newest seen epoch a cached
// plan survives. Readers pin snapshots a few epochs old at most (a request
// holds its snapshot only for its own duration), so a small window keeps
// concurrent old-epoch readers hitting while bounding the cache.
const planEpochWindow = 4

// NewPlanner returns an empty plan cache with isolated counters (its own
// registry), so per-tool hit/miss accounting never mixes with the
// process-wide registry.
func NewPlanner() *Planner {
	return NewPlannerWith(obs.NewRegistry())
}

// NewPlannerWith returns an empty plan cache whose counters live in reg
// under the dl_plancache_*_total names.
func NewPlannerWith(reg *obs.Registry) *Planner {
	return &Planner{
		plans:         make(map[planKey]*Plan),
		hits:          reg.Counter(mPlanHits),
		misses:        reg.Counter(mPlanMisses),
		invalidations: reg.Counter(mPlanInvalid),
	}
}

// DefaultPlanner backs StrategyAuto; its counters live in obs.Default() so
// dlrun/dlbench -serve expose them. Tools that want isolated hit/miss
// accounting (or eager invalidation) create their own Planner.
var DefaultPlanner = NewPlannerWith(obs.Default())

// programKey renders the system's canonical rule text: the recursive rule
// followed by the exit rules in order.
func programKey(sys *ast.RecursiveSystem) string {
	var b strings.Builder
	b.WriteString(sys.Recursive.String())
	for _, e := range sys.Exits {
		b.WriteByte('\n')
		b.WriteString(e.String())
	}
	return b.String()
}

// SystemKey returns the cache key text a recursive system's results are
// memoized under — the same canonical rule rendering ResultCache.Answer
// keys by. Servers use it to peek at the cache (ResultCache.Lookup) before
// choosing a streaming evaluation.
func SystemKey(sys *ast.RecursiveSystem) string { return programKey(sys) }

// PlanFor returns the cached plan for the system and query form, compiling
// and inserting it on a miss. The second result reports a cache hit.
func (pl *Planner) PlanFor(sys *ast.RecursiveSystem, q ast.Query) (*Plan, bool, error) {
	return pl.PlanForOpts(sys, q, Opts{})
}

// PlanForOpts is PlanFor with instrumentation: the lookup is recorded under
// a "plan-cache" span (result=hit|miss) and a miss compiles under the
// classify/plan-compile spans of CompilePlanOpts. Plans compiled this way
// carry no order book (there is no database to read statistics from); the
// serving path uses PlanForEpoch.
func (pl *Planner) PlanForOpts(sys *ast.RecursiveSystem, q ast.Query, opts Opts) (*Plan, bool, error) {
	return pl.planFor(sys, q, 0, nil, opts)
}

// PlanForEpoch is PlanForOpts keyed additionally by a snapshot epoch and the
// database's statistics epoch — the serving path's lookup. db (the pinned
// snapshot's view) supplies the column statistics the plan's join orders
// are compiled from; nil db compiles a bookless plan under stats key 0.
// Entries of epochs far behind the newest seen epoch are pruned
// automatically (see Planner), and so are entries whose statistics went
// stale under the same program/adornment/epoch.
func (pl *Planner) PlanForEpoch(sys *ast.RecursiveSystem, q ast.Query, epoch uint64, db *storage.Database, opts Opts) (*Plan, bool, error) {
	return pl.planFor(sys, q, epoch, db, opts)
}

func (pl *Planner) planFor(sys *ast.RecursiveSystem, q ast.Query, epoch uint64, db *storage.Database, opts Opts) (*Plan, bool, error) {
	key := planKey{program: programKey(sys), adorn: adorn.FromQuery(q).String(), epoch: epoch}
	if db != nil {
		key.stats = db.StatsEpoch()
	}
	sp := opts.parent().Child("plan-cache").SetStr("adorn", key.adorn)
	pl.mu.RLock()
	p, ok := pl.plans[key]
	pl.mu.RUnlock()
	if ok {
		pl.hits.Inc()
		sp.SetStr("result", "hit").End()
		return p, true, nil
	}
	sp.SetStr("result", "miss").End()
	p, err := CompilePlanDB(sys, db, queryBound(q), opts)
	pl.misses.Inc()
	if err != nil {
		return nil, false, err
	}
	pl.mu.Lock()
	// A concurrent compiler may have raced us here; keep the first entry so
	// callers holding it stay coherent with the cache.
	if prev, ok := pl.plans[key]; ok {
		p = prev
	} else {
		pl.plans[key] = p
		pl.pruneLocked(epoch)
		pl.pruneStatsLocked(key)
	}
	pl.mu.Unlock()
	return p, false, nil
}

// queryBound flags the query's constant argument positions — the adorned
// "bound" columns CompilePlanDB pre-binds when costing a bounded plan's
// expansion rules.
func queryBound(q ast.Query) []bool {
	bound := make([]bool, len(q.Atom.Args))
	for i, t := range q.Atom.Args {
		bound[i] = !t.IsVar()
	}
	return bound
}

// pruneLocked ages out entries whose epoch fell behind the newest seen
// epoch by more than planEpochWindow. Epoch-0 (epochless) entries are kept.
// Caller holds the write lock.
func (pl *Planner) pruneLocked(epoch uint64) {
	if epoch <= pl.maxEpoch {
		return
	}
	pl.maxEpoch = epoch
	n := 0
	for k := range pl.plans {
		if k.epoch != 0 && k.epoch+planEpochWindow <= pl.maxEpoch {
			delete(pl.plans, k)
			n++
		}
	}
	if n > 0 {
		pl.invalidations.Add(int64(n))
	}
}

// pruneStatsLocked drops entries that differ from the just-inserted key
// only by an older statistics epoch: their join orders were compiled from
// statistics that no longer describe the data, and no future lookup can hit
// them (lookups always use the current stats epoch). Caller holds the write
// lock.
func (pl *Planner) pruneStatsLocked(key planKey) {
	n := 0
	for k := range pl.plans {
		if k.program == key.program && k.adorn == key.adorn && k.epoch == key.epoch && k.stats < key.stats {
			delete(pl.plans, k)
			n++
		}
	}
	if n > 0 {
		pl.invalidations.Add(int64(n))
	}
}

// Answer evaluates the query through the cached plan (compiling it on the
// first use of this program and query form). Stats.Plan reports the class,
// the chosen strategy and whether the plan came from the cache.
func (pl *Planner) Answer(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return pl.AnswerOpts(sys, q, db, Opts{})
}

// AnswerOpts is Answer with instrumentation threaded through the plan lookup
// and the compiled path's engine.
func (pl *Planner) AnswerOpts(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	return pl.answerEpoch(sys, q, db, 0, opts)
}

// AnswerSnap answers the query against a pinned snapshot, keying the plan
// lookup by (program, adornment, epoch). Safe for any number of concurrent
// callers sharing the snapshot: the snapshot view is immutable and cached
// plans are immutable.
func (pl *Planner) AnswerSnap(sys *ast.RecursiveSystem, q ast.Query, snap *storage.Snapshot, opts Opts) (*storage.Relation, Stats, error) {
	return pl.answerEpoch(sys, q, snap.DB(), snap.Epoch(), opts)
}

func (pl *Planner) answerEpoch(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, epoch uint64, opts Opts) (*storage.Relation, Stats, error) {
	p, hit, err := pl.planFor(sys, q, epoch, db, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	rel, st, err := p.AnswerOpts(q, db, opts)
	if err != nil {
		return nil, st, err
	}
	if st.Plan != nil {
		st.Plan.CacheHit = hit
	}
	return rel, st, err
}

// answerSnapAux is AnswerSnap additionally returning the plan's maintenance
// state (see Plan.answerAux) for the result cache to store with the entry.
func (pl *Planner) answerSnapAux(sys *ast.RecursiveSystem, q ast.Query, snap *storage.Snapshot, opts Opts) (*storage.Relation, any, Stats, error) {
	p, hit, err := pl.planFor(sys, q, snap.Epoch(), snap.DB(), opts)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	rel, aux, st, err := p.answerAux(q, snap.DB(), opts)
	if err != nil {
		return nil, nil, st, err
	}
	if st.Plan != nil {
		st.Plan.CacheHit = hit
	}
	return rel, aux, st, nil
}

// Invalidate is a no-op and always returns 0.
//
// Deprecated: plan-cache entries are keyed by program content and snapshot
// epoch, so a stale plan can never be served for a modified program and
// old epochs age out automatically — there is nothing left to invalidate
// by hand. The shim is kept so existing callers compile.
func (pl *Planner) Invalidate(sys *ast.RecursiveSystem) int {
	return 0
}

// Metrics returns the hit and miss counters accumulated since the planner
// was created or last Reset.
func (pl *Planner) Metrics() (hits, misses uint64) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return uint64(pl.hits.Value() - pl.baseHits), uint64(pl.misses.Value() - pl.baseMisses)
}

// Invalidations returns the number of plans dropped by Invalidate since the
// planner was created or last Reset.
func (pl *Planner) Invalidations() uint64 {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return uint64(pl.invalidations.Value() - pl.baseInvalid)
}

// Len returns the number of cached plans.
func (pl *Planner) Len() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return len(pl.plans)
}

// Reset empties the cache and zeroes the planner's view of the counters.
// The underlying registry counters are never decremented (scrapes must see
// them monotonic); Reset only moves the baselines Metrics subtracts.
func (pl *Planner) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.plans = make(map[planKey]*Plan)
	pl.baseHits = pl.hits.Value()
	pl.baseMisses = pl.misses.Value()
	pl.baseInvalid = pl.invalidations.Value()
}
