package eval

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/dlgen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// TestExhaustiveEngineAgreementArity2 runs the class-dispatched compiled
// engine against naive evaluation on EVERY admissible rule of the small
// arity-2 fragment (~2000 rules), one fixed database, one bound query.
// Exhaustive, not sampled: any classification or engine corner case in the
// fragment fails loudly.
func TestExhaustiveEngineAgreementArity2(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	rules := dlgen.EnumerateRules(2, 2, false)
	db := storage.NewDatabase()
	if err := storage.GenRandomRelation(db, "a", 1, 4, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := storage.GenRandomRelation(db, "b", 2, 4, 8, 2); err != nil {
		t.Fatal(err)
	}
	if err := storage.GenRandomRelation(db, "e", 2, 4, 6, 3); err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("?- p(n0, Y).")
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range rules {
		sys, err := ast.NewRecursiveSystem(rule, ast.DefaultExit("p", 2, "e"))
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		ref, _, err := Answer(StrategyNaive, sys, q, db)
		if err != nil {
			t.Fatalf("%v naive: %v", rule, err)
		}
		got, _, err := Answer(StrategyClass, sys, q, db)
		if err != nil {
			t.Fatalf("%v class: %v", rule, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("class engine differs from naive on %v: %d vs %d tuples",
				rule, got.Len(), ref.Len())
		}
	}
}
