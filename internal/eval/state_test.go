package eval

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
)

func stateAnswers(t *testing.T, srcRec, srcExit, query string, db *storage.Database) (*storage.Relation, Stats) {
	t.Helper()
	sys := stableSystem(t, srcRec, srcExit)
	q, err := parser.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	ans, st, err := StateEval(sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Answer(StrategyNaive, sys, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(ref) {
		t.Fatalf("state eval differs from naive: %d vs %d", ans.Len(), ref.Len())
	}
	return ans, st
}

// TestStateLinkedSlotResolvedDeep: in (s9)-shaped rules a free answer
// position is resolved only when a deeper expansion's literal binds the
// linked variable.
func TestStateLinkedSlotResolvedDeep(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", "start", "mid")
	db.Insert("b", "u1", "v1")
	db.Insert("b", "u2", "v2")
	db.Insert("e", "u1", "deep", "v1")
	ans, _ := stateAnswers(t,
		"p(X, Y, Z) :- a(X, Y), b(U, V), p(U, Z, V).",
		"p(X, Y, Z) :- e(X, Y, Z).",
		"?- p(start, Y, Z).", db)
	// Depth 1: y = mid (from a), z = deep (from e via the linked slot).
	if ans.Len() != 1 {
		t.Fatalf("answers = %d, want 1", ans.Len())
	}
}

// TestStateFreeSlotsExistential: values that flow into positions nobody
// reads must not multiply answers.
func TestStateFreeSlotsExistential(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("b", "x")
	db.Insert("c", "n0", "t1")
	db.Insert("c", "n0", "t2")
	// Many tuples differing only in the existential first column.
	db.Insert("e", "w1", "t1")
	db.Insert("e", "w2", "t1")
	db.Insert("e", "w3", "t1")
	ans, _ := stateAnswers(t,
		"p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, Y).", db)
	// Only y = x qualifies (b(Y)); existence of e(_, t1) gates it.
	if ans.Len() != 1 {
		t.Fatalf("answers = %d, want 1", ans.Len())
	}
}

// TestStateTerminatesOnCyclicData: cyclic chains revisit the same frontier
// states; dedup must terminate the walk.
func TestStateTerminatesOnCyclicData(t *testing.T) {
	db := storage.NewDatabase()
	storage.GenCycle(db, "a", 5)
	db.Insert("e", "n2", "hit")
	ans, st := stateAnswers(t,
		"p(X, Y) :- a(X, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, Y).", db)
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	if st.Rounds > 7 {
		t.Errorf("rounds = %d, dedup failed to cap the cyclic walk", st.Rounds)
	}
}

// TestStateSelfLoopKeepsLink: an A2 position's link must survive arbitrarily
// many expansions and finally resolve from the exit relation.
func TestStateSelfLoopKeepsLink(t *testing.T) {
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 6)
	db.Insert("e", "n5", "payload")
	ans, _ := stateAnswers(t,
		"p(X, Y) :- a(X, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, Y).", db)
	if ans.Len() != 1 {
		t.Fatalf("answers = %d, want 1", ans.Len())
	}
	v, _ := db.Syms.Lookup("payload")
	n0, _ := db.Syms.Lookup("n0")
	if !ans.Contains(storage.Tuple{n0, v}) {
		t.Error("payload did not flow through the self-loop link")
	}
}

// TestStateBoundSelfLoopValueFlows: a bound position whose variable skips
// the non-recursive literals must flow its constant down unchanged.
func TestStateBoundSelfLoopValueFlows(t *testing.T) {
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 4)
	db.Insert("e", "n3", "k")
	ans, _ := stateAnswers(t,
		"p(X, Y) :- a(X, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, k).", db)
	if ans.Len() != 1 {
		t.Fatalf("answers = %d, want 1 (selection on the self-loop position)", ans.Len())
	}
}

// TestStateAnswerConflictRejected: when the exit value disagrees with an
// already-resolved answer slot the tuple must be dropped, not corrupted.
func TestStateAnswerConflictRejected(t *testing.T) {
	db := storage.NewDatabase()
	// Rule where Y appears both in a body literal (resolving the answer)
	// and under the recursive predicate (linking it down to E).
	db.Insert("a", "n0", "mid")
	db.Insert("g", "mid", "wanted")
	db.Insert("e", "mid", "other") // disagrees with g's resolution at depth 1
	db.Insert("e", "mid", "wanted")
	ans, _ := stateAnswers(t,
		"p(X, Y) :- a(X, X1), g(X1, Y), p(X1, Y).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, Y).", db)
	n0, _ := db.Syms.Lookup("n0")
	w, _ := db.Syms.Lookup("wanted")
	if !ans.Contains(storage.Tuple{n0, w}) {
		t.Error("consistent answer missing")
	}
	o, _ := db.Syms.Lookup("other")
	if ans.Contains(storage.Tuple{n0, o}) {
		t.Error("conflicting exit value leaked into the answers")
	}
}

// TestStateEmptyExit: with an empty exit relation there are no answers at
// any depth, and the evaluator still terminates.
func TestStateEmptyExit(t *testing.T) {
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 50)
	db.Ensure("e", 2)
	ans, _ := stateAnswers(t,
		"p(X, Y) :- a(X, X1), p(X1, Y).",
		"p(X, Y) :- e(X, Y).",
		"?- p(n0, Y).", db)
	if ans.Len() != 0 {
		t.Errorf("answers = %d, want 0", ans.Len())
	}
}
