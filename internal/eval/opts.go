package eval

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// ErrCanceled is returned by an evaluation whose Opts.Abort channel closed
// before the fixpoint finished. Engines poll the channel at round
// boundaries (and the streaming kernels additionally on every blocked tuple
// emission), so cancellation latency is one round, never the whole
// fixpoint. Test with errors.Is: engines wrap it with context.
var ErrCanceled = errors.New("eval: evaluation canceled")

// Opts configures evaluation for every strategy. The zero value is the
// uninstrumented default: no tracing (nil Tracer keeps the hot paths
// allocation-free — every obs method no-ops on nil), metrics flushed to the
// process-wide obs.Default() registry at evaluation granularity, and the
// parallel engine sized to GOMAXPROCS.
type Opts struct {
	// Workers is the parallel engine's pool size; 0 or negative means
	// runtime.GOMAXPROCS(0). Ignored by the sequential engines.
	Workers int
	// Shards controls the sharded fixpoint engine (shard.go): 0 lets the
	// planner choose (GOMAXPROCS-many shards for large inputs, the plain
	// parallel path otherwise), 1 disables sharding, and >= 2 forces exactly
	// that many hash shards. Respected by every auto-planned fixpoint, the
	// streaming path, the TC compose kernel and ParallelSemiNaiveOpts; the
	// sequential engines ignore it.
	Shards int
	// Tracer, when non-nil, receives the evaluation's hierarchical spans
	// (fixpoint → round → per-rule join, plus classify/plan-compile from
	// the auto planner).
	Tracer *obs.Tracer
	// Parent, when non-nil, is the span the evaluation's spans attach
	// under; otherwise they attach under the tracer root. Lets a CLI give
	// each query its own subtree.
	Parent *obs.Span
	// Metrics is the registry receiving the evaluation's counters and
	// histograms; nil means obs.Default().
	Metrics *obs.Registry
	// Abort, when non-nil, cancels the evaluation when it closes: engines
	// poll it at round boundaries and return ErrCanceled instead of a
	// result. The serving layer wires it to the HTTP request context so a
	// disconnected client stops burning CPU, and the streaming iterators
	// close it from Close(). Nil (the zero value) never cancels and costs
	// one nil-channel select per round.
	Abort <-chan struct{}
	// Observer, when non-nil, receives one RoundStats per fixpoint round,
	// in round order, from the coordinating goroutine.
	//
	// Deprecated: Observer predates the obs.Tracer span plumbing and is
	// kept as a shim — every engine now feeds it through the same round
	// sink that emits round spans. New callers should read Stats.Trace or
	// attach a Tracer instead.
	Observer Observer
	// CostOrders makes the explicitly invoked engines (NaiveOpts,
	// SemiNaiveOpts, the parallel/sharded entry points) compile cost-based
	// join orders from the database's column statistics before evaluating,
	// instead of the per-step greedy ordering. The auto planner ignores this
	// flag: plans compiled through a Planner always carry their own order
	// book. Off by default so the explicit engines stay exact ablation
	// baselines (dlbench Q12 A/B-tests precisely this switch).
	CostOrders bool
	// book, when non-nil, is the compiled join-order book the evaluation
	// uses (set by the auto planner from its cached Plan, or compiled on
	// demand when CostOrders is set). Unexported: Opts is passed by value
	// everywhere, so plans can attach it without callers forging one.
	book *orderBook
}

// canceled reports whether the abort channel has closed. Engines call it at
// round boundaries; on a nil Abort it is a single non-blocking select.
func (o Opts) canceled() bool {
	select {
	case <-o.Abort:
		return true
	default:
		return false
	}
}

// parent returns the span new engine spans attach under (nil when
// untraced).
func (o Opts) parent() *obs.Span {
	if o.Parent != nil {
		return o.Parent
	}
	return o.Tracer.Root()
}

// registry returns the metrics destination.
func (o Opts) registry() *obs.Registry {
	if o.Metrics != nil {
		return o.Metrics
	}
	return obs.Default()
}

// Metric names of the process-wide registry (documented in DESIGN.md §9).
const (
	mEvaluations   = "dl_evaluations_total"
	mRounds        = "dl_rounds_total"
	mDerived       = "dl_tuples_derived_total"
	mAttempted     = "dl_tuples_attempted_total"
	mDedupProbes   = "dl_dedup_probes_total"
	mDedupDups     = "dl_dedup_duplicates_total"
	mDedupColls    = "dl_dedup_collisions_total"
	mArenaBytes    = "dl_arena_bytes_total"
	mTableGrows    = "dl_hash_table_grows_total"
	mCSRBuilds     = "dl_csr_builds_total"
	mPlanHits      = "dl_plancache_hits_total"
	mPlanMisses    = "dl_plancache_misses_total"
	mPlanInvalid   = "dl_plancache_invalidations_total"
	mResultHits    = "dl_resultcache_hits_total"
	mResultMisses  = "dl_resultcache_misses_total"
	mResultEvict   = "dl_resultcache_evictions_total"
	mResultBytes   = "dl_resultcache_bytes"
	mResultEntries = "dl_resultcache_entries"
	mResultMaint   = "dl_resultcache_maintained_total"
	mResultRecomp  = "dl_resultcache_recomputed_total"
	mResultMaintNs = "dl_resultcache_maintenance_seconds"
	mRoundDur      = "dl_round_duration_seconds"
	mWorkerUtil    = "dl_worker_utilization"
	mStratumRounds = "dl_rounds_per_stratum"
	// mShardedEvals counts evaluations that ran on the sharded engine;
	// mExchanged counts tuples routed across shards at round barriers (the
	// cross-shard delta exchange volume a distributed mode would put on the
	// network).
	mShardedEvals = "dl_sharded_evaluations_total"
	mExchanged    = "dl_tuples_exchanged_total"
)

// utilBuckets covers the [0, 1] worker-utilization ratio.
var utilBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// stratumBuckets counts rounds per stratum (small integers, heavy tail).
var stratumBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// metricSet holds the per-round histograms pre-resolved once per
// evaluation, so round emission costs no registry lookups.
type metricSet struct {
	roundDur      *obs.Histogram
	util          *obs.Histogram
	stratumRounds *obs.Histogram
}

func (o Opts) metricSet() *metricSet {
	reg := o.registry()
	return &metricSet{
		roundDur:      reg.Histogram(mRoundDur, nil),
		util:          reg.Histogram(mWorkerUtil, utilBuckets),
		stratumRounds: reg.Histogram(mStratumRounds, stratumBuckets),
	}
}

// roundSink fans one fixpoint round out to every consumer: Stats.Trace, the
// deprecated Observer callback, one span per round under the engine's
// fixpoint span, and the round-granularity histograms. The zero value is a
// valid "record Stats.Trace only" sink; engines call begin at round start
// and end exactly once per round.
type roundSink struct {
	st   *Stats
	ob   Observer
	fix  *obs.Span // fixpoint span, parent of the round spans; nil untraced
	ms   *metricSet
	t0   time.Time
	span *obs.Span // current round span
}

func newRoundSink(st *Stats, o Opts, fix *obs.Span) roundSink {
	return roundSink{st: st, ob: o.Observer, fix: fix, ms: o.metricSet()}
}

// begin marks the start of a round (timing plus the round span).
func (rs *roundSink) begin() {
	rs.t0 = time.Now()
	rs.span = rs.fix.Child("round")
}

// traced reports whether the current round has a live span. Callers check
// it before building span attribute strings (e.g. rule.String()) so the
// untraced path never allocates.
func (rs *roundSink) traced() bool { return rs.span != nil }

// rule opens a per-rule join span inside the current round, or returns nil
// when untraced — callers chain attribute setters and End on the result
// unconditionally.
func (rs *roundSink) rule(name string) *obs.Span {
	if rs.span == nil {
		return nil
	}
	return rs.span.Child("join").SetStr("rule", name)
}

// end completes the round: fills the duration when the engine did not
// measure one itself, appends to Stats.Trace, notifies the Observer, closes
// the round span and feeds the histograms.
func (rs *roundSink) end(r RoundStats) {
	if r.Duration == 0 {
		r.Duration = time.Since(rs.t0)
	}
	rs.st.Trace = append(rs.st.Trace, r)
	if rs.ob != nil {
		rs.ob.Round(r)
	}
	if s := rs.span; s != nil {
		s.SetInt("round", int64(r.Round))
		s.SetInt("stratum", int64(r.Stratum))
		s.SetInt("delta", int64(r.Delta))
		s.SetInt("derived", int64(r.Derived))
		s.SetInt("attempted", int64(r.Attempted))
		if r.Tasks > 0 {
			s.SetInt("tasks", int64(r.Tasks))
		}
		if r.Workers > 0 {
			s.SetInt("workers", int64(r.Workers))
		}
		if r.Shards > 0 {
			s.SetInt("shards", int64(r.Shards))
			s.SetInt("exchanged", int64(r.Exchanged))
		}
		if r.Estimated > 0 || r.Visited > 0 {
			s.SetInt("estimated", r.Estimated)
			s.SetInt("visited", r.Visited)
		}
		s.End()
		rs.span = nil
	}
	if rs.ms != nil {
		rs.ms.roundDur.Observe(r.Duration.Seconds())
		if r.Workers > 0 {
			rs.ms.util.Observe(r.Utilization())
		}
	}
}

// stratumDone records how many rounds the just-saturated stratum took.
func (rs *roundSink) stratumDone(rounds int) {
	if rs.ms != nil && rounds > 0 {
		rs.ms.stratumRounds.Observe(float64(rounds))
	}
}

// flushRels adds the evaluation's logical counters plus the storage
// write-path counters of the given relations to the registry. Called once
// per evaluation — never from a hot loop.
func flushRels(o Opts, st *Stats, rels ...*storage.Relation) {
	reg := o.registry()
	reg.Counter(mEvaluations).Inc()
	reg.Counter(mRounds).Add(int64(st.Rounds))
	reg.Counter(mDerived).Add(int64(st.Derived))
	reg.Counter(mAttempted).Add(int64(st.Facts))
	var sum storage.RelStats
	for _, r := range rels {
		if r != nil {
			sum = sum.Add(r.Stats())
		}
	}
	reg.Counter(mDedupProbes).Add(sum.Probes)
	reg.Counter(mDedupDups).Add(sum.Duplicates)
	reg.Counter(mDedupColls).Add(sum.Collisions)
	reg.Counter(mArenaBytes).Add(sum.ArenaBytes)
	reg.Counter(mTableGrows).Add(sum.TableGrows)
	reg.Counter(mCSRBuilds).Add(sum.IndexBuilds)
}

// flushDB is flushRels over the IDB relations an engine materialized in its
// working database (the relations it owns — EDB relations are shared with
// the caller and excluded so their insert history is not re-counted).
func flushDB(o Opts, st *Stats, work *storage.Database, idb map[string]bool) {
	rels := make([]*storage.Relation, 0, len(idb))
	for pred := range idb {
		rels = append(rels, work.Rel(pred))
	}
	flushRels(o, st, rels...)
}
