package eval

// Cost-based join ordering. The greedy dynamic ordering in conj.go decides
// the next atom one step at a time from whatever is bound so far; it cannot
// see that a cheap-looking first atom (small relation) explodes when its
// free variable joins into a hot key of the next relation. This file
// chooses the whole order once, at plan-compile time, from the storage
// layer's column statistics: a System-R-style left-deep search over the
// small bodies this codebase sees (≤ maxPlanAtoms atoms), with the
// engine's existing evaluation constraints kept hard — negated literals
// are only placeable once fully bound, and Cartesian products are avoided
// whenever a connected atom exists.
//
// The cost unit is "tuples visited": the number of postings EachMatch
// walks, which is exactly what Conj.EvalWith's visit counter measures at
// runtime, so estimates and actuals land in the same column of the round
// stats. The per-probe fan-out estimate for a bound column is the column's
// MAX bucket size, not the average: on skewed data the average reproduces
// the same mistake as the greedy order (the hot key dominates actual work
// but disappears in the mean), and a worst-case estimate is the right
// polarity for choosing between orders — see TestCostModelSkew.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/storage"
)

// maxPlanAtoms caps the left-deep search. Bodies beyond the cap keep the
// dynamic greedy ordering (a nil compiled order): the search is exponential
// in the worst case, and the paper's systems never exceed a handful of
// literals per rule.
const maxPlanAtoms = 8

// costCap saturates cost accumulation so pathological estimates stay
// comparable instead of overflowing.
const costCap = 1e18

// relStat is one relation's statistics snapshot as the model uses it.
type relStat struct {
	n    float64
	cols []storage.ColStats
}

// costModel snapshots the statistics of every relation a rule set reads.
// Predicates with no relation (or an empty one) at compile time — IDB
// predicates mid-fixpoint — get a neutral estimate: size defaultN, bound
// probes sqrt(defaultN) (the fan-out of a uniform square relation), so a
// known-selective EDB probe is still preferred over an unknown IDB scan
// without assuming the IDB is empty.
type costModel struct {
	stats    map[string]relStat
	defaultN float64
}

// newCostModel reads the statistics of every body predicate of the rules
// from db. It never builds indexes (ColStats samples unindexed columns), so
// concurrent planners may share the database.
func newCostModel(rules []ast.Rule, db *storage.Database) *costModel {
	m := &costModel{stats: make(map[string]relStat), defaultN: 16}
	for _, r := range rules {
		for _, a := range r.Body {
			if _, ok := m.stats[a.Pred]; ok {
				continue
			}
			rel := db.Rel(a.Pred)
			if rel == nil || rel.Len() == 0 {
				continue
			}
			rs := relStat{n: float64(rel.Len()), cols: make([]storage.ColStats, rel.Arity())}
			for c := 0; c < rel.Arity(); c++ {
				rs.cols[c] = rel.ColStats(c)
			}
			m.stats[a.Pred] = rs
			if rs.n > m.defaultN {
				m.defaultN = rs.n
			}
		}
	}
	return m
}

// fanout estimates the tuples one EachMatch probe of the atom visits under
// the given variable-boundness state (constants always count as bound).
func (m *costModel) fanout(a *compiledAtom, boundVar []bool) float64 {
	nb := 0
	for _, s := range a.args {
		if !s.isVar || boundVar[s.varID] {
			nb++
		}
	}
	rs, known := m.stats[a.pred]
	if !known {
		switch {
		case nb == len(a.args):
			return 1
		case nb == 0:
			return m.defaultN
		default:
			return math.Sqrt(m.defaultN)
		}
	}
	if nb == len(a.args) {
		return 1 // membership check
	}
	if nb == 0 {
		return rs.n // full scan
	}
	// EachMatch picks the most selective bound column's index; its
	// worst-case bucket is that column's MaxBucket. Taking the min over
	// bound columns mirrors the index pick.
	best := rs.n
	for j, s := range a.args {
		if s.isVar && !boundVar[s.varID] {
			continue
		}
		if j < len(rs.cols) {
			if b := float64(rs.cols[j].MaxBucket); b < best {
				best = b
			}
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

// ruleOrder is the compiled ordering decision for one rule body.
type ruleOrder struct {
	// full is the join order for a full (unseeded) evaluation; nil means
	// the search declined (body too large) and the dynamic order stays.
	full     []int
	fullCost float64
	// seeded[bi] is the order used when atom bi is the delta occurrence:
	// the order starts at bi (whose variables the delta binds) and
	// seedCost[bi] estimates the tuples visited per delta tuple. nil
	// entries (negated atoms, oversized bodies) fall back to dynamic.
	seeded   [][]int
	seedCost []float64
}

// orderBook maps every rule of a compiled program to its ordering decision,
// keyed by the rule's canonical string. cost is the summed full-evaluation
// estimate — the planner's work proxy for strategy thresholds — and desc
// holds one human-readable line per rule for PlanInfo.
type orderBook struct {
	orders map[string]*ruleOrder
	cost   float64
	desc   []string
}

func (b *orderBook) orderFor(r ast.Rule) *ruleOrder {
	if b == nil {
		return nil
	}
	return b.orders[r.String()]
}

// orderSearch is the DFS state of the left-deep enumeration for one rule.
type orderSearch struct {
	c        *Conj
	m        *costModel
	boundVar []bool
	used     []bool
	cur      []int
	best     []int
	bestCost float64
}

// placeable collects the atoms allowed at the current depth: a fully bound
// negated literal is forced immediately (it only prunes, never grows);
// otherwise positives with at least one bound argument when any exists (no
// Cartesian product while a connected atom remains), else all positives.
func (s *orderSearch) placeable(buf []int) []int {
	buf = buf[:0]
	anyConnected := false
	for i := range s.c.atoms {
		if s.used[i] {
			continue
		}
		a := &s.c.atoms[i]
		nb := 0
		for _, sp := range a.args {
			if !sp.isVar || s.boundVar[sp.varID] {
				nb++
			}
		}
		if a.neg {
			if nb == len(a.args) {
				return append(buf[:0], i) // forced: constant-time filter
			}
			continue
		}
		if nb > 0 && !anyConnected {
			anyConnected = true
			buf = buf[:0]
		}
		if nb > 0 || !anyConnected {
			buf = append(buf, i)
		}
	}
	return buf
}

func (s *orderSearch) dfs(depth int, rows, cost float64) {
	if cost >= s.bestCost {
		return // branch-and-bound: cost only grows
	}
	if depth == len(s.c.atoms) {
		s.bestCost = cost
		s.best = append(s.best[:0], s.cur...)
		return
	}
	var cbuf [maxPlanAtoms]int
	cands := s.placeable(cbuf[:])
	for _, i := range cands {
		a := &s.c.atoms[i]
		var nextRows, nextCost float64
		if a.neg {
			nextRows, nextCost = rows, cost+rows
		} else {
			fan := s.m.fanout(a, s.boundVar)
			visits := rows * fan
			nextRows, nextCost = visits, cost+visits
		}
		if nextCost > costCap {
			nextCost = costCap
		}
		var assigned [maxPlanAtoms]int
		na := 0
		for _, sp := range a.args {
			if sp.isVar && !s.boundVar[sp.varID] {
				s.boundVar[sp.varID] = true
				assigned[na] = sp.varID
				na++
			}
		}
		s.used[i] = true
		s.cur = append(s.cur, i)
		s.dfs(depth+1, nextRows, nextCost)
		s.cur = s.cur[:len(s.cur)-1]
		s.used[i] = false
		for k := 0; k < na; k++ {
			s.boundVar[assigned[k]] = false
		}
	}
}

// search runs the left-deep enumeration with the given pre-bound variables
// and pre-placed seed atom (seed < 0 for a full evaluation). It returns the
// best complete order and its cost, or nil when no valid order exists
// (unsafe negation would be the only cause; the engines validate safety
// upstream, so nil simply falls back to dynamic).
func searchOrder(c *Conj, m *costModel, preBound []bool, seed int) ([]int, float64) {
	s := &orderSearch{
		c: c, m: m,
		boundVar: make([]bool, c.NumVars()),
		used:     make([]bool, len(c.atoms)),
		cur:      make([]int, 0, len(c.atoms)),
		bestCost: math.Inf(1),
	}
	copy(s.boundVar, preBound)
	rows, cost := 1.0, 0.0
	if seed >= 0 {
		a := &c.atoms[seed]
		for _, sp := range a.args {
			if sp.isVar {
				s.boundVar[sp.varID] = true
			}
		}
		s.used[seed] = true
		s.cur = append(s.cur, seed)
		s.dfs(1, rows, cost)
	} else {
		s.dfs(0, rows, cost)
	}
	if math.IsInf(s.bestCost, 1) {
		return nil, 0
	}
	return append([]int(nil), s.best...), s.bestCost
}

// compileOrderBook chooses a join order for every rule against the
// database's current statistics. boundOf, when non-nil, names the variables
// already bound before each rule's body runs (the bounded plan's adorned
// head constants); nil means no pre-bound variables. Rules whose bodies
// exceed maxPlanAtoms get no compiled order and keep the runtime greedy
// ordering.
func compileOrderBook(syms *storage.Symbols, rules []ast.Rule, db *storage.Database, boundOf func(ast.Rule) map[string]bool) *orderBook {
	book := &orderBook{orders: make(map[string]*ruleOrder, len(rules))}
	m := newCostModel(rules, db)
	for ri, r := range rules {
		key := r.String()
		if _, ok := book.orders[key]; ok {
			continue
		}
		ord := &ruleOrder{}
		book.orders[key] = ord
		if len(r.Body) > maxPlanAtoms {
			continue
		}
		c := CompileConj(syms, r.Body)
		pre := make([]bool, c.NumVars())
		if boundOf != nil {
			for name := range boundOf(r) {
				if id := c.VarID(name); id >= 0 {
					pre[id] = true
				}
			}
		}
		ord.full, ord.fullCost = searchOrder(c, m, pre, -1)
		ord.seeded = make([][]int, len(r.Body))
		ord.seedCost = make([]float64, len(r.Body))
		for bi := range r.Body {
			if r.Body[bi].Neg {
				continue
			}
			ord.seeded[bi], ord.seedCost[bi] = searchOrder(c, m, pre, bi)
		}
		book.cost += ord.fullCost
		if ord.full != nil {
			names := make([]string, len(ord.full))
			for k, ai := range ord.full {
				lit := r.Body[ai].Pred
				if r.Body[ai].Neg {
					lit = "!" + lit
				}
				names[k] = lit
			}
			book.desc = append(book.desc, fmt.Sprintf("%s[%d]: %s cost=%.4g",
				r.Head.Pred, ri, strings.Join(names, ","), ord.fullCost))
		}
	}
	sort.Strings(book.desc)
	return book
}

// withAutoBook compiles an order book on demand: engines invoked directly
// (not through a Plan, which carries its own book) honor Opts.CostOrders by
// compiling against the database they are about to read. No-op when cost
// ordering is off or a book is already attached.
func (o Opts) withAutoBook(syms *storage.Symbols, rules []ast.Rule, db *storage.Database) Opts {
	if o.book != nil || !o.CostOrders {
		return o
	}
	o.book = compileOrderBook(syms, rules, db, nil)
	return o
}
