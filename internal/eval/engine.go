package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// Strategy selects one of the engines.
type Strategy uint8

const (
	// StrategyNaive is bottom-up full re-evaluation.
	StrategyNaive Strategy = iota
	// StrategySemiNaive is bottom-up delta evaluation.
	StrategySemiNaive
	// StrategyMagic is the magic-sets rewriting baseline.
	StrategyMagic
	// StrategyState is the generic compiled expansion evaluator.
	StrategyState
	// StrategyClass dispatches on the paper's classification: stable plans
	// for class A formulas (after the Theorem 2/4 transformation when
	// needed), bounded unrolling for bounded formulas, and the generic
	// compiled evaluator for classes C, E and F.
	StrategyClass
	// StrategyParallel is bottom-up delta evaluation with each round's
	// delta fanned out across a worker pool (see ParallelSemiNaive).
	// Workers share the database read-only through the storage layer's
	// frozen CSR indexes and write into pooled arena-backed buffers.
	StrategyParallel
	// StrategyAuto classifies the system once, compiles the fast path the
	// classification licenses (the transitive-closure frontier kernel, the
	// bounded expansion union, or the Theorem-2/4 stabilization feeding the
	// parallel engine) and caches the plan per (program, adornment) in
	// DefaultPlanner so repeated queries skip classification and rewriting.
	StrategyAuto
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategySemiNaive:
		return "seminaive"
	case StrategyMagic:
		return "magic"
	case StrategyState:
		return "state"
	case StrategyClass:
		return "class"
	case StrategyParallel:
		return "parallel"
	case StrategyAuto:
		return "auto"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Strategies lists every strategy, for cross-checking loops.
func Strategies() []Strategy {
	return []Strategy{StrategyNaive, StrategySemiNaive, StrategyMagic, StrategyState, StrategyClass, StrategyParallel, StrategyAuto}
}

// Answer evaluates the query over the database with the chosen strategy and
// returns the answer relation (arity = the recursive predicate's).
func Answer(strategy Strategy, sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return AnswerOpts(strategy, sys, q, db, Opts{})
}

// AnswerOpts is Answer with instrumentation threaded into whichever engine
// the strategy selects: every strategy feeds the same tracer, metrics
// registry and (deprecated) Observer through Opts.
func AnswerOpts(strategy Strategy, sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	switch strategy {
	case StrategyNaive:
		out, st, err := NaiveOpts(sys.Program(), db, opts)
		if err != nil {
			return nil, st, err
		}
		ans, err := AnswerQuery(out, q)
		return ans, st, err
	case StrategySemiNaive:
		out, st, err := SemiNaiveOpts(sys.Program(), db, opts)
		if err != nil {
			return nil, st, err
		}
		ans, err := AnswerQuery(out, q)
		return ans, st, err
	case StrategyParallel:
		out, st, err := ParallelSemiNaiveOpts(sys.Program(), db, opts)
		if err != nil {
			return nil, st, err
		}
		ans, err := AnswerQuery(out, q)
		return ans, st, err
	case StrategyMagic:
		return MagicSetsOpts(sys, q, db, opts)
	case StrategyState:
		return StateEvalOpts(sys, q, db, opts)
	case StrategyClass:
		return ClassEvalOpts(sys, q, db, opts)
	case StrategyAuto:
		return DefaultPlanner.AnswerOpts(sys, q, db, opts)
	default:
		return nil, Stats{}, fmt.Errorf("eval: unknown strategy %v", strategy)
	}
}

// ClassEval classifies the system and dispatches to the most specific
// evaluator the paper's analysis licenses.
func ClassEval(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return ClassEvalOpts(sys, q, db, Opts{})
}

// ClassEvalOpts is ClassEval with instrumentation: the classification is
// recorded under a "classify" span before dispatch.
func ClassEvalOpts(sys *ast.RecursiveSystem, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	cls := opts.parent().Child("classify")
	res, err := classify.Classify(sys.Recursive)
	if err != nil {
		cls.End()
		return nil, Stats{}, err
	}
	cls.SetStr("class", res.Class.Code()).End()
	return ClassEvalWithOpts(sys, res, q, db, opts)
}

// ClassEvalWith is ClassEval with a precomputed classification (so callers
// can amortize the compilation across queries — the paper's compiled-query
// setting).
func ClassEvalWith(sys *ast.RecursiveSystem, res *classify.Result, q ast.Query, db *storage.Database) (*storage.Relation, Stats, error) {
	return ClassEvalWithOpts(sys, res, q, db, Opts{})
}

// ClassEvalWithOpts is ClassEvalWith with instrumentation threaded into the
// dispatched evaluator.
func ClassEvalWithOpts(sys *ast.RecursiveSystem, res *classify.Result, q ast.Query, db *storage.Database, opts Opts) (*storage.Relation, Stats, error) {
	switch {
	case res.Bounded:
		// Classes B, D and the bounded combinations (Theorems 10, 11):
		// finitely many non-recursive expansions.
		return BoundedEvalOpts(sys, res.RankBound, q, db, opts)
	case res.Stable:
		se, err := NewStableEval(sys, res, db)
		if err != nil {
			return nil, Stats{}, err
		}
		return se.AnswerOpts(q, opts)
	case res.Transformable:
		// Theorem 2/4: unfold to an equivalent stable system, then run the
		// stable plan.
		stableSys, err := rewrite.ToStableClassified(sys, res)
		if err != nil {
			return nil, Stats{}, err
		}
		stableRes, err := classify.Classify(stableSys.Recursive)
		if err != nil {
			return nil, Stats{}, err
		}
		se, err := NewStableEval(stableSys, stableRes, db)
		if err != nil {
			return nil, Stats{}, err
		}
		return se.AnswerOpts(q, opts)
	default:
		// Classes C, E, F: the paper gives no general closed plan; the
		// resolution-graph-driven compiled evaluator is the uniform method.
		return StateEvalOpts(sys, q, db, opts)
	}
}
