package eval

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Pull-based answer streaming. Every compiled plan can deliver its answers
// through an Iterator instead of a fully materialized relation: the consumer
// pulls tuples as the producer derives them, a bounded channel provides
// backpressure, and closing the iterator (or an external Opts.Abort) stops
// the producing fixpoint at its next round boundary. Cached results stream
// through the same interface with no evaluation and no copying.

// errStreamStop is the internal sentinel a streaming engine returns when the
// consumer declined further tuples (limit satisfied, goal answered, iterator
// closed). It never escapes the package: the iterator and streamInto
// translate it to a clean end-of-stream.
var errStreamStop = errors.New("eval: stream consumer stopped")

// streamChanSize bounds the producer/consumer channel: enough slack that the
// producer is not re-scheduled per tuple, small enough that an abandoned
// consumer stops the fixpoint within one channel's worth of answers.
const streamChanSize = 64

// Iterator is a pull-based stream of answer tuples.
//
// The contract: call Next until it returns false, reading Tuple after each
// true; then Err distinguishes exhaustion from failure and Stats reports the
// work done. Close releases the producer early (idempotent, safe after
// exhaustion) and must be called when abandoning the stream before Next
// returned false; Err and Stats are valid only after Next returned false or
// Close returned. Tuples stay valid until Close — they may alias the
// producer's arena, so a consumer keeping tuples past Close must copy them.
// An Iterator is single-consumer: Next/Tuple from one goroutine only.
type Iterator interface {
	Next() bool
	Tuple() storage.Tuple
	Err() error
	Stats() Stats
	Close()
}

// relIterator streams an already-materialized relation — the result cache's
// hit path. No goroutine, no copying: Tuple returns the relation's own
// arena-backed headers.
type relIterator struct {
	rel     *storage.Relation
	idx     int
	limit   int
	emitted int
	cur     storage.Tuple
	st      Stats
}

// NewRelationIterator streams rel's tuples in insertion order. limit > 0
// stops the stream after limit tuples and marks Stats.Truncated when more
// existed; limit <= 0 streams everything. st seeds the iterator's Stats
// (e.g. the cached evaluation's counters).
func NewRelationIterator(rel *storage.Relation, limit int, st Stats) Iterator {
	return &relIterator{rel: rel, limit: limit, st: st}
}

func (it *relIterator) Next() bool {
	if it.rel == nil || it.idx >= it.rel.Len() {
		it.cur = nil
		return false
	}
	if it.limit > 0 && it.emitted >= it.limit {
		it.st.Truncated = true
		it.cur = nil
		return false
	}
	it.cur = it.rel.At(it.idx)
	it.idx++
	it.emitted++
	return true
}

func (it *relIterator) Tuple() storage.Tuple { return it.cur }
func (it *relIterator) Err() error           { return nil }
func (it *relIterator) Stats() Stats         { return it.st }
func (it *relIterator) Close()               {}

// evalIterator runs a push-mode streaming engine in a producer goroutine and
// adapts it to the pull interface (the evalIterator shape: bounded result
// channel, abort channel, WaitGroup cleanup). Close closes the abort
// channel; the engine observes it either at a round boundary (Opts.Abort)
// or on its next blocked emit, so an abandoned stream stops the fixpoint
// promptly and Close returns only after the producer goroutine exited —
// tests can assert zero goroutine leak right after Close.
type evalIterator struct {
	ch       chan storage.Tuple
	abort    chan struct{}
	finished chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
	closing  atomic.Bool

	cur storage.Tuple
	st  Stats
	err error
}

// newEvalIterator starts run in a producer goroutine. run must feed every
// answer to emit and return its Stats; emit returning false means "stop now"
// (run should return errStreamStop, which is not an error). limit > 0 cuts
// the stream after limit tuples and sets Stats.Truncated. opts.Abort, when
// non-nil, cancels the stream from outside (a watcher goroutine forwards it
// to the producer); Err then reports ErrCanceled. Emitted tuples must stay
// valid until the evaluation's working storage is garbage — engines emit
// arena-backed or freshly allocated tuples, never reused scratch buffers.
func newEvalIterator(opts Opts, limit int, run func(ro Opts, emit func(storage.Tuple) bool) (Stats, error)) *evalIterator {
	it := &evalIterator{
		ch:       make(chan storage.Tuple, streamChanSize),
		abort:    make(chan struct{}),
		finished: make(chan struct{}),
	}
	external := opts.Abort
	ro := opts
	ro.Abort = it.abort

	emitted := 0
	truncated := false
	emit := func(t storage.Tuple) bool {
		select {
		case it.ch <- t:
		case <-it.abort:
			return false
		}
		emitted++
		if limit > 0 && emitted >= limit {
			truncated = true
			return false
		}
		return true
	}

	if external != nil {
		it.wg.Add(1)
		go func() {
			defer it.wg.Done()
			select {
			case <-external:
				it.once.Do(func() { close(it.abort) })
			case <-it.finished:
			}
		}()
	}

	it.wg.Add(1)
	go func() {
		defer it.wg.Done()
		st, err := run(ro, emit)
		if truncated {
			st.Truncated = true
		}
		if err == errStreamStop {
			err = nil
			if !truncated {
				// The engine stopped on a declined emit without the limit
				// being the reason. If the abort channel is closed the stop
				// came from Close or an external cancel — report ErrCanceled
				// so a partial answer set is never mistaken for a complete
				// one (Err suppresses it again for consumer-initiated Close).
				select {
				case <-it.abort:
					err = fmt.Errorf("eval: stream: %w", ErrCanceled)
				default:
				}
			}
		}
		it.st, it.err = st, err
		// Store st/err before closing the channel: the consumer's failed
		// receive is its happens-after edge for reading them.
		close(it.ch)
		close(it.finished)
	}()
	return it
}

func (it *evalIterator) Next() bool {
	t, ok := <-it.ch
	if !ok {
		it.cur = nil
		return false
	}
	it.cur = t
	return true
}

func (it *evalIterator) Tuple() storage.Tuple { return it.cur }

// Err reports how the stream ended. A deliberate stop — the consumer's limit
// or Close — is a clean end (nil); an external Opts.Abort surfaces as
// ErrCanceled so the caller can tell a complete answer set from a
// disconnected one.
func (it *evalIterator) Err() error {
	if it.err != nil && errors.Is(it.err, ErrCanceled) && it.closing.Load() {
		return nil
	}
	return it.err
}

func (it *evalIterator) Stats() Stats { return it.st }

// Close aborts the producer and waits for it (and the abort watcher) to
// exit. Idempotent; safe after exhaustion. closing is set inside the once
// so it records who actually closed the abort channel: a Close racing an
// external cancel that fired first must not relabel the cancellation as
// consumer-initiated.
func (it *evalIterator) Close() {
	it.once.Do(func() {
		it.closing.Store(true)
		close(it.abort)
	})
	it.wg.Wait()
}

// Stream evaluates the query along the compiled path, delivering answers
// through an Iterator as they are derived. limit > 0 stops the evaluation
// once limit answers were delivered (Stats.Truncated set). Bound-argument
// queries on TC plans additionally exit as soon as the answer set is
// complete — a fully bound tc(a, b)? stops at its first derivation without
// computing the rest of the closure. The iterator's answers equal
// AnswerOpts' answer relation, in deterministic order per plan.
func (p *Plan) Stream(q ast.Query, db *storage.Database, opts Opts, limit int) Iterator {
	return newEvalIterator(opts, limit, func(ro Opts, emit func(storage.Tuple) bool) (Stats, error) {
		return p.streamInto(q, db, ro, emit)
	})
}

// streamInto pushes the query's answers into emit along the compiled path.
func (p *Plan) streamInto(q ast.Query, db *storage.Database, opts Opts, emit func(storage.Tuple) bool) (Stats, error) {
	var (
		st  Stats
		err error
	)
	if opts.book == nil {
		opts.book = p.book
	}
	switch p.Kind {
	case PlanTC:
		st, err = tcStream(p.sys, p.tc, q, db, opts, emit)
	case PlanBounded:
		st, err = streamNonRecursive(p.sys, p.rules, q, db, opts, emit)
	case PlanStable:
		st, err = streamFixpoint(p.stable.Program(), q, db, opts, emit)
	default:
		st, err = streamFixpoint(p.sys.Program(), q, db, opts, emit)
	}
	if err != nil && err != errStreamStop {
		return st, err
	}
	st.Plan = p.planInfo(&st)
	return st, err
}

// StreamProgram streams a query over a general stratified program (the
// serving path for programs that are not a single recursive system): the
// parallel semi-naive engine runs with a merge-time emit hook, so answers
// flow out as rounds complete and an early stop abandons the rest of the
// fixpoint.
func StreamProgram(prog *ast.Program, q ast.Query, db *storage.Database, opts Opts, limit int) Iterator {
	return newEvalIterator(opts, limit, func(ro Opts, emit func(storage.Tuple) bool) (Stats, error) {
		return streamFixpoint(prog, q, db, ro, emit)
	})
}

// streamFixpoint runs the parallel semi-naive engine with an emit hook on
// the query predicate, filtering each emitted tuple against the query's
// bound constants (the same selection AnswerQuery applies to the finished
// fixpoint).
func streamFixpoint(prog *ast.Program, q ast.Query, db *storage.Database, opts Opts, emit func(storage.Tuple) bool) (Stats, error) {
	n := q.Atom.Arity()
	bound := make([]bool, n)
	vals := make(storage.Tuple, n)
	known := true
	for i, t := range q.Atom.Args {
		if !t.IsVar() {
			bound[i] = true
			v, ok := db.Syms.Lookup(t.Name)
			if !ok {
				// Constant the database has never seen: no tuple can match,
				// but the fixpoint still runs so Stats mirror the
				// materializing path (which also evaluates, then selects).
				known = false
				break
			}
			vals[i] = v
		}
	}
	filtered := func(t storage.Tuple) bool {
		if !known || len(t) != n {
			return true
		}
		for i := range t {
			if bound[i] && t[i] != vals[i] {
				return true
			}
		}
		return emit(t)
	}
	// The sharded core delegates to the parallel engine for small inputs, so
	// the streaming path gets the same per-database engine choice as the
	// materializing one; shard outputs flow through the same merge-time emit
	// hook, in deterministic barrier order.
	_, st, err := shardedSemiNaive(prog, db, opts, q.Atom.Pred, filtered)
	return st, err
}

// streamNonRecursive is the bounded-union plan's streaming path: expansion
// rules run in order, each fresh (deduplicated) head projection is emitted
// immediately, and a declined emit abandons the remaining expansions.
func streamNonRecursive(sys *ast.RecursiveSystem, rules []ast.Rule, q ast.Query, db *storage.Database, opts Opts, emit func(storage.Tuple) bool) (Stats, error) {
	n := sys.Arity()
	var st Stats
	if q.Atom.Pred != sys.Pred() || q.Atom.Arity() != n {
		return st, fmt.Errorf("eval: query %v does not match predicate %s/%d", q, sys.Pred(), n)
	}
	fix := opts.parent().Child("fixpoint").SetStr("engine", "bounded")
	defer fix.End()
	answers := storage.NewRelation(n)
	sink := newRoundSink(&st, opts, fix)
	defer func() {
		fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived))
		sink.stratumDone(st.Rounds)
		flushRels(opts, &st, answers)
	}()
	rels := DBRels(db)
	slots := make([]int, n)
	fixed := make(storage.Tuple, n)
	buf := make(storage.Tuple, n)
	for _, r := range rules {
		if opts.canceled() {
			return st, fmt.Errorf("bounded union: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()
		var rsp *obs.Span
		if sink.traced() {
			rsp = sink.rule(r.String())
		}
		c, binding, ok, err := bindHead(r, q, db, slots, fixed)
		if err != nil {
			return st, err
		}
		d0 := st.Derived
		stopped := false
		var est int64
		visited0 := st.Visited
		if ok {
			// Same order application as evalNonRecursive: the plan's book was
			// compiled per adornment, matching the constants bindHead pushed.
			var order []int
			if ord := opts.book.orderFor(r); ord != nil && ord.full != nil {
				order = ord.full
				est = int64(ord.fullCost)
			}
			c.EvalWith(rels, binding, order, &st.Visited, func(b []storage.Value) bool {
				for i, s := range slots {
					if s >= 0 {
						buf[i] = b[s]
					} else {
						buf[i] = fixed[i]
					}
				}
				if answers.Insert(buf) {
					st.Derived++
					// Insert copied buf into the arena; emit the stable
					// arena-backed header, not the scratch buffer.
					if !emit(answers.At(answers.Len() - 1)) {
						stopped = true
						return false
					}
				}
				return true
			})
		}
		rsp.SetInt("derived", int64(st.Derived-d0)).End()
		sink.end(RoundStats{Round: st.Rounds, Derived: st.Derived - d0, Estimated: est, Visited: st.Visited - visited0})
		if stopped {
			return st, errStreamStop
		}
	}
	return st, nil
}
