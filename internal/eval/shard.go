package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/storage"
)

// The sharded parallel fixpoint. The parallel engine (parallel.go) splits
// each round's delta into arbitrary contiguous chunks; workers therefore see
// an unpredictable slice of the value domain every round, and nothing can be
// owned by a worker across rounds. This engine instead hash-partitions every
// recursive relation's frontier by its join column into N shards: shard i
// always processes the tuples whose join key hashes to i, and a tuple
// derived in shard i whose key belongs to shard j is routed into j's
// next-round frontier through the single-threaded round barrier (the
// cross-shard delta exchange). Answers are identical to SemiNaive — the
// partition is exhaustive and disjoint, so each round still joins exactly
// the full delta — but work now has an owner, which is the refactor a
// multi-process distributed mode needs: the barrier's routing table is
// precisely the network exchange such a mode would perform.
//
// Shard counts come from chooseShards: explicit Opts.Shards wins, otherwise
// GOMAXPROCS bounded by the input's size and join-column cardinality, with a
// small-input cutoff falling back to the unsharded parallel engine (for a
// frontier of a few thousand tuples the exchange bookkeeping costs more than
// it buys).

const (
	// shardMinTuples is the auto planner's small-input cutoff: below this
	// many relevant input tuples the sharded engine delegates to the plain
	// parallel engine.
	shardMinTuples = 4096
)

// chooseShards picks the shard count for a fixpoint over prog/db. An
// explicit Opts.Shards setting is obeyed (1 = never shard, >= 2 = exactly
// that many shards); 0 is the auto policy: GOMAXPROCS-many shards (or
// Opts.Workers when set) unless the body relations are too small to be
// worth exchanging, capped by the largest body relation's column
// cardinality so shards are never guaranteed empty. When a compiled order
// book is attached, its estimated enumeration cost raises the work estimate
// above the raw input size — a small input whose joins the cost model
// predicts to be expensive is still worth sharding (the estimate only ever
// widens the sharded regime, so bookless behavior is unchanged).
func chooseShards(opts Opts, db *storage.Database, prog *ast.Program) int {
	if opts.Shards == 1 {
		return 1
	}
	if opts.Shards > 1 {
		return opts.Shards
	}
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 2 {
		return 1
	}
	seen := make(map[string]bool)
	total := 0
	var largest *storage.Relation
	for _, r := range prog.Rules {
		for _, a := range r.Body {
			if seen[a.Pred] {
				continue
			}
			seen[a.Pred] = true
			rel := db.Rel(a.Pred)
			if rel == nil {
				continue
			}
			total += rel.Len()
			if largest == nil || rel.Len() > largest.Len() {
				largest = rel
			}
		}
	}
	workEst := total
	if opts.book != nil && opts.book.cost > float64(workEst) {
		if opts.book.cost > 1e9 {
			workEst = 1 << 30
		} else {
			workEst = int(opts.book.cost)
		}
	}
	if workEst < shardMinTuples || largest == nil {
		return 1
	}
	return capShards(n, relCardinality(largest))
}

// relCardinality returns the largest per-column distinct-value count of the
// relation — the fan-out bound on useful shard counts.
func relCardinality(rel *storage.Relation) int {
	card := 0
	for col := 0; col < rel.Arity(); col++ {
		if c := rel.ColCardinality(col); c > card {
			card = c
		}
	}
	return card
}

// capShards bounds the shard count by the join domain's cardinality: with
// fewer distinct keys than shards some shards can never receive a tuple.
func capShards(n, card int) int {
	if card < n {
		n = card
	}
	if n < 2 {
		return 1
	}
	return n
}

// ShardedSemiNaive is ParallelSemiNaive with hash-sharded frontiers and
// cross-shard delta exchange at round barriers. Answers are identical to
// SemiNaive; Stats.Shards reports the shard count and Stats.Exchanged the
// number of tuples routed across shards.
func ShardedSemiNaive(prog *ast.Program, db *storage.Database) (*storage.Database, Stats, error) {
	return ShardedSemiNaiveOpts(prog, db, Opts{})
}

// ShardedSemiNaiveOpts is ShardedSemiNaive with explicit options. When the
// auto policy (or an explicit Opts.Shards of 1) decides against sharding,
// the evaluation runs on the plain parallel engine and Stats.Shards stays 0.
func ShardedSemiNaiveOpts(prog *ast.Program, db *storage.Database, opts Opts) (*storage.Database, Stats, error) {
	return shardedSemiNaive(prog, db, opts, "", nil)
}

// shardedSemiNaive is the sharded core shared by the materializing and
// streaming entry points, with the same emit contract as parallelSemiNaive.
// It delegates to the parallel engine when chooseShards says sharding is not
// worth it, so every auto-path caller can use it unconditionally.
func shardedSemiNaive(prog *ast.Program, db *storage.Database, opts Opts, streamPred string, emit func(storage.Tuple) bool) (*storage.Database, Stats, error) {
	// Compile the order book (when requested and not already attached by a
	// Plan) before the shard decision: chooseShards uses its cost estimate.
	opts = opts.withAutoBook(db.Syms, prog.Rules, db)
	shards := chooseShards(opts, db, prog)
	if shards < 2 {
		return parallelSemiNaive(prog, db, opts, streamPred, emit)
	}
	work, idb, err := prepare(prog, db)
	if err != nil {
		return nil, Stats{}, err
	}
	strata, err := strataOf(prog)
	if err != nil {
		return nil, Stats{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work.BuildIndexes()
	fix := opts.parent().Child("fixpoint").SetStr("engine", "sharded").SetInt("shards", int64(shards))
	defer fix.End()
	st := Stats{Shards: shards}
	if emit != nil {
		stopped := false
		if rel := work.Rel(streamPred); rel != nil {
			rel.Each(func(t storage.Tuple) bool {
				if !emit(t) {
					stopped = true
					return false
				}
				return true
			})
		}
		if stopped {
			flushSharded(opts, &st, work, idb)
			return work, st, errStreamStop
		}
	}
	sink := newRoundSink(&st, opts, fix)
	round := 0
	for si, group := range strata {
		rules, err := compileRules(db.Syms, group, opts.book)
		if err != nil {
			return nil, st, err
		}
		local := make(map[string]bool)
		for _, r := range group {
			local[r.Head.Pred] = true
		}
		r0 := round
		if err := shardedFixpoint(work, rules, local, workers, shards, si, &round, &sink, &st, opts, streamPred, emit); err != nil {
			if err == errStreamStop {
				flushSharded(opts, &st, work, idb)
				return work, st, err
			}
			return nil, st, err
		}
		sink.stratumDone(round - r0)
	}
	fix.SetInt("rounds", int64(st.Rounds)).SetInt("derived", int64(st.Derived)).SetInt("exchanged", int64(st.Exchanged))
	flushSharded(opts, &st, work, idb)
	return work, st, nil
}

// flushSharded is flushDB plus the sharded engine's own counters.
func flushSharded(opts Opts, st *Stats, work *storage.Database, idb map[string]bool) {
	flushDB(opts, st, work, idb)
	reg := opts.registry()
	reg.Counter(mShardedEvals).Inc()
	reg.Counter(mExchanged).Add(int64(st.Exchanged))
}

// shardCols picks, for each of the stratum's local predicates, the column
// its frontier is hash-partitioned by. Candidates are the argument
// positions of the predicate's positive body occurrences whose variable is
// shared with another body literal — frontier join columns, so the tuples a
// join brings together tend to live in the same shard. Among multiple
// candidates the pick minimizes expected skew: the column whose current
// relation statistics show the smallest max-bucket fan-out (a hot key in
// the partition column funnels its whole bucket into one shard and
// serializes the round). Predicates that never occur positively in a body
// (or share no variable) default to column 0. The choice only affects
// locality and exchange volume, never answers: any exhaustive disjoint
// partition of the frontier yields the same fixpoint. work is read for
// statistics only; callers pass it after the seed round so IDB frontiers
// have representative contents.
func shardCols(rules []compiledRule, local map[string]bool, work *storage.Database) map[string]int {
	cand := make(map[string][]int, len(local))
	for i := range rules {
		r := rules[i].rule
		for bi, a := range r.Body {
			if a.Neg || !local[a.Pred] {
				continue
			}
			for ai, t := range a.Args {
				if !t.IsVar() {
					continue
				}
				shared := false
				for bj, b := range r.Body {
					if bj == bi {
						continue
					}
					for _, u := range b.Args {
						if u.IsVar() && u.Name == t.Name {
							shared = true
							break
						}
					}
					if shared {
						break
					}
				}
				if shared {
					dup := false
					for _, c := range cand[a.Pred] {
						if c == ai {
							dup = true
							break
						}
					}
					if !dup {
						cand[a.Pred] = append(cand[a.Pred], ai)
					}
				}
			}
		}
	}
	cols := make(map[string]int, len(local))
	for pred := range local {
		cs := cand[pred]
		if len(cs) == 0 {
			cols[pred] = 0
			continue
		}
		best := cs[0]
		if len(cs) > 1 && work != nil {
			if rel := work.Rel(pred); rel != nil && rel.Len() > 0 {
				bestBucket := -1
				for _, c := range cs {
					b := rel.ColStats(c).MaxBucket
					if bestBucket == -1 || b < bestBucket || (b == bestBucket && c < best) {
						best, bestBucket = c, b
					}
				}
			}
		}
		cols[pred] = best
	}
	return cols
}

// shardedFixpoint saturates one rule group with per-shard delta evaluation:
// each round fans one task per (shard, rule, delta-occurrence) across the
// worker pool, then the single-threaded barrier merges the task buffers in
// deterministic task order and routes every fresh tuple to the shard owning
// its join-column hash — the cross-shard delta exchange. Tuples whose owner
// differs from the shard that derived them are counted into
// Stats.Exchanged.
func shardedFixpoint(work *storage.Database, rules []compiledRule, local map[string]bool, workers, shards, stratum int, round *int, sink *roundSink, st *Stats, opts Opts, streamPred string, emit func(storage.Tuple) bool) error {
	full := DBRels(work)
	cols := shardCols(rules, local, work)
	pool := &relPool{}
	stopped := false

	// next[s][pred] is shard s's frontier for the following round. Frontier
	// tuples alias the head relations' arenas exactly as in the parallel
	// engine: Insert copied them, At returns the arena-backed header.
	merge := func(tasks []parTask, results []parResult, next []map[string][]storage.Tuple) (added, attempted, exchanged int) {
		for i, res := range results {
			attempted += res.attempted
			st.Visited += res.visits
			pred := tasks[i].cr.rule.Head.Pred
			head := work.Rel(pred)
			if !stopped {
				col := cols[pred]
				src := tasks[i].shard - 1 // -1 for the (unsharded) seed round
				res.out.Each(func(t storage.Tuple) bool {
					if head.Insert(t) {
						added++
						nt := head.At(head.Len() - 1)
						if next != nil {
							dest := storage.ShardOf(nt[col], shards)
							next[dest][pred] = append(next[dest][pred], nt)
							if src >= 0 && dest != src {
								exchanged++
							}
						}
						if emit != nil && pred == streamPred && !emit(nt) {
							stopped = true
							return false
						}
					}
					return true
				})
			}
			pool.put(res.out)
			results[i].out = nil
		}
		return added, attempted, exchanged
	}

	// Seed round: rules with no positive local literal run once in full,
	// exactly as in the parallel engine — sharding begins with the first
	// frontier, not before it.
	hasLocal := func(cr *compiledRule) bool {
		for _, a := range cr.rule.Body {
			if !a.Neg && local[a.Pred] {
				return true
			}
		}
		return false
	}
	hasSeed := false
	for i := range rules {
		if !hasLocal(&rules[i]) {
			hasSeed = true
			break
		}
	}
	if hasSeed {
		if opts.canceled() {
			return fmt.Errorf("sharded fixpoint: %w", ErrCanceled)
		}
		*round++
		st.Rounds++
		start := time.Now()
		sink.begin()
		var seedTasks []parTask
		var est int64
		for i := range rules {
			cr := &rules[i]
			if hasLocal(cr) {
				continue
			}
			if cr.ord != nil && cr.ord.full != nil {
				est += int64(cr.ord.fullCost)
			}
			seedTasks = append(seedTasks, parTask{cr: cr, seedIdx: -1, head: work.Rel(cr.rule.Head.Pred), span: sink.span})
		}
		visited0 := st.Visited
		results, busy, err := runTasks(seedTasks, workers, full, pool)
		if err != nil {
			return err
		}
		added, attempted, _ := merge(seedTasks, results, nil)
		st.Facts += attempted
		st.Derived += added
		sink.end(RoundStats{
			Round: *round, Stratum: stratum, Tasks: len(seedTasks),
			Derived: added, Attempted: attempted, Workers: workers, Shards: shards,
			Duration: time.Since(start), Busy: busy,
			Estimated: est, Visited: st.Visited - visited0,
		})
		if stopped {
			return errStreamStop
		}
	}

	// Initial frontiers: everything in the head relations after the seed
	// round, hash-partitioned by each predicate's join column.
	fr := make([]map[string][]storage.Tuple, shards)
	for s := range fr {
		fr[s] = make(map[string][]storage.Tuple)
	}
	for pred := range local {
		for s, part := range work.Rel(pred).PartitionByHash(cols[pred], shards) {
			if len(part) > 0 {
				fr[s][pred] = part
			}
		}
	}

	for {
		if opts.canceled() {
			return fmt.Errorf("sharded fixpoint: %w", ErrCanceled)
		}
		*round++
		st.Rounds++
		start := time.Now()
		sink.begin()
		deltaSize := 0
		var tasks []parTask
		var est int64
		for s := 0; s < shards; s++ {
			for i := range rules {
				cr := &rules[i]
				for bi, a := range cr.rule.Body {
					if a.Neg || !local[a.Pred] {
						continue
					}
					d := fr[s][a.Pred]
					if len(d) == 0 {
						continue
					}
					if _, perTuple := cr.seededOrder(bi); perTuple > 0 {
						est += int64(perTuple * float64(len(d)))
					}
					tasks = append(tasks, parTask{cr: cr, seedIdx: bi, chunk: d, head: work.Rel(cr.rule.Head.Pred), span: sink.span, shard: s + 1})
				}
			}
			for _, d := range fr[s] {
				deltaSize += len(d)
			}
		}
		next := make([]map[string][]storage.Tuple, shards)
		for s := range next {
			next[s] = make(map[string][]storage.Tuple)
		}
		added, attempted, exchanged := 0, 0, 0
		var busy time.Duration
		visited0 := st.Visited
		if len(tasks) > 0 {
			results, b, err := runTasks(tasks, workers, full, pool)
			if err != nil {
				return err
			}
			busy = b
			added, attempted, exchanged = merge(tasks, results, next)
		}
		st.Facts += attempted
		st.Derived += added
		st.Exchanged += exchanged
		sink.end(RoundStats{
			Round: *round, Stratum: stratum, Tasks: len(tasks), Delta: deltaSize,
			Derived: added, Attempted: attempted, Workers: workers,
			Shards: shards, Exchanged: exchanged,
			Duration: time.Since(start), Busy: busy,
			Estimated: est, Visited: st.Visited - visited0,
		})
		if stopped {
			return errStreamStop
		}
		if added == 0 {
			return nil
		}
		fr = next
	}
}

// chooseShardsTC is the auto policy for the transitive-closure compose
// kernel: the relevant input is the edge relation alone, and the useful
// shard bound is its endpoint cardinality.
func chooseShardsTC(opts Opts, edges *storage.Relation) int {
	if opts.Shards == 1 {
		return 1
	}
	if opts.Shards > 1 {
		return opts.Shards
	}
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 2 || edges == nil || edges.Len() < shardMinTuples {
		return 1
	}
	return capShards(n, relCardinality(edges))
}

// shardedCompose is composeClosure with the delta hash-partitioned by its
// join endpoint — d[0] for the right-linear orientation (joined against
// edge column 1), d[1] for the left-linear one — across per-shard parallel
// compose tasks. Each task joins its shard of the delta against the shared
// edge index into a private pooled buffer, prefiltered against the
// round-start answers (reads only: nothing mutates answers during the
// parallel phase). The barrier then merges buffers in shard order and
// routes each fresh closure tuple to the shard owning its join key.
func shardedCompose(edges, exitRel *storage.Relation, rightLinear bool, answers *storage.Relation, shards int, st *Stats, sink *roundSink, opts Opts) error {
	joinCol := 0
	if !rightLinear {
		joinCol = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Seed: the exit relation, single-threaded (it is one pass of inserts),
	// then hash-partitioned into the first per-shard frontiers.
	sink.begin()
	delta := make([]storage.Tuple, 0, exitRel.Len())
	exitRel.Each(func(t storage.Tuple) bool {
		st.Facts++
		if answers.Insert(t) {
			st.Derived++
			delta = append(delta, answers.At(answers.Len()-1))
		}
		return true
	})
	if len(delta) > 0 {
		st.Rounds++
	}
	sink.end(RoundStats{Round: st.Rounds, Derived: len(delta), Attempted: exitRel.Len(), Shards: shards})
	if edges == nil {
		return nil
	}
	// Publish the edge index before workers share it: probeIndex may build
	// lazily, which must not happen concurrently.
	edges.BuildIndexes()

	fr := storage.PartitionTuplesByHash(delta, joinCol, shards)
	pool := &relPool{}
	deltaLen := len(delta)
	for deltaLen > 0 {
		if opts.canceled() {
			return fmt.Errorf("tc-frontier sharded compose: %w", ErrCanceled)
		}
		st.Rounds++
		sink.begin()

		outs, attempted, busy, err := runComposeTasks(edges, rightLinear, answers, fr, workers, pool)
		if err != nil {
			return err
		}

		// Barrier: merge in shard order, route fresh tuples to their owner.
		next := make([][]storage.Tuple, shards)
		derived, exchanged := 0, 0
		for s, out := range outs {
			if out == nil {
				continue
			}
			out.Each(func(t storage.Tuple) bool {
				if answers.Insert(t) {
					derived++
					nt := answers.At(answers.Len() - 1)
					dest := storage.ShardOf(nt[joinCol], shards)
					next[dest] = append(next[dest], nt)
					if dest != s {
						exchanged++
					}
				}
				return true
			})
			pool.put(out)
			outs[s] = nil
		}
		st.Facts += attempted
		st.Derived += derived
		st.Exchanged += exchanged
		sink.end(RoundStats{
			Round: st.Rounds, Tasks: shards, Delta: deltaLen, Derived: derived,
			Attempted: attempted, Workers: workers, Shards: shards,
			Exchanged: exchanged, Busy: busy,
		})
		fr = next
		deltaLen = 0
		for _, d := range fr {
			deltaLen += len(d)
		}
	}
	return nil
}

// runComposeTasks fans the per-shard compose joins across the worker pool:
// task s joins fr[s] against the published edge index into a pooled private
// buffer. Panics are converted to errors as in runTasks; all workers are
// joined before return.
func runComposeTasks(edges *storage.Relation, rightLinear bool, answers *storage.Relation, fr [][]storage.Tuple, workers int, pool *relPool) ([]*storage.Relation, int, time.Duration, error) {
	shards := len(fr)
	outs := make([]*storage.Relation, shards)
	attempts := make([]int, shards)
	busies := make([]time.Duration, shards)
	if workers > shards {
		workers = shards
	}
	taskCh := make(chan int)
	errCh := make(chan error, 1)
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
		abortOnce.Do(func() { close(abort) })
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nt := make(storage.Tuple, 2)
			for {
				select {
				case <-abort:
					return
				case s, ok := <-taskCh:
					if !ok {
						return
					}
					if err := runComposeTask(edges, rightLinear, answers, fr[s], nt, pool, &outs[s], &attempts[s], &busies[s]); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
feed:
	for s := range fr {
		if len(fr[s]) == 0 {
			continue
		}
		select {
		case taskCh <- s:
		case <-abort:
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, 0, 0, err
	default:
	}
	attempted := 0
	var busy time.Duration
	for s := range fr {
		attempted += attempts[s]
		busy += busies[s]
	}
	return outs, attempted, busy, nil
}

// runComposeTask joins one shard's delta against the edge index into a
// pooled private buffer, prefiltering tuples already in the answers
// relation (frozen for the round; reads are safe).
func runComposeTask(edges *storage.Relation, rightLinear bool, answers *storage.Relation, delta []storage.Tuple, nt storage.Tuple, pool *relPool, out **storage.Relation, attempted *int, busy *time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("eval: sharded compose task: %v", r)
		}
	}()
	start := time.Now()
	buf := pool.get(2)
	n := 0
	for _, d := range delta {
		if rightLinear {
			edges.EachCol(1, d[0], func(e storage.Tuple) bool {
				n++
				nt[0], nt[1] = e[0], d[1]
				if !answers.Contains(nt) {
					buf.Insert(nt)
				}
				return true
			})
		} else {
			edges.EachCol(0, d[1], func(e storage.Tuple) bool {
				n++
				nt[0], nt[1] = d[0], e[1]
				if !answers.Contains(nt) {
					buf.Insert(nt)
				}
				return true
			})
		}
	}
	*out = buf
	*attempted = n
	*busy = time.Since(start)
	return nil
}
