// Package adorn implements binding patterns (adornments) and the paper's
// determined-variable analysis: a variable is determined for a query if its
// value is given in the query or derivable from a query constant by
// selection and join operations over only the non-recursive predicates
// (Henschen & Naqvi 1984, as used in §3 of the paper). The per-expansion
// simulation of determined positions is the paper's "semantic view" of
// stability, used to verify Theorem 1 against the syntactic cycle test.
package adorn

import (
	"strings"

	"repro/internal/ast"
)

// Adornment marks each argument position of the recursive predicate as
// bound (determined, the paper's "d") or free ("v").
type Adornment []bool

// FromQuery derives the adornment of a query atom: constant arguments are
// bound.
func FromQuery(q ast.Query) Adornment {
	a := make(Adornment, len(q.Atom.Args))
	for i, t := range q.Atom.Args {
		a[i] = !t.IsVar()
	}
	return a
}

// String renders the adornment in the paper's d/v notation, e.g. "dvv".
func (a Adornment) String() string {
	var b strings.Builder
	for _, bound := range a {
		if bound {
			b.WriteByte('d')
		} else {
			b.WriteByte('v')
		}
	}
	return b.String()
}

// BoundCount returns the number of bound positions.
func (a Adornment) BoundCount() int {
	n := 0
	for _, b := range a {
		if b {
			n++
		}
	}
	return n
}

// Equal reports position-wise equality.
func (a Adornment) Equal(b Adornment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone copies the adornment.
func (a Adornment) Clone() Adornment {
	out := make(Adornment, len(a))
	copy(out, a)
	return out
}

// AllAdornments enumerates all 2^n adornments of arity n in binary order.
func AllAdornments(n int) []Adornment {
	out := make([]Adornment, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		a := make(Adornment, n)
		for i := 0; i < n; i++ {
			a[i] = m&(1<<uint(i)) != 0
		}
		out = append(out, a)
	}
	return out
}

// Closure computes the determined-variable closure: starting from the
// determined set, repeatedly mark every variable of a non-recursive literal
// one of whose variables is determined ("if x is determined and L(..x..y..)
// is non-recursive, then y is also determined").
func Closure(nonRecursive []ast.Atom, determined map[string]bool) {
	for changed := true; changed; {
		changed = false
		for _, atom := range nonRecursive {
			hit := false
			for _, t := range atom.Args {
				if t.IsVar() && determined[t.Name] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, t := range atom.Args {
				if t.IsVar() && !determined[t.Name] {
					determined[t.Name] = true
					changed = true
				}
			}
		}
	}
}

// Step propagates an adornment through one expansion of the recursive rule:
// the bound head positions determine their variables, the closure runs over
// the non-recursive literals, and the result is the adornment of the
// recursive literal in the antecedent.
func Step(rule ast.Rule, a Adornment) Adornment {
	recAtom, _ := rule.RecursiveAtom()
	determined := make(map[string]bool)
	for i, t := range rule.Head.Args {
		if a[i] {
			determined[t.Name] = true
		}
	}
	Closure(rule.NonRecursiveAtoms(), determined)
	out := make(Adornment, len(recAtom.Args))
	for i, t := range recAtom.Args {
		out[i] = determined[t.Name]
	}
	return out
}

// Pattern returns the sequence of adornments of the recursive literal over
// the first k expansions: element 0 is the query adornment itself and
// element i (i ≥ 1) the adornment after i propagation steps. This is the
// paper's query-form pattern, e.g. (s12) with p(d,v,v): dvv, ddv, ddv, …
func Pattern(rule ast.Rule, a Adornment, k int) []Adornment {
	out := make([]Adornment, 0, k+1)
	cur := a.Clone()
	out = append(out, cur)
	for i := 0; i < k; i++ {
		cur = Step(rule, cur)
		out = append(out, cur)
	}
	return out
}

// PatternPeriod finds the smallest (start, period) such that the adornment
// sequence of the rule under query adornment a satisfies
// pattern[i+period] == pattern[i] for all i ≥ start. Because the adornment
// space is finite (2^n) the sequence always becomes eventually periodic.
func PatternPeriod(rule ast.Rule, a Adornment) (start, period int) {
	seen := make(map[string]int)
	cur := a.Clone()
	for i := 0; ; i++ {
		k := cur.String()
		if j, ok := seen[k]; ok {
			return j, i - j
		}
		seen[k] = i
		cur = Step(rule, cur)
	}
}

// SemanticallyStable reports whether the rule is strongly stable in the
// paper's semantic sense: for every query form, the determined positions of
// the recursive predicate in the consequent and in the antecedent coincide
// at every expansion. By Theorem 1 this holds iff the I-graph consists of
// disjoint unit cycles.
func SemanticallyStable(rule ast.Rule) bool {
	n := rule.Head.Arity()
	for _, a := range AllAdornments(n) {
		if !Step(rule, a).Equal(a) {
			return false
		}
	}
	return true
}

// EventuallyStableFor reports whether, for the given query adornment, the
// pattern eventually becomes constant (period 1), and if so from which
// expansion. Statement (s12) is eventually stable for p(d,v,v) from the
// first expansion although it is not strongly stable.
func EventuallyStableFor(rule ast.Rule, a Adornment) (stableFrom int, ok bool) {
	start, period := PatternPeriod(rule, a)
	if period == 1 {
		return start, true
	}
	return 0, false
}
