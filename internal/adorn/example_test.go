package adorn_test

import (
	"fmt"

	"repro/internal/adorn"
	"repro/internal/parser"
)

// ExamplePattern traces the paper's §9 example: for statement (s12) under
// the query form p(d,v,v), the determined positions follow
// dvv → ddv → ddv → … (stable from the first expansion on).
func ExamplePattern() {
	rule := parser.MustParseRule("p(X, Y, Z) :- a(X, U), b(Y, V), c(U, V), d(W, Z), p(U, V, W).")
	for _, a := range adorn.Pattern(rule, adorn.Adornment{true, false, false}, 3) {
		fmt.Println(a)
	}
	// Output:
	// dvv
	// ddv
	// ddv
	// ddv
}

// ExampleSemanticallyStable shows the semantic side of Theorem 1.
func ExampleSemanticallyStable() {
	stable := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	dependent := parser.MustParseRule("p(X, Y) :- a(X, X1), b(Y, Y1), c(X1, Y1), p(X1, Y1).")
	fmt.Println(adorn.SemanticallyStable(stable))
	fmt.Println(adorn.SemanticallyStable(dependent))
	// Output:
	// true
	// false
}
