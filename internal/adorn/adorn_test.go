package adorn

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/paper"
	"repro/internal/parser"
)

func TestFromQueryAndString(t *testing.T) {
	q, err := parser.ParseQuery("?- p(a, Y, b).")
	if err != nil {
		t.Fatal(err)
	}
	a := FromQuery(q)
	if a.String() != "dvd" {
		t.Errorf("adornment = %s, want dvd", a)
	}
	if a.BoundCount() != 2 {
		t.Errorf("bound count = %d", a.BoundCount())
	}
}

func TestAllAdornments(t *testing.T) {
	all := AllAdornments(3)
	if len(all) != 8 {
		t.Fatalf("adornments = %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if seen[a.String()] {
			t.Errorf("duplicate %s", a)
		}
		seen[a.String()] = true
	}
}

func TestClosure(t *testing.T) {
	rule := parser.MustParseRule("p(X, Y) :- a(X, X1), b(Y, Y1), c(X1, Y1), p(X1, Y1).")
	det := map[string]bool{"X": true}
	Closure(rule.NonRecursiveAtoms(), det)
	// X determines X1 (a), X1 determines Y1 (c), Y1 determines Y (b).
	for _, v := range []string{"X", "X1", "Y1", "Y"} {
		if !det[v] {
			t.Errorf("%s not determined", v)
		}
	}
}

func TestStepOnStableFormula(t *testing.T) {
	rule := paper.S3.Rule // three disjoint unit cycles
	for _, a := range AllAdornments(3) {
		if got := Step(rule, a); !got.Equal(a) {
			t.Errorf("stable formula: Step(%s) = %s", a, got)
		}
	}
}

// TestS12Pattern reproduces the paper's §9 trace for statement (s12):
// incoming query p(d,v,v); first expansion p(d,d,v); all further
// expansions p(d,d,v).
func TestS12Pattern(t *testing.T) {
	rule := paper.S12.Rule
	a := Adornment{true, false, false}
	pat := Pattern(rule, a, 4)
	want := []string{"dvv", "ddv", "ddv", "ddv", "ddv"}
	for i, w := range want {
		if pat[i].String() != w {
			t.Errorf("pattern[%d] = %s, want %s", i, pat[i], w)
		}
	}
	from, ok := EventuallyStableFor(rule, a)
	if !ok || from != 1 {
		t.Errorf("eventually stable from %d (ok=%v), want 1", from, ok)
	}
	// For p(v,v,d) the paper says the formula is stable from the beginning.
	a2 := Adornment{false, false, true}
	from2, ok2 := EventuallyStableFor(rule, a2)
	if !ok2 || from2 != 0 {
		t.Errorf("p(v,v,d): stable from %d (ok=%v), want 0", from2, ok2)
	}
}

func TestPatternPeriodPermutational(t *testing.T) {
	// (s5) p(x,y,z) :- p(y,z,x): the adornment rotates with period 3.
	rule := paper.S5.Rule
	a := Adornment{true, false, false}
	start, period := PatternPeriod(rule, a)
	if start != 0 || period != 3 {
		t.Errorf("(start, period) = (%d, %d), want (0, 3)", start, period)
	}
	// Fully bound and fully free adornments are fixpoints.
	for _, fix := range []Adornment{{true, true, true}, {false, false, false}} {
		if _, period := PatternPeriod(rule, fix); period != 1 {
			t.Errorf("%s: period = %d, want 1", fix, period)
		}
	}
}

// TestTheorem1SemanticMatchesSyntactic verifies Theorem 1 on the paper
// corpus: strong stability (the semantic, determined-variable definition)
// holds exactly when the I-graph consists of disjoint unit cycles (the
// syntactic classification).
func TestTheorem1SemanticMatchesSyntactic(t *testing.T) {
	for _, s := range paper.All() {
		res := classify.MustClassify(s.Rule)
		semantic := SemanticallyStable(s.Rule)
		if semantic != res.Stable {
			t.Errorf("%s: semantic stable = %v, syntactic = %v", s.ID, semantic, res.Stable)
		}
	}
}

// TestTheorem1OnRandomRules is the property-based version of Theorem 1 over
// randomly generated admissible rules.
func TestTheorem1OnRandomRules(t *testing.T) {
	rng := rand.New(rand.NewSource(1988))
	for trial := 0; trial < 400; trial++ {
		rule := dlgen.RandomRule(rng, dlgen.Config{})
		res, err := classify.Classify(rule)
		if err != nil {
			t.Fatalf("generated rule invalid: %v: %v", rule, err)
		}
		semantic := SemanticallyStable(rule)
		if semantic != res.Stable {
			t.Fatalf("Theorem 1 violated by %v:\nsemantic=%v syntactic=%v\n%s",
				rule, semantic, res.Stable, res.Explain())
		}
	}
}

// TestStabilizationPeriodMatchesPatterns verifies Theorems 2/4 semantically:
// for transformable formulas, every adornment's pattern is periodic with a
// period dividing the LCM of the cycle weights.
func TestStabilizationPeriodMatchesPatterns(t *testing.T) {
	for _, s := range paper.All() {
		res := classify.MustClassify(s.Rule)
		if !res.Transformable {
			continue
		}
		L := res.StabilizationPeriod
		n := s.Rule.Head.Arity()
		for _, a := range AllAdornments(n) {
			start, period := PatternPeriod(s.Rule, a)
			if start != 0 {
				t.Errorf("%s %s: pattern not purely periodic (start %d)", s.ID, a, start)
			}
			if L%period != 0 {
				t.Errorf("%s %s: period %d does not divide L=%d", s.ID, a, period, L)
			}
		}
	}
}

func TestAdornmentCloneIndependence(t *testing.T) {
	a := Adornment{true, false}
	b := a.Clone()
	b[0] = false
	if !a[0] {
		t.Error("clone shares storage")
	}
	if a.Equal(Adornment{true}) {
		t.Error("length mismatch equal")
	}
}

func TestStepUnaryDetermination(t *testing.T) {
	// A unary literal determines nothing new but is determined by its var.
	rule := parser.MustParseRule("p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).")
	got := Step(rule, Adornment{true, false})
	if got.String() != "vd" {
		t.Errorf("Step(dv) = %s, want vd (X determines Y1 via c; X1 fresh)", got)
	}
}

var _ = ast.V // import anchor
