package igraph_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/dlgen"
	"repro/internal/graph"
	"repro/internal/igraph"
	"repro/internal/rewrite"
)

// undirectedMultiset renders the undirected edges of a graph as a sorted
// multiset of "label:endpoint-pair" strings.
func undirectedMultiset(g *graph.Graph) []string {
	var out []string
	for _, e := range g.UndirectedEdges() {
		a, b := e.From, e.To
		if b < a {
			a, b = b, a
		}
		out = append(out, e.Label+":"+a+"-"+b)
	}
	sort.Strings(out)
	return out
}

// TestExpansionMatchesResolutionGraph is the Figure 2(c)/2(d) consistency
// property: the k-th resolution graph and the I-graph of the k-th expansion
// (the expansion considered as a formula by itself) share exactly the same
// undirected structure; they differ only in the directed edges (per-copy
// arrows vs head-to-antecedent arrows).
func TestExpansionMatchesResolutionGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 3})
		ig, err := igraph.Build(sys.Recursive)
		if err != nil {
			t.Fatalf("%v: %v", sys.Recursive, err)
		}
		for k := 1; k <= 3; k++ {
			res := igraph.ResolutionGraph(ig, k)
			expRule, err := rewrite.Expand(sys, k)
			if err != nil {
				t.Fatalf("expansion %d of %v: %v", k, sys.Recursive, err)
			}
			expIG, err := igraph.Build(expRule)
			if err != nil {
				t.Fatalf("expansion %d of %v invalid: %v", k, sys.Recursive, err)
			}
			a := undirectedMultiset(res)
			b := undirectedMultiset(expIG.G)
			if strings.Join(a, ";") != strings.Join(b, ";") {
				t.Fatalf("undirected structure differs at k=%d for %v:\nresolution: %v\nexpansion:  %v",
					k, sys.Recursive, a, b)
			}
			// Directed edges: k*n in the resolution graph, n in the
			// expansion's own I-graph.
			n := sys.Arity()
			if got := len(res.DirectedEdges()); got != k*n {
				t.Fatalf("resolution graph arrows = %d, want %d", got, k*n)
			}
			if got := len(expIG.G.DirectedEdges()); got != n {
				t.Fatalf("expansion I-graph arrows = %d, want %d", got, n)
			}
		}
	}
}

// TestResolutionFrontierMatchesExpansionRecAtom: the resolution frontier
// variables equal the expansion's recursive literal arguments.
func TestResolutionFrontierMatchesExpansionRecAtom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 3, MaxAtoms: 2})
		ig, err := igraph.Build(sys.Recursive)
		if err != nil {
			t.Fatal(err)
		}
		r := igraph.NewResolution(ig)
		for k := 2; k <= 4; k++ {
			r.Step()
			exp, err := rewrite.Expand(sys, k)
			if err != nil {
				t.Fatal(err)
			}
			rec, _ := exp.RecursiveAtom()
			for i, tm := range rec.Args {
				if r.Frontier[i] != tm.Name {
					t.Fatalf("k=%d pos %d: frontier %s vs expansion %s (%v)",
						k, i, r.Frontier[i], tm.Name, sys.Recursive)
				}
			}
		}
	}
}

// TestPositionMapPeriodicity: for transformable formulas the position map
// is a permutation that returns to the identity at the stabilization
// period (Theorems 2 and 4 in graph form).
func TestPositionMapPeriodicity(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	checked := 0
	for trial := 0; trial < 400 && checked < 40; trial++ {
		sys := dlgen.RandomSystem(rng, dlgen.Config{MaxArity: 4, MaxAtoms: 3})
		ig, err := igraph.Build(sys.Recursive)
		if err != nil {
			t.Fatal(err)
		}
		res := classify.MustClassify(sys.Recursive)
		if !res.Transformable || res.StabilizationPeriod > 6 {
			continue
		}
		checked++
		r := igraph.NewResolution(ig)
		r.Expand(res.StabilizationPeriod)
		for i, j := range r.PositionMap() {
			if i != j {
				t.Fatalf("%v: position %d -> %d after period %d",
					sys.Recursive, i, j, res.StabilizationPeriod)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d transformable systems seen", checked)
	}
}
