// Package igraph builds the paper's I-graphs and resolution graphs from
// linear recursive rules.
//
// The I-graph of a rule P(x…) :- A(u,v) ∧ … ∧ P(y…) ∧ … is the hybrid graph
// G = (V, Eu, Ed, W, L) with one vertex per variable, an undirected weight-0
// edge labeled A between every pair of variables co-occurring in a
// non-recursive predicate A, and a directed weight-1 edge labeled P from
// each consequent variable of P to the antecedent variable in the same
// position (§2).
package igraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/graph"
)

// IGraph couples a validated linear recursive rule with its I-graph.
type IGraph struct {
	Rule ast.Rule
	G    *graph.Graph
	// HeadVars and BodyVars are the variables of the consequent and
	// antecedent occurrences of the recursive predicate, by position.
	HeadVars []string
	BodyVars []string
}

// Build validates the rule against the paper's restrictions and constructs
// its I-graph.
func Build(rule ast.Rule) (*IGraph, error) {
	if err := ast.ValidateRecursive(rule); err != nil {
		return nil, err
	}
	g := graph.New()
	recAtom, _ := rule.RecursiveAtom()
	ig := &IGraph{Rule: rule.Clone(), G: g}
	for _, t := range rule.Head.Args {
		ig.HeadVars = append(ig.HeadVars, t.Name)
	}
	for _, t := range recAtom.Args {
		ig.BodyVars = append(ig.BodyVars, t.Name)
	}
	addRuleEdges(g, rule)
	return ig, nil
}

// MustBuild is Build that panics on error; for fixtures and tests.
func MustBuild(rule ast.Rule) *IGraph {
	ig, err := Build(rule)
	if err != nil {
		panic(err)
	}
	return ig
}

// addRuleEdges adds the I-graph edges of one rule instance into g: the
// directed position edges labeled with the recursive predicate and the
// pairwise undirected edges of every non-recursive literal.
func addRuleEdges(g *graph.Graph, rule ast.Rule) {
	recAtom, _ := rule.RecursiveAtom()
	for _, a := range rule.NonRecursiveAtoms() {
		vars := a.Vars()
		for _, v := range vars {
			g.AddVertex(v)
		}
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				g.AddUndirected(vars[i], vars[j], a.Pred)
			}
		}
	}
	for i := range rule.Head.Args {
		g.AddDirected(rule.Head.Args[i].Name, recAtom.Args[i].Name, rule.Head.Pred)
	}
}

// Dimension returns the paper's D: the arity of the recursive predicate.
func (ig *IGraph) Dimension() int { return len(ig.HeadVars) }

// String renders the I-graph deterministically.
func (ig *IGraph) String() string { return ig.G.String() }

// DOT renders the I-graph in Graphviz format: solid arrows for directed
// edges, dashed lines for undirected edges, edge labels carrying predicates.
func (ig *IGraph) DOT(name string) string { return DOT(ig.G, name) }

// DOT renders any hybrid graph in Graphviz format.
func DOT(g *graph.Graph, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	vs := g.Vertices()
	sort.Strings(vs)
	for _, v := range vs {
		fmt.Fprintf(&b, "  %q;\n", v)
	}
	for _, e := range g.Edges() {
		if e.Kind == graph.Directed {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Label)
		} else {
			fmt.Fprintf(&b, "  %q -> %q [dir=none, style=dashed, label=%q];\n", e.From, e.To, e.Label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// RenameVar returns the fresh name used for variable v introduced at
// expansion k (k ≥ 2): "v#k". Expansion 1 keeps the original names.
func RenameVar(v string, k int) string {
	if k <= 1 {
		return v
	}
	return fmt.Sprintf("%s#%d", v, k)
}

// Resolution incrementally builds the k-th resolution graphs of a rule
// (Definition, §2): G₁ is the I-graph; G_k is obtained from G_{k−1} by
// renaming the rule's variables, unifying the renamed head with the
// antecedent recursive occurrence of G_{k−1}, and appending the renamed
// I-graph. All arrows of earlier I-graphs are retained.
type Resolution struct {
	ig *IGraph
	// G is the current resolution graph G_k.
	G *graph.Graph
	// K is the number of expansions applied so far (G = G_K); starts at 1.
	K int
	// Frontier holds, by position, the variables of the recursive
	// predicate's antecedent occurrence in the current expansion.
	Frontier []string
	// FrontierHistory[i] is the frontier after expansion i+1 (so
	// FrontierHistory[0] is the I-graph's antecedent variables).
	FrontierHistory [][]string
}

// NewResolution starts a resolution-graph derivation at G₁ = the I-graph.
func NewResolution(ig *IGraph) *Resolution {
	g := graph.New()
	addRuleEdges(g, ig.Rule)
	frontier := make([]string, len(ig.BodyVars))
	copy(frontier, ig.BodyVars)
	return &Resolution{
		ig:              ig,
		G:               g,
		K:               1,
		Frontier:        frontier,
		FrontierHistory: [][]string{append([]string(nil), frontier...)},
	}
}

// Step performs one expansion: it forms the (K+1)-st I-graph by renumbering
// variables, unifies it with the current antecedent occurrence, and appends
// it to the resolution graph.
func (r *Resolution) Step() {
	r.K++
	sub := make(map[string]ast.Term)
	head := r.ig.Rule.Head
	for i, t := range head.Args {
		sub[t.Name] = ast.V(r.Frontier[i])
	}
	for _, v := range r.ig.Rule.Vars() {
		if _, ok := sub[v]; !ok {
			sub[v] = ast.V(RenameVar(v, r.K))
		}
	}
	renamed := r.ig.Rule.Rename(sub)
	addRuleEdges(r.G, renamed)
	recAtom, _ := renamed.RecursiveAtom()
	frontier := make([]string, len(recAtom.Args))
	for i, t := range recAtom.Args {
		frontier[i] = t.Name
	}
	r.Frontier = frontier
	r.FrontierHistory = append(r.FrontierHistory, append([]string(nil), frontier...))
}

// Expand advances the resolution graph to G_k (k ≥ current K).
func (r *Resolution) Expand(k int) {
	for r.K < k {
		r.Step()
	}
}

// ResolutionGraph returns the k-th resolution graph of the rule.
func ResolutionGraph(ig *IGraph, k int) *graph.Graph {
	r := NewResolution(ig)
	r.Expand(k)
	return r.G
}

// PositionMap returns, for the k-th resolution graph, the mapping from head
// position i to the frontier position j whose variable is connected to the
// original head variable in position i by undirected edges alone — the
// paper's "determined variable" flow (a query constant at head position i
// determines frontier position j by selections and joins over the
// non-recursive predicates). For a formula whose I-graph consists of
// disjoint one-directional cycles this is the k-th power of the cycle
// permutation, returning to the identity after lcm-many expansions
// (Theorem 2's cyclic behaviour). Positions connected to no frontier
// variable map to −1.
func (r *Resolution) PositionMap() []int {
	out := make([]int, len(r.ig.HeadVars))
	for i := range out {
		out[i] = -1
	}
	adj := make(map[string][]string)
	for _, e := range r.G.Edges() {
		if e.Kind == graph.Undirected {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	frontierIdx := make(map[string]int)
	for j, v := range r.Frontier {
		frontierIdx[v] = j
	}
	for i, hv := range r.ig.HeadVars {
		visited := map[string]bool{hv: true}
		queue := []string{hv}
		for len(queue) > 0 && out[i] == -1 {
			v := queue[0]
			queue = queue[1:]
			if j, ok := frontierIdx[v]; ok {
				out[i] = j
				break
			}
			for _, n := range adj[v] {
				if !visited[n] {
					visited[n] = true
					queue = append(queue, n)
				}
			}
		}
	}
	return out
}

// DirectedPathWeight returns the weight of the directed-edge-only path from
// a to b in the resolution graph, or 0,false when none exists. Used to check
// facts such as "the weight from x to z₁ is two" in Figure 2(c).
func DirectedPathWeight(g *graph.Graph, a, b string) (int, bool) {
	type state struct {
		v string
		w int
	}
	next := make(map[string][]string)
	for _, e := range g.Edges() {
		if e.Kind == graph.Directed {
			next[e.From] = append(next[e.From], e.To)
		}
	}
	visited := map[string]bool{a: true}
	queue := []state{{a, 0}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.v == b {
			return s.w, true
		}
		for _, n := range next[s.v] {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, state{n, s.w + 1})
			}
		}
	}
	return 0, false
}
