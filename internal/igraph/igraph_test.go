package igraph

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/paper"
	"repro/internal/parser"
)

func build(t *testing.T, src string) *IGraph {
	t.Helper()
	rule, err := parser.ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := Build(rule)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

// TestFigure1a reproduces Figure 1(a): the I-graph of statement (s1a)
// p(x,y) :- a(x,z) ∧ p(z,y).
func TestFigure1a(t *testing.T) {
	ig := MustBuild(paper.S1a.Rule)
	g := ig.G
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3 (x, y, z)", g.NumVertices())
	}
	wantEdges := map[string]bool{
		"X -- Z [a]": true, // undirected A edge
		"X -> Z [p]": true, // directed position-1 edge
		"Y -> Y [p]": true, // directed position-2 self-loop
	}
	for _, e := range g.Edges() {
		if !wantEdges[e.String()] {
			t.Errorf("unexpected edge %v", e)
		}
		delete(wantEdges, e.String())
	}
	for e := range wantEdges {
		t.Errorf("missing edge %s", e)
	}
	if ig.Dimension() != 2 {
		t.Errorf("dimension = %d", ig.Dimension())
	}
}

// TestFigure1b reproduces Figure 1(b): the I-graph of statement (s1b)
// p(x,y,z) :- a(x,y) ∧ p(u,z,v) ∧ b(u,v).
func TestFigure1b(t *testing.T) {
	ig := MustBuild(paper.S1b.Rule)
	g := ig.G
	if g.NumVertices() != 5 {
		t.Fatalf("vertices = %d, want 5 (x, y, z, u, v)", g.NumVertices())
	}
	want := map[string]bool{
		"X -- Y [a]": true,
		"U -- V [b]": true,
		"X -> U [p]": true,
		"Y -> Z [p]": true,
		"Z -> V [p]": true,
	}
	for _, e := range g.Edges() {
		if !want[e.String()] {
			t.Errorf("unexpected edge %v", e)
		}
		delete(want, e.String())
	}
	for e := range want {
		t.Errorf("missing edge %s", e)
	}
}

// TestFigure2ResolutionGraph reproduces Figure 2: for statement (s2a)
// p(x,y) :- a(x,z) ∧ p(z,u) ∧ b(u,y), the second resolution graph carries a
// directed path of weight 2 from x to the renamed z (the paper's z₁).
func TestFigure2ResolutionGraph(t *testing.T) {
	ig := MustBuild(paper.S2a.Rule)
	r := NewResolution(ig)
	if r.K != 1 {
		t.Fatalf("initial K = %d", r.K)
	}
	if got := strings.Join(r.Frontier, ","); got != "Z,U" {
		t.Fatalf("G1 frontier = %s, want Z,U", got)
	}
	r.Step()
	if r.K != 2 {
		t.Fatalf("K after step = %d", r.K)
	}
	// The paper's z₁, u₁ are renamed Z#2, U#2 here.
	if got := strings.Join(r.Frontier, ","); got != "Z#2,U#2" {
		t.Fatalf("G2 frontier = %s, want Z#2,U#2", got)
	}
	w, ok := DirectedPathWeight(r.G, "X", "Z#2")
	if !ok || w != 2 {
		t.Errorf("weight x->z#2 = %d (found %v), want 2 — the paper's Figure 2(c) claim", w, ok)
	}
	// All arrows of the earlier I-graph are retained.
	if w, ok := DirectedPathWeight(r.G, "X", "Z"); !ok || w != 1 {
		t.Errorf("original arrow x->z lost (w=%d ok=%v)", w, ok)
	}
	// The 2nd expansion adds one copy of each undirected literal.
	if got := len(r.G.UndirectedEdges()); got != 4 {
		t.Errorf("undirected edges in G2 = %d, want 4 (a, b twice)", got)
	}
	if got := len(r.G.DirectedEdges()); got != 4 {
		t.Errorf("directed edges in G2 = %d, want 4", got)
	}
}

// TestFigure3Shape reproduces Figure 3: the I-graph of (s8) has max path
// weight 2 — Ioannidis's bound for its rank.
func TestFigure3Shape(t *testing.T) {
	ig := MustBuild(paper.S8.Rule)
	if got := ig.G.MaxPathWeight(); got != 2 {
		t.Errorf("max path weight = %d, want 2", got)
	}
	if ig.G.HasNonZeroWeightCycle() {
		t.Error("s8 must have only zero-weight cycles")
	}
}

// TestFigure4Shape reproduces Figure 4: (s9)'s cycle is multi-directional
// with weight ±1 and stays so across resolution graphs.
func TestFigure4Shape(t *testing.T) {
	ig := MustBuild(paper.S9.Rule)
	cycles := ig.G.NonTrivialCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	if cycles[0].IsOneDirectional() || cycles[0].AbsWeight() != 1 {
		t.Errorf("cycle = %v, |w| = %d", cycles[0], cycles[0].AbsWeight())
	}
	g2 := ResolutionGraph(ig, 2)
	if g2.NumVertices() <= ig.G.NumVertices() {
		t.Error("resolution graph did not grow")
	}
}

// TestFigure5Shape reproduces Figure 5: (s11)'s resolution graphs keep the
// two dependent unit cycles connected through the c edges.
func TestFigure5Shape(t *testing.T) {
	ig := MustBuild(paper.S11.Rule)
	r := NewResolution(ig)
	r.Expand(2)
	comps := r.G.Components()
	if len(comps) != 1 {
		t.Errorf("G2 of s11 must stay one component, got %d", len(comps))
	}
	// c edges: one per expansion.
	cCount := 0
	for _, e := range r.G.UndirectedEdges() {
		if e.Label == "c" {
			cCount++
		}
	}
	if cCount != 2 {
		t.Errorf("c edges in G2 = %d, want 2", cCount)
	}
}

// TestFigure6Shape reproduces Figure 6: (s12)'s resolution graphs keep the
// dependent {x,y,u,v} part and the {z,w} unit cycle disjoint.
func TestFigure6Shape(t *testing.T) {
	ig := MustBuild(paper.S12.Rule)
	r := NewResolution(ig)
	r.Expand(2)
	comps := r.G.Components()
	if len(comps) != 2 {
		t.Fatalf("components of G2 = %d, want 2", len(comps))
	}
}

func TestRenameVar(t *testing.T) {
	if RenameVar("Z", 1) != "Z" {
		t.Error("expansion 1 must keep names")
	}
	if RenameVar("Z", 2) != "Z#2" {
		t.Errorf("RenameVar(Z,2) = %s", RenameVar("Z", 2))
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := []string{
		"p(X, Y) :- a(X, Y).",          // not recursive
		"p(X) :- p(X), p(X).",          // non-linear
		"p(X, Y) :- a(X, k), p(X, Y).", // constant
		"p(X, X) :- a(X, Y), p(X, Y).", // repeated head var
		"p(X, Y) :- a(X, Z), p(Z, W).", // not range restricted
	}
	for _, src := range bad {
		rule, err := parser.ParseRule(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if _, err := Build(rule); err == nil {
			t.Errorf("%q: invalid rule accepted", src)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	MustBuild(ast.NewRule(ast.NewAtom("p", ast.V("X")), ast.NewAtom("a", ast.V("X"))))
}

func TestUnaryPredicateAddsVertexOnly(t *testing.T) {
	ig := build(t, "p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).")
	if !ig.G.HasVertex("Y") {
		t.Error("unary literal's variable missing")
	}
	for _, e := range ig.G.UndirectedEdges() {
		if e.Label == "b" {
			t.Error("unary literal created an edge")
		}
	}
}

func TestTernaryPredicateClique(t *testing.T) {
	ig := build(t, "p(X, Y) :- a(X, Y, Z), p(Z, Y1), b(Y, Y1).")
	aEdges := 0
	for _, e := range ig.G.UndirectedEdges() {
		if e.Label == "a" {
			aEdges++
		}
	}
	if aEdges != 3 {
		t.Errorf("ternary literal edges = %d, want 3 (clique)", aEdges)
	}
}

func TestPositionMapCyclicBehaviour(t *testing.T) {
	// (s4a) has a weight-3 cycle: position connectivity returns to the
	// diagonal after 3 expansions (Theorem 2's cyclic behaviour).
	ig := MustBuild(paper.S4a.Rule)
	r := NewResolution(ig)
	r.Expand(3)
	pm := r.PositionMap()
	for i, j := range pm {
		if i != j {
			t.Errorf("after 3 expansions position %d maps to %d, want identity", i, j)
		}
	}
	// After 1 expansion the map must NOT be the identity.
	r1 := NewResolution(ig)
	identity := true
	for i, j := range r1.PositionMap() {
		if i != j {
			identity = false
		}
	}
	if identity {
		t.Error("weight-3 cycle stable after a single expansion?")
	}
}

func TestDOTOutput(t *testing.T) {
	ig := MustBuild(paper.S1a.Rule)
	dot := ig.DOT("s1a")
	for _, want := range []string{"digraph", `"X" -> "Z"`, "style=dashed", "label=\"a\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	g2 := ResolutionGraph(ig, 2)
	if !strings.Contains(DOT(g2, "g2"), "Z#2") {
		t.Error("resolution DOT missing renamed vertex")
	}
}

func TestFrontierHistory(t *testing.T) {
	ig := MustBuild(paper.S2a.Rule)
	r := NewResolution(ig)
	r.Expand(3)
	if len(r.FrontierHistory) != 3 {
		t.Fatalf("history length = %d", len(r.FrontierHistory))
	}
	if got := strings.Join(r.FrontierHistory[2], ","); got != "Z#3,U#3" {
		t.Errorf("frontier after 3rd expansion = %s", got)
	}
}

func TestResolutionGraphGrowth(t *testing.T) {
	ig := MustBuild(paper.S3.Rule)
	base := ig.G.NumEdges()
	for k := 2; k <= 4; k++ {
		g := ResolutionGraph(ig, k)
		if g.NumEdges() != base*k {
			t.Errorf("G_%d edges = %d, want %d", k, g.NumEdges(), base*k)
		}
	}
}

var _ = graph.New // keep the import for doc reference
