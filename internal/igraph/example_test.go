package igraph_test

import (
	"fmt"

	"repro/internal/igraph"
	"repro/internal/parser"
)

// ExampleBuild constructs Figure 1(a): the I-graph of statement (s1a).
func ExampleBuild() {
	rule := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, Y).")
	ig, err := igraph.Build(rule)
	if err != nil {
		panic(err)
	}
	fmt.Print(ig)
	// Output:
	// vertices: X Y Z
	// X -- Z [a]
	// X -> Z [p]
	// Y -> Y [p]
}

// ExampleNewResolution expands to the 2nd resolution graph of statement
// (s2a) and checks the paper's weight-2 claim (Figure 2(c)).
func ExampleNewResolution() {
	rule := parser.MustParseRule("p(X, Y) :- a(X, Z), p(Z, U), b(U, Y).")
	r := igraph.NewResolution(igraph.MustBuild(rule))
	r.Expand(2)
	w, ok := igraph.DirectedPathWeight(r.G, "X", "Z#2")
	fmt.Println("frontier:", r.Frontier)
	fmt.Println("weight x -> z1:", w, ok)
	// Output:
	// frontier: [Z#2 U#2]
	// weight x -> z1: 2 true
}
