package igraph

import (
	"fmt"
	"testing"

	"repro/internal/paper"
)

// BenchmarkBuildCorpus measures I-graph construction over the paper corpus.
func BenchmarkBuildCorpus(b *testing.B) {
	stmts := paper.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stmts {
			if _, err := Build(s.Rule); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkResolutionExpansion measures k-th resolution graph construction.
func BenchmarkResolutionExpansion(b *testing.B) {
	ig := MustBuild(paper.S3.Rule)
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ResolutionGraph(ig, k)
			}
		})
	}
}
