// Package paper holds the corpus of recursive statements (s1)–(s12) worked
// through in Youn, Henschen & Han (SIGMOD 1988), exactly as written there
// (variables are upper-cased for the parser's Prolog convention: the paper's
// x, y, z₁ become X, Y, Z1). Every test, benchmark and command that
// reproduces a figure or example of the paper pulls its input from here.
package paper

import (
	"repro/internal/ast"
	"repro/internal/parser"
)

// Statement is one worked statement of the paper: the recursive rule, its
// generic exit rule, and the properties the paper claims for it.
type Statement struct {
	// ID is the paper's statement label, e.g. "s4a".
	ID string
	// Section cites where the statement appears.
	Section string
	// Rule is the recursive rule.
	Rule ast.Rule
	// Exit is the generic exit rule P(..) :- e(..). The paper writes the
	// exit relation as E; the parser's convention makes it lower-case "e".
	Exit ast.Rule
	// WantClass is the class the paper assigns (paper errata noted in
	// EXPERIMENTS.md are resolved to the definitionally correct class).
	WantClass string
	// Notes summarizes the paper's claims about the statement.
	Notes string
}

// System returns the statement as a validated recursive system.
func (s Statement) System() *ast.RecursiveSystem {
	sys, err := ast.NewRecursiveSystem(s.Rule, s.Exit)
	if err != nil {
		panic("paper: fixture " + s.ID + ": " + err.Error())
	}
	return sys
}

func mk(id, section, rule, wantClass, notes string) Statement {
	r := parser.MustParseRule(rule)
	return Statement{
		ID:        id,
		Section:   section,
		Rule:      r,
		Exit:      ast.DefaultExit(r.Head.Pred, r.Head.Arity(), "e"),
		WantClass: wantClass,
		Notes:     notes,
	}
}

// The corpus. Indices match the paper's statement labels.
var (
	// S1a (Example 1): the transitive-closure shape.
	S1a = mk("s1a", "§2 Example 1",
		"p(X, Y) :- a(X, Z), p(Z, Y).",
		"A5", "I-graph Figure 1(a); disjoint unit cycles (A1 on {x,z}, A2 self-loop on y); strongly stable")

	// S1b (Example 1): 3-D statement with a multi-directional cycle.
	S1b = mk("s1b", "§2 Example 1",
		"p(X, Y, Z) :- a(X, Y), p(U, Z, V), b(U, V).",
		"C", "I-graph Figure 1(b); single independent multi-directional cycle of weight ±1")

	// S2a (Example 2): used to introduce resolution graphs (Figure 2).
	S2a = mk("s2a", "§2 Example 2",
		"p(X, Y) :- a(X, Z), p(Z, U), b(U, Y).",
		"A1", "two disjoint unit rotational cycles; second resolution graph has weight 2 from x to z#2")

	// S3 (Example 3): the stable 3-D representative with three unit cycles.
	S3 = mk("s3", "§4.1 Example 3",
		"p(X, Y, Z) :- a(X, U), b(Y, V), p(U, V, W), c(W, Z).",
		"A1", "three disjoint unit rotational cycles; strongly stable; compiled plan for p(a,b,Z)")

	// S4a (Example 4): non-unit rotational cycle of weight 3.
	S4a = mk("s4a", "§4.3 Example 4",
		"p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).",
		"A3", "independent one-directional cycle of weight 3; stable after each 3 expansions; unfolds to a stable formula with 3 exits")

	// S5 (Example 5): pure permutation of weight 3.
	S5 = mk("s5", "§4.4 Example 5",
		"p(X, Y, Z) :- p(Y, Z, X).",
		"A4", "permutational cycle of weight 3; bounded with rank ≤ 2")

	// S6 (Example 6): permutational cycles of weights 3, 1 and 2.
	S6 = mk("s6", "§4.4 Example 6",
		"p(X, Y, Z, U, V, W) :- p(Z, Y, U, X, W, V).",
		"A5", "permutational cycles of weights 3,1,2; returns to original after lcm=6 expansions; bounded rank ≤ 5")

	// S7 (Example 7): four disjoint one-directional cycles, weights 1,2,3,1.
	S7 = mk("s7", "§4.5 Example 7",
		"p(X, Y, Z, U, W, S, V) :- a(X, T), p(T, Z, Y, W, S, R, V), b(U, R).",
		"A5", "disjoint one-directional cycles of weights 1,2,3,1; stable after lcm=6 expansions")

	// S8 (Example 8): bounded cycle of weight 0, rank bound 2 (Figure 3).
	S8 = mk("s8", "§5 Example 8",
		"p(X, Y, Z, U) :- a(X, Y), b(Y1, U), c(Z1, U1), p(Z, Y1, Z1, U1).",
		"B", "independent multi-directional cycle of weight 0; Ioannidis bound = max path weight = 2; equivalent to two non-recursive formulas")

	// S9 (Example 9): unbounded cycle (Figure 4).
	S9 = mk("s9", "§6 Example 9",
		"p(X, Y, Z) :- a(X, Y), b(U, V), p(U, Z, V).",
		"C", "independent multi-directional cycle of weight ±1; Cartesian-product / existence-check plans for p(d,v,v) and p(v,v,d)")

	// S10 (Example 10): no non-trivial cycles.
	S10 = mk("s10", "§7 Example 10",
		"p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).",
		"D", "no non-trivial cycle; bounded with upper bound 2")

	// S11 (Example 11): dependent unit cycles (Figure 5).
	S11 = mk("s11", "§8 Example 11",
		"p(X, Y) :- a(X, X1), b(Y, Y1), c(X1, Y1), p(X1, Y1).",
		"E", "two unit cycles made dependent by c(X1,Y1); for p(d,v) every position is determined from the 2nd expansion")

	// S12 (Example 14 / statement s12): mixed combination (Figure 6).
	// The paper's §9 text calls this a combination of classes (D) and (A1);
	// by the paper's own definitions the {x,y,u,v} component is two unit
	// cycles joined by C(u,v) — i.e. dependent, class (E), the very shape of
	// (s11). We classify E ⊎ A1 → F and record the erratum.
	S12 = mk("s12", "§9 Example 14",
		"p(X, Y, Z) :- a(X, U), b(Y, V), c(U, V), d(W, Z), p(U, V, W).",
		"F", "mixed: dependent component {x,y,u,v} plus unit rotational cycle {z,w}; query p(d,v,v) stabilizes to pattern (d,d,v) from the first expansion on")
)

// All returns the corpus in paper order.
func All() []Statement {
	return []Statement{S1a, S1b, S2a, S3, S4a, S5, S6, S7, S8, S9, S10, S11, S12}
}

// ByID returns the statement with the given label, or false.
func ByID(id string) (Statement, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Statement{}, false
}
