package paper

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
)

func TestCorpusComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("corpus = %d statements, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Section == "" || s.Notes == "" || s.WantClass == "" {
			t.Errorf("%s: missing metadata", s.ID)
		}
	}
}

func TestEveryStatementValidates(t *testing.T) {
	for _, s := range All() {
		if err := ast.ValidateRecursive(s.Rule); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
		sys := s.System() // panics on invalid fixtures
		if sys.Pred() != "p" {
			t.Errorf("%s: pred %s", s.ID, sys.Pred())
		}
	}
}

func TestEveryStatementMatchesDeclaredClass(t *testing.T) {
	for _, s := range All() {
		res, err := classify.Classify(s.Rule)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if res.Class.Code() != s.WantClass {
			t.Errorf("%s: classified %s, fixture says %s", s.ID, res.Class.Code(), s.WantClass)
		}
	}
}

func TestByID(t *testing.T) {
	if s, ok := ByID("s9"); !ok || s.ID != "s9" {
		t.Error("ByID(s9) failed")
	}
	if _, ok := ByID("s99"); ok {
		t.Error("ByID invented a statement")
	}
}
