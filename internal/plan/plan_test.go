package plan

import (
	"strings"
	"testing"

	"repro/internal/adorn"
	"repro/internal/classify"
	"repro/internal/paper"
)

func compileFor(t *testing.T, id string, pattern string) *Formula {
	t.Helper()
	s, ok := paper.ByID(id)
	if !ok {
		t.Fatalf("unknown statement %s", id)
	}
	sys := s.System()
	a := make(adorn.Adornment, sys.Arity())
	for i, c := range pattern {
		a[i] = c == 'd'
	}
	f, err := Compile(sys, a, 6)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestS3PlanMatchesPaper reproduces §4.1: for p(a,b,Z) over statement (s3)
// the compiled formula evaluates σA^k and σB^k independently, combines with
// E, and chains C^k for the free position.
func TestS3PlanMatchesPaper(t *testing.T) {
	f := compileFor(t, "s3", "ddv")
	want := "∪_{k=0}^∞ [ {σ(a)^k, σ(b)^k} - E - (c)^k ]"
	if f.Closed != want {
		t.Errorf("closed = %q, want %q", f.Closed, want)
	}
	if !strings.Contains(f.Note, "stable") {
		t.Errorf("note = %q", f.Note)
	}
}

// TestS9PlansMatchPaper reproduces §6: the two query forms of statement
// (s9) — p(d,v,v) uses a Cartesian product with the selection side; in
// p(v,v,d) the recursion side only gates the answers by existence and the
// answers come from relation A.
func TestS9PlansMatchPaper(t *testing.T) {
	dvv := compileFor(t, "s9", "dvv")
	if !strings.Contains(dvv.Closed, "σa X ") {
		t.Errorf("p(d,v,v) plan lost the Cartesian product: %q", dvv.Closed)
	}
	if !strings.Contains(dvv.Closed, "E") {
		t.Errorf("p(d,v,v) plan lost the exit relation: %q", dvv.Closed)
	}
	vvd := compileFor(t, "s9", "vvd")
	// Depth ≥ 1 plans must carry the existence prefix.
	found := false
	for _, d := range vvd.Depths {
		if d.K >= 1 && d.ExistsPrefix {
			found = true
			if !strings.HasPrefix(d.String(), "(∃ ") {
				t.Errorf("k=%d rendering lost ∃: %q", d.K, d.String())
			}
		}
	}
	if !found {
		t.Errorf("p(v,v,d) never used existence checking; depths:\n%v", vvd.Depths)
	}
}

// TestS11PlanMatchesPaper reproduces §8: the plan family
// σE, σA-C-B-E, σA-C-B-[{A,B}-C]^k-E for statement (s11) under p(d,v).
func TestS11PlanMatchesPaper(t *testing.T) {
	f := compileFor(t, "s11", "dv")
	want := "σE,  ∪_{k=0}^∞ σa-c-b-[{a,b}-c]^k-E"
	if f.Closed != want {
		t.Errorf("closed = %q, want %q", f.Closed, want)
	}
	// Depth 2 concrete plan matches the paper's σA-C-B-{A,B}-C-E.
	if got := f.Depths[2].String(); got != "σa-c-b-{a,b}-c-E" {
		t.Errorf("k=2 plan = %q", got)
	}
}

// TestS12PlanMatchesPaper reproduces §9: the plan
// ∪ σA-C-B-[{A,B}-C]^k-E-D^(k+1) for statement (s12) under p(d,v,v).
func TestS12PlanMatchesPaper(t *testing.T) {
	f := compileFor(t, "s12", "dvv")
	want := "σE,  ∪_{k=0}^∞ σa-c-b-[{a,b}-c]^k-E-[d]^k-d"
	if f.Closed != want {
		t.Errorf("closed = %q, want %q", f.Closed, want)
	}
}

func TestDepthZeroPlans(t *testing.T) {
	bound := compileFor(t, "s1a", "dv")
	if got := bound.Depths[0].String(); got != "σE" {
		t.Errorf("bound depth-0 = %q, want σE", got)
	}
	free := compileFor(t, "s1a", "vv")
	if got := free.Depths[0].String(); got != "E" {
		t.Errorf("free depth-0 = %q, want E", got)
	}
}

func TestBoundedPlanTruncatesAtRank(t *testing.T) {
	f := compileFor(t, "s8", "dvvv") // rank 2
	if len(f.Depths) != 3 {
		t.Errorf("bounded depths = %d, want 3 (k = 0..rank)", len(f.Depths))
	}
	if !strings.Contains(f.Note, "bounded (rank ≤ 2)") {
		t.Errorf("note = %q", f.Note)
	}
}

func TestTransformableNote(t *testing.T) {
	f := compileFor(t, "s4a", "dvv")
	if !strings.Contains(f.Note, "unfold 3 times") {
		t.Errorf("note = %q", f.Note)
	}
}

func TestFormulaStringRendering(t *testing.T) {
	f := compileFor(t, "s3", "ddv")
	out := f.String()
	for _, want := range []string{"class A1", "query form ddv", "plan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	// A formula without a closed form lists per-depth plans.
	f.Closed = ""
	out = f.String()
	if !strings.Contains(out, "k=0:") {
		t.Errorf("per-depth rendering missing:\n%s", out)
	}
}

func TestStableClosedFormErrors(t *testing.T) {
	s, _ := paper.ByID("s9")
	sys := s.System()
	res := classify.MustClassify(sys.Recursive)
	if _, err := StableClosedForm(sys, res, adorn.Adornment{true, false, false}); err == nil {
		t.Error("StableClosedForm accepted an unstable formula")
	}
}

func TestStableClosedFormSelfLoop(t *testing.T) {
	// s1a: the free position's cycle is a pure self-loop — no chain appears.
	s, _ := paper.ByID("s1a")
	sys := s.System()
	res := classify.MustClassify(sys.Recursive)
	closed, err := StableClosedForm(sys, res, adorn.Adornment{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if closed != "∪_{k=0}^∞ [ σ(a)^k - E ]" {
		t.Errorf("closed = %q", closed)
	}
	// Bound self-loop position: the identity chain shows as σ(id)^k.
	closed2, err := StableClosedForm(sys, res, adorn.Adornment{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(closed2, "σ(id)^k") || !strings.Contains(closed2, "(a)^k") {
		t.Errorf("closed = %q", closed2)
	}
}

func TestDetectPeriodNoFalsePositive(t *testing.T) {
	// Strictly shrinking or irregular plans must yield no closed form.
	depths := []DepthPlan{
		{K: 0, Steps: []Step{{Text: "E"}}},
		{K: 1, Steps: []Step{{Text: "a"}, {Text: "E", Conn: "-"}}},
		{K: 2, Steps: []Step{{Text: "b"}, {Text: "E", Conn: "-"}}},
		{K: 3, Steps: []Step{{Text: "c"}, {Text: "E", Conn: "-"}}},
	}
	if got := detectPeriod(depths); got != "" {
		t.Errorf("false positive closed form %q", got)
	}
}

func TestDetectPeriodSingleBlock(t *testing.T) {
	mk := func(n int) DepthPlan {
		steps := []Step{{Text: "σa"}}
		for i := 0; i < n; i++ {
			steps = append(steps, Step{Text: "b", Conn: "-"})
		}
		steps = append(steps, Step{Text: "E", Conn: "-"})
		return DepthPlan{K: n, Steps: steps}
	}
	depths := []DepthPlan{mk(0), mk(1), mk(2), mk(3)}
	got := detectPeriod(depths)
	if got != "∪_{k=0}^∞ σa-[b]^k-E" {
		t.Errorf("closed = %q", got)
	}
}

func TestCompileDefaultsMaxDepth(t *testing.T) {
	s, _ := paper.ByID("s11")
	f, err := Compile(s.System(), adorn.Adornment{true, false}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Depths) != 6 {
		t.Errorf("default depths = %d, want 6 (k = 0..5)", len(f.Depths))
	}
}
