package plan

import (
	"fmt"
	"testing"

	"repro/internal/adorn"
	"repro/internal/paper"
)

func TestSmokePlans(t *testing.T) {
	for _, id := range []string{"s3", "s9", "s11", "s12", "s1a"} {
		s, _ := paper.ByID(id)
		sys := s.System()
		n := sys.Arity()
		a := make(adorn.Adornment, n)
		a[0] = true
		f, err := Compile(sys, a, 5)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("=== %s ===\n%s\n", id, f)
	}
}
