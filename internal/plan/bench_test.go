package plan

import (
	"testing"

	"repro/internal/adorn"
	"repro/internal/paper"
)

// BenchmarkCompileCorpus measures plan compilation (per-depth symbolic
// planning plus period detection) over the paper corpus under the
// first-position-bound query form.
func BenchmarkCompileCorpus(b *testing.B) {
	stmts := paper.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stmts {
			sys := s.System()
			a := make(adorn.Adornment, sys.Arity())
			a[0] = true
			if _, err := Compile(sys, a, 5); err != nil {
				b.Fatal(err)
			}
		}
	}
}
