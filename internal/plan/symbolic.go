package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/rewrite"
)

// Compile derives the compiled formula and query evaluation plan of the
// system for the given query adornment. The symbolic planner simulates the
// determined-variable propagation of each expansion depth up to maxDepth
// (default 5 when maxDepth ≤ 0), following the paper's global principle:
// selections before joins; when neither applies, retrieve the exit relation
// and combine by Cartesian product or existence checking.
func Compile(sys *ast.RecursiveSystem, a adorn.Adornment, maxDepth int) (*Formula, error) {
	if maxDepth <= 0 {
		maxDepth = 5
	}
	res, err := classify.Classify(sys.Recursive)
	if err != nil {
		return nil, err
	}
	f := &Formula{Class: res.Class, Adornment: a.Clone()}
	switch {
	case res.Bounded:
		f.Note = fmt.Sprintf("bounded (rank ≤ %d): expansions beyond the bound add no tuples; the recursion is equivalent to %d non-recursive formulas",
			res.RankBound, res.RankBound+1)
		if maxDepth > res.RankBound {
			maxDepth = res.RankBound
		}
	case res.Stable:
		f.Note = "strongly stable: each unit cycle is an independent σ-chain (§4.1)"
	case res.Transformable:
		f.Note = fmt.Sprintf("transformable: unfold %d times into an equivalent stable formula with %d exits (Theorems 2, 4)",
			res.StabilizationPeriod, res.StabilizationPeriod*len(sys.Exits))
	case res.Class == classify.ClassC:
		f.Note = "unbounded cycle: no general method; plan read off the resolution graphs (§6)"
	default:
		f.Note = "dependent/mixed cycles: plan read off the resolution graphs (§8, §9)"
		// §9: such formulas may become stable for a particular query form
		// after some expansions, differing from form to form.
		if from, ok := adorn.EventuallyStableFor(sys.Recursive, a); ok {
			f.Note += fmt.Sprintf("; this query form's determined pattern is constant from expansion %d on", from)
		}
	}
	for k := 0; k <= maxDepth; k++ {
		dp, err := planDepth(sys, a, k)
		if err != nil {
			return nil, err
		}
		f.Depths = append(f.Depths, dp)
	}
	f.Closed = detectPeriod(f.Depths)
	if res.Stable {
		// The §4.1 closed form from the disjoint unit cycles is tighter
		// than anything the generic period detector can recover.
		if closed, err := StableClosedForm(sys, res, a); err == nil {
			f.Closed = closed
		}
	}
	return f, nil
}

// planDepth builds the concrete evaluation plan of the k-th expansion.
func planDepth(sys *ast.RecursiveSystem, a adorn.Adornment, k int) (DepthPlan, error) {
	dp := DepthPlan{K: k}
	headVars := make([]string, sys.Arity())
	boundHead := make(map[string]bool)
	answerVars := make(map[string]bool)
	for i, t := range sys.Recursive.Head.Args {
		headVars[i] = t.Name
		if a[i] {
			boundHead[t.Name] = true
		} else {
			answerVars[t.Name] = true
		}
	}
	if k == 0 {
		text := "E"
		if len(boundHead) > 0 {
			text = "σE"
		}
		dp.Steps = []Step{{Text: text}}
		return dp, nil
	}
	exp, err := rewrite.Expand(sys, k)
	if err != nil {
		return DepthPlan{}, err
	}
	recAtom, _ := exp.RecursiveAtom()
	type lit struct {
		label string
		vars  []string
		copy  int
		used  bool
		isE   bool
	}
	var lits []lit
	nrAtoms := exp.NonRecursiveAtoms()
	perCopy := len(sys.Recursive.NonRecursiveAtoms())
	for i, at := range nrAtoms {
		cp := 0
		if perCopy > 0 {
			cp = i / perCopy
		}
		lits = append(lits, lit{label: at.Pred, vars: at.Vars(), copy: cp})
	}
	lits = append(lits, lit{label: "E", vars: ast.Atom{Pred: "E", Args: recAtom.Args}.Vars(), copy: k, isE: true})

	determined := make(map[string]bool)
	for v := range boundHead {
		determined[v] = true
	}
	// groupHasAnswer[g] records whether group g (Cartesian-separated) binds
	// any answer variable.
	groupHasAnswer := []bool{false}
	remaining := len(lits)
	for remaining > 0 {
		// Literals with at least one determined variable are available;
		// the exit relation is deferred until no body literal qualifies
		// (the paper evaluates E only when selections and joins over the
		// non-recursive predicates are exhausted).
		var avail []int
		eAvail := -1
		for i := range lits {
			if lits[i].used {
				continue
			}
			for _, v := range lits[i].vars {
				if determined[v] {
					if lits[i].isE {
						eAvail = i
					} else {
						avail = append(avail, i)
					}
					break
				}
			}
		}
		conn := "-"
		switch {
		case len(avail) == 0 && eAvail >= 0:
			avail = []int{eAvail}
		case len(avail) == 0:
			// Nothing is connected to the constants: retrieve the first
			// unused literal (preferring the exit relation, the paper's
			// convention) and combine by Cartesian product.
			pick := -1
			for i := range lits {
				if !lits[i].used && lits[i].isE {
					pick = i
					break
				}
			}
			if pick == -1 {
				for i := range lits {
					if !lits[i].used {
						pick = i
						break
					}
				}
			}
			avail = []int{pick}
			if len(dp.Steps) > 0 {
				conn = "X"
				groupHasAnswer = append(groupHasAnswer, false)
			}
		case len(avail) > 1:
			// Group in parallel braces only pairwise variable-disjoint
			// literals from the earliest copy still in play, mirroring the
			// paper's copy-by-copy discipline.
			minCopy := lits[avail[0]].copy
			for _, i := range avail[1:] {
				if lits[i].copy < minCopy {
					minCopy = lits[i].copy
				}
			}
			var kept []int
			usedVars := make(map[string]bool)
			for _, i := range avail {
				if lits[i].copy != minCopy {
					continue
				}
				ok := true
				for _, v := range lits[i].vars {
					if !determined[v] && usedVars[v] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				kept = append(kept, i)
				for _, v := range lits[i].vars {
					if !determined[v] {
						usedVars[v] = true
					}
				}
			}
			avail = kept
		}
		// Render the step.
		names := make([]string, 0, len(avail))
		for _, i := range avail {
			name := lits[i].label
			if !lits[i].isE && touchesBoundHead(lits[i].vars, boundHead) {
				name = "σ" + name
			}
			if lits[i].isE && len(dp.Steps) == 0 && len(boundHead) > 0 {
				name = "σ" + name
			}
			names = append(names, name)
		}
		sort.Strings(names)
		text := names[0]
		if len(names) > 1 {
			text = "{" + strings.Join(names, ",") + "}"
		}
		if len(dp.Steps) == 0 {
			conn = ""
		}
		dp.Steps = append(dp.Steps, Step{Text: text, Conn: conn})
		for _, i := range avail {
			lits[i].used = true
			remaining--
			for _, v := range lits[i].vars {
				if answerVars[v] && !determined[v] {
					groupHasAnswer[len(groupHasAnswer)-1] = true
				}
				determined[v] = true
			}
		}
	}
	// Existence check: if the first group binds no answer variable but a
	// later one does, the first group only gates the answers (§6).
	if len(groupHasAnswer) > 1 && !groupHasAnswer[0] {
		later := false
		for _, g := range groupHasAnswer[1:] {
			later = later || g
		}
		dp.ExistsPrefix = later
	}
	return dp, nil
}

func touchesBoundHead(vars []string, bound map[string]bool) bool {
	for _, v := range vars {
		if bound[v] {
			return true
		}
	}
	return false
}

// StableClosedForm renders the §4.1 compiled formula of a strongly stable
// system from its disjoint unit cycles: per bound position a descending
// σ-chain branch, per free position an ascending chain applied to the exit
// relation. Example (statement s3, query p(a,b,Z)):
//
//	∪_{k=0}^∞ [ {σ(a)^k, σ(b)^k} - E - (c)^k ]
func StableClosedForm(sys *ast.RecursiveSystem, res *classify.Result, a adorn.Adornment) (string, error) {
	if !res.Stable {
		return "", fmt.Errorf("plan: class %s is not strongly stable", res.Class.Code())
	}
	rule := sys.Recursive
	// Component label per position: concatenated non-recursive predicate
	// names of the component owning the position's head variable.
	vertexComp := make(map[string]int)
	for ci, c := range res.Components {
		for _, v := range c.G.Vertices() {
			vertexComp[v] = ci
		}
	}
	labels := make([]string, len(res.Components))
	for _, at := range rule.NonRecursiveAtoms() {
		vars := at.Vars()
		if len(vars) == 0 {
			continue
		}
		labels[vertexComp[vars[0]]] += at.Pred
	}
	var down, up []string
	for i, t := range rule.Head.Args {
		lbl := labels[vertexComp[t.Name]]
		if lbl == "" {
			lbl = "id" // pure self-loop: the identity chain
		}
		if a[i] {
			down = append(down, fmt.Sprintf("σ(%s)^k", lbl))
		} else if lbl != "id" {
			up = append(up, fmt.Sprintf("(%s)^k", lbl))
		}
	}
	var b strings.Builder
	b.WriteString("∪_{k=0}^∞ [ ")
	switch len(down) {
	case 0:
	case 1:
		b.WriteString(down[0] + " - ")
	default:
		b.WriteString("{" + strings.Join(down, ", ") + "} - ")
	}
	b.WriteString("E")
	for _, u := range up {
		b.WriteString(" - " + u)
	}
	b.WriteString(" ]")
	return b.String(), nil
}
