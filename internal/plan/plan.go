// Package plan compiles recursive systems into the paper's compiled
// formulas and query evaluation plans, and renders them in the paper's
// notation: σ for selection pushed onto a relation, "-" for join, braces
// for branches evaluated in parallel, "X" for Cartesian product, "∃" for
// existence checking, and ∪_k […]^k for the union over expansion depths.
//
// Two planners are provided. For strongly stable formulas the closed form
// follows §4.1 directly from the disjoint unit cycles. For every class the
// symbolic planner simulates the determined-variable propagation of the
// k-th expansion (the paper's resolution-graph reading of §6–§9), emits a
// concrete plan per depth, and detects the repetition period to produce the
// ∪_k closed form the paper derives by inspection.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adorn"
	"repro/internal/classify"
)

// Step is one operation of a depth plan: a relation access plus the
// connector that attaches it to the preceding steps.
type Step struct {
	// Text is the rendered operand: "σa", "b", "{a,b}", "E" or "σE".
	Text string
	// Conn is the connector preceding this step: "" (first), "-" (join) or
	// "X" (Cartesian product).
	Conn string
}

// DepthPlan is the evaluation plan of the k-th expansion.
type DepthPlan struct {
	K     int
	Steps []Step
	// ExistsPrefix reports that the recursion-side subplan only gates the
	// answers by existence (the paper's ∃ notation, §6).
	ExistsPrefix bool
}

// String renders the depth plan. With ExistsPrefix, the recursion-side
// group (everything before the first Cartesian connector) is wrapped in the
// paper's (∃ …) notation.
func (d DepthPlan) String() string {
	var b strings.Builder
	open := false
	if d.ExistsPrefix {
		b.WriteString("(∃ ")
		open = true
	}
	for i, s := range d.Steps {
		if i > 0 {
			switch s.Conn {
			case "X":
				if open {
					b.WriteString(") ")
					open = false
				} else {
					b.WriteString(" X ")
				}
			default:
				b.WriteString(s.Conn)
			}
		}
		b.WriteString(s.Text)
	}
	if open {
		b.WriteString(")")
	}
	return b.String()
}

// Formula is the compiled output for one (system, adornment) pair.
type Formula struct {
	Class     classify.Class
	Adornment adorn.Adornment
	// Depths holds the concrete plans for k = 0..len(Depths)-1.
	Depths []DepthPlan
	// Closed is the ∪_k closed form when a repetition period was detected.
	Closed string
	// Note carries class-specific commentary (transformation applied,
	// boundedness cut-off, …).
	Note string
}

// String renders the paper-style summary: the closed form when known,
// otherwise the per-depth plans.
func (f *Formula) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s, query form %s\n", f.Class.Code(), f.Adornment)
	if f.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Note)
	}
	if f.Closed != "" {
		fmt.Fprintf(&b, "plan: %s\n", f.Closed)
		return b.String()
	}
	for _, d := range f.Depths {
		fmt.Fprintf(&b, "k=%d: %s\n", d.K, d)
	}
	return b.String()
}

// tokensEqual compares step sequences.
func stepsEqual(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insertion describes one repeated block inserted at a fixed position of
// the base plan.
type insertion struct {
	pos   int
	block []Step
}

// applyInsertions returns base with every insertion's block repeated n
// times at its position. Insertions are processed in position order; an
// unsorted slice would otherwise slice base backwards (base[prev:in.pos]
// with prev > in.pos panics, and equal positions out of order reorder the
// inserted blocks), so the order is enforced here rather than assumed from
// the caller. The input slice is left untouched.
func applyInsertions(base []Step, ins []insertion, n int) []Step {
	if !sort.SliceIsSorted(ins, func(i, j int) bool { return ins[i].pos < ins[j].pos }) {
		sorted := make([]insertion, len(ins))
		copy(sorted, ins)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
		ins = sorted
	}
	var out []Step
	prev := 0
	for _, in := range ins {
		out = append(out, base[prev:in.pos]...)
		for i := 0; i < n; i++ {
			out = append(out, in.block...)
		}
		prev = in.pos
	}
	out = append(out, base[prev:]...)
	return out
}

// findInsertions searches for at most two repeated blocks turning a into b
// (one repetition) and a into c (two repetitions).
func findInsertions(a, b, c []Step) []insertion {
	// Single block.
	diff := len(b) - len(a)
	if diff <= 0 {
		return nil
	}
	for p := 0; p <= len(a); p++ {
		if p+diff > len(b) {
			break
		}
		ins := []insertion{{pos: p, block: b[p : p+diff]}}
		if stepsEqual(applyInsertions(a, ins, 1), b) && stepsEqual(applyInsertions(a, ins, 2), c) {
			return ins
		}
	}
	// Two blocks of sizes d1 + d2 = diff at positions p1 < p2.
	for d1 := 1; d1 < diff; d1++ {
		d2 := diff - d1
		for p1 := 0; p1 <= len(a); p1++ {
			if p1+d1 > len(b) {
				break
			}
			for p2 := p1; p2 <= len(a); p2++ {
				if p2+d1+d2 > len(b) {
					break
				}
				ins := []insertion{
					{pos: p1, block: b[p1 : p1+d1]},
					{pos: p2, block: b[p2+d1 : p2+d1+d2]},
				}
				if stepsEqual(applyInsertions(a, ins, 1), b) && stepsEqual(applyInsertions(a, ins, 2), c) {
					return ins
				}
			}
		}
	}
	return nil
}

// detectPeriod looks for a stabilization depth s and one or two step blocks
// such that plan(k+1) equals plan(k) with each block inserted once more at
// a fixed position, for all k ≥ s. It returns the ∪ closed form, or "".
// Two blocks cover plans like the paper's (s12):
// σA-C-B-[{A,B}-C]^k-E-D^(k+1).
func detectPeriod(depths []DepthPlan) string {
	for s := 0; s+2 < len(depths); s++ {
		a, b, c := depths[s], depths[s+1], depths[s+2]
		if a.ExistsPrefix != b.ExistsPrefix || b.ExistsPrefix != c.ExistsPrefix {
			continue
		}
		ins := findInsertions(a.Steps, b.Steps, c.Steps)
		if ins == nil {
			continue
		}
		// Verify against any further materialized depths.
		ok := true
		for n := 3; s+n < len(depths); n++ {
			if !stepsEqual(applyInsertions(a.Steps, ins, n), depths[s+n].Steps) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var sb strings.Builder
		// Plans below the stabilization depth are listed explicitly.
		for i := 0; i < s; i++ {
			sb.WriteString(depths[i].String())
			sb.WriteString(",  ")
		}
		fmt.Fprintf(&sb, "∪_{k=0}^∞ ")
		open := false
		if a.ExistsPrefix {
			sb.WriteString("(∃ ")
			open = true
		}
		renderRange := func(steps []Step, openConn bool) {
			for i, st := range steps {
				if i > 0 || openConn {
					switch st.Conn {
					case "X":
						if open {
							sb.WriteString(") ")
							open = false
						} else {
							sb.WriteString(" X ")
						}
					default:
						sb.WriteString(st.Conn)
					}
				}
				sb.WriteString(st.Text)
			}
		}
		prev := 0
		for _, in := range ins {
			renderRange(a.Steps[prev:in.pos], prev > 0)
			if in.pos > 0 {
				sb.WriteString(in.block[0].Conn)
			}
			sb.WriteString("[")
			renderRange(in.block, false)
			sb.WriteString("]^k")
			prev = in.pos
		}
		if prev < len(a.Steps) {
			renderRange(a.Steps[prev:], true)
		}
		if open {
			sb.WriteString(")")
		}
		return sb.String()
	}
	return ""
}
