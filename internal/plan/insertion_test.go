package plan

import "testing"

// TestApplyInsertionsUnsorted is the regression test for the old "must be
// sorted by position" assumption: before the defensive sort, an unsorted
// insertion slice sliced base backwards (base[prev:in.pos] with prev >
// in.pos) and paniced instead of producing the plan.
func TestApplyInsertionsUnsorted(t *testing.T) {
	base := []Step{{Text: "σa"}, {Text: "b", Conn: "-"}, {Text: "E", Conn: "-"}}
	ins := []insertion{
		{pos: 2, block: []Step{{Text: "c", Conn: "-"}}},
		{pos: 1, block: []Step{{Text: "a", Conn: "-"}}},
	}
	got := applyInsertions(base, ins, 2)
	want := []Step{
		{Text: "σa"},
		{Text: "a", Conn: "-"}, {Text: "a", Conn: "-"},
		{Text: "b", Conn: "-"},
		{Text: "c", Conn: "-"}, {Text: "c", Conn: "-"},
		{Text: "E", Conn: "-"},
	}
	if !stepsEqual(got, want) {
		t.Fatalf("applyInsertions = %v, want %v", got, want)
	}
	// Sorting happens on a copy: the caller's slice keeps its order.
	if ins[0].pos != 2 || ins[1].pos != 1 {
		t.Fatalf("input slice mutated: %v", ins)
	}
	// Sorted input is unaffected by the guard.
	sorted := []insertion{ins[1], ins[0]}
	if !stepsEqual(applyInsertions(base, sorted, 2), want) {
		t.Fatal("sorted insertions changed behavior")
	}
}

// TestApplyInsertionsStableAtEqualPositions: two blocks at the same position
// keep their relative order (the stable sort), matching what findInsertions
// verified them against.
func TestApplyInsertionsStableAtEqualPositions(t *testing.T) {
	base := []Step{{Text: "E"}}
	ins := []insertion{
		{pos: 0, block: []Step{{Text: "x"}}},
		{pos: 0, block: []Step{{Text: "y"}}},
	}
	got := applyInsertions(base, ins, 1)
	want := []Step{{Text: "x"}, {Text: "y"}, {Text: "E"}}
	if !stepsEqual(got, want) {
		t.Fatalf("applyInsertions = %v, want %v", got, want)
	}
}
