package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/storage"
)

// ExampleParse shows the basic pipeline: parse a linear recursive system,
// inspect its class, and read off the compiled plan for a query form.
func ExampleParse() {
	c, err := core.Parse(`
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class:", c.Class().Code())
	fmt.Println("stable:", c.Result.Stable)

	q, _ := parser.ParseQuery("?- p(a, Y).")
	f, _ := c.PlanFor(q)
	fmt.Println("plan:", f.Closed)
	// Output:
	// class: A5
	// stable: true
	// plan: ∪_{k=0}^∞ [ σ(a)^k - E ]
}

// ExampleCompilation_Answer evaluates a bound transitive-closure query with
// the class-appropriate compiled engine.
func ExampleCompilation_Answer() {
	c := core.MustParse(`
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- a(X, Y).
	`)
	db := storage.NewDatabase()
	for _, e := range [][2]string{{"a1", "a2"}, {"a2", "a3"}, {"a3", "a4"}} {
		if _, err := db.Insert("a", e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	q, _ := parser.ParseQuery("?- p(a1, Y).")
	ans, _, err := c.Answer(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers:", ans.Len())
	// Output:
	// answers: 3
}

// ExampleCompilation_ToStable unfolds a weight-3 one-directional cycle into
// an equivalent strongly stable system (Theorem 2).
func ExampleCompilation_ToStable() {
	c := core.MustParse(`
		p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).
		p(X1, X2, X3) :- e(X1, X2, X3).
	`)
	fmt.Println("class:", c.Class().Code())
	fmt.Println("period:", c.Result.StabilizationPeriod)
	sc, err := c.ToStable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stable:", sc.Result.Stable, "with", len(sc.Sys.Exits), "exit rules")
	// Output:
	// class: A3
	// period: 3
	// stable: true with 3 exit rules
}

// ExampleCompilation_NonRecursive eliminates a bounded ("pseudo") recursion.
func ExampleCompilation_NonRecursive() {
	c := core.MustParse(`
		p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).
		p(X, Y) :- e(X, Y).
	`)
	fmt.Println("bounded with rank:", c.Result.RankBound)
	rules, err := c.NonRecursive()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// bounded with rank: 2
	// p(X, Y) :- e(X, Y).
	// p(X, Y) :- b(Y), c(X, Y1), e(X1, Y1).
	// p(X, Y) :- b(Y), c(X, Y1), b(Y1), c(X1, Y1#2), e(X1#2, Y1#2).
}
