package core

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

const tcSrc = `
	p(X, Y) :- a(X, Z), p(Z, Y).
	p(X, Y) :- e(X, Y).
`

func TestParseHappyPath(t *testing.T) {
	c, err := Parse(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sys.Pred() != "p" || c.Sys.Arity() != 2 {
		t.Errorf("system = %s/%d", c.Sys.Pred(), c.Sys.Arity())
	}
	if got := c.Class().Code(); got != "A5" {
		t.Errorf("class = %s", got)
	}
	if !c.Result.Stable {
		t.Error("TC shape not stable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"syntax", "p(X :- ."},
		{"no recursion", "p(X, Y) :- e(X, Y)."},
		{"two recursive rules", `
			p(X, Y) :- a(X, Z), p(Z, Y).
			p(X, Y) :- b(X, Z), p(Z, Y).
			p(X, Y) :- e(X, Y).`},
		{"no exits", "p(X, Y) :- a(X, Z), p(Z, Y)."},
		{"foreign rule", `
			p(X, Y) :- a(X, Z), p(Z, Y).
			p(X, Y) :- e(X, Y).
			q(X) :- r(X).`},
		{"fact in text", tcSrc + "\na(x, y)."},
		{"query in text", tcSrc + "\n?- p(X, Y)."},
		{"invalid recursion", "p(X, Y) :- a(X, k), p(X, Y).\np(X, Y) :- e(X, Y)."},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("nope")
}

func TestExplainContainsSections(t *testing.T) {
	c := MustParse(tcSrc)
	out := c.Explain()
	for _, want := range []string{"recursive rule:", "exit rules:", "I-graph:", "class:", "strongly stable: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
}

func TestAnswerAndAnswerWith(t *testing.T) {
	c := MustParse(tcSrc)
	db := storage.NewDatabase()
	storage.GenChain(db, "a", 7)
	db.Set("e", db.Rel("a").Clone())
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	ans, _, err := c.Answer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 6 {
		t.Errorf("answers = %d, want 6", ans.Len())
	}
	for _, s := range eval.Strategies() {
		got, _, err := c.AnswerWith(s, q, db)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Equal(ans) {
			t.Errorf("%v differs", s)
		}
	}
}

func TestPlanForValidation(t *testing.T) {
	c := MustParse(tcSrc)
	q, _ := parser.ParseQuery("?- p(n0, Y).")
	f, err := c.PlanFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if f.Closed == "" {
		t.Error("stable formula without closed plan")
	}
	bad, _ := parser.ParseQuery("?- q(n0).")
	if _, err := c.PlanFor(bad); err == nil {
		t.Error("mismatched query accepted")
	}
	if _, err := c.ExplainQuery(bad); err == nil {
		t.Error("ExplainQuery accepted bad query")
	}
	report, err := c.ExplainQuery(q)
	if err != nil || !strings.Contains(report, "plan:") {
		t.Errorf("ExplainQuery = %q, %v", report, err)
	}
}

func TestToStableOnTransformable(t *testing.T) {
	c := MustParse(`
		p(X1, X2, X3) :- a(X1, Y3), b(X2, Y1), c(Y2, X3), p(Y1, Y2, Y3).
		p(X1, X2, X3) :- e(X1, X2, X3).
	`)
	if c.Class().Code() != "A3" {
		t.Fatalf("class = %s", c.Class().Code())
	}
	sc, err := c.ToStable()
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Result.Stable {
		t.Error("transformed compilation not stable")
	}
	if len(sc.Sys.Exits) != 3 {
		t.Errorf("exits = %d", len(sc.Sys.Exits))
	}
	// Non-transformable systems refuse.
	c2 := MustParse(`
		p(X, Y) :- a(X, X1), b(Y, Y1), c(X1, Y1), p(X1, Y1).
		p(X, Y) :- e(X, Y).
	`)
	if _, err := c2.ToStable(); err == nil {
		t.Error("dependent system transformed")
	}
}

func TestNonRecursiveOnBounded(t *testing.T) {
	c := MustParse(`
		p(X, Y) :- b(Y), c(X, Y1), p(X1, Y1).
		p(X, Y) :- e(X, Y).
	`)
	rules, err := c.NonRecursive()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Errorf("rules = %d, want 3", len(rules))
	}
	tc := MustParse(tcSrc)
	if _, err := tc.NonRecursive(); err == nil {
		t.Error("unbounded system expanded")
	}
}

func TestResolutionGraphAccessor(t *testing.T) {
	c := MustParse(tcSrc)
	r := c.ResolutionGraph(3)
	if r.K != 3 {
		t.Errorf("K = %d", r.K)
	}
	if r.G.NumEdges() != c.IGraph.G.NumEdges()*3 {
		t.Errorf("G3 edges = %d", r.G.NumEdges())
	}
}
