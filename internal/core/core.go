// Package core is the library facade: it ties the paper's pipeline together
// — parse a linear recursive system, build its I-graph, classify it, derive
// the compiled formula and query evaluation plan for a query form, and
// answer queries over an extensional database with the class-appropriate
// engine.
//
// Typical use:
//
//	c, err := core.Parse(`
//	    p(X, Y) :- a(X, Z), p(Z, Y).
//	    p(X, Y) :- e(X, Y).
//	`)
//	q, _ := parser.ParseQuery("?- p(n0, Y).")
//	ans, stats, err := c.Answer(q, db)
package core

import (
	"fmt"
	"strings"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/igraph"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// Compilation is an analyzed linear recursive system: the validated rules,
// the I-graph and the classification. It is immutable after construction
// and safe for concurrent readers.
type Compilation struct {
	Sys    *ast.RecursiveSystem
	IGraph *igraph.IGraph
	Result *classify.Result
}

// Analyze validates and classifies a recursive rule with its exit rules.
func Analyze(recursive ast.Rule, exits ...ast.Rule) (*Compilation, error) {
	sys, err := ast.NewRecursiveSystem(recursive, exits...)
	if err != nil {
		return nil, err
	}
	return AnalyzeSystem(sys)
}

// AnalyzeSystem analyzes an already-assembled system.
func AnalyzeSystem(sys *ast.RecursiveSystem) (*Compilation, error) {
	ig, err := igraph.Build(sys.Recursive)
	if err != nil {
		return nil, err
	}
	return &Compilation{Sys: sys, IGraph: ig, Result: classify.ClassifyIGraph(ig)}, nil
}

// Parse reads a program text containing exactly one linear recursive rule
// and its exit rules (every other rule whose head is the same predicate and
// whose body does not mention it) and analyzes it. Ground facts in the text
// are rejected — facts belong in the database.
func Parse(src string) (*Compilation, error) {
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(queries) > 0 {
		return nil, fmt.Errorf("core: unexpected query %v in system text", queries[0])
	}
	if len(prog.Facts) > 0 {
		return nil, fmt.Errorf("core: unexpected fact %v in system text (facts belong in the database)", prog.Facts[0])
	}
	var recursive *ast.Rule
	for i := range prog.Rules {
		r := prog.Rules[i]
		if len(r.RecursiveAtoms()) > 0 {
			if recursive != nil {
				return nil, fmt.Errorf("core: more than one recursive rule (%v and %v); the paper's systems are single recursions", *recursive, r)
			}
			recursive = &prog.Rules[i]
		}
	}
	if recursive == nil {
		return nil, fmt.Errorf("core: no recursive rule in input")
	}
	var exits []ast.Rule
	for _, r := range prog.Rules {
		if len(r.RecursiveAtoms()) > 0 {
			continue
		}
		if r.Head.Pred != recursive.Head.Pred {
			return nil, fmt.Errorf("core: rule %v defines %s, expected exit rules for %s", r, r.Head.Pred, recursive.Head.Pred)
		}
		exits = append(exits, r)
	}
	if len(exits) == 0 {
		return nil, fmt.Errorf("core: recursive rule %v has no exit rule", *recursive)
	}
	return Analyze(*recursive, exits...)
}

// MustParse is Parse that panics on error; for fixtures and examples.
func MustParse(src string) *Compilation {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

// Class returns the paper's class of the formula.
func (c *Compilation) Class() classify.Class { return c.Result.Class }

// PlanFor compiles the query evaluation plan for the query's adornment.
func (c *Compilation) PlanFor(q ast.Query) (*plan.Formula, error) {
	if q.Atom.Pred != c.Sys.Pred() || q.Atom.Arity() != c.Sys.Arity() {
		return nil, fmt.Errorf("core: query %v does not match %s/%d", q, c.Sys.Pred(), c.Sys.Arity())
	}
	return plan.Compile(c.Sys, adorn.FromQuery(q), 0)
}

// Answer evaluates the query with the class-appropriate compiled engine
// (eval.StrategyClass).
func (c *Compilation) Answer(q ast.Query, db *storage.Database) (*storage.Relation, eval.Stats, error) {
	return eval.ClassEvalWith(c.Sys, c.Result, q, db)
}

// AnswerWith evaluates the query with an explicit strategy.
func (c *Compilation) AnswerWith(s eval.Strategy, q ast.Query, db *storage.Database) (*storage.Relation, eval.Stats, error) {
	return eval.Answer(s, c.Sys, q, db)
}

// ToStable returns the equivalent stable system per Theorems 2 and 4, or an
// error for non-transformable classes.
func (c *Compilation) ToStable() (*Compilation, error) {
	sys, err := rewrite.ToStableClassified(c.Sys, c.Result)
	if err != nil {
		return nil, err
	}
	return AnalyzeSystem(sys)
}

// NonRecursive returns the equivalent finite rule set for bounded formulas.
func (c *Compilation) NonRecursive() ([]ast.Rule, error) {
	if !c.Result.Bounded {
		return nil, fmt.Errorf("core: class %s is not bounded", c.Result.Class.Code())
	}
	return rewrite.NonRecursiveExpansions(c.Sys, c.Result.RankBound)
}

// ResolutionGraph returns the k-th resolution graph of the recursive rule.
func (c *Compilation) ResolutionGraph(k int) *igraph.Resolution {
	r := igraph.NewResolution(c.IGraph)
	r.Expand(k)
	return r
}

// Explain renders a full analysis report: the rules, the I-graph, the
// classification and the derived properties.
func (c *Compilation) Explain() string {
	var b strings.Builder
	b.WriteString("recursive rule:\n  ")
	b.WriteString(c.Sys.Recursive.String())
	b.WriteString("\nexit rules:\n")
	for _, e := range c.Sys.Exits {
		b.WriteString("  " + e.String() + "\n")
	}
	b.WriteString("I-graph:\n")
	for _, line := range strings.Split(strings.TrimRight(c.IGraph.String(), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	b.WriteString(c.Result.Explain())
	return b.String()
}

// ExplainQuery renders the plan report for a query form.
func (c *Compilation) ExplainQuery(q ast.Query) (string, error) {
	f, err := c.PlanFor(q)
	if err != nil {
		return "", err
	}
	return f.String(), nil
}
