package ast

import (
	"errors"
	"testing"
)

func TestValidateRecursiveAccepts(t *testing.T) {
	good := []Rule{
		NewRule(NewAtom("p", V("X"), V("Y")),
			NewAtom("a", V("X"), V("Z")), NewAtom("p", V("Z"), V("Y"))),
		NewRule(NewAtom("p", V("X"), V("Y"), V("Z")), NewAtom("p", V("Y"), V("Z"), V("X"))),
		NewRule(NewAtom("p", V("X")), NewAtom("a", V("X"), V("Y")), NewAtom("p", V("Y"))),
	}
	for _, r := range good {
		if err := ValidateRecursive(r); err != nil {
			t.Errorf("%v: unexpected error %v", r, err)
		}
	}
}

func TestValidateRecursiveRejects(t *testing.T) {
	cases := []struct {
		rule Rule
		want error
	}{
		{
			// No recursive occurrence.
			NewRule(NewAtom("p", V("X")), NewAtom("a", V("X"))),
			ErrNotRecursive,
		},
		{
			// Two recursive occurrences.
			NewRule(NewAtom("p", V("X")),
				NewAtom("p", V("X")), NewAtom("p", V("X"))),
			ErrNotLinear,
		},
		{
			// Constant in the rule.
			NewRule(NewAtom("p", V("X")),
				NewAtom("a", V("X"), C("k")), NewAtom("p", V("X"))),
			ErrConstantInRule,
		},
		{
			// Repeated variable under the consequent occurrence.
			NewRule(NewAtom("p", V("X"), V("X")),
				NewAtom("p", V("X"), V("Y")), NewAtom("a", V("X"), V("Y"))),
			ErrRepeatedRecVar,
		},
		{
			// Repeated variable under the antecedent occurrence.
			NewRule(NewAtom("p", V("X"), V("Y")),
				NewAtom("a", V("X"), V("Y"), V("Z")), NewAtom("p", V("Z"), V("Z"))),
			ErrRepeatedRecVar,
		},
		{
			// Arity mismatch between occurrences.
			NewRule(NewAtom("p", V("X"), V("Y")),
				NewAtom("a", V("X"), V("Y")), NewAtom("p", V("X"))),
			ErrArityMismatch,
		},
		{
			// Head variable missing from the body.
			NewRule(NewAtom("p", V("X"), V("Y")),
				NewAtom("a", V("X"), V("Z")), NewAtom("p", V("Z"), V("W"))),
			ErrNotRangeRestricted,
		},
	}
	for _, tc := range cases {
		err := ValidateRecursive(tc.rule)
		if err == nil {
			t.Errorf("%v: expected error %v, got nil", tc.rule, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%v: got %v, want %v", tc.rule, err, tc.want)
		}
	}
}

func TestValidateExit(t *testing.T) {
	ok := NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"), V("Y")))
	if err := ValidateExit(ok, "p", 2); err != nil {
		t.Errorf("valid exit rejected: %v", err)
	}
	if err := ValidateExit(ok, "q", 2); err == nil {
		t.Error("wrong head predicate accepted")
	}
	if err := ValidateExit(ok, "p", 3); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := NewRule(NewAtom("p", V("X")), NewAtom("p", V("X")))
	if err := ValidateExit(bad, "p", 1); err == nil {
		t.Error("recursive exit body accepted")
	}
}

func TestNewRecursiveSystem(t *testing.T) {
	rec := NewRule(NewAtom("p", V("X"), V("Y")),
		NewAtom("a", V("X"), V("Z")), NewAtom("p", V("Z"), V("Y")))
	exit := DefaultExit("p", 2, "e")
	sys, err := NewRecursiveSystem(rec, exit)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Pred() != "p" || sys.Arity() != 2 {
		t.Errorf("pred/arity = %s/%d", sys.Pred(), sys.Arity())
	}
	prog := sys.Program()
	if len(prog.Rules) != 2 {
		t.Errorf("program rules = %d", len(prog.Rules))
	}
	if _, err := NewRecursiveSystem(exit); err == nil {
		t.Error("non-recursive rule accepted as recursive")
	}
	badExit := NewRule(NewAtom("q", V("X"), V("Y")), NewAtom("e", V("X"), V("Y")))
	if _, err := NewRecursiveSystem(rec, badExit); err == nil {
		t.Error("exit for wrong predicate accepted")
	}
}

func TestDefaultExit(t *testing.T) {
	e := DefaultExit("p", 3, "base")
	if e.String() != "p(x1, x2, x3) :- base(x1, x2, x3)." {
		t.Errorf("DefaultExit = %v", e)
	}
	if err := ValidateExit(e, "p", 3); err != nil {
		t.Errorf("DefaultExit invalid: %v", err)
	}
}
