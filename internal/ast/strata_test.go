package ast

import (
	"errors"
	"testing"
)

func rule(head Atom, body ...Atom) Rule { return NewRule(head, body...) }

func TestCheckSafety(t *testing.T) {
	ok := rule(NewAtom("p", V("X")),
		NewAtom("q", V("X")), NewAtom("r", V("X")).Not())
	if err := CheckSafety(ok); err != nil {
		t.Errorf("safe rule rejected: %v", err)
	}
	unsafeNeg := rule(NewAtom("p", V("X")),
		NewAtom("q", V("X")), NewAtom("r", V("X"), V("Y")).Not())
	if err := CheckSafety(unsafeNeg); !errors.Is(err, ErrUnsafeNegation) {
		t.Errorf("unsafe negation: got %v", err)
	}
	unsafeHead := rule(NewAtom("p", V("X"), V("Y")), NewAtom("q", V("X")))
	if err := CheckSafety(unsafeHead); !errors.Is(err, ErrUnsafeNegation) {
		t.Errorf("unsafe head: got %v", err)
	}
	constOK := rule(NewAtom("p", C("k")), NewAtom("q", V("Z")))
	if err := CheckSafety(constOK); err != nil {
		t.Errorf("constant head rejected: %v", err)
	}
}

func TestStratifyPurePositiveSingleGroup(t *testing.T) {
	p := &Program{}
	p.AddRule(rule(NewAtom("a", V("X")), NewAtom("e", V("X"))))
	p.AddRule(rule(NewAtom("b", V("X")), NewAtom("a", V("X"))))
	groups, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Errorf("groups = %d (sizes %v)", len(groups), groups)
	}
}

func TestStratifyLevels(t *testing.T) {
	p := &Program{}
	p.AddRule(rule(NewAtom("a", V("X")), NewAtom("e", V("X"))))
	p.AddRule(rule(NewAtom("b", V("X")), NewAtom("u", V("X")), NewAtom("a", V("X")).Not()))
	p.AddRule(rule(NewAtom("c", V("X")), NewAtom("u", V("X")), NewAtom("b", V("X")).Not()))
	groups, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	order := []string{"a", "b", "c"}
	for i, g := range groups {
		if len(g) != 1 || g[0].Head.Pred != order[i] {
			t.Errorf("group %d = %v", i, g)
		}
	}
}

func TestStratifyMutualRecursionWithinStratum(t *testing.T) {
	// even/odd mutual positive recursion with a negation above it.
	p := &Program{}
	p.AddRule(rule(NewAtom("even", V("X")), NewAtom("zero", V("X"))))
	p.AddRule(rule(NewAtom("even", V("X")), NewAtom("succ", V("Y"), V("X")), NewAtom("odd", V("Y"))))
	p.AddRule(rule(NewAtom("odd", V("X")), NewAtom("succ", V("Y"), V("X")), NewAtom("even", V("Y"))))
	p.AddRule(rule(NewAtom("strange", V("X")), NewAtom("num", V("X")), NewAtom("even", V("X")).Not()))
	groups, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0]) != 3 || groups[1][0].Head.Pred != "strange" {
		t.Errorf("stratification wrong: %v", groups)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := &Program{}
	p.AddRule(rule(NewAtom("win", V("X")),
		NewAtom("move", V("X"), V("Y")), NewAtom("win", V("Y")).Not()))
	if _, err := Stratify(p); !errors.Is(err, ErrNotStratifiable) {
		t.Errorf("got %v, want ErrNotStratifiable", err)
	}
	// Longer negative cycle through two predicates.
	p2 := &Program{}
	p2.AddRule(rule(NewAtom("a", V("X")), NewAtom("u", V("X")), NewAtom("b", V("X")).Not()))
	p2.AddRule(rule(NewAtom("b", V("X")), NewAtom("u", V("X")), NewAtom("a", V("X")).Not()))
	if _, err := Stratify(p2); !errors.Is(err, ErrNotStratifiable) {
		t.Errorf("two-pred cycle: got %v, want ErrNotStratifiable", err)
	}
}

func TestHasNegation(t *testing.T) {
	p := &Program{}
	p.AddRule(rule(NewAtom("a", V("X")), NewAtom("e", V("X"))))
	if HasNegation(p) {
		t.Error("positive program reported negated")
	}
	p.AddRule(rule(NewAtom("b", V("X")), NewAtom("u", V("X")), NewAtom("a", V("X")).Not()))
	if !HasNegation(p) {
		t.Error("negation not detected")
	}
}

func TestNotAtomRendering(t *testing.T) {
	a := NewAtom("r", V("X")).Not()
	if a.String() != "not r(X)" {
		t.Errorf("rendering = %q", a.String())
	}
	if a.Equal(NewAtom("r", V("X"))) {
		t.Error("negated atom equal to positive")
	}
	c := a.Clone()
	if !c.Neg {
		t.Error("clone lost negation")
	}
}
