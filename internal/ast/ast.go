// Package ast defines the abstract syntax of the function-free Horn-clause
// language studied in Youn, Henschen & Han (SIGMOD 1988): terms, atoms,
// rules, facts, queries and whole programs, together with the syntactic
// restrictions the paper places on linear recursive formulas.
package ast

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// TermKind discriminates the two kinds of term in the function-free language.
type TermKind uint8

const (
	// Variable is a logical variable (written lower- or upper-case by the
	// parser; the AST does not care).
	Variable TermKind = iota
	// Constant is an uninterpreted constant symbol.
	Constant
)

// Term is a variable or a constant. The language is function-free, so no
// deeper structure exists.
type Term struct {
	Kind TermKind
	Name string
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: Variable, Name: name} }

// C returns a constant term.
func C(name string) Term { return Term{Kind: Constant, Name: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// String renders the term in re-parseable surface syntax: variables and
// bare constants (lowercase identifiers, integers) print as-is; any other
// constant is quoted.
func (t Term) String() string {
	if t.Kind == Constant && !isBareConstant(t.Name) {
		return strconv.Quote(t.Name)
	}
	return t.Name
}

// isBareConstant reports whether name lexes back as a constant token: a
// lowercase-initial identifier or an integer literal.
func isBareConstant(name string) bool {
	if name == "" {
		return false
	}
	runes := []rune(name)
	if unicode.IsLower(runes[0]) {
		for _, r := range runes[1:] {
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '\'' {
				return false
			}
		}
		return true
	}
	start := 0
	if runes[0] == '-' {
		if len(runes) == 1 {
			return false
		}
		start = 1
	}
	for _, r := range runes[start:] {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return unicode.IsDigit(runes[start])
}

// Atom is a predicate applied to terms, e.g. P(x, y).
type Atom struct {
	Pred string
	Args []Term
	// Neg marks a negated body literal ("not p(X)"). Negation is a
	// substrate extension for the bottom-up engines (stratified semantics);
	// the paper's recursive systems are pure positive and the §2 validator
	// rejects negated literals.
	Neg bool
}

// NewAtom builds a positive atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Not returns the negated form of the atom.
func (a Atom) Not() Atom {
	out := a.Clone()
	out.Neg = true
	return out
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) Vars() []string {
	seen := make(map[string]bool, len(a.Args))
	var out []string
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// String renders the atom in the surface syntax, e.g. "P(x, y)".
func (a Atom) String() string {
	var b strings.Builder
	if a.Neg {
		b.WriteString("not ")
	}
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || a.Neg != b.Neg || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args, Neg: a.Neg}
}

// Rename returns a copy of the atom with every variable mapped through sub;
// variables absent from sub are kept.
func (a Atom) Rename(sub map[string]Term) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar() {
			if r, ok := sub[t.Name]; ok {
				out.Args[i] = r
			}
		}
	}
	return out
}

// Rule is a Horn clause Head :- Body[0] ∧ … ∧ Body[n-1]. An empty body
// denotes a fact (the head must then be ground to be storable).
type Rule struct {
	Head Atom
	Body []Atom
}

// NewRule builds a rule.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: head, Body: body}
}

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// String renders the rule in the surface syntax.
func (r Rule) String() string {
	if r.IsFact() {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Clone()
	}
	return Rule{Head: r.Head.Clone(), Body: body}
}

// Rename returns a copy of the rule with all variables mapped through sub.
func (r Rule) Rename(sub map[string]Term) Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Rename(sub)
	}
	return Rule{Head: r.Head.Rename(sub), Body: body}
}

// Vars returns the distinct variables of the rule in order of first
// occurrence (head first, then body left to right).
func (r Rule) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a Atom) {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	add(r.Head)
	for _, a := range r.Body {
		add(a)
	}
	return out
}

// RecursiveAtoms returns the indexes of body atoms whose predicate equals the
// head predicate.
func (r Rule) RecursiveAtoms() []int {
	var idx []int
	for i, a := range r.Body {
		if a.Pred == r.Head.Pred {
			idx = append(idx, i)
		}
	}
	return idx
}

// IsLinearRecursive reports whether the rule contains exactly one occurrence
// of the head predicate in its body.
func (r Rule) IsLinearRecursive() bool { return len(r.RecursiveAtoms()) == 1 }

// RecursiveAtom returns the single recursive body atom and its index. It
// panics unless the rule is linear recursive; call IsLinearRecursive first.
func (r Rule) RecursiveAtom() (Atom, int) {
	idx := r.RecursiveAtoms()
	if len(idx) != 1 {
		panic(fmt.Sprintf("ast: rule %v is not linear recursive", r))
	}
	return r.Body[idx[0]], idx[0]
}

// NonRecursiveAtoms returns the body atoms whose predicate differs from the
// head predicate, preserving order.
func (r Rule) NonRecursiveAtoms() []Atom {
	var out []Atom
	for _, a := range r.Body {
		if a.Pred != r.Head.Pred {
			out = append(out, a)
		}
	}
	return out
}

// Program is a set of rules and ground facts. Rules is ordered as given;
// Facts is ordered as given.
type Program struct {
	Rules []Rule
	Facts []Atom
}

// AddRule appends a rule (or records a ground head as a fact).
func (p *Program) AddRule(r Rule) {
	if r.IsFact() && r.Head.IsGround() {
		p.Facts = append(p.Facts, r.Head)
		return
	}
	p.Rules = append(p.Rules, r)
}

// RulesFor returns all non-fact rules whose head predicate is pred.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// IDBPreds returns the sorted set of predicates defined by rules.
func (p *Program) IDBPreds() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EDBPreds returns the sorted set of predicates that appear in rule bodies or
// facts but are not defined by any rule.
func (p *Program) EDBPreds() []string {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
	}
	for _, f := range p.Facts {
		if !idb[f.Pred] {
			set[f.Pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the program, rules first, then facts.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// Query is a single atom whose constant arguments are bindings and whose
// variable arguments are requested outputs, e.g. P(a, b, Z).
type Query struct {
	Atom Atom
}

// String renders the query in the surface syntax "?- P(a, Y).".
func (q Query) String() string { return "?- " + q.Atom.String() + "." }
