package ast

import (
	"errors"
	"fmt"
)

// Restriction violations reported by ValidateRecursive. Each corresponds to
// one of the assumptions in §2 of the paper.
var (
	// ErrNotRecursive: the rule does not mention its head predicate in the body.
	ErrNotRecursive = errors.New("rule is not recursive")
	// ErrNotLinear: more than one occurrence of the recursive predicate in the body.
	ErrNotLinear = errors.New("rule is not linear (multiple recursive occurrences)")
	// ErrConstantInRule: the paper disallows constants in recursive statements.
	ErrConstantInRule = errors.New("constant appears in recursive rule")
	// ErrRepeatedRecVar: a variable appears more than once under the recursive predicate.
	ErrRepeatedRecVar = errors.New("variable repeated under recursive predicate")
	// ErrArityMismatch: head and recursive body atom have different arities.
	ErrArityMismatch = errors.New("recursive predicate arity mismatch")
	// ErrNotRangeRestricted: a head variable neither appears in a non-recursive
	// body literal nor is chained through the recursive predicate (Gallaire et
	// al. range restriction, as used in §3 of the paper).
	ErrNotRangeRestricted = errors.New("rule is not range restricted")
	// ErrNegationInFragment: the paper's linear recursive systems are pure
	// positive; negated literals are only supported by the bottom-up
	// engines under stratified semantics.
	ErrNegationInFragment = errors.New("negated literal outside the paper's fragment")
)

// ValidateRecursive checks that r satisfies every restriction the paper
// places on a (single) linear recursive statement:
//
//   - function-free Horn clause (guaranteed by the AST),
//   - exactly one occurrence of the recursive predicate in the antecedent,
//   - no equality literal (the AST has no equality),
//   - no constants anywhere in the statement,
//   - no variable appearing more than once under the recursive predicate
//     (both the consequent and the antecedent occurrence),
//   - range restriction: every variable of the consequent also appears in
//     the antecedent.
//
// It returns nil when the rule is admissible, otherwise an error wrapping one
// of the Err* sentinel values above.
func ValidateRecursive(r Rule) error {
	rec := r.RecursiveAtoms()
	switch {
	case len(rec) == 0:
		return fmt.Errorf("%w: %v", ErrNotRecursive, r)
	case len(rec) > 1:
		return fmt.Errorf("%w: %v", ErrNotLinear, r)
	}
	body := r.Body[rec[0]]
	if len(body.Args) != len(r.Head.Args) {
		return fmt.Errorf("%w: head %d vs body %d", ErrArityMismatch, len(r.Head.Args), len(body.Args))
	}
	for _, a := range append([]Atom{r.Head}, r.Body...) {
		if a.Neg {
			return fmt.Errorf("%w: negated literal %v", ErrNegationInFragment, a)
		}
		for _, t := range a.Args {
			if !t.IsVar() {
				return fmt.Errorf("%w: %v in %v", ErrConstantInRule, t, a)
			}
		}
	}
	for _, occ := range []Atom{r.Head, body} {
		seen := make(map[string]bool, len(occ.Args))
		for _, t := range occ.Args {
			if seen[t.Name] {
				return fmt.Errorf("%w: %s in %v", ErrRepeatedRecVar, t.Name, occ)
			}
			seen[t.Name] = true
		}
	}
	inBody := make(map[string]bool)
	for _, a := range r.Body {
		for _, t := range a.Args {
			inBody[t.Name] = true
		}
	}
	for _, t := range r.Head.Args {
		if !inBody[t.Name] {
			return fmt.Errorf("%w: head variable %s not in body", ErrNotRangeRestricted, t.Name)
		}
	}
	return nil
}

// ValidateExit checks that r is an admissible exit rule for the recursive
// predicate pred of arity n: its head is pred/n and its body mentions only
// non-recursive predicates.
func ValidateExit(r Rule, pred string, arity int) error {
	if r.Head.Pred != pred {
		return fmt.Errorf("exit rule head %s, want %s", r.Head.Pred, pred)
	}
	if r.Head.Arity() != arity {
		return fmt.Errorf("%w: exit head arity %d, want %d", ErrArityMismatch, r.Head.Arity(), arity)
	}
	for _, a := range r.Body {
		if a.Pred == pred {
			return fmt.Errorf("exit rule body mentions recursive predicate %s", pred)
		}
		if a.Neg {
			return fmt.Errorf("%w: %v in exit rule", ErrNegationInFragment, a)
		}
	}
	return nil
}

// RecursiveSystem is the object of study in the paper: one linear recursive
// rule for predicate P together with one or more exit rules P :- E.
type RecursiveSystem struct {
	Recursive Rule
	Exits     []Rule
}

// NewRecursiveSystem validates and assembles a recursive system. The
// recursive rule must satisfy ValidateRecursive and every exit rule must
// satisfy ValidateExit.
func NewRecursiveSystem(rec Rule, exits ...Rule) (*RecursiveSystem, error) {
	if err := ValidateRecursive(rec); err != nil {
		return nil, err
	}
	for _, e := range exits {
		if err := ValidateExit(e, rec.Head.Pred, rec.Head.Arity()); err != nil {
			return nil, err
		}
	}
	return &RecursiveSystem{Recursive: rec, Exits: exits}, nil
}

// Pred returns the recursive predicate name.
func (s *RecursiveSystem) Pred() string { return s.Recursive.Head.Pred }

// Arity returns the arity (the paper's dimension D) of the recursive
// predicate.
func (s *RecursiveSystem) Arity() int { return s.Recursive.Head.Arity() }

// Program returns the system as a Program (recursive rule first).
func (s *RecursiveSystem) Program() *Program {
	p := &Program{}
	p.AddRule(s.Recursive)
	for _, e := range s.Exits {
		p.AddRule(e)
	}
	return p
}

// DefaultExit builds the generic exit rule P(x1..xn) :- E(x1..xn) that the
// paper writes as "P :- E" when the exit structure does not matter. exitPred
// names the exit relation (conventionally "E" or "e").
func DefaultExit(pred string, arity int, exitPred string) Rule {
	args := make([]Term, arity)
	for i := range args {
		args[i] = V(fmt.Sprintf("x%d", i+1))
	}
	return NewRule(NewAtom(pred, args...), NewAtom(exitPred, args...))
}
