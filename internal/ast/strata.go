package ast

import (
	"errors"
	"fmt"
	"sort"
)

// Stratified-negation analysis for the bottom-up substrate. The paper's
// fragment is pure positive Datalog; these checks admit general programs
// with negated body literals as long as no recursion passes through
// negation (the classic stratification condition) and every rule is safe.

// ErrNotStratifiable reports recursion through negation.
var ErrNotStratifiable = errors.New("program is not stratifiable (recursion through negation)")

// ErrUnsafeNegation reports a negated literal with a variable that no
// positive literal of the same body binds.
var ErrUnsafeNegation = errors.New("unsafe negation")

// CheckSafety verifies that every variable of each negated body literal
// also occurs in a positive body literal of the same rule (so the negated
// literal can be evaluated as an anti-join over bound values), and that
// every head variable occurs in a positive body literal.
func CheckSafety(r Rule) error {
	positive := make(map[string]bool)
	for _, a := range r.Body {
		if a.Neg {
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() {
				positive[t.Name] = true
			}
		}
	}
	for _, a := range r.Body {
		if !a.Neg {
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() && !positive[t.Name] {
				return fmt.Errorf("%w: variable %s of %v not bound positively in %v",
					ErrUnsafeNegation, t.Name, a, r)
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() && !positive[t.Name] {
			return fmt.Errorf("%w: head variable %s of %v not bound positively",
				ErrUnsafeNegation, t.Name, r)
		}
	}
	return nil
}

// Stratify partitions the program's rules into strata: every predicate's
// rules land in one stratum, a positive dependency may stay within a
// stratum, and a negative dependency must point to a strictly lower
// stratum. It returns the rule groups in evaluation order, or
// ErrNotStratifiable when a cycle passes through negation.
func Stratify(p *Program) ([][]Rule, error) {
	for _, r := range p.Rules {
		if err := CheckSafety(r); err != nil {
			return nil, err
		}
	}
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// stratum numbers per predicate, computed by the classic iterative
	// algorithm: s(head) ≥ s(positive dep), s(head) ≥ s(negative dep)+1.
	strat := make(map[string]int)
	preds := make([]string, 0, len(idb))
	for p := range idb {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	n := len(preds)
	for iter := 0; ; iter++ {
		if iter > n*n+1 {
			return nil, fmt.Errorf("%w", ErrNotStratifiable)
		}
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, a := range r.Body {
				if !idb[a.Pred] {
					continue
				}
				need := strat[a.Pred]
				if a.Neg {
					need++
				}
				if strat[h] < need {
					strat[h] = need
					changed = true
					if strat[h] > n {
						return nil, fmt.Errorf("%w: predicate %s", ErrNotStratifiable, h)
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	maxS := 0
	for _, s := range strat {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.Rules {
		s := strat[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	// Drop empty strata (possible when predicates share levels).
	var compact [][]Rule
	for _, g := range out {
		if len(g) > 0 {
			compact = append(compact, g)
		}
	}
	return compact, nil
}

// HasNegation reports whether any rule body contains a negated literal.
func HasNegation(p *Program) bool {
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Neg {
				return true
			}
		}
	}
	return false
}
