package ast

import (
	"strings"
	"testing"
)

func TestTermConstructors(t *testing.T) {
	v := V("X")
	if !v.IsVar() || v.Name != "X" {
		t.Errorf("V(X) = %+v", v)
	}
	c := C("alice")
	if c.IsVar() || c.Name != "alice" {
		t.Errorf("C(alice) = %+v", c)
	}
	if v.String() != "X" || c.String() != "alice" {
		t.Errorf("term strings: %q %q", v, c)
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("p", V("X"), C("a"), V("X"))
	if a.Arity() != 3 {
		t.Errorf("arity = %d", a.Arity())
	}
	if a.IsGround() {
		t.Error("atom with variables reported ground")
	}
	if got := a.String(); got != "p(X, a, X)" {
		t.Errorf("String = %q", got)
	}
	vars := a.Vars()
	if len(vars) != 1 || vars[0] != "X" {
		t.Errorf("Vars = %v (repeated variables must dedup)", vars)
	}
	g := NewAtom("e", C("a"), C("b"))
	if !g.IsGround() {
		t.Error("ground atom not recognized")
	}
	if len(g.Vars()) != 0 {
		t.Error("ground atom has vars")
	}
}

func TestAtomZeroArity(t *testing.T) {
	a := NewAtom("done")
	if a.Arity() != 0 || !a.IsGround() {
		t.Errorf("0-ary atom: %v", a)
	}
	if a.String() != "done()" {
		t.Errorf("String = %q", a.String())
	}
}

func TestAtomEqualAndClone(t *testing.T) {
	a := NewAtom("p", V("X"), C("a"))
	b := NewAtom("p", V("X"), C("a"))
	if !a.Equal(b) {
		t.Error("identical atoms not equal")
	}
	if a.Equal(NewAtom("p", V("X"))) {
		t.Error("different arity equal")
	}
	if a.Equal(NewAtom("q", V("X"), C("a"))) {
		t.Error("different predicate equal")
	}
	if a.Equal(NewAtom("p", C("X"), C("a"))) {
		t.Error("var/const confusion")
	}
	c := a.Clone()
	c.Args[0] = V("Y")
	if a.Args[0].Name != "X" {
		t.Error("clone shares argument storage")
	}
}

func TestAtomRename(t *testing.T) {
	a := NewAtom("p", V("X"), V("Y"), C("k"))
	r := a.Rename(map[string]Term{"X": V("Z"), "k": V("BAD")})
	if r.String() != "p(Z, Y, k)" {
		t.Errorf("rename = %v (constants must not rename)", r)
	}
	if a.String() != "p(X, Y, k)" {
		t.Error("rename mutated the original")
	}
}

func TestRuleBasics(t *testing.T) {
	r := NewRule(NewAtom("p", V("X"), V("Y")),
		NewAtom("a", V("X"), V("Z")),
		NewAtom("p", V("Z"), V("Y")))
	if r.IsFact() {
		t.Error("rule with body reported as fact")
	}
	if got := r.String(); got != "p(X, Y) :- a(X, Z), p(Z, Y)." {
		t.Errorf("String = %q", got)
	}
	if !r.IsLinearRecursive() {
		t.Error("linear recursive rule not recognized")
	}
	atom, idx := r.RecursiveAtom()
	if idx != 1 || atom.Pred != "p" {
		t.Errorf("RecursiveAtom = %v at %d", atom, idx)
	}
	nr := r.NonRecursiveAtoms()
	if len(nr) != 1 || nr[0].Pred != "a" {
		t.Errorf("NonRecursiveAtoms = %v", nr)
	}
	vars := r.Vars()
	want := []string{"X", "Y", "Z"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %s, want %s (first-occurrence order)", i, vars[i], want[i])
		}
	}
}

func TestRuleFactAndString(t *testing.T) {
	f := NewRule(NewAtom("e", C("a"), C("b")))
	if !f.IsFact() {
		t.Error("empty body not a fact")
	}
	if f.String() != "e(a, b)." {
		t.Errorf("fact String = %q", f.String())
	}
}

func TestRuleRecursiveAtomPanicsOnNonLinear(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")),
		NewAtom("p", V("X")), NewAtom("p", V("X")))
	defer func() {
		if recover() == nil {
			t.Error("RecursiveAtom on non-linear rule did not panic")
		}
	}()
	r.RecursiveAtom()
}

func TestRuleCloneAndRenameIndependence(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")), NewAtom("a", V("X"), V("Y")), NewAtom("p", V("Y")))
	c := r.Clone()
	c.Body[0].Args[0] = V("MUT")
	if r.Body[0].Args[0].Name != "X" {
		t.Error("clone shares body storage")
	}
	rn := r.Rename(map[string]Term{"Y": V("W")})
	if rn.String() != "p(X) :- a(X, W), p(W)." {
		t.Errorf("rename = %v", rn)
	}
	if strings.Contains(r.String(), "W") {
		t.Error("rename mutated original")
	}
}

func TestProgramPredicateSets(t *testing.T) {
	p := &Program{}
	p.AddRule(NewRule(NewAtom("p", V("X"), V("Y")),
		NewAtom("e", V("X"), V("Y"))))
	p.AddRule(NewRule(NewAtom("p", V("X"), V("Y")),
		NewAtom("e", V("X"), V("Z")), NewAtom("p", V("Z"), V("Y"))))
	p.AddRule(NewRule(NewAtom("e", C("a"), C("b")))) // ground fact
	if len(p.Facts) != 1 || len(p.Rules) != 2 {
		t.Fatalf("facts=%d rules=%d", len(p.Facts), len(p.Rules))
	}
	idb := p.IDBPreds()
	if len(idb) != 1 || idb[0] != "p" {
		t.Errorf("IDB = %v", idb)
	}
	edb := p.EDBPreds()
	if len(edb) != 1 || edb[0] != "e" {
		t.Errorf("EDB = %v", edb)
	}
	if got := len(p.RulesFor("p")); got != 2 {
		t.Errorf("RulesFor(p) = %d", got)
	}
	if !strings.Contains(p.String(), "e(a, b).") {
		t.Errorf("program string missing fact:\n%s", p)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Atom: NewAtom("p", C("a"), V("Y"))}
	if q.String() != "?- p(a, Y)." {
		t.Errorf("query = %q", q.String())
	}
}
