package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func rel(arity int, tuples ...storage.Tuple) *storage.Relation {
	r := storage.NewRelation(arity)
	for _, t := range tuples {
		r.Insert(t)
	}
	return r
}

func TestSelect(t *testing.T) {
	r := rel(2, storage.Tuple{1, 2}, storage.Tuple{1, 3}, storage.Tuple{2, 3})
	s := Select(r, 0, 1)
	if s.Len() != 2 {
		t.Errorf("σ = %d tuples", s.Len())
	}
	if Select(r, 1, 9).Len() != 0 {
		t.Error("selection on absent value nonempty")
	}
}

func TestSelectWhere(t *testing.T) {
	r := rel(1, storage.Tuple{1}, storage.Tuple{2}, storage.Tuple{3})
	s := SelectWhere(r, func(tp storage.Tuple) bool { return tp[0] >= 2 })
	if s.Len() != 2 {
		t.Errorf("σ_pred = %d", s.Len())
	}
}

func TestProject(t *testing.T) {
	r := rel(3, storage.Tuple{1, 2, 3}, storage.Tuple{1, 2, 4})
	p := Project(r, 0, 1)
	if p.Len() != 1 || p.Arity() != 2 {
		t.Errorf("π dedup failed: len=%d arity=%d", p.Len(), p.Arity())
	}
	swapped := Project(r, 2, 0)
	if !swapped.Contains(storage.Tuple{3, 1}) {
		t.Error("π reorder failed")
	}
	dup := Project(r, 0, 0)
	if !dup.Contains(storage.Tuple{1, 1}) {
		t.Error("π column repetition failed")
	}
}

func TestUnionDifference(t *testing.T) {
	a := rel(1, storage.Tuple{1}, storage.Tuple{2})
	b := rel(1, storage.Tuple{2}, storage.Tuple{3})
	u := Union(a, b)
	if u.Len() != 3 {
		t.Errorf("∪ = %d", u.Len())
	}
	d := Difference(a, b)
	if d.Len() != 1 || !d.Contains(storage.Tuple{1}) {
		t.Errorf("− wrong")
	}
	// Union must not mutate inputs.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("union mutated inputs")
	}
}

func TestUnionArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Union(rel(1), rel(2))
}

func TestProductAndJoin(t *testing.T) {
	a := rel(2, storage.Tuple{1, 2}, storage.Tuple{3, 4})
	b := rel(2, storage.Tuple{2, 5}, storage.Tuple{9, 9})
	p := Product(a, b)
	if p.Len() != 4 || p.Arity() != 4 {
		t.Errorf("× = %d/%d", p.Len(), p.Arity())
	}
	j := Join(a, b, []int{1}, []int{0})
	if j.Len() != 1 || !j.Contains(storage.Tuple{1, 2, 2, 5}) {
		t.Errorf("⋈ wrong: %v", j.Tuples())
	}
	// Join on no columns = product.
	if Join(a, b, nil, nil).Len() != 4 {
		t.Error("0-column join is not the product")
	}
}

func TestSemiJoin(t *testing.T) {
	a := rel(2, storage.Tuple{1, 2}, storage.Tuple{3, 4})
	b := rel(1, storage.Tuple{2})
	s := SemiJoin(a, b, []int{1}, []int{0})
	if s.Len() != 1 || !s.Contains(storage.Tuple{1, 2}) {
		t.Errorf("⋉ wrong: %v", s.Tuples())
	}
}

func TestComposeAndInverse(t *testing.T) {
	e := rel(2, storage.Tuple{1, 2}, storage.Tuple{2, 3}, storage.Tuple{3, 4})
	c := Compose(e, e) // paths of length 2
	want := rel(2, storage.Tuple{1, 3}, storage.Tuple{2, 4})
	if !c.Equal(want) {
		t.Errorf("compose = %v", c.Tuples())
	}
	inv := Inverse(e)
	if !inv.Contains(storage.Tuple{2, 1}) || inv.Len() != 3 {
		t.Error("inverse wrong")
	}
	if !Inverse(inv).Equal(e) {
		t.Error("inverse not involutive")
	}
}

func TestImageAndSingleton(t *testing.T) {
	e := rel(2, storage.Tuple{1, 2}, storage.Tuple{1, 3}, storage.Tuple{2, 4})
	front := Singleton(1)
	img := Image(front, e)
	if img.Len() != 2 || !img.Contains(storage.Tuple{2}) || !img.Contains(storage.Tuple{3}) {
		t.Errorf("image = %v", img.Tuples())
	}
	if !IsEmpty(Image(Singleton(9), e)) {
		t.Error("image of absent value nonempty")
	}
}

// TestQuickJoinAgainstNestedLoop validates the indexed join against the
// naive nested-loop definition on random relations.
func TestQuickJoinAgainstNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := storage.NewRelation(2)
		b := storage.NewRelation(2)
		for i := 0; i < 30; i++ {
			a.Insert(storage.Tuple{storage.Value(rng.Intn(5)), storage.Value(rng.Intn(5))})
			b.Insert(storage.Tuple{storage.Value(rng.Intn(5)), storage.Value(rng.Intn(5))})
		}
		got := Join(a, b, []int{1}, []int{0})
		want := storage.NewRelation(4)
		a.Each(func(x storage.Tuple) bool {
			b.Each(func(y storage.Tuple) bool {
				if x[1] == y[0] {
					want.Insert(storage.Tuple{x[0], x[1], y[0], y[1]})
				}
				return true
			})
			return true
		})
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComposeAssociative: relation composition is associative.
func TestQuickComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *storage.Relation {
			r := storage.NewRelation(2)
			for i := 0; i < 15; i++ {
				r.Insert(storage.Tuple{storage.Value(rng.Intn(4)), storage.Value(rng.Intn(4))})
			}
			return r
		}
		a, b, c := mk(), mk(), mk()
		return Compose(Compose(a, b), c).Equal(Compose(a, Compose(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetAlgebra: A = (A−B) ∪ (A ⋉ B) for unary relations joined on
// their single column, and difference/union interplay.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *storage.Relation {
			r := storage.NewRelation(1)
			for i := 0; i < 10; i++ {
				r.Insert(storage.Tuple{storage.Value(rng.Intn(8))})
			}
			return r
		}
		a, b := mk(), mk()
		inB := SemiJoin(a, b, []int{0}, []int{0})
		notB := Difference(a, b)
		return Union(inB, notB).Equal(a) && Difference(inB, notB).Equal(inB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
