// Package ra provides set-level relational algebra over storage.Relation:
// selection, projection, equi-join, union, difference, Cartesian product,
// semijoin, binary composition and inverse. The evaluation engines and the
// compiled-plan executor are built from these operators, following the
// paper's evaluation principle of applying selections before joins.
package ra

import (
	"fmt"

	"repro/internal/storage"
)

// Select returns σ_{col=val}(r).
func Select(r *storage.Relation, col int, val storage.Value) *storage.Relation {
	out := storage.NewRelation(r.Arity())
	for _, pos := range r.LookupCol(col, val) {
		out.Insert(r.Tuples()[pos])
	}
	return out
}

// SelectWhere returns the tuples satisfying pred.
func SelectWhere(r *storage.Relation, pred func(storage.Tuple) bool) *storage.Relation {
	out := storage.NewRelation(r.Arity())
	r.Each(func(t storage.Tuple) bool {
		if pred(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Project returns π_cols(r); cols may repeat or reorder columns.
func Project(r *storage.Relation, cols ...int) *storage.Relation {
	out := storage.NewRelation(len(cols))
	buf := make(storage.Tuple, len(cols))
	r.Each(func(t storage.Tuple) bool {
		for i, c := range cols {
			buf[i] = t[c]
		}
		out.Insert(buf)
		return true
	})
	return out
}

// Union returns r ∪ s. Arities must match.
func Union(r, s *storage.Relation) *storage.Relation {
	if r.Arity() != s.Arity() {
		panic(fmt.Sprintf("ra: union arity mismatch %d vs %d", r.Arity(), s.Arity()))
	}
	out := r.Clone()
	out.InsertAll(s)
	return out
}

// Difference returns r − s.
func Difference(r, s *storage.Relation) *storage.Relation {
	out := storage.NewRelation(r.Arity())
	r.Each(func(t storage.Tuple) bool {
		if !s.Contains(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Product returns r × s with s's columns appended after r's.
func Product(r, s *storage.Relation) *storage.Relation {
	out := storage.NewRelation(r.Arity() + s.Arity())
	buf := make(storage.Tuple, r.Arity()+s.Arity())
	r.Each(func(a storage.Tuple) bool {
		copy(buf, a)
		s.Each(func(b storage.Tuple) bool {
			copy(buf[r.Arity():], b)
			out.Insert(buf)
			return true
		})
		return true
	})
	return out
}

// Join returns the equi-join of r and s on r.rcols[i] = s.scols[i], with s's
// columns appended after r's. It indexes the smaller relation's first join
// column.
func Join(r, s *storage.Relation, rcols, scols []int) *storage.Relation {
	if len(rcols) != len(scols) {
		panic("ra: join column count mismatch")
	}
	out := storage.NewRelation(r.Arity() + s.Arity())
	if len(rcols) == 0 {
		return Product(r, s)
	}
	buf := make(storage.Tuple, r.Arity()+s.Arity())
	bound := make([]bool, s.Arity())
	vals := make(storage.Tuple, s.Arity())
	for _, c := range scols {
		bound[c] = true
	}
	r.Each(func(a storage.Tuple) bool {
		for i, c := range scols {
			vals[c] = a[rcols[i]]
		}
		s.EachMatch(bound, vals, func(b storage.Tuple) bool {
			copy(buf, a)
			copy(buf[r.Arity():], b)
			out.Insert(buf)
			return true
		})
		return true
	})
	return out
}

// SemiJoin returns the tuples of r having at least one join partner in s on
// r.rcols[i] = s.scols[i].
func SemiJoin(r, s *storage.Relation, rcols, scols []int) *storage.Relation {
	out := storage.NewRelation(r.Arity())
	bound := make([]bool, s.Arity())
	vals := make(storage.Tuple, s.Arity())
	for _, c := range scols {
		bound[c] = true
	}
	r.Each(func(a storage.Tuple) bool {
		for i, c := range scols {
			vals[c] = a[rcols[i]]
		}
		found := false
		s.EachMatch(bound, vals, func(storage.Tuple) bool {
			found = true
			return false
		})
		if found {
			out.Insert(a)
		}
		return true
	})
	return out
}

// Compose returns the composition of two binary relations:
// {(x,z) : (x,y) ∈ r, (y,z) ∈ s}. The workhorse of the paper's σA^k chains.
func Compose(r, s *storage.Relation) *storage.Relation {
	if r.Arity() != 2 || s.Arity() != 2 {
		panic("ra: compose requires binary relations")
	}
	return Project(Join(r, s, []int{1}, []int{0}), 0, 3)
}

// Inverse returns {(y,x) : (x,y) ∈ r} for a binary relation.
func Inverse(r *storage.Relation) *storage.Relation {
	if r.Arity() != 2 {
		panic("ra: inverse requires a binary relation")
	}
	return Project(r, 1, 0)
}

// Image returns {y : x ∈ xs, (x,y) ∈ r} for a binary relation: one step of a
// σ-chain frontier.
func Image(xs *storage.Relation, r *storage.Relation) *storage.Relation {
	if xs.Arity() != 1 || r.Arity() != 2 {
		panic("ra: image requires unary frontier and binary relation")
	}
	out := storage.NewRelation(1)
	xs.Each(func(x storage.Tuple) bool {
		for _, pos := range r.LookupCol(0, x[0]) {
			out.Insert(storage.Tuple{r.Tuples()[pos][1]})
		}
		return true
	})
	return out
}

// Singleton returns a unary relation holding just v.
func Singleton(v storage.Value) *storage.Relation {
	r := storage.NewRelation(1)
	r.Insert(storage.Tuple{v})
	return r
}

// IsEmpty reports whether r has no tuples.
func IsEmpty(r *storage.Relation) bool { return r.Len() == 0 }
