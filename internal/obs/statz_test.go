package obs

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestQuantileKnownDistribution(t *testing.T) {
	// Bounds {1,2,4}; samples 0.5, 1.5, 3, 3.5 → bucket counts {1,1,2}, no
	// +Inf overflow. Hand-computed by linear interpolation:
	//   p50: rank 2.0 → bucket (1,2] fraction 1.0 → 2.0
	//   p75: rank 3.0 → bucket (2,4] fraction 0.5 → 3.0
	//   p25: rank 1.0 → bucket [0,1] fraction 1.0 → 1.0
	bounds := []float64{1, 2, 4}
	counts := []int64{1, 1, 2, 0} // len(bounds)+1: last is +Inf
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.25, 1.0}, {0.50, 2.0}, {0.75, 3.0}, {1.00, 4.0}, {0, 0}} {
		if got := quantile(bounds, counts, 4, tc.q); got != tc.want {
			t.Errorf("quantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileInfOverflowClamps(t *testing.T) {
	// All mass in +Inf: a fixed-bucket histogram cannot see past its last
	// bound, so every quantile clamps there.
	bounds := []float64{1, 10}
	counts := []int64{0, 0, 5}
	if got := quantile(bounds, counts, 5, 0.99); got != 10 {
		t.Errorf("quantile with +Inf mass = %v, want clamp to 10", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := quantile([]float64{1, 2}, []int64{0, 0, 0}, 0, 0.5); got != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_us", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 3.5} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 2.0 {
		t.Errorf("Quantile(0.5) = %v, want 2.0", got)
	}
	if got := h.Quantile(0.75); got != 3.0 {
		t.Errorf("Quantile(0.75) = %v, want 3.0", got)
	}
}

func TestPrometheusHistogramExposition(t *testing.T) {
	// The text exposition must be cumulative over le, end with +Inf, and
	// keep _sum/_count consistent with the observations.
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram\n",
		`lat_bucket{le="1"} 1` + "\n",
		`lat_bucket{le="2"} 2` + "\n",
		`lat_bucket{le="4"} 3` + "\n",
		`lat_bucket{le="+Inf"} 4` + "\n",
		"lat_sum 105\n",
		"lat_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestBuildInfoExposition(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE dl_build_info gauge\n") {
		t.Fatalf("missing dl_build_info TYPE line in:\n%s", out)
	}
	for _, want := range []string{
		`go_version="` + runtime.Version() + `"`,
		`goos="` + runtime.GOOS + `"`,
		`gomaxprocs="` + strconv.Itoa(runtime.GOMAXPROCS(0)) + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dl_build_info missing label %s in:\n%s", want, out)
		}
	}
	// The info sample itself is the constant 1.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dl_build_info{") && !strings.HasSuffix(line, "} 1") {
			t.Errorf("dl_build_info sample = %q, want value 1", line)
		}
	}
	// Registering twice keeps the single metric (get-or-create).
	RegisterBuildInfo(r)
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if n := strings.Count(b2.String(), "# TYPE dl_build_info"); n != 1 {
		t.Errorf("dl_build_info registered %d times, want 1", n)
	}
}

func TestStatzEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	h := r.Histogram("lat_us", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 3.5} {
		h.Observe(v)
	}
	RegisterBuildInfo(r)

	mux := NewMux(r)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/statz", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /statz = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /statz JSON: %v", err)
	}
	if got := body["hits"]; got != float64(3) {
		t.Errorf("statz hits = %v, want 3", got)
	}
	lat, ok := body["lat_us"].(map[string]any)
	if !ok {
		t.Fatalf("statz lat_us = %T, want histogram summary object", body["lat_us"])
	}
	// p90: rank 3.6 lands in bucket (2,4] at fraction 0.8 → 3.6.
	if lat["count"] != float64(4) || lat["p50"] != 2.0 || lat["p90"] != 3.6 {
		t.Errorf("lat_us summary = %v, want count=4 p50=2 p90=3.6", lat)
	}
	bi, ok := body[BuildInfoMetric].(map[string]any)
	if !ok || bi["go_version"] != runtime.Version() {
		t.Errorf("statz %s = %v, want labels with go_version", BuildInfoMetric, body[BuildInfoMetric])
	}
}
