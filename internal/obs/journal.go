package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: where
// metrics.go aggregates (a histogram can say p99 regressed but not which
// query regressed it), the Journal remembers individual completed queries —
// a bounded ring of recent records, a separate always-retained ring of
// slow ones, and a table of in-flight queries so a hung evaluation is
// visible with its age instead of silently absorbing a goroutine.
//
// The same hot-path constraint as the rest of the package applies: journal
// operations on the serving path (Begin/End/Record) never allocate — the
// rings and the in-flight table are preallocated and records are copied
// into place by value — and every method is safe on a nil *Journal, so a
// server configured without a journal pays one nil check per request.

// QueryRecord is one completed query as the journal remembers it. Wall and
// Eval are microseconds (Wall covers the whole request, Eval only the
// evaluation/cache probe); Trace, when non-nil, is the obs JSON span tree
// of a sampled or explicitly traced request.
type QueryRecord struct {
	ID        string `json:"id"`
	Query     string `json:"query"`
	Pred      string `json:"pred,omitempty"`
	Arity     int    `json:"arity,omitempty"`
	Adornment string `json:"adornment,omitempty"`
	Class     string `json:"class,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	// Cached/Maintained report how the result cache served the answer;
	// Streamed marks NDJSON (or limit'ed) deliveries.
	Cached     bool   `json:"cached,omitempty"`
	Maintained bool   `json:"maintained,omitempty"`
	Streamed   bool   `json:"streamed,omitempty"`
	Epoch      uint64 `json:"epoch"`
	Shards     int    `json:"shards,omitempty"`
	Rounds     int    `json:"rounds"`
	Derived    int    `json:"derived"`
	Exchanged  int    `json:"exchanged,omitempty"`
	// Cost is the plan's estimated enumeration cost (tuples visited) under
	// its compiled join orders; Visited is the actual count. Both 0 when the
	// evaluation ran on the dynamic greedy ordering.
	Cost      int64 `json:"cost,omitempty"`
	Visited   int64 `json:"visited,omitempty"`
	Rows      int   `json:"rows"`
	Truncated bool  `json:"truncated,omitempty"`
	// Error classifies a failed request: "client" (the request was wrong),
	// "canceled" (the client left), "engine" (the evaluation failed).
	// Empty on success.
	Error   string          `json:"error,omitempty"`
	Start   time.Time       `json:"start"`
	WallUS  int64           `json:"wall_us"`
	EvalUS  int64           `json:"eval_us"`
	Sampled bool            `json:"sampled,omitempty"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

// InflightQuery is one registered-but-unfinished query: what /debug/queries
// shows for requests still evaluating (or hung).
type InflightQuery struct {
	ID    string    `json:"id"`
	Query string    `json:"query"`
	Start time.Time `json:"start"`
	AgeUS int64     `json:"age_us"`
}

// ring is a fixed-capacity overwrite-oldest buffer of records. The zero
// value with a nil recs slice is a valid empty ring that drops everything.
type ring struct {
	recs []QueryRecord
	next int   // slot the next record lands in
	n    int64 // total records ever pushed
}

func newRing(size int) ring {
	if size <= 0 {
		return ring{}
	}
	return ring{recs: make([]QueryRecord, size)}
}

func (r *ring) push(rec QueryRecord) {
	if len(r.recs) == 0 {
		return
	}
	r.recs[r.next] = rec
	r.next = (r.next + 1) % len(r.recs)
	r.n++
}

// snapshot returns the ring's records newest-first.
func (r *ring) snapshot() []QueryRecord {
	live := int(r.n)
	if live > len(r.recs) {
		live = len(r.recs)
	}
	out := make([]QueryRecord, 0, live)
	for i := 1; i <= live; i++ {
		// next-1 is the newest slot, walking backwards.
		out = append(out, r.recs[(r.next-i+len(r.recs))%len(r.recs)])
	}
	return out
}

// DefaultJournalSize bounds the recent and slow rings when the caller
// passes 0.
const DefaultJournalSize = 256

// Journal is the bounded query journal: a recent ring every completed
// request lands in, a slow ring that only requests at or above the latency
// threshold enter (so a burst of fast queries can never evict the one slow
// request worth debugging), and an in-flight table registered at query
// start. All methods are safe on a nil receiver and do nothing there.
type Journal struct {
	mu       sync.Mutex
	recent   ring
	slow     ring
	thresh   time.Duration
	inflight []inflightEntry
	live     int
}

type inflightEntry struct {
	id    string
	query string
	start time.Time
	used  bool
}

// NewJournal builds a journal with the given ring capacity (0 means
// DefaultJournalSize; the slow ring gets the same capacity) and slow-query
// threshold: a completed record whose wall time is >= slowThreshold also
// enters the slow ring. A negative threshold disables the slow ring; zero
// counts every query as slow (useful in tests and smoke scripts).
func NewJournal(size int, slowThreshold time.Duration) *Journal {
	if size <= 0 {
		size = DefaultJournalSize
	}
	j := &Journal{
		recent: newRing(size),
		thresh: slowThreshold,
		// The in-flight table starts small and grows only when more
		// requests than its capacity are simultaneously live.
		inflight: make([]inflightEntry, 16),
	}
	if slowThreshold >= 0 {
		j.slow = newRing(size)
	}
	return j
}

// SlowThreshold returns the configured slow-query latency bound (negative
// when the slow ring is disabled).
func (j *Journal) SlowThreshold() time.Duration {
	if j == nil {
		return -1
	}
	return j.thresh
}

// Begin registers an in-flight query and returns its token for End. On a
// nil journal it returns -1, which End ignores.
func (j *Journal) Begin(id, query string) int {
	if j == nil {
		return -1
	}
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.inflight {
		if !j.inflight[i].used {
			j.inflight[i] = inflightEntry{id: id, query: query, start: now, used: true}
			j.live++
			return i
		}
	}
	// Table full: grow. Rare (needs more simultaneously live requests than
	// ever before), so the allocation stays off the steady-state path.
	j.inflight = append(j.inflight, inflightEntry{id: id, query: query, start: now, used: true})
	j.live++
	return len(j.inflight) - 1
}

// End unregisters an in-flight query. Safe to call with -1 (nil-journal
// Begin) and idempotent per token.
func (j *Journal) End(token int) {
	if j == nil || token < 0 {
		return
	}
	j.mu.Lock()
	if token < len(j.inflight) && j.inflight[token].used {
		j.inflight[token] = inflightEntry{}
		j.live--
	}
	j.mu.Unlock()
}

// Record appends a completed-query record to the recent ring, and to the
// slow ring when its wall time reaches the threshold. The record is copied
// by value into preallocated slots — no allocation.
func (j *Journal) Record(rec QueryRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.recent.push(rec)
	if j.thresh >= 0 && rec.WallUS >= j.thresh.Microseconds() {
		j.slow.push(rec)
	}
	j.mu.Unlock()
}

// Recent returns the completed-query ring, newest first.
func (j *Journal) Recent() []QueryRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recent.snapshot()
}

// Slow returns the slow-query ring, newest first.
func (j *Journal) Slow() []QueryRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slow.snapshot()
}

// Inflight returns the registered-but-unfinished queries with their ages,
// oldest first — a hung query sorts to the top.
func (j *Journal) Inflight() []InflightQuery {
	if j == nil {
		return nil
	}
	now := time.Now()
	j.mu.Lock()
	out := make([]InflightQuery, 0, j.live)
	for i := range j.inflight {
		if e := &j.inflight[i]; e.used {
			out = append(out, InflightQuery{
				ID:    e.id,
				Query: e.query,
				Start: e.start,
				AgeUS: now.Sub(e.start).Microseconds(),
			})
		}
	}
	j.mu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort: the table is small
		for k := i; k > 0 && out[k].Start.Before(out[k-1].Start); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// MountJournal registers the journal's debug endpoints on the mux:
//
//	/debug/queries       {slow_threshold_us, inflight, recent, slow}
//	/debug/queries/slow  {slow_threshold_us, slow}
//
// The handlers snapshot under the journal mutex and marshal outside it, so
// scraping never stalls the serving path.
func MountJournal(mux *http.ServeMux, j *Journal) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	// A disabled slow ring (or disabled journal) reports -1, not the
	// microsecond truncation of the negative sentinel.
	threshUS := func() int64 {
		if t := j.SlowThreshold(); t >= 0 {
			return t.Microseconds()
		}
		return -1
	}
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"slow_threshold_us": threshUS(),
			"inflight":          j.Inflight(),
			"recent":            j.Recent(),
			"slow":              j.Slow(),
		})
	})
	mux.HandleFunc("/debug/queries/slow", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"slow_threshold_us": threshUS(),
			"slow":              j.Slow(),
		})
	})
}

// Sampler decides which requests get a full span tree attached: one in
// every N. A nil sampler never samples, which is how the serving layer
// keeps the nil-tracer zero-allocation hot path when sampling is off.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
}

// NewSampler returns a sampler selecting 1 in every rate requests (the
// first request of each window is the sampled one, so tests and smoke
// scripts see a trace immediately). rate <= 0 returns nil — never sample.
func NewSampler(rate int) *Sampler {
	if rate <= 0 {
		return nil
	}
	return &Sampler{n: uint64(rate)}
}

// Sample reports whether this request is the sampled one. Lock-free, no
// allocation, false on a nil sampler.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return (s.ctr.Add(1)-1)%s.n == 0
}
