package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestJournalRingOverwritesOldest(t *testing.T) {
	j := NewJournal(3, -1)
	for i := 1; i <= 5; i++ {
		j.Record(QueryRecord{ID: string(rune('a' + i - 1)), Rows: i})
	}
	got := j.Recent()
	if len(got) != 3 {
		t.Fatalf("Recent() = %d records, want 3 (ring capacity)", len(got))
	}
	// Newest first: pushes 5, 4, 3 survive; 1 and 2 were overwritten.
	for i, want := range []int{5, 4, 3} {
		if got[i].Rows != want {
			t.Errorf("Recent()[%d].Rows = %d, want %d", i, got[i].Rows, want)
		}
	}
}

func TestJournalPartialRing(t *testing.T) {
	j := NewJournal(8, -1)
	j.Record(QueryRecord{Rows: 1})
	j.Record(QueryRecord{Rows: 2})
	got := j.Recent()
	if len(got) != 2 || got[0].Rows != 2 || got[1].Rows != 1 {
		t.Fatalf("Recent() = %+v, want two records newest-first", got)
	}
}

func TestJournalSlowRingRetention(t *testing.T) {
	// Threshold 1ms: only records at/above 1000us land in the slow ring,
	// and a flood of fast records must never evict them.
	j := NewJournal(4, time.Millisecond)
	j.Record(QueryRecord{ID: "slow-1", WallUS: 1000})
	for i := 0; i < 100; i++ {
		j.Record(QueryRecord{ID: "fast", WallUS: 5})
	}
	slow := j.Slow()
	if len(slow) != 1 || slow[0].ID != "slow-1" {
		t.Fatalf("Slow() = %+v, want exactly the slow-1 record retained", slow)
	}
	if recent := j.Recent(); len(recent) != 4 || recent[0].ID != "fast" {
		t.Fatalf("Recent() = %+v, want 4 fast records", recent)
	}
}

func TestJournalSlowThresholdModes(t *testing.T) {
	zero := NewJournal(2, 0) // zero threshold: everything is slow
	zero.Record(QueryRecord{WallUS: 0})
	if len(zero.Slow()) != 1 {
		t.Errorf("zero threshold: Slow() = %d records, want 1", len(zero.Slow()))
	}
	off := NewJournal(2, -1) // negative: slow ring disabled
	off.Record(QueryRecord{WallUS: 1 << 40})
	if len(off.Slow()) != 0 {
		t.Errorf("disabled slow ring: Slow() = %d records, want 0", len(off.Slow()))
	}
	if off.SlowThreshold() >= 0 {
		t.Errorf("SlowThreshold() = %v, want negative (disabled)", off.SlowThreshold())
	}
}

func TestJournalInflight(t *testing.T) {
	j := NewJournal(4, -1)
	tok1 := j.Begin("r1", "?- p(X).")
	time.Sleep(2 * time.Millisecond)
	tok2 := j.Begin("r2", "?- q(X).")
	in := j.Inflight()
	if len(in) != 2 {
		t.Fatalf("Inflight() = %d entries, want 2", len(in))
	}
	// Oldest first, with a nonzero age for the one that has been live 2ms.
	if in[0].ID != "r1" || in[1].ID != "r2" {
		t.Fatalf("Inflight() order = %q, %q; want r1 (oldest) first", in[0].ID, in[1].ID)
	}
	if in[0].AgeUS <= 0 {
		t.Errorf("Inflight()[0].AgeUS = %d, want > 0", in[0].AgeUS)
	}
	j.End(tok1)
	j.End(tok1) // idempotent
	if in := j.Inflight(); len(in) != 1 || in[0].ID != "r2" {
		t.Fatalf("after End(tok1): Inflight() = %+v, want only r2", in)
	}
	j.End(tok2)
	if in := j.Inflight(); len(in) != 0 {
		t.Fatalf("after End(all): Inflight() = %+v, want empty", in)
	}
	// Slots are reused: a fresh Begin gets tok1's freed slot back.
	if tok := j.Begin("r3", "?- r(X)."); tok != 0 {
		t.Errorf("Begin after frees = token %d, want 0 (slot reuse)", tok)
	}
}

func TestJournalInflightGrowsPastCapacity(t *testing.T) {
	j := NewJournal(4, -1)
	var toks []int
	for i := 0; i < 40; i++ { // more than the initial 16-slot table
		toks = append(toks, j.Begin("id", "q"))
	}
	if len(j.Inflight()) != 40 {
		t.Fatalf("Inflight() = %d entries, want 40", len(j.Inflight()))
	}
	for _, tok := range toks {
		j.End(tok)
	}
	if len(j.Inflight()) != 0 {
		t.Fatalf("Inflight() = %d entries after End, want 0", len(j.Inflight()))
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	tok := j.Begin("id", "q")
	if tok != -1 {
		t.Errorf("nil.Begin() = %d, want -1", tok)
	}
	j.End(tok)
	j.Record(QueryRecord{})
	if j.Recent() != nil || j.Slow() != nil || j.Inflight() != nil {
		t.Error("nil journal snapshots should be nil")
	}
	if j.SlowThreshold() >= 0 {
		t.Errorf("nil.SlowThreshold() = %v, want negative", j.SlowThreshold())
	}
}

func TestJournalConcurrency(t *testing.T) {
	// Hammer every journal operation from many goroutines; run under -race
	// (make verify does) to prove the locking. Assertions are minimal — the
	// point is the interleaving.
	j := NewJournal(8, 50*time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok := j.Begin("id", "q")
				j.Record(QueryRecord{WallUS: int64(i % 100)})
				j.Recent()
				j.Slow()
				j.Inflight()
				j.End(tok)
			}
		}(g)
	}
	wg.Wait()
	if len(j.Inflight()) != 0 {
		t.Fatalf("Inflight() = %d entries after all goroutines ended, want 0", len(j.Inflight()))
	}
	if len(j.Recent()) != 8 {
		t.Fatalf("Recent() = %d records, want full ring of 8", len(j.Recent()))
	}
}

func TestJournalHotPathAllocs(t *testing.T) {
	// The unsampled serving path does Begin/End/Record against preallocated
	// slots and one Sample() per request; none of it may allocate.
	j := NewJournal(16, time.Millisecond)
	s := NewSampler(1 << 30) // effectively never samples after the first
	s.Sample()               // consume the sampled first request
	rec := QueryRecord{ID: "id", Query: "?- p(X).", WallUS: 5}
	if n := testing.AllocsPerRun(100, func() {
		tok := j.Begin("id", "?- p(X).")
		if s.Sample() {
			t.Fatal("sampler fired inside the unsampled window")
		}
		j.Record(rec)
		j.End(tok)
	}); n != 0 {
		t.Errorf("journal hot path allocates %v per run, want 0", n)
	}
	var nilJ *Journal
	var nilS *Sampler
	if n := testing.AllocsPerRun(100, func() {
		tok := nilJ.Begin("id", "q")
		nilS.Sample()
		nilJ.Record(rec)
		nilJ.End(tok)
	}); n != 0 {
		t.Errorf("nil journal path allocates %v per run, want 0", n)
	}
}

func TestSamplerOneInN(t *testing.T) {
	s := NewSampler(4)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, s.Sample())
	}
	want := []bool{true, false, false, false, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sample() sequence = %v, want %v (first of each window)", got, want)
		}
	}
	if NewSampler(0) != nil || NewSampler(-3) != nil {
		t.Error("NewSampler(<=0) should return nil (sampling off)")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Error("nil sampler sampled")
	}
}

func TestMountJournalEndpoints(t *testing.T) {
	j := NewJournal(4, 0) // everything slow: both rings populate
	j.Record(QueryRecord{ID: "req-1", Query: "?- p(X).", Class: "A1", WallUS: 7})
	tok := j.Begin("req-2", "?- q(X).")
	defer j.End(tok)

	mux := http.NewServeMux()
	MountJournal(mux, j)
	for _, path := range []string{"/debug/queries", "/debug/queries/slow"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, rr.Code)
		}
		var body struct {
			SlowThresholdUS int64           `json:"slow_threshold_us"`
			Inflight        []InflightQuery `json:"inflight"`
			Slow            []QueryRecord   `json:"slow"`
			Recent          []QueryRecord   `json:"recent"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		if len(body.Slow) != 1 || body.Slow[0].ID != "req-1" || body.Slow[0].Class != "A1" {
			t.Fatalf("GET %s slow = %+v, want the req-1/A1 record", path, body.Slow)
		}
		if path == "/debug/queries" {
			if len(body.Inflight) != 1 || body.Inflight[0].ID != "req-2" {
				t.Fatalf("inflight = %+v, want the live req-2", body.Inflight)
			}
			if len(body.Recent) != 1 {
				t.Fatalf("recent = %+v, want one record", body.Recent)
			}
		}
	}
}
