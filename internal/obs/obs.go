// Package obs is the reproduction's dependency-free observability layer:
// hierarchical spans with monotonic timings and key/value attributes
// (Tracer, Span), a process-wide metrics registry (Registry, Counter,
// Gauge, Histogram), and exporters — indented human text, JSON span trees,
// a Prometheus-style text exposition, and an http.ServeMux wiring /metrics,
// /debug/vars (expvar) and /debug/pprof (net/http/pprof) together.
//
// The whole package is built around one constraint: the engines' hot paths
// must stay allocation-free when nobody is watching. Every method of Tracer
// and Span is safe on a nil receiver and does nothing there, so evaluation
// code threads a possibly-nil *Tracer unconditionally and pays a single
// nil check — no interface boxing, no closure, no allocation — when
// tracing is off. Metrics are updated at evaluation or round granularity,
// never per tuple.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one key/value attribute of a span: either an integer or a string
// payload, selected by IsInt.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Tracer owns one span tree. The zero of the type is not used: a nil
// *Tracer is the disabled tracer (all methods no-op), and New returns an
// enabled one. All mutation of the tree is serialized by the tracer's
// mutex, so any number of goroutines — e.g. the parallel engine's workers —
// may open child spans and set attributes concurrently.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	root  *Span
}

// New returns an enabled tracer whose root span has the given name. The
// root starts now; all span timings are monotonic offsets from this epoch
// (time.Since carries the monotonic clock reading).
func New(name string) *Tracer {
	tr := &Tracer{epoch: time.Now()}
	tr.root = &Span{tr: tr, name: name}
	return tr
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Tracer) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Span is one node of the trace tree: a name, a start offset and duration
// on the tracer's monotonic clock, attributes, and child spans. All methods
// are safe on a nil receiver (and return nil children), which is how the
// engines run untraced with zero overhead.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Duration
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Child opens a new span under s, started now.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	c := &Span{tr: tr, name: name}
	tr.mu.Lock()
	c.start = time.Since(tr.epoch)
	s.children = append(s.children, c)
	tr.mu.Unlock()
	return c
}

// End closes the span. A second End is a no-op, so deferred Ends compose
// with explicit ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(tr.epoch) - s.start
	}
	tr.mu.Unlock()
}

// SetInt attaches (or overwrites) an integer attribute and returns s for
// chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	s.set(Attr{Key: key, Int: v, IsInt: true})
	tr.mu.Unlock()
	return s
}

// SetStr attaches (or overwrites) a string attribute and returns s for
// chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	s.set(Attr{Key: key, Str: v})
	tr.mu.Unlock()
	return s
}

// set replaces an existing attribute with the same key or appends. Caller
// holds the tracer mutex.
func (s *Span) set(a Attr) {
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start offset from the tracer epoch.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.start
}

// Duration returns the span's recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.dur
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the span's child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the first descendant span (depth-first, s included) with the
// given name, or nil. A test convenience.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// spanSnap is an immutable deep copy of a span, taken under the tracer
// mutex so exporters never race with concurrent emission.
type spanSnap struct {
	name     string
	start    time.Duration
	dur      time.Duration
	attrs    []Attr
	children []*spanSnap
}

// snapshot deep-copies the tree. Caller must not hold the mutex.
func (t *Tracer) snapshot() *spanSnap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapSpan(t.root)
}

func snapSpan(s *Span) *spanSnap {
	out := &spanSnap{name: s.name, start: s.start, dur: s.dur}
	out.attrs = append(out.attrs, s.attrs...)
	for _, c := range s.children {
		out.children = append(out.children, snapSpan(c))
	}
	return out
}

// sortedAttrs returns the snapshot's attributes ordered by key, for
// deterministic export.
func (s *spanSnap) sortedAttrs() []Attr {
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
