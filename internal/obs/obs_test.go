package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := New("root")
	if !tr.Enabled() {
		t.Fatal("non-nil tracer must report Enabled")
	}
	fix := tr.Root().Child("fixpoint").SetStr("engine", "seminaive")
	r1 := fix.Child("round").SetInt("round", 1)
	r1.Child("join").SetStr("rule", "p :- e").End()
	r1.End()
	fix.SetInt("rounds", 1).End()
	tr.Finish()

	if got := len(tr.Root().Children()); got != 1 {
		t.Fatalf("root children = %d, want 1", got)
	}
	f := tr.Root().Find("fixpoint")
	if f == nil {
		t.Fatal("Find(fixpoint) = nil")
	}
	if f.Find("join") == nil {
		t.Fatal("Find does not descend to grandchildren")
	}
	var engine string
	for _, a := range f.Attrs() {
		if a.Key == "engine" {
			engine = a.Str
		}
	}
	if engine != "seminaive" {
		t.Fatalf("engine attr = %q", engine)
	}
}

func TestSpanAttrOverwrite(t *testing.T) {
	tr := New("t")
	s := tr.Root().Child("s").SetInt("n", 1).SetInt("n", 2)
	s.End()
	attrs := s.Attrs()
	if len(attrs) != 1 || attrs[0].Int != 2 {
		t.Fatalf("attrs = %+v, want single n=2", attrs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := New("t")
	s := tr.Root().Child("s")
	s.End()
	d := s.Duration()
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}

// TestNilSafety: every tracer and span operation must be a no-op on nil —
// that is the contract that lets engine hot paths skip the Enabled check.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	s := tr.Root().Child("x").SetInt("a", 1).SetStr("b", "c")
	s.End()
	if s != nil {
		t.Fatal("child of nil span must be nil")
	}
	if s.Find("x") != nil || s.Children() != nil || s.Attrs() != nil || s.Name() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	tr.Finish()
}

// TestNilSpanZeroAlloc pins the untraced hot-path cost: chaining every span
// operation on a nil receiver must not allocate.
func TestNilSpanZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Root().Child("round").SetInt("n", 1).SetStr("k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-span chain allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("root")
	round := tr.Root().Child("round")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				round.Child("join").SetInt("worker", int64(w)).End()
			}
		}(w)
	}
	wg.Wait()
	round.End()
	tr.Finish()
	if got := len(round.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Fatalf("sum = %v, want 55.5", h.Sum())
	}
	bounds, counts, _, _ := h.snapshot()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("counts len %d, want %d", len(counts), len(bounds)+1)
	}
	want := []int64{1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
}

func TestWriteText(t *testing.T) {
	tr := New("root")
	tr.Root().Child("fixpoint").SetStr("engine", "naive").End()
	tr.Finish()
	var b bytes.Buffer
	tr.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, "root") || !strings.Contains(out, "fixpoint") || !strings.Contains(out, "engine=naive") {
		t.Fatalf("text export:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New("root")
	tr.Root().Child("query").SetStr("query", "?- p(a, Y).").SetInt("answers", 3).End()
	tr.Finish()
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name     string `json:"name"`
		StartUS  *int64 `json:"start_us"`
		DurUS    *int64 `json:"dur_us"`
		Children []json.RawMessage
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Name != "root" || doc.StartUS == nil || doc.DurUS == nil {
		t.Fatalf("JSON root missing required fields:\n%s", b.String())
	}
	if len(doc.Children) != 1 {
		t.Fatalf("children = %d, want 1:\n%s", len(doc.Children), b.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dl_rounds_total").Add(3)
	r.Gauge("dl_live").Set(2)
	h := r.Histogram("dl_round_duration_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE dl_rounds_total counter",
		"dl_rounds_total 3",
		"# TYPE dl_live gauge",
		"dl_live 2",
		"# TYPE dl_round_duration_seconds histogram",
		`dl_round_duration_seconds_bucket{le="0.1"} 1`,
		`dl_round_duration_seconds_bucket{le="1"} 1`,
		`dl_round_duration_seconds_bucket{le="+Inf"} 2`,
		"dl_round_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	snap := r.Snapshot()
	if snap["a_total"] != int64(2) {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dl_rounds_total").Add(9)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "dl_rounds_total 9") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "datalog") {
		t.Errorf("/debug/vars: code %d, want datalog var:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d:\n%s", code, body)
	}
}
