package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux returns an http.ServeMux serving the observability endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (includes the registry under "datalog")
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, trace, ...)
//
// Both dlrun -serve and dlbench -serve mount this mux; it deliberately
// avoids http.DefaultServeMux so importing this package never changes the
// behavior of an embedding program's own server.
func NewMux(reg *Registry) *http.ServeMux {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve serves the observability mux on the listener until the listener
// closes. The caller usually runs it in a goroutine for the life of the
// process.
func Serve(l net.Listener, reg *Registry) error {
	return http.Serve(l, NewMux(reg))
}

// Listen binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// observability mux in a background goroutine, returning the resolved
// listen address — the form the CLIs print so scripts and tests can find
// an OS-assigned port.
func Listen(addr string, reg *Registry) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go Serve(l, reg)
	return l.Addr(), nil
}
