package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns an http.ServeMux serving the observability endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/statz         JSON snapshot with histogram percentiles (p50/p90/p99)
//	/debug/vars    expvar JSON (includes the registry under "datalog")
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, trace, ...)
//
// The registry gets the dl_build_info identity metric on the way, so every
// scrape is attributable to a build. Both dlrun -serve and dlbench -serve
// mount this mux; it deliberately avoids http.DefaultServeMux so importing
// this package never changes the behavior of an embedding program's own
// server.
func NewMux(reg *Registry) *http.ServeMux {
	PublishExpvar(reg)
	RegisterBuildInfo(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteStatz(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Default http.Server timeouts. A bare http.Server has none, which leaves
// any internet-facing listener open to slowloris header dribbling and to
// connections wedged forever on a dead peer's write path. The defaults are
// deliberately asymmetric: headers must arrive promptly, but response
// writes get minutes because streaming NDJSON answers legitimately take a
// while on large closures.
const (
	// DefaultReadHeaderTimeout bounds how long a connection may take to
	// send its request headers (the slowloris window).
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultIdleTimeout closes keep-alive connections with no request in
	// flight.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds the whole response write, long enough for
	// a slow streaming consumer, short enough to reap dead peers.
	DefaultWriteTimeout = 5 * time.Minute
)

// ServerConfig tunes the http.Server timeouts NewServer applies. The zero
// value means the defaults above; a negative duration disables that timeout
// entirely (http.Server semantics for zero are restored by passing the
// field through as 0).
type ServerConfig struct {
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the whole request including the body;
	// zero keeps it unset (the header timeout still applies) because fact
	// bulk loads may legitimately upload for a while.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

// timeout resolves one configured duration: zero → def, negative → off.
func timeout(d, def time.Duration) time.Duration {
	switch {
	case d < 0:
		return 0
	case d == 0:
		return def
	}
	return d
}

// NewServer wraps the handler in an http.Server with the config's timeouts
// (defaults where zero). Every listener this package or its callers expose
// should go through here — a timeout-less http.Server accumulates wedged
// connections until file descriptors run out.
func NewServer(h http.Handler, cfg ServerConfig) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: timeout(cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       timeout(cfg.ReadTimeout, 0),
		WriteTimeout:      timeout(cfg.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       timeout(cfg.IdleTimeout, DefaultIdleTimeout),
	}
}

// Serve serves the observability mux on the listener until the listener
// closes, with the default timeouts. The caller usually runs it in a
// goroutine for the life of the process.
func Serve(l net.Listener, reg *Registry) error {
	return NewServer(NewMux(reg), ServerConfig{}).Serve(l)
}

// Listen binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// observability mux in a background goroutine, returning the resolved
// listen address — the form the CLIs print so scripts and tests can find
// an OS-assigned port.
func Listen(addr string, reg *Registry) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go Serve(l, reg)
	return l.Addr(), nil
}
