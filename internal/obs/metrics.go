package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of counters, gauges and histograms. Metric
// creation is get-or-create by name, so independent subsystems may ask for
// the same metric and share it; asking for an existing name with a
// different metric type panics (always a programming error). Default()
// returns the process-wide registry the engines and the plan cache feed;
// tests that need isolated accounting create their own.
type Registry struct {
	mu      sync.Mutex
	names   []string // registration order
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

func (r *Registry) lookup(name string, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	r.names = append(r.names, name)
	return m
}

// panicTypeMismatch reports a name registered under two metric types —
// always a programming error.
func panicTypeMismatch(name string, m any) {
	panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
}

// Counter returns the registry's counter of that name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookup(name, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the registry's gauge of that name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookup(name, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the registry's histogram of that name, creating it with
// the given bucket upper bounds if needed (DefaultBuckets when nil). Bounds
// of an existing histogram are kept; they must be in increasing order.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.lookup(name, func() any { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return h
}

// each calls f for every metric in registration order.
func (r *Registry) each(f func(name string, m any)) {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, metrics[i])
	}
}

// Counter is a monotonically increasing metric. The zero value is ready to
// use; Add and Inc are lock-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers keep counters monotonic; negative deltas are not
// rejected but Prometheus semantics assume they never happen).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets spans sub-microsecond rounds to multi-second strata in
// roughly decade-and-a-half steps — wide enough for both round durations
// (seconds) and dimensionless ratios near 1.
var DefaultBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket cumulative histogram (Prometheus exposition
// shape: _bucket{le=...}, _sum, _count). Observe takes a mutex; callers
// observe at round granularity, never per tuple.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]int64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds, per-bucket counts, sum and count atomically.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]int64, len(h.counts))
	copy(counts, h.counts)
	return h.bounds, counts, h.sum, h.count
}
