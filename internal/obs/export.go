package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// WriteText renders the span tree as indented human-readable lines:
//
//	name 1.234ms key=value ...
//	  child 567µs ...
//
// Attributes are ordered by key. Safe to call while spans are still being
// emitted (it snapshots under the tracer mutex first).
func (t *Tracer) WriteText(w io.Writer) {
	snap := t.snapshot()
	if snap == nil {
		return
	}
	writeTextSpan(w, snap, 0)
}

func writeTextSpan(w io.Writer, s *spanSnap, depth int) {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.name)
	b.WriteByte(' ')
	b.WriteString(s.dur.String())
	for _, a := range s.sortedAttrs() {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.IsInt {
			b.WriteString(strconv.FormatInt(a.Int, 10))
		} else {
			b.WriteString(a.Str)
		}
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
	for _, c := range s.children {
		writeTextSpan(w, c, depth+1)
	}
}

// jsonSpan is the exported JSON shape of one span. Timings are integral
// microseconds from the tracer epoch (start) and span start (dur).
type jsonSpan struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*jsonSpan    `json:"children,omitempty"`
}

func jsonFromSnap(s *spanSnap) *jsonSpan {
	out := &jsonSpan{
		Name:    s.name,
		StartUS: s.start.Microseconds(),
		DurUS:   s.dur.Microseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.IsInt {
				out.Attrs[a.Key] = a.Int
			} else {
				out.Attrs[a.Key] = a.Str
			}
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, jsonFromSnap(c))
	}
	return out
}

// WriteJSON renders the span tree as one indented JSON document (a single
// root object with nested children) — the `dlrun -trace-json` format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	snap := t.snapshot()
	if snap == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonFromSnap(snap))
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (counters and gauges as single samples, histograms as cumulative
// _bucket/_sum/_count series), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.each(func(name string, m any) {
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Value())
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v.Value())
		case *Info:
			// An info metric is a gauge pinned at 1 whose labels carry the
			// payload (dl_build_info{go_version="go1.24.0",...} 1).
			fmt.Fprintf(w, "# TYPE %s gauge\n%s{", name, name)
			for i, k := range v.keys {
				if i > 0 {
					io.WriteString(w, ",")
				}
				fmt.Fprintf(w, "%s=%q", k, v.labels[k])
			}
			io.WriteString(w, "} 1\n")
		case *Histogram:
			bounds, counts, sum, count := v.snapshot()
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			cum := int64(0)
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
			}
			cum += counts[len(bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %g\n", name, sum)
			fmt.Fprintf(w, "%s_count %d\n", name, count)
		}
	})
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot returns the registry's current values as a plain map — counters
// and gauges as int64, histograms as {count, sum, buckets} maps. This is
// what /debug/vars publishes.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	r.each(func(name string, m any) {
		switch v := m.(type) {
		case *Counter:
			out[name] = v.Value()
		case *Gauge:
			out[name] = v.Value()
		case *Info:
			out[name] = v.Labels()
		case *Histogram:
			bounds, counts, sum, count := v.snapshot()
			buckets := make(map[string]int64, len(bounds)+1)
			cum := int64(0)
			for i, b := range bounds {
				cum += counts[i]
				buckets[formatBound(b)] = cum
			}
			cum += counts[len(bounds)]
			buckets["+Inf"] = cum
			out[name] = map[string]any{"count": count, "sum": sum, "buckets": buckets}
		}
	})
	return out
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "datalog", so
// /debug/vars carries the same values as /metrics. Safe to call repeatedly;
// only the first call (process-wide) registers.
func PublishExpvar(r *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("datalog", expvar.Func(func() any { return r.Snapshot() }))
	})
}
