package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
)

// This file adds the two scrape-side conveniences of the observability
// layer: percentile estimates over the fixed-bucket histograms (the /statz
// endpoint — an operator asking "what is p99 right now" should not need a
// Prometheus server to integrate the bucket counts), and the dl_build_info
// metric that stamps every exposition with the build it came from, so a
// saved scrape or bench JSON is attributable to a binary.

// Quantile estimates the q-quantile (q in [0, 1]) of the observed samples
// by linear interpolation inside the histogram's buckets: rank q·count is
// located in the cumulative bucket counts and interpolated between the
// bucket's bounds (the first bucket interpolates from 0). Samples in the
// +Inf bucket clamp to the largest finite bound — a fixed-bucket histogram
// cannot see beyond its last boundary. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts, _, count := h.snapshot()
	return quantile(bounds, counts, count, q)
}

// quantile is the pure bucket-interpolation kernel, split out so tests can
// drive it against hand-computed distributions without a Histogram.
func quantile(bounds []float64, counts []int64, count int64, q float64) float64 {
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	cum, lo := 0.0, 0.0
	for i, b := range bounds {
		c := float64(counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
		cum += c
		lo = b
	}
	return bounds[len(bounds)-1]
}

// statzQuantiles are the percentiles /statz reports for every histogram.
var statzQuantiles = []struct {
	name string
	q    float64
}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}

// Statz returns the registry's current values with histograms rendered as
// percentile summaries ({count, sum, avg, p50, p90, p99}) instead of raw
// buckets — the /statz endpoint body.
func (r *Registry) Statz() map[string]any {
	out := make(map[string]any)
	r.each(func(name string, m any) {
		switch v := m.(type) {
		case *Counter:
			out[name] = v.Value()
		case *Gauge:
			out[name] = v.Value()
		case *Info:
			out[name] = v.Labels()
		case *Histogram:
			bounds, counts, sum, count := v.snapshot()
			h := map[string]any{"count": count, "sum": sum}
			if count > 0 {
				h["avg"] = sum / float64(count)
			}
			for _, p := range statzQuantiles {
				h[p.name] = quantile(bounds, counts, count, p.q)
			}
			out[name] = h
		}
	})
	return out
}

// WriteStatz writes the Statz summary as indented JSON.
func (r *Registry) WriteStatz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Statz())
}

// Info is a gauge-with-labels metric pinned at value 1 — the Prometheus
// idiom for attaching build/runtime identity to an exposition
// (name{key="value",...} 1). Labels are fixed at registration.
type Info struct {
	keys   []string // sorted
	labels map[string]string
}

// Info returns the registry's info metric of that name, creating it with
// the given labels if needed. Labels of an existing info metric are kept.
func (r *Registry) Info(name string, labels map[string]string) *Info {
	m := r.lookup(name, func() any { return newInfo(labels) })
	i, ok := m.(*Info)
	if !ok {
		panicTypeMismatch(name, m)
	}
	return i
}

func newInfo(labels map[string]string) *Info {
	cp := make(map[string]string, len(labels))
	keys := make([]string, 0, len(labels))
	for k, v := range labels {
		cp[k] = v
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &Info{keys: keys, labels: cp}
}

// Labels returns a copy of the metric's labels.
func (i *Info) Labels() map[string]string {
	out := make(map[string]string, len(i.labels))
	for k, v := range i.labels {
		out[k] = v
	}
	return out
}

// BuildInfoMetric is the name of the build-identity info metric.
const BuildInfoMetric = "dl_build_info"

// RegisterBuildInfo registers dl_build_info in the registry: module
// version and VCS revision when the binary embeds them (go build of a
// module in a VCS checkout), Go runtime version, GOOS/GOARCH and the
// GOMAXPROCS the process started with. NewMux calls it, so every /metrics
// scrape — and every bench JSON recorded next to one — can attribute its
// numbers to a build. Get-or-create like every registry metric: repeated
// calls return the first registration.
func RegisterBuildInfo(r *Registry) *Info {
	version, revision := "unknown", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		version = bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	labels := map[string]string{
		"version":    version,
		"go_version": runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
	}
	if revision != "" {
		labels["revision"] = revision
	}
	return r.Info(BuildInfoMetric, labels)
}
