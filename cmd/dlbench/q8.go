package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/storage"
)

// q8: the storage core itself. Benchmarks the arena/word-hash/CSR relation
// against a faithful replica of the previous representation (string map
// keys via Tuple.Key, clone-on-insert tuple storage, map[Value][]int column
// indexes) on three workloads: insert-heavy with many duplicates,
// probe-heavy membership + column traversal, and a full semi-naive
// transitive-closure fixpoint. Results (ns/op, B/op, allocs/op) go to
// stdout and BENCH_storage.json.

// tupleStore is the slice of the Relation API both implementations share.
type tupleStore interface {
	Insert(t storage.Tuple) bool
	Contains(t storage.Tuple) bool
	EachCol(col int, v storage.Value, f func(storage.Tuple) bool)
	Len() int
}

// legacyRelation reproduces the pre-arena storage layout: a set of
// Tuple.Key() strings for dedup (the key is built before the duplicate
// check, as the old Insert did), a Clone per stored tuple, and lazily built
// map-of-slices column indexes maintained on insert.
type legacyRelation struct {
	arity  int
	set    map[string]struct{}
	tuples []storage.Tuple
	colIdx []map[storage.Value][]int
}

func newLegacyRelation(arity int) *legacyRelation {
	return &legacyRelation{
		arity:  arity,
		set:    make(map[string]struct{}),
		colIdx: make([]map[storage.Value][]int, arity),
	}
}

func (r *legacyRelation) Insert(t storage.Tuple) bool {
	key := t.Key()
	if _, ok := r.set[key]; ok {
		return false
	}
	r.set[key] = struct{}{}
	c := t.Clone()
	pos := len(r.tuples)
	r.tuples = append(r.tuples, c)
	for col, idx := range r.colIdx {
		if idx != nil {
			idx[c[col]] = append(idx[c[col]], pos)
		}
	}
	return true
}

func (r *legacyRelation) Contains(t storage.Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	_, ok := r.set[t.Key()]
	return ok
}

func (r *legacyRelation) EachCol(col int, v storage.Value, f func(storage.Tuple) bool) {
	idx := r.colIdx[col]
	if idx == nil {
		idx = make(map[storage.Value][]int)
		for pos, t := range r.tuples {
			idx[t[col]] = append(idx[t[col]], pos)
		}
		r.colIdx[col] = idx
	}
	for _, pos := range idx[v] {
		if !f(r.tuples[pos]) {
			return
		}
	}
}

func (r *legacyRelation) Len() int { return len(r.tuples) }

// genTuples returns n pseudo-random binary tuples over a domain sized so
// roughly half the stream repeats earlier tuples — the duplicate-heavy mix
// a fixpoint engine feeds its head relations.
func genTuples(n int, seed int64) []storage.Tuple {
	rng := rand.New(rand.NewSource(seed))
	dom := 1
	for dom*dom < n {
		dom++
	}
	out := make([]storage.Tuple, n)
	for i := range out {
		out[i] = storage.Tuple{storage.Value(rng.Intn(dom)), storage.Value(rng.Intn(dom))}
	}
	return out
}

// benchInsert measures inserting the stream into a fresh store.
func benchInsert(mk func() tupleStore, stream []storage.Tuple) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := mk()
			for _, t := range stream {
				s.Insert(t)
			}
		}
	})
}

// benchProbe measures membership checks and column traversals against a
// prepopulated store with warm indexes.
func benchProbe(s tupleStore, stream []storage.Tuple) testing.BenchmarkResult {
	s.EachCol(0, 0, func(storage.Tuple) bool { return true }) // warm the index
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		count := func(storage.Tuple) bool { sink++; return true }
		for i := 0; i < b.N; i++ {
			for _, t := range stream {
				if s.Contains(t) {
					sink++
				}
				s.EachCol(0, t[0], count)
			}
		}
		_ = sink
	})
}

// fixpointTC runs a semi-naive transitive closure over the store
// interface: the per-round frontier is a flat value slice so the only
// per-tuple costs measured are the stores' own.
func fixpointTC(edges tupleStore, edgeTuples []storage.Tuple, mk func() tupleStore) int {
	closure := mk()
	var frontier, next []storage.Value
	for _, t := range edgeTuples {
		if closure.Insert(t) {
			frontier = append(frontier, t[0], t[1])
		}
	}
	// One compose callback reused across every traversal, so the loop's only
	// per-tuple costs are the stores' own.
	buf := make(storage.Tuple, 2)
	var x storage.Value
	compose := func(t storage.Tuple) bool {
		buf[0], buf[1] = x, t[1]
		if closure.Insert(buf) {
			next = append(next, x, t[1])
		}
		return true
	}
	for len(frontier) > 0 {
		next = next[:0]
		for i := 0; i < len(frontier); i += 2 {
			x = frontier[i]
			edges.EachCol(0, frontier[i+1], compose)
		}
		frontier, next = next, frontier
	}
	return closure.Len()
}

func benchFixpoint(edges tupleStore, edgeTuples []storage.Tuple, mk func() tupleStore) testing.BenchmarkResult {
	edges.EachCol(0, 0, func(storage.Tuple) bool { return true })
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fixpointTC(edges, edgeTuples, mk)
		}
	})
}

type benchRow struct {
	Workload    string  `json:"workload"`
	Impl        string  `json:"impl"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup,omitempty"`
}

type benchReport struct {
	Generated              string     `json:"generated"`
	Quick                  bool       `json:"quick"`
	Rows                   []benchRow `json:"rows"`
	FixpointAllocsReduce   float64    `json:"fixpoint_allocs_reduction"`
	InsertAllocsReduce     float64    `json:"insert_allocs_reduction"`
	ProbeHeavyAllocsPerRun int64      `json:"probe_heavy_allocs_per_run_new"`
}

func (r *runner) q8() {
	r.section("Q8: storage core — arena relation vs string-keyed baseline")

	nInsert, nGraphEdges, graphNodes := 20000, 600, 200
	if r.quick {
		nInsert, nGraphEdges, graphNodes = 4000, 200, 80
	}
	insertStream := genTuples(nInsert, 11)
	rng := rand.New(rand.NewSource(12))
	edgeTuples := make([]storage.Tuple, 0, nGraphEdges)
	seen := make(map[string]struct{})
	for len(edgeTuples) < nGraphEdges {
		t := storage.Tuple{storage.Value(rng.Intn(graphNodes)), storage.Value(rng.Intn(graphNodes))}
		if _, ok := seen[t.Key()]; ok {
			continue
		}
		seen[t.Key()] = struct{}{}
		edgeTuples = append(edgeTuples, t)
	}

	mkNew := func() tupleStore { return storage.NewRelation(2) }
	mkOld := func() tupleStore { return newLegacyRelation(2) }
	fill := func(mk func() tupleStore, ts []storage.Tuple) tupleStore {
		s := mk()
		for _, t := range ts {
			s.Insert(t)
		}
		return s
	}

	// The two fixpoints must agree before we time them.
	if a, b := fixpointTC(fill(mkNew, edgeTuples), edgeTuples, mkNew),
		fixpointTC(fill(mkOld, edgeTuples), edgeTuples, mkOld); a != b {
		r.check("Q8", "both storage layers compute the same closure", false,
			fmt.Sprintf("arena closure = %d, legacy closure = %d", a, b))
		return
	}

	type workload struct {
		name string
		run  func(mk func() tupleStore) testing.BenchmarkResult
	}
	workloads := []workload{
		{"insert-heavy", func(mk func() tupleStore) testing.BenchmarkResult {
			return benchInsert(mk, insertStream)
		}},
		{"probe-heavy", func(mk func() tupleStore) testing.BenchmarkResult {
			return benchProbe(fill(mk, insertStream), insertStream)
		}},
		{"fixpoint-tc", func(mk func() tupleStore) testing.BenchmarkResult {
			return benchFixpoint(fill(mk, edgeTuples), edgeTuples, mk)
		}},
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Quick:     r.quick,
	}
	fmt.Printf("  %-13s %-7s %14s %14s %14s\n", "workload", "impl", "ns/op", "B/op", "allocs/op")
	ratios := map[string]float64{}
	for _, w := range workloads {
		old := w.run(mkOld)
		new_ := w.run(mkNew)
		rows := []benchRow{
			{Workload: w.name, Impl: "legacy-string", NsPerOp: old.NsPerOp(),
				BytesPerOp: old.AllocedBytesPerOp(), AllocsPerOp: old.AllocsPerOp()},
			{Workload: w.name, Impl: "arena", NsPerOp: new_.NsPerOp(),
				BytesPerOp: new_.AllocedBytesPerOp(), AllocsPerOp: new_.AllocsPerOp(),
				Speedup: float64(old.NsPerOp()) / float64(new_.NsPerOp())},
		}
		report.Rows = append(report.Rows, rows...)
		for _, row := range rows {
			fmt.Printf("  %-13s %-7s %14d %14d %14d\n",
				row.Workload, map[string]string{"legacy-string": "legacy", "arena": "arena"}[row.Impl],
				row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
		}
		denom := new_.AllocsPerOp()
		if denom == 0 {
			denom = 1
		}
		ratios[w.name] = float64(old.AllocsPerOp()) / float64(denom)
		r.row("%-13s allocs/op reduction %.1fx, wall speedup %.2fx", w.name,
			ratios[w.name], float64(old.NsPerOp())/float64(new_.NsPerOp()))
		if w.name == "probe-heavy" {
			report.ProbeHeavyAllocsPerRun = new_.AllocsPerOp()
		}
	}
	report.FixpointAllocsReduce = ratios["fixpoint-tc"]
	report.InsertAllocsReduce = ratios["insert-heavy"]

	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_storage.json", append(data, '\n'), 0o644); err != nil {
			r.row("BENCH_storage.json not written: %v", err)
		} else {
			r.row("wrote BENCH_storage.json")
		}
	}

	r.check("Q8", "arena storage cuts fixpoint allocs/op by >=5x vs the string-keyed baseline",
		ratios["fixpoint-tc"] >= 5,
		fmt.Sprintf("insert-heavy %.1fx, probe-heavy %.1fx, fixpoint-tc %.1fx allocs/op reduction",
			ratios["insert-heavy"], ratios["probe-heavy"], ratios["fixpoint-tc"]))
}
