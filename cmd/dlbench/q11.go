package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/storage"
)

// q11: sharded fixpoint scale-out. Hash-partitions the transitive-closure
// frontier by the join column and runs per-shard semi-naive fixpoints on a
// worker pool, exchanging cross-shard deltas at the round barriers
// (internal/eval/shard.go). Two sweeps: fixpoint wall-clock at 1..N shards
// (shards and workers scaled together — the 1-shard baseline is otherwise
// already the parallel pool, which would hide the scale-out curve), and a
// multi-client QPS sweep against the real HTTP serving stack (dlserve's
// handler under httptest) with a background writer advancing the epoch.
// Every shard count is differentially checked against the sequential
// semi-naive model before it is timed. Results merge into BENCH_serve.json
// under "q11". On a single-CPU host the sweeps still run and are recorded
// — shards are logical partitions — but the speedup gates are skipped,
// since partitioning cannot beat one core.

type q11ShardPoint struct {
	Shards    int   `json:"shards"`
	Ns        int64 `json:"ns_per_fixpoint"`
	Exchanged int   `json:"exchanged"`
}

type q11Throughput struct {
	Clients int     `json:"clients"`
	QPS     float64 `json:"qps"`
}

type q11Report struct {
	Generated    string          `json:"generated"`
	Quick        bool            `json:"quick"`
	NumCPU       int             `json:"numcpu"`
	Nodes        int             `json:"nodes"`
	Edges        int             `json:"edges"`
	Answers      int             `json:"answers"`
	ShardSweep   []q11ShardPoint `json:"shard_sweep"`
	ShardScaling float64         `json:"shard_scaling"`
	Throughput   []q11Throughput `json:"qps_sweep"`
	QPSScaling   float64         `json:"qps_scaling"`
}

func (r *runner) q11() {
	r.section("Q11: sharded fixpoint — cross-shard delta exchange scale-out")

	nodes, extra := 300, 600
	sweepDur := 400 * time.Millisecond
	if r.quick {
		nodes, extra = 140, 280
		sweepDur = 120 * time.Millisecond
	}
	gmp := runtime.GOMAXPROCS(0)

	prog, _, err := parser.ParseProgram("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).")
	if err != nil {
		r.check("Q11", "workload parses", false, err.Error())
		return
	}
	db := storage.NewDatabase()
	if err := storage.GenRandomGraph(db, "e", nodes, extra, 11); err != nil {
		r.check("Q11", "workload generation", false, err.Error())
		return
	}
	// Hamiltonian chain on top of the random edges so the closure is deep:
	// many rounds means many barrier exchanges, the path this experiment
	// is about.
	for i := 0; i+1 < nodes; i++ {
		if _, err := db.Insert("e", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			r.check("Q11", "workload generation", false, err.Error())
			return
		}
	}
	edges := db.Rel("e").Len()
	r.row("graph: %d nodes, %d edges; GOMAXPROCS = %d", nodes, edges, gmp)

	// Sequential reference: the model every shard count must reproduce.
	refOut, refStats, err := eval.SemiNaive(prog, db)
	if err != nil {
		r.check("Q11", "sequential reference runs", false, err.Error())
		return
	}
	refDump := refOut.Dump("p")

	// Shard sweep: shards and workers scale together from 1 to
	// max(4, GOMAXPROCS). Shards are forced (Opts.Shards >= 2) so the
	// small-input cutoff cannot silently fall back to the single-shard
	// pool and flatten the curve.
	maxShards := gmp
	if maxShards < 4 {
		maxShards = 4
	}
	shardCounts := []int{1}
	for n := 2; n <= maxShards; n *= 2 {
		shardCounts = append(shardCounts, n)
	}
	if last := shardCounts[len(shardCounts)-1]; last != maxShards {
		shardCounts = append(shardCounts, maxShards)
	}

	report := q11Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Quick:     r.quick,
		NumCPU:    gmp,
		Nodes:     nodes,
		Edges:     edges,
		Answers:   refOut.Rel("p").Len(),
	}
	equal := true
	var t1, t4 time.Duration
	fmt.Printf("  %7s  %12s  %8s  %7s  %9s\n", "shards", "fixpoint", "speedup", "rounds", "exchanged")
	for _, n := range shardCounts {
		opts := eval.Opts{Shards: n, Workers: n}
		times := make([]time.Duration, 0, r.reps())
		var out *storage.Database
		var st eval.Stats
		for i := 0; i < r.reps(); i++ {
			start := time.Now()
			out, st, err = eval.ShardedSemiNaiveOpts(prog, db, opts)
			times = append(times, time.Since(start))
			if err != nil {
				r.check("Q11", "sharded fixpoint runs", false, err.Error())
				return
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		med := times[len(times)/2]
		if out.Dump("p") != refDump || st.Derived != refStats.Derived {
			equal = false
		}
		if n > 1 && st.Exchanged == 0 {
			r.check("Q11", "round barriers exchange cross-shard deltas", false,
				fmt.Sprintf("%d shards: 0 tuples exchanged over %d rounds", n, st.Rounds))
			return
		}
		if n == 1 {
			t1 = med
		}
		if n == 4 {
			t4 = med
		}
		report.ShardSweep = append(report.ShardSweep,
			q11ShardPoint{Shards: n, Ns: med.Nanoseconds(), Exchanged: st.Exchanged})
		fmt.Printf("  %7d  %12v  %7.2fx  %7d  %9d\n",
			n, med, float64(t1)/float64(med), st.Rounds, st.Exchanged)
	}
	if t4 > 0 {
		report.ShardScaling = float64(t1) / float64(t4)
		r.row("shard scaling 1 -> 4 shards: %.2fx", report.ShardScaling)
	}

	// Per-round trace of the 4-shard run: the observer reports shard count
	// and exchanged tuples per round, the numbers the span tree carries.
	r.row("per-round trace (4 shards):")
	if _, _, err := eval.ShardedSemiNaiveOpts(prog, db, eval.Opts{
		Shards:   4,
		Workers:  4,
		Observer: eval.ObserverFunc(func(rs eval.RoundStats) { r.row("%v", rs) }),
	}); err != nil {
		r.check("Q11", "trace", false, err.Error())
		return
	}

	r.check("Q11", "sharded fixpoint computes exactly the sequential semi-naive model",
		equal, fmt.Sprintf("IDB dumps and derived counts identical across shard counts %v", shardCounts))

	// QPS sweep: C clients issue bound queries over real HTTP against the
	// dlserve handler while one writer advances the epoch every ~25ms, so
	// a slice of the queries recompute through the (auto-sharded) planner
	// rather than hitting the result cache.
	qps1, qpsBest, bestClients, ok := r.q11QPS(nodes, sweepDur, &report)
	if !ok {
		return
	}
	report.QPSScaling = qpsBest / qps1
	r.row("QPS scaling 1 -> %d clients (best of sweep): %.2fx", bestClients, report.QPSScaling)

	// Merge under "q11" so Q9's top-level fields and Q10's block survive.
	merged := map[string]any{}
	if raw, err := os.ReadFile("BENCH_serve.json"); err == nil {
		json.Unmarshal(raw, &merged)
	}
	merged["q11"] = report
	if data, err := json.MarshalIndent(merged, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			r.row("BENCH_serve.json not written: %v", err)
		} else {
			r.row("merged q11 into BENCH_serve.json")
		}
	}

	// Speedup gates are CPU-aware: partitioning one core only adds barrier
	// overhead, so the 2x claim is only enforceable with 4+ ways of real
	// parallelism. The differential and exchange checks above ran either way.
	switch {
	case gmp >= 4:
		r.check("Q11", "4-way sharding wins >=2x over the single-shard fixpoint",
			report.ShardScaling >= 2,
			fmt.Sprintf("1 shard %v vs 4 shards %v (%.2fx, %d CPUs)", t1, t4, report.ShardScaling, gmp))
	case gmp >= 2:
		r.check("Q11", "sharding wins >=1.2x with partial parallelism",
			report.ShardScaling >= 1.2,
			fmt.Sprintf("1 shard %v vs 4 shards %v (%.2fx, %d CPUs)", t1, t4, report.ShardScaling, gmp))
	default:
		r.row("single-CPU machine: shard speedup gate skipped (sweep recorded; shards are logical partitions on one core)")
	}
	if gmp > 1 {
		r.check("Q11", "served QPS scales >=2x from 1 client across the sweep",
			report.QPSScaling >= 2,
			fmt.Sprintf("%.0f -> %.0f queries/s (%.2fx) across %d CPUs", qps1, qpsBest, report.QPSScaling, gmp))
	} else {
		r.row("single-CPU machine: QPS scaling gate skipped (sweep recorded, no parallelism available)")
	}
}

// q11QPS drives the HTTP serving stack (the dlserve handler mounted on a
// real listener) with 1..max(4, GOMAXPROCS) concurrent clients plus one
// epoch-advancing writer, appending a throughput point per client count.
func (r *runner) q11QPS(nodes int, sweepDur time.Duration, report *q11Report) (qps1, qpsBest float64, bestClients int, ok bool) {
	maxClients := runtime.GOMAXPROCS(0)
	if maxClients < 4 {
		maxClients = 4
	}
	clientCounts := []int{1}
	for c := 2; c <= maxClients; c *= 2 {
		clientCounts = append(clientCounts, c)
	}
	if last := clientCounts[len(clientCounts)-1]; last != maxClients {
		clientCounts = append(clientCounts, maxClients)
	}

	var graph strings.Builder
	for i := 0; i+1 < nodes; i++ {
		fmt.Fprintf(&graph, "e(n%d, n%d).\n", i, i+1)
	}
	bestClients = 1
	for _, clients := range clientCounts {
		s, err := server.New("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
			server.Config{Registry: obs.NewRegistry()})
		if err != nil {
			r.check("Q11", "HTTP sweep server starts", false, err.Error())
			return 0, 0, 0, false
		}
		if _, err := s.LoadFacts(graph.String()); err != nil {
			r.check("Q11", "HTTP sweep server starts", false, err.Error())
			return 0, 0, 0, false
		}
		ts := httptest.NewServer(s.Handler())
		get := func(rawQuery string) error {
			resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(rawQuery))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("HTTP %d for %q", resp.StatusCode, rawQuery)
			}
			return nil
		}
		var total, failed atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // writer: fresh edge every ~25ms advances the epoch
			defer wg.Done()
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					body := strings.NewReader(fmt.Sprintf("e(w%d, n0).", i))
					resp, err := http.Post(ts.URL+"/facts", "text/plain", body)
					if err != nil {
						failed.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := get(fmt.Sprintf("?- p(n%d, Y).", (c*37+i)%nodes)); err != nil {
						failed.Add(1)
						return
					}
					total.Add(1)
				}
			}(c)
		}
		time.Sleep(sweepDur)
		close(stop)
		wg.Wait()
		ts.Close()
		if failed.Load() > 0 {
			r.check("Q11", "HTTP sweep runs without errors", false,
				fmt.Sprintf("%d clients: %d failures", clients, failed.Load()))
			return 0, 0, 0, false
		}
		qps := float64(total.Load()) / sweepDur.Seconds()
		report.Throughput = append(report.Throughput, q11Throughput{Clients: clients, QPS: qps})
		r.row("%2d client(s) + 1 writer over HTTP: %10.0f queries/s", clients, qps)
		if clients == 1 {
			qps1 = qps
		}
		if qps > qpsBest {
			qpsBest, bestClients = qps, clients
		}
	}
	return qps1, qpsBest, bestClients, true
}
